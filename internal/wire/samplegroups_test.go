package wire

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"meshlab/internal/snr"
)

// groupWalk collects a SampleGroups walk at the given pool size.
func groupWalk(t testing.TB, data []byte, workers int) []*SampleGroup {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var got []*SampleGroup
	if err := r.SampleGroups(workers, func(g *SampleGroup) error {
		got = append(got, g)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestSampleGroupsMatchSamples: the group walk carries exactly the
// section's samples, per network, in file order — concatenating the
// groups reproduces Samples() (and therefore snr.Flatten) per band.
func TestSampleGroupsMatchSamples(t *testing.T) {
	f := quickFleet(t)
	_, v2s, _ := encodeVariants(t, f)

	r, err := NewReader(bytes.NewReader(v2s))
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Samples()
	if err != nil {
		t.Fatal(err)
	}

	groups := groupWalk(t, v2s, 2)
	// One group per (band, network-of-that-band) in fleet order; bands
	// contiguous.
	wantGroups := 0
	for _, nd := range f.Networks {
		_ = nd
		wantGroups++
	}
	if len(groups) != wantGroups {
		t.Fatalf("got %d groups, fleet has %d network datasets", len(groups), wantGroups)
	}
	cat := map[string][]snr.Sample{}
	lastBand := ""
	bandsSeen := map[string]bool{}
	for _, g := range groups {
		if g.Band != lastBand {
			if bandsSeen[g.Band] {
				t.Fatalf("band %s groups are not contiguous", g.Band)
			}
			bandsSeen[g.Band] = true
			lastBand = g.Band
		}
		for i := range g.Samples {
			if g.Samples[i].Net != g.Net {
				t.Fatalf("group %s carries a sample for network %s", g.Net, g.Samples[i].Net)
			}
		}
		cat[g.Band] = append(cat[g.Band], g.Samples...)
	}
	for band := range cat {
		if len(cat[band]) == 0 {
			delete(cat, band)
		}
	}
	if !reflect.DeepEqual(cat, want) {
		t.Fatal("concatenated groups diverge from Samples()")
	}
}

// TestSampleGroupsParallelOracle: the delivered group sequence is
// byte-identical at any pool size — the decode pool only changes wall
// clock.
func TestSampleGroupsParallelOracle(t *testing.T) {
	_, v2s, _ := encodeVariants(t, quickFleet(t))
	serial := groupWalk(t, v2s, 1)
	for _, workers := range []int{2, 8} {
		if got := groupWalk(t, v2s, workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: group walk diverges from serial", workers)
		}
	}
}

// TestSampleGroupsAbort: an fn error aborts the walk promptly, is
// returned verbatim, and poisons the reader instead of leaving it
// misaligned mid-section.
func TestSampleGroupsAbort(t *testing.T) {
	_, v2s, _ := encodeVariants(t, quickFleet(t))
	r, err := NewReader(bytes.NewReader(v2s))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	calls := 0
	err = r.SampleGroups(2, func(*SampleGroup) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("abort error = %v, want the fn error", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times after aborting on the first group", calls)
	}
	if err := r.SampleGroups(2, func(*SampleGroup) error { return nil }); err == nil {
		t.Fatal("a second walk over an aborted reader must error")
	}
}

// TestSampleGroupsRequireSection: a section-less file directs the caller
// to the Flattener path instead of silently decoding nothing.
func TestSampleGroupsRequireSection(t *testing.T) {
	v2, _, _ := encodeVariants(t, quickFleet(t))
	r, err := NewReader(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	err = r.SampleGroups(1, func(*SampleGroup) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "no flat-sample section") {
		t.Fatalf("want a no-section error, got %v", err)
	}
}

// TestSampleGroupsTruncated: cutting the file inside the section yields a
// contextual error, never a panic or a hang. Cut positions sample the
// section's span, so group headers, row interiors, and chunk boundaries
// are all hit.
func TestSampleGroupsTruncated(t *testing.T) {
	f := quickFleet(t)
	v2, v2s, _ := encodeVariants(t, f)
	span := len(v2s) - len(v2)
	var cuts []int
	for i := 0; i < 16; i++ {
		cuts = append(cuts, len(v2)+span*i/16+i*7)
	}
	for _, cut := range cuts {
		r, err := NewReader(bytes.NewReader(v2s[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		err = r.SampleGroups(2, func(*SampleGroup) error { return nil })
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes should error", cut, len(v2s))
		}
		if !strings.Contains(err.Error(), "wire:") {
			t.Fatalf("truncation at %d: error lacks context: %v", cut, err)
		}
	}
}

// TestSampleGroupsLyingGroupCount: a section declaring more groups than
// it holds errors contextually once the stream runs dry.
func TestSampleGroupsLyingGroupCount(t *testing.T) {
	data := lyingGroupCount()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	err = r.SampleGroups(2, func(*SampleGroup) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "wire:") {
		t.Fatalf("lying group count: want contextual error, got %v", err)
	}
}

func BenchmarkSampleGroupsDecode(b *testing.B) {
	var buf bytes.Buffer
	if _, err := WriteWithSamples(&buf, quickFleet(b)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := NewReader(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				groups := 0
				if err := r.SampleGroups(workers, func(g *SampleGroup) error {
					groups++
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				if groups == 0 {
					b.Fatal("no groups decoded")
				}
			}
		})
	}
}

// TestSampleGroupsSubChunking: with the direct-decode threshold lowered,
// big groups stream as multiple consecutive link-aligned chunks — a
// link's run never splits, networks stay contiguous, and the
// concatenated content equals the unsplit walk at any worker count.
func TestSampleGroupsSubChunking(t *testing.T) {
	_, v2s, _ := encodeVariants(t, quickFleet(t))
	whole := groupWalk(t, v2s, 2)

	old := directDecodeRows
	directDecodeRows = 64
	defer func() { directDecodeRows = old }()

	split := groupWalk(t, v2s, 2)
	if len(split) <= len(whole) {
		t.Fatalf("threshold 64 produced %d chunks for %d groups; expected splitting", len(split), len(whole))
	}
	// Networks contiguous; links never split across chunk boundaries.
	seen := map[string]bool{}
	for i, g := range split {
		key := g.Band + "/" + g.Net
		if i == 0 || split[i-1].Band+"/"+split[i-1].Net != key {
			if seen[key] {
				t.Fatalf("network %s chunks are not consecutive", key)
			}
			seen[key] = true
		} else if len(g.Samples) > 0 && len(split[i-1].Samples) > 0 {
			prev := split[i-1].Samples[len(split[i-1].Samples)-1]
			first := g.Samples[0]
			if prev.From == first.From && prev.To == first.To {
				t.Fatalf("network %s: link %d→%d split across chunks %d/%d", g.Net, first.From, first.To, i-1, i)
			}
		}
	}
	// Same content, same order.
	cat := func(gs []*SampleGroup) map[string][]snr.Sample {
		out := map[string][]snr.Sample{}
		for _, g := range gs {
			out[g.Band] = append(out[g.Band], g.Samples...)
		}
		return out
	}
	a, b := cat(whole), cat(split)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sub-chunked walk content diverges from the unsplit walk")
	}
	// The parallel oracle holds for the split path too.
	if again := groupWalk(t, v2s, 8); !reflect.DeepEqual(split, again) {
		t.Fatal("split walk diverges across worker counts")
	}
	// Truncations still error contextually through the sub-chunk path.
	r, err := NewReader(bytes.NewReader(v2s[:len(v2s)-31]))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SampleGroups(2, func(*SampleGroup) error { return nil }); err == nil || !strings.Contains(err.Error(), "wire:") {
		t.Fatalf("truncated sub-chunk walk: %v", err)
	}
}
