// Package wire implements a compact binary encoding of fleet datasets.
// The JSON-lines format (internal/dataset) is the inspectable interchange
// format; a reference-scale fleet in it runs to hundreds of megabytes,
// while this encoding stores a probe set in tens of bytes. The format is
// versioned by a leading magic ("MLF1") so readers can auto-detect which
// decoder to use.
//
// Layout (little-endian throughout):
//
//	magic "MLF1"
//	meta: seed u64, probeDuration i32, probeInterval i32, clientDuration i32
//	u32 network count, then per network:
//	  name str, band u8, env u8, spacing f64
//	  u32 AP count, per AP: name str, x f64, y f64, outdoor u8
//	  u32 link count, per link: from u16, to u16, u32 set count,
//	    per set: t i32, snr i16, std f32, obs count u8,
//	      per obs: rate u8, loss f32
//	u32 client-dataset count, then per dataset:
//	  network str, env u8, duration i32, numAPs u16, u32 client count,
//	    per client: id u32, u32 assoc count, per assoc: ap u16, start i32, end i32
//
// Strings are u16 length + bytes. Enumerations: band 0=bg 1=n;
// env 0=indoor 1=outdoor 2=mixed.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"meshlab/internal/dataset"
)

// Magic identifies the format and version.
var Magic = [4]byte{'M', 'L', 'F', '1'}

var bandCodes = map[string]uint8{"bg": 0, "n": 1}
var bandNames = map[uint8]string{0: "bg", 1: "n"}
var envCodes = map[string]uint8{"indoor": 0, "outdoor": 1, "mixed": 2}
var envNames = map[uint8]string{0: "indoor", 1: "outdoor", 2: "mixed"}

// writer wraps buffered little-endian primitives with sticky errors.
type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u8(v uint8)    { w.bytes([]byte{v}) }
func (w *writer) u16(v uint16)  { w.fixed(v) }
func (w *writer) u32(v uint32)  { w.fixed(v) }
func (w *writer) u64(v uint64)  { w.fixed(v) }
func (w *writer) i16(v int16)   { w.fixed(v) }
func (w *writer) i32(v int32)   { w.fixed(v) }
func (w *writer) f32(v float32) { w.fixed(math.Float32bits(v)) }
func (w *writer) f64(v float64) { w.fixed(math.Float64bits(v)) }

func (w *writer) fixed(v any) {
	if w.err != nil {
		return
	}
	w.err = binary.Write(w.w, binary.LittleEndian, v)
}

func (w *writer) bytes(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

func (w *writer) str(s string) {
	if len(s) > math.MaxUint16 {
		if w.err == nil {
			w.err = fmt.Errorf("wire: string too long (%d bytes)", len(s))
		}
		return
	}
	w.u16(uint16(len(s)))
	w.bytes([]byte(s))
}

// Write encodes the fleet in the binary format.
func Write(out io.Writer, f *dataset.Fleet) error {
	w := &writer{w: bufio.NewWriterSize(out, 1<<20)}
	w.bytes(Magic[:])
	w.u64(f.Meta.Seed)
	w.i32(f.Meta.ProbeDuration)
	w.i32(f.Meta.ProbeInterval)
	w.i32(f.Meta.ClientDuration)

	w.u32(uint32(len(f.Networks)))
	for _, nd := range f.Networks {
		band, ok := bandCodes[nd.Info.Band]
		if !ok {
			return fmt.Errorf("wire: unknown band %q", nd.Info.Band)
		}
		env, ok := envCodes[nd.Info.Env]
		if !ok {
			return fmt.Errorf("wire: unknown environment %q", nd.Info.Env)
		}
		if len(nd.Info.APs) > math.MaxUint16 {
			return fmt.Errorf("wire: network %s too large", nd.Info.Name)
		}
		w.str(nd.Info.Name)
		w.u8(band)
		w.u8(env)
		w.f64(nd.Info.Spacing)
		w.u32(uint32(len(nd.Info.APs)))
		for _, ap := range nd.Info.APs {
			w.str(ap.Name)
			w.f64(ap.X)
			w.f64(ap.Y)
			if ap.Outdoor {
				w.u8(1)
			} else {
				w.u8(0)
			}
		}
		w.u32(uint32(len(nd.Links)))
		for _, l := range nd.Links {
			if l.From < 0 || l.From > math.MaxUint16 || l.To < 0 || l.To > math.MaxUint16 {
				return fmt.Errorf("wire: network %s: link %d→%d endpoints do not fit u16",
					nd.Info.Name, l.From, l.To)
			}
			w.u16(uint16(l.From))
			w.u16(uint16(l.To))
			w.u32(uint32(len(l.Sets)))
			for si, ps := range l.Sets {
				w.i32(ps.T)
				w.i16(ps.SNR)
				w.f32(ps.SNRStd)
				// The format stores the observation count in a u8; reject
				// rather than silently truncating the probe set.
				if len(ps.Obs) > math.MaxUint8 {
					return fmt.Errorf("wire: network %s link %d→%d probe set %d: %d observations exceed the format's u8 limit of %d",
						nd.Info.Name, l.From, l.To, si, len(ps.Obs), math.MaxUint8)
				}
				w.u8(uint8(len(ps.Obs)))
				for _, o := range ps.Obs {
					w.u8(o.RateIdx)
					w.f32(o.Loss)
				}
			}
		}
	}

	w.u32(uint32(len(f.Clients)))
	for _, cd := range f.Clients {
		env, ok := envCodes[cd.Env]
		if !ok {
			return fmt.Errorf("wire: unknown environment %q", cd.Env)
		}
		if cd.NumAPs < 0 || cd.NumAPs > math.MaxUint16 {
			return fmt.Errorf("wire: client dataset %s: AP count %d does not fit u16", cd.Network, cd.NumAPs)
		}
		w.str(cd.Network)
		w.u8(env)
		w.i32(cd.Duration)
		w.u16(uint16(cd.NumAPs))
		w.u32(uint32(len(cd.Clients)))
		for _, cl := range cd.Clients {
			if cl.ID < 0 || int64(cl.ID) > math.MaxUint32 {
				return fmt.Errorf("wire: client dataset %s: client ID %d does not fit u32", cd.Network, cl.ID)
			}
			w.u32(uint32(cl.ID))
			w.u32(uint32(len(cl.Assocs)))
			for _, a := range cl.Assocs {
				if a.AP < 0 || a.AP > math.MaxUint16 {
					return fmt.Errorf("wire: client dataset %s client %d: association AP %d does not fit u16",
						cd.Network, cl.ID, a.AP)
				}
				w.u16(uint16(a.AP))
				w.i32(a.Start)
				w.i32(a.End)
			}
		}
	}
	if w.err != nil {
		return fmt.Errorf("wire: %w", w.err)
	}
	return w.w.Flush()
}

// reader wraps buffered little-endian primitives with sticky errors.
type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) fixed(v any) {
	if r.err != nil {
		return
	}
	r.err = binary.Read(r.r, binary.LittleEndian, v)
}

func (r *reader) u8() uint8    { var v uint8; r.fixed(&v); return v }
func (r *reader) u16() uint16  { var v uint16; r.fixed(&v); return v }
func (r *reader) u32() uint32  { var v uint32; r.fixed(&v); return v }
func (r *reader) u64() uint64  { var v uint64; r.fixed(&v); return v }
func (r *reader) i16() int16   { var v int16; r.fixed(&v); return v }
func (r *reader) i32() int32   { var v int32; r.fixed(&v); return v }
func (r *reader) f32() float32 { var v uint32; r.fixed(&v); return math.Float32frombits(v) }
func (r *reader) f64() float64 { var v uint64; r.fixed(&v); return math.Float64frombits(v) }

func (r *reader) str() string {
	n := int(r.u16())
	if r.err != nil {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return ""
	}
	return string(b)
}

// count reads a u32 element count and sanity-bounds it so corrupt files
// cannot trigger absurd allocations.
func (r *reader) count(what string, limit uint32) int {
	n := r.u32()
	if r.err == nil && n > limit {
		r.err = fmt.Errorf("implausible %s count %d", what, n)
	}
	return int(n)
}

// Read decodes a fleet from the binary format.
func Read(in io.Reader) (*dataset.Fleet, error) {
	r := &reader{r: bufio.NewReaderSize(in, 1<<20)}
	var magic [4]byte
	if _, err := io.ReadFull(r.r, magic[:]); err != nil {
		return nil, fmt.Errorf("wire: magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("wire: bad magic %q (not a binary fleet file)", magic)
	}
	f := &dataset.Fleet{}
	f.Meta.Seed = r.u64()
	f.Meta.ProbeDuration = r.i32()
	f.Meta.ProbeInterval = r.i32()
	f.Meta.ClientDuration = r.i32()

	nNets := r.count("network", 1<<20)
	for i := 0; i < nNets && r.err == nil; i++ {
		nd := &dataset.NetworkData{}
		nd.Info.Name = r.str()
		band := r.u8()
		env := r.u8()
		var ok bool
		if nd.Info.Band, ok = bandNames[band]; !ok && r.err == nil {
			return nil, fmt.Errorf("wire: unknown band code %d", band)
		}
		if nd.Info.Env, ok = envNames[env]; !ok && r.err == nil {
			return nil, fmt.Errorf("wire: unknown env code %d", env)
		}
		nd.Info.Spacing = r.f64()
		nAPs := r.count("AP", 1<<16)
		for a := 0; a < nAPs && r.err == nil; a++ {
			nd.Info.APs = append(nd.Info.APs, dataset.APInfo{
				Name: r.str(), X: r.f64(), Y: r.f64(), Outdoor: r.u8() == 1,
			})
		}
		nLinks := r.count("link", 1<<26)
		for l := 0; l < nLinks && r.err == nil; l++ {
			link := &dataset.Link{From: int(r.u16()), To: int(r.u16())}
			nSets := r.count("probe set", 1<<26)
			if r.err == nil && nSets > 0 {
				link.Sets = make([]dataset.ProbeSet, 0, nSets)
			}
			for s := 0; s < nSets && r.err == nil; s++ {
				ps := dataset.ProbeSet{T: r.i32(), SNR: r.i16(), SNRStd: r.f32()}
				nObs := int(r.u8())
				for o := 0; o < nObs && r.err == nil; o++ {
					ps.Obs = append(ps.Obs, dataset.Obs{RateIdx: r.u8(), Loss: r.f32()})
				}
				link.Sets = append(link.Sets, ps)
			}
			nd.Links = append(nd.Links, link)
		}
		f.Networks = append(f.Networks, nd)
	}

	nClients := r.count("client dataset", 1<<20)
	for i := 0; i < nClients && r.err == nil; i++ {
		cd := &dataset.ClientData{}
		cd.Network = r.str()
		env := r.u8()
		var ok bool
		if cd.Env, ok = envNames[env]; !ok && r.err == nil {
			return nil, fmt.Errorf("wire: unknown env code %d", env)
		}
		cd.Duration = r.i32()
		cd.NumAPs = int(r.u16())
		n := r.count("client", 1<<24)
		for c := 0; c < n && r.err == nil; c++ {
			cl := dataset.ClientLog{ID: int(r.u32())}
			na := r.count("association", 1<<24)
			for a := 0; a < na && r.err == nil; a++ {
				cl.Assocs = append(cl.Assocs, dataset.Assoc{
					AP: int32(r.u16()), Start: r.i32(), End: r.i32(),
				})
			}
			cd.Clients = append(cd.Clients, cl)
		}
		f.Clients = append(f.Clients, cd)
	}
	if r.err != nil {
		return nil, fmt.Errorf("wire: %w", r.err)
	}
	return f, nil
}
