// Package wire implements a compact binary encoding of fleet datasets
// and a streaming reader over it. The JSON-lines format (internal/dataset)
// is the inspectable interchange format; a reference-scale fleet in it
// runs to hundreds of megabytes, while this encoding stores a probe set
// in tens of bytes. The full byte-level specification, including the
// version history and the cache-validation rules layered on top by
// meshlab.LoadOrGenerateFleet, lives in docs/FORMAT.md.
//
// Two format versions exist, distinguished by a leading magic:
//
//   - "MLF1" (legacy): the bare record stream. Readable, no longer
//     written; WriteV1 is retained so migration paths stay testable.
//   - "MLF2" (current): adds a section-flag byte, length-prefixed
//     network records and client section (so a Reader can skip either
//     without decoding them), and an optional appended flat-sample
//     section holding the pre-flattened §4 samples (snr.Sample) so warm
//     analysis starts are O(read) instead of re-flattening probe data.
//
// Write and WriteWithSamples produce MLF2; Read and Reader accept both
// versions. Reader is the streaming API: it walks a fleet file
// network-by-network with optional band/size filtering and per-network
// skip, so analysis peak memory is bounded by the largest single network
// plus whatever the caller retains — not the fleet.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic identifies the legacy v1 format.
var Magic = [4]byte{'M', 'L', 'F', '1'}

// Magic2 identifies the current v2 format (sectioned, length-prefixed).
var Magic2 = [4]byte{'M', 'L', 'F', '2'}

// flagFlatSamples marks an MLF2 file carrying the appended flat-sample
// section. All other flag bits are reserved and must be zero.
const flagFlatSamples uint8 = 1 << 0

var bandCodes = map[string]uint8{"bg": 0, "n": 1}
var bandNames = map[uint8]string{0: "bg", 1: "n"}
var envCodes = map[string]uint8{"indoor": 0, "outdoor": 1, "mixed": 2}
var envNames = map[uint8]string{0: "indoor", 1: "outdoor", 2: "mixed"}

// writer wraps little-endian primitives with sticky errors. The target is
// either the output's bufio.Writer or a per-record scratch buffer (v2
// records are length-prefixed, so they are staged before emission).
type writer struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (w *writer) bytes(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

func (w *writer) u8(v uint8) { w.buf[0] = v; w.bytes(w.buf[:1]) }

func (w *writer) u16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[:2], v)
	w.bytes(w.buf[:2])
}

func (w *writer) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.bytes(w.buf[:4])
}

func (w *writer) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.bytes(w.buf[:8])
}

func (w *writer) i16(v int16)   { w.u16(uint16(v)) }
func (w *writer) i32(v int32)   { w.u32(uint32(v)) }
func (w *writer) f32(v float32) { w.u32(math.Float32bits(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) str(s string) {
	if len(s) > math.MaxUint16 {
		if w.err == nil {
			w.err = fmt.Errorf("wire: string too long (%d bytes)", len(s))
		}
		return
	}
	w.u16(uint16(len(s)))
	w.bytes([]byte(s))
}

// reader wraps buffered little-endian primitives with sticky errors and a
// consumed-byte counter, which the v2 framing uses to verify that every
// length-prefixed record is consumed exactly.
type reader struct {
	r    *bufio.Reader
	err  error
	n    int64 // bytes consumed since the reader was constructed
	base int64 // absolute file offset the count started at (resume support)
	buf  [8]byte
}

// off returns the absolute file offset of the next unread byte, assuming
// the stream was positioned at base when the reader was constructed.
func (r *reader) off() int64 { return r.base + r.n }

// fail records the first error; a mid-structure EOF is always unexpected
// because every read below is driven by a previously decoded count.
func (r *reader) fail(err error) {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if r.err == nil {
		r.err = err
	}
}

// read returns the next k (≤ 8) bytes, or nil after a failure.
func (r *reader) read(k int) []byte {
	if r.err != nil {
		return nil
	}
	if _, err := io.ReadFull(r.r, r.buf[:k]); err != nil {
		r.fail(err)
		return nil
	}
	r.n += int64(k)
	return r.buf[:k]
}

// full fills b from the stream, tracking consumed bytes.
func (r *reader) full(b []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.fail(err)
		return
	}
	r.n += int64(len(b))
}

func (r *reader) u8() uint8 {
	b := r.read(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.read(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.read(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.read(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i16() int16   { return int16(r.u16()) }
func (r *reader) i32() int32   { return int32(r.u32()) }
func (r *reader) f32() float32 { return math.Float32frombits(r.u32()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	k := int(r.u16())
	if r.err != nil {
		return ""
	}
	b := make([]byte, k)
	r.full(b)
	if r.err != nil {
		return ""
	}
	return string(b)
}

// skipStr discards one length-prefixed string.
func (r *reader) skipStr() {
	k := int(r.u16())
	if r.err != nil {
		return
	}
	r.discard(int64(k))
}

// discard drops k bytes, failing on a short stream.
func (r *reader) discard(k int64) {
	for k > 0 && r.err == nil {
		chunk := k
		if chunk > 1<<30 {
			chunk = 1 << 30
		}
		d, err := r.r.Discard(int(chunk))
		r.n += int64(d)
		if err != nil {
			r.fail(err)
			return
		}
		k -= chunk
	}
}

// count reads a u32 element count and sanity-bounds it so corrupt files
// cannot trigger absurd allocations.
func (r *reader) count(what string, limit uint32) int {
	n := r.u32()
	if r.err == nil && n > limit {
		r.err = corruptf("implausible %s count %d", what, n)
	}
	return int(n)
}
