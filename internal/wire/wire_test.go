package wire

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"meshlab/internal/dataset"
	"meshlab/internal/phy"
	"meshlab/internal/rng"
	"meshlab/internal/synth"
)

var fleetOnce sync.Once
var testFleet *dataset.Fleet

func quickFleet(t testing.TB) *dataset.Fleet {
	fleetOnce.Do(func() {
		f, err := synth.Generate(synth.Quick(33))
		if err != nil {
			panic(err)
		}
		testFleet = f
	})
	if testFleet == nil {
		t.Fatal("no fleet")
	}
	return testFleet
}

func TestRoundTripExact(t *testing.T) {
	f := quickFleet(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Meta, got.Meta) {
		t.Fatalf("meta mismatch: %+v vs %+v", f.Meta, got.Meta)
	}
	if len(got.Networks) != len(f.Networks) || len(got.Clients) != len(f.Clients) {
		t.Fatal("collection counts changed")
	}
	for i := range f.Networks {
		if !reflect.DeepEqual(f.Networks[i].Info, got.Networks[i].Info) {
			t.Fatalf("network %d info mismatch", i)
		}
		if len(f.Networks[i].Links) != len(got.Networks[i].Links) {
			t.Fatalf("network %d link count mismatch", i)
		}
		for j := range f.Networks[i].Links {
			a, b := f.Networks[i].Links[j], got.Networks[i].Links[j]
			if a.From != b.From || a.To != b.To || !reflect.DeepEqual(a.Sets, b.Sets) {
				t.Fatalf("network %d link %d mismatch", i, j)
			}
		}
	}
	for i := range f.Clients {
		if !reflect.DeepEqual(f.Clients[i], got.Clients[i]) {
			t.Fatalf("client dataset %d mismatch", i)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	f := quickFleet(t)
	var bin, jsonl bytes.Buffer
	if err := Write(&bin, f); err != nil {
		t.Fatal(err)
	}
	if err := dataset.Write(&jsonl, f); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*2 > jsonl.Len() {
		t.Fatalf("binary (%d bytes) should be under half of JSONL (%d bytes)", bin.Len(), jsonl.Len())
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOPE-this-is-not-a-fleet")); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := Read(strings.NewReader("ML")); err == nil {
		t.Fatal("truncated magic should error")
	}
}

func TestTruncatedStream(t *testing.T) {
	f := quickFleet(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 20, len(full) / 2, len(full) - 3} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes should error", cut)
		}
	}
}

func TestCorruptCountRejected(t *testing.T) {
	f := quickFleet(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// The network count lives right after magic (4) + meta (8+4+4+4) +
	// the v2 section-flag byte.
	off := 4 + 8 + 4 + 4 + 4 + 1
	for i := 0; i < 4; i++ {
		b[off+i] = 0xFF
	}
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("absurd network count should be rejected, not allocated")
	}
}

func TestUnknownBandRejectedOnWrite(t *testing.T) {
	f := &dataset.Fleet{Networks: []*dataset.NetworkData{{
		Info: dataset.NetworkInfo{Name: "x", Band: "ac", Env: "indoor"},
	}}}
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("unknown band should fail to encode")
	}
	f.Networks[0].Info.Band = "bg"
	f.Networks[0].Info.Env = "underwater"
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("unknown environment should fail to encode")
	}
}

// TestOversizedProbeSetRejected pins the encode-time guard: a probe set
// with more observations than the format's u8 count field must fail with
// a descriptive error, never truncate silently.
func TestOversizedProbeSetRejected(t *testing.T) {
	obs := make([]dataset.Obs, 256)
	for i := range obs {
		// Indices must stay legal for the bg band (7 rates): this test is
		// about the count limit, not the rate-index bound.
		obs[i] = dataset.Obs{RateIdx: uint8(i % 7)}
	}
	f := &dataset.Fleet{Networks: []*dataset.NetworkData{{
		Info: dataset.NetworkInfo{Name: "big", Band: "bg", Env: "indoor"},
		Links: []*dataset.Link{{
			From: 0, To: 1,
			Sets: []dataset.ProbeSet{{T: 0, SNR: 20, Obs: obs}},
		}},
	}}}
	err := Write(&bytes.Buffer{}, f)
	if err == nil {
		t.Fatal("256 observations should fail to encode")
	}
	for _, want := range []string{"big", "0→1", "256"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q should name %q", err, want)
		}
	}
	// Exactly 255 observations is legal and must round-trip.
	f.Networks[0].Links[0].Sets[0].Obs = obs[:255]
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatalf("255 observations should encode: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got.Networks[0].Links[0].Sets[0].Obs); n != 255 {
		t.Fatalf("round-tripped %d observations, want 255", n)
	}
}

// TestOutOfRangeFieldsRejected covers the other silent-truncation hazards
// of the fixed-width format: link endpoints and association AP indices
// beyond u16.
func TestOutOfRangeFieldsRejected(t *testing.T) {
	f := &dataset.Fleet{Networks: []*dataset.NetworkData{{
		Info:  dataset.NetworkInfo{Name: "x", Band: "bg", Env: "indoor"},
		Links: []*dataset.Link{{From: 70000, To: 1}},
	}}}
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("link endpoint beyond u16 should fail to encode")
	}
	f = &dataset.Fleet{Clients: []*dataset.ClientData{{
		Network: "x", Env: "indoor", NumAPs: 5,
		Clients: []dataset.ClientLog{{ID: 1, Assocs: []dataset.Assoc{{AP: 1 << 17}}}},
	}}}
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("association AP beyond u16 should fail to encode")
	}
}

func TestEmptyFleet(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &dataset.Fleet{}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Networks) != 0 || len(got.Clients) != 0 {
		t.Fatal("empty fleet should round-trip empty")
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	f := quickFleet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	f := quickFleet(b)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRoundTripPropertyRandomFleets fuzzes the codec with randomly shaped
// fleets (values drawn from the schema's legal ranges) and asserts exact
// round trips.
func TestRoundTripPropertyRandomFleets(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		fl := &dataset.Fleet{Meta: dataset.Meta{
			Seed:          r.Uint64(),
			ProbeDuration: int32(r.Intn(100000)),
			ProbeInterval: int32(r.Intn(3600) + 1),
		}}
		bands := []string{"bg", "n"}
		envs := []string{"indoor", "outdoor", "mixed"}
		for n := 0; n < r.Intn(3); n++ {
			nd := &dataset.NetworkData{Info: dataset.NetworkInfo{
				Name:    "net" + string(rune('a'+n)),
				Band:    bands[r.Intn(2)],
				Env:     envs[r.Intn(3)],
				Spacing: r.Range(10, 100),
			}}
			nAPs := 2 + r.Intn(5)
			for a := 0; a < nAPs; a++ {
				nd.Info.APs = append(nd.Info.APs, dataset.APInfo{
					Name: "ap", X: r.Range(-500, 500), Y: r.Range(-500, 500), Outdoor: r.Bool(0.5),
				})
			}
			band, err := phy.BandByName(nd.Info.Band)
			if err != nil {
				t.Fatal(err)
			}
			for l := 0; l < r.Intn(4); l++ {
				link := &dataset.Link{From: r.Intn(nAPs), To: r.Intn(nAPs)}
				for s := 0; s < r.Intn(5); s++ {
					ps := dataset.ProbeSet{
						T: int32(s * 300), SNR: int16(r.Intn(90) - 10), SNRStd: float32(r.Range(0, 10)),
					}
					for o := 0; o < r.Intn(4); o++ {
						ps.Obs = append(ps.Obs, dataset.Obs{
							// Rate indices must be legal for the band: the
							// codec bounds them on encode and decode.
							RateIdx: uint8(r.Intn(len(band.Rates))), Loss: float32(r.Float64()),
						})
					}
					link.Sets = append(link.Sets, ps)
				}
				nd.Links = append(nd.Links, link)
			}
			fl.Networks = append(fl.Networks, nd)
		}
		for c := 0; c < r.Intn(2); c++ {
			cd := &dataset.ClientData{
				Network: "net", Env: envs[r.Intn(3)], Duration: 39600, NumAPs: 5,
			}
			for k := 0; k < r.Intn(4); k++ {
				cl := dataset.ClientLog{ID: k}
				start := int32(0)
				for a := 0; a < r.Intn(4); a++ {
					end := start + int32(r.Intn(1000)+1)
					cl.Assocs = append(cl.Assocs, dataset.Assoc{
						AP: int32(r.Intn(5)), Start: start, End: end,
					})
					start = end + int32(r.Intn(500))
				}
				cd.Clients = append(cd.Clients, cl)
			}
			fl.Clients = append(fl.Clients, cd)
		}

		var buf bytes.Buffer
		if err := Write(&buf, fl); err != nil {
			t.Logf("seed %d: write: %v", seed, err)
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			t.Logf("seed %d: read: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(fl.Meta, got.Meta) ||
			len(got.Networks) != len(fl.Networks) ||
			len(got.Clients) != len(fl.Clients) {
			return false
		}
		for i := range fl.Networks {
			if !reflect.DeepEqual(fl.Networks[i].Info, got.Networks[i].Info) {
				return false
			}
			for j := range fl.Networks[i].Links {
				if !reflect.DeepEqual(fl.Networks[i].Links[j], got.Networks[i].Links[j]) {
					return false
				}
			}
		}
		for i := range fl.Clients {
			if !reflect.DeepEqual(fl.Clients[i], got.Clients[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangeClientIDRejected(t *testing.T) {
	f := &dataset.Fleet{Clients: []*dataset.ClientData{{
		Network: "x", Env: "indoor", NumAPs: 5,
		Clients: []dataset.ClientLog{{ID: -1}},
	}}}
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("negative client ID should fail to encode")
	}
}
