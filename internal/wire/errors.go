package wire

// errors.go classifies and contextualizes reader failures so callers —
// the shard runner's retry/quarantine policy above all — can make
// decisions with errors.Is/errors.As instead of string matching. Two
// axes matter:
//
//   - What: ErrCorrupt marks data that is wrong (a failed validation, an
//     implausible count, a mid-structure truncation). Everything else
//     surfacing from the underlying stream (EIO from flaky storage, an
//     injected faultfs.ErrTransient) is an I/O fault: the bytes might be
//     fine on a retry. Corruption is never retryable; I/O faults are.
//   - Where: Error carries the absolute byte offset and, inside the
//     network section, the fleet-order network index and identity, so a
//     quarantine manifest can name exactly what was lost.
//
// Every contextual wrap in this package uses %w (or Error, which
// unwraps), so both sentinels survive arbitrary nesting.

import (
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt marks data corruption: the stream delivered bytes, but they
// fail the format's validation. Retrying the read cannot help. Use
// IsCorrupt to classify, since mid-structure truncation
// (io.ErrUnexpectedEOF) counts as corruption too.
var ErrCorrupt = errors.New("wire: corrupt data")

// corruptMark attaches ErrCorrupt to a validation error without changing
// its message, preserving any %w causes the message already wraps.
type corruptMark struct{ err error }

func (e *corruptMark) Error() string   { return e.err.Error() }
func (e *corruptMark) Unwrap() []error { return []error{e.err, ErrCorrupt} }

// corruptf builds a validation error that errors.Is-matches ErrCorrupt.
func corruptf(format string, args ...any) error {
	return &corruptMark{fmt.Errorf(format, args...)}
}

// IsCorrupt reports whether err is data corruption — a failed decode
// validation or a mid-structure truncation — as opposed to an I/O fault
// a retry might clear. The zero-byte case (a clean io.EOF before any
// structure) is not corruption.
func IsCorrupt(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, io.ErrUnexpectedEOF)
}

// Error is the contextual error a Reader attaches to failures: the
// absolute byte offset where the failure surfaced, the fleet-order
// network index and identity when inside the network section, and the
// section name otherwise. It wraps the cause, so sentinel classification
// (ErrCorrupt, io.ErrUnexpectedEOF, an injected transient) passes
// through errors.Is/errors.As unchanged.
type Error struct {
	// Offset is the absolute byte offset of the reader when the error
	// surfaced (bytes consumed from the start of the file, counting the
	// magic, plus any resume base).
	Offset int64
	// Network is the fleet-order network index, or -1 outside the network
	// section.
	Network int
	// Net and Band identify the network when known.
	Net, Band string
	// Section names the file section ("header", "network", "clients",
	// "flat-sample").
	Section string
	// Err is the cause.
	Err error
}

func (e *Error) Error() string {
	if e.Network >= 0 {
		return fmt.Sprintf("wire: network %d (%s/%s) at byte %d: %v", e.Network, e.Net, e.Band, e.Offset, e.Err)
	}
	return fmt.Sprintf("wire: %s section at byte %d: %v", e.Section, e.Offset, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }
