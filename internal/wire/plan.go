package wire

// plan.go supports sharded reading of one MLF2 file: BuildPlan walks the
// file once without decoding network bodies, recording the byte offset
// and identity of every network record plus the flat-sample section, and
// the resulting Plan can then mint independent Readers that resume at
// any network range (ResumeNetworks) or at the sample section
// (ResumeSamples) on a freshly opened — and pre-seeked — stream. Each
// shard worker owns its own file handle and its own Reader, so shards
// stream concurrently with no shared cursor, and a retry is just a
// re-open + re-seek with the same plan.
//
// Only MLF2 qualifies: v1 records carry no length prefixes, so their
// extents cannot be known without decoding, and there is nothing to
// seek back to cheaply. The plan walk itself is the cheap one-pass scan
// the v2 framing was designed for (header + discard per network).

import (
	"bufio"
	"fmt"
	"io"

	"meshlab/internal/dataset"
)

// PlanNet locates one network record inside the planned file.
type PlanNet struct {
	// Index is the network's position in fleet order.
	Index int
	// Name, Band, and NumAPs mirror the record's header — enough to
	// partition shards and to name a quarantined network in a manifest
	// without touching the file again.
	Name   string
	Band   string
	NumAPs int
	// Offset is the absolute byte offset of the record's length prefix;
	// Len is the full record extent (prefix + header + body), so
	// Offset+Len is the next record's Offset.
	Offset int64
	Len    int64
}

// Plan is the byte-offset index of one MLF2 file, built by BuildPlan.
// The client section is decoded during the walk (it sits between the
// network and sample sections and is orders of magnitude smaller than
// either), so shard workers never need to touch it.
type Plan struct {
	Meta     dataset.Meta
	Networks []PlanNet
	// Clients is the decoded client section, in file order.
	Clients []*dataset.ClientData
	// SamplesOffset is the absolute byte offset of the flat-sample
	// section's length prefix, or 0 when the file carries no such section
	// (0 is never a valid section offset — the magic alone occupies it).
	SamplesOffset int64
	flags         uint8
}

// BuildPlan scans an MLF2 stream from its first byte, recording every
// network record's offset and extent, decoding the client section, and
// locating the flat-sample section. Network bodies are skipped, not
// decoded, so the scan is bounded by I/O, not decode work.
func BuildPlan(in io.Reader) (*Plan, error) {
	r, err := NewReader(in)
	if err != nil {
		return nil, err
	}
	if r.Version() < 2 {
		return nil, fmt.Errorf("wire: sharded reading requires an MLF2 file; version %d records are not seekable", r.Version())
	}
	p := &Plan{Meta: r.Meta(), flags: r.flags}
	if n := r.NumNetworks(); n > 0 {
		p.Networks = make([]PlanNet, 0, n)
	}
	for {
		off := r.Offset()
		h, err := r.NextHeader()
		if err != nil {
			return nil, err
		}
		if h == nil {
			break
		}
		pn := PlanNet{
			Index: h.Index, Name: h.Name, Band: h.Band, NumAPs: h.NumAPs,
			Offset: off,
		}
		if err := r.Skip(); err != nil {
			return nil, err
		}
		pn.Len = r.Offset() - off
		p.Networks = append(p.Networks, pn)
	}
	cds, err := r.Clients()
	if err != nil {
		return nil, err
	}
	p.Clients = cds
	if r.HasFlatSamples() {
		p.SamplesOffset = r.Offset()
	}
	return p, nil
}

// resume builds a Reader over a stream already positioned at base.
func (p *Plan) resume(in io.Reader, base int64, next, nNets, sect int) *Reader {
	br, ok := in.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(in, 1<<20)
	}
	return &Reader{
		rd:      reader{r: br, base: base},
		version: 2,
		meta:    p.Meta,
		flags:   p.flags,
		nNets:   nNets,
		next:    next,
		sect:    sect,
	}
}

// ResumeNetworks returns a Reader that walks exactly count network
// records starting at fleet index first, reporting fleet-order indices
// and byte-accurate error offsets. The stream must already be
// positioned at p.Networks[first].Offset — re-open the file and Seek
// there first; the Reader never reads outside [first, first+count).
func (p *Plan) ResumeNetworks(in io.Reader, first, count int) (*Reader, error) {
	if first < 0 || count < 0 || first+count > len(p.Networks) {
		return nil, fmt.Errorf("wire: resume range [%d, %d) outside the plan's %d networks", first, first+count, len(p.Networks))
	}
	var base int64
	if count > 0 {
		base = p.Networks[first].Offset
	}
	return p.resume(in, base, first, first+count, sectNetworks), nil
}

// ResumeSamples returns a Reader positioned at the flat-sample section,
// ready for SampleGroups or FilterSampleGroups. The stream must already
// be positioned at p.SamplesOffset. Errors when the planned file
// carries no flat-sample section.
func (p *Plan) ResumeSamples(in io.Reader) (*Reader, error) {
	if p.SamplesOffset == 0 {
		return nil, fmt.Errorf("wire: planned file has no flat-sample section to resume")
	}
	n := len(p.Networks)
	return p.resume(in, p.SamplesOffset, n, n, sectSamples), nil
}
