package wire

// Native fuzz targets for the decode surface. The contract under fuzzing
// is threefold: a corrupt or truncated input must yield a contextual
// error (prefixed "wire:", naming the structure being decoded) — never a
// panic — and must never trigger unbounded allocation: every variable-
// length structure is guarded by the reader's implausible-count limits
// and the flat-sample section's remaining-bytes check, so a handful of
// corrupt length bytes cannot demand gigabytes. Inputs past 1 MiB are
// skipped to keep iterations fast; the count guards are byte-pattern
// properties, not size properties.
//
// The seed corpus under testdata/fuzz covers both format versions, the
// flat-sample section, and truncated/corrupt variants; regenerate it with
//
//	go test ./internal/wire -run TestWriteFuzzCorpus -update-corpus

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meshlab/internal/dataset"
	"meshlab/internal/phy"
)

// hugeSampleSection hand-assembles a minimal MLF2 file whose flat-sample
// section lies about its length (2^62 bytes) and declares an absurd
// sample count: the shape that would force a multi-GB up-front
// allocation if the decoder trusted either number.
func hugeSampleSection() []byte {
	var buf bytes.Buffer
	w := &writer{w: &buf}
	w.bytes(Magic2[:])
	encodeMeta(w, dataset.Meta{})
	w.u8(flagFlatSamples)
	w.u32(0)       // no networks
	w.u64(4)       // client section length
	w.u32(0)       // no client datasets
	w.u64(1 << 62) // absurd section length
	w.u8(1)        // one band
	w.u8(0)        // bg
	w.u8(uint8(len(phy.BandBG.Rates)))
	w.u32(1) // one group
	w.str("x")
	w.u32(1 << 27) // absurd sample count, "backed" by the lying secLen
	return buf.Bytes()
}

// TestSampleSectionLyingLengthBoundsAllocation: a ~60-byte file whose
// section length and sample count are both hostile must produce a
// contextual error after at most one bounded chunk allocation, never an
// OOM-scale make.
func TestSampleSectionLyingLengthBoundsAllocation(t *testing.T) {
	_, err := ReadSamples(bytes.NewReader(hugeSampleSection()))
	if err == nil || !strings.Contains(err.Error(), "wire:") {
		t.Fatalf("want contextual error, got %v", err)
	}
}

// lyingGroupCount hand-assembles an MLF2 file whose flat-sample section
// is internally consistent byte-wise (honest secLen) but declares five
// sample groups while holding one: the walk must error contextually when
// the stream runs dry mid-group-header, never hang or panic.
func lyingGroupCount() []byte {
	var body bytes.Buffer
	bw := &writer{w: &body}
	bw.u8(1) // one band
	bw.u8(0) // bg
	nr := len(phy.BandBG.Rates)
	bw.u8(uint8(nr))
	bw.u32(5) // five groups declared, one encoded
	bw.str("liar")
	bw.u32(1) // one sample row
	bw.u16(0) // from
	bw.u16(1) // to
	bw.i32(300)
	bw.i16(20)
	bw.u8(2)     // popt
	bw.f64(11.5) // best
	for i := 0; i < nr; i++ {
		bw.f64(float64(i))
	}

	var buf bytes.Buffer
	w := &writer{w: &buf}
	w.bytes(Magic2[:])
	encodeMeta(w, dataset.Meta{})
	w.u8(flagFlatSamples)
	w.u32(0) // no networks
	w.u64(4) // client section length
	w.u32(0) // no client datasets
	w.u64(uint64(body.Len()))
	w.bytes(body.Bytes())
	return buf.Bytes()
}

// truncatedMidGroup cuts a real sample-carrying encoding inside the first
// group's row bytes: the chunk boundary case FuzzSampleGroups starts from.
func truncatedMidGroup(tb testing.TB) []byte {
	f := fuzzFleet()
	var v2, v2s bytes.Buffer
	if err := Write(&v2, f); err != nil {
		tb.Fatal(err)
	}
	if _, err := WriteWithSamples(&v2s, f); err != nil {
		tb.Fatal(err)
	}
	// The section trails the fleet; land the cut a handful of rows into it.
	cut := v2.Len() + (v2s.Len()-v2.Len())/3
	return bytes.Clone(v2s.Bytes()[:cut])
}

// sampleSectionFirstRows locates where the first group's row bytes begin
// in a WriteWithSamples encoding of fuzzFleet. The flat-sample section
// trails the v2 fleet bytes and opens with a u64 section length and a u8
// band count; the first band contributes a code u8, a rate-count u8, and
// a u32 group count before the first group's header (name string + u32
// sample count) — the rows start right after that header.
func sampleSectionFirstRows(tb testing.TB) (data []byte, rowsStart int) {
	f := fuzzFleet()
	var v2, v2s bytes.Buffer
	if err := Write(&v2, f); err != nil {
		tb.Fatal(err)
	}
	if _, err := WriteWithSamples(&v2s, f); err != nil {
		tb.Fatal(err)
	}
	name := f.Networks[0].Info.Name // the bg band's first (only) group
	rowsStart = v2.Len() + 8 + 1 + (1 + 1 + 4) + (2 + len(name)) + 4
	return v2s.Bytes(), rowsStart
}

// truncatedAfterGroupHeader cuts the encoding immediately after a valid
// group header — name and sample count decoded, zero row bytes present —
// so the very first row read hits the truncation.
func truncatedAfterGroupHeader(tb testing.TB) []byte {
	data, rowsStart := sampleSectionFirstRows(tb)
	return bytes.Clone(data[:rowsStart])
}

// flippedGroupCount corrupts a byte inside the first group's u32
// sample-count length prefix: the inflated count disagrees with the
// section's honest byte budget, the shape the remaining-bytes check
// exists to reject before any row allocation.
func flippedGroupCount(tb testing.TB) []byte {
	data, rowsStart := sampleSectionFirstRows(tb)
	out := bytes.Clone(data)
	out[rowsStart-2] = 0xFF
	return out
}

// fuzzFleet hand-builds a tiny two-band fleet (not via synth, so the
// corpus stays stable across generator changes).
func fuzzFleet() *dataset.Fleet {
	ps := func(t int32, snr int16, rates ...uint8) dataset.ProbeSet {
		p := dataset.ProbeSet{T: t, SNR: snr, SNRStd: 1.5}
		for i, r := range rates {
			p.Obs = append(p.Obs, dataset.Obs{RateIdx: r, Loss: float32(i) * 0.25})
		}
		return p
	}
	return &dataset.Fleet{
		Meta: dataset.Meta{Seed: 7, ProbeDuration: 600, ProbeInterval: 300, ClientDuration: 900},
		Networks: []*dataset.NetworkData{
			{
				Info: dataset.NetworkInfo{
					Name: "alpha", Band: "bg", Env: "indoor", Spacing: 25,
					APs: []dataset.APInfo{
						{Name: "a0", X: 0, Y: 0},
						{Name: "a1", X: 30, Y: 0, Outdoor: true},
						{Name: "a2", X: 0, Y: 30},
					},
				},
				Links: []*dataset.Link{
					{From: 0, To: 1, Sets: []dataset.ProbeSet{ps(0, 20, 0, 1, 2), ps(300, 22, 0, 1)}},
					{From: 1, To: 0, Sets: []dataset.ProbeSet{ps(0, 19, 0, 2)}},
					{From: 1, To: 2, Sets: []dataset.ProbeSet{ps(0, 31, 0, 1, 2, 3)}},
				},
			},
			{
				Info: dataset.NetworkInfo{
					Name: "beta", Band: "n", Env: "outdoor", Spacing: 40,
					APs: []dataset.APInfo{
						{Name: "b0", X: 0, Y: 0, Outdoor: true},
						{Name: "b1", X: 50, Y: 10, Outdoor: true},
					},
				},
				Links: []*dataset.Link{
					{From: 0, To: 1, Sets: []dataset.ProbeSet{ps(0, 27, 0, 1, 2)}},
				},
			},
		},
		Clients: []*dataset.ClientData{
			{
				Network: "alpha", Env: "indoor", Duration: 900, NumAPs: 3,
				Clients: []dataset.ClientLog{
					{ID: 1, Assocs: []dataset.Assoc{{AP: 0, Start: 0, End: 400}, {AP: 2, Start: 450, End: 900}}},
					{ID: 2, Assocs: []dataset.Assoc{{AP: 1, Start: 10, End: 890}}},
				},
			},
		},
	}
}

// fuzzSeeds returns the shared corpus: valid encodings of every format
// flavor plus deterministic truncations and corruptions.
func fuzzSeeds(tb testing.TB) [][]byte {
	f := fuzzFleet()
	var v1, v2, v2s bytes.Buffer
	if err := WriteV1(&v1, f); err != nil {
		tb.Fatal(err)
	}
	if err := Write(&v2, f); err != nil {
		tb.Fatal(err)
	}
	if _, err := WriteWithSamples(&v2s, f); err != nil {
		tb.Fatal(err)
	}
	corrupt := func(src []byte, off int, b byte) []byte {
		out := bytes.Clone(src)
		if off < len(out) {
			out[off] = b
		}
		return out
	}
	seeds := [][]byte{
		v1.Bytes(),
		v2.Bytes(),
		v2s.Bytes(),
		{},                                      // empty
		[]byte("MLFX????"),                      // bad magic
		v1.Bytes()[:20],                         // header cut mid-meta
		v2.Bytes()[:v2.Len()/2],                 // record cut mid-network
		v2s.Bytes()[:v2s.Len()-37],              // cut inside the flat-sample section
		corrupt(v2.Bytes(), 24, 0xFF),           // unknown section flags
		corrupt(v1.Bytes(), 24, 0xFF),           // absurd network count (v1 count low byte)
		corrupt(v2.Bytes(), 29, 0x01),           // wrong record length prefix
		corrupt(v2s.Bytes(), 60, 0xAA),          // flipped byte mid-record
		corrupt(v2s.Bytes(), v2s.Len()-9, 0x7F), // flipped byte in the sample section
		hugeSampleSection(),                     // lying section length + absurd count
		lyingGroupCount(),                       // more groups declared than present
		truncatedMidGroup(tb),                   // cut inside a group's row bytes
		truncatedAfterGroupHeader(tb),           // cut right after a valid group header
		flippedGroupCount(tb),                   // flipped byte in a group's count prefix
	}
	return seeds
}

// contextualError fails the fuzz run when a decode error lacks the
// package's context prefix: "never panic" is enforced by the runtime,
// "contextual" is enforced here.
func contextualError(t *testing.T, err error) {
	t.Helper()
	if err != nil && !strings.Contains(err.Error(), "wire:") {
		t.Fatalf("error without wire context: %v", err)
	}
}

// FuzzReader drives the streaming API: header walk with alternating
// Decode/Skip, then the client and sample sections.
func FuzzReader(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			contextualError(t, err)
			return
		}
		for i := 0; ; i++ {
			h, err := rd.NextHeader()
			if err != nil {
				contextualError(t, err)
				return
			}
			if h == nil {
				break
			}
			if i%2 == 0 {
				_, err = rd.Decode()
			} else {
				err = rd.Skip()
			}
			if err != nil {
				contextualError(t, err)
				return
			}
		}
		if _, err := rd.Clients(); err != nil {
			contextualError(t, err)
			return
		}
		if rd.HasFlatSamples() {
			_, err := rd.Samples()
			contextualError(t, err)
		}
	})
}

// FuzzReadFleet drives the whole-fleet decoders, and checks that decoding
// is a retraction of encoding: any fleet that decodes must re-encode, and
// the re-encoding must decode back to the same bytes.
func FuzzReadFleet(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		fl, err := Read(bytes.NewReader(data))
		if err != nil {
			contextualError(t, err)
		} else {
			var enc1 bytes.Buffer
			if err := Write(&enc1, fl); err != nil {
				t.Fatalf("a decoded fleet must re-encode: %v", err)
			}
			fl2, err := Read(bytes.NewReader(enc1.Bytes()))
			if err != nil {
				t.Fatalf("a re-encoded fleet must decode: %v", err)
			}
			var enc2 bytes.Buffer
			if err := Write(&enc2, fl2); err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
				t.Fatal("encode∘decode is not idempotent")
			}
		}
		// The sample stream must hold the same contract on the same input,
		// whether it reads the section or flattens the records.
		_, err = ReadSamples(bytes.NewReader(data))
		contextualError(t, err)
	})
}

// FuzzSampleGroups drives the chunked sample-section walk: the decode
// pool and in-order delivery must hold the same contract as the scalar
// readers — contextual errors, no panics, no hangs — across chunk
// boundaries, truncated groups, and lying counts. Delivered groups are
// additionally cross-checked against the serial walk, so corruption can
// never make the parallel path diverge from the single-threaded one.
func FuzzSampleGroups(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		walk := func(workers int) (int, error) {
			rd, err := NewReader(bytes.NewReader(data))
			if err != nil {
				contextualError(t, err)
				return 0, err
			}
			if !rd.HasFlatSamples() {
				return 0, nil
			}
			groups := 0
			err = rd.SampleGroups(workers, func(g *SampleGroup) error {
				for i := range g.Samples {
					if g.Samples[i].Net != g.Net {
						t.Fatalf("group %q delivered a sample for network %q", g.Net, g.Samples[i].Net)
					}
				}
				groups++
				return nil
			})
			contextualError(t, err)
			return groups, err
		}
		serialGroups, serialErr := walk(1)
		parallelGroups, parallelErr := walk(3)
		if (serialErr == nil) != (parallelErr == nil) {
			t.Fatalf("serial err %v vs parallel err %v", serialErr, parallelErr)
		}
		if serialErr == nil && serialGroups != parallelGroups {
			t.Fatalf("serial walk saw %d groups, parallel %d", serialGroups, parallelGroups)
		}
	})
}

var updateCorpus = flag.Bool("update-corpus", false, "rewrite the seed corpus under testdata/fuzz")

// TestWriteFuzzCorpus materializes fuzzSeeds as checked-in corpus files
// in Go's corpus encoding, so `go test -fuzz` starts from real format
// bytes even before any local fuzzing has run.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*updateCorpus {
		t.Skip("pass -update-corpus to rewrite testdata/fuzz")
	}
	for _, target := range []string{"FuzzReader", "FuzzReadFleet", "FuzzSampleGroups"} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range fuzzSeeds(t) {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSeedCorpusInSync guards the checked-in corpus against silent drift:
// every seed the fuzz targets start from must exist on disk (the CI fuzz
// smoke runs from these files).
func TestSeedCorpusInSync(t *testing.T) {
	seeds := fuzzSeeds(t)
	for _, target := range []string{"FuzzReader", "FuzzReadFleet", "FuzzSampleGroups"} {
		for i, seed := range seeds {
			path := filepath.Join("testdata", "fuzz", target, fmt.Sprintf("seed-%02d", i))
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("corpus file missing (regenerate with -update-corpus): %v", err)
			}
			want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			if string(got) != want {
				t.Fatalf("%s out of sync with fuzzSeeds (regenerate with -update-corpus)", path)
			}
		}
	}
}
