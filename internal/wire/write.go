package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"

	"meshlab/internal/dataset"
	"meshlab/internal/phy"
	"meshlab/internal/snr"
)

// Write encodes the fleet in the current (MLF2) binary format without the
// flat-sample section: the smallest interchange form. Dataset caches use
// WriteWithSamples instead so warm analysis starts skip re-flattening.
func Write(out io.Writer, f *dataset.Fleet) error {
	_, err := encodeFleet(out, f, false)
	return err
}

// WriteWithSamples encodes the fleet like Write and appends the
// flat-sample section: the per-band §4 samples snr.Flatten derives from
// the probe data, stored so a later Reader.Samples is O(read). The
// samples derived while encoding are returned (band → samples in fleet
// order, empty bands omitted — the same shape Reader.Samples yields) so
// a cache writer can hand them straight to an analysis instead of
// re-flattening. The section roughly triples the file size (a sample's
// f64 throughput row outweighs its probe set); it is meant for dataset
// caches, not interchange files.
func WriteWithSamples(out io.Writer, f *dataset.Fleet) (map[string][]snr.Sample, error) {
	return encodeFleet(out, f, true)
}

func encodeFleet(out io.Writer, f *dataset.Fleet, withSamples bool) (map[string][]snr.Sample, error) {
	bw := bufio.NewWriterSize(out, 1<<20)
	w := &writer{w: bw}
	w.bytes(Magic2[:])
	encodeMeta(w, f.Meta)
	var flags uint8
	if withSamples {
		flags |= flagFlatSamples
	}
	w.u8(flags)

	// Each v2 record is staged in a scratch buffer so its byte length can
	// prefix it; peak staging memory is one network record.
	var scratch bytes.Buffer
	w.u32(uint32(len(f.Networks)))
	for _, nd := range f.Networks {
		scratch.Reset()
		sw := &writer{w: &scratch}
		if err := encodeNetwork(sw, nd); err != nil {
			return nil, err
		}
		if scratch.Len() > math.MaxUint32 {
			return nil, fmt.Errorf("wire: network %s: record exceeds the format's u32 length field", nd.Info.Name)
		}
		w.u32(uint32(scratch.Len()))
		w.bytes(scratch.Bytes())
	}

	scratch.Reset()
	sw := &writer{w: &scratch}
	if err := encodeClients(sw, f.Clients); err != nil {
		return nil, err
	}
	w.u64(uint64(scratch.Len()))
	w.bytes(scratch.Bytes())

	var samples map[string][]snr.Sample
	if withSamples {
		scratch.Reset()
		sw := &writer{w: &scratch}
		var err error
		if samples, err = encodeSampleSection(sw, f); err != nil {
			return nil, err
		}
		w.u64(uint64(scratch.Len()))
		w.bytes(scratch.Bytes())
	}
	if w.err != nil {
		return nil, fmt.Errorf("wire: %w", w.err)
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return samples, nil
}

// WriteV1 encodes the fleet in the legacy MLF1 format: no section flags,
// no record length prefixes, no flat-sample section. It exists so the
// migration path — meshlab.LoadOrGenerateFleet upgrading old caches in
// place — stays testable; new files should use Write.
func WriteV1(out io.Writer, f *dataset.Fleet) error {
	bw := bufio.NewWriterSize(out, 1<<20)
	w := &writer{w: bw}
	w.bytes(Magic[:])
	encodeMeta(w, f.Meta)
	w.u32(uint32(len(f.Networks)))
	for _, nd := range f.Networks {
		if err := encodeNetwork(w, nd); err != nil {
			return err
		}
	}
	if err := encodeClients(w, f.Clients); err != nil {
		return err
	}
	if w.err != nil {
		return fmt.Errorf("wire: %w", w.err)
	}
	return bw.Flush()
}

func encodeMeta(w *writer, m dataset.Meta) {
	w.u64(m.Seed)
	w.i32(m.ProbeDuration)
	w.i32(m.ProbeInterval)
	w.i32(m.ClientDuration)
}

// encodeNetwork writes one network record: header (name, band, env,
// spacing, AP count), APs, then links. The v2 framing's length prefix is
// added by the caller.
func encodeNetwork(w *writer, nd *dataset.NetworkData) error {
	band, ok := bandCodes[nd.Info.Band]
	if !ok {
		return fmt.Errorf("wire: unknown band %q", nd.Info.Band)
	}
	phyBand, err := phy.BandByName(nd.Info.Band)
	if err != nil {
		return fmt.Errorf("wire: %w", err)
	}
	nRates := uint8(len(phyBand.Rates))
	env, ok := envCodes[nd.Info.Env]
	if !ok {
		return fmt.Errorf("wire: unknown environment %q", nd.Info.Env)
	}
	if len(nd.Info.APs) > math.MaxUint16 {
		return fmt.Errorf("wire: network %s too large", nd.Info.Name)
	}
	w.str(nd.Info.Name)
	w.u8(band)
	w.u8(env)
	w.f64(nd.Info.Spacing)
	w.u32(uint32(len(nd.Info.APs)))
	for _, ap := range nd.Info.APs {
		w.str(ap.Name)
		w.f64(ap.X)
		w.f64(ap.Y)
		if ap.Outdoor {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
	w.u32(uint32(len(nd.Links)))
	for _, l := range nd.Links {
		if l.From < 0 || l.From > math.MaxUint16 || l.To < 0 || l.To > math.MaxUint16 {
			return fmt.Errorf("wire: network %s: link %d→%d endpoints do not fit u16",
				nd.Info.Name, l.From, l.To)
		}
		w.u16(uint16(l.From))
		w.u16(uint16(l.To))
		w.u32(uint32(len(l.Sets)))
		for si, ps := range l.Sets {
			w.i32(ps.T)
			w.i16(ps.SNR)
			w.f32(ps.SNRStd)
			// The format stores the observation count in a u8; reject
			// rather than silently truncating the probe set.
			if len(ps.Obs) > math.MaxUint8 {
				return fmt.Errorf("wire: network %s link %d→%d probe set %d: %d observations exceed the format's u8 limit of %d",
					nd.Info.Name, l.From, l.To, si, len(ps.Obs), math.MaxUint8)
			}
			w.u8(uint8(len(ps.Obs)))
			for _, o := range ps.Obs {
				// Rate indices index the band's rate table; the decoder
				// enforces the same bound, so reject them symmetrically.
				if o.RateIdx >= nRates {
					return fmt.Errorf("wire: network %s link %d→%d: observation rate index %d out of range for band %s (%d rates)",
						nd.Info.Name, l.From, l.To, o.RateIdx, nd.Info.Band, nRates)
				}
				w.u8(o.RateIdx)
				w.f32(o.Loss)
			}
		}
	}
	return nil
}

// encodeClients writes the client section body (dataset count + datasets).
func encodeClients(w *writer, cds []*dataset.ClientData) error {
	w.u32(uint32(len(cds)))
	for _, cd := range cds {
		env, ok := envCodes[cd.Env]
		if !ok {
			return fmt.Errorf("wire: unknown environment %q", cd.Env)
		}
		if cd.NumAPs < 0 || cd.NumAPs > math.MaxUint16 {
			return fmt.Errorf("wire: client dataset %s: AP count %d does not fit u16", cd.Network, cd.NumAPs)
		}
		w.str(cd.Network)
		w.u8(env)
		w.i32(cd.Duration)
		w.u16(uint16(cd.NumAPs))
		w.u32(uint32(len(cd.Clients)))
		for _, cl := range cd.Clients {
			if cl.ID < 0 || int64(cl.ID) > math.MaxUint32 {
				return fmt.Errorf("wire: client dataset %s: client ID %d does not fit u32", cd.Network, cl.ID)
			}
			w.u32(uint32(cl.ID))
			w.u32(uint32(len(cl.Assocs)))
			for _, a := range cl.Assocs {
				if a.AP < 0 || a.AP > math.MaxUint16 {
					return fmt.Errorf("wire: client dataset %s client %d: association AP %d does not fit u16",
						cd.Network, cl.ID, a.AP)
				}
				w.u16(uint16(a.AP))
				w.i32(a.Start)
				w.i32(a.End)
			}
		}
	}
	return nil
}

// encodeSampleSection writes the flat-sample section body: per band (in
// the fixed "bg", "n" order), the per-network groups of snr.Flatten
// output. Grouping by network keeps each sample's network name stored
// once and lets the decoder share one string and one Tput backing array
// per group. The derived samples are returned in Reader.Samples shape
// (band → samples, empty bands omitted) for the caller to reuse.
func encodeSampleSection(w *writer, f *dataset.Fleet) (map[string][]snr.Sample, error) {
	type bandGroup struct {
		code uint8
		band phy.Band
		nets []*dataset.NetworkData
	}
	var bands []bandGroup
	for _, name := range []string{"bg", "n"} {
		nets := f.ByBand(name)
		if len(nets) == 0 {
			continue
		}
		band, err := phy.BandByName(name)
		if err != nil {
			return nil, fmt.Errorf("wire: flat-sample section: %w", err)
		}
		if len(band.Rates) > math.MaxUint8 {
			return nil, fmt.Errorf("wire: flat-sample section: band %s has %d rates (u8 limit)", name, len(band.Rates))
		}
		bands = append(bands, bandGroup{code: bandCodes[name], band: band, nets: nets})
	}
	out := make(map[string][]snr.Sample, len(bands))
	w.u8(uint8(len(bands)))
	for _, bg := range bands {
		nr := len(bg.band.Rates)
		w.u8(bg.code)
		w.u8(uint8(nr))
		w.u32(uint32(len(bg.nets)))
		var collected []snr.Sample
		for _, nd := range bg.nets {
			// Rate indices were already bounded by encodeNetwork (every
			// network is encoded before this section), so snr.Flatten's
			// table indexing is safe here.
			samples, err := snr.Flatten([]*dataset.NetworkData{nd})
			if err != nil {
				return nil, fmt.Errorf("wire: flat-sample section: network %s: %w", nd.Info.Name, err)
			}
			w.str(nd.Info.Name)
			w.u32(uint32(len(samples)))
			for i := range samples {
				s := &samples[i]
				w.u16(uint16(s.From))
				w.u16(uint16(s.To))
				w.i32(s.T)
				w.i16(int16(s.SNR))
				w.u8(uint8(s.Popt))
				w.f64(s.BestTput)
				for _, tp := range s.Tput {
					w.f64(tp)
				}
			}
			collected = append(collected, samples...)
		}
		if len(collected) > 0 {
			out[bg.band.Name] = collected
		}
	}
	return out, nil
}
