package wire

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"meshlab/internal/dataset"
	"meshlab/internal/snr"
	"meshlab/internal/synth"
)

// encodeVariants returns the same fleet in every on-disk form the reader
// must handle: current, current with samples, and legacy v1.
func encodeVariants(t testing.TB, f *dataset.Fleet) (v2, v2s, v1 []byte) {
	t.Helper()
	var b2, b2s, b1 bytes.Buffer
	if err := Write(&b2, f); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteWithSamples(&b2s, f); err != nil {
		t.Fatal(err)
	}
	if err := WriteV1(&b1, f); err != nil {
		t.Fatal(err)
	}
	return b2.Bytes(), b2s.Bytes(), b1.Bytes()
}

// fleetsEqual compares the parts of a fleet the codec round-trips.
func fleetsEqual(t *testing.T, want, got *dataset.Fleet) {
	t.Helper()
	if !reflect.DeepEqual(want.Meta, got.Meta) {
		t.Fatalf("meta mismatch: %+v vs %+v", want.Meta, got.Meta)
	}
	if len(got.Networks) != len(want.Networks) || len(got.Clients) != len(want.Clients) {
		t.Fatalf("collection counts changed: %d/%d networks, %d/%d clients",
			len(got.Networks), len(want.Networks), len(got.Clients), len(want.Clients))
	}
	for i := range want.Networks {
		if !reflect.DeepEqual(want.Networks[i].Info, got.Networks[i].Info) {
			t.Fatalf("network %d info mismatch", i)
		}
		if !reflect.DeepEqual(want.Networks[i].Links, got.Networks[i].Links) {
			t.Fatalf("network %d links mismatch", i)
		}
	}
	for i := range want.Clients {
		if !reflect.DeepEqual(want.Clients[i], got.Clients[i]) {
			t.Fatalf("client dataset %d mismatch", i)
		}
	}
}

// TestReadAllVersions pins that Read decodes every format variant to the
// same fleet, sample section present or not.
func TestReadAllVersions(t *testing.T) {
	f := quickFleet(t)
	v2, v2s, v1 := encodeVariants(t, f)
	for name, data := range map[string][]byte{"v2": v2, "v2+samples": v2s, "v1": v1} {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fleetsEqual(t, f, got)
	}
}

// TestReaderStreamsInFleetOrder walks the file header-by-header, decoding
// every network, and checks the stream agrees with the in-memory fleet.
func TestReaderStreamsInFleetOrder(t *testing.T) {
	f := quickFleet(t)
	_, v2s, _ := encodeVariants(t, f)
	r, err := NewReader(bytes.NewReader(v2s))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 2 || !r.HasFlatSamples() {
		t.Fatalf("version %d, samples %v; want v2 with samples", r.Version(), r.HasFlatSamples())
	}
	if r.NumNetworks() != len(f.Networks) {
		t.Fatalf("header declares %d networks, fleet has %d", r.NumNetworks(), len(f.Networks))
	}
	if r.Meta() != f.Meta {
		t.Fatalf("meta mismatch: %+v vs %+v", r.Meta(), f.Meta)
	}
	for i := 0; ; i++ {
		h, err := r.NextHeader()
		if err != nil {
			t.Fatal(err)
		}
		if h == nil {
			if i != len(f.Networks) {
				t.Fatalf("stream ended after %d networks, want %d", i, len(f.Networks))
			}
			break
		}
		want := f.Networks[i]
		if h.Index != i || h.Name != want.Info.Name || h.Band != want.Info.Band ||
			h.Env != want.Info.Env || h.Spacing != want.Info.Spacing || h.NumAPs != want.NumAPs() {
			t.Fatalf("header %d = %+v does not match %+v", i, h, want.Info)
		}
		nd, err := r.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(nd.Info, want.Info) || !reflect.DeepEqual(nd.Links, want.Links) {
			t.Fatalf("network %d decoded differently", i)
		}
	}
	cds, err := r.Clients()
	if err != nil {
		t.Fatal(err)
	}
	if len(cds) != len(f.Clients) {
		t.Fatalf("%d client datasets, want %d", len(cds), len(f.Clients))
	}
}

// TestReaderBandFilterSkips pins band filtering: only matching networks
// are decoded, and the skipped ones cost no allocations of their own.
func TestReaderBandFilterSkips(t *testing.T) {
	f := quickFleet(t)
	v2, _, v1 := encodeVariants(t, f)
	for name, data := range map[string][]byte{"v2": v2, "v1": v1} {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var got []*dataset.NetworkData
		if err := r.EachNetwork(Filter{Band: "bg"}, func(nd *dataset.NetworkData) error {
			got = append(got, nd)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := f.ByBand("bg")
		if len(got) != len(want) {
			t.Fatalf("%s: filtered %d networks, want %d", name, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i].Info, want[i].Info) {
				t.Fatalf("%s: filtered network %d mismatch", name, i)
			}
		}
		// The client section must still decode after skipping.
		if cds, err := r.Clients(); err != nil || len(cds) != len(f.Clients) {
			t.Fatalf("%s: clients after skip: %d datasets, err %v", name, len(cds), err)
		}
	}
}

// TestReaderSizeFilter exercises the MinAPs/MaxAPs bounds.
func TestReaderSizeFilter(t *testing.T) {
	f := quickFleet(t)
	_, v2s, _ := encodeVariants(t, f)
	r, err := NewReader(bytes.NewReader(v2s))
	if err != nil {
		t.Fatal(err)
	}
	filter := Filter{MinAPs: 5, MaxAPs: 15}
	n := 0
	if err := r.EachNetwork(filter, func(nd *dataset.NetworkData) error {
		if aps := nd.NumAPs(); aps < 5 || aps > 15 {
			t.Fatalf("filter passed a %d-AP network", aps)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, nd := range f.Networks {
		if aps := nd.NumAPs(); aps >= 5 && aps <= 15 {
			want++
		}
	}
	if n != want {
		t.Fatalf("filter passed %d networks, want %d", n, want)
	}
}

// TestSamplesMatchFlatten is the §4 oracle: the samples coming off the
// wire — both the stored flat-sample section and the streaming-Flattener
// fallback, on both format versions — must equal snr.Flatten over the
// in-memory fleet exactly, per band.
func TestSamplesMatchFlatten(t *testing.T) {
	f := quickFleet(t)
	v2, v2s, v1 := encodeVariants(t, f)
	want := map[string][]snr.Sample{}
	for _, band := range []string{"bg", "n"} {
		s, err := snr.Flatten(f.ByBand(band))
		if err != nil {
			t.Fatal(err)
		}
		if len(s) > 0 {
			want[band] = s
		}
	}
	for name, data := range map[string][]byte{"v2 fallback": v2, "v2 section": v2s, "v1 fallback": v1} {
		got, err := ReadSamples(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: bands %v, want %v", name, keys(got), keys(want))
		}
		for band := range want {
			if !reflect.DeepEqual(got[band], want[band]) {
				t.Fatalf("%s: band %s samples differ from snr.Flatten", name, band)
			}
		}
	}
}

// TestWriteWithSamplesReturnsFlattenOutput: the samples WriteWithSamples
// hands back (so cache writers need not flatten twice) must be the same
// values the section round-trips.
func TestWriteWithSamplesReturnsFlattenOutput(t *testing.T) {
	f := quickFleet(t)
	var buf bytes.Buffer
	returned, err := WriteWithSamples(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	read, err := ReadSamples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(returned, read) {
		t.Fatal("WriteWithSamples return value diverges from the section it wrote")
	}
}

// TestCorruptRateIndexRejected: observation rate indices index the band's
// rate table downstream, so both the encoder and the decoder must bound
// them — a corrupt byte yields an error, never a panic.
func TestCorruptRateIndexRejected(t *testing.T) {
	bad := &dataset.Fleet{Networks: []*dataset.NetworkData{{
		Info: dataset.NetworkInfo{Name: "x", Band: "bg", Env: "indoor"},
		Links: []*dataset.Link{{From: 0, To: 1, Sets: []dataset.ProbeSet{
			{T: 0, SNR: 20, Obs: []dataset.Obs{{RateIdx: 250}}},
		}}},
	}}}
	if err := Write(&bytes.Buffer{}, bad); err == nil || !strings.Contains(err.Error(), "rate index") {
		t.Fatalf("encode should reject rate index 250, got %v", err)
	}

	// Decode side: encode a legal single-obs fleet, then corrupt the rate
	// byte in place. With no clients the file tail is the 12-byte client
	// section (u64 length + u32 zero count), preceded by the observation's
	// 4-byte loss and 1-byte rate index.
	bad.Networks[0].Links[0].Sets[0].Obs[0].RateIdx = 0
	var buf bytes.Buffer
	if err := Write(&buf, bad); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-12-4-1] = 250
	if _, err := Read(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "rate index") {
		t.Fatalf("decode should reject rate index 250, got %v", err)
	}
	// The §4 streaming path must error, not panic in snr.Flatten.
	if _, err := ReadSamples(bytes.NewReader(data)); err == nil {
		t.Fatal("ReadSamples over a corrupt rate index should error")
	}
}

// TestCorruptSampleCountRejected: a corrupt sample count must be rejected
// against the section's remaining bytes before anything is allocated.
func TestCorruptSampleCountRejected(t *testing.T) {
	f := quickFleet(t)
	v2, v2s, _ := encodeVariants(t, f)
	data := bytes.Clone(v2s)
	// The section starts where the fleet portion ends (= len(v2)): u64
	// length, bandCount u8, then band u8 + numRates u8 + groupCount u32,
	// then the first group's name str followed by its sample count.
	name := f.ByBand("bg")[0].Info.Name
	off := len(v2) + 8 + 1 + (1 + 1 + 4) + (2 + len(name))
	data[off] = 0xFF
	data[off+1] = 0xFF
	data[off+2] = 0xFF
	data[off+3] = 0x0F // 2^28-ish: passes the count limit, not the byte budget
	_, err := ReadSamples(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "section bytes remain") {
		t.Fatalf("corrupt sample count should be rejected against the section budget, got %v", err)
	}
}

func keys(m map[string][]snr.Sample) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestFlattenerMatchesFlatten pins the incremental flattener against the
// whole-band Flatten it refactors.
func TestFlattenerMatchesFlatten(t *testing.T) {
	f := quickFleet(t)
	for _, bandName := range []string{"bg", "n"} {
		nets := f.ByBand(bandName)
		if len(nets) == 0 {
			continue
		}
		band, err := nets[0].Band()
		if err != nil {
			t.Fatal(err)
		}
		fl := snr.NewFlattener(band)
		for _, nd := range nets {
			if err := fl.Add(nd); err != nil {
				t.Fatal(err)
			}
		}
		want, err := snr.Flatten(nets)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fl.Samples(), want) {
			t.Fatalf("band %s: Flattener diverges from Flatten", bandName)
		}
	}
	// Cross-band networks must be rejected, not silently mixed.
	bg := f.ByBand("bg")
	n := f.ByBand("n")
	if len(bg) > 0 && len(n) > 0 {
		band, _ := bg[0].Band()
		fl := snr.NewFlattener(band)
		if err := fl.Add(n[0]); err == nil {
			t.Fatal("adding an n network to a bg flattener should error")
		}
	}
}

// TestReaderTruncatedEverywhere cuts the stream at every boundary class —
// header, mid-network, client section, sample section — and demands a
// contextual error, never a panic or silent success.
func TestReaderTruncatedEverywhere(t *testing.T) {
	f := quickFleet(t)
	v2, v2s, v1 := encodeVariants(t, f)
	// Read never touches the trailing flat-sample section, so cuts inside
	// it only have to fail ReadSamples; fleetEnd is where that section
	// starts (the fleet portion of v2s is byte-identical to v2 except the
	// flag byte).
	for name, tc := range map[string]struct {
		full     []byte
		fleetEnd int
	}{
		"v2+samples": {v2s, len(v2)},
		"v1":         {v1, len(v1)},
	} {
		cuts := []int{0, 2, 5, 20, 24, 25, 30, len(tc.full) / 4, len(tc.full) / 2, 3 * len(tc.full) / 4, len(tc.full) - 1}
		for _, cut := range cuts {
			if cut >= len(tc.full) {
				continue
			}
			data := tc.full[:cut]
			if _, err := Read(bytes.NewReader(data)); err == nil && cut < tc.fleetEnd {
				t.Fatalf("%s: Read of %d/%d bytes should error", name, cut, len(tc.full))
			}
			if _, err := ReadSamples(bytes.NewReader(data)); err == nil {
				t.Fatalf("%s: ReadSamples of %d/%d bytes should error", name, cut, len(tc.full))
			}
		}
	}
}

// TestReaderMidNetworkEOFNamesNetwork pins the error context: truncation
// inside a network body must name the network it happened in.
func TestReaderMidNetworkEOFNamesNetwork(t *testing.T) {
	f := quickFleet(t)
	v2, _, _ := encodeVariants(t, f)
	// Cut mid-file: past the header and first record, inside some network.
	data := v2[:len(v2)/2]
	_, err := Read(bytes.NewReader(data))
	if err == nil {
		t.Fatal("mid-network truncation should error")
	}
	if !strings.Contains(err.Error(), "network") {
		t.Fatalf("error %q should name the network section", err)
	}
	if !strings.Contains(err.Error(), "unexpected EOF") {
		t.Fatalf("error %q should surface the unexpected EOF", err)
	}
}

// TestReaderCorruptRecordLength pins the v2 framing check: a record whose
// body disagrees with its length prefix must be rejected by name.
func TestReaderCorruptRecordLength(t *testing.T) {
	f := quickFleet(t)
	v2, _, _ := encodeVariants(t, f)
	data := bytes.Clone(v2)
	// The first record length sits after magic(4)+meta(20)+flags(1)+count(4).
	off := 4 + 20 + 1 + 4
	data[off]++ // stretch the declared length by one byte
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextHeader(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Decode(); err == nil || !strings.Contains(err.Error(), "length") {
		t.Fatalf("corrupt record length should be rejected with context, got %v", err)
	}
}

// TestReaderUnknownFlagsRejected: reserved flag bits signal a format this
// reader does not know; it must refuse rather than misparse.
func TestReaderUnknownFlagsRejected(t *testing.T) {
	f := quickFleet(t)
	v2, _, _ := encodeVariants(t, f)
	data := bytes.Clone(v2)
	data[4+20] |= 0x80
	if _, err := NewReader(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "flags") {
		t.Fatalf("unknown section flags should be rejected, got %v", err)
	}
}

// TestReaderMisuseErrors covers out-of-order API calls.
func TestReaderMisuseErrors(t *testing.T) {
	f := quickFleet(t)
	_, v2s, _ := encodeVariants(t, f)
	r, err := NewReader(bytes.NewReader(v2s))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Decode(); err == nil {
		t.Fatal("Decode before NextHeader should error")
	}
	if err := r.Skip(); err == nil {
		t.Fatal("Skip before NextHeader should error")
	}
	if _, err := r.Clients(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextHeader(); err == nil {
		t.Fatal("NextHeader after Clients should error")
	}
	// Samples still works: the section sits after the client section.
	if _, err := r.Samples(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Samples(); err == nil {
		t.Fatal("second Samples should error")
	}
}

// TestReadSamplesRequiresUnconsumedStream: without a stored section the
// fallback needs the network section; consuming it first must error.
func TestReadSamplesRequiresUnconsumedStream(t *testing.T) {
	f := quickFleet(t)
	v2, _, _ := encodeVariants(t, f)
	r, err := NewReader(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if h, err := r.NextHeader(); err != nil || h == nil {
		t.Fatal(err)
	}
	if _, err := r.Samples(); err == nil {
		t.Fatal("fallback Samples after consuming a network should error")
	}
}

// liveHeap forces a collection and returns the live heap size.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// rssFixture encodes a throwaway fleet (not the shared test fleet, which
// would sit live in every measurement) so the RSS benchmarks' baseline is
// just the encoded bytes.
func rssFixture(b *testing.B) []byte {
	b.Helper()
	f, err := synth.Generate(synth.Quick(44))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkSamplesPeakRSSLoaded measures the §4 path the old way:
// materialize the whole fleet, then flatten, so fleet and samples are
// live together. The peak-live-MB metric is the contrast with
// BenchmarkSamplesPeakRSSStreamed, whose peak is bounded by the samples
// plus one network instead of the fleet.
func BenchmarkSamplesPeakRSSLoaded(b *testing.B) {
	data := rssFixture(b)
	var peak uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl, err := Read(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		samples := map[string][]snr.Sample{}
		for _, band := range []string{"bg", "n"} {
			if samples[band], err = snr.Flatten(fl.ByBand(band)); err != nil {
				b.Fatal(err)
			}
		}
		if h := liveHeap(); h > peak { // fleet + samples both live here
			peak = h
		}
		runtime.KeepAlive(fl)
		runtime.KeepAlive(samples)
	}
	b.ReportMetric(float64(peak)/(1<<20), "peak-live-MB")
}

// BenchmarkSamplesPeakRSSStreamed measures the streaming §4 path: one
// network at a time through snr.Flattener, raw probe data dropped as it
// is consumed.
func BenchmarkSamplesPeakRSSStreamed(b *testing.B) {
	data := rssFixture(b)
	var peak uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		flatteners := map[string]*snr.Flattener{}
		err = r.EachNetwork(Filter{}, func(nd *dataset.NetworkData) error {
			fl := flatteners[nd.Info.Band]
			if fl == nil {
				band, err := nd.Band()
				if err != nil {
					return err
				}
				fl = snr.NewFlattener(band)
				flatteners[nd.Info.Band] = fl
			}
			err := fl.Add(nd)
			// Sample with this network and the samples live; nd is
			// dropped as soon as this callback returns.
			if h := liveHeap(); h > peak {
				peak = h
			}
			runtime.KeepAlive(nd)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(peak)/(1<<20), "peak-live-MB")
}

// BenchmarkWarmStartSection measures the O(read) warm start: samples
// straight from the flat-sample section.
func BenchmarkWarmStartSection(b *testing.B) {
	f := quickFleet(b)
	var buf bytes.Buffer
	if _, err := WriteWithSamples(&buf, f); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSamples(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmStartDecodeFlatten is the baseline the section replaces:
// decode every network and re-flatten on each start.
func BenchmarkWarmStartDecodeFlatten(b *testing.B) {
	f := quickFleet(b)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSamples(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
