package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"sync"

	"meshlab/internal/conc"
	"meshlab/internal/dataset"
	"meshlab/internal/phy"
	"meshlab/internal/snr"
)

// NetworkHeader is the cheaply decoded prefix of one network record:
// enough to decide — before any AP or probe data is read — whether the
// network is wanted. Filter matches against it.
type NetworkHeader struct {
	// Index is the network's position in fleet order.
	Index int
	// Name, Band, Env, and Spacing mirror dataset.NetworkInfo.
	Name    string
	Band    string
	Env     string
	Spacing float64
	// NumAPs is the network size (the AP count).
	NumAPs int
}

// Filter selects networks during a streaming walk. The zero value matches
// everything.
type Filter struct {
	// Band restricts to one band ("bg" or "n"); empty matches all bands.
	Band string
	// MinAPs and MaxAPs bound the network size; zero means unbounded.
	MinAPs, MaxAPs int
}

// Match reports whether the header passes the filter.
func (f Filter) Match(h *NetworkHeader) bool {
	if f.Band != "" && h.Band != f.Band {
		return false
	}
	if h.NumAPs < f.MinAPs {
		return false
	}
	if f.MaxAPs > 0 && h.NumAPs > f.MaxAPs {
		return false
	}
	return true
}

// Reader section cursor: the format's sections appear in a fixed order,
// and the cursor only moves forward.
const (
	sectNetworks  = iota // before the next network's record
	sectInNetwork        // header consumed, body pending
	sectClients          // before the client section
	sectSamples          // before the flat-sample section (or EOF)
	sectDone
)

// Reader streams a binary fleet file section by section: the networks one
// at a time (NextHeader + Decode or Skip, or the EachNetwork loop), then
// the client datasets, then the flat-sample section. It accepts both
// format versions; on v2 files Skip discards a network by its record
// length without decoding it, on v1 it walks the record structurally
// without materializing anything. Methods must be called from one
// goroutine; the cursor only moves forward.
type Reader struct {
	rd      reader
	version int
	meta    dataset.Meta
	flags   uint8
	nNets   int
	next    int // networks consumed so far
	sect    int
	hdr     NetworkHeader
	rem     int64 // v2: unread body bytes of the current record
}

// NewReader consumes the magic, metadata, and network count. The input is
// buffered internally unless it already is a *bufio.Reader.
func NewReader(in io.Reader) (*Reader, error) {
	br, ok := in.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(in, 1<<20)
	}
	r := &Reader{rd: reader{r: br}}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, corruptf("wire: magic: %w", err)
		}
		return nil, fmt.Errorf("wire: magic: %w", err)
	}
	r.rd.base = int64(len(magic)) // magic was read off br directly
	switch magic {
	case Magic:
		r.version = 1
	case Magic2:
		r.version = 2
	default:
		return nil, corruptf("wire: bad magic %q (not a binary fleet file)", magic[:])
	}
	rd := &r.rd
	r.meta.Seed = rd.u64()
	r.meta.ProbeDuration = rd.i32()
	r.meta.ProbeInterval = rd.i32()
	r.meta.ClientDuration = rd.i32()
	if r.version >= 2 {
		r.flags = rd.u8()
		if rd.err == nil && r.flags&^flagFlatSamples != 0 {
			return nil, corruptf("wire: unknown section flags %#x (file from a newer format?)", r.flags)
		}
	}
	r.nNets = rd.count("network", 1<<20)
	if rd.err != nil {
		return nil, &Error{Offset: rd.off(), Network: -1, Section: "header", Err: rd.err}
	}
	return r, nil
}

// Offset returns the absolute byte offset of the next unread byte —
// what a plan records so a shard worker can re-open the file, seek, and
// resume with byte-accurate error positions.
func (r *Reader) Offset() int64 { return r.rd.off() }

// Meta returns the dataset metadata, available before any network is read.
func (r *Reader) Meta() dataset.Meta { return r.meta }

// Version returns the format version (1 or 2).
func (r *Reader) Version() int { return r.version }

// NumNetworks returns the network record count declared in the header.
func (r *Reader) NumNetworks() int { return r.nNets }

// HasFlatSamples reports whether the file carries the flat-sample
// section, i.e. whether Samples will be a direct section read.
func (r *Reader) HasFlatSamples() bool { return r.flags&flagFlatSamples != 0 }

// netErr wraps an error with the current network's identity and the
// reader's byte offset, so retry/quarantine policy can classify it and a
// degraded-mode manifest can name what was lost.
func (r *Reader) netErr(err error) error {
	return &Error{
		Offset: r.rd.off(), Network: r.hdr.Index,
		Net: r.hdr.Name, Band: r.hdr.Band,
		Section: "network", Err: err,
	}
}

// sampErr wraps a flat-sample-section error with the reader's byte
// offset. The section is shared across shards, so no network index is
// attached; the cause often names the network by name instead.
func (r *Reader) sampErr(err error) error {
	return &Error{Offset: r.rd.off(), Network: -1, Section: "flat-sample", Err: err}
}

// NextHeader advances to the next network and returns its header, or
// (nil, nil) once the network section is exhausted. A previously returned
// header whose body was neither decoded nor skipped is skipped implicitly.
func (r *Reader) NextHeader() (*NetworkHeader, error) {
	switch r.sect {
	case sectInNetwork:
		if err := r.Skip(); err != nil {
			return nil, err
		}
	case sectNetworks:
	default:
		return nil, fmt.Errorf("wire: network section already consumed")
	}
	if r.next >= r.nNets {
		r.sect = sectClients
		return nil, nil
	}
	rd := &r.rd
	idx := r.next
	r.next++
	var recLen int64
	if r.version >= 2 {
		recLen = int64(rd.u32())
	}
	start := rd.n
	r.hdr = NetworkHeader{Index: idx, Name: rd.str()}
	band := rd.u8()
	env := rd.u8()
	var ok bool
	if r.hdr.Band, ok = bandNames[band]; !ok && rd.err == nil {
		rd.err = corruptf("unknown band code %d", band)
	}
	if r.hdr.Env, ok = envNames[env]; !ok && rd.err == nil {
		rd.err = corruptf("unknown env code %d", env)
	}
	r.hdr.Spacing = rd.f64()
	r.hdr.NumAPs = rd.count("AP", 1<<16)
	if rd.err != nil {
		return nil, &Error{
			Offset: rd.off(), Network: idx, Net: r.hdr.Name,
			Section: "network", Err: fmt.Errorf("header: %w", rd.err),
		}
	}
	if r.version >= 2 {
		r.rem = recLen - (rd.n - start)
		if r.rem < 0 {
			rd.err = corruptf("record length %d shorter than its header", recLen)
			return nil, r.netErr(rd.err)
		}
	}
	r.sect = sectInNetwork
	return &r.hdr, nil
}

// Decode reads the current network's body (APs and links) and returns the
// full network dataset. On v2 files the consumed bytes are checked
// against the record's declared length.
func (r *Reader) Decode() (*dataset.NetworkData, error) {
	if r.sect != sectInNetwork {
		return nil, fmt.Errorf("wire: Decode without a pending network header")
	}
	band, err := phy.BandByName(r.hdr.Band)
	if err != nil {
		return nil, r.netErr(err)
	}
	nRates := uint8(len(band.Rates))
	rd := &r.rd
	start := rd.n
	nd := &dataset.NetworkData{Info: dataset.NetworkInfo{
		Name: r.hdr.Name, Band: r.hdr.Band, Env: r.hdr.Env, Spacing: r.hdr.Spacing,
	}}
	if r.hdr.NumAPs > 0 {
		nd.Info.APs = make([]dataset.APInfo, 0, r.hdr.NumAPs)
	}
	for a := 0; a < r.hdr.NumAPs && rd.err == nil; a++ {
		nd.Info.APs = append(nd.Info.APs, dataset.APInfo{
			Name: rd.str(), X: rd.f64(), Y: rd.f64(), Outdoor: rd.u8() == 1,
		})
	}
	nLinks := rd.count("link", 1<<26)
	for l := 0; l < nLinks && rd.err == nil; l++ {
		link := &dataset.Link{From: int(rd.u16()), To: int(rd.u16())}
		nSets := rd.count("probe set", 1<<26)
		if rd.err == nil && nSets > 0 {
			link.Sets = make([]dataset.ProbeSet, 0, nSets)
		}
		for s := 0; s < nSets && rd.err == nil; s++ {
			ps := dataset.ProbeSet{T: rd.i32(), SNR: rd.i16(), SNRStd: rd.f32()}
			nObs := int(rd.u8())
			for o := 0; o < nObs && rd.err == nil; o++ {
				ri := rd.u8()
				// Rate indices index the band's rate table downstream
				// (snr.Flatten); bound them here so a corrupt file is an
				// error, never a panic.
				if ri >= nRates && rd.err == nil {
					rd.err = corruptf("link %d→%d: observation rate index %d out of range for band %s (%d rates)",
						link.From, link.To, ri, r.hdr.Band, nRates)
				}
				ps.Obs = append(ps.Obs, dataset.Obs{RateIdx: ri, Loss: rd.f32()})
			}
			link.Sets = append(link.Sets, ps)
		}
		nd.Links = append(nd.Links, link)
	}
	if rd.err != nil {
		return nil, r.netErr(rd.err)
	}
	if r.version >= 2 {
		if got := rd.n - start; got != r.rem {
			rd.err = corruptf("record body was %d bytes, length prefix promised %d", got, r.rem)
			return nil, r.netErr(rd.err)
		}
	}
	r.sect = sectNetworks
	return nd, nil
}

// Skip discards the current network's body without decoding it: a single
// buffered discard on v2 (the record length is known), a structural walk
// that materializes nothing on v1.
func (r *Reader) Skip() error {
	if r.sect != sectInNetwork {
		return fmt.Errorf("wire: Skip without a pending network header")
	}
	rd := &r.rd
	if r.version >= 2 {
		rd.discard(r.rem)
	} else {
		r.skipBodyV1()
	}
	if rd.err != nil {
		return r.netErr(rd.err)
	}
	r.sect = sectNetworks
	return nil
}

// skipBodyV1 walks a v1 network body (which has no length prefix),
// discarding fixed-width runs as they are sized by the decoded counts.
func (r *Reader) skipBodyV1() {
	rd := &r.rd
	for a := 0; a < r.hdr.NumAPs && rd.err == nil; a++ {
		rd.skipStr()
		rd.discard(8 + 8 + 1) // x, y, outdoor
	}
	nLinks := rd.count("link", 1<<26)
	for l := 0; l < nLinks && rd.err == nil; l++ {
		rd.discard(2 + 2) // from, to
		nSets := rd.count("probe set", 1<<26)
		for s := 0; s < nSets && rd.err == nil; s++ {
			rd.discard(4 + 2 + 4) // t, snr, std
			nObs := int(rd.u8())
			rd.discard(int64(nObs) * 5) // rate u8 + loss f32
		}
	}
}

// EachNetwork streams every remaining network matching the filter through
// fn in fleet order, skipping the rest without decoding their bodies. An
// fn error aborts the walk and is returned verbatim.
func (r *Reader) EachNetwork(filter Filter, fn func(*dataset.NetworkData) error) error {
	for {
		h, err := r.NextHeader()
		if err != nil {
			return err
		}
		if h == nil {
			return nil
		}
		if !filter.Match(h) {
			if err := r.Skip(); err != nil {
				return err
			}
			continue
		}
		nd, err := r.Decode()
		if err != nil {
			return err
		}
		if err := fn(nd); err != nil {
			return err
		}
	}
}

// skipToClients fast-forwards over any unconsumed networks.
func (r *Reader) skipToClients() error {
	for r.sect == sectNetworks || r.sect == sectInNetwork {
		h, err := r.NextHeader()
		if err != nil {
			return err
		}
		if h == nil {
			return nil
		}
		if err := r.Skip(); err != nil {
			return err
		}
	}
	return nil
}

// Clients reads the client section, skipping any unconsumed networks
// first. On v2 files the consumed bytes are checked against the section's
// declared length.
func (r *Reader) Clients() ([]*dataset.ClientData, error) {
	if err := r.skipToClients(); err != nil {
		return nil, err
	}
	if r.sect != sectClients {
		return nil, fmt.Errorf("wire: client section already consumed")
	}
	rd := &r.rd
	var secLen int64
	if r.version >= 2 {
		secLen = int64(rd.u64())
	}
	start := rd.n
	cds, err := decodeClients(rd)
	if err != nil {
		return nil, err
	}
	if r.version >= 2 && rd.n-start != secLen {
		rd.err = corruptf("client section was %d bytes, length prefix promised %d", rd.n-start, secLen)
		return nil, &Error{Offset: rd.off(), Network: -1, Section: "clients", Err: rd.err}
	}
	r.sect = sectSamples
	return cds, nil
}

// skipClientSection discards the client section (after fast-forwarding
// over any unconsumed networks): a single discard on v2, a decode-and-drop
// walk on v1 (client data is orders of magnitude smaller than probe data).
func (r *Reader) skipClientSection() error {
	if err := r.skipToClients(); err != nil {
		return err
	}
	if r.sect != sectClients {
		return nil
	}
	rd := &r.rd
	if r.version >= 2 {
		secLen := int64(rd.u64())
		rd.discard(secLen)
	} else if _, err := decodeClients(rd); err != nil {
		return err
	}
	if rd.err != nil {
		return &Error{Offset: rd.off(), Network: -1, Section: "clients", Err: rd.err}
	}
	r.sect = sectSamples
	return nil
}

func decodeClients(rd *reader) ([]*dataset.ClientData, error) {
	var cds []*dataset.ClientData
	nClients := rd.count("client dataset", 1<<20)
	for i := 0; i < nClients && rd.err == nil; i++ {
		cd := &dataset.ClientData{}
		cd.Network = rd.str()
		env := rd.u8()
		var ok bool
		if cd.Env, ok = envNames[env]; !ok && rd.err == nil {
			rd.err = corruptf("unknown env code %d", env)
			return nil, &Error{Offset: rd.off(), Network: -1, Section: "clients", Err: rd.err}
		}
		cd.Duration = rd.i32()
		cd.NumAPs = int(rd.u16())
		n := rd.count("client", 1<<24)
		for c := 0; c < n && rd.err == nil; c++ {
			cl := dataset.ClientLog{ID: int(rd.u32())}
			na := rd.count("association", 1<<24)
			for a := 0; a < na && rd.err == nil; a++ {
				cl.Assocs = append(cl.Assocs, dataset.Assoc{
					AP: int32(rd.u16()), Start: rd.i32(), End: rd.i32(),
				})
			}
			cd.Clients = append(cd.Clients, cl)
		}
		cds = append(cds, cd)
	}
	if rd.err != nil {
		return nil, &Error{Offset: rd.off(), Network: -1, Section: "clients", Err: rd.err}
	}
	return cds, nil
}

// Samples returns the per-band flattened §4 samples (band name → samples
// in fleet order; bands without samples are omitted). When the file
// carries the flat-sample section, any unconsumed networks and the client
// section are skipped without decoding and the section is read directly —
// the O(read) warm-start path, with the per-network groups decoded across
// the process worker budget (see SampleGroups). Otherwise the remaining
// networks are streamed one at a time through snr.Flattener, so peak
// memory is one network plus the samples either way; this fallback
// requires that no network has been consumed yet.
func (r *Reader) Samples() (map[string][]snr.Sample, error) {
	if r.HasFlatSamples() {
		out := make(map[string][]snr.Sample, 2)
		err := r.SampleGroups(0, func(g *SampleGroup) error {
			if len(g.Samples) > 0 {
				out[g.Band] = append(out[g.Band], g.Samples...)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if r.next != 0 || r.sect != sectNetworks {
		return nil, fmt.Errorf("wire: no flat-sample section and the network section was already consumed")
	}
	flatteners := make(map[string]*snr.Flattener, 2)
	err := r.EachNetwork(Filter{}, func(nd *dataset.NetworkData) error {
		fl := flatteners[nd.Info.Band]
		if fl == nil {
			band, err := nd.Band()
			if err != nil {
				return err
			}
			fl = snr.NewFlattener(band)
			flatteners[nd.Info.Band] = fl
		}
		return fl.Add(nd)
	})
	if err != nil {
		return nil, err
	}
	if err := r.skipClientSection(); err != nil {
		return nil, err
	}
	r.sect = sectDone
	out := make(map[string][]snr.Sample, len(flatteners))
	for bandName, fl := range flatteners {
		if s := fl.Samples(); len(s) > 0 {
			out[bandName] = s
		}
	}
	return out, nil
}

// SampleGroup is one run of a network's flat §4 samples, the section's
// independently decodable unit: a group's row bytes are fixed-width and
// self-contained given its header, so groups can decode in parallel.
// Most networks arrive as exactly one group; a huge network is delivered
// as several consecutive groups split only at directed-link boundaries,
// so a link's samples are always complete within one group and no
// network's sample set ever needs to be resident at once (the chunk
// contract the snr accumulators consume).
type SampleGroup struct {
	// Band is the band name ("bg" or "n"); the section stores each band's
	// groups contiguously, in fleet order within the band.
	Band string
	// Net is the network name every sample in the group shares. A
	// network's groups are consecutive.
	Net string
	// Samples holds the group's samples in probe order (shared Tput
	// backing). Empty for networks that delivered nothing.
	Samples []snr.Sample
}

// sampleRowLen returns the fixed encoded width of one sample row: from
// u16, to u16, t i32, snr i16, popt u8, best f64, then nr throughput
// f64s.
func sampleRowLen(nr int) int { return 2 + 2 + 4 + 2 + 1 + 8 + nr*8 }

// sampleGroupJob is one group moving through the decode pipeline: the
// producer reads its raw bytes off the stream, a pool worker decodes
// them, and the consumer delivers the result in file order.
type sampleGroupJob struct {
	band    string
	net     string
	nr, n   int
	off     int64 // absolute offset of the group's first row, for decode errors
	raw     []byte
	samples []snr.Sample
	err     error
	done    chan struct{}
}

// SampleGroups streams the flat-sample section as per-network groups,
// invoking fn once per group in file order (all of one band's groups,
// then the next band's). Group decoding is overlapped and parallel: a
// producer reads group bytes sequentially ahead of consumption while a
// pool of workers (≤ 0 means the process conc.Budget) decodes them, so
// the stream read, the decode of group i+1, and fn's own work on group i
// all proceed concurrently — and the delivered groups are byte-identical
// at any pool size. An fn error aborts the walk and is returned verbatim.
//
// The section is required (see HasFlatSamples); for section-less files
// stream the network records through snr.Flattener instead. Corrupt
// input — truncated mid-group, sample counts exceeding the section
// budget, out-of-range rate indices — yields a contextual error, never a
// panic, and never an allocation beyond the bytes actually present plus
// one read chunk.
func (r *Reader) SampleGroups(workers int, fn func(*SampleGroup) error) error {
	return r.FilterSampleGroups(workers, nil, fn)
}

// FilterSampleGroups behaves like SampleGroups, but decodes only the
// groups keep returns true for; the rest are discarded raw, without
// decoding (their fixed-width byte length is known from the group
// header). keep receives both the band name and the network name: a
// network can carry one group per band, so name alone does not identify
// a group. A nil keep keeps every group. This is the shard runner's
// sample walk: each shard streams the one shared section but pays
// decode cost only for its own networks — and, on resume, only for the
// (band, network) groups a prior run's checkpoint has not already fed.
func (r *Reader) FilterSampleGroups(workers int, keep func(band, net string) bool, fn func(*SampleGroup) error) error {
	if !r.HasFlatSamples() {
		return fmt.Errorf("wire: file has no flat-sample section; stream the network records through snr.Flattener instead")
	}
	if err := r.skipClientSection(); err != nil {
		return err
	}
	if r.sect != sectSamples {
		return fmt.Errorf("wire: flat-sample section already consumed")
	}
	err := r.streamSampleGroups(conc.Workers(workers), keep, fn)
	// The cursor is past (or, after an abort, inside) the trailing
	// section either way; poison the reader on failure so a later call
	// cannot misread a half-consumed stream.
	r.sect = sectDone
	if err != nil && r.rd.err == nil {
		r.rd.err = fmt.Errorf("flat-sample walk aborted: %w", err)
	}
	return err
}

// streamSampleGroups runs the bounded producer/worker/consumer pipeline
// behind SampleGroups. The producer goroutine owns the underlying reader
// for the duration of the call and reads up to a window's worth of
// groups ahead; the consumer (the caller's goroutine) applies fn in send
// order.
func (r *Reader) streamSampleGroups(workers int, keep func(band, net string) bool, fn func(*SampleGroup) error) error {
	// ordered is the in-order delivery window (double buffering needs
	// ≥ 2); work feeds the decode pool. work's capacity plus the workers
	// themselves always exceed the window, so the producer can park a
	// job in work for every job it parked in ordered without deadlock.
	ordered := make(chan *sampleGroupJob, workers+1)
	work := make(chan *sampleGroupJob, workers+1)
	quit := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				j.samples, j.err = decodeSampleGroup(j.band, j.net, j.nr, j.n, j.raw)
				if j.err != nil {
					j.err = &Error{Offset: j.off, Network: -1, Section: "flat-sample", Err: j.err}
				}
				j.raw = nil
				close(j.done)
			}
		}()
	}
	go func() {
		r.produceSampleGroups(ordered, work, quit, keep)
		close(work)
		close(ordered)
	}()

	var abort error
	quitClosed := false
	stop := func(err error) {
		if abort == nil {
			abort = err
		}
		if !quitClosed {
			close(quit)
			quitClosed = true
		}
	}
	for j := range ordered {
		if abort != nil {
			continue // drain the window; in-flight decodes finish via wg.Wait
		}
		<-j.done
		if j.err != nil {
			stop(j.err)
			continue
		}
		if err := fn(&SampleGroup{Band: j.band, Net: j.net, Samples: j.samples}); err != nil {
			stop(err)
		}
	}
	wg.Wait()
	return abort
}

// produceSampleGroups sequentially reads the flat-sample section,
// emitting one job per group. Error jobs carry a pre-closed done channel
// and skip the decode pool. Every send races quit so a consumer abort
// unblocks the producer mid-window.
func (r *Reader) produceSampleGroups(ordered, work chan<- *sampleGroupJob, quit <-chan struct{}, keep func(band, net string) bool) {
	rd := &r.rd
	fail := func(err error) {
		j := &sampleGroupJob{err: r.sampErr(err), done: make(chan struct{})}
		close(j.done)
		select {
		case ordered <- j:
		case <-quit:
		}
	}
	secLen := int64(rd.u64())
	start := rd.n
	nBands := int(rd.u8())
	if rd.err != nil {
		fail(rd.err)
		return
	}
	for b := 0; b < nBands; b++ {
		code := rd.u8()
		bandName, ok := bandNames[code]
		if !ok && rd.err == nil {
			fail(corruptf("unknown band code %d", code))
			return
		}
		band, err := phy.BandByName(bandName)
		if err != nil && rd.err == nil {
			fail(corruptf("%w", err))
			return
		}
		nr := int(rd.u8())
		if rd.err == nil && nr != len(band.Rates) {
			fail(corruptf("band %s has %d rates, file stores %d",
				bandName, len(band.Rates), nr))
			return
		}
		nGroups := rd.count("sample group", 1<<20)
		rowLen := sampleRowLen(nr)
		for g := 0; g < nGroups && rd.err == nil; g++ {
			name := rd.str()
			n := rd.count("flat sample", 1<<28)
			if rd.err != nil {
				break
			}
			// Bound the count by the bytes the length prefix says are left
			// in the section: catches counts that disagree with an honest
			// secLen before any row is read (a corrupt secLen is caught by
			// the chunked raw read below and the final length check).
			if remaining := secLen - (rd.n - start); int64(n)*int64(rowLen) > remaining {
				fail(corruptf("network %s declares %d samples (%d bytes) but only %d section bytes remain",
					name, n, int64(n)*int64(rowLen), remaining))
				return
			}
			if keep != nil && !keep(bandName, name) {
				// Not this shard's network: skip the group's fixed-width
				// rows wholesale — the bound check above already proved the
				// discard stays inside the section.
				rd.discard(int64(n) * int64(rowLen))
				continue
			}
			if n > directDecodeRows {
				// Huge groups (the reference fleet's largest network alone
				// holds ~70% of all samples) skip both the raw staging
				// buffer and the single-delivery contract: the producer
				// decodes them inline, row by row, off the buffered
				// stream, emitting link-aligned sub-chunks as it goes.
				// Nothing proportional to the network is ever resident —
				// the point of the chunked §4 path, which a
				// network-at-once delivery would defeat exactly for the
				// network that dominates the sample count.
				if !r.produceSampleChunks(ordered, quit, bandName, name, nr, n) {
					return
				}
				if rd.err != nil {
					break
				}
				continue
			}
			// Read the group's raw bytes in bounded steps, so allocation
			// never exceeds the bytes actually present plus one chunk even
			// when both secLen and the count lie. slices.Grow + reslice
			// extends without the zeroed throwaway an append(make(...))
			// would churn per step; rd.full overwrites the region anyway.
			const chunk = 1 << 20
			total := int64(n) * int64(rowLen)
			cap64 := total
			if cap64 > chunk {
				cap64 = chunk
			}
			rowsOff := rd.off()
			raw := make([]byte, 0, cap64)
			for int64(len(raw)) < total && rd.err == nil {
				step := total - int64(len(raw))
				if step > chunk {
					step = chunk
				}
				from := len(raw)
				raw = slices.Grow(raw, int(step))[:from+int(step)]
				rd.full(raw[from:])
			}
			if rd.err != nil {
				break
			}
			j := &sampleGroupJob{
				band: bandName, net: name, nr: nr, n: n, off: rowsOff, raw: raw,
				done: make(chan struct{}),
			}
			select {
			case ordered <- j:
			case <-quit:
				return
			}
			select {
			case work <- j:
			case <-quit:
				return
			}
		}
		if rd.err != nil {
			// The cause may be a transient I/O fault, not corruption;
			// surface it unmarked so retry policy classifies the root cause.
			fail(rd.err)
			return
		}
	}
	if got := rd.n - start; got != secLen {
		fail(corruptf("section was %d bytes, length prefix promised %d", got, secLen))
	}
}

// directDecodeRows is the group size above which the producer switches
// from staged whole-group decoding to inline, link-aligned sub-chunk
// streaming: past this many rows the group itself — not the tables the
// §4 accumulators train from it — would dominate the §4 path's memory.
// A var so tests can lower it to exercise the splitting on small fleets.
var directDecodeRows = 1 << 16

// subChunkRows is the target sub-chunk size of the inline path: half the
// direct-decode threshold, so splitting always engages when the inline
// path does. Chunks split only where a new directed link begins (the §4
// accumulators' chunk contract), so a chunk can exceed this by at most
// one link's run.
func subChunkRows() int {
	if n := directDecodeRows / 2; n > 0 {
		return n
	}
	return 1
}

// produceSampleChunks decodes one huge group straight off the stream and
// emits it as link-aligned sub-chunks: peak memory is one sub-chunk plus
// a row buffer, with no raw staging and no whole-group residency. It
// reports false when the walk should stop (consumer quit, or a decode
// validation error already delivered); stream read errors are left in
// r.rd.err for the caller to surface.
func (r *Reader) produceSampleChunks(ordered chan<- *sampleGroupJob, quit <-chan struct{}, bandName, net string, nr, n int) bool {
	rd := &r.rd
	row := make([]byte, sampleRowLen(nr))
	emit := func(samples []snr.Sample, err error) bool {
		j := &sampleGroupJob{
			band: bandName, net: net, nr: nr, n: len(samples),
			samples: samples, err: err,
			done: make(chan struct{}),
		}
		close(j.done)
		select {
		case ordered <- j:
			return err == nil
		case <-quit:
			return false
		}
	}
	chunkRows := subChunkRows()
	samples := make([]snr.Sample, 0, chunkRows)
	// Tput backing arrays are allocated in bounded blocks as rows are
	// actually read, so a corrupt count backed by a lying section length
	// can never demand more than one block before the stream runs dry.
	var flat []float64
	off := 0
	lastFrom, lastTo := -1, -1
	for i := 0; i < n; i++ {
		rd.full(row)
		if rd.err != nil {
			return true
		}
		from := int(binary.LittleEndian.Uint16(row[0:]))
		to := int(binary.LittleEndian.Uint16(row[2:]))
		if len(samples) >= chunkRows && (from != lastFrom || to != lastTo) {
			if !emit(samples, nil) {
				return false
			}
			samples = make([]snr.Sample, 0, chunkRows)
		}
		lastFrom, lastTo = from, to
		if off == len(flat) {
			flat = make([]float64, chunkRows*nr)
			off = 0
		}
		s := snr.Sample{
			Net:  net,
			From: from,
			To:   to,
			T:    int32(binary.LittleEndian.Uint32(row[4:])),
			SNR:  int(int16(binary.LittleEndian.Uint16(row[8:]))),
			Popt: int(row[10]),
			Tput: flat[off : off+nr : off+nr],
		}
		off += nr
		s.BestTput = math.Float64frombits(binary.LittleEndian.Uint64(row[11:]))
		if s.Popt >= nr {
			return emit(nil, r.sampErr(corruptf("band %s network %s: optimal rate index %d out of range",
				bandName, net, s.Popt)))
		}
		for k := 0; k < nr; k++ {
			s.Tput[k] = math.Float64frombits(binary.LittleEndian.Uint64(row[19+k*8:]))
		}
		samples = append(samples, s)
	}
	return emit(samples, nil)
}

// decodeSampleGroup parses one group's fixed-width rows. It touches no
// reader state, so the pool decodes groups concurrently; each group
// shares one network-name string and one flat Tput backing array.
func decodeSampleGroup(bandName, net string, nr, n int, raw []byte) ([]snr.Sample, error) {
	if n == 0 {
		return nil, nil
	}
	rowLen := sampleRowLen(nr)
	samples := make([]snr.Sample, 0, n)
	flat := make([]float64, n*nr)
	for i := 0; i < n; i++ {
		row := raw[i*rowLen : (i+1)*rowLen]
		s := snr.Sample{
			Net:  net,
			From: int(binary.LittleEndian.Uint16(row[0:])),
			To:   int(binary.LittleEndian.Uint16(row[2:])),
			T:    int32(binary.LittleEndian.Uint32(row[4:])),
			SNR:  int(int16(binary.LittleEndian.Uint16(row[8:]))),
			Popt: int(row[10]),
			Tput: flat[i*nr : (i+1)*nr : (i+1)*nr],
		}
		s.BestTput = math.Float64frombits(binary.LittleEndian.Uint64(row[11:]))
		if s.Popt >= nr {
			return nil, corruptf("band %s network %s: optimal rate index %d out of range",
				bandName, net, s.Popt)
		}
		for k := 0; k < nr; k++ {
			s.Tput[k] = math.Float64frombits(binary.LittleEndian.Uint64(row[19+k*8:]))
		}
		samples = append(samples, s)
	}
	return samples, nil
}

// Read decodes a whole fleet from either format version, streaming
// internally. A trailing flat-sample section, if present, is not read;
// use a Reader (or ReadSamples) to access it.
func Read(in io.Reader) (*dataset.Fleet, error) {
	r, err := NewReader(in)
	if err != nil {
		return nil, err
	}
	f := &dataset.Fleet{Meta: r.Meta()}
	if err := r.EachNetwork(Filter{}, func(nd *dataset.NetworkData) error {
		f.Networks = append(f.Networks, nd)
		return nil
	}); err != nil {
		return nil, err
	}
	cds, err := r.Clients()
	if err != nil {
		return nil, err
	}
	f.Clients = cds
	return f, nil
}

// ReadSamples returns the per-band §4 samples of a binary fleet stream
// without ever materializing more than one network: from the flat-sample
// section when the file has one, otherwise by streaming every network
// through a snr.Flattener. See Reader.Samples.
func ReadSamples(in io.Reader) (map[string][]snr.Sample, error) {
	r, err := NewReader(in)
	if err != nil {
		return nil, err
	}
	return r.Samples()
}
