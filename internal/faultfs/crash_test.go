package faultfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// phaseRun simulates the atomicio + checkpoint phase sequence against a
// real temp file, returning the first hook error and whether the final
// file exists. It mirrors the real write path's ordering: the temp file
// holds content through mid-rename, then renames into place.
func phaseRun(t *testing.T, plan *CrashPlan, dir string, content []byte) (error, bool) {
	t.Helper()
	final := filepath.Join(dir, "out.ckpt")
	tmp := filepath.Join(dir, "out.ckpt.tmp-1")
	if err := os.WriteFile(tmp, content[:len(content)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	phases := []string{"mid-snapshot", "post-temp-write", "pre-rename", "mid-rename", "renamed"}
	for _, phase := range phases {
		path := tmp
		if phase == "renamed" {
			path = final
		}
		if phase == "post-temp-write" {
			// The write callback completed: temp now holds full content.
			if err := os.WriteFile(tmp, content, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := plan.Hook(phase, path); err != nil {
			os.Remove(tmp)
			return err, false
		}
		if phase == "mid-rename" {
			if err := os.Rename(tmp, final); err != nil {
				t.Fatal(err)
			}
		}
	}
	return nil, true
}

func TestCrashPlanKillsAtEachPhase(t *testing.T) {
	content := []byte("checkpoint file bytes")
	for _, phase := range []string{"mid-snapshot", "post-temp-write", "pre-rename"} {
		t.Run(phase, func(t *testing.T) {
			dir := t.TempDir()
			plan := &CrashPlan{KillAt: phase}
			err, renamed := phaseRun(t, plan, dir, content)
			if !errors.Is(err, ErrKilled) {
				t.Fatalf("err = %v, want ErrKilled", err)
			}
			if renamed {
				t.Fatal("kill before rename must not produce the final file")
			}
			if !plan.Fired() {
				t.Fatal("plan did not record the kill")
			}
			if _, err := os.Stat(filepath.Join(dir, "out.ckpt")); !os.IsNotExist(err) {
				t.Fatal("final file exists after pre-rename kill")
			}
		})
	}
}

// TestCrashPlanMidRenameTearsThenKills: the mid-rename kill corrupts the
// temp, lets the rename land, and kills at "renamed" — so the visible
// final file exists but is damaged, the exact torn-checkpoint scenario
// the CRC layer must catch.
func TestCrashPlanMidRenameTearsThenKills(t *testing.T) {
	content := []byte("checkpoint file bytes")
	t.Run("truncate", func(t *testing.T) {
		dir := t.TempDir()
		plan := &CrashPlan{KillAt: "mid-rename", Torn: 5}
		err, _ := phaseRun(t, plan, dir, content)
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("err = %v, want ErrKilled", err)
		}
		got, readErr := os.ReadFile(filepath.Join(dir, "out.ckpt"))
		if readErr != nil {
			t.Fatalf("torn final file missing: %v", readErr)
		}
		if want := content[:len(content)-5]; !bytes.Equal(got, want) {
			t.Fatalf("torn file = %q, want %q", got, want)
		}
	})
	t.Run("xor", func(t *testing.T) {
		dir := t.TempDir()
		plan := &CrashPlan{KillAt: "mid-rename", TornXOR: 0x80}
		err, _ := phaseRun(t, plan, dir, content)
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("err = %v, want ErrKilled", err)
		}
		got, readErr := os.ReadFile(filepath.Join(dir, "out.ckpt"))
		if readErr != nil {
			t.Fatal(readErr)
		}
		if len(got) != len(content) || got[len(got)-1] != content[len(content)-1]^0x80 {
			t.Fatalf("bit-rot tear not applied: %q", got)
		}
	})
}

func TestCrashPlanSkipTargetsLaterWrite(t *testing.T) {
	content := []byte("checkpoint file bytes")
	dir := t.TempDir()
	plan := &CrashPlan{KillAt: "pre-rename", Skip: 2}
	for i := 0; i < 2; i++ {
		if err, ok := phaseRun(t, plan, t.TempDir(), content); err != nil || !ok {
			t.Fatalf("write %d should survive (skip): %v", i, err)
		}
	}
	err, _ := phaseRun(t, plan, dir, content)
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("third write: err = %v, want ErrKilled", err)
	}
}

func TestCrashPlanFiresOnceAndZeroValueInert(t *testing.T) {
	content := []byte("x")
	plan := &CrashPlan{KillAt: "pre-rename"}
	if err, _ := phaseRun(t, plan, t.TempDir(), content); !errors.Is(err, ErrKilled) {
		t.Fatalf("first run: %v", err)
	}
	// After firing, the plan is inert — the resumed process runs clean.
	if err, ok := phaseRun(t, plan, t.TempDir(), content); err != nil || !ok {
		t.Fatalf("post-fire run: %v", err)
	}
	var inert CrashPlan
	if err, ok := phaseRun(t, &inert, t.TempDir(), content); err != nil || !ok {
		t.Fatalf("zero-value plan: %v", err)
	}
	if inert.Fired() {
		t.Fatal("zero-value plan claims to have fired")
	}
}

// TestStallShortReadReopenInteraction pins how the read-side faults
// compose: a stall and a short read covering the same range both apply
// (delay first, then the legal partial), the short read burns out after
// its count, and a re-open through the same injector keeps the stall
// budget shared rather than resetting it.
func TestStallShortReadReopenInteraction(t *testing.T) {
	src := data(64)
	in := New(
		Fault{Kind: Stall, Offset: 16, Count: 2, Delay: 20 * time.Millisecond},
		Fault{Kind: ShortRead, Offset: 16, Count: 1},
	)

	f := open(in, src)
	buf := make([]byte, 32)
	start := time.Now()
	n, err := f.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Fatalf("short read returned %d bytes, want 16", n)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("stall not applied alongside short read (%v)", elapsed)
	}
	if !bytes.Equal(buf[:n], src[:16]) {
		t.Fatal("partial read corrupted")
	}

	// Re-open: the short read is burnt out, the stall has one firing
	// left; the full range now arrives in one read, delayed once.
	f2 := open(in, src)
	start = time.Now()
	got, err := io.ReadAll(f2)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("re-open read: %v, %d bytes", err, len(got))
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("shared stall budget did not apply on re-open (%v)", elapsed)
	}
	if in.Fired(0) != 2 || in.Fired(1) != 1 {
		t.Fatalf("fired = (%d, %d), want (2, 1)", in.Fired(0), in.Fired(1))
	}

	// Budgets spent: a third open reads clean and fast.
	start = time.Now()
	got, err = io.ReadAll(open(in, src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("post-burn-down read: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Millisecond {
		t.Fatalf("burnt-out stall still delaying (%v)", elapsed)
	}
}
