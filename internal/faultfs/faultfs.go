// Package faultfs wraps readers with deterministic fault injection: the
// robustness tests and the CI fault-injection smoke drive the shard
// runner (internal/shard) over real datasets while this package injects
// short reads, transient I/O errors, latency stalls, and byte corruption
// at chosen byte offsets. Faults fire by byte position, never by timing,
// so a seeded scenario replays identically on any machine.
//
// The Injector holds the fault state and survives re-opens: a shard
// worker that retries a transient failure re-opens the file through the
// same Injector, which is what lets a test script "fail twice, then
// succeed". Transient errors wrap ErrTransient so retry policy can
// classify them with errors.Is; corruption is silent (the bytes are
// simply wrong), which is exactly what makes it non-retryable — the
// decoder's validation, not the I/O layer, has to catch it.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErrTransient marks an injected transient I/O failure (the moral
// equivalent of EIO from flaky storage). Injected errors wrap it.
var ErrTransient = errors.New("faultfs: transient I/O error")

// Kind selects a fault behavior.
type Kind int

const (
	// Transient fails a Read whose range covers Offset with an error
	// wrapping ErrTransient, Count times; later reads pass through.
	Transient Kind = iota
	// ShortRead truncates a Read whose range spans past Offset to the
	// bytes before Offset (a legal partial read with a nil error), Count
	// times. io.ReadFull-based decoders must absorb it transparently.
	ShortRead
	// Stall sleeps Delay before a Read whose range covers Offset, Count
	// times: injected latency, not an error.
	Stall
	// Corrupt XORs the byte at Offset with XOR on every read that covers
	// it. Count is ignored — corruption is a property of the data, so it
	// persists across retries and re-opens.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case ShortRead:
		return "short-read"
	case Stall:
		return "stall"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one injected behavior at a byte offset.
type Fault struct {
	// Offset is the absolute byte position that triggers the fault.
	Offset int64
	Kind   Kind
	// Count is how many times the fault fires before burning out; 0 means
	// once. Ignored by Corrupt, which never burns out.
	Count int
	// XOR is the corruption mask (Corrupt only). 0 XORs nothing, so
	// corruption scenarios must pick a non-zero mask.
	XOR byte
	// Delay is the injected latency (Stall only).
	Delay time.Duration
}

// Injector owns a fault set shared by every reader it wraps. Fault
// burn-down is synchronized, so concurrent shard workers (and sequential
// retry re-opens) observe one consistent scenario.
type Injector struct {
	mu     sync.Mutex
	faults []Fault
	fired  []int // per-fault fire count
}

// New builds an injector over the fault set.
func New(faults ...Fault) *Injector {
	return &Injector{faults: faults, fired: make([]int, len(faults))}
}

// Fired reports how many times fault i has fired — test bookkeeping for
// asserting a scenario actually exercised its faults.
func (in *Injector) Fired(i int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[i]
}

// budget returns a fault's total allowed firings.
func budget(f *Fault) int {
	if f.Count <= 0 {
		return 1
	}
	return f.Count
}

// plan decides what a read of [pos, pos+n) does: how many bytes it may
// return (≤ n), an error to inject instead (nil for none), a stall to
// sleep first, and the corruption positions to apply afterwards. Fault
// state burns down inside the lock; the caller performs the I/O outside.
func (in *Injector) plan(pos int64, n int) (limit int, stall time.Duration, corrupt []int64, err error) {
	limit = n
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.faults {
		f := &in.faults[i]
		if f.Offset < pos || f.Offset >= pos+int64(limit) {
			continue
		}
		switch f.Kind {
		case Corrupt:
			in.fired[i]++
			corrupt = append(corrupt, f.Offset-pos)
		case Stall:
			if in.fired[i] < budget(f) {
				in.fired[i]++
				stall += f.Delay
			}
		case Transient:
			if in.fired[i] < budget(f) {
				in.fired[i]++
				return 0, stall, nil, fmt.Errorf("faultfs: injected EIO at offset %d: %w", f.Offset, ErrTransient)
			}
		case ShortRead:
			if in.fired[i] < budget(f) && f.Offset > pos {
				in.fired[i]++
				if cut := int(f.Offset - pos); cut < limit {
					limit = cut
					// Corruption positions past the cut no longer apply.
					kept := corrupt[:0]
					for _, c := range corrupt {
						if c < int64(limit) {
							kept = append(kept, c)
						}
					}
					corrupt = kept
				}
			}
		}
	}
	return limit, stall, corrupt, nil
}

// WrapReadSeeker wraps a positioned reader (what os.Open returns) with
// the injector's faults. The wrapper tracks the position itself via Read
// and Seek, so the inner reader only needs io.ReadSeekCloser.
func (in *Injector) WrapReadSeeker(inner io.ReadSeekCloser) io.ReadSeekCloser {
	return &faultFile{in: in, inner: inner}
}

// WrapOpen adapts an open function (path → reader) so every file it
// opens carries the injector's faults — the hook shape the shard
// runner's Open option takes.
func (in *Injector) WrapOpen(open func(string) (io.ReadSeekCloser, error)) func(string) (io.ReadSeekCloser, error) {
	return func(path string) (io.ReadSeekCloser, error) {
		f, err := open(path)
		if err != nil {
			return nil, err
		}
		return in.WrapReadSeeker(f), nil
	}
}

type faultFile struct {
	in    *Injector
	inner io.ReadSeekCloser
	pos   int64
}

func (f *faultFile) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return f.inner.Read(p)
	}
	limit, stall, corrupt, err := f.in.plan(f.pos, len(p))
	if stall > 0 {
		time.Sleep(stall)
	}
	if err != nil {
		return 0, err
	}
	n, err := f.inner.Read(p[:limit])
	for _, c := range corrupt {
		if c < int64(n) {
			p[c] ^= f.in.xorAt(f.pos + c)
		}
	}
	f.pos += int64(n)
	return n, err
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := f.inner.Seek(offset, whence)
	if err == nil {
		f.pos = pos
	}
	return pos, err
}

func (f *faultFile) Close() error { return f.inner.Close() }

// xorAt returns the corruption mask for an absolute offset (0 if none).
func (in *Injector) xorAt(off int64) byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	var x byte
	for i := range in.faults {
		f := &in.faults[i]
		if f.Kind == Corrupt && f.Offset == off {
			x ^= f.XOR
		}
	}
	return x
}

// ReaderAt wraps an io.ReaderAt with the injector's faults, for callers
// that read by absolute offset instead of a cursor.
func (in *Injector) ReaderAt(inner io.ReaderAt) io.ReaderAt {
	return &faultReaderAt{in: in, inner: inner}
}

type faultReaderAt struct {
	in    *Injector
	inner io.ReaderAt
}

func (r *faultReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return r.inner.ReadAt(p, off)
	}
	limit, stall, corrupt, err := r.in.plan(off, len(p))
	if stall > 0 {
		time.Sleep(stall)
	}
	if err != nil {
		return 0, err
	}
	n, err := r.inner.ReadAt(p[:limit], off)
	for _, c := range corrupt {
		if c < int64(n) {
			p[c] ^= r.in.xorAt(off + c)
		}
	}
	if err == nil && limit < len(p) {
		// A shortened ReadAt must error per the io.ReaderAt contract;
		// report the partial read without inventing data.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}
