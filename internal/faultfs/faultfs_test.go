package faultfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// memFile is an in-memory io.ReadSeekCloser backing the wrapper tests.
type memFile struct {
	*bytes.Reader
}

func (memFile) Close() error { return nil }

func data(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func open(in *Injector, b []byte) io.ReadSeekCloser {
	return in.WrapReadSeeker(memFile{bytes.NewReader(b)})
}

func TestTransientBurnsDownAcrossReopens(t *testing.T) {
	src := data(64)
	in := New(Fault{Kind: Transient, Offset: 10, Count: 2})
	for attempt := 0; attempt < 2; attempt++ {
		f := open(in, src)
		_, err := io.ReadAll(f)
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("attempt %d: got %v, want ErrTransient", attempt, err)
		}
	}
	// The budget is spent; a third open reads clean.
	got, err := io.ReadAll(open(in, src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("post-burn-down read: %v, %d bytes", err, len(got))
	}
	if in.Fired(0) != 2 {
		t.Fatalf("fired %d, want 2", in.Fired(0))
	}
}

func TestTransientOnlyCoveringReads(t *testing.T) {
	src := data(64)
	in := New(Fault{Kind: Transient, Offset: 32, Count: 1})
	f := open(in, src)
	// A read entirely before the offset passes through untouched.
	buf := make([]byte, 16)
	if _, err := io.ReadFull(f, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, src[:16]) {
		t.Fatal("clean range corrupted")
	}
	if _, err := io.ReadAll(f); !errors.Is(err, ErrTransient) {
		t.Fatalf("covering read: %v", err)
	}
}

func TestShortReadIsLegalPartial(t *testing.T) {
	src := data(64)
	in := New(Fault{Kind: ShortRead, Offset: 20, Count: 1})
	f := open(in, src)
	buf := make([]byte, 64)
	n, err := f.Read(buf)
	if err != nil {
		t.Fatalf("short read must not error: %v", err)
	}
	if n != 20 {
		t.Fatalf("read %d bytes, want the 20 before the fault offset", n)
	}
	// io.ReadFull-style consumers absorb the partial transparently.
	rest, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(buf[:n], rest...), src) {
		t.Fatal("bytes lost across the partial read")
	}
}

func TestCorruptPersistsAcrossReopens(t *testing.T) {
	src := data(64)
	in := New(Fault{Kind: Corrupt, Offset: 33, XOR: 0x80})
	for attempt := 0; attempt < 2; attempt++ {
		got, err := io.ReadAll(open(in, src))
		if err != nil {
			t.Fatal(err)
		}
		if got[33] != src[33]^0x80 {
			t.Fatalf("attempt %d: byte 33 = %#x, want %#x", attempt, got[33], src[33]^0x80)
		}
		got[33] = src[33]
		if !bytes.Equal(got, src) {
			t.Fatalf("attempt %d: corruption leaked beyond offset 33", attempt)
		}
	}
}

func TestCorruptAfterSeek(t *testing.T) {
	src := data(64)
	in := New(Fault{Kind: Corrupt, Offset: 40, XOR: 0xFF})
	f := open(in, src)
	if _, err := f.Seek(32, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if got[8] != src[40]^0xFF {
		t.Fatalf("corruption missed its absolute offset after a seek: %#x", got[8])
	}
}

func TestStallDelaysWithoutError(t *testing.T) {
	src := data(16)
	in := New(Fault{Kind: Stall, Offset: 0, Count: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	got, err := io.ReadAll(open(in, src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("stall must be latency only: %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("stall did not delay the read")
	}
}

func TestReaderAtContract(t *testing.T) {
	src := data(64)
	in := New(Fault{Kind: ShortRead, Offset: 8, Count: 1})
	ra := in.ReaderAt(bytes.NewReader(src))
	buf := make([]byte, 16)
	n, err := ra.ReadAt(buf, 0)
	// io.ReaderAt must error on a partial read instead of returning short
	// silently.
	if n != 8 || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got n=%d err=%v, want 8 bytes + ErrUnexpectedEOF", n, err)
	}
	n, err = ra.ReadAt(buf, 16)
	if n != 16 || err != nil {
		t.Fatalf("clean ReadAt: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf, src[16:32]) {
		t.Fatal("clean ReadAt returned wrong bytes")
	}
}
