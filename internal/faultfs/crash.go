package faultfs

// crash.go adds process-crash injection on the checkpoint write path.
// Where faultfs.go's Injector simulates flaky storage under reads, a
// CrashPlan simulates the process dying at a chosen phase of a durable
// write — including the nastiest variant, a torn file that made it past
// rename. The checkpoint writer (internal/checkpoint.Save via
// internal/atomicio) exposes its phases through a hook; a CrashPlan is
// that hook.

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrKilled marks an injected process kill. The shard runner treats a
// checkpoint failure wrapping it as fatal-for-this-process, which is the
// point: the test then starts a fresh run with Resume set, exactly like
// an operator restarting after a crash.
var ErrKilled = errors.New("faultfs: injected kill")

// CrashPlan kills the process-under-test at one durable-write phase.
// Phases, in write order: "mid-snapshot" (manifest written, state
// section not yet), "post-temp-write" (temp complete, not fsynced),
// "pre-rename" (temp durable, not yet visible), "mid-rename" (the torn
// case: the visible file is corrupted, then the kill lands after rename
// — simulating a crash mid-way through the rename's disk update).
//
// The zero value is inert. A CrashPlan fires at most once; it is safe
// for concurrent use by parallel shard workers (whichever worker reaches
// the kill point first takes the hit).
type CrashPlan struct {
	mu sync.Mutex
	// KillAt is the phase that triggers the kill ("" disables).
	KillAt string
	// Skip ignores the first Skip occurrences of KillAt, so a test can
	// target the Nth checkpoint and exercise generation fallback.
	Skip int
	// Torn bounds the tail truncation applied in the mid-rename case
	// (min 1 byte). Ignored when TornXOR is set.
	Torn int
	// TornXOR, when non-zero, flips the file's last byte with this mask
	// instead of truncating — a bit-rot tear rather than a short write.
	TornXOR byte

	hits     int
	armedTor bool
	fired    bool
}

// Hook is the atomicio.Hook/checkpoint seam: pass plan.Hook as the
// checkpoint hook. It returns ErrKilled at the planned phase.
func (p *CrashPlan) Hook(phase, path string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fired || p.KillAt == "" {
		return nil
	}
	if p.armedTor {
		// The tear landed; let the rename itself complete, then kill.
		if phase == "renamed" {
			p.fired = true
			return fmt.Errorf("%w (torn at %s)", ErrKilled, p.KillAt)
		}
		return nil
	}
	if phase != p.KillAt {
		return nil
	}
	p.hits++
	if p.hits <= p.Skip {
		return nil
	}
	if phase == "mid-rename" {
		// Corrupt the about-to-be-renamed temp so the post-crash file
		// exists but fails its checksum, then arm the kill for after the
		// rename completes.
		if err := p.tear(path); err != nil {
			return err
		}
		p.armedTor = true
		return nil
	}
	p.fired = true
	return fmt.Errorf("%w (at %s)", ErrKilled, phase)
}

// tear damages the file's tail: truncation (short write) or an XOR flip
// (bit rot), per the plan's Torn/TornXOR knobs.
func (p *CrashPlan) tear(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size()
	if p.TornXOR != 0 {
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		if size == 0 {
			return nil
		}
		b := make([]byte, 1)
		if _, err := f.ReadAt(b, size-1); err != nil {
			return err
		}
		b[0] ^= p.TornXOR
		_, err = f.WriteAt(b, size-1)
		return err
	}
	cut := int64(p.Torn)
	if cut < 1 {
		cut = 1
	}
	if cut > size {
		cut = size
	}
	return os.Truncate(path, size-cut)
}

// Fired reports whether the kill landed — tests assert the scenario
// actually exercised its crash point.
func (p *CrashPlan) Fired() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}
