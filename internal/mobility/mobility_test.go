package mobility

import (
	"math"
	"testing"

	"meshlab/internal/clients"
	"meshlab/internal/dataset"
	"meshlab/internal/rng"
	"meshlab/internal/stats"
	"meshlab/internal/topology"
)

func asc(ap int32, s, e int32) dataset.Assoc { return dataset.Assoc{AP: ap, Start: s, End: e} }

func TestSessionsSplit(t *testing.T) {
	assocs := []dataset.Assoc{
		asc(0, 0, 100),
		asc(1, 150, 300),  // 50 s gap: same session
		asc(0, 700, 1000), // 400 s gap: new session
	}
	sess := Sessions(assocs, 300)
	if len(sess) != 2 {
		t.Fatalf("got %d sessions, want 2", len(sess))
	}
	if len(sess[0]) != 2 || len(sess[1]) != 1 {
		t.Fatalf("session sizes %d, %d", len(sess[0]), len(sess[1]))
	}
	if Sessions(nil, 300) != nil {
		t.Fatal("empty history should produce no sessions")
	}
}

func TestSessionsNoGap(t *testing.T) {
	assocs := []dataset.Assoc{asc(0, 0, 100), asc(1, 100, 200)}
	if got := Sessions(assocs, 300); len(got) != 1 {
		t.Fatalf("contiguous history split into %d sessions", len(got))
	}
}

func TestAPsVisited(t *testing.T) {
	assocs := []dataset.Assoc{asc(0, 0, 10), asc(1, 10, 20), asc(0, 20, 30)}
	if got := APsVisited(assocs); got != 2 {
		t.Fatalf("APsVisited = %d, want 2", got)
	}
}

func TestConnectionLength(t *testing.T) {
	assocs := []dataset.Assoc{asc(0, 100, 200), asc(1, 250, 400)}
	if got := ConnectionLength(assocs); got != 300 {
		t.Fatalf("ConnectionLength = %v, want 300 (span, gaps included)", got)
	}
	if ConnectionLength(nil) != 0 {
		t.Fatal("empty should be 0")
	}
}

func TestPrevalences(t *testing.T) {
	assocs := []dataset.Assoc{asc(0, 0, 300), asc(1, 300, 400)}
	p := Prevalences(assocs)
	if math.Abs(p[0]-0.75) > 1e-12 || math.Abs(p[1]-0.25) > 1e-12 {
		t.Fatalf("prevalences = %v", p)
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("prevalences sum to %v", sum)
	}
	if Prevalences(nil) != nil {
		t.Fatal("empty should be nil")
	}
}

func TestPersistences(t *testing.T) {
	// 0 for 100 s, 1 for 50 s, back to 0 for 30 s: three runs.
	assocs := []dataset.Assoc{asc(0, 0, 100), asc(1, 100, 150), asc(0, 150, 180)}
	got := Persistences(assocs)
	want := []float64{100, 50, 30}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPersistencesMergesSameAPRuns(t *testing.T) {
	// Same AP across a tolerated gap is one run.
	assocs := []dataset.Assoc{asc(0, 0, 100), asc(0, 200, 250), asc(1, 250, 260)}
	got := Persistences(assocs)
	if len(got) != 2 || got[0] != 150 {
		t.Fatalf("got %v, want [150 10]", got)
	}
}

func TestPersistencesSingleRun(t *testing.T) {
	got := Persistences([]dataset.Assoc{asc(3, 0, 500)})
	if len(got) != 1 || got[0] != 500 {
		t.Fatalf("got %v", got)
	}
	if Persistences(nil) != nil {
		t.Fatal("empty should be nil")
	}
}

func TestMedianHelper(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("median of empty should be 0")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median wrong")
	}
}

func handData() []*dataset.ClientData {
	return []*dataset.ClientData{
		{
			Network: "in0", Env: "indoor", Duration: 1000, NumAPs: 3,
			Clients: []dataset.ClientLog{
				{ID: 0, Assocs: []dataset.Assoc{asc(0, 0, 1000)}},
				{ID: 1, Assocs: []dataset.Assoc{asc(0, 0, 100), asc(1, 100, 200), asc(0, 200, 600)}},
			},
		},
		{
			Network: "out0", Env: "outdoor", Duration: 1000, NumAPs: 2,
			Clients: []dataset.ClientLog{
				{ID: 0, Assocs: []dataset.Assoc{asc(1, 0, 900)}},
			},
		},
		{
			Network: "mix0", Env: "mixed", Duration: 1000, NumAPs: 2,
			Clients: []dataset.ClientLog{
				{ID: 0, Assocs: []dataset.Assoc{asc(0, 0, 500)}},
			},
		},
	}
}

func TestAnalyzeAggregates(t *testing.T) {
	a := Analyze(handData(), DefaultGap)
	if a.Sessions != 4 {
		t.Fatalf("sessions = %d, want 4", a.Sessions)
	}
	if a.APVisits[1] != 3 || a.APVisits[2] != 1 {
		t.Fatalf("APVisits = %v", a.APVisits)
	}
	if len(a.ConnLengths) != 4 {
		t.Fatalf("conn lengths = %v", a.ConnLengths)
	}
	// Mixed networks excluded from env splits.
	if len(a.PrevalenceByEnv["indoor"]) != 3 { // client0: 1 value; client1: 2 values
		t.Fatalf("indoor prevalences = %v", a.PrevalenceByEnv["indoor"])
	}
	if len(a.PrevalenceByEnv["outdoor"]) != 1 {
		t.Fatalf("outdoor prevalences = %v", a.PrevalenceByEnv["outdoor"])
	}
	if _, ok := a.PrevalenceByEnv["mixed"]; ok {
		t.Fatal("mixed networks must be excluded from env splits")
	}
	// Persistence: client1 has runs 100, 100, 400 → 3 values; client0 1.
	if len(a.PersistenceByEnv["indoor"]) != 4 {
		t.Fatalf("indoor persistences = %v", a.PersistenceByEnv["indoor"])
	}
	// Figure 7.5 points: every session contributes one.
	if len(a.Points) != 4 {
		t.Fatalf("points = %d", len(a.Points))
	}
	for _, p := range a.Points {
		if p.MaxPrevalence <= 0 || p.MaxPrevalence > 1 {
			t.Fatalf("bad max prevalence %v", p.MaxPrevalence)
		}
	}
}

func TestAnalyzeOnSimulatedFleet(t *testing.T) {
	// End-to-end: simulate clients over a small fleet and check the §7
	// headline shapes.
	root := rng.New(777)
	fleet, err := topology.GenerateFleet(root, topology.FleetConfig{
		NumNetworks: 10, NumIndoor: 6, NumOutdoor: 4, NumMixed: 0,
		NumN: 0, NumBoth: 0, MinSize: 5, MaxSize: 30,
		SizeLogMean: 2.2, SizeLogStd: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cds := clients.SimulateFleet(root.Split("clients"), fleet, clients.Config{})
	a := Analyze(cds, DefaultGap)

	// Figure 7.1: sessions visiting exactly one AP dominate.
	one := a.APVisits[1]
	total := 0
	for _, c := range a.APVisits {
		total += c
	}
	if one*2 < total {
		t.Fatalf("one-AP sessions %d of %d: should be the majority", one, total)
	}

	// Figure 7.2: a large fraction of sessions last the full snapshot.
	full := 0
	for _, l := range a.ConnLengths {
		if l >= 39600*0.95 {
			full++
		}
	}
	if f := float64(full) / float64(len(a.ConnLengths)); f < 0.3 {
		t.Fatalf("full-duration session fraction %v too low", f)
	}

	// Figures 7.3/7.4: outdoor prevalence and persistence exceed indoor
	// in the median.
	inPrev := stats.Median(a.PrevalenceByEnv["indoor"])
	outPrev := stats.Median(a.PrevalenceByEnv["outdoor"])
	if inPrev >= outPrev {
		t.Fatalf("indoor median prevalence %v should be below outdoor %v", inPrev, outPrev)
	}
	inPers := stats.Median(a.PersistenceByEnv["indoor"])
	outPers := stats.Median(a.PersistenceByEnv["outdoor"])
	if inPers >= outPers {
		t.Fatalf("indoor median persistence %v s should be below outdoor %v s", inPers, outPers)
	}
	// Thesis: indoor persistence is seconds-scale (median 6.25 s), far
	// below the 5-minute log granularity.
	if inPers > 120 {
		t.Fatalf("indoor median persistence %v s; expected seconds-scale flapping", inPers)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	root := rng.New(1)
	topo, _ := topology.Generate(root, topology.Config{Name: "b", Size: 30, Env: topology.EnvIndoor})
	cd := clients.Simulate(root.Split("c"), topo, clients.Config{})
	cds := []*dataset.ClientData{cd}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Analyze(cds, DefaultGap)
	}
}
