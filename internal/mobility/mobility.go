// Package mobility implements the thesis's §7 client-mobility analysis
// over aggregate association logs: how many APs clients visit, how long
// they stay connected, and the prevalence and persistence metrics of
// Balazinska & Castro as adapted by the thesis.
//
//   - Prevalence of an AP for a client: the fraction of the client's
//     connected time spent at that AP. One value per (client, AP) pair
//     with non-zero time.
//   - Persistence: the length of each maximal run of consecutive time a
//     client spends at one AP before switching to a different AP. One
//     value per run.
//
// Following §7's methodology, a client that disconnects for more than five
// minutes is treated as a new client from then on.
package mobility

import (
	"sort"

	"meshlab/internal/dataset"
)

// DefaultGap is the disconnect gap (seconds) that splits a client into two
// observation sessions, matching the thesis's five-minute rule and the
// 5-minute granularity of the underlying logs.
const DefaultGap int32 = 300

// Sessions splits a client's association history into sessions at gaps
// longer than gap seconds. Each returned slice is non-empty, ordered, and
// has no internal gap exceeding gap.
func Sessions(assocs []dataset.Assoc, gap int32) [][]dataset.Assoc {
	if len(assocs) == 0 {
		return nil
	}
	var out [][]dataset.Assoc
	start := 0
	for i := 1; i < len(assocs); i++ {
		if assocs[i].Start-assocs[i-1].End > gap {
			out = append(out, assocs[start:i])
			start = i
		}
	}
	return append(out, assocs[start:])
}

// APsVisited returns the number of distinct APs in a session.
func APsVisited(assocs []dataset.Assoc) int {
	seen := make(map[int32]bool, 4)
	for _, a := range assocs {
		seen[a.AP] = true
	}
	return len(seen)
}

// ConnectionLength returns the session's span in seconds, from first
// association to last disassociation (short internal gaps count as
// connected, which is all the 5-minute logs can resolve).
func ConnectionLength(assocs []dataset.Assoc) float64 {
	if len(assocs) == 0 {
		return 0
	}
	return float64(assocs[len(assocs)-1].End - assocs[0].Start)
}

// Prevalences returns the fraction of the session's connected time spent
// at each AP. Values sum to 1 over the session's APs.
func Prevalences(assocs []dataset.Assoc) map[int32]float64 {
	total := 0.0
	byAP := make(map[int32]float64, 4)
	for _, a := range assocs {
		d := a.Duration()
		byAP[a.AP] += d
		total += d
	}
	if total <= 0 {
		return nil
	}
	for ap := range byAP {
		byAP[ap] /= total
	}
	return byAP
}

// Persistences returns the durations (seconds) of each maximal same-AP
// run in the session. Consecutive associations with the same AP separated
// by gaps the session tolerates are one run; a run ends when the client
// appears at a different AP. The final run's duration is included (it is
// right-censored by the snapshot, as in the thesis's data).
func Persistences(assocs []dataset.Assoc) []float64 {
	if len(assocs) == 0 {
		return nil
	}
	var out []float64
	runAP := assocs[0].AP
	runDur := assocs[0].Duration()
	for _, a := range assocs[1:] {
		if a.AP == runAP {
			runDur += a.Duration()
			continue
		}
		out = append(out, runDur)
		runAP, runDur = a.AP, a.Duration()
	}
	return append(out, runDur)
}

// ClientPoint is one point of Figure 7.5: a client-session's median
// persistence against its maximum prevalence.
type ClientPoint struct {
	Env               string
	MedianPersistence float64 // seconds
	MaxPrevalence     float64
}

// Analysis aggregates §7's metrics over a set of client datasets.
type Analysis struct {
	// APVisits counts sessions by number of distinct APs visited
	// (Figure 7.1).
	APVisits map[int]int
	// ConnLengths holds each session's connection length in seconds
	// (Figure 7.2).
	ConnLengths []float64
	// PrevalenceByEnv and PersistenceByEnv hold the non-zero prevalence
	// values and the persistence values (seconds), keyed by environment
	// ("indoor"/"outdoor"; mixed networks are excluded, as in the
	// thesis).
	PrevalenceByEnv  map[string][]float64
	PersistenceByEnv map[string][]float64
	// Points holds Figure 7.5's per-session scatter.
	Points []ClientPoint
	// Sessions is the total session count.
	Sessions int
}

// Analyze computes the full §7 aggregate over client data, splitting
// clients into sessions at gaps longer than gap seconds (use DefaultGap
// for the thesis's rule).
func Analyze(cds []*dataset.ClientData, gap int32) *Analysis {
	a := &Analysis{
		APVisits:         make(map[int]int),
		PrevalenceByEnv:  make(map[string][]float64),
		PersistenceByEnv: make(map[string][]float64),
	}
	for _, cd := range cds {
		env := cd.Env
		byEnv := env == "indoor" || env == "outdoor"
		for _, cl := range cd.Clients {
			for _, sess := range Sessions(cl.Assocs, gap) {
				a.Sessions++
				a.APVisits[APsVisited(sess)]++
				a.ConnLengths = append(a.ConnLengths, ConnectionLength(sess))

				prevs := Prevalences(sess)
				pers := Persistences(sess)
				if byEnv {
					for _, p := range prevs {
						a.PrevalenceByEnv[env] = append(a.PrevalenceByEnv[env], p)
					}
					a.PersistenceByEnv[env] = append(a.PersistenceByEnv[env], pers...)
				}

				maxPrev := 0.0
				for _, p := range prevs {
					if p > maxPrev {
						maxPrev = p
					}
				}
				a.Points = append(a.Points, ClientPoint{
					Env:               env,
					MedianPersistence: median(pers),
					MaxPrevalence:     maxPrev,
				})
			}
		}
	}
	return a
}

// median returns the median of xs without modifying it (0 for empty).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
