// Package etxsim is a packet-level Monte-Carlo simulator of the two
// routing disciplines §5 compares analytically: shortest-path forwarding
// under the ETX metric, and idealized opportunistic (ExOR-style)
// forwarding. It exists to validate the closed-form expected-transmission
// recursions in internal/routing by independent simulation — the property
// tests assert that simulated means converge to the analytic costs.
package etxsim

import (
	"errors"
	"math"

	"meshlab/internal/rng"
	"meshlab/internal/routing"
)

// ErrUnreachable is returned when no route exists between the endpoints.
var ErrUnreachable = errors.New("etxsim: destination unreachable")

// maxTxPerPacket bounds a single packet's transmission count so that
// pathological matrices cannot hang the simulator.
const maxTxPerPacket = 100000

// ETXPacket simulates one packet from s to d along the precomputed
// shortest path, returning the number of data transmissions used. Under
// ETX1 each hop retries until the forward delivery succeeds; under ETX2 a
// hop's attempt succeeds only if both the data frame and the (lowest-rate)
// ACK get through, matching the metric's two-way assumption.
func ETXPacket(r *rng.Stream, m routing.Matrix, paths *routing.Paths, s, d int) (int, error) {
	if s == d {
		return 0, nil
	}
	if math.IsInf(paths.Dist[s][d], 1) {
		return 0, ErrUnreachable
	}
	tx := 0
	cur := s
	for cur != d {
		next := paths.Next[cur][d]
		if next < 0 {
			return 0, ErrUnreachable
		}
		p := m.At(cur, next)
		if paths.Variant == routing.ETX2 {
			p *= m.At(next, cur)
		}
		for {
			tx++
			if tx > maxTxPerPacket {
				return tx, nil
			}
			if r.Bool(p) {
				break
			}
		}
		cur = next
	}
	return tx, nil
}

// ExORPacket simulates one packet from s to d under idealized
// opportunistic forwarding: the holder broadcasts; among the candidate
// forwarders closer to d (by the ETX metric) that received it, the one
// closest to d becomes the new holder. A holder with no closer candidates
// falls back to its ETX next hop, as the analytic recursion does.
func ExORPacket(r *rng.Stream, m routing.Matrix, paths *routing.Paths, s, d int) (int, error) {
	if s == d {
		return 0, nil
	}
	if math.IsInf(paths.Dist[s][d], 1) {
		return 0, ErrUnreachable
	}
	n := m.Size()
	tx := 0
	cur := s
	for cur != d {
		// Candidates: strictly closer to d, reachable from cur.
		type cand struct {
			node int
			dist float64
		}
		var cands []cand
		row := m.Row(cur)
		for c := 0; c < n; c++ {
			if c == cur || row[c] <= 0 {
				continue
			}
			if paths.Dist[c][d] < paths.Dist[cur][d] {
				cands = append(cands, cand{node: c, dist: paths.Dist[c][d]})
			}
		}
		if len(cands) == 0 {
			// Degenerate: behave like ETX from here (§5.1).
			rest, err := ETXPacket(r, m, paths, cur, d)
			return tx + rest, err
		}
		tx++
		if tx > maxTxPerPacket {
			return tx, nil
		}
		best, bestDist := -1, math.Inf(1)
		for _, c := range cands {
			if r.Bool(m.At(cur, c.node)) && c.dist < bestDist {
				best, bestDist = c.node, c.dist
			}
		}
		if best >= 0 {
			cur = best
		}
		// Nobody closer received: the holder broadcasts again.
	}
	return tx, nil
}

// MonteCarlo runs trials packets under both disciplines and returns the
// mean transmission counts.
func MonteCarlo(r *rng.Stream, m routing.Matrix, v routing.Variant, s, d, trials int) (meanETX, meanExOR float64, err error) {
	paths := routing.AllPairs(m, v)
	var sumETX, sumExOR float64
	for i := 0; i < trials; i++ {
		e, err := ETXPacket(r, m, paths, s, d)
		if err != nil {
			return 0, 0, err
		}
		x, err := ExORPacket(r, m, paths, s, d)
		if err != nil {
			return 0, 0, err
		}
		sumETX += float64(e)
		sumExOR += float64(x)
	}
	return sumETX / float64(trials), sumExOR / float64(trials), nil
}
