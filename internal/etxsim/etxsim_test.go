package etxsim

import (
	"math"
	"testing"

	"meshlab/internal/rng"
	"meshlab/internal/routing"
)

// lineMatrix is the thesis's §5.2.2 worked example.
func lineMatrix() routing.Matrix {
	m := routing.NewMatrix(3)
	m.Set(0, 1, 0.9)
	m.Set(1, 0, 0.9)
	m.Set(1, 2, 0.9)
	m.Set(2, 1, 0.9)
	m.Set(0, 2, 0.3)
	m.Set(2, 0, 0.3)
	return m
}

func TestETXPacketMatchesAnalyticOnExample(t *testing.T) {
	m := lineMatrix()
	r := rng.New(1)
	meanETX, meanExOR, err := MonteCarlo(r, m, routing.ETX1, 0, 2, 40000)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: ETX1 = 2/0.9 ≈ 2.222; ExOR ≈ 1.828.
	if math.Abs(meanETX-2.222) > 0.05 {
		t.Fatalf("simulated ETX mean %v, analytic 2.222", meanETX)
	}
	paths := routing.AllPairs(m, routing.ETX1)
	exor := routing.ExORToDest(m, paths, 2)
	if math.Abs(meanExOR-exor[0]) > 0.05 {
		t.Fatalf("simulated ExOR mean %v, analytic %v", meanExOR, exor[0])
	}
	if meanExOR >= meanETX {
		t.Fatal("opportunistic routing should beat ETX on the worked example")
	}
}

func TestSelfDelivery(t *testing.T) {
	m := lineMatrix()
	paths := routing.AllPairs(m, routing.ETX1)
	r := rng.New(2)
	if tx, err := ETXPacket(r, m, paths, 1, 1); err != nil || tx != 0 {
		t.Fatalf("self delivery: %d, %v", tx, err)
	}
	if tx, err := ExORPacket(r, m, paths, 1, 1); err != nil || tx != 0 {
		t.Fatalf("self delivery: %d, %v", tx, err)
	}
}

func TestUnreachable(t *testing.T) {
	m := routing.NewMatrix(3)
	m.Set(0, 1, 0.9)
	paths := routing.AllPairs(m, routing.ETX1)
	r := rng.New(3)
	if _, err := ETXPacket(r, m, paths, 0, 2); err != ErrUnreachable {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
	if _, err := ExORPacket(r, m, paths, 0, 2); err != ErrUnreachable {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
	if _, _, err := MonteCarlo(r, m, routing.ETX1, 0, 2, 10); err == nil {
		t.Fatal("MonteCarlo should propagate unreachability")
	}
}

func TestETX2SimulationMatchesAnalytic(t *testing.T) {
	// Two nodes with asymmetric delivery: ETX2 = 1/(pf·pr).
	m := routing.NewMatrix(2)
	m.Set(0, 1, 0.8)
	m.Set(1, 0, 0.5)
	r := rng.New(4)
	meanETX, _, err := MonteCarlo(r, m, routing.ETX2, 0, 1, 40000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (0.8 * 0.5)
	if math.Abs(meanETX-want) > 0.06 {
		t.Fatalf("simulated ETX2 mean %v, analytic %v", meanETX, want)
	}
}

func randomMatrix(seed uint64, n int) routing.Matrix {
	r := rng.New(seed)
	m := routing.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(0.35) {
				continue
			}
			base := 0.2 + 0.75*r.Float64()
			m.Set(i, j, base)
			m.Set(j, i, math.Min(0.95, math.Max(0.05, base+0.1*r.NormFloat64())))
		}
	}
	return m
}

func TestSimulationMatchesAnalyticOnRandomTopologies(t *testing.T) {
	// The central validation: Monte-Carlo means converge to the
	// analytic recursions across random connected topologies. The
	// analytic ExOR value is capped at the ETX cost, so the simulated
	// mean may exceed it very slightly in degenerate orderings; allow a
	// one-sided slack.
	for seed := uint64(1); seed <= 4; seed++ {
		m := randomMatrix(seed, 8)
		paths := routing.AllPairs(m, routing.ETX1)
		r := rng.New(seed * 100)
		checked := 0
		for d := 0; d < 8 && checked < 4; d++ {
			exor := routing.ExORToDest(m, paths, d)
			for s := 0; s < 8 && checked < 4; s++ {
				if s == d || math.IsInf(paths.Dist[s][d], 1) || paths.Hops[s][d] < 2 {
					continue
				}
				meanETX, meanExOR, err := MonteCarlo(r, m, routing.ETX1, s, d, 12000)
				if err != nil {
					t.Fatal(err)
				}
				if rel := math.Abs(meanETX-paths.Dist[s][d]) / paths.Dist[s][d]; rel > 0.05 {
					t.Fatalf("seed %d %d→%d: ETX sim %v vs analytic %v (rel err %v)",
						seed, s, d, meanETX, paths.Dist[s][d], rel)
				}
				slack := 0.05*exor[s] + 0.05
				if meanExOR > exor[s]+2*slack || meanExOR < exor[s]-slack-0.35 {
					t.Fatalf("seed %d %d→%d: ExOR sim %v vs analytic %v",
						seed, s, d, meanExOR, exor[s])
				}
				checked++
			}
		}
		if checked == 0 {
			t.Logf("seed %d: no multi-hop reachable pairs; skipping", seed)
		}
	}
}

func TestExORSimNeverSlowerThanETXSimOnAverage(t *testing.T) {
	m := randomMatrix(9, 10)
	paths := routing.AllPairs(m, routing.ETX1)
	r := rng.New(99)
	for d := 0; d < 3; d++ {
		for s := 5; s < 8; s++ {
			if s == d || math.IsInf(paths.Dist[s][d], 1) {
				continue
			}
			meanETX, meanExOR, err := MonteCarlo(r, m, routing.ETX1, s, d, 6000)
			if err != nil {
				t.Fatal(err)
			}
			// Allow sampling noise plus the analytic cap slack.
			if meanExOR > meanETX*1.1+0.3 {
				t.Fatalf("%d→%d: opportunistic sim mean %v clearly exceeds ETX %v",
					s, d, meanExOR, meanETX)
			}
		}
	}
}

func BenchmarkMonteCarloPair(b *testing.B) {
	m := randomMatrix(1, 10)
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = MonteCarlo(r, m, routing.ETX1, 0, 9, 100)
	}
}
