// Package hidden implements the thesis's §6 hidden-triple analysis. A
// triple of APs (A, B, C) is *relevant* at bit rate b when A and C can both
// hear B at rate b; it is *hidden* when additionally A and C cannot hear
// each other — the topology that produces hidden terminals. Hearing is
// thresholded: two APs hear each other at rate b when more than t of the
// probes sent between them at rate b get through (the thesis uses t = 10%
// and reports that results are insensitive to t).
//
// The package also implements §6.2's notion of range: the number of node
// pairs that can hear each other at a rate, normalized against the
// network's range at 1 Mbit/s.
package hidden

import (
	"meshlab/internal/dataset"
	"meshlab/internal/routing"
)

// Graph is a symmetric hearing relation over a network's APs at one rate
// and threshold, stored as a flat row-major boolean matrix.
type Graph struct {
	n    int
	hear []bool
}

// HearingGraph thresholds a success matrix into a hearing graph: i and j
// hear each other when the mean of the two directed delivery probabilities
// exceeds threshold.
func HearingGraph(m routing.Matrix, threshold float64) *Graph {
	n := m.Size()
	g := &Graph{n: n, hear: make([]bool, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := (m.At(i, j) + m.At(j, i)) / 2
			if p > threshold {
				g.hear[i*n+j] = true
				g.hear[j*n+i] = true
			}
		}
	}
	return g
}

// Hears reports whether i and j hear each other.
func (g *Graph) Hears(i, j int) bool {
	if i == j || i < 0 || j < 0 || i >= g.n || j >= g.n {
		return false
	}
	return g.hear[i*g.n+j]
}

// Size returns the node count.
func (g *Graph) Size() int { return g.n }

// Range returns the number of unordered node pairs that hear each other
// (§6.2's definition of a network's range at a rate).
func (g *Graph) Range() int {
	count := 0
	for i := 0; i < g.n; i++ {
		row := g.hear[i*g.n : (i+1)*g.n]
		for j := i + 1; j < g.n; j++ {
			if row[j] {
				count++
			}
		}
	}
	return count
}

// CountTriples returns the number of relevant triples (A and C both hear
// the center B) and how many of those are hidden (A and C do not hear each
// other). Triples are counted once per unordered {A, C} pair per center.
func (g *Graph) CountTriples() (relevant, hidden int) {
	nbrs := make([]int, 0, g.n)
	for b := 0; b < g.n; b++ {
		// Neighbors of the center.
		nbrs = nbrs[:0]
		row := g.hear[b*g.n : (b+1)*g.n]
		for a, h := range row {
			if h {
				nbrs = append(nbrs, a)
			}
		}
		for x := 0; x < len(nbrs); x++ {
			hrow := g.hear[nbrs[x]*g.n : (nbrs[x]+1)*g.n]
			for y := x + 1; y < len(nbrs); y++ {
				relevant++
				if !hrow[nbrs[y]] {
					hidden++
				}
			}
		}
	}
	return relevant, hidden
}

// RateResult is the triple census of one network at one rate.
type RateResult struct {
	// RateIdx indexes the network band's rates.
	RateIdx int
	// Relevant and Hidden are the triple counts; Fraction is
	// Hidden/Relevant (0 when no relevant triples exist).
	Relevant, Hidden int
	Fraction         float64
	// Range is the number of hearing pairs at this rate.
	Range int
}

// NetworkResult is the full §6 census of one network.
type NetworkResult struct {
	Net   string
	Env   string
	Size  int
	Rates []RateResult
}

// RangeRatio returns the network's range at rate ri divided by its range
// at the reference rate (§6.2's change-in-range), and false when the
// reference range is zero.
func (nr *NetworkResult) RangeRatio(ri, refRate int) (float64, bool) {
	var cur, ref *RateResult
	for i := range nr.Rates {
		if nr.Rates[i].RateIdx == ri {
			cur = &nr.Rates[i]
		}
		if nr.Rates[i].RateIdx == refRate {
			ref = &nr.Rates[i]
		}
	}
	if cur == nil || ref == nil || ref.Range == 0 {
		return 0, false
	}
	return float64(cur.Range) / float64(ref.Range), true
}

// Census computes relevant/hidden triples and range for every rate of a
// network from its precomputed per-rate success matrices. Callers that
// already solved the matrices (experiment contexts memoize them, streaming
// walks derive them once per live network) use it to avoid the
// recomputation Analyze performs.
func Census(nd *dataset.NetworkData, ms map[int]routing.Matrix, threshold float64) (*NetworkResult, error) {
	band, err := nd.Band()
	if err != nil {
		return nil, err
	}
	out := &NetworkResult{Net: nd.Info.Name, Env: nd.Info.Env, Size: nd.NumAPs()}
	for ri := range band.Rates {
		g := HearingGraph(ms[ri], threshold)
		rel, hid := g.CountTriples()
		rr := RateResult{RateIdx: ri, Relevant: rel, Hidden: hid, Range: g.Range()}
		if rel > 0 {
			rr.Fraction = float64(hid) / float64(rel)
		}
		out.Rates = append(out.Rates, rr)
	}
	return out, nil
}

// Analyze computes relevant/hidden triples and range for every rate of a
// network's band at the given hearing threshold.
func Analyze(nd *dataset.NetworkData, threshold float64) (*NetworkResult, error) {
	ms, err := routing.SuccessMatrices(nd)
	if err != nil {
		return nil, err
	}
	return Census(nd, ms, threshold)
}

// AnalyzeAll runs Analyze over several networks, skipping none; callers
// filter by environment or size as the figures require.
func AnalyzeAll(nets []*dataset.NetworkData, threshold float64) ([]*NetworkResult, error) {
	var out []*NetworkResult
	for _, nd := range nets {
		nr, err := Analyze(nd, threshold)
		if err != nil {
			return nil, err
		}
		out = append(out, nr)
	}
	return out, nil
}
