package hidden

import (
	"testing"

	"meshlab/internal/dataset"
	"meshlab/internal/routing"
)

// chainMatrix builds A—B—C where A,B and B,C hear each other strongly but
// A,C do not: the canonical hidden triple.
func chainMatrix() routing.Matrix {
	m := routing.NewMatrix(3)
	m.Set(0, 1, 0.9)
	m.Set(1, 0, 0.9)
	m.Set(1, 2, 0.9)
	m.Set(2, 1, 0.9)
	m.Set(0, 2, 0.02)
	m.Set(2, 0, 0.02)
	return m
}

func TestHearingGraph(t *testing.T) {
	g := HearingGraph(chainMatrix(), 0.1)
	if !g.Hears(0, 1) || !g.Hears(1, 0) {
		t.Fatal("A and B should hear each other")
	}
	if g.Hears(0, 2) {
		t.Fatal("A and C should not hear each other at 10%")
	}
	if g.Hears(0, 0) {
		t.Fatal("self-hearing should be false")
	}
	if g.Hears(-1, 0) || g.Hears(0, 9) {
		t.Fatal("out-of-range should be false")
	}
	if g.Size() != 3 {
		t.Fatalf("size %d", g.Size())
	}
}

func TestHearingAveragesDirections(t *testing.T) {
	m := routing.NewMatrix(2)
	m.Set(0, 1, 0.3) // reverse stays 0: mean 0.15
	if !HearingGraph(m, 0.1).Hears(0, 1) {
		t.Fatal("mean 0.15 should exceed a 10% threshold")
	}
	if HearingGraph(m, 0.2).Hears(0, 1) {
		t.Fatal("mean 0.15 should fail a 20% threshold")
	}
}

func TestCountTriplesCanonical(t *testing.T) {
	g := HearingGraph(chainMatrix(), 0.1)
	rel, hid := g.CountTriples()
	// Centers: B has neighbors {A, C} → 1 relevant, hidden. A and C
	// have 1 neighbor each → no triples.
	if rel != 1 || hid != 1 {
		t.Fatalf("relevant=%d hidden=%d, want 1, 1", rel, hid)
	}
}

func TestCountTriplesFullMesh(t *testing.T) {
	m := routing.NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				m.Set(i, j, 0.9)
			}
		}
	}
	g := HearingGraph(m, 0.1)
	rel, hid := g.CountTriples()
	// Each of 4 centers has 3 neighbors → C(3,2)=3 triples each.
	if rel != 12 {
		t.Fatalf("relevant = %d, want 12", rel)
	}
	if hid != 0 {
		t.Fatalf("full mesh has %d hidden triples, want 0", hid)
	}
}

func TestRange(t *testing.T) {
	g := HearingGraph(chainMatrix(), 0.1)
	if got := g.Range(); got != 2 {
		t.Fatalf("range = %d, want 2 (A-B and B-C)", got)
	}
}

func testNetworkData() *dataset.NetworkData {
	// Three APs probed at two rates: at rate 0 all pairs hear; at rate 6
	// only the chain hears.
	mkObs := func(l01, l02 float32) []dataset.Obs {
		return []dataset.Obs{{RateIdx: 0, Loss: l01}, {RateIdx: 6, Loss: l02}}
	}
	link := func(f, to int, l0, l6 float32) *dataset.Link {
		return &dataset.Link{From: f, To: to, Sets: []dataset.ProbeSet{
			{T: 300, SNR: 20, Obs: mkObs(l0, l6)},
		}}
	}
	return &dataset.NetworkData{
		Info: dataset.NetworkInfo{Name: "h", Band: "bg", Env: "indoor", APs: make([]dataset.APInfo, 3)},
		Links: []*dataset.Link{
			link(0, 1, 0.1, 0.2), link(1, 0, 0.1, 0.2),
			link(1, 2, 0.1, 0.2), link(2, 1, 0.1, 0.2),
			link(0, 2, 0.5, 0.99), link(2, 0, 0.5, 0.99),
		},
	}
}

func TestAnalyze(t *testing.T) {
	nr, err := Analyze(testNetworkData(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if nr.Net != "h" || nr.Env != "indoor" || nr.Size != 3 {
		t.Fatalf("metadata wrong: %+v", nr)
	}
	if len(nr.Rates) != 7 {
		t.Fatalf("expected a result per band rate, got %d", len(nr.Rates))
	}
	// Rate 0: all pairs hear (success .5 avg on the far pair > 0.1) →
	// 3 relevant triples (one per center), none hidden.
	r0 := nr.Rates[0]
	if r0.Relevant != 3 || r0.Hidden != 0 {
		t.Fatalf("rate 0: relevant=%d hidden=%d, want 3, 0", r0.Relevant, r0.Hidden)
	}
	if r0.Range != 3 {
		t.Fatalf("rate 0 range = %d, want 3", r0.Range)
	}
	// Rate 6 (48M): far pair success .01 < t → chain → 1 hidden of 1.
	r6 := nr.Rates[6]
	if r6.Relevant != 1 || r6.Hidden != 1 || r6.Fraction != 1 {
		t.Fatalf("rate 6: %+v", r6)
	}
	if r6.Range != 2 {
		t.Fatalf("rate 6 range = %d, want 2", r6.Range)
	}
}

func TestRangeRatio(t *testing.T) {
	nr, _ := Analyze(testNetworkData(), 0.1)
	ratio, ok := nr.RangeRatio(6, 0)
	if !ok {
		t.Fatal("ratio should exist")
	}
	if ratio != 2.0/3.0 {
		t.Fatalf("range ratio = %v, want 2/3", ratio)
	}
	if r, ok := nr.RangeRatio(0, 0); !ok || r != 1 {
		t.Fatalf("self ratio = %v, %v", r, ok)
	}
	if _, ok := nr.RangeRatio(99, 0); ok {
		t.Fatal("unknown rate should not resolve")
	}
}

func TestAnalyzeAll(t *testing.T) {
	nets := []*dataset.NetworkData{testNetworkData(), testNetworkData()}
	rs, err := AnalyzeAll(nets, 0.1)
	if err != nil || len(rs) != 2 {
		t.Fatalf("AnalyzeAll = %d results, %v", len(rs), err)
	}
	bad := testNetworkData()
	bad.Info.Band = "nope"
	if _, err := AnalyzeAll([]*dataset.NetworkData{bad}, 0.1); err == nil {
		t.Fatal("bad band should propagate an error")
	}
}

func TestThresholdSweepMonotone(t *testing.T) {
	// Raising the threshold can only shrink the hearing graph, so range
	// must be non-increasing in t.
	m := chainMatrix()
	prev := HearingGraph(m, 0.01).Range()
	for _, th := range []float64{0.05, 0.1, 0.25, 0.5, 0.95} {
		cur := HearingGraph(m, th).Range()
		if cur > prev {
			t.Fatalf("range increased from %d to %d at threshold %v", prev, cur, th)
		}
		prev = cur
	}
}

func BenchmarkCountTriples50(b *testing.B) {
	m := routing.NewMatrix(50)
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if i != j && (i+j)%3 != 0 {
				m.Set(i, j, 0.8)
			}
		}
	}
	g := HearingGraph(m, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.CountTriples()
	}
}
