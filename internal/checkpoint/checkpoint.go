// Package checkpoint defines the durable on-disk snapshot format that
// makes streaming runs crash-resumable. A checkpoint file carries a
// manifest (which dataset, which shard range, how far the walk got) and
// an opaque accumulator-state payload, each independently length-prefixed
// and CRC32-guarded so a torn or bit-flipped file is detected — never
// trusted — and the loader falls back to the previous generation.
//
// File layout (all integers little-endian):
//
//	magic   "MLCK" (4 bytes)
//	version u8 (currently 1)
//	section × 2, in fixed order:
//	    tag     u8   (1 = manifest, 2 = state)
//	    length  u64  (payload bytes)
//	    payload
//	    crc     u32  (CRC-32/IEEE of payload)
//	(no trailing bytes)
//
// Files are written atomically (temp + fsync + rename, via
// internal/atomicio) and named shardNNN.gGGGGGG.ckpt so generations sort
// lexically. Save keeps the last two generations per shard: the newest
// is the resume point, the previous survives as the fallback if the
// newest turns out corrupt.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"meshlab/internal/atomicio"
	"meshlab/internal/binio"
	"meshlab/internal/dataset"
)

const (
	magic   = "MLCK"
	version = 1

	tagManifest = 1
	tagState    = 2

	// manifestVersion versions the manifest payload encoding itself.
	manifestVersion = 1
)

// ErrMismatch reports a checkpoint whose manifest names a different
// dataset or shard layout than the run trying to resume from it.
// Resuming across identities would silently blend two datasets, so
// callers must treat it as fatal (the CLIs map it to a usage error).
var ErrMismatch = errors.New("checkpoint: dataset identity mismatch")

// Manifest names the run a checkpoint belongs to and how far it got.
// The identity fields (everything except the progress fields and
// Generation) must match exactly for a resume to be legal.
type Manifest struct {
	// Identity: which dataset and which slice of it.
	Meta         dataset.Meta // dataset header (seed, durations)
	File         string       // base name of the dataset file
	PlanNetworks int          // total networks in the plan
	Shard        int          // this shard's index
	Shards       int          // total shards in the run
	First        int          // first network index of this shard's range
	Count        int          // number of networks in this shard's range
	FlatSamples  bool         // dataset carries a flat-sample section

	// Progress: how far the walk got when the snapshot was taken.
	NetworksDone   int      // networks fully observed (walk phase)
	SamplePhase    bool     // true once the deferred sample phase began
	SampleNetsDone []string // fully fed sample groups, as "band/net" keys

	// Tallies mirrored from the shard report so a resumed run can keep
	// counting from where it stopped.
	BG, N, ProbeSets int

	// Generation is assigned by Save; callers leave it zero.
	Generation uint64
}

// Loaded is a successfully decoded checkpoint.
type Loaded struct {
	Manifest Manifest
	State    []byte
	Path     string
}

func encodeManifest(m *Manifest) []byte {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.U8(manifestVersion)
	w.U64(m.Meta.Seed)
	w.I64(int64(m.Meta.ProbeDuration))
	w.I64(int64(m.Meta.ProbeInterval))
	w.I64(int64(m.Meta.ClientDuration))
	w.String(m.File)
	w.Int(m.PlanNetworks)
	w.Int(m.Shard)
	w.Int(m.Shards)
	w.Int(m.First)
	w.Int(m.Count)
	w.Bool(m.FlatSamples)
	w.Int(m.NetworksDone)
	w.Bool(m.SamplePhase)
	w.Int(len(m.SampleNetsDone))
	for _, net := range m.SampleNetsDone {
		w.String(net)
	}
	w.Int(m.BG)
	w.Int(m.N)
	w.Int(m.ProbeSets)
	w.U64(m.Generation)
	return buf.Bytes()
}

func decodeManifest(data []byte) (*Manifest, error) {
	r := binio.NewReader(bytes.NewReader(data))
	if v := r.U8(); r.Err() == nil && v != manifestVersion {
		return nil, fmt.Errorf("checkpoint: manifest version %d, want %d", v, manifestVersion)
	}
	m := &Manifest{}
	m.Meta.Seed = r.U64()
	m.Meta.ProbeDuration = int32(r.I64())
	m.Meta.ProbeInterval = int32(r.I64())
	m.Meta.ClientDuration = int32(r.I64())
	m.File = r.String()
	m.PlanNetworks = r.Int()
	m.Shard = r.Int()
	m.Shards = r.Int()
	m.First = r.Int()
	m.Count = r.Int()
	m.FlatSamples = r.Bool()
	m.NetworksDone = r.Int()
	m.SamplePhase = r.Bool()
	n := r.Count(8)
	for i := 0; i < n && r.Err() == nil; i++ {
		m.SampleNetsDone = append(m.SampleNetsDone, r.String())
	}
	m.BG = r.Int()
	m.N = r.Int()
	m.ProbeSets = r.Int()
	m.Generation = r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: manifest: %w", err)
	}
	return m, nil
}

// Validate checks that m's identity matches want's; a mismatch wraps
// ErrMismatch with the first differing field. Progress fields are
// bounds-checked against the identity but not compared.
func (m *Manifest) Validate(want *Manifest) error {
	switch {
	case m.Meta != want.Meta:
		return fmt.Errorf("%w: dataset meta %+v, run has %+v", ErrMismatch, m.Meta, want.Meta)
	case m.File != want.File:
		return fmt.Errorf("%w: dataset file %q, run has %q", ErrMismatch, m.File, want.File)
	case m.PlanNetworks != want.PlanNetworks:
		return fmt.Errorf("%w: plan has %d networks, run has %d", ErrMismatch, m.PlanNetworks, want.PlanNetworks)
	case m.Shard != want.Shard || m.Shards != want.Shards:
		return fmt.Errorf("%w: shard %d/%d, run has %d/%d", ErrMismatch, m.Shard, m.Shards, want.Shard, want.Shards)
	case m.First != want.First || m.Count != want.Count:
		return fmt.Errorf("%w: network range [%d,+%d), run has [%d,+%d)", ErrMismatch, m.First, m.Count, want.First, want.Count)
	case m.FlatSamples != want.FlatSamples:
		return fmt.Errorf("%w: flat-samples %v, run has %v", ErrMismatch, m.FlatSamples, want.FlatSamples)
	}
	if m.NetworksDone < 0 || m.NetworksDone > m.Count {
		return fmt.Errorf("checkpoint: manifest claims %d networks done of %d", m.NetworksDone, m.Count)
	}
	return nil
}

// Encode serializes a full checkpoint file image (magic, version, both
// CRC-guarded sections). Exposed for tests and fuzz corpus seeding; the
// write path is Save.
func Encode(m *Manifest, state []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte(version)
	writeSection(&buf, tagManifest, encodeManifest(m))
	writeSection(&buf, tagState, state)
	return buf.Bytes()
}

func writeSection(buf *bytes.Buffer, tag byte, payload []byte) {
	buf.WriteByte(tag)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	buf.Write(crc[:])
}

func readSection(data []byte, wantTag byte) (payload, rest []byte, err error) {
	if len(data) < 1+8 {
		return nil, nil, fmt.Errorf("checkpoint: truncated section header")
	}
	if data[0] != wantTag {
		return nil, nil, fmt.Errorf("checkpoint: section tag %d, want %d", data[0], wantTag)
	}
	n := binary.LittleEndian.Uint64(data[1 : 1+8])
	rest = data[1+8:]
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("checkpoint: section claims %d bytes, %d remain", n, len(rest))
	}
	payload, rest = rest[:n], rest[n:]
	if len(rest) < 4 {
		return nil, nil, fmt.Errorf("checkpoint: truncated section checksum")
	}
	want := binary.LittleEndian.Uint32(rest[:4])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, nil, fmt.Errorf("checkpoint: section %d checksum %08x, file says %08x", wantTag, got, want)
	}
	return payload, rest[4:], nil
}

// Decode parses a checkpoint file image, verifying magic, version, and
// both section CRCs. It never panics on hostile input and never returns
// partial state alongside an error.
func Decode(data []byte) (*Manifest, []byte, error) {
	if len(data) < len(magic)+1 {
		return nil, nil, fmt.Errorf("checkpoint: file too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, nil, fmt.Errorf("checkpoint: bad magic %q", data[:len(magic)])
	}
	if v := data[len(magic)]; v != version {
		return nil, nil, fmt.Errorf("checkpoint: file version %d, want %d", v, version)
	}
	rest := data[len(magic)+1:]
	manifestBytes, rest, err := readSection(rest, tagManifest)
	if err != nil {
		return nil, nil, err
	}
	state, rest, err := readSection(rest, tagState)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("checkpoint: %d trailing bytes", len(rest))
	}
	m, err := decodeManifest(manifestBytes)
	if err != nil {
		return nil, nil, err
	}
	return m, state, nil
}

// fileName names shard s's generation g checkpoint; zero-padding makes
// generations sort lexically (up to very large runs).
func fileName(shard int, gen uint64) string {
	return fmt.Sprintf("shard%03d.g%06d.ckpt", shard, gen)
}

// parseGen extracts the generation from a checkpoint file name for the
// given shard, or (0, false) when the name is not one of ours.
func parseGen(name string, shard int) (uint64, bool) {
	prefix := fmt.Sprintf("shard%03d.g", shard)
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".ckpt")
	if digits == "" {
		return 0, false
	}
	var gen uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		gen = gen*10 + uint64(c-'0')
	}
	return gen, true
}

// generations lists shard's checkpoint generations in dir, ascending.
func generations(dir string, shard int) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := parseGen(e.Name(), shard); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Save durably writes the next checkpoint generation for m.Shard in dir:
// it stamps m.Generation, streams the state payload through the CRC
// framing into a temp file, fsyncs, renames into place, then prunes
// generations older than the previous one (keep-last-2). hook, when
// non-nil, is invoked at the atomicio phases plus "mid-snapshot"
// (between the two sections) — the crash-injection seam. The state
// callback runs exactly once.
func Save(dir string, shard int, m *Manifest, state func(w io.Writer) error, hook atomicio.Hook) (uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	gens, err := generations(dir, shard)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	gen := uint64(1)
	if len(gens) > 0 {
		gen = gens[len(gens)-1] + 1
	}
	m.Generation = gen

	path := filepath.Join(dir, fileName(shard, gen))
	err = atomicio.WriteFileHook(path, 0o644, hook, func(f *os.File) error {
		var buf bytes.Buffer
		buf.WriteString(magic)
		buf.WriteByte(version)
		writeSection(&buf, tagManifest, encodeManifest(m))
		if _, err := f.Write(buf.Bytes()); err != nil {
			return err
		}
		if hook != nil {
			if err := hook("mid-snapshot", f.Name()); err != nil {
				return err
			}
		}
		var stateBuf bytes.Buffer
		if err := state(&stateBuf); err != nil {
			return err
		}
		var sec bytes.Buffer
		writeSection(&sec, tagState, stateBuf.Bytes())
		_, err := f.Write(sec.Bytes())
		return err
	})
	if err != nil {
		return 0, err
	}

	// Keep the newest two generations; prune the rest best-effort (a
	// failed unlink must not fail the run — the loader ignores extras).
	for _, old := range gens {
		if old+1 < gen {
			os.Remove(filepath.Join(dir, fileName(shard, old)))
		}
	}
	return gen, nil
}

// Load returns the newest CRC-valid checkpoint for shard in dir, falling
// back generation by generation when the newest is torn or corrupt. Each
// skipped generation contributes a note for the run manifest. A missing
// directory or no checkpoints returns (nil, notes, nil) — a fresh start.
// The error return is reserved for environmental failures (unreadable
// directory), not corrupt files.
func Load(dir string, shard int) (*Loaded, []string, error) {
	gens, err := generations(dir, shard)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	var notes []string
	for i := len(gens) - 1; i >= 0; i-- {
		path := filepath.Join(dir, fileName(shard, gens[i]))
		data, err := os.ReadFile(path)
		if err != nil {
			notes = append(notes, fmt.Sprintf("shard %d: checkpoint g%d unreadable (%v), falling back", shard, gens[i], err))
			continue
		}
		m, state, err := Decode(data)
		if err != nil {
			notes = append(notes, fmt.Sprintf("shard %d: checkpoint g%d corrupt (%v), falling back", shard, gens[i], err))
			continue
		}
		return &Loaded{Manifest: *m, State: state, Path: path}, notes, nil
	}
	return nil, notes, nil
}
