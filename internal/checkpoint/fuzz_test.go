package checkpoint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"meshlab/internal/dataset"
)

// fuzzSeeds builds real checkpoint images (plus adversarial variants) so
// the fuzzer starts from structurally valid format bytes.
func fuzzSeeds() [][]byte {
	full := testFuzzManifest()
	empty := &Manifest{}
	seeds := [][]byte{
		Encode(full, []byte("accumulator state")),
		Encode(empty, nil),
		Encode(full, make([]byte, 256)),
	}
	// A truncated and a bit-flipped variant of the first seed.
	base := seeds[0]
	seeds = append(seeds, base[:len(base)/2])
	flipped := append([]byte(nil), base...)
	flipped[len(flipped)/3] ^= 0x80
	seeds = append(seeds, flipped)
	return seeds
}

func testFuzzManifest() *Manifest {
	return &Manifest{
		Meta:           dataset.Meta{Seed: 7, ProbeDuration: 90, ProbeInterval: 1, ClientDuration: 300},
		File:           "fleet.bin",
		PlanNetworks:   12,
		Shard:          2,
		Shards:         4,
		First:          6,
		Count:          3,
		FlatSamples:    true,
		NetworksDone:   1,
		SamplePhase:    true,
		SampleNetsDone: []string{"net-06"},
		BG:             1, N: 0, ProbeSets: 4,
	}
}

// FuzzCheckpoint: Decode must never panic, never allocate absurdly on a
// lying length, and never return partial state alongside an error. A
// successful decode must re-encode to an image that decodes to the same
// manifest (framing is canonical).
func FuzzCheckpoint(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, state, err := Decode(data)
		if err != nil {
			if m != nil || state != nil {
				t.Fatalf("partial state alongside error %v", err)
			}
			return
		}
		if m == nil {
			t.Fatal("nil manifest without error")
		}
		re := Encode(m, state)
		m2, state2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded image fails to decode: %v", err)
		}
		if m2.Meta != m.Meta || m2.File != m.File || m2.NetworksDone != m.NetworksDone ||
			m2.Generation != m.Generation || len(state2) != len(state) {
			t.Fatalf("re-encode round trip drifted:\n %+v\nvs %+v", m, m2)
		}
	})
}

var updateCorpus = flag.Bool("update-corpus", false, "rewrite the seed corpus under testdata/fuzz")

// TestWriteFuzzCorpus materializes fuzzSeeds as checked-in corpus files
// in Go's corpus encoding, so `go test -fuzz` starts from real format
// bytes even before any local fuzzing has run.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*updateCorpus {
		t.Skip("pass -update-corpus to rewrite testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpoint")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSeedCorpusInSync guards the checked-in corpus against silent
// drift: every seed the fuzz target starts from must exist on disk (the
// CI fuzz smoke runs from these files).
func TestSeedCorpusInSync(t *testing.T) {
	for i, seed := range fuzzSeeds() {
		path := filepath.Join("testdata", "fuzz", "FuzzCheckpoint", fmt.Sprintf("seed-%02d", i))
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("corpus file missing (regenerate with -update-corpus): %v", err)
		}
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if string(got) != want {
			t.Fatalf("%s out of sync with fuzzSeeds (regenerate with -update-corpus)", path)
		}
	}
}
