package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meshlab/internal/dataset"
)

func testManifest() *Manifest {
	return &Manifest{
		Meta:           dataset.Meta{Seed: 42, ProbeDuration: 90, ProbeInterval: 1, ClientDuration: 300},
		File:           "fleet.bin",
		PlanNetworks:   10,
		Shard:          1,
		Shards:         3,
		First:          3,
		Count:          4,
		FlatSamples:    true,
		NetworksDone:   2,
		SamplePhase:    false,
		SampleNetsDone: []string{"net-03", "net-04"},
		BG:             1,
		N:              1,
		ProbeSets:      7,
	}
}

func saveState(state []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(state)
		return err
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := testManifest()
	state := []byte("accumulator state bytes")
	gen, err := Save(dir, m.Shard, m, saveState(state), nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first generation = %d, want 1", gen)
	}
	loaded, notes, err := Load(dir, m.Shard)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected notes: %v", notes)
	}
	if loaded == nil {
		t.Fatal("no checkpoint loaded")
	}
	if !bytes.Equal(loaded.State, state) {
		t.Fatalf("state = %q", loaded.State)
	}
	want := *m
	want.Generation = 1
	got := loaded.Manifest
	if got.Meta != want.Meta || got.File != want.File || got.Generation != 1 ||
		got.NetworksDone != want.NetworksDone || len(got.SampleNetsDone) != 2 ||
		got.SampleNetsDone[0] != "net-03" || got.ProbeSets != want.ProbeSets {
		t.Fatalf("manifest round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadMissingDirIsFreshStart(t *testing.T) {
	loaded, notes, err := Load(filepath.Join(t.TempDir(), "nope"), 0)
	if err != nil || loaded != nil || len(notes) != 0 {
		t.Fatalf("missing dir: loaded=%v notes=%v err=%v, want all empty", loaded, notes, err)
	}
}

// TestGenerationPolicy: Save keeps exactly the last two generations, and
// Load picks the newest.
func TestGenerationPolicy(t *testing.T) {
	dir := t.TempDir()
	m := testManifest()
	for i := 1; i <= 5; i++ {
		m.NetworksDone = i
		gen, err := Save(dir, m.Shard, m, saveState([]byte{byte(i)}), nil)
		if err != nil {
			t.Fatal(err)
		}
		if gen != uint64(i) {
			t.Fatalf("generation = %d, want %d", gen, i)
		}
	}
	gens, err := generations(dir, m.Shard)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("kept generations %v, want [4 5]", gens)
	}
	loaded, _, err := Load(dir, m.Shard)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Manifest.NetworksDone != 5 || loaded.State[0] != 5 {
		t.Fatalf("loaded generation %d (done=%d), want newest", loaded.Manifest.Generation, loaded.Manifest.NetworksDone)
	}
}

// TestCorruptNewestFallsBack: a torn or bit-flipped newest generation is
// skipped with a note and the previous generation is used.
func TestCorruptNewestFallsBack(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"bit-flip", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[len(out)-7] ^= 0x01
			return out
		}},
		{"torn-tail", func(d []byte) []byte { return d[:len(d)-3] }},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			m := testManifest()
			m.NetworksDone = 1
			if _, err := Save(dir, m.Shard, m, saveState([]byte("good")), nil); err != nil {
				t.Fatal(err)
			}
			m.NetworksDone = 2
			if _, err := Save(dir, m.Shard, m, saveState([]byte("newer")), nil); err != nil {
				t.Fatal(err)
			}
			newest := filepath.Join(dir, fileName(m.Shard, 2))
			data, err := os.ReadFile(newest)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(newest, tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			loaded, notes, err := Load(dir, m.Shard)
			if err != nil {
				t.Fatal(err)
			}
			if loaded == nil || loaded.Manifest.Generation != 1 || string(loaded.State) != "good" {
				t.Fatalf("loaded %+v, want generation 1 fallback", loaded)
			}
			if len(notes) != 1 || !strings.Contains(notes[0], "g2") {
				t.Fatalf("notes = %v, want one g2 corruption note", notes)
			}
		})
	}
}

func TestAllGenerationsCorruptIsFreshStartWithNotes(t *testing.T) {
	dir := t.TempDir()
	m := testManifest()
	if _, err := Save(dir, m.Shard, m, saveState([]byte("x")), nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileName(m.Shard, 1))
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, notes, err := Load(dir, m.Shard)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != nil {
		t.Fatalf("loaded %+v from garbage", loaded)
	}
	if len(notes) != 1 {
		t.Fatalf("notes = %v, want one", notes)
	}
}

// TestShardsAreIndependent: shard N's checkpoints never shadow shard M's.
func TestShardsAreIndependent(t *testing.T) {
	dir := t.TempDir()
	for shard := 0; shard < 3; shard++ {
		m := testManifest()
		m.Shard = shard
		m.NetworksDone = shard + 1
		if _, err := Save(dir, shard, m, saveState([]byte{byte(shard)}), nil); err != nil {
			t.Fatal(err)
		}
	}
	for shard := 0; shard < 3; shard++ {
		loaded, _, err := Load(dir, shard)
		if err != nil {
			t.Fatal(err)
		}
		if loaded == nil || loaded.Manifest.Shard != shard || loaded.State[0] != byte(shard) {
			t.Fatalf("shard %d loaded %+v", shard, loaded)
		}
	}
}

func TestValidate(t *testing.T) {
	base := testManifest()
	cases := []struct {
		name   string
		mutate func(m *Manifest)
	}{
		{"seed", func(m *Manifest) { m.Meta.Seed++ }},
		{"probe-duration", func(m *Manifest) { m.Meta.ProbeDuration++ }},
		{"file", func(m *Manifest) { m.File = "other.bin" }},
		{"plan-networks", func(m *Manifest) { m.PlanNetworks++ }},
		{"shard", func(m *Manifest) { m.Shard++ }},
		{"shards", func(m *Manifest) { m.Shards++ }},
		{"first", func(m *Manifest) { m.First++ }},
		{"count", func(m *Manifest) { m.Count++ }},
		{"flat-samples", func(m *Manifest) { m.FlatSamples = !m.FlatSamples }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := *base
			tc.mutate(&got)
			if err := got.Validate(base); !errors.Is(err, ErrMismatch) {
				t.Fatalf("err = %v, want ErrMismatch", err)
			}
		})
	}
	same := *base
	same.NetworksDone = 999 // progress differs but is out of bounds
	if err := same.Validate(base); err == nil || errors.Is(err, ErrMismatch) {
		t.Fatalf("out-of-bounds progress: err = %v, want a non-mismatch error", err)
	}
	same.NetworksDone = base.Count
	if err := same.Validate(base); err != nil {
		t.Fatalf("identical identity rejected: %v", err)
	}
}

// TestDecodeRejectsHostileInputs: every framing violation errors
// contextually; none panic or return partial state.
func TestDecodeRejectsHostileInputs(t *testing.T) {
	valid := Encode(testManifest(), []byte("state"))
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte("ML")},
		{"bad-magic", append([]byte("XXXX"), valid[4:]...)},
		{"bad-version", func() []byte {
			d := append([]byte(nil), valid...)
			d[4] = 99
			return d
		}()},
		{"trailing-garbage", append(append([]byte(nil), valid...), 0xAA)},
		{"huge-section-length", func() []byte {
			d := append([]byte(nil), valid...)
			d[6] = 0xFF // manifest section length LSBs
			d[7] = 0xFF
			return d
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, state, err := Decode(tc.data)
			if err == nil {
				t.Fatal("decoded without error")
			}
			if m != nil || state != nil {
				t.Fatal("partial state returned alongside error")
			}
		})
	}
	// Every truncation must fail.
	for cut := 0; cut < len(valid); cut++ {
		if _, _, err := Decode(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(valid))
		}
	}
	// Every single-bit flip in either payload or CRC must fail.
	for i := 5; i < len(valid); i++ {
		d := append([]byte(nil), valid...)
		d[i] ^= 0x40
		if _, _, err := Decode(d); err == nil {
			t.Fatalf("bit flip at byte %d decoded without error", i)
		}
	}
}

func TestSaveHookAbortLeavesPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	m := testManifest()
	if _, err := Save(dir, m.Shard, m, saveState([]byte("g1")), nil); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("killed")
	_, err := Save(dir, m.Shard, m, saveState([]byte("g2")), func(phase, _ string) error {
		if phase == "mid-snapshot" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want killed", err)
	}
	loaded, notes, err := Load(dir, m.Shard)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || loaded.Manifest.Generation != 1 || string(loaded.State) != "g1" {
		t.Fatalf("loaded %+v, want generation 1 intact", loaded)
	}
	if len(notes) != 0 {
		t.Fatalf("aborted save left a visible corrupt generation: %v", notes)
	}
}
