// Package textplot renders simple ASCII plots — CDFs, line series, and
// histograms — for the command-line tools. It exists so that the figures
// the experiments regenerate can be eyeballed in a terminal next to the
// thesis's plots.
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"meshlab/internal/stats"
)

// Plot is a fixed-size character canvas with axes.
type Plot struct {
	width, height  int
	xmin, xmax     float64
	ymin, ymax     float64
	grid           [][]rune
	xlabel, ylabel string
}

// New creates a canvas of the given interior size (columns × rows) and
// data ranges. Width and height are clamped to at least 8×4; inverted or
// degenerate ranges are repaired.
func New(width, height int, xmin, xmax, ymin, ymax float64) *Plot {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	if xmax <= xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	p := &Plot{width: width, height: height, xmin: xmin, xmax: xmax, ymin: ymin, ymax: ymax}
	p.grid = make([][]rune, height)
	for i := range p.grid {
		p.grid[i] = make([]rune, width)
		for j := range p.grid[i] {
			p.grid[i][j] = ' '
		}
	}
	return p
}

// Labels sets the axis labels.
func (p *Plot) Labels(x, y string) *Plot {
	p.xlabel, p.ylabel = x, y
	return p
}

// cellFor maps a data point to canvas coordinates; ok is false when the
// point is outside the ranges.
func (p *Plot) cellFor(x, y float64) (col, row int, ok bool) {
	if math.IsNaN(x) || math.IsNaN(y) || x < p.xmin || x > p.xmax || y < p.ymin || y > p.ymax {
		return 0, 0, false
	}
	col = int((x - p.xmin) / (p.xmax - p.xmin) * float64(p.width-1))
	row = p.height - 1 - int((y-p.ymin)/(p.ymax-p.ymin)*float64(p.height-1))
	return col, row, true
}

// Mark plots a single point with the given glyph.
func (p *Plot) Mark(x, y float64, glyph rune) {
	if col, row, ok := p.cellFor(x, y); ok {
		p.grid[row][col] = glyph
	}
}

// Series plots a sequence of points with the given glyph.
func (p *Plot) Series(pts []stats.Point, glyph rune) *Plot {
	for _, pt := range pts {
		p.Mark(pt.X, pt.Y, glyph)
	}
	return p
}

// Render draws the canvas with a left axis, bottom axis, and range labels.
func (p *Plot) Render() string {
	var b strings.Builder
	if p.ylabel != "" {
		fmt.Fprintf(&b, "%s\n", p.ylabel)
	}
	for i, row := range p.grid {
		switch i {
		case 0:
			fmt.Fprintf(&b, "%8.3g |", p.ymax)
		case p.height - 1:
			fmt.Fprintf(&b, "%8.3g |", p.ymin)
		default:
			b.WriteString("         |")
		}
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	b.WriteString("         +" + strings.Repeat("-", p.width) + "\n")
	fmt.Fprintf(&b, "%10.3g%*s\n", p.xmin, p.width, fmt.Sprintf("%.3g", p.xmax))
	if p.xlabel != "" {
		fmt.Fprintf(&b, "%*s\n", 10+p.width/2+len(p.xlabel)/2, p.xlabel)
	}
	return b.String()
}

// CDF renders an empirical CDF of xs with the given canvas size.
func CDF(xs []float64, width, height int, xlabel string) string {
	if len(xs) == 0 {
		return "(no data)\n"
	}
	cdf := stats.NewCDF(xs)
	vals := cdf.Values()
	lo, hi := vals[0], vals[len(vals)-1]
	p := New(width, height, lo, hi, 0, 1).Labels(xlabel, "CDF")
	p.Series(cdf.Points(width*2), '*')
	return p.Render()
}

// Histogram renders integer-bucketed counts as a horizontal bar chart.
func Histogram(pts []stats.Point, width int, label string) string {
	if len(pts) == 0 {
		return "(no data)\n"
	}
	if width < 10 {
		width = 10
	}
	maxY := 0.0
	for _, pt := range pts {
		if pt.Y > maxY {
			maxY = pt.Y
		}
	}
	var b strings.Builder
	if label != "" {
		fmt.Fprintf(&b, "%s\n", label)
	}
	for _, pt := range pts {
		bar := 0
		if maxY > 0 {
			bar = int(pt.Y / maxY * float64(width))
		}
		fmt.Fprintf(&b, "%8.4g | %-*s %g\n", pt.X, width, strings.Repeat("#", bar), pt.Y)
	}
	return b.String()
}

// Lines renders several named series on one canvas, assigning each a
// distinct glyph from "*+ox#@" in order.
func Lines(series map[string][]stats.Point, width, height int, xlabel, ylabel string) string {
	if len(series) == 0 {
		return "(no data)\n"
	}
	glyphs := []rune("*+ox#@%&")
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	names := make([]string, 0, len(series))
	for name, pts := range series {
		names = append(names, name)
		for _, pt := range pts {
			xmin = math.Min(xmin, pt.X)
			xmax = math.Max(xmax, pt.X)
			ymin = math.Min(ymin, pt.Y)
			ymax = math.Max(ymax, pt.Y)
		}
	}
	sort.Strings(names)
	p := New(width, height, xmin, xmax, ymin, ymax).Labels(xlabel, ylabel)
	var legend strings.Builder
	for i, name := range names {
		g := glyphs[i%len(glyphs)]
		p.Series(series[name], g)
		fmt.Fprintf(&legend, "  %c %s", g, name)
	}
	return p.Render() + "legend:" + legend.String() + "\n"
}
