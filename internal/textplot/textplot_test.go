package textplot

import (
	"strings"
	"testing"

	"meshlab/internal/stats"
)

func TestNewClampsDegenerateInputs(t *testing.T) {
	p := New(1, 1, 5, 5, 3, 3)
	out := p.Render()
	if out == "" {
		t.Fatal("empty render")
	}
	// Width clamped to 8, height to 4.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 6 {
		t.Fatalf("render too small: %d lines", len(lines))
	}
}

func TestMarkInsideAndOutside(t *testing.T) {
	p := New(20, 10, 0, 10, 0, 1)
	p.Mark(5, 0.5, '*')
	if !strings.ContainsRune(p.Render(), '*') {
		t.Fatal("in-range mark not drawn")
	}
	q := New(20, 10, 0, 10, 0, 1)
	q.Mark(50, 0.5, '*')
	q.Mark(5, 5, '*')
	if strings.ContainsRune(q.Render(), '*') {
		t.Fatal("out-of-range marks should be dropped")
	}
}

func TestCornersMap(t *testing.T) {
	p := New(20, 10, 0, 10, 0, 1)
	col, row, ok := p.cellFor(0, 0)
	if !ok || col != 0 || row != 9 {
		t.Fatalf("lower-left maps to (%d,%d)", col, row)
	}
	col, row, ok = p.cellFor(10, 1)
	if !ok || col != 19 || row != 0 {
		t.Fatalf("upper-right maps to (%d,%d)", col, row)
	}
}

func TestRenderAxes(t *testing.T) {
	out := New(20, 8, 0, 100, 0, 1).Labels("x-things", "y-things").Render()
	for _, want := range []string{"y-things", "x-things", "100", "|", "+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCDFPlot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	out := CDF(xs, 30, 10, "value")
	if !strings.Contains(out, "*") {
		t.Fatal("CDF has no points")
	}
	if !strings.Contains(out, "CDF") {
		t.Fatal("missing y label")
	}
	if CDF(nil, 30, 10, "x") != "(no data)\n" {
		t.Fatal("empty CDF should say so")
	}
}

func TestHistogramPlot(t *testing.T) {
	pts := []stats.Point{{X: 1, Y: 10}, {X: 2, Y: 5}, {X: 3, Y: 0}}
	out := Histogram(pts, 20, "visits")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // label + 3 rows
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Fatal("max bucket should fill the width")
	}
	if strings.Contains(lines[3], "#") {
		t.Fatal("zero bucket should have no bar")
	}
	if Histogram(nil, 20, "x") != "(no data)\n" {
		t.Fatal("empty histogram should say so")
	}
}

func TestLinesLegendAndGlyphs(t *testing.T) {
	series := map[string][]stats.Point{
		"alpha": {{X: 0, Y: 0}, {X: 1, Y: 1}},
		"beta":  {{X: 0, Y: 1}, {X: 1, Y: 0}},
	}
	out := Lines(series, 30, 10, "x", "y")
	if !strings.Contains(out, "legend:") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatal("legend missing series names")
	}
	// Glyph assignment is sorted by name: alpha gets '*', beta '+'.
	if !strings.Contains(out, "* alpha") || !strings.Contains(out, "+ beta") {
		t.Fatalf("glyph assignment wrong:\n%s", out)
	}
	if Lines(nil, 30, 10, "x", "y") != "(no data)\n" {
		t.Fatal("empty series should say so")
	}
}

func TestSeriesChaining(t *testing.T) {
	p := New(10, 5, 0, 1, 0, 1)
	if p.Series(nil, '*') != p {
		t.Fatal("Series should return the receiver for chaining")
	}
}
