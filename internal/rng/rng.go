// Package rng provides deterministic, splittable random number streams.
//
// Every stochastic component of meshlab (topology synthesis, channel
// processes, client mobility) draws from an rng.Stream derived from a single
// root seed, so a whole fleet of networks — and therefore every experiment —
// is exactly reproducible from one uint64. Streams are split by string
// labels: two streams split from the same parent with different labels are
// statistically independent, and the same label always yields the same
// stream. This keeps independent subsystems independent: adding a draw to
// the topology generator cannot perturb the channel process.
package rng

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random stream. The zero value is a valid
// stream seeded with zero. Stream implements a SplitMix64-seeded
// xoshiro256** generator; it is not safe for concurrent use — split a child
// stream per goroutine instead.
type Stream struct {
	s [4]uint64
	// id is immutable seed-derived identity used by Split/SplitN so that
	// splitting does not depend on how much the parent has been consumed.
	id uint64
	// spare holds a cached second normal deviate from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// splitmix64 advances x and returns the next SplitMix64 output. It is used
// only to expand seeds into full generator state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from seed.
func New(seed uint64) *Stream {
	st := &Stream{}
	x := seed
	st.id = splitmix64(&x)
	for i := range st.s {
		st.s[i] = splitmix64(&x)
	}
	// xoshiro must not start in the all-zero state; seed 0 through
	// splitmix64 never produces it, but guard anyway.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 1
	}
	return st
}

// Split derives an independent child stream identified by label. Splitting
// does not advance the parent, so the set of children is stable no matter
// how much the parent itself is used after the split.
func (r *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return New(r.id ^ 0x9e3779b97f4a7c15 ^ h.Sum64())
}

// SplitN derives an independent child stream identified by label and an
// index, for per-element substreams (one per AP, per link, per client).
func (r *Stream) SplitN(label string, n int) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	var buf [8]byte
	v := uint64(n)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return New(r.id ^ 0x9e3779b97f4a7c15 ^ h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		// Lazily seed the zero value: all-zero is the one state
		// xoshiro cannot leave.
		*r = *New(0)
	}
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// simple rejection keeps the stream reproducible and unbiased.
	max := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// NormFloat64 returns a standard normal deviate via the Box-Muller
// transform (polar form), caching the second deviate.
func (r *Stream) NormFloat64() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.spareOK = true
		return u * f
	}
}

// ExpFloat64 returns an exponentially distributed deviate with mean 1.
func (r *Stream) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool { return r.Float64() < p }

// Range returns a uniform float64 in [lo, hi).
func (r *Stream) Range(lo, hi float64) float64 { return lo + (hi-lo)*r.Float64() }

// Perm returns a random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choice returns a uniform index into weights proportionally to the weight
// values, which must be non-negative and not all zero.
func (r *Stream) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: all weights zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
