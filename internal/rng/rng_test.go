package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestSplitStability(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("channel")
	// Burn draws on the parent; the split must not depend on parent use.
	for i := 0; i < 57; i++ {
		parent.Float64()
	}
	c2 := parent.Split("channel")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not stable under parent stream consumption")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split("a")
	b := parent.Split("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams split with different labels collided %d times", same)
	}
}

func TestSplitNDistinct(t *testing.T) {
	parent := New(3)
	seen := map[uint64]int{}
	for n := 0; n < 200; n++ {
		v := parent.SplitN("link", n).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("SplitN(%d) first draw equals SplitN(%d)", n, prev)
		}
		seen[v] = n
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	r := New(17)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(23)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-n/10) > 600 {
			t.Fatalf("digit %d count %d deviates too much from %d", d, c, n/10)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(29)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(31)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(41)
	counts := [3]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choice([]float64{1, 2, 7})]++
	}
	if f := float64(counts[2]) / n; math.Abs(f-0.7) > 0.01 {
		t.Fatalf("weight-7 arm frequency %v, want ~0.7", f)
	}
	if f := float64(counts[0]) / n; math.Abs(f-0.1) > 0.01 {
		t.Fatalf("weight-1 arm frequency %v, want ~0.1", f)
	}
}

func TestChoicePanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"negative": {1, -1},
		"allzero":  {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Choice(%s) did not panic", name)
				}
			}()
			New(1).Choice(w)
		}()
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(43)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency %v", f)
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(47)
	for i := 0; i < 10000; i++ {
		v := r.Range(-3, 9)
		if v < -3 || v >= 9 {
			t.Fatalf("Range(-3,9) returned %v", v)
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Stream
	// Must not panic and must produce values.
	_ = r.Uint64()
	_ = r.Float64()
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
