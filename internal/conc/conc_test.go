package conc

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestBudgetDefaultsToGOMAXPROCS(t *testing.T) {
	defer SetBudget(0)
	SetBudget(0)
	if got := Budget(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Budget = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetBudget(3)
	if got := Budget(); got != 3 {
		t.Fatalf("Budget = %d after SetBudget(3)", got)
	}
	SetBudget(-5)
	if got := Budget(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative SetBudget should reset to default, got %d", got)
	}
}

func TestWorkersOverride(t *testing.T) {
	defer SetBudget(0)
	SetBudget(2)
	if got := Workers(0); got != 2 {
		t.Fatalf("Workers(0) = %d, want budget 2", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want the explicit override", got)
	}
}

// TestForEachNCoversAllIndices: every index runs exactly once at any pool
// size, and the serial and parallel schedules produce the same set.
func TestForEachNCoversAllIndices(t *testing.T) {
	const n = 137
	for _, workers := range []int{1, 2, 8} {
		hits := make([]atomic.Int32, n)
		if err := ForEachN(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

// TestForEachNLowestIndexError: the reported failure is the lowest failed
// index regardless of scheduling, so error surfaces are deterministic.
func TestForEachNLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEachN(50, workers, func(i int) error {
			if i == 7 || i == 23 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail 7" {
			t.Fatalf("workers=%d: err = %v, want fail 7", workers, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, func(int) error { panic("must not run") }); err != nil {
		t.Fatal(err)
	}
}
