// pool.go divides one worker budget among concurrent tasks of two
// weights: light tasks (a serving query that needs one worker) and
// heavy tasks (a streaming warm that wants a share of the budget).
// meshd uses it so many concurrent queries and cold-dataset warms
// together never exceed the process budget, and so heavy work can
// never hold the reserved floor that keeps light queries moving.

package conc

import (
	"context"
	"fmt"
	"sync"
)

// Pool is a weighted worker-slot semaphore over a fixed capacity.
// Light holders take one slot each; Heavy holders take a granted share,
// and all Heavy holders combined are capped below the capacity by a
// reserved floor only Light acquisitions may use — so a drained pool
// always frees query slots as fast as queries finish, regardless of how
// much streaming work is queued behind it. The zero value is not
// usable; construct with NewPool.
type Pool struct {
	capacity int
	reserved int

	mu    sync.Mutex
	cond  *sync.Cond
	light int
	heavy int
	high  int
}

// NewPool returns a pool of capacity worker slots (≤ 0: the process
// Budget) of which reserved (clamped to [1, capacity-1], with a
// capacity-1 ceiling; ≤ 0 picks a quarter of the capacity) are held
// back from heavy tasks. A capacity of 1 leaves heavy tasks a single
// shared slot and no reservation — light and heavy then simply
// alternate.
func NewPool(capacity, reserved int) *Pool {
	if capacity <= 0 {
		capacity = Budget()
	}
	if reserved <= 0 {
		reserved = capacity / 4
	}
	if reserved < 1 {
		reserved = 1
	}
	if reserved > capacity-1 {
		reserved = capacity - 1
	}
	if reserved < 0 {
		reserved = 0
	}
	p := &Pool{capacity: capacity, reserved: reserved}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Capacity returns the pool's total slot count.
func (p *Pool) Capacity() int { return p.capacity }

// heavyCap is the most slots heavy holders may occupy together.
func (p *Pool) heavyCap() int {
	if c := p.capacity - p.reserved; c > 0 {
		return c
	}
	return 1
}

// wake arranges for a context cancellation to re-check every blocked
// acquire; the returned stop must be called when the wait ends.
func (p *Pool) wake(ctx context.Context) func() bool {
	return context.AfterFunc(ctx, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.cond.Broadcast()
	})
}

// Light blocks until one slot is free (any slot, including the reserved
// floor) and takes it, or returns ctx's error. Pair with ReleaseLight.
func (p *Pool) Light(ctx context.Context) error {
	defer p.wake(ctx)()
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.light+p.heavy >= p.capacity {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		p.cond.Wait()
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	p.light++
	p.note()
	return nil
}

// ReleaseLight returns a Light slot.
func (p *Pool) ReleaseLight() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.light <= 0 {
		panic("conc: ReleaseLight without a held light slot")
	}
	p.light--
	p.cond.Broadcast()
}

// Heavy blocks until at least one unreserved slot is free, then grants
// min(want, free unreserved slots) ≥ 1 of them, so an idle pool gives
// one warm its full share while competing warms split what is left.
// want ≤ 0 asks for the whole heavy share. Returns the granted count
// (pass it to ReleaseHeavy) or ctx's error.
func (p *Pool) Heavy(ctx context.Context, want int) (int, error) {
	defer p.wake(ctx)()
	if want <= 0 || want > p.heavyCap() {
		want = p.heavyCap()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.heavy >= p.heavyCap() || p.light+p.heavy >= p.capacity {
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		p.cond.Wait()
	}
	if ctx.Err() != nil {
		return 0, ctx.Err()
	}
	grant := want
	if free := p.heavyCap() - p.heavy; grant > free {
		grant = free
	}
	if free := p.capacity - p.light - p.heavy; grant > free {
		grant = free
	}
	p.heavy += grant
	p.note()
	return grant, nil
}

// ReleaseHeavy returns n Heavy slots.
func (p *Pool) ReleaseHeavy(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.heavy {
		panic(fmt.Sprintf("conc: ReleaseHeavy(%d) exceeds %d held", n, p.heavy))
	}
	p.heavy -= n
	p.cond.Broadcast()
}

// note records the in-flight high-water mark; callers hold p.mu.
func (p *Pool) note() {
	if t := p.light + p.heavy; t > p.high {
		p.high = t
	}
}

// InFlight returns the currently held slot count.
func (p *Pool) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.light + p.heavy
}

// High returns the largest number of slots ever held at once — the
// budget-enforcement witness the meshd tests assert never exceeds
// Capacity.
func (p *Pool) High() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.high
}
