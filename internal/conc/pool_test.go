package conc

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolCapacityDefaultsAndClamps(t *testing.T) {
	p := NewPool(8, 0)
	if p.Capacity() != 8 || p.reserved != 2 {
		t.Fatalf("NewPool(8,0): capacity %d reserved %d, want 8/2", p.Capacity(), p.reserved)
	}
	if p = NewPool(8, 100); p.reserved != 7 {
		t.Fatalf("reserved should clamp to capacity-1, got %d", p.reserved)
	}
	if p = NewPool(1, 0); p.Capacity() != 1 || p.heavyCap() != 1 {
		t.Fatalf("capacity-1 pool: capacity %d heavyCap %d, want 1/1", p.Capacity(), p.heavyCap())
	}
	defer SetBudget(0)
	SetBudget(3)
	if p = NewPool(0, 0); p.Capacity() != 3 {
		t.Fatalf("NewPool(0,·) should use the process budget, got %d", p.Capacity())
	}
}

// TestPoolHeavyLeavesReservedFloor: heavy holders can never occupy the
// reserved slots, so a light acquire succeeds immediately even when all
// heavy capacity is held.
func TestPoolHeavyLeavesReservedFloor(t *testing.T) {
	p := NewPool(4, 1)
	g, err := p.Heavy(context.Background(), 0)
	if err != nil || g != 3 {
		t.Fatalf("idle Heavy grant = %d, %v; want the full 3-slot share", g, err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Light(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("light acquire blocked behind heavy holders despite the reserved floor")
	}
	p.ReleaseLight()
	p.ReleaseHeavy(g)
}

// TestPoolHeavySplitsShare: a second warm gets at least one slot only
// after the first releases some, and grants never exceed the heavy cap.
func TestPoolHeavySplitsShare(t *testing.T) {
	p := NewPool(8, 2)
	ctx := context.Background()
	g1, err := p.Heavy(ctx, 0)
	if err != nil || g1 != 6 {
		t.Fatalf("first Heavy grant = %d, %v; want 6", g1, err)
	}
	got := make(chan int, 1)
	go func() {
		g, err := p.Heavy(ctx, 4)
		if err != nil {
			t.Error(err)
		}
		got <- g
	}()
	select {
	case g := <-got:
		t.Fatalf("second Heavy acquired %d slots while the cap was full", g)
	case <-time.After(50 * time.Millisecond):
	}
	p.ReleaseHeavy(2)
	select {
	case g := <-got:
		if g != 2 {
			t.Fatalf("second Heavy grant = %d, want the 2 freed slots", g)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second Heavy still blocked after slots freed")
	}
	p.ReleaseHeavy(4)
	p.ReleaseHeavy(2)
	if p.InFlight() != 0 {
		t.Fatalf("in-flight %d after releasing everything", p.InFlight())
	}
}

// TestPoolNeverExceedsCapacity hammers the pool from light and heavy
// acquirers and asserts the high-water mark stays within capacity.
func TestPoolNeverExceedsCapacity(t *testing.T) {
	const capacity = 5
	p := NewPool(capacity, 2)
	ctx := context.Background()
	var wg sync.WaitGroup
	var over atomic.Bool
	for i := 0; i < 32; i++ {
		wg.Add(1)
		heavy := i%4 == 0
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if heavy {
					g, err := p.Heavy(ctx, 2)
					if err != nil {
						t.Error(err)
						return
					}
					if p.InFlight() > capacity {
						over.Store(true)
					}
					p.ReleaseHeavy(g)
				} else {
					if err := p.Light(ctx); err != nil {
						t.Error(err)
						return
					}
					if p.InFlight() > capacity {
						over.Store(true)
					}
					p.ReleaseLight()
				}
			}
		}()
	}
	wg.Wait()
	if over.Load() {
		t.Fatal("in-flight slots exceeded capacity")
	}
	if h := p.High(); h > capacity || h == 0 {
		t.Fatalf("high-water mark %d, want 1..%d", h, capacity)
	}
}

// TestPoolAcquireHonorsContext: a cancelled context unblocks waiters
// with its error instead of leaking them.
func TestPoolAcquireHonorsContext(t *testing.T) {
	p := NewPool(2, 1)
	g, err := p.Heavy(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Light(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 2)
	go func() { errc <- p.Light(ctx) }()
	go func() {
		_, err := p.Heavy(ctx, 1)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if err != context.Canceled {
				t.Fatalf("blocked acquire returned %v, want context.Canceled", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("cancelled acquire never returned")
		}
	}
	p.ReleaseHeavy(g)
	p.ReleaseLight()
}

// TestPoolTimeoutLeaksNoSlot: an acquisition that times out while
// queued must leave the pool exactly as it found it — the regression
// the serving layer's per-query deadline depends on (a timed-out 503
// must never strand a slot).
func TestPoolTimeoutLeaksNoSlot(t *testing.T) {
	p := NewPool(3, 1)
	for i := 0; i < p.Capacity(); i++ {
		if err := p.Light(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		err := p.Light(ctx)
		cancel()
		if err != context.DeadlineExceeded {
			t.Fatalf("saturated acquire %d returned %v, want DeadlineExceeded", i, err)
		}
	}
	if n := p.InFlight(); n != p.Capacity() {
		t.Fatalf("in-flight %d after timed-out waits, want %d (a slot leaked or was stolen)", n, p.Capacity())
	}
	for i := 0; i < p.Capacity(); i++ {
		p.ReleaseLight()
	}
	if n := p.InFlight(); n != 0 {
		t.Fatalf("in-flight %d after releasing everything, want 0", n)
	}
	// The pool still serves: a fresh acquire succeeds immediately.
	if err := p.Light(context.Background()); err != nil {
		t.Fatalf("pool unusable after timeouts: %v", err)
	}
	p.ReleaseLight()
}
