// Package conc holds the process-wide worker budget: one knob that caps
// how many goroutines every parallel kernel in meshlab fans out —
// synthesis networks, probe links, experiment scheduling, the streaming
// pipeline, §4 penalty scopes, §6 census scans, and wire sample-group
// decoding. CLIs set it from their -workers flag, so `-workers 1` makes
// the whole process effectively single-threaded and a CPU-quota
// environment can bound every kernel with one setting.
//
// Every fan-out in the repository is deterministic by construction
// (work items are independent and results are assembled by index), so
// the budget only changes wall clock, never bytes; the serial-vs-parallel
// oracle tests in each package pin that.
package conc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// budget is the configured cap; 0 means "default to GOMAXPROCS".
var budget atomic.Int32

// SetBudget caps the process-wide worker fan-out. n ≤ 0 resets to the
// default (GOMAXPROCS, sampled at use time).
func SetBudget(n int) {
	if n < 0 {
		n = 0
	}
	budget.Store(int32(n))
}

// Budget returns the current worker cap, always ≥ 1.
func Budget() int {
	if b := int(budget.Load()); b > 0 {
		return b
	}
	return runtime.GOMAXPROCS(0)
}

// Workers resolves an explicit worker request against the budget:
// positive values are taken as-is (a caller-scoped override), anything
// else falls back to the process budget.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return Budget()
}

// ForEachN runs fn over 0..n-1 across a bounded worker pool (workers ≤ 0
// means the process Budget; ≤ 1 runs serially in index order) and returns
// the error of the lowest index that failed, so the reported failure does
// not depend on worker scheduling. Later work is skipped once any fn
// fails.
func ForEachN(n, workers int, fn func(int) error) error {
	if workers <= 0 {
		workers = Budget()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach is ForEachN bounded by the process Budget.
func ForEach(n int, fn func(int) error) error { return ForEachN(n, 0, fn) }
