package probe

import (
	"math"
	"reflect"
	"testing"

	"meshlab/internal/conc"

	"meshlab/internal/dataset"
	"meshlab/internal/mesh"
	"meshlab/internal/phy"
	"meshlab/internal/rng"
	"meshlab/internal/stats"
	"meshlab/internal/topology"
)

func buildNet(t testing.TB, seed uint64, size int, env topology.EnvClass) *mesh.Net {
	if t != nil {
		t.Helper()
	}
	topo, err := topology.Generate(rng.New(seed), topology.Config{
		Name: "p", Size: size, Env: env,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mesh.Build(rng.New(seed).Split("mesh"), topo, phy.BandBG, mesh.BuildOptions{})
}

func collect(t testing.TB, seed uint64, size int, cfg Config) *dataset.NetworkData {
	net := buildNet(t, seed, size, topology.EnvIndoor)
	return Collect(rng.New(seed).Split("probes"), net, cfg)
}

func TestCollectBasic(t *testing.T) {
	nd := collect(t, 1, 10, Config{Duration: 3600, ReportInterval: 300})
	if len(nd.Links) == 0 {
		t.Fatal("no links collected")
	}
	if nd.Info.Band != "bg" || len(nd.Info.APs) != 10 {
		t.Fatalf("bad info: %+v", nd.Info)
	}
	for _, l := range nd.Links {
		if len(l.Sets) == 0 {
			t.Fatal("link with no probe sets should be omitted")
		}
		if len(l.Sets) > 12 {
			t.Fatalf("link has %d sets, more than 3600/300", len(l.Sets))
		}
		prev := int32(0)
		for _, ps := range l.Sets {
			if ps.T <= prev {
				t.Fatal("probe sets not strictly ordered in time")
			}
			prev = ps.T
			if len(ps.Obs) != len(phy.BandBG.Rates) {
				t.Fatalf("probe set has %d observations, want %d", len(ps.Obs), len(phy.BandBG.Rates))
			}
			for _, o := range ps.Obs {
				if o.Loss < 0 || o.Loss > 1 {
					t.Fatalf("loss %v out of range", o.Loss)
				}
			}
		}
	}
}

func TestCollectValidates(t *testing.T) {
	nd := collect(t, 2, 8, Config{Duration: 1800, ReportInterval: 300})
	f := &dataset.Fleet{Networks: []*dataset.NetworkData{nd}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectDeterminism(t *testing.T) {
	a := collect(t, 3, 8, Config{Duration: 1800, ReportInterval: 300})
	b := collect(t, 3, 8, Config{Duration: 1800, ReportInterval: 300})
	if len(a.Links) != len(b.Links) {
		t.Fatalf("link counts differ: %d vs %d", len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		if len(a.Links[i].Sets) != len(b.Links[i].Sets) {
			t.Fatalf("link %d set counts differ", i)
		}
		for j := range a.Links[i].Sets {
			x, y := a.Links[i].Sets[j], b.Links[i].Sets[j]
			if x.SNR != y.SNR || x.T != y.T {
				t.Fatalf("link %d set %d differs", i, j)
			}
		}
	}
}

func TestLossQuantization(t *testing.T) {
	nd := collect(t, 4, 8, Config{Duration: 1800, ReportInterval: 300, ProbesPerRate: 20})
	for _, l := range nd.Links {
		for _, ps := range l.Sets {
			for _, o := range ps.Obs {
				scaled := float64(o.Loss) * 20
				if math.Abs(scaled-math.Round(scaled)) > 1e-5 {
					t.Fatalf("loss %v is not a multiple of 1/20", o.Loss)
				}
			}
		}
	}
}

func TestLossTracksSNR(t *testing.T) {
	// High-SNR links should lose far less at 1M than low-SNR links at
	// 48M. Aggregate over the collection.
	nd := collect(t, 5, 12, Config{Duration: 7200, ReportInterval: 300})
	i1 := phy.BandBG.RateIndex("1M")
	i48 := phy.BandBG.RateIndex("48M")
	var l1, l48 []float64
	for _, l := range nd.Links {
		for _, ps := range l.Sets {
			for _, o := range ps.Obs {
				switch int(o.RateIdx) {
				case i1:
					l1 = append(l1, float64(o.Loss))
				case i48:
					l48 = append(l48, float64(o.Loss))
				}
			}
		}
	}
	if stats.Mean(l48) <= stats.Mean(l1) {
		t.Fatalf("mean 48M loss %v should exceed mean 1M loss %v", stats.Mean(l48), stats.Mean(l1))
	}
}

func TestSNRPlausible(t *testing.T) {
	nd := collect(t, 6, 10, Config{Duration: 3600, ReportInterval: 300})
	for _, l := range nd.Links {
		for _, ps := range l.Sets {
			if ps.SNR < -20 || ps.SNR > 90 {
				t.Fatalf("implausible SNR %d", ps.SNR)
			}
			if ps.SNRStd < 0 {
				t.Fatalf("negative SNR std %v", ps.SNRStd)
			}
		}
	}
}

func TestSNRStdMostlyUnder5(t *testing.T) {
	// Figure 3.1's headline: intra-probe-set SNR std < 5 dB ≈ 97.5% of
	// the time.
	nd := collect(t, 7, 15, Config{Duration: 14400, ReportInterval: 300})
	var stds []float64
	for _, l := range nd.Links {
		for _, ps := range l.Sets {
			stds = append(stds, float64(ps.SNRStd))
		}
	}
	if len(stds) < 100 {
		t.Fatalf("too few probe sets (%d) to assess", len(stds))
	}
	frac := stats.FractionAtMost(stds, 5)
	if frac < 0.93 || frac == 1 {
		t.Fatalf("fraction of probe sets with SNR std <= 5 dB = %v, want ≈0.975 with a tail", frac)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Duration != 86400 || cfg.ReportInterval != 300 || cfg.ProbesPerRate != 20 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestBinomialApprox(t *testing.T) {
	r := rng.New(8)
	if binomialApprox(r, 20, 0) != 0 {
		t.Fatal("p=0 must give 0")
	}
	if binomialApprox(r, 20, 1) != 20 {
		t.Fatal("p=1 must give 20")
	}
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		k := binomialApprox(r, 20, 0.3)
		if k < 0 || k > 20 {
			t.Fatalf("k=%d out of range", k)
		}
		sum += float64(k)
	}
	if mean := sum / trials; math.Abs(mean-6) > 0.15 {
		t.Fatalf("binomial mean %v, want ≈6", mean)
	}
}

func TestNetworkInfoAPs(t *testing.T) {
	net := buildNet(t, 9, 5, topology.EnvMixed)
	info := NetworkInfo(net)
	if info.Env != "mixed" || len(info.APs) != 5 {
		t.Fatalf("info = %+v", info)
	}
	for i, ap := range info.APs {
		if ap.Name != net.Topo.APs[i].Name {
			t.Fatal("AP names not preserved")
		}
	}
}

func TestFarLinksOmitted(t *testing.T) {
	// Huge spacing: most pairs should never produce probe sets.
	topo, _ := topology.Generate(rng.New(10), topology.Config{
		Name: "far", Size: 12, Env: topology.EnvIndoor, Spacing: 250,
	})
	net := mesh.Build(rng.New(10).Split("mesh"), topo, phy.BandBG, mesh.BuildOptions{})
	nd := Collect(rng.New(10).Split("probes"), net, Config{Duration: 1800, ReportInterval: 300})
	if len(nd.Links) >= 12*11 {
		t.Fatal("expected far links to be omitted")
	}
}

func BenchmarkCollect20APsOneHour(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := buildNet(b, uint64(i), 20, topology.EnvIndoor)
		_ = Collect(rng.New(uint64(i)), net, Config{Duration: 3600, ReportInterval: 300})
	}
}

// TestCollectBudgetOracle pins the parallel collection phase: the
// channel advance and success-probability integration fan across the
// process worker budget, while the shared sampling stream stays serial —
// so the collected dataset must be byte-identical at any budget (the
// probabilities, not the schedule, decide every rng draw).
func TestCollectBudgetOracle(t *testing.T) {
	defer conc.SetBudget(0)
	cfg := Config{Duration: 2 * 3600, ReportInterval: 300}
	conc.SetBudget(1)
	serial := collect(t, 77, 12, cfg)
	conc.SetBudget(8)
	parallel := collect(t, 77, 12, cfg)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("Collect diverges between budget 1 and budget 8")
	}
}
