// Package probe implements the Meraki-style inter-AP probing machinery
// (§3.1 of the thesis): every AP broadcasts probes at each bit rate every
// 40 seconds; nodes report, every 300 seconds, the per-rate mean loss over
// the past 800-second sliding window together with the SNR of the window's
// received probes. A collection run replays this protocol over a mesh.Net
// for a configured duration and produces the dataset.NetworkData the
// analyses consume.
//
// For efficiency the ~20 probes per rate per window are not individually
// Bernoulli-sampled; the received count is drawn from the normal
// approximation to the binomial around the channel's analytic success
// probability, which preserves both the mean and the 1/20-quantized
// sampling noise of real loss reports.
package probe

import (
	"math"

	"meshlab/internal/conc"
	"meshlab/internal/dataset"
	"meshlab/internal/mesh"
	"meshlab/internal/radio"
	"meshlab/internal/rng"
)

// Config controls a probe collection run. Zero fields take the thesis's
// defaults.
type Config struct {
	// Duration is the collection length in seconds (default 86400: the
	// thesis's 24-hour probe snapshot).
	Duration float64
	// ReportInterval is the seconds between probe-set reports (default
	// 300, the Meraki reporting rate).
	ReportInterval float64
	// ProbesPerRate is the number of probes aggregated per rate per
	// window (default 20 ≈ 800 s window / 40 s probe period).
	ProbesPerRate int
}

// Normalized returns the config with the package defaults applied, so
// two configs can be compared for effective equality.
func (c Config) Normalized() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 86400
	}
	if c.ReportInterval <= 0 {
		c.ReportInterval = 300
	}
	if c.ProbesPerRate <= 0 {
		c.ProbesPerRate = 20
	}
	return c
}

// NetworkInfo derives the dataset description of a live mesh network.
func NetworkInfo(net *mesh.Net) dataset.NetworkInfo {
	info := dataset.NetworkInfo{
		Name:    net.Topo.Name,
		Band:    net.Band.Name,
		Env:     net.Topo.Env.String(),
		Spacing: net.Topo.Spacing,
	}
	for _, ap := range net.Topo.APs {
		info.APs = append(info.APs, dataset.APInfo{
			Name: ap.Name, X: ap.X, Y: ap.Y, Outdoor: ap.Outdoor,
		})
	}
	return info
}

// Collect runs the probe protocol over net and returns the collected
// network data. All sampling noise derives from r, so runs are
// reproducible given the same net state. Directed links that never deliver
// a probe are omitted, matching the real dataset where unheard neighbors
// simply produce no entries.
//
// Each step splits into two phases. The expensive part — advancing every
// pair's channel state and integrating the per-rate faded success
// probabilities — is deterministic per pair (each channel owns its own
// seed-derived rng split), so it fans across the process worker budget
// (internal/conc). The cheap sampling noise then draws from the shared
// collection stream serially, in the exact order the serial
// implementation used: the probabilities decide how many draws each
// probe set consumes, and they are bit-identical in both phases' orders,
// so the collected dataset is byte-identical at any budget.
func Collect(r *rng.Stream, net *mesh.Net, cfg Config) *dataset.NetworkData {
	cfg = cfg.withDefaults()
	cr := r.Split("collect")

	nd := &dataset.NetworkData{Info: NetworkInfo(net)}
	// links[d] accumulates the probe sets of directed link d; directed
	// link index = 2*pairIdx + {0: fwd, 1: rev}.
	links := make([]*dataset.Link, 2*len(net.Pairs))

	nr := len(net.Band.Rates)
	// probs[di*nr+ri] holds directed link di's delivery probability at
	// rate ri for the current step, filled by the parallel phase. Pair
	// tasks write disjoint ranges.
	probs := make([]float64, 2*len(net.Pairs)*nr)

	steps := int(cfg.Duration / cfg.ReportInterval)
	for step := 1; step <= steps; step++ {
		t := int32(float64(step) * cfg.ReportInterval)
		_ = conc.ForEach(len(net.Pairs), func(pi int) error {
			lp := net.Pairs[pi]
			lp.Pair.Fwd.Advance(cfg.ReportInterval)
			lp.Pair.Rev.Advance(cfg.ReportInterval)
			for dir := 0; dir < 2; dir++ {
				ch := lp.Pair.Fwd
				if dir == 1 {
					ch = lp.Pair.Rev
				}
				eff := ch.EffectiveSNR()
				fadeStd := ch.Params().FadeStd
				base := (2*pi + dir) * nr
				for ri, rate := range net.Band.Rates {
					probs[base+ri] = radio.FadedSuccess(rate, eff, fadeStd)
				}
			}
			return nil
		})
		for pi, lp := range net.Pairs {
			for dir := 0; dir < 2; dir++ {
				ch := lp.Pair.Fwd
				from, to := lp.I, lp.J
				if dir == 1 {
					ch = lp.Pair.Rev
					from, to = lp.J, lp.I
				}
				di := 2*pi + dir
				ps, ok := sampleProbeSet(cr, ch, probs[di*nr:(di+1)*nr], t, cfg)
				if !ok {
					continue
				}
				if links[di] == nil {
					links[di] = &dataset.Link{From: from, To: to}
				}
				links[di].Sets = append(links[di].Sets, ps)
			}
		}
	}
	for _, l := range links {
		if l != nil {
			nd.Links = append(nd.Links, l)
		}
	}
	return nd
}

// sampleProbeSet produces one window's report for a directed channel, or
// ok=false when no probe at any rate was received (the neighbor was not
// heard this window). probs carries the channel's per-rate delivery
// probabilities, precomputed by Collect's parallel phase.
func sampleProbeSet(r *rng.Stream, ch *radio.Channel, probs []float64, t int32, cfg Config) (dataset.ProbeSet, bool) {
	n := cfg.ProbesPerRate
	params := ch.Params()

	ps := dataset.ProbeSet{T: t}
	received := 0
	for ri, p := range probs {
		k := binomialApprox(r, n, p)
		received += k
		ps.Obs = append(ps.Obs, dataset.Obs{
			RateIdx: uint8(ri),
			Loss:    float32(1 - float64(k)/float64(n)),
		})
	}
	if received == 0 {
		return dataset.ProbeSet{}, false
	}

	// Median reported SNR over the window's received probes: the sample
	// median of ~n noisy readings around the slow link SNR. Its sampling
	// error shrinks like 1/sqrt(n).
	snr := ch.MeanSNR() + ch.SlowDeviation() +
		r.NormFloat64()*params.MeasNoise/math.Sqrt(float64(received)+1)
	ps.SNR = int16(math.Round(snr))

	// Within-window SNR standard deviation (Figure 3.1's quantity):
	// per-reading measurement noise plus the AR innovation accumulated
	// across the window's probes, scaled by a sampled chi-like jitter.
	// A small fraction of windows straddle an abrupt channel shift and
	// show a heavier deviation, giving the CDF its >5 dB tail.
	innov := params.ARSigma * math.Sqrt(1-math.Exp(-2*40/params.ARTau))
	base := math.Sqrt(params.MeasNoise*params.MeasNoise + innov*innov*3)
	jitter := math.Abs(1 + 0.3*r.NormFloat64())
	std := base * jitter
	if r.Bool(0.04) {
		std += 2 * r.ExpFloat64()
	}
	ps.SNRStd = float32(std)
	return ps, true
}

// binomialApprox draws from Binomial(n, p) via the normal approximation,
// clamped to [0, n]. For the ~20-trial windows probes use, the
// approximation error is far below the channel model's own uncertainty.
func binomialApprox(r *rng.Stream, n int, p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	k := int(math.Round(mean + sd*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
