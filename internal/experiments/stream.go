package experiments

// stream.go implements the single-pass execution mode of the experiment
// suite. A StreamContext consumes a fleet one decoded network at a time
// (typically fed by a wire.Reader walk — see meshlab.StreamFleet), runs
// every registered experiment's accumulator over each network before the
// network is released, and finalizes into the same []*Result a
// materialized Context produces — byte-identical, since both modes
// execute the identical accumulator code over identical per-network
// inputs in identical fleet order. The §4 samples flow the same way:
// per-network groups (flattened off the walk, or streamed from a file's
// flat-sample section) feed chunked accumulators and are released, so
// peak memory is bounded by the derived tables the accumulators retain
// (improvement distributions, censuses, count/histogram tables) plus the
// bounded window of in-flight networks — never by the fleet or the
// sample count.

import (
	"fmt"
	"sync"

	"meshlab/internal/conc"
	"meshlab/internal/dataset"
	"meshlab/internal/hidden"
	"meshlab/internal/mobility"
	"meshlab/internal/routing"
	"meshlab/internal/snr"
)

// derivedSource supplies a NetView's lazily computed per-network derived
// data. The Context implementation memoizes fleet-wide; the streaming
// implementation caches only while its network is alive.
type derivedSource interface {
	netMatrices(nd *dataset.NetworkData) (map[int]routing.Matrix, error)
	netImprovements(nd *dataset.NetworkData, rate int, v routing.Variant) ([]routing.PairResult, error)
	netHidden(nd *dataset.NetworkData, threshold float64) (*hidden.NetworkResult, error)
}

// NetView hands an observer one network plus its derived data — routing
// success matrices, opportunistic-routing comparisons, hidden-triple
// censuses — computed at most once per network no matter how many
// experiments ask. Views are not safe for concurrent use; the pipeline
// hands each network's view to one goroutine at a time.
type NetView struct {
	nd *dataset.NetworkData
	d  derivedSource
}

// Data returns the decoded network.
func (nv *NetView) Data() *dataset.NetworkData { return nv.nd }

// Matrices returns the network's per-rate mean success matrices.
func (nv *NetView) Matrices() (map[int]routing.Matrix, error) {
	return nv.d.netMatrices(nv.nd)
}

// Improvements returns the network's opportunistic-routing comparison at
// one rate and ETX variant; all (rate, variant) pairs are computed on the
// first request.
func (nv *NetView) Improvements(rate int, v routing.Variant) ([]routing.PairResult, error) {
	return nv.d.netImprovements(nv.nd, rate, v)
}

// Hidden returns the network's §6 triple census at a hearing threshold.
func (nv *NetView) Hidden(threshold float64) (*hidden.NetworkResult, error) {
	return nv.d.netHidden(nv.nd, threshold)
}

// streamDerived caches one live network's derived data. It is used from
// one goroutine at a time (a pipeline worker during prepare, then the
// collector during the ordered observe), so it needs no locking.
type streamDerived struct {
	ms     map[int]routing.Matrix
	msErr  error
	msDone bool

	imps     map[impKey][]routing.PairResult
	impsErr  error
	impsDone bool

	hiddens map[float64]*hidden.NetworkResult
}

func (d *streamDerived) netMatrices(nd *dataset.NetworkData) (map[int]routing.Matrix, error) {
	if !d.msDone {
		d.ms, d.msErr = routing.SuccessMatrices(nd)
		d.msDone = true
	}
	return d.ms, d.msErr
}

func (d *streamDerived) netImprovements(nd *dataset.NetworkData, rate int, v routing.Variant) ([]routing.PairResult, error) {
	if !d.impsDone {
		d.impsDone = true
		ms, err := d.netMatrices(nd)
		if err != nil {
			d.impsErr = err
		} else {
			// All (rate, variant) pairs in one pass, mirroring
			// Context.Improvements: the §5 figures sweep every pair anyway.
			d.imps = make(map[impKey][]routing.PairResult, 2*len(ms))
			for _, variant := range []routing.Variant{routing.ETX1, routing.ETX2} {
				for ri, m := range ms {
					d.imps[impKey{rate: ri, variant: variant}] = routing.Improvements(m, variant)
				}
			}
		}
	}
	if d.impsErr != nil {
		return nil, d.impsErr
	}
	return d.imps[impKey{rate: rate, variant: v}], nil
}

func (d *streamDerived) netHidden(nd *dataset.NetworkData, threshold float64) (*hidden.NetworkResult, error) {
	if nr, ok := d.hiddens[threshold]; ok {
		return nr, nil
	}
	ms, err := d.netMatrices(nd)
	if err != nil {
		return nil, err
	}
	nr, err := hidden.Census(nd, ms, threshold)
	if err != nil {
		return nil, err
	}
	if d.hiddens == nil {
		d.hiddens = make(map[float64]*hidden.NetworkResult, 4)
	}
	d.hiddens[threshold] = nr
	return nr, nil
}

// streamJob is one network moving through the pipeline: a worker fills
// the view's derived cache (prepare), then the collector applies the
// ordered observes and drops the job — releasing the network.
type streamJob struct {
	nv   *NetView
	err  error
	done chan struct{}
}

// StreamContext runs the full experiment suite over a single streaming
// walk of a fleet. The driver calls Observe once per network in fleet
// order (from one goroutine), SetClients and optionally PrimeSamples for
// the trailing sections, then Finalize for the results. Per-network heavy
// work — routing solutions, improvement sweeps, triple censuses — fans
// across a bounded worker pool while accumulator state is updated
// strictly in fleet order, so the emitted results are byte-identical to
// Context.RunAllParallel over the materialized fleet, at any pool size.
type StreamContext struct {
	workers int
	ids     []string
	accs    []accumulator

	start         sync.Once
	jobs          chan *streamJob
	collectorDone chan struct{}

	mu          sync.Mutex
	idle        *sync.Cond // broadcast when inFlight drops to 0 (Flush)
	err         error
	inFlight    int
	maxInFlight int

	// §4 sample handling: either the walk flattens each network and feeds
	// the chunked sample accumulators directly (the samples are then
	// released with the network), or the driver defers to a dataset file's
	// flat-sample section and streams its groups through
	// ObserveSampleGroup after the walk (the section trails the network
	// records on disk). Full samples are retained only under the explicit
	// MaterializeSamples knob.
	deferSamples bool
	materialize  bool
	samplesDone  bool
	samples      map[string][]snr.Sample
	sampleObs    []sampleObsAt

	cds []*dataset.ClientData
	mob memo[*mobility.Analysis]

	networks  int
	drained   bool
	finalized bool
}

// sampleObsAt pairs a §4 accumulator with its registry slot, for error
// context.
type sampleObsAt struct {
	idx int
	so  sampleObserver
}

// NewStreamContext prepares a streaming run of every registered
// experiment. workers bounds the pipeline (≤ 0 means the process worker
// budget); it also bounds how many decoded networks are in flight at
// once.
func NewStreamContext(workers int) *StreamContext {
	if workers <= 0 {
		workers = conc.Budget()
	}
	s := &StreamContext{
		workers:       workers,
		ids:           IDs(),
		jobs:          make(chan *streamJob, workers),
		collectorDone: make(chan struct{}),
	}
	s.idle = sync.NewCond(&s.mu)
	for _, id := range s.ids {
		s.accs = append(s.accs, registry[byID[id]].newAcc())
	}
	for i, acc := range s.accs {
		if so, ok := acc.(sampleObserver); ok {
			s.sampleObs = append(s.sampleObs, sampleObsAt{idx: i, so: so})
		}
	}
	return s
}

// DeferSamples declares that the §4 samples will arrive as groups via
// ObserveSampleGroup (or PrimeSamples) after the walk — a dataset file's
// flat-sample section — so the walk skips incremental flattening. Must
// be called before the first Observe; the driver must then call
// FinishSamples (directly or via PrimeSamples) before Finalize.
func (s *StreamContext) DeferSamples() { s.deferSamples = true }

// MaterializeSamples makes the run retain the full per-band §4 samples so
// SamplesBG/SamplesN serve them, restoring the pre-chunked memory
// profile. No registered experiment needs it — every §4 table consumes
// groups — but an extension that genuinely needs global sample order can
// opt in. Must be called before the first Observe.
func (s *StreamContext) MaterializeSamples() {
	s.materialize = true
	if s.samples == nil {
		s.samples = make(map[string][]snr.Sample, 2)
	}
}

// feedSampleGroup hands one network's samples to every §4 accumulator
// (fanned across the worker budget — their states are independent) and,
// under MaterializeSamples, appends them to the retained per-band slices.
func (s *StreamContext) feedSampleGroup(band string, group []snr.Sample) error {
	if s.materialize {
		s.samples[band] = append(s.samples[band], group...)
	}
	return conc.ForEach(len(s.sampleObs), func(k int) error {
		o := s.sampleObs[k]
		if err := o.so.observeSampleGroup(band, group); err != nil {
			return fmt.Errorf("experiments: %s: %w", s.ids[o.idx], err)
		}
		return nil
	})
}

// ObserveSampleGroup feeds one per-network sample group from a dataset
// file's flat-sample section (a wire.Reader SampleGroups walk). Only
// valid on a DeferSamples run, from the driver goroutine, after the last
// Observe.
func (s *StreamContext) ObserveSampleGroup(band string, samples []snr.Sample) error {
	if !s.deferSamples {
		return fmt.Errorf("experiments: ObserveSampleGroup without DeferSamples (the walk already fed the samples)")
	}
	if s.finalized {
		return fmt.Errorf("experiments: ObserveSampleGroup after Finalize")
	}
	s.samplesDone = true
	return s.feedSampleGroup(band, samples)
}

// FinishSamples marks the deferred sample stream complete. A DeferSamples
// run that never saw the section fails Finalize loudly instead of
// emitting empty §4 tables; a section with zero groups is still
// "complete".
func (s *StreamContext) FinishSamples() { s.samplesDone = true }

// PrimeSamples supplies one band's pre-flattened §4 samples, splitting
// them into per-network groups for the chunked accumulators. The samples
// must equal what snr.Flatten derives for the walked networks of that
// band (dataset files guarantee this; see internal/wire). Unknown bands
// are ignored. It is the materialized-slice compatibility form of
// ObserveSampleGroup.
func (s *StreamContext) PrimeSamples(band string, samples []snr.Sample) error {
	if band != "bg" && band != "n" {
		return nil
	}
	s.samplesDone = true
	return snr.ForEachSampleGroup(samples, func(group []snr.Sample) error {
		return s.feedSampleGroup(band, group)
	})
}

// SetClients supplies the client datasets (the file section after the
// networks). Must be called before Finalize.
func (s *StreamContext) SetClients(cds []*dataset.ClientData) { s.cds = cds }

// loadErr returns the first pipeline error, if any.
func (s *StreamContext) loadErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Observe feeds the next network (in fleet order) into the pipeline. It
// blocks while the bounded window of in-flight networks is full, and
// returns the first pipeline error so the driver can abort its walk. The
// network must not be mutated after the call; it is released once every
// accumulator has observed it.
func (s *StreamContext) Observe(nd *dataset.NetworkData) error {
	if s.drained || s.finalized {
		return fmt.Errorf("experiments: Observe after Drain/Finalize")
	}
	if err := s.loadErr(); err != nil {
		return err
	}
	s.start.Do(func() { go s.collect() })
	s.mu.Lock()
	s.networks++
	s.inFlight++
	if s.inFlight > s.maxInFlight {
		s.maxInFlight = s.inFlight
	}
	s.mu.Unlock()
	j := &streamJob{
		nv:   &NetView{nd: nd, d: &streamDerived{}},
		done: make(chan struct{}),
	}
	s.jobs <- j // FIFO: the collector applies jobs in send order
	go func() {
		j.err = s.prepare(j.nv)
		close(j.done)
	}()
	return nil
}

// prepare runs on a pipeline worker: every accumulator that declares
// expensive per-network work fills the view's derived cache here, off the
// ordered path.
func (s *StreamContext) prepare(nv *NetView) error {
	for _, acc := range s.accs {
		if p, ok := acc.(preparer); ok {
			if err := p.prepare(nv); err != nil {
				return err
			}
		}
	}
	return nil
}

// collect drains the pipeline in fleet order, applying each network to
// every accumulator and the incremental flatteners, then releasing it.
func (s *StreamContext) collect() {
	for j := range s.jobs {
		<-j.done
		s.mu.Lock()
		if s.err == nil {
			if j.err != nil {
				s.err = j.err
			} else {
				s.err = s.applyOrdered(j.nv)
			}
		}
		s.inFlight--
		if s.inFlight == 0 {
			s.idle.Broadcast()
		}
		s.mu.Unlock()
	}
	close(s.collectorDone)
}

// applyOrdered runs the serial, order-sensitive part of one network:
// flatten-and-feed of its §4 sample group, then every accumulator's
// observe. The flattened samples are released with the network — the
// chunked accumulators retain only their tables — so a section-less
// stream is sample-bounded too.
func (s *StreamContext) applyOrdered(nv *NetView) error {
	if !s.deferSamples {
		nd := nv.Data()
		group, err := snr.Flatten([]*dataset.NetworkData{nd})
		if err != nil {
			return err
		}
		if err := s.feedSampleGroup(nd.Info.Band, group); err != nil {
			return err
		}
	}
	for i, acc := range s.accs {
		if err := acc.observe(nv); err != nil {
			return fmt.Errorf("experiments: %s: %w", s.ids[i], err)
		}
	}
	return nil
}

// Stats reports pipeline accounting for the finished (or in-progress)
// walk: how many networks were observed and the largest number
// simultaneously in flight — the figure that substantiates the
// bounded-memory claim, since in-flight networks are the only raw probe
// data a streaming run holds.
func (s *StreamContext) Stats() (networks, maxInFlight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.networks, s.maxInFlight
}

// Finalize drains the pipeline and renders every experiment, in paper
// order, fanning finalizers across the worker pool. It must be called
// exactly once, after the last Observe (and, on a DeferSamples run,
// after the sample-group walk).
func (s *StreamContext) Finalize() ([]*Result, error) {
	if s.finalized {
		return nil, fmt.Errorf("experiments: Finalize called twice")
	}
	s.finalized = true
	if err := s.Drain(); err != nil {
		return nil, err
	}
	if s.deferSamples && !s.samplesDone {
		return nil, fmt.Errorf("experiments: DeferSamples without a sample walk: the network walk skipped flattening but no flat-sample groups were observed (stream the section through ObserveSampleGroup, then FinishSamples)")
	}
	results := make([]*Result, len(s.accs))
	err := forEachParallel(len(s.accs), s.workers, func(i int) error {
		res, err := s.accs[i].finalize(s)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", s.ids[i], err)
		}
		r := registry[byID[s.ids[i]]]
		res.ID = r.id
		res.Title = r.title
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// shared interface: the streaming run's fleet-wide state.

// materializedSamples serves a band's full sample slice, which a chunked
// run deliberately does not retain: every registered §4 experiment
// consumes groups instead. The explicit MaterializeSamples knob restores
// retention for extensions that need global sample order.
func (s *StreamContext) materializedSamples(band string) ([]snr.Sample, error) {
	if !s.materialize {
		return nil, fmt.Errorf("experiments: the chunked streaming run does not retain full §4 samples; call MaterializeSamples (meshlab: StreamOptions.MaterializeSamples) if an experiment needs global sample order")
	}
	return s.samples[band], nil
}

// SamplesBG returns the flattened 802.11b/g probe samples of the walk
// (MaterializeSamples runs only).
func (s *StreamContext) SamplesBG() ([]snr.Sample, error) {
	return s.materializedSamples("bg")
}

// SamplesN returns the flattened 802.11n probe samples of the walk
// (MaterializeSamples runs only).
func (s *StreamContext) SamplesN() ([]snr.Sample, error) {
	return s.materializedSamples("n")
}

func (s *StreamContext) analysis() *mobility.Analysis {
	a, _ := s.mob.get(func() (*mobility.Analysis, error) {
		return mobility.Analyze(s.cds, mobility.DefaultGap), nil
	})
	return a
}

func (s *StreamContext) clientData() []*dataset.ClientData { return s.cds }
