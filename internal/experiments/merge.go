package experiments

// merge.go makes every experiment accumulator mergeable: a shard runner
// (internal/shard) runs one StreamContext per contiguous network-range
// shard, then folds the partials — in shard order — into one context
// whose Finalize emits tables byte-identical to a whole-fleet run.
//
// Why the fold is exact: each accumulator's persistent state is either
// (a) integer counters / count-histogram tables (the §4 cores), where
// merge is addition with no floating-point reassociation, or (b) values
// appended once per network in fleet order (the §3/§5/§6 censuses), where
// concatenating contiguous shards in shard order reproduces the exact
// fleet-order sequence. Shared-only experiments (§7, the ablations) keep
// no per-network state at all — their merge is a no-op and their finalize
// runs once, on the merged context.
//
// A merged-from accumulator must not be observed or finalized afterwards.

import "fmt"

// merger is implemented by every registered accumulator: fold other (an
// accumulator of the same experiment, produced by the same newAcc) into
// the receiver. StreamContext.Merge drives it index-aligned over the
// registry, so a future accumulator that forgets to implement it fails
// loudly there rather than silently dropping a shard's data.
type merger interface {
	merge(other accumulator) error
}

// mergeAs asserts other to the receiver's concrete type and applies fn.
func mergeAs[T accumulator](dst T, other accumulator, fn func(dst, src T)) error {
	src, ok := other.(T)
	if !ok {
		return fmt.Errorf("experiments: merge type mismatch: %T vs %T", dst, other)
	}
	fn(dst, src)
	return nil
}

// mergeAppendMap concatenates src's per-key slices onto dst's, in place.
func mergeAppendMap[K comparable, V any](dst map[K][]V, src map[K][]V) {
	for k, vs := range src {
		dst[k] = append(dst[k], vs...)
	}
}

func (sharedOnly) merge(accumulator) error { return nil }

// §3

func (a *fig31Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig31Acc) {
		d.probeStds = append(d.probeStds, s.probeStds...)
		d.linkStds = append(d.linkStds, s.linkStds...)
		d.netStds = append(d.netStds, s.netStds...)
	})
}

// §4 — delegate to the chunked snr cores, whose Merge operations are
// pinned by their own shard-vs-whole oracles.

func (a *fig41Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig41Acc) { d.sets.Merge(s.sets) })
}

func (a *coverageAcc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *coverageAcc) {
		for i := range d.scope {
			d.scope[i].Merge(s.scope[i])
		}
	})
}

func (a *fig44Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig44Acc) {
		for i := range d.bands {
			d.bands[i].acc.Merge(s.bands[i].acc)
			d.bands[i].seen += s.bands[i].seen
		}
	})
}

func (a *fig45Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig45Acc) { d.tput.Merge(s.tput) })
}

func (a *fig46Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig46Acc) { d.strat.Merge(s.strat) })
}

func (a *tab41Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *tab41Acc) { d.strat.Merge(s.strat) })
}

// §5 — per-network appends; shard-order concatenation restores fleet order.

func (a *fig51Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig51Acc) {
		d.nets += s.nets
		mergeAppendMap(d.imps, s.imps)
		for k, n := range s.none {
			d.none[k] += n
		}
		for k, n := range s.small {
			d.small[k] += n
		}
	})
}

func (a *fig52Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig52Acc) {
		if d.ratios == nil {
			d.ratios = map[int][]float64{}
		}
		mergeAppendMap(d.ratios, s.ratios)
	})
}

func (a *fig53Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig53Acc) {
		if d.hops == nil {
			d.hops = map[int][]float64{}
		}
		mergeAppendMap(d.hops, s.hops)
	})
}

func (a *fig54Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig54Acc) {
		if d.byHops == nil {
			d.byHops = map[int][]float64{}
		}
		mergeAppendMap(d.byHops, s.byHops)
	})
}

func (a *fig55Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig55Acc) { d.pts = append(d.pts, s.pts...) })
}

// §6 — the censuses append one result per b/g network in fleet order.
// censusBG is embedded, so each outer type forwards to the shared fold.

func (c *censusBG) mergeCensus(o *censusBG) {
	c.results = append(c.results, o.results...)
}

func (a *fig61Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig61Acc) { d.mergeCensus(&s.censusBG) })
}

func (a *fig62Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *fig62Acc) { d.mergeCensus(&s.censusBG) })
}

func (a *sec63Acc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *sec63Acc) { d.mergeCensus(&s.censusBG) })
}

func (a *abl6tAcc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *abl6tAcc) {
		mergeAppendMap(d.censuses, s.censuses)
	})
}

// Extensions

func (a *ext4topkAcc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *ext4topkAcc) {
		for i := range d.bands {
			d.bands[i].acc.Merge(s.bands[i].acc)
			d.bands[i].seen += s.bands[i].seen
		}
	})
}

func (a *ext5ettAcc) merge(o accumulator) error {
	return mergeAs(a, o, func(d, s *ext5ettAcc) {
		d.gains = append(d.gains, s.gains...)
		// rateWins is a fixed-length per-rate histogram, not a stream.
		for i, n := range s.rateWins {
			d.rateWins[i] += n
		}
	})
}

func (a *ext6macAcc) merge(o accumulator) error {
	// The rng substreams are keyed by (network name, triple index), so a
	// shard's penalties are identical to the whole run's; concatenation in
	// shard order restores fleet order.
	return mergeAs(a, o, func(d, s *ext6macAcc) {
		d.hiddenPens = append(d.hiddenPens, s.hiddenPens...)
		d.openPens = append(d.openPens, s.openPens...)
	})
}

// Drain shuts the pipeline down and applies every in-flight network to
// the accumulators — Finalize's first half, without rendering results.
// After Drain the context must not be observed again; its remaining uses
// are Merge (in either direction) and, on the merge target, Finalize.
// Drain is idempotent and returns the first pipeline error.
func (s *StreamContext) Drain() error {
	if !s.drained {
		s.drained = true
		s.start.Do(func() { go s.collect() })
		close(s.jobs)
		<-s.collectorDone
	}
	return s.loadErr()
}

// Merge drains both contexts and folds o's accumulator state into this
// one, as if this context had observed o's networks (and sample groups)
// after its own. Both contexts must come from NewStreamContext over the
// same registry (any worker counts); o must have observed a contiguous
// run of networks that follows this context's, and must not be used
// afterwards. Client data is not merged — the driver sets it once on the
// merge target.
func (s *StreamContext) Merge(o *StreamContext) error {
	if s.finalized || o.finalized {
		return fmt.Errorf("experiments: Merge after Finalize")
	}
	if err := s.Drain(); err != nil {
		return err
	}
	if err := o.Drain(); err != nil {
		return err
	}
	if len(s.accs) != len(o.accs) {
		return fmt.Errorf("experiments: Merge across different registries (%d vs %d experiments)", len(s.accs), len(o.accs))
	}
	for i, acc := range s.accs {
		m, ok := acc.(merger)
		if !ok {
			return fmt.Errorf("experiments: %s: accumulator %T does not implement merge", s.ids[i], acc)
		}
		if err := m.merge(o.accs[i]); err != nil {
			return fmt.Errorf("experiments: %s: %w", s.ids[i], err)
		}
	}
	if s.materialize && o.materialize {
		for band, ss := range o.samples {
			s.samples[band] = append(s.samples[band], ss...)
		}
	}
	s.samplesDone = s.samplesDone || o.samplesDone
	s.mu.Lock()
	o.mu.Lock()
	s.networks += o.networks
	if o.maxInFlight > s.maxInFlight {
		s.maxInFlight = o.maxInFlight
	}
	o.mu.Unlock()
	s.mu.Unlock()
	return nil
}
