package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"meshlab/internal/dataset"
	"meshlab/internal/synth"
)

var fleetOnce sync.Once
var testFleet *dataset.Fleet

func quickFleet(t testing.TB) *dataset.Fleet {
	fleetOnce.Do(func() {
		f, err := synth.Generate(synth.Quick(2024))
		if err != nil {
			panic(err)
		}
		testFleet = f
	})
	if testFleet == nil {
		t.Fatal("no fleet")
	}
	return testFleet
}

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	res, err := NewContext(quickFleet(t)).Run(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id || res.Title == "" {
		t.Fatalf("%s: missing metadata: %+v", id, res)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("%s: no rows", id)
	}
	return res
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"fig3.1",
		"fig4.1", "fig4.2", "fig4.3", "fig4.4", "fig4.5", "fig4.6", "tab4.1",
		"fig5.1", "fig5.2", "fig5.3", "fig5.4", "fig5.5",
		"fig6.1", "fig6.2", "sec6.3", "abl6.t",
		"fig7.1", "fig7.2", "fig7.3", "fig7.4", "fig7.5",
		"abl4.off", "abl4.burst", "abl5.sym",
		"ext4.topk", "ext5.ett", "ext6.mac",
	}
	got := IDs()
	have := map[string]bool{}
	for _, id := range got {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := NewContext(quickFleet(t)).Run("fig9.9"); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunAll(t *testing.T) {
	ctx := NewContext(quickFleet(t))
	results, err := ctx.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("got %d results for %d experiments", len(results), len(IDs()))
	}
	for _, r := range results {
		out := r.Format()
		if !strings.Contains(out, r.ID) {
			t.Fatalf("formatted output missing ID: %q", out[:60])
		}
	}
}

// cell parses a float table cell.
func cell(t *testing.T, res *Result, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(res.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s: row %d col %d %q not a number", res.ID, row, col, res.Rows[row][col])
	}
	return v
}

// findRow returns the first row whose first cells match the given prefix.
func findRow(t *testing.T, res *Result, prefix ...string) []string {
	t.Helper()
outer:
	for _, row := range res.Rows {
		for i, p := range prefix {
			if i >= len(row) || row[i] != p {
				continue outer
			}
		}
		return row
	}
	t.Fatalf("%s: no row with prefix %v", res.ID, prefix)
	return nil
}

func TestFig31Shape(t *testing.T) {
	res := runExp(t, "fig3.1")
	// Probe-set SNR stds are mostly small; network-level spread is much
	// larger (median column is index 4).
	ps := findRow(t, res, "probe-sets")
	nets := findRow(t, res, "networks")
	psMed, _ := strconv.ParseFloat(ps[4], 64)
	netMed, _ := strconv.ParseFloat(nets[4], 64)
	if psMed >= netMed {
		t.Fatalf("probe-set median std %v should be far below network %v", psMed, netMed)
	}
	if psMed > 5 {
		t.Fatalf("probe-set median SNR std %v dB too large", psMed)
	}
}

func TestFig42SpecificityOrdering(t *testing.T) {
	res := runExp(t, "fig4.2")
	need95 := map[string]float64{}
	for i, row := range res.Rows {
		need95[row[0]] = cell(t, res, i, 4)
	}
	if need95["link"] >= need95["global"] {
		t.Fatalf("link rates-needed %v should be below global %v", need95["link"], need95["global"])
	}
	if need95["ap"] > need95["network"] {
		t.Fatalf("ap rates-needed %v should be ≤ network %v", need95["ap"], need95["network"])
	}
}

func TestFig43NNeedsMoreRates(t *testing.T) {
	bg := runExp(t, "fig4.2")
	n := runExp(t, "fig4.3")
	bgLink := findRow(t, bg, "link")
	nLink := findRow(t, n, "link")
	bgV, _ := strconv.ParseFloat(bgLink[4], 64)
	nV, _ := strconv.ParseFloat(nLink[4], 64)
	if nV < bgV {
		t.Fatalf("802.11n link-scope rates-needed %v should be ≥ b/g %v", nV, bgV)
	}
}

func TestFig44LinkBeatsGlobal(t *testing.T) {
	res := runExp(t, "fig4.4")
	var linkExact, globalExact float64
	for i, row := range res.Rows {
		if row[0] == "bg" && row[1] == "link" {
			linkExact = cell(t, res, i, 2)
		}
		if row[0] == "bg" && row[1] == "global" {
			globalExact = cell(t, res, i, 2)
		}
	}
	if linkExact <= globalExact {
		t.Fatalf("bg link exact %v should exceed global %v", linkExact, globalExact)
	}
	if linkExact < 0.6 {
		t.Fatalf("bg link exact %v too low (paper ≈0.9)", linkExact)
	}
}

func TestFig46StrategiesComparable(t *testing.T) {
	res := runExp(t, "fig4.6")
	overall := findRow(t, res, "overall")
	var accs []float64
	for _, cellStr := range overall[1:] {
		v, err := strconv.ParseFloat(cellStr, 64)
		if err != nil {
			t.Fatalf("bad overall cell %q", cellStr)
		}
		accs = append(accs, v)
	}
	min, max := accs[0], accs[0]
	for _, a := range accs {
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	if min < 0.4 {
		t.Fatalf("a strategy fell to %v accuracy", min)
	}
	if max-min > 0.15 {
		t.Fatalf("strategies should be comparable; spread %v", max-min)
	}
}

func TestTab41Orderings(t *testing.T) {
	res := runExp(t, "tab4.1")
	upd := map[string]float64{}
	mem := map[string]float64{}
	for i, row := range res.Rows {
		upd[row[0]] = cell(t, res, i, 3)
		mem[row[0]] = cell(t, res, i, 4)
	}
	if !(upd["first"] < upd["subsampled"] && upd["subsampled"] < upd["all"]) {
		t.Fatalf("update ordering violated: %v", upd)
	}
	if !(mem["first"] <= mem["most-recent"] && mem["most-recent"] < mem["all"]) {
		t.Fatalf("memory ordering violated: %v", mem)
	}
}

func TestFig51ETX2BeatsETX1(t *testing.T) {
	res := runExp(t, "fig5.1")
	var etx1Med, etx2Med, etx1None float64
	n1, n2 := 0, 0
	for i, row := range res.Rows {
		med := cell(t, res, i, 5)
		if row[0] == "etx1" {
			etx1Med += med
			etx1None += cell(t, res, i, 4) // frac ≤5%: the paper-comparable small-gain population
			n1++
		} else {
			etx2Med += med
			n2++
		}
	}
	if n1 == 0 || n2 == 0 {
		t.Fatal("missing variants")
	}
	etx1Med /= float64(n1)
	etx2Med /= float64(n2)
	etx1None /= float64(n1)
	if etx2Med <= etx1Med {
		t.Fatalf("ETX2 median improvement %v should exceed ETX1 %v", etx2Med, etx1Med)
	}
	// Paper: ETX1 median improvement 0.05-0.08 and ≥13% no-improvement.
	if etx1Med > 0.3 {
		t.Fatalf("ETX1 median improvement %v too large (paper ≈0.05-0.08)", etx1Med)
	}
	if etx1None < 0.05 {
		t.Fatalf("ETX1 no-improvement fraction %v too small (paper ≥0.13)", etx1None)
	}
}

func TestFig53PathsLengthenWithRate(t *testing.T) {
	res := runExp(t, "fig5.3")
	one1 := findRow(t, res, "1M")
	one48 := findRow(t, res, "48M")
	f1, _ := strconv.ParseFloat(one1[2], 64)
	f48, _ := strconv.ParseFloat(one48[2], 64)
	if f48 >= f1 {
		t.Fatalf("one-hop fraction at 48M (%v) should be below 1M (%v)", f48, f1)
	}
}

func TestFig54Trends(t *testing.T) {
	res := runExp(t, "fig5.4")
	if len(res.Rows) < 2 {
		t.Skip("not enough path-length buckets in the quick fleet")
	}
	// Median improvement at the longest path should exceed the 1-hop
	// median.
	first := cell(t, res, 0, 2)
	last := cell(t, res, len(res.Rows)-1, 2)
	if last < first {
		t.Fatalf("median improvement should grow with path length: %v → %v", first, last)
	}
}

func TestFig61HiddenTriplesRiseWithRate(t *testing.T) {
	res := runExp(t, "fig6.1")
	med := map[string]float64{}
	for i, row := range res.Rows {
		med[row[0]] = cell(t, res, i, 3)
	}
	if med["48M"] <= med["1M"] {
		t.Fatalf("hidden fraction at 48M (%v) should exceed 1M (%v)", med["48M"], med["1M"])
	}
	// DSSS exception: 11M below 6M.
	if med["11M"] > med["6M"] {
		t.Fatalf("11M median %v should not exceed 6M %v (DSSS reception)", med["11M"], med["6M"])
	}
	if med["1M"] < 0.02 {
		t.Fatalf("1M hidden fraction %v suspiciously low (paper ≈0.15)", med["1M"])
	}
}

func TestFig62RangeFalls(t *testing.T) {
	res := runExp(t, "fig6.2")
	mean := map[string]float64{}
	for i, row := range res.Rows {
		mean[row[0]] = cell(t, res, i, 2)
	}
	if mean["48M"] >= mean["6M"] {
		t.Fatalf("range ratio at 48M (%v) should be below 6M (%v)", mean["48M"], mean["6M"])
	}
	if mean["1M"] != 1 {
		t.Fatalf("1M range ratio must be 1 by definition, got %v", mean["1M"])
	}
}

func TestSec63IndoorExceedsOutdoor(t *testing.T) {
	res := runExp(t, "sec6.3")
	in := findRow(t, res, "indoor")
	out := findRow(t, res, "outdoor")
	inMed, _ := strconv.ParseFloat(in[2], 64)
	outMed, _ := strconv.ParseFloat(out[2], 64)
	if inMed < outMed {
		t.Fatalf("indoor hidden fraction %v should be ≥ outdoor %v", inMed, outMed)
	}
}

func TestFig71MajorityOneAP(t *testing.T) {
	res := runExp(t, "fig7.1")
	one := findRow(t, res, "1")
	oneN, _ := strconv.ParseFloat(one[1], 64)
	total := 0.0
	for i := range res.Rows {
		total += cell(t, res, i, 1)
	}
	if oneN*2 < total {
		t.Fatalf("one-AP clients %v of %v should be the majority", oneN, total)
	}
}

func TestFig73Fig74EnvSplit(t *testing.T) {
	prev := runExp(t, "fig7.3")
	pers := runExp(t, "fig7.4")
	for _, res := range []*Result{prev, pers} {
		in := findRow(t, res, "indoor")
		out := findRow(t, res, "outdoor")
		inMed, err1 := strconv.ParseFloat(in[3], 64)
		outMed, err2 := strconv.ParseFloat(out[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: missing env medians", res.ID)
		}
		if inMed >= outMed {
			t.Fatalf("%s: indoor median %v should be below outdoor %v", res.ID, inMed, outMed)
		}
	}
}

func TestFig75QuadrantStructure(t *testing.T) {
	res := runExp(t, "fig7.5")
	var lh, total float64
	for i, row := range res.Rows {
		v := cell(t, res, i, 1)
		total += v
		if strings.HasPrefix(row[0], "low, high") {
			lh = v
		}
	}
	if total == 0 {
		t.Fatal("no clients")
	}
	if lh/total > 0.2 {
		t.Fatalf("slow-roamer quadrant holds %v of clients; paper says it is nearly empty", lh/total)
	}
}

func TestLinkSeriesHelper(t *testing.T) {
	f := quickFleet(t)
	series := linkSeries(f.Networks[0])
	if len(series) == 0 {
		t.Fatal("no link series")
	}
	for k, xs := range series {
		if len(xs) == 0 {
			t.Fatalf("empty series for %s", k)
		}
	}
}

func BenchmarkRunAllQuick(b *testing.B) {
	f := quickFleet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewContext(f).RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExt5ETTGainNonNegative(t *testing.T) {
	res := runExp(t, "ext5.ett")
	med := findRow(t, res, "median airtime gain of ETT over best fixed-rate ETX")
	v, err := strconv.ParseFloat(med[1], 64)
	if err != nil {
		t.Fatalf("bad gain cell %q", med[1])
	}
	if v < 0 {
		t.Fatalf("ETT gain %v negative", v)
	}
}

func TestExt6MacHiddenPenaltyExceedsOpen(t *testing.T) {
	res := runExp(t, "ext6.mac")
	hiddenRow := findRow(t, res, "hidden (A,C cannot hear)")
	openRow := findRow(t, res, "non-hidden (A,C hear)")
	h, err1 := strconv.ParseFloat(hiddenRow[2], 64)
	o, err2 := strconv.ParseFloat(openRow[2], 64)
	if err1 != nil || err2 != nil {
		t.Skip("not enough sampled triples in the quick fleet")
	}
	if h <= o {
		t.Fatalf("hidden triples' mean penalty %v should exceed non-hidden %v", h, o)
	}
	if h < 0.3 {
		t.Fatalf("hidden-triple penalty %v implausibly small", h)
	}
}

func TestExt4TopKShape(t *testing.T) {
	res := runExp(t, "ext4.topk")
	// Hit fraction must be non-decreasing in k within each band, and
	// 802.11n should save more probing at the same k.
	var prevBand string
	prevHit := -1.0
	for i, row := range res.Rows {
		hit := cell(t, res, i, 2)
		if row[0] != prevBand {
			prevBand, prevHit = row[0], -1
		}
		if hit < prevHit {
			t.Fatalf("hit fraction decreased within band %s", row[0])
		}
		prevHit = hit
	}
	bgK3 := findRow(t, res, "bg", "3")
	nK3 := findRow(t, res, "n", "3")
	bgSave, _ := strconv.ParseFloat(bgK3[3], 64)
	nSave, _ := strconv.ParseFloat(nK3[3], 64)
	if nSave <= bgSave {
		t.Fatalf("802.11n probing savings %v should exceed b/g %v at k=3", nSave, bgSave)
	}
}

func TestFig41MostSNRsChurn(t *testing.T) {
	res := runExp(t, "fig4.1")
	// Rows are (#rates ever optimal, #SNR values); SNRs with a single
	// always-optimal rate should be a minority (Figure 4.1's message).
	single, total := 0.0, 0.0
	for i, row := range res.Rows {
		n := cell(t, res, i, 1)
		total += n
		if row[0] == "1" {
			single = n
		}
	}
	if single > total/2 {
		t.Fatalf("%v of %v SNRs have a unique optimal rate; the global table would look viable", single, total)
	}
}

func TestFig45MedianRisesWithSNR(t *testing.T) {
	res := runExp(t, "fig4.5")
	// For each rate present, the median at its highest listed SNR must
	// be at least the median at its lowest listed SNR.
	firstMed := map[string]float64{}
	lastMed := map[string]float64{}
	for i, row := range res.Rows {
		rate := row[0]
		med := cell(t, res, i, 2)
		if _, ok := firstMed[rate]; !ok {
			firstMed[rate] = med
		}
		lastMed[rate] = med
	}
	for rate := range firstMed {
		if lastMed[rate] < firstMed[rate] {
			t.Fatalf("%s: median tput fell from %v to %v across SNR", rate, firstMed[rate], lastMed[rate])
		}
	}
}

func TestFig52AsymmetryModerate(t *testing.T) {
	res := runExp(t, "fig5.2")
	for i, row := range res.Rows {
		med := cell(t, res, i, 3)
		if med < 0.5 || med > 2 {
			t.Fatalf("%s: median asymmetry ratio %v implausible", row[0], med)
		}
	}
}

func TestFig55NoStrongSizeTrend(t *testing.T) {
	res := runExp(t, "fig5.5")
	if len(res.Notes) == 0 {
		t.Fatal("fig5.5 should report the size correlation")
	}
	// The note carries the Spearman value; just assert rows exist and
	// means are sane.
	for i := range res.Rows {
		mean := cell(t, res, i, 2)
		if mean < 0 || mean > 2 {
			t.Fatalf("network-mean improvement %v implausible", mean)
		}
	}
}

func TestFig72ConnectionMix(t *testing.T) {
	res := runExp(t, "fig7.2")
	full := findRow(t, res, "frac full duration")
	v, err := strconv.ParseFloat(full[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.35 || v > 0.85 {
		t.Fatalf("full-duration fraction %v, paper reports ≈0.6", v)
	}
}

func TestFormatRowWiderThanHeader(t *testing.T) {
	// Regression: a row with more cells than the header used to panic with
	// index-out-of-range inside Format's render pass.
	r := &Result{
		ID: "x", Title: "wide rows",
		Header: []string{"a", "b"},
		Rows: [][]string{
			{"1", "2", "extra", "cells"},
			{"3"},
		},
		Notes: []string{"n"},
	}
	out := r.Format()
	for _, want := range []string{"extra", "cells", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}

// TestRunAllParallelMatchesSerial is the §5-determinism contract: the
// parallel runner must produce byte-identical tables to a serial run on
// the same fleet, regardless of worker count. Run with -race to also
// exercise the sharded memoization under concurrency.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	fleet := quickFleet(t)
	serial, err := NewContext(fleet).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 3} {
		parallel, err := NewContext(fleet).RunAllParallel(workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results vs %d serial", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if got, want := parallel[i].Format(), serial[i].Format(); got != want {
				t.Fatalf("workers=%d: %s diverged from serial run:\n--- parallel ---\n%s\n--- serial ---\n%s",
					workers, serial[i].ID, got, want)
			}
		}
	}
}

func TestRunAllParallelPropagatesErrors(t *testing.T) {
	// An empty fleet makes several experiments fail; the parallel runner
	// must surface an error rather than return partial results.
	ctx := NewContext(&dataset.Fleet{})
	if _, err := ctx.RunAllParallel(4); err == nil {
		t.Fatal("empty fleet should error")
	}
}

func BenchmarkRunAllQuickParallel(b *testing.B) {
	f := quickFleet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewContext(f).RunAllParallel(0); err != nil {
			b.Fatal(err)
		}
	}
}
