package experiments

import (
	"fmt"

	"meshlab/internal/dataset"
	"meshlab/internal/stats"
)

func init() {
	register("fig3.1", "Standard deviation of SNR values (probe sets, links, networks)",
		func() accumulator { return &fig31Acc{} })
}

// fig31Acc reproduces Figure 3.1: the CDF of SNR standard deviations
// within a probe set, across each link's probe-set SNRs over time, and
// across each network's SNRs at large. Each network contributes its std
// series independently, so the census streams.
type fig31Acc struct {
	probeStds, linkStds, netStds []float64
}

func (a *fig31Acc) observe(nv *NetView) error {
	nd := nv.Data()
	var netSNRs []float64
	for _, l := range nd.Links {
		var linkSNRs []float64
		for _, ps := range l.Sets {
			a.probeStds = append(a.probeStds, float64(ps.SNRStd))
			linkSNRs = append(linkSNRs, float64(ps.SNR))
			netSNRs = append(netSNRs, float64(ps.SNR))
		}
		if len(linkSNRs) >= 2 {
			a.linkStds = append(a.linkStds, stats.Std(linkSNRs))
		}
	}
	if len(netSNRs) >= 2 {
		a.netStds = append(a.netStds, stats.Std(netSNRs))
	}
	return nil
}

func (a *fig31Acc) finalize(shared) (*Result, error) {
	if len(a.probeStds) == 0 {
		return nil, fmt.Errorf("no probe sets in fleet")
	}

	quants := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.975, 0.99}
	res := &Result{Header: []string{"series", "n", "p10", "p25", "p50", "p75", "p90", "p97.5", "p99"}}
	for _, series := range []struct {
		name string
		xs   []float64
	}{
		{"probe-sets", a.probeStds},
		{"links", a.linkStds},
		{"networks", a.netStds},
	} {
		row := []string{series.name, itoa(len(series.xs))}
		cdf := stats.NewCDF(series.xs)
		for _, q := range quants {
			row = append(row, f2(cdf.Quantile(q)))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"fraction of probe sets with SNR std < 5 dB = %.3f (paper: ~0.975)",
		stats.FractionAtMost(a.probeStds, 5)))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"median per-network SNR spread %.1f dB vs per-probe-set %.1f dB (networks hold diverse links)",
		stats.Median(a.netStds), stats.Median(a.probeStds)))
	return res, nil
}

// linkSeries is a helper shared with tests: per-link probe-set SNR values.
func linkSeries(nd *dataset.NetworkData) map[string][]float64 {
	out := make(map[string][]float64)
	for _, l := range nd.Links {
		key := fmt.Sprintf("%d>%d", l.From, l.To)
		for _, ps := range l.Sets {
			out[key] = append(out[key], float64(ps.SNR))
		}
	}
	return out
}
