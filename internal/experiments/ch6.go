package experiments

import (
	"fmt"

	"meshlab/internal/hidden"
	"meshlab/internal/phy"
	"meshlab/internal/stats"
)

func init() {
	register("fig6.1", "Frequency of hidden triples per bit rate (threshold 10%)",
		func() accumulator { return &fig61Acc{} })
	register("fig6.2", "Change in range vs bit rate (relative to 1 Mbit/s)",
		func() accumulator { return &fig62Acc{} })
	register("sec6.3", "Impact of environment on hidden triples and range",
		func() accumulator { return &sec63Acc{} })
	register("abl6.t", "Ablation: hidden-triple fraction across hearing thresholds",
		func() accumulator { return &abl6tAcc{censuses: map[float64][]*hidden.NetworkResult{}} })
}

// abl6tThresholds is the hearing-threshold sweep §6.1's sensitivity remark
// is checked against.
var abl6tThresholds = []float64{0.05, 0.10, 0.25, 0.50}

// censusBG accumulates the §6 triple census of every b/g network at one
// threshold, in fleet order — the shared observe body of the §6 figures.
// The census is derived per network while it is live (and memoized
// fleet-wide on the in-memory context), so figures sharing a threshold
// share the computation.
type censusBG struct {
	results []*hidden.NetworkResult
}

func (a *censusBG) observeAt(nv *NetView, threshold float64) error {
	if nv.Data().Info.Band != "bg" {
		return nil
	}
	nr, err := nv.Hidden(threshold)
	if err != nil {
		return err
	}
	a.results = append(a.results, nr)
	return nil
}

func prepareHidden(nv *NetView, thresholds ...float64) error {
	if nv.Data().Info.Band != "bg" {
		return nil
	}
	for _, th := range thresholds {
		if _, err := nv.Hidden(th); err != nil {
			return err
		}
	}
	return nil
}

// fig61Acc reproduces Figure 6.1: the CDF over networks of the fraction
// of relevant triples that are hidden, per bit rate, at a 10% threshold.
type fig61Acc struct{ censusBG }

func (a *fig61Acc) prepare(nv *NetView) error { return prepareHidden(nv, 0.10) }
func (a *fig61Acc) observe(nv *NetView) error { return a.observeAt(nv, 0.10) }

func (a *fig61Acc) finalize(shared) (*Result, error) {
	res := &Result{Header: []string{"rate", "networks", "p25", "median", "p75", "max"}}
	medians := map[string]float64{}
	for ri, rate := range phy.BandBG.Rates {
		var fracs []float64
		for _, nr := range a.results {
			rr := nr.Rates[ri]
			if rr.Relevant > 0 {
				fracs = append(fracs, rr.Fraction)
			}
		}
		if len(fracs) == 0 {
			continue
		}
		cdf := stats.NewCDF(fracs)
		medians[rate.Name] = cdf.Quantile(0.5)
		res.Rows = append(res.Rows, []string{
			rate.Name, itoa(len(fracs)),
			f2(cdf.Quantile(0.25)), f2(cdf.Quantile(0.5)), f2(cdf.Quantile(0.75)),
			f2(cdf.Quantile(1)),
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"median at 1 Mbit/s = %.2f (paper: ≈0.15); fraction should rise with rate except the DSSS 11 Mbit/s dip below 6 Mbit/s (here: 11M %.2f vs 6M %.2f)",
		medians["1M"], medians["11M"], medians["6M"]))
	return res, nil
}

// fig62Acc reproduces Figure 6.2: per rate, the mean ± std over networks
// of range(rate)/range(1M).
type fig62Acc struct{ censusBG }

func (a *fig62Acc) prepare(nv *NetView) error { return prepareHidden(nv, 0.10) }
func (a *fig62Acc) observe(nv *NetView) error { return a.observeAt(nv, 0.10) }

func (a *fig62Acc) finalize(shared) (*Result, error) {
	ref := phy.BandBG.RateIndex("1M")
	res := &Result{Header: []string{"rate", "networks", "mean range ratio", "std"}}
	var prevMean float64 = 2
	monotone := true
	for ri, rate := range phy.BandBG.Rates {
		var ratios []float64
		for _, nr := range a.results {
			if r, ok := nr.RangeRatio(ri, ref); ok {
				ratios = append(ratios, r)
			}
		}
		if len(ratios) == 0 {
			continue
		}
		s, _ := stats.Summarize(ratios)
		res.Rows = append(res.Rows, []string{rate.Name, itoa(len(ratios)), f2(s.Mean), f2(s.Std)})
		if rate.Mod == phy.OFDM {
			if s.Mean > prevMean {
				monotone = false
			}
			prevMean = s.Mean
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"mean range should fall steadily with OFDM rate (observed monotone: %v) with large stds — some pairs hear at a higher rate but not a lower one", monotone))
	return res, nil
}

// sec63Acc reproduces §6.3: indoor vs outdoor hidden-triple fractions and
// size-normalized range. It censuses every b/g network once and splits by
// environment at finalize.
type sec63Acc struct{ censusBG }

func (a *sec63Acc) prepare(nv *NetView) error { return prepareHidden(nv, 0.10) }
func (a *sec63Acc) observe(nv *NetView) error { return a.observeAt(nv, 0.10) }

func (a *sec63Acc) finalize(shared) (*Result, error) {
	res := &Result{Header: []string{
		"environment", "networks", "median hidden frac @1M", "median hidden frac @48M", "mean range/size² @1M",
	}}
	ri1 := phy.BandBG.RateIndex("1M")
	ri48 := phy.BandBG.RateIndex("48M")
	var medians []float64
	for _, env := range []string{"indoor", "outdoor"} {
		var results []*hidden.NetworkResult
		for _, nr := range a.results {
			if nr.Env == env {
				results = append(results, nr)
			}
		}
		var f1, f48, norm []float64
		for _, nr := range results {
			if nr.Rates[ri1].Relevant > 0 {
				f1 = append(f1, nr.Rates[ri1].Fraction)
			}
			if nr.Rates[ri48].Relevant > 0 {
				f48 = append(f48, nr.Rates[ri48].Fraction)
			}
			if nr.Size > 0 {
				norm = append(norm, float64(nr.Rates[ri1].Range)/float64(nr.Size*nr.Size))
			}
		}
		med1 := stats.Median(f1)
		medians = append(medians, med1)
		res.Rows = append(res.Rows, []string{
			env, itoa(len(results)), f2(med1), f2(stats.Median(f48)), f2(stats.Mean(norm)),
		})
	}
	if len(medians) == 2 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"indoor median (%.2f) should exceed outdoor (%.2f); paper: ≈0.15 vs ≈0.05", medians[0], medians[1]))
	}
	return res, nil
}

// abl6tAcc sweeps the hearing threshold, checking the thesis's remark that
// the hidden-triple results are not sensitive to it.
type abl6tAcc struct {
	censuses map[float64][]*hidden.NetworkResult
}

func (a *abl6tAcc) prepare(nv *NetView) error { return prepareHidden(nv, abl6tThresholds...) }

func (a *abl6tAcc) observe(nv *NetView) error {
	if nv.Data().Info.Band != "bg" {
		return nil
	}
	for _, th := range abl6tThresholds {
		nr, err := nv.Hidden(th)
		if err != nil {
			return err
		}
		a.censuses[th] = append(a.censuses[th], nr)
	}
	return nil
}

func (a *abl6tAcc) finalize(shared) (*Result, error) {
	ri := phy.BandBG.RateIndex("1M")
	res := &Result{Header: []string{"threshold", "median hidden frac @1M", "median hidden frac @24M"}}
	ri24 := phy.BandBG.RateIndex("24M")
	for _, th := range abl6tThresholds {
		var f1, f24 []float64
		for _, nr := range a.censuses[th] {
			if nr.Rates[ri].Relevant > 0 {
				f1 = append(f1, nr.Rates[ri].Fraction)
			}
			if nr.Rates[ri24].Relevant > 0 {
				f24 = append(f24, nr.Rates[ri24].Fraction)
			}
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.0f%%", th*100), f2(stats.Median(f1)), f2(stats.Median(f24)),
		})
	}
	res.Notes = append(res.Notes,
		"the thesis reports results do not change significantly with the threshold (§6.1)")
	return res, nil
}
