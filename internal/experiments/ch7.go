package experiments

import (
	"fmt"

	"meshlab/internal/stats"
)

func init() {
	registerShared("fig7.1", "Number of APs visited by clients", fig71)
	registerShared("fig7.2", "Length of client connections", fig72)
	registerShared("fig7.3", "Prevalence CDF, indoor vs outdoor", fig73)
	registerShared("fig7.4", "Persistence CDF, indoor vs outdoor", fig74)
	registerShared("fig7.5", "Prevalence versus persistence per client", fig75)
}

// fig71 reproduces Figure 7.1: the histogram of distinct APs visited per
// client (session).
func fig71(c shared) (*Result, error) {
	a := c.analysis()
	if a.Sessions == 0 {
		return nil, fmt.Errorf("no client sessions")
	}
	buckets := []struct {
		name   string
		lo, hi int
	}{
		{"1", 1, 1}, {"2", 2, 2}, {"3", 3, 3}, {"4", 4, 4}, {"5", 5, 5},
		{"6-10", 6, 10}, {"11-20", 11, 20}, {"21-50", 21, 50}, {">50", 51, 1 << 30},
	}
	res := &Result{Header: []string{"APs visited", "clients"}}
	max := 0
	for _, b := range buckets {
		n := 0
		for k, cnt := range a.APVisits {
			if k >= b.lo && k <= b.hi {
				n += cnt
			}
		}
		res.Rows = append(res.Rows, []string{b.name, itoa(n)})
	}
	for k := range a.APVisits {
		if k > max {
			max = k
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"majority at 1 AP: %d of %d sessions; busiest client visited %d APs (paper: a few clients exceed 50, one exceeds 105)",
		a.APVisits[1], a.Sessions, max))
	return res, nil
}

// fig72 reproduces Figure 7.2: the CDF of client connection lengths.
func fig72(c shared) (*Result, error) {
	a := c.analysis()
	if len(a.ConnLengths) == 0 {
		return nil, fmt.Errorf("no connections")
	}
	var hours []float64
	full := 0
	dur := 0.0
	for _, cd := range c.clientData() {
		if float64(cd.Duration) > dur {
			dur = float64(cd.Duration)
		}
	}
	for _, l := range a.ConnLengths {
		hours = append(hours, l/3600)
		if l >= dur*0.95 {
			full++
		}
	}
	cdf := stats.NewCDF(hours)
	res := &Result{Header: []string{"metric", "value"}}
	res.Rows = append(res.Rows, []string{"sessions", itoa(len(hours))})
	res.Rows = append(res.Rows, []string{"frac < 2 h", f2(cdf.At(2))})
	res.Rows = append(res.Rows, []string{"frac < 5 h", f2(cdf.At(5))})
	res.Rows = append(res.Rows, []string{"median (h)", f2(cdf.Quantile(0.5))})
	res.Rows = append(res.Rows, []string{"frac full duration", f2(float64(full) / float64(len(hours)))})
	res.Notes = append(res.Notes,
		"paper: ≈23% of clients connect under two hours; ≈60% stay the whole 11 hours")
	return res, nil
}

// envQuantiles renders one metric's indoor/outdoor comparison.
func envQuantiles(byEnv map[string][]float64, scale float64, unit string) *Result {
	res := &Result{Header: []string{"environment", "values", "mean", "median", "p90"}}
	for _, env := range []string{"indoor", "outdoor"} {
		xs := byEnv[env]
		if len(xs) == 0 {
			res.Rows = append(res.Rows, []string{env, "0", "-", "-", "-"})
			continue
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x * scale
		}
		cdf := stats.NewCDF(scaled)
		res.Rows = append(res.Rows, []string{
			env, itoa(len(xs)),
			f(stats.Mean(scaled)), f(cdf.Quantile(0.5)), f(cdf.Quantile(0.9)),
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf("values in %s", unit))
	return res
}

// fig73 reproduces Figure 7.3: prevalence CDFs by environment.
func fig73(c shared) (*Result, error) {
	a := c.analysis()
	res := envQuantiles(a.PrevalenceByEnv, 1, "fraction of connected time")
	res.Notes = append(res.Notes,
		"paper: indoor mean/median ≈0.07/0.02, outdoor ≈0.15/0.08 — outdoor clients stay with APs longer")
	return res, nil
}

// fig74 reproduces Figure 7.4: persistence CDFs by environment.
func fig74(c shared) (*Result, error) {
	a := c.analysis()
	res := envQuantiles(a.PersistenceByEnv, 1, "seconds")
	res.Notes = append(res.Notes,
		"paper: indoor mean/median ≈19.4s/6.25s, outdoor ≈38.6s/25s — indoor clients flap between APs faster")
	return res, nil
}

// fig75 reproduces Figure 7.5: per client, median persistence vs maximum
// prevalence, summarized by quadrant.
func fig75(c shared) (*Result, error) {
	a := c.analysis()
	if len(a.Points) == 0 {
		return nil, fmt.Errorf("no client points")
	}
	// Quadrant cutoffs: prevalence 0.5 (a client mostly at one AP) and
	// persistence 10 minutes.
	const prevCut, persCut = 0.5, 600.0
	var hh, hl, lh, ll int
	var pers, prev []float64
	for _, p := range a.Points {
		pers = append(pers, p.MedianPersistence)
		prev = append(prev, p.MaxPrevalence)
		switch {
		case p.MaxPrevalence >= prevCut && p.MedianPersistence >= persCut:
			hh++
		case p.MaxPrevalence >= prevCut:
			hl++
		case p.MedianPersistence >= persCut:
			lh++
		default:
			ll++
		}
	}
	res := &Result{Header: []string{"quadrant (prevalence, persistence)", "clients"}}
	res.Rows = append(res.Rows, []string{"high, high (stay put)", itoa(hh)})
	res.Rows = append(res.Rows, []string{"high, low (flap around home AP)", itoa(hl)})
	res.Rows = append(res.Rows, []string{"low, high (slow roamers)", itoa(lh)})
	res.Rows = append(res.Rows, []string{"low, low (rapid switchers)", itoa(ll)})
	res.Notes = append(res.Notes, fmt.Sprintf(
		"prevalence↔persistence Spearman %.2f (paper: positively related; upper-right and lower-left quadrants dominate, lower-right is nearly empty)",
		stats.Spearman(prev, pers)))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"lower-right (high persistence, low prevalence — slow roamers) should be rare: %d of %d", lh, len(a.Points)))
	return res, nil
}
