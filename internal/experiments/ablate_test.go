package experiments

import (
	"strconv"
	"testing"
)

// ablCell parses the named column of the named variant row.
func ablCell(t *testing.T, res *Result, variant string, col int) float64 {
	t.Helper()
	row := findRow(t, res, variant)
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("%s/%s col %d: %q not a number", res.ID, variant, col, row[col])
	}
	return v
}

func TestAblationOffsets(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations generate fleets")
	}
	res := runExp(t, "abl4.off")
	defGap := ablCell(t, res, "default", 3)
	noGap := ablCell(t, res, "no-offsets", 3)
	if noGap >= defGap {
		t.Fatalf("removing offsets should shrink the link-over-global advantage: %v → %v", defGap, noGap)
	}
	if defGap < 0.05 {
		t.Fatalf("default link-over-global advantage %v too small to ablate meaningfully", defGap)
	}
}

func TestAblationBursts(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations generate fleets")
	}
	res := runExp(t, "abl4.burst")
	withBursts := ablCell(t, res, "default", 2)
	without := ablCell(t, res, "no-bursts", 2)
	if without >= withBursts {
		t.Fatalf("removing bursts should reduce optimal-rate churn: %v → %v", withBursts, without)
	}
}

func TestAblationSymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations generate fleets")
	}
	res := runExp(t, "abl5.sym")
	defAsym := ablCell(t, res, "default", 1)
	symAsym := ablCell(t, res, "symmetric", 1)
	if symAsym >= defAsym*0.7 {
		t.Fatalf("disabling asymmetry should collapse measured asymmetry: %v → %v", defAsym, symAsym)
	}
	// The ETX2−ETX1 gap must not widen when asymmetry is removed (much
	// of the gap comes from ETX2's squared link costs and survives).
	defGap := ablCell(t, res, "default", 4)
	symGap := ablCell(t, res, "symmetric", 4)
	if symGap > defGap*1.15+0.02 {
		t.Fatalf("removing asymmetry should not widen the ETX2−ETX1 gap: %v → %v", defGap, symGap)
	}
}

func TestAblationFleetCached(t *testing.T) {
	// The cache is process-wide: repeated requests — even across
	// contexts — must return the same fleet instance.
	a, err := ablationFleet("default", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ablationFleet("default", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("ablation fleet not cached")
	}
}
