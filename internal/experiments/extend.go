package experiments

import (
	"fmt"

	"meshlab/internal/hidden"
	"meshlab/internal/mac"
	"meshlab/internal/phy"
	"meshlab/internal/rng"
	"meshlab/internal/routing"
	"meshlab/internal/snr"
	"meshlab/internal/stats"
)

func init() {
	registerSamples("ext4.topk", "Extension: top-k candidate sets cut probing overhead (§4.5)",
		func() accumulator { return newExt4topkAcc() })
	register("ext5.ett", "Extension: multi-rate ETT routing vs fixed-rate ETX",
		func() accumulator { return &ext5ettAcc{rateWins: make([]int, len(phy.BandBG.Rates))} })
	register("ext6.mac", "Extension: MAC-level throughput cost of hidden triples",
		func() accumulator { return &ext6macAcc{root: rng.New(606)} })
}

// ext4topkAcc evaluates the thesis's §4.5 augmented table: keep the top-k
// rates per (link, SNR) and restrict probing to them. The table reports,
// per band and k, how often the true optimum falls in the candidate set
// and the probing saved. Link-scope cells are network-local, so the
// chunked core trains and evaluates one network at a time — identical to
// the batch TopKCoverage by the snr package's oracle.
type ext4topkAcc struct {
	sampleAcc
	bands []ext4topkBand
}

type ext4topkBand struct {
	name string
	acc  *snr.TopKAccum
	seen int
}

func newExt4topkAcc() *ext4topkAcc {
	ks := []int{1, 2, 3}
	return &ext4topkAcc{bands: []ext4topkBand{
		{name: "bg", acc: snr.NewTopKAccum(len(phy.BandBG.Rates), ks)},
		{name: "n", acc: snr.NewTopKAccum(len(phy.BandN.Rates), ks)},
	}}
}

func (a *ext4topkAcc) observeSampleGroup(band string, samples []snr.Sample) error {
	for i := range a.bands {
		if a.bands[i].name == band {
			a.bands[i].acc.ObserveGroup(samples)
			a.bands[i].seen += len(samples)
		}
	}
	return nil
}

func (a *ext4topkAcc) finalize(shared) (*Result, error) {
	res := &Result{Header: []string{"band", "k", "optimum in top-k", "probing saved", "probe sets"}}
	for i := range a.bands {
		b := &a.bands[i]
		if b.seen == 0 {
			continue
		}
		for _, r := range b.acc.Finalize() {
			res.Rows = append(res.Rows, []string{
				b.name, itoa(r.K), f2(r.HitFrac), f2(r.ProbeReduction), itoa(r.Evaluated),
			})
		}
	}
	res.Notes = append(res.Notes,
		"§4.5: with k=2-3 per-link candidates, a SampleRate-style prober keeps near-optimal coverage while probing a fraction of the rates — especially valuable for 802.11n's 16 rates")
	return res, nil
}

// ext5ettAcc evaluates the paper's other named path metric (§1 question 2):
// expected transmission time with per-link rate selection, against the
// best single fixed-rate ETX scheme, per network.
type ext5ettAcc struct {
	gains    []float64
	rateWins []int
}

func (a *ext5ettAcc) prepare(nv *NetView) error {
	if !routable(nv.Data()) {
		return nil
	}
	_, err := nv.Matrices()
	return err
}

func (a *ext5ettAcc) observe(nv *NetView) error {
	if !routable(nv.Data()) {
		return nil
	}
	ms, err := nv.Matrices()
	if err != nil {
		return err
	}
	r := routing.CompareETT(ms, phy.BandBG, 0, 0)
	if r.Pairs == 0 || r.BestFixedRate < 0 {
		return nil
	}
	a.gains = append(a.gains, r.Gain)
	a.rateWins[r.BestFixedRate]++
	return nil
}

func (a *ext5ettAcc) finalize(shared) (*Result, error) {
	if len(a.gains) == 0 {
		return nil, fmt.Errorf("no routable networks")
	}
	res := &Result{Header: []string{"metric", "value"}}
	s, _ := stats.Summarize(a.gains)
	res.Rows = append(res.Rows,
		[]string{"networks", itoa(s.N)},
		[]string{"median airtime gain of ETT over best fixed-rate ETX", f2(s.Median)},
		[]string{"mean gain", f2(s.Mean)},
		[]string{"max gain", f2(s.Max)},
	)
	best, bestN := 0, 0
	for ri, n := range a.rateWins {
		if n > bestN {
			best, bestN = ri, n
		}
	}
	res.Rows = append(res.Rows, []string{
		"most common best fixed rate",
		fmt.Sprintf("%s (%d networks)", phy.BandBG.Rates[best].Name, bestN),
	})
	res.Notes = append(res.Notes,
		"ETT can always mimic a fixed-rate scheme, so the gain is non-negative; it grows with SNR diversity because per-link rate choice exploits strong links without stranding weak ones")
	return res, nil
}

// ext6macAcc attaches a throughput cost to the §6 census: for a sample of
// relevant triples, it runs the slotted CSMA contention simulation with
// the pair's measured mutual delivery as the carrier-sense probability,
// and compares hidden triples against non-hidden ones. Each network's
// simulation streams draw from rng substreams keyed by (network name,
// triple index), so per-network results do not depend on walk scheduling.
type ext6macAcc struct {
	root                 *rng.Stream
	hiddenPens, openPens []float64
}

// ext6mac simulation parameters.
const (
	ext6Threshold = 0.10
	ext6Slots     = 20000
	ext6PerNet    = 12 // sampled triples per network
)

func (a *ext6macAcc) prepare(nv *NetView) error {
	if nv.Data().Info.Band != "bg" {
		return nil
	}
	_, err := nv.Matrices()
	return err
}

func (a *ext6macAcc) observe(nv *NetView) error {
	nd := nv.Data()
	if nd.Info.Band != "bg" {
		return nil
	}
	ms, err := nv.Matrices()
	if err != nil {
		return err
	}
	ri := phy.BandBG.RateIndex("1M")
	m := ms[ri]
	g := hidden.HearingGraph(m, ext6Threshold)
	n := nd.NumAPs()
	sampled := 0
	// Deterministic triple scan; sampling caps the per-network work.
	for b := 0; b < n && sampled < ext6PerNet; b++ {
		for x := 0; x < n && sampled < ext6PerNet; x++ {
			if x == b || !g.Hears(x, b) {
				continue
			}
			for d := x + 1; d < n && sampled < ext6PerNet; d++ {
				if d == b || !g.Hears(d, b) {
					continue
				}
				// (x, b, d) is a relevant triple with center b.
				sense := (m.At(x, d) + m.At(d, x)) / 2
				pen := mac.HiddenPenalty(a.root.SplitN(nd.Info.Name, sampled), sense, ext6Slots)
				if g.Hears(x, d) {
					a.openPens = append(a.openPens, pen)
				} else {
					a.hiddenPens = append(a.hiddenPens, pen)
				}
				sampled++
			}
		}
	}
	return nil
}

func (a *ext6macAcc) finalize(shared) (*Result, error) {
	res := &Result{Header: []string{"triple population", "sampled", "mean throughput penalty", "median", "p90"}}
	for _, pop := range []struct {
		name string
		xs   []float64
	}{
		{"hidden (A,C cannot hear)", a.hiddenPens},
		{"non-hidden (A,C hear)", a.openPens},
	} {
		if len(pop.xs) == 0 {
			res.Rows = append(res.Rows, []string{pop.name, "0", "-", "-", "-"})
			continue
		}
		cdf := stats.NewCDF(pop.xs)
		res.Rows = append(res.Rows, []string{
			pop.name, itoa(len(pop.xs)),
			f2(stats.Mean(pop.xs)), f2(cdf.Quantile(0.5)), f2(cdf.Quantile(0.9)),
		})
	}
	res.Notes = append(res.Notes,
		"hidden triples should pay a much larger contention penalty than triples whose leaves carrier-sense each other — the throughput cost §6 warns an ideal rate adapter still suffers")
	return res, nil
}
