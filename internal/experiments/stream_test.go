package experiments

import (
	"reflect"
	"testing"

	"meshlab/internal/dataset"
	"meshlab/internal/hidden"
	"meshlab/internal/snr"
)

// streamRun pushes a materialized fleet through a StreamContext the way a
// wire.Reader walk would, returning the finalized results.
func streamRun(t *testing.T, f *dataset.Fleet, workers int, prime bool) []*Result {
	t.Helper()
	sc := NewStreamContext(workers)
	if prime {
		sc.DeferSamples()
	}
	for _, nd := range f.Networks {
		if err := sc.Observe(nd); err != nil {
			t.Fatal(err)
		}
	}
	sc.SetClients(f.Clients)
	if prime {
		for _, band := range []string{"bg", "n"} {
			samples, err := snr.Flatten(f.ByBand(band))
			if err != nil {
				t.Fatal(err)
			}
			sc.PrimeSamples(band, samples)
		}
	}
	results, err := sc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestStreamMatchesContext is the suite-level oracle: a streaming run
// must emit byte-identical results to the materialized parallel runner,
// at any pipeline width, with samples flattened incrementally or primed.
func TestStreamMatchesContext(t *testing.T) {
	f := quickFleet(t)
	want, err := NewContext(f).RunAllParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		name    string
		workers int
		prime   bool
	}{
		{"serial", 1, false},
		{"parallel", 4, false},
		{"parallel-primed", 3, true},
	} {
		got := streamRun(t, f, cfg.workers, cfg.prime)
		if len(got) != len(want) {
			t.Fatalf("%s: %d results vs %d", cfg.name, len(got), len(want))
		}
		for i := range want {
			if g, w := got[i].Format(), want[i].Format(); g != w {
				t.Fatalf("%s: %s diverged from the materialized run:\n--- stream ---\n%s\n--- context ---\n%s",
					cfg.name, want[i].ID, g, w)
			}
		}
	}
}

// TestStreamBoundedInFlight pins the memory contract: the pipeline never
// holds more than a bounded window of networks regardless of fleet size.
func TestStreamBoundedInFlight(t *testing.T) {
	f := quickFleet(t)
	sc := NewStreamContext(2)
	for _, nd := range f.Networks {
		if err := sc.Observe(nd); err != nil {
			t.Fatal(err)
		}
	}
	sc.SetClients(f.Clients)
	if _, err := sc.Finalize(); err != nil {
		t.Fatal(err)
	}
	networks, maxInFlight := sc.Stats()
	if networks != len(f.Networks) {
		t.Fatalf("observed %d networks, fleet has %d", networks, len(f.Networks))
	}
	// Channel capacity (workers) + the job being collected + the one being
	// submitted.
	if bound := 2 + 2; maxInFlight > bound {
		t.Fatalf("max in-flight networks %d exceeds pipeline bound %d", maxInFlight, bound)
	}
	if maxInFlight >= len(f.Networks) {
		t.Fatalf("pipeline held the whole fleet (%d networks) at once", maxInFlight)
	}
}

// TestStreamLifecycleErrors: the context enforces its single-use walk
// protocol and surfaces a deferred-but-never-primed sample section.
func TestStreamLifecycleErrors(t *testing.T) {
	f := quickFleet(t)

	sc := NewStreamContext(1)
	if _, err := sc.Finalize(); err == nil {
		t.Fatal("an empty walk should fail (experiments see no data)")
	}
	if err := sc.Observe(f.Networks[0]); err == nil {
		t.Fatal("Observe after Finalize should error")
	}
	if _, err := sc.Finalize(); err == nil {
		t.Fatal("double Finalize should error")
	}

	// DeferSamples with no PrimeSamples: the §4 experiments must fail
	// loudly instead of silently running on zero samples.
	sc = NewStreamContext(1)
	sc.DeferSamples()
	for _, nd := range f.Networks {
		if err := sc.Observe(nd); err != nil {
			t.Fatal(err)
		}
	}
	sc.SetClients(f.Clients)
	if _, err := sc.Finalize(); err == nil {
		t.Fatal("deferred-but-unprimed samples should fail Finalize")
	}
}

// TestHiddenCensusParallelOracle: the context's §6 scan — which fans
// every b/g network across the worker bound on the first census request —
// must agree exactly, at any pool size, with the serial package-level
// census.
func TestHiddenCensusParallelOracle(t *testing.T) {
	f := quickFleet(t)
	nets := f.ByBand("bg")
	serial, err := hidden.AnalyzeAll(nets, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int32{1, 5} {
		ctx := NewContext(f)
		ctx.workers.Store(workers)
		for i, nd := range nets {
			nr, err := ctx.netHidden(nd, 0.10)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(nr, serial[i]) {
				t.Fatalf("workers=%d: context census for %s diverges from hidden.AnalyzeAll", workers, nd.Info.Name)
			}
		}
	}
}

// TestSampleIDs: the sample-only population is exactly the §4 artifacts
// plus the §4.5 extension, and runs against a fleet-less context primed
// with samples.
func TestSampleIDs(t *testing.T) {
	want := []string{"fig4.1", "fig4.2", "fig4.3", "fig4.4", "fig4.5", "fig4.6", "tab4.1", "ext4.topk"}
	if got := SampleIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SampleIDs = %v, want %v", got, want)
	}
	if SampleOnly("fig5.1") || SampleOnly("nope") {
		t.Fatal("fig5.1 and unknown IDs must not be sample-only")
	}

	f := quickFleet(t)
	full := NewContext(f)
	bare := NewContext(&dataset.Fleet{})
	for _, band := range []string{"bg", "n"} {
		samples, err := snr.Flatten(f.ByBand(band))
		if err != nil {
			t.Fatal(err)
		}
		bare.PrimeSamples(band, samples)
	}
	for _, id := range SampleIDs() {
		a, err := bare.Run(id)
		if err != nil {
			t.Fatalf("%s on a sample-only context: %v", id, err)
		}
		b, err := full.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.Format() != b.Format() {
			t.Fatalf("%s diverges between sample-only and full context", id)
		}
	}
}
