package experiments

import (
	"bytes"
	"testing"

	"meshlab/internal/dataset"
	"meshlab/internal/snr"
)

// bandGroups materializes the per-network sample groups a wire walk
// would deliver to ObserveSampleGroup during a deferred sample phase.
func bandGroups(t *testing.T, f *dataset.Fleet) []struct {
	band    string
	samples []snr.Sample
} {
	t.Helper()
	var groups []struct {
		band    string
		samples []snr.Sample
	}
	for _, band := range []string{"bg", "n"} {
		for _, nd := range f.ByBand(band) {
			samples, err := snr.Flatten([]*dataset.NetworkData{nd})
			if err != nil {
				t.Fatal(err)
			}
			groups = append(groups, struct {
				band    string
				samples []snr.Sample
			}{band, samples})
		}
	}
	if len(groups) < 3 {
		t.Fatalf("only %d sample groups; the snapshot oracle needs a mid-phase boundary", len(groups))
	}
	return groups
}

func formatAll(t *testing.T, results []*Result) []string {
	t.Helper()
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Format()
	}
	return out
}

func compareRuns(t *testing.T, label string, got, want []*Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results vs %d", label, len(got), len(want))
	}
	for i := range want {
		if g, w := got[i].Format(), want[i].Format(); g != w {
			t.Fatalf("%s: %s diverged from the uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s",
				label, want[i].ID, g, w)
		}
	}
}

// TestStreamSnapshotResumeMatchesUninterrupted is the experiments-layer
// oracle: snapshotting a streaming run at a network boundary, restoring
// into a fresh context, and feeding the remaining networks must finalize
// byte-identically to an uninterrupted run — and taking the snapshot
// must not disturb the run that continues.
func TestStreamSnapshotResumeMatchesUninterrupted(t *testing.T) {
	f := quickFleet(t)
	want := streamRun(t, f, 2, false)

	splits := []int{1, len(f.Networks) / 2, len(f.Networks) - 1}
	for _, mid := range splits {
		sc := NewStreamContext(2)
		for _, nd := range f.Networks[:mid] {
			if err := sc.Observe(nd); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := sc.Snapshot(&buf); err != nil {
			t.Fatalf("split %d: snapshot: %v", mid, err)
		}

		// Restore into a fresh context (different worker count on purpose)
		// and continue the walk.
		re := NewStreamContext(3)
		if err := re.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("split %d: restore: %v", mid, err)
		}
		for _, nd := range f.Networks[mid:] {
			if err := re.Observe(nd); err != nil {
				t.Fatal(err)
			}
		}
		re.SetClients(f.Clients)
		got, err := re.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		compareRuns(t, "restored", got, want)

		// The snapshotted context keeps running unperturbed.
		for _, nd := range f.Networks[mid:] {
			if err := sc.Observe(nd); err != nil {
				t.Fatal(err)
			}
		}
		sc.SetClients(f.Clients)
		cont, err := sc.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		compareRuns(t, "continued-after-snapshot", cont, want)
	}
}

// TestStreamSnapshotResumeDeferredSamples covers the second checkpoint
// site: a deferred sample phase snapshotted at a sample-group (network)
// boundary, mid-phase.
func TestStreamSnapshotResumeDeferredSamples(t *testing.T) {
	f := quickFleet(t)
	groups := bandGroups(t, f)

	run := func(snapAt int) ([]*Result, []byte) {
		sc := NewStreamContext(2)
		sc.DeferSamples()
		for _, nd := range f.Networks {
			if err := sc.Observe(nd); err != nil {
				t.Fatal(err)
			}
		}
		var snap []byte
		for i, g := range groups {
			if i == snapAt {
				var buf bytes.Buffer
				if err := sc.Snapshot(&buf); err != nil {
					t.Fatalf("snapshot at group %d: %v", i, err)
				}
				snap = buf.Bytes()
			}
			if err := sc.ObserveSampleGroup(g.band, g.samples); err != nil {
				t.Fatal(err)
			}
		}
		sc.FinishSamples()
		sc.SetClients(f.Clients)
		results, err := sc.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return results, snap
	}

	want, _ := run(-1)
	// Sanity: the group-fed deferred walk matches the primed path.
	compareRuns(t, "group-fed-deferred", want, streamRun(t, f, 2, true))

	for _, snapAt := range []int{1, len(groups) / 2, len(groups) - 1} {
		cont, snap := run(snapAt)
		compareRuns(t, "continued-after-snapshot", cont, want)

		re := NewStreamContext(2)
		re.DeferSamples()
		if err := re.Restore(bytes.NewReader(snap)); err != nil {
			t.Fatalf("restore at group %d: %v", snapAt, err)
		}
		for _, g := range groups[snapAt:] {
			if err := re.ObserveSampleGroup(g.band, g.samples); err != nil {
				t.Fatal(err)
			}
		}
		re.FinishSamples()
		re.SetClients(f.Clients)
		got, err := re.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		compareRuns(t, "restored-mid-samples", got, want)
	}
}

// TestStreamSnapshotLifecycleAndCorruption pins the guardrails: refusal
// on materialized/used contexts, and contextual errors (never panics,
// never silent partial restores) on corrupt snapshots.
func TestStreamSnapshotLifecycleAndCorruption(t *testing.T) {
	f := quickFleet(t)

	// A MaterializeSamples run retains raw samples and must refuse.
	mat := NewStreamContext(1)
	mat.MaterializeSamples()
	if err := mat.Observe(f.Networks[0]); err != nil {
		t.Fatal(err)
	}
	if err := mat.Snapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("Snapshot of a MaterializeSamples run should refuse")
	}

	// Build a valid snapshot to corrupt.
	sc := NewStreamContext(2)
	for _, nd := range f.Networks[:2] {
		if err := sc.Observe(nd); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// Restore only loads into a fresh context.
	if err := sc.Restore(bytes.NewReader(snap)); err == nil {
		t.Fatal("Restore on a used context should refuse")
	}

	// Truncations at every stride must error, never panic.
	for cut := 0; cut < len(snap); cut += 1 + len(snap)/64 {
		if err := NewStreamContext(1).Restore(bytes.NewReader(snap[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d restored without error", cut, len(snap))
		}
	}
	// Version flip must error.
	flipped := append([]byte(nil), snap...)
	flipped[0] ^= 0xFF
	if err := NewStreamContext(1).Restore(bytes.NewReader(flipped)); err == nil {
		t.Fatal("version-flipped snapshot restored without error")
	}

	// Snapshot after Finalize must refuse.
	done := NewStreamContext(1)
	for _, nd := range f.Networks {
		if err := done.Observe(nd); err != nil {
			t.Fatal(err)
		}
	}
	done.SetClients(f.Clients)
	if _, err := done.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := done.Snapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("Snapshot after Finalize should refuse")
	}
}
