package experiments

import (
	"fmt"

	"meshlab/internal/phy"
	"meshlab/internal/snr"
	"meshlab/internal/stats"
)

func init() {
	registerSampleOnly("fig4.1", "Optimal bit rates for different SNRs (802.11b/g)", fig41)
	registerSampleOnly("fig4.2", "SNR look-up table performance by scope, 802.11b/g", fig42)
	registerSampleOnly("fig4.3", "SNR look-up table performance by scope, 802.11n", fig43)
	registerSampleOnly("fig4.4", "Throughput penalty of look-up tables vs optimal", fig44)
	registerSampleOnly("fig4.5", "Correlation between SNR and throughput (802.11b/g)", fig45)
	registerSampleOnly("fig4.6", "Accuracy of online look-up table strategies", fig46)
	registerSampleOnly("tab4.1", "Costs of each look-up table strategy", tab41)
}

// fig41 reproduces Figure 4.1: which rates were ever optimal per SNR. The
// table reports the distribution of per-SNR optimal-rate-set sizes; the
// figure's message is that most SNRs see several different optimal rates.
func fig41(c shared) (*Result, error) {
	samples, err := c.SamplesBG()
	if err != nil {
		return nil, err
	}
	sets := snr.OptimalRateSets(samples)
	sizeHist := map[int]int{}
	single := 0
	for _, rates := range sets {
		sizeHist[len(rates)]++
		if len(rates) == 1 {
			single++
		}
	}
	res := &Result{Header: []string{"#rates ever optimal at an SNR", "#SNR values"}}
	for _, k := range sortedKeys(sizeHist) {
		res.Rows = append(res.Rows, []string{itoa(k), itoa(sizeHist[k])})
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d of %d SNR values have a single always-optimal rate; a global look-up table cannot cover the rest",
		single, len(sets)))
	// High SNRs: the top OFDM rate should dominate, as in the paper's
	// ">80 dB is always 48 Mbit/s" remark.
	hi := 0
	hiSingle := 0
	for s, rates := range sets {
		if s >= 45 {
			hi++
			if len(rates) == 1 {
				hiSingle++
			}
		}
	}
	if hi > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"at SNR ≥ 45 dB, %d/%d SNR values have a unique optimal rate (high-SNR regime is easy)", hiSingle, hi))
	}
	return res, nil
}

// coverageResult renders Figures 4.2/4.3 for one band's samples.
func coverageResult(samples []snr.Sample, band phy.Band, minObs int) *Result {
	res := &Result{Header: []string{
		"scope", "SNR cells", "mean rates@50%", "mean rates@80%", "mean rates@95%",
		"frac SNRs 1 rate@95%", "frac SNRs ≤2 rates@95%",
	}}
	for _, sc := range snr.Scopes {
		rows := snr.Train(samples, len(band.Rates), sc).Coverage(minObs)
		if len(rows) == 0 {
			res.Rows = append(res.Rows, []string{sc.String(), "0", "-", "-", "-", "-", "-"})
			continue
		}
		var s50, s80, s95 float64
		one, two := 0, 0
		for _, r := range rows {
			s50 += r.NeedP50
			s80 += r.NeedP80
			s95 += r.NeedP95
			if r.NeedP95 <= 1 {
				one++
			}
			if r.NeedP95 <= 2 {
				two++
			}
		}
		n := float64(len(rows))
		res.Rows = append(res.Rows, []string{
			sc.String(), itoa(len(rows)),
			f2(s50 / n), f2(s80 / n), f2(s95 / n),
			f2(float64(one) / n), f2(float64(two) / n),
		})
	}
	return res
}

func fig42(c shared) (*Result, error) {
	samples, err := c.SamplesBG()
	if err != nil {
		return nil, err
	}
	res := coverageResult(samples, phy.BandBG, 8)
	res.Notes = append(res.Notes,
		"specificity should decrease rates-needed monotonically: global ≥ network ≥ ap ≥ link (paper Fig 4.2)")
	return res, nil
}

func fig43(c shared) (*Result, error) {
	samples, err := c.SamplesN()
	if err != nil {
		return nil, err
	}
	res := coverageResult(samples, phy.BandN, 8)
	res.Notes = append(res.Notes,
		"802.11n needs more rates per percentile than b/g at every scope (paper Fig 4.3): compare with fig4.2")
	return res, nil
}

// fig44 reproduces Figure 4.4: the CDF of throughput lost by following the
// look-up table instead of the per-probe-set optimum, per scope and band.
func fig44(c shared) (*Result, error) {
	res := &Result{Header: []string{
		"band", "scope", "exact-hit frac", "median loss", "p75", "p90", "p95", "max (Mbit/s)",
	}}
	for _, b := range []struct {
		name    string
		band    phy.Band
		samples func() ([]snr.Sample, error)
	}{
		{"bg", phy.BandBG, c.SamplesBG},
		{"n", phy.BandN, c.SamplesN},
	} {
		samples, err := b.samples()
		if err != nil {
			return nil, err
		}
		if len(samples) == 0 {
			continue
		}
		for _, pr := range snr.Penalty(samples, len(b.band.Rates), snr.Scopes) {
			cdf := stats.NewCDF(pr.Diffs)
			res.Rows = append(res.Rows, []string{
				b.name, pr.Scope.String(), f2(pr.ExactFrac),
				f2(cdf.Quantile(0.5)), f2(cdf.Quantile(0.75)),
				f2(cdf.Quantile(0.90)), f2(cdf.Quantile(0.95)),
				f2(cdf.Quantile(1.0)),
			})
		}
	}
	res.Notes = append(res.Notes,
		"link- and AP-specific training should beat network and global on both exact hits and losses (paper: link ≈90% exact for b/g, ≈75% for n)")
	return res, nil
}

// fig45 reproduces Figure 4.5: median throughput (with quartiles) versus
// SNR per b/g rate, at 5 dB steps.
func fig45(c shared) (*Result, error) {
	samples, err := c.SamplesBG()
	if err != nil {
		return nil, err
	}
	pts := snr.ThroughputVsSNR(samples, len(phy.BandBG.Rates), 25)
	res := &Result{Header: []string{"rate", "SNR (dB)", "median tput", "q1", "q3", "n"}}
	for _, p := range pts {
		if p.SNR%5 != 0 {
			continue
		}
		res.Rows = append(res.Rows, []string{
			phy.BandBG.Rates[p.RateIdx].Name, itoa(p.SNR),
			f2(p.Median), f2(p.Q1), f2(p.Q3), itoa(p.N),
		})
	}
	res.Notes = append(res.Notes,
		"median throughput should rise with SNR and level off near the nominal rate; variance is largest on the steep part of each curve")
	return res, nil
}

// fig46 reproduces Figure 4.6: prediction accuracy versus probe sets seen,
// for the four online strategies.
func fig46(c shared) (*Result, error) {
	samples, err := c.SamplesBG()
	if err != nil {
		return nil, err
	}
	const maxX = 35
	results := snr.ReplayStrategies(samples, len(phy.BandBG.Rates), maxX)
	res := &Result{Header: []string{"probe sets seen", "first", "most-recent", "subsampled", "all"}}
	for _, x := range []int{1, 2, 3, 5, 10, 15, 20, 25, 30, 35} {
		row := []string{itoa(x)}
		for _, r := range results {
			if a := r.Accuracy(x); a >= 0 {
				row = append(row, f2(a))
			} else {
				row = append(row, "-")
			}
		}
		res.Rows = append(res.Rows, row)
	}
	overall := []string{"overall"}
	for _, r := range results {
		overall = append(overall, f2(r.OverallAccuracy()))
	}
	res.Rows = append(res.Rows, overall)
	res.Notes = append(res.Notes,
		"all strategies should perform comparably at 80-90% accuracy (paper Fig 4.6); even keeping only the first probe per SNR is viable")
	return res, nil
}

// tab41 reproduces Table 4.1: update frequency and memory per strategy,
// with measured counts from replaying the fleet.
func tab41(c shared) (*Result, error) {
	samples, err := c.SamplesBG()
	if err != nil {
		return nil, err
	}
	results := snr.ReplayStrategies(samples, len(phy.BandBG.Rates), 35)
	labels := map[snr.Strategy][2]string{
		snr.First:      {"Low", "Small"},
		snr.MostRecent: {"High", "Small"},
		snr.Subsampled: {"Moderate", "Moderate"},
		snr.All:        {"High", "Large"},
	}
	res := &Result{Header: []string{
		"strategy", "update frequency", "memory", "measured updates", "measured stored points",
	}}
	for _, r := range results {
		l := labels[r.Strategy]
		res.Rows = append(res.Rows, []string{
			r.Strategy.String(), l[0], l[1], itoa(r.Updates), itoa(r.MemEntries),
		})
	}
	res.Notes = append(res.Notes,
		"orderings must hold: updates(first) < updates(subsampled) < updates(all); memory(first|most-recent) < memory(subsampled) < memory(all)")
	return res, nil
}
