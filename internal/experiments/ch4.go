package experiments

// ch4.go reproduces the §4 bit-rate tables. Every experiment here is a
// chunked sample accumulator (sampleObserver): it trains flat
// count/histogram tables from one network's samples at a time and never
// retains the samples themselves, so a streaming run's §4 memory is
// bounded by table size instead of the 2M+-sample flat section. The
// incremental kernels live in internal/snr (PenaltyAccum, CoverageAccum,
// TputAccum, StrategyAccum, RateSetAccum) and are pinned bit-exact
// against their batch forms by the chunked-vs-batch oracles there, so
// these tables are byte-identical to the pre-chunked suite.

import (
	"fmt"

	"meshlab/internal/conc"
	"meshlab/internal/phy"
	"meshlab/internal/snr"
)

func init() {
	registerSamples("fig4.1", "Optimal bit rates for different SNRs (802.11b/g)",
		func() accumulator { return &fig41Acc{sets: snr.NewRateSetAccum()} })
	registerSamples("fig4.2", "SNR look-up table performance by scope, 802.11b/g",
		func() accumulator {
			return newCoverageAcc("bg", phy.BandBG,
				"specificity should decrease rates-needed monotonically: global ≥ network ≥ ap ≥ link (paper Fig 4.2)")
		})
	registerSamples("fig4.3", "SNR look-up table performance by scope, 802.11n",
		func() accumulator {
			return newCoverageAcc("n", phy.BandN,
				"802.11n needs more rates per percentile than b/g at every scope (paper Fig 4.3): compare with fig4.2")
		})
	registerSamples("fig4.4", "Throughput penalty of look-up tables vs optimal",
		func() accumulator { return newFig44Acc() })
	registerSamples("fig4.5", "Correlation between SNR and throughput (802.11b/g)",
		func() accumulator { return &fig45Acc{tput: snr.NewTputAccum(len(phy.BandBG.Rates), 25)} })
	registerSamples("fig4.6", "Accuracy of online look-up table strategies",
		func() accumulator { return &fig46Acc{strat: snr.NewStrategyAccum(len(phy.BandBG.Rates), fig46MaxX)} })
	registerSamples("tab4.1", "Costs of each look-up table strategy",
		func() accumulator { return &tab41Acc{strat: snr.NewStrategyAccum(len(phy.BandBG.Rates), fig46MaxX)} })
}

// fig41Acc reproduces Figure 4.1: which rates were ever optimal per SNR.
// The table reports the distribution of per-SNR optimal-rate-set sizes;
// the figure's message is that most SNRs see several different optimal
// rates.
type fig41Acc struct {
	sampleAcc
	sets *snr.RateSetAccum
}

func (a *fig41Acc) observeSampleGroup(band string, samples []snr.Sample) error {
	if band == "bg" {
		a.sets.ObserveGroup(samples)
	}
	return nil
}

func (a *fig41Acc) finalize(shared) (*Result, error) {
	sets := a.sets.Finalize()
	sizeHist := map[int]int{}
	single := 0
	for _, rates := range sets {
		sizeHist[len(rates)]++
		if len(rates) == 1 {
			single++
		}
	}
	res := &Result{Header: []string{"#rates ever optimal at an SNR", "#SNR values"}}
	for _, k := range sortedKeys(sizeHist) {
		res.Rows = append(res.Rows, []string{itoa(k), itoa(sizeHist[k])})
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d of %d SNR values have a single always-optimal rate; a global look-up table cannot cover the rest",
		single, len(sets)))
	// High SNRs: the top OFDM rate should dominate, as in the paper's
	// ">80 dB is always 48 Mbit/s" remark.
	hi := 0
	hiSingle := 0
	for s, rates := range sets {
		if s >= 45 {
			hi++
			if len(rates) == 1 {
				hiSingle++
			}
		}
	}
	if hi > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"at SNR ≥ 45 dB, %d/%d SNR values have a unique optimal rate (high-SNR regime is easy)", hiSingle, hi))
	}
	return res, nil
}

// coverageAcc reproduces Figures 4.2/4.3 for one band: one incremental
// coverage core per scope, fanned across the worker budget per group.
type coverageAcc struct {
	sampleAcc
	band  string
	scope []*snr.CoverageAccum
	note  string
}

func newCoverageAcc(band string, phyBand phy.Band, note string) *coverageAcc {
	a := &coverageAcc{band: band, note: note}
	for _, sc := range snr.Scopes {
		a.scope = append(a.scope, snr.NewCoverageAccum(len(phyBand.Rates), sc, 8))
	}
	return a
}

func (a *coverageAcc) observeSampleGroup(band string, samples []snr.Sample) error {
	if band != a.band {
		return nil
	}
	return conc.ForEach(len(a.scope), func(i int) error {
		a.scope[i].ObserveGroup(samples)
		return nil
	})
}

func (a *coverageAcc) finalize(shared) (*Result, error) {
	res := &Result{Header: []string{
		"scope", "SNR cells", "mean rates@50%", "mean rates@80%", "mean rates@95%",
		"frac SNRs 1 rate@95%", "frac SNRs ≤2 rates@95%",
	}}
	for i, sc := range snr.Scopes {
		rows := a.scope[i].Finalize()
		if len(rows) == 0 {
			res.Rows = append(res.Rows, []string{sc.String(), "0", "-", "-", "-", "-", "-"})
			continue
		}
		var s50, s80, s95 float64
		one, two := 0, 0
		for _, r := range rows {
			s50 += r.NeedP50
			s80 += r.NeedP80
			s95 += r.NeedP95
			if r.NeedP95 <= 1 {
				one++
			}
			if r.NeedP95 <= 2 {
				two++
			}
		}
		n := float64(len(rows))
		res.Rows = append(res.Rows, []string{
			sc.String(), itoa(len(rows)),
			f2(s50 / n), f2(s80 / n), f2(s95 / n),
			f2(float64(one) / n), f2(float64(two) / n),
		})
	}
	res.Notes = append(res.Notes, a.note)
	return res, nil
}

// fig44Acc reproduces Figure 4.4: the CDF of throughput lost by following
// the look-up table instead of the per-probe-set optimum, per scope and
// band. The chunked penalty cores deliver counted distributions, so the
// quantile row is computed without ever materializing a per-sample Diffs
// slice.
type fig44Acc struct {
	sampleAcc
	bands []fig44Band
}

type fig44Band struct {
	name string
	acc  *snr.PenaltyAccum
	seen int
}

func newFig44Acc() *fig44Acc {
	return &fig44Acc{bands: []fig44Band{
		{name: "bg", acc: snr.NewPenaltyAccum(len(phy.BandBG.Rates), snr.Scopes)},
		{name: "n", acc: snr.NewPenaltyAccum(len(phy.BandN.Rates), snr.Scopes)},
	}}
}

func (a *fig44Acc) observeSampleGroup(band string, samples []snr.Sample) error {
	for i := range a.bands {
		if a.bands[i].name == band {
			a.bands[i].acc.ObserveGroup(samples)
			a.bands[i].seen += len(samples)
		}
	}
	return nil
}

func (a *fig44Acc) finalize(shared) (*Result, error) {
	res := &Result{Header: []string{
		"band", "scope", "exact-hit frac", "median loss", "p75", "p90", "p95", "max (Mbit/s)",
	}}
	for i := range a.bands {
		b := &a.bands[i]
		if b.seen == 0 {
			continue
		}
		for _, pd := range b.acc.FinalizeDists() {
			res.Rows = append(res.Rows, []string{
				b.name, pd.Scope.String(), f2(pd.ExactFrac),
				f2(pd.Diffs.Quantile(0.5)), f2(pd.Diffs.Quantile(0.75)),
				f2(pd.Diffs.Quantile(0.90)), f2(pd.Diffs.Quantile(0.95)),
				f2(pd.Diffs.Quantile(1.0)),
			})
		}
	}
	res.Notes = append(res.Notes,
		"link- and AP-specific training should beat network and global on both exact hits and losses (paper: link ≈90% exact for b/g, ≈75% for n)")
	return res, nil
}

// fig45Acc reproduces Figure 4.5: median throughput (with quartiles)
// versus SNR per b/g rate, at 5 dB steps.
type fig45Acc struct {
	sampleAcc
	tput *snr.TputAccum
}

func (a *fig45Acc) observeSampleGroup(band string, samples []snr.Sample) error {
	if band == "bg" {
		a.tput.ObserveGroup(samples)
	}
	return nil
}

func (a *fig45Acc) finalize(shared) (*Result, error) {
	pts := a.tput.Finalize()
	res := &Result{Header: []string{"rate", "SNR (dB)", "median tput", "q1", "q3", "n"}}
	for _, p := range pts {
		if p.SNR%5 != 0 {
			continue
		}
		res.Rows = append(res.Rows, []string{
			phy.BandBG.Rates[p.RateIdx].Name, itoa(p.SNR),
			f2(p.Median), f2(p.Q1), f2(p.Q3), itoa(p.N),
		})
	}
	res.Notes = append(res.Notes,
		"median throughput should rise with SNR and level off near the nominal rate; variance is largest on the steep part of each curve")
	return res, nil
}

// fig46MaxX caps the history-length axis of the online-strategy replays.
const fig46MaxX = 35

// fig46Acc reproduces Figure 4.6: prediction accuracy versus probe sets
// seen, for the four online strategies.
type fig46Acc struct {
	sampleAcc
	strat *snr.StrategyAccum
}

func (a *fig46Acc) observeSampleGroup(band string, samples []snr.Sample) error {
	if band == "bg" {
		a.strat.ObserveGroup(samples)
	}
	return nil
}

func (a *fig46Acc) finalize(shared) (*Result, error) {
	results := a.strat.Finalize()
	res := &Result{Header: []string{"probe sets seen", "first", "most-recent", "subsampled", "all"}}
	for _, x := range []int{1, 2, 3, 5, 10, 15, 20, 25, 30, 35} {
		row := []string{itoa(x)}
		for i := range results {
			if acc := results[i].Accuracy(x); acc >= 0 {
				row = append(row, f2(acc))
			} else {
				row = append(row, "-")
			}
		}
		res.Rows = append(res.Rows, row)
	}
	overall := []string{"overall"}
	for i := range results {
		overall = append(overall, f2(results[i].OverallAccuracy()))
	}
	res.Rows = append(res.Rows, overall)
	res.Notes = append(res.Notes,
		"all strategies should perform comparably at 80-90% accuracy (paper Fig 4.6); even keeping only the first probe per SNR is viable")
	return res, nil
}

// tab41Acc reproduces Table 4.1: update frequency and memory per
// strategy, with measured counts from replaying the fleet.
type tab41Acc struct {
	sampleAcc
	strat *snr.StrategyAccum
}

func (a *tab41Acc) observeSampleGroup(band string, samples []snr.Sample) error {
	if band == "bg" {
		a.strat.ObserveGroup(samples)
	}
	return nil
}

func (a *tab41Acc) finalize(shared) (*Result, error) {
	results := a.strat.Finalize()
	labels := map[snr.Strategy][2]string{
		snr.First:      {"Low", "Small"},
		snr.MostRecent: {"High", "Small"},
		snr.Subsampled: {"Moderate", "Moderate"},
		snr.All:        {"High", "Large"},
	}
	res := &Result{Header: []string{
		"strategy", "update frequency", "memory", "measured updates", "measured stored points",
	}}
	for i := range results {
		r := &results[i]
		l := labels[r.Strategy]
		res.Rows = append(res.Rows, []string{
			r.Strategy.String(), l[0], l[1], itoa(r.Updates), itoa(r.MemEntries),
		})
	}
	res.Notes = append(res.Notes,
		"orderings must hold: updates(first) < updates(subsampled) < updates(all); memory(first|most-recent) < memory(subsampled) < memory(all)")
	return res, nil
}

// Single-band declarations (bandFiltered): a materialized Context run
// skips flattening the band these accumulators discard. fig4.4 and
// ext4.topk consume both bands and stay undeclared.
func (a *fig41Acc) sampleBand() string    { return "bg" }
func (a *coverageAcc) sampleBand() string { return a.band }
func (a *fig45Acc) sampleBand() string    { return "bg" }
func (a *fig46Acc) sampleBand() string    { return "bg" }
func (a *tab41Acc) sampleBand() string    { return "bg" }
