package experiments

import (
	"fmt"
	"math"
	"sort"

	"meshlab/internal/dataset"
	"meshlab/internal/phy"
	"meshlab/internal/routing"
	"meshlab/internal/stats"
)

func init() {
	register("fig5.1", "Improvement of opportunistic routing over ETX1 and ETX2",
		func() accumulator { return newFig51Acc() })
	register("fig5.2", "Link asymmetry (forward/reverse delivery ratio)",
		func() accumulator { return &fig52Acc{ratios: map[int][]float64{}} })
	register("fig5.3", "Path length CDF per bit rate",
		func() accumulator { return &fig53Acc{hops: map[int][]float64{}} })
	register("fig5.4", "Opportunistic improvement vs path length",
		func() accumulator { return &fig54Acc{byHops: map[int][]float64{}} })
	register("fig5.5", "Opportunistic improvement vs network size (1 Mbit/s)",
		func() accumulator { return &fig55Acc{} })
}

// routable reports whether a network belongs to §5's analyzed population:
// b/g with at least five APs.
func routable(nd *dataset.NetworkData) bool {
	return nd.Info.Band == "bg" && nd.NumAPs() >= 5
}

// prepareImprovements warms a routable network's full (rate, variant)
// improvement sweep on a pipeline worker; a single request computes every
// pair.
func prepareImprovements(nv *NetView) error {
	if !routable(nv.Data()) {
		return nil
	}
	_, err := nv.Improvements(0, routing.ETX1)
	return err
}

// fig51Acc reproduces Figure 5.1: the distribution of per-pair improvement
// of idealized opportunistic routing over ETX1 and ETX2, per bit rate,
// over all b/g networks with at least five APs.
type fig51Acc struct {
	nets        int
	imps        map[impKey][]float64
	none, small map[impKey]int
}

func newFig51Acc() *fig51Acc {
	return &fig51Acc{
		imps:  map[impKey][]float64{},
		none:  map[impKey]int{},
		small: map[impKey]int{},
	}
}

func (a *fig51Acc) prepare(nv *NetView) error { return prepareImprovements(nv) }

func (a *fig51Acc) observe(nv *NetView) error {
	if !routable(nv.Data()) {
		return nil
	}
	a.nets++
	for _, v := range []routing.Variant{routing.ETX1, routing.ETX2} {
		for ri := range phy.BandBG.Rates {
			prs, err := nv.Improvements(ri, v)
			if err != nil {
				return err
			}
			k := impKey{rate: ri, variant: v}
			for _, pr := range prs {
				a.imps[k] = append(a.imps[k], pr.Improvement)
				if pr.Improvement < 1e-9 {
					a.none[k]++
				}
				if pr.Improvement <= 0.05 {
					a.small[k]++
				}
			}
		}
	}
	return nil
}

func (a *fig51Acc) finalize(shared) (*Result, error) {
	if a.nets == 0 {
		return nil, fmt.Errorf("no b/g networks with ≥5 APs")
	}
	res := &Result{Header: []string{
		"variant", "rate", "pairs", "frac no improvement", "frac ≤5%", "median", "mean", "p90",
	}}
	for _, v := range []routing.Variant{routing.ETX1, routing.ETX2} {
		for ri, rate := range phy.BandBG.Rates {
			k := impKey{rate: ri, variant: v}
			imps := a.imps[k]
			if len(imps) == 0 {
				continue
			}
			cdf := stats.NewCDF(imps)
			res.Rows = append(res.Rows, []string{
				v.String(), rate.Name, itoa(len(imps)),
				f2(float64(a.none[k]) / float64(len(imps))),
				f2(float64(a.small[k]) / float64(len(imps))),
				f2(cdf.Quantile(0.5)), f2(stats.Mean(imps)), f2(cdf.Quantile(0.9)),
			})
		}
	}
	res.Notes = append(res.Notes,
		"paper: ETX1 mean improvement 0.09-0.11, median 0.05-0.08, 13-20% of pairs see none; ETX2 gains are far larger",
		"the simulator's channel diversity makes exact zeros rarer than in the paper; 'frac ≤5%' is the comparable small-gain population")
	return res, nil
}

// fig52Acc reproduces Figure 5.2: the CDF of forward/reverse delivery
// ratios per bit rate, over every b/g network.
type fig52Acc struct {
	ratios map[int][]float64
}

func (a *fig52Acc) prepare(nv *NetView) error {
	if nv.Data().Info.Band != "bg" {
		return nil
	}
	_, err := nv.Matrices()
	return err
}

func (a *fig52Acc) observe(nv *NetView) error {
	if nv.Data().Info.Band != "bg" {
		return nil
	}
	ms, err := nv.Matrices()
	if err != nil {
		return err
	}
	for ri := range phy.BandBG.Rates {
		a.ratios[ri] = append(a.ratios[ri], routing.AsymmetryRatios(ms[ri])...)
	}
	return nil
}

func (a *fig52Acc) finalize(shared) (*Result, error) {
	res := &Result{Header: []string{"rate", "pairs", "p10", "median", "p90", "frac within ±25%"}}
	for ri, rate := range phy.BandBG.Rates {
		ratios := a.ratios[ri]
		if len(ratios) == 0 {
			continue
		}
		within := 0
		for _, r := range ratios {
			if r >= 0.8 && r <= 1.25 {
				within++
			}
		}
		cdf := stats.NewCDF(ratios)
		res.Rows = append(res.Rows, []string{
			rate.Name, itoa(len(ratios)),
			f2(cdf.Quantile(0.1)), f2(cdf.Quantile(0.5)), f2(cdf.Quantile(0.9)),
			f2(float64(within) / float64(len(ratios))),
		})
	}
	res.Notes = append(res.Notes,
		"asymmetry exists but is moderate and does not change much with bit rate (paper Fig 5.2)")
	return res, nil
}

// fig53Acc reproduces Figure 5.3: the CDF of ETX1 shortest-path hop
// counts per bit rate.
type fig53Acc struct {
	hops map[int][]float64
}

func (a *fig53Acc) prepare(nv *NetView) error { return prepareImprovements(nv) }

func (a *fig53Acc) observe(nv *NetView) error {
	if !routable(nv.Data()) {
		return nil
	}
	for ri := range phy.BandBG.Rates {
		prs, err := nv.Improvements(ri, routing.ETX1)
		if err != nil {
			return err
		}
		for _, pr := range prs {
			a.hops[ri] = append(a.hops[ri], float64(pr.Hops))
		}
	}
	return nil
}

func (a *fig53Acc) finalize(shared) (*Result, error) {
	res := &Result{Header: []string{"rate", "pairs", "frac 1 hop", "frac ≤2", "frac ≤3", "mean", "max"}}
	for ri, rate := range phy.BandBG.Rates {
		hops := a.hops[ri]
		if len(hops) == 0 {
			continue
		}
		s, _ := stats.Summarize(hops)
		res.Rows = append(res.Rows, []string{
			rate.Name, itoa(len(hops)),
			f2(stats.FractionAtMost(hops, 1)),
			f2(stats.FractionAtMost(hops, 2)),
			f2(stats.FractionAtMost(hops, 3)),
			f2(s.Mean), itoa(int(s.Max)),
		})
	}
	res.Notes = append(res.Notes,
		"paths lengthen as the bit rate rises (range shrinks); at low rates most paths are 1-2 hops — the cause of ETX1's small gains")
	return res, nil
}

// fig54Acc reproduces Figure 5.4: median and maximum improvement versus
// path length, aggregated over all b/g rates under ETX1.
type fig54Acc struct {
	byHops map[int][]float64
}

func (a *fig54Acc) prepare(nv *NetView) error { return prepareImprovements(nv) }

func (a *fig54Acc) observe(nv *NetView) error {
	if !routable(nv.Data()) {
		return nil
	}
	for ri := range phy.BandBG.Rates {
		prs, err := nv.Improvements(ri, routing.ETX1)
		if err != nil {
			return err
		}
		for _, pr := range prs {
			a.byHops[pr.Hops] = append(a.byHops[pr.Hops], pr.Improvement)
		}
	}
	return nil
}

func (a *fig54Acc) finalize(shared) (*Result, error) {
	res := &Result{Header: []string{"path length (hops)", "pairs", "median improvement", "max improvement"}}
	var medians, maxima []float64
	for _, h := range sortedKeys(a.byHops) {
		imps := a.byHops[h]
		if h < 1 || len(imps) < 10 {
			continue
		}
		med := stats.Median(imps)
		max := 0.0
		for _, v := range imps {
			if v > max {
				max = v
			}
		}
		medians = append(medians, med)
		maxima = append(maxima, max)
		res.Rows = append(res.Rows, []string{itoa(h), itoa(len(imps)), f2(med), f2(max)})
	}
	if len(medians) >= 3 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"median improvement trend with path length: Spearman %.2f (paper: increases); max improvement trend: Spearman %.2f (paper: decreases)",
			trend(medians), trend(maxima)))
	}
	return res, nil
}

// trend returns the Spearman correlation of a series against its index.
func trend(ys []float64) float64 {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	return stats.Spearman(xs, ys)
}

// netPoint is one network's mean improvement at 1 Mbit/s (Figure 5.5).
type netPoint struct {
	size      int
	mean, std float64
}

// fig55Acc reproduces Figure 5.5: mean per-network improvement at
// 1 Mbit/s versus network size.
type fig55Acc struct {
	pts []netPoint
}

func (a *fig55Acc) prepare(nv *NetView) error { return prepareImprovements(nv) }

func (a *fig55Acc) observe(nv *NetView) error {
	nd := nv.Data()
	if !routable(nd) {
		return nil
	}
	prs, err := nv.Improvements(phy.BandBG.RateIndex("1M"), routing.ETX1)
	if err != nil {
		return err
	}
	if len(prs) == 0 {
		return nil
	}
	var imps []float64
	for _, pr := range prs {
		imps = append(imps, pr.Improvement)
	}
	s, _ := stats.Summarize(imps)
	a.pts = append(a.pts, netPoint{size: nd.NumAPs(), mean: s.Mean, std: s.Std})
	return nil
}

func (a *fig55Acc) finalize(shared) (*Result, error) {
	pts := a.pts
	sort.Slice(pts, func(x, y int) bool { return pts[x].size < pts[y].size })

	b := stats.NewBinned(10)
	for _, p := range pts {
		b.Add(float64(p.size), p.mean)
	}
	res := &Result{Header: []string{"network size bucket", "networks", "mean improvement", "std across networks"}}
	for _, row := range b.Rows() {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.0f-%.0f", row.X-5, row.X+4), itoa(row.N), f2(row.Mean), f2(row.Std),
		})
	}
	// Correlation between size and mean improvement should be weak.
	var sizes, means []float64
	for _, p := range pts {
		sizes = append(sizes, float64(p.size))
		means = append(means, p.mean)
	}
	r := stats.Spearman(sizes, means)
	if math.IsNaN(r) {
		r = 0
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"size↔improvement Spearman correlation %.2f (paper: roughly flat — large networks also have many short paths)", r))
	return res, nil
}
