package experiments

// snapshot.go makes every experiment accumulator checkpointable: a
// StreamContext can serialize all partial state at a network boundary
// (Snapshot) and a fresh context can load it back (Restore) and continue
// the walk, finalizing byte-identically to an uninterrupted run. The
// shard runner (internal/shard) uses this through internal/checkpoint to
// make crashed streaming runs resumable.
//
// Why the resume is exact, per accumulator family (mirroring merge.go's
// argument): counter/histogram state (the §4 cores, via their own pinned
// snr snapshots) serializes losslessly, and per-network appends (the
// §3/§5/§6 censuses) serialize the exact prefix sequence — continuing
// the walk from the next network reproduces the fleet-order appends.
// Shared-only experiments carry no per-network state and serialize
// nothing. The one exclusion: a MaterializeSamples run retains full raw
// samples, which a checkpoint must never embed — Snapshot refuses it.
//
// A snapshot must be taken from the driver goroutine between Observes
// (or between sample groups), after Flush has quiesced the pipeline —
// Snapshot does both itself.

import (
	"fmt"
	"io"
	"sort"

	"meshlab/internal/binio"
	"meshlab/internal/hidden"
	"meshlab/internal/routing"
)

// streamSnapVersion versions the StreamContext snapshot envelope.
const streamSnapVersion = 1

// snapshotter is implemented by every registered accumulator: serialize
// partial state into the sticky-error writer, and load it back. Restore
// runs on a freshly constructed accumulator of the same registration.
// StreamContext.Snapshot drives it registry-aligned, so a future
// accumulator that forgets to implement it fails loudly there.
type snapshotter interface {
	snapshot(w *binio.Writer)
	restore(r *binio.Reader) error
}

// Shared snapshot helpers.

func writeF64s(w *binio.Writer, vs []float64) {
	w.Int(len(vs))
	for _, v := range vs {
		w.F64(v)
	}
}

func readF64s(r *binio.Reader) []float64 {
	n := r.Count(8)
	if r.Err() != nil || n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.F64()
	}
	return vs
}

func writeIntSlice(w *binio.Writer, vs []int) {
	w.Int(len(vs))
	for _, v := range vs {
		w.Int(v)
	}
}

func readIntSlice(r *binio.Reader) []int {
	n := r.Count(8)
	if r.Err() != nil || n == 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = r.Int()
	}
	return vs
}

func sortedImpKeys[V any](m map[impKey]V) []impKey {
	keys := make([]impKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rate != keys[j].rate {
			return keys[i].rate < keys[j].rate
		}
		return keys[i].variant < keys[j].variant
	})
	return keys
}

func writeImpFloats(w *binio.Writer, m map[impKey][]float64) {
	keys := sortedImpKeys(m)
	w.Int(len(keys))
	for _, k := range keys {
		w.Int(k.rate)
		w.Int(int(k.variant))
		writeF64s(w, m[k])
	}
}

func readImpFloats(r *binio.Reader, dst map[impKey][]float64) {
	n := r.Count(8)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := impKey{rate: r.Int()}
		k.variant = routing.Variant(r.Int())
		dst[k] = readF64s(r)
	}
}

func writeImpInts(w *binio.Writer, m map[impKey]int) {
	keys := sortedImpKeys(m)
	w.Int(len(keys))
	for _, k := range keys {
		w.Int(k.rate)
		w.Int(int(k.variant))
		w.Int(m[k])
	}
}

func readImpInts(r *binio.Reader, dst map[impKey]int) {
	n := r.Count(8)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := impKey{rate: r.Int()}
		k.variant = routing.Variant(r.Int())
		dst[k] = r.Int()
	}
}

func writeIntFloats(w *binio.Writer, m map[int][]float64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Int(k)
		writeF64s(w, m[k])
	}
}

// readIntFloats preserves the lazily-nil convention: zero entries decode
// to a nil map, matching an accumulator that never observed.
func readIntFloats(r *binio.Reader) map[int][]float64 {
	n := r.Count(8)
	if r.Err() != nil || n == 0 {
		return nil
	}
	m := make(map[int][]float64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.Int()
		m[k] = readF64s(r)
	}
	return m
}

func writeCensus(w *binio.Writer, results []*hidden.NetworkResult) {
	w.Int(len(results))
	for _, nr := range results {
		w.String(nr.Net)
		w.String(nr.Env)
		w.Int(nr.Size)
		w.Int(len(nr.Rates))
		for _, rr := range nr.Rates {
			w.Int(rr.RateIdx)
			w.Int(rr.Relevant)
			w.Int(rr.Hidden)
			w.F64(rr.Fraction)
			w.Int(rr.Range)
		}
	}
}

func readCensus(r *binio.Reader) []*hidden.NetworkResult {
	n := r.Count(8)
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]*hidden.NetworkResult, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		nr := &hidden.NetworkResult{Net: r.String(), Env: r.String(), Size: r.Int()}
		m := r.Count(8)
		for j := 0; j < m && r.Err() == nil; j++ {
			nr.Rates = append(nr.Rates, hidden.RateResult{
				RateIdx: r.Int(), Relevant: r.Int(), Hidden: r.Int(),
				Fraction: r.F64(), Range: r.Int(),
			})
		}
		out = append(out, nr)
	}
	return out
}

func (sharedOnly) snapshot(*binio.Writer)      {}
func (sharedOnly) restore(*binio.Reader) error { return nil }

// §3

func (a *fig31Acc) snapshot(w *binio.Writer) {
	writeF64s(w, a.probeStds)
	writeF64s(w, a.linkStds)
	writeF64s(w, a.netStds)
}

func (a *fig31Acc) restore(r *binio.Reader) error {
	a.probeStds = readF64s(r)
	a.linkStds = readF64s(r)
	a.netStds = readF64s(r)
	return r.Err()
}

// §4 — delegate to the chunked snr cores, whose snapshots are pinned by
// their own snapshot→restore→continue oracles.

func (a *fig41Acc) snapshot(w *binio.Writer) { w.Check(a.sets.Snapshot(w)) }
func (a *fig41Acc) restore(r *binio.Reader) error {
	if err := a.sets.Restore(r); err != nil {
		return err
	}
	return r.Err()
}

func (a *coverageAcc) snapshot(w *binio.Writer) {
	w.Int(len(a.scope))
	for _, acc := range a.scope {
		w.Check(acc.Snapshot(w))
	}
}

func (a *coverageAcc) restore(r *binio.Reader) error {
	if n := r.Int(); r.Err() == nil && n != len(a.scope) {
		return fmt.Errorf("coverage snapshot has %d scopes, accumulator %d", n, len(a.scope))
	}
	for _, acc := range a.scope {
		if err := acc.Restore(r); err != nil {
			return err
		}
	}
	return r.Err()
}

func (a *fig44Acc) snapshot(w *binio.Writer) {
	w.Int(len(a.bands))
	for i := range a.bands {
		w.String(a.bands[i].name)
		w.Int(a.bands[i].seen)
		w.Check(a.bands[i].acc.Snapshot(w))
	}
}

func (a *fig44Acc) restore(r *binio.Reader) error {
	if n := r.Int(); r.Err() == nil && n != len(a.bands) {
		return fmt.Errorf("fig4.4 snapshot has %d bands, accumulator %d", n, len(a.bands))
	}
	for i := range a.bands {
		if name := r.String(); r.Err() == nil && name != a.bands[i].name {
			return fmt.Errorf("fig4.4 snapshot band %q at slot %d, accumulator %q", name, i, a.bands[i].name)
		}
		a.bands[i].seen = r.Int()
		if err := a.bands[i].acc.Restore(r); err != nil {
			return err
		}
	}
	return r.Err()
}

func (a *fig45Acc) snapshot(w *binio.Writer) { w.Check(a.tput.Snapshot(w)) }
func (a *fig45Acc) restore(r *binio.Reader) error {
	if err := a.tput.Restore(r); err != nil {
		return err
	}
	return r.Err()
}

func (a *fig46Acc) snapshot(w *binio.Writer) { w.Check(a.strat.Snapshot(w)) }
func (a *fig46Acc) restore(r *binio.Reader) error {
	if err := a.strat.Restore(r); err != nil {
		return err
	}
	return r.Err()
}

func (a *tab41Acc) snapshot(w *binio.Writer) { w.Check(a.strat.Snapshot(w)) }
func (a *tab41Acc) restore(r *binio.Reader) error {
	if err := a.strat.Restore(r); err != nil {
		return err
	}
	return r.Err()
}

// §5

func (a *fig51Acc) snapshot(w *binio.Writer) {
	w.Int(a.nets)
	writeImpFloats(w, a.imps)
	writeImpInts(w, a.none)
	writeImpInts(w, a.small)
}

func (a *fig51Acc) restore(r *binio.Reader) error {
	a.nets = r.Int()
	readImpFloats(r, a.imps)
	readImpInts(r, a.none)
	readImpInts(r, a.small)
	return r.Err()
}

func (a *fig52Acc) snapshot(w *binio.Writer)      { writeIntFloats(w, a.ratios) }
func (a *fig52Acc) restore(r *binio.Reader) error { a.ratios = readIntFloats(r); return r.Err() }

func (a *fig53Acc) snapshot(w *binio.Writer)      { writeIntFloats(w, a.hops) }
func (a *fig53Acc) restore(r *binio.Reader) error { a.hops = readIntFloats(r); return r.Err() }

func (a *fig54Acc) snapshot(w *binio.Writer)      { writeIntFloats(w, a.byHops) }
func (a *fig54Acc) restore(r *binio.Reader) error { a.byHops = readIntFloats(r); return r.Err() }

func (a *fig55Acc) snapshot(w *binio.Writer) {
	w.Int(len(a.pts))
	for _, p := range a.pts {
		w.Int(p.size)
		w.F64(p.mean)
		w.F64(p.std)
	}
}

func (a *fig55Acc) restore(r *binio.Reader) error {
	n := r.Count(24)
	for i := 0; i < n && r.Err() == nil; i++ {
		a.pts = append(a.pts, netPoint{size: r.Int(), mean: r.F64(), std: r.F64()})
	}
	return r.Err()
}

// §6 — censusBG is embedded, so one promoted implementation covers
// fig6.1, fig6.2, and §6.3.

func (c *censusBG) snapshot(w *binio.Writer) { writeCensus(w, c.results) }
func (c *censusBG) restore(r *binio.Reader) error {
	c.results = readCensus(r)
	return r.Err()
}

func (a *abl6tAcc) snapshot(w *binio.Writer) {
	keys := make([]float64, 0, len(a.censuses))
	for k := range a.censuses {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.F64(k)
		writeCensus(w, a.censuses[k])
	}
}

func (a *abl6tAcc) restore(r *binio.Reader) error {
	n := r.Count(8)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.F64()
		a.censuses[k] = readCensus(r)
	}
	return r.Err()
}

// Extensions

func (a *ext4topkAcc) snapshot(w *binio.Writer) {
	w.Int(len(a.bands))
	for i := range a.bands {
		w.String(a.bands[i].name)
		w.Int(a.bands[i].seen)
		w.Check(a.bands[i].acc.Snapshot(w))
	}
}

func (a *ext4topkAcc) restore(r *binio.Reader) error {
	if n := r.Int(); r.Err() == nil && n != len(a.bands) {
		return fmt.Errorf("ext4.topk snapshot has %d bands, accumulator %d", n, len(a.bands))
	}
	for i := range a.bands {
		if name := r.String(); r.Err() == nil && name != a.bands[i].name {
			return fmt.Errorf("ext4.topk snapshot band %q at slot %d, accumulator %q", name, i, a.bands[i].name)
		}
		a.bands[i].seen = r.Int()
		if err := a.bands[i].acc.Restore(r); err != nil {
			return err
		}
	}
	return r.Err()
}

func (a *ext5ettAcc) snapshot(w *binio.Writer) {
	writeF64s(w, a.gains)
	writeIntSlice(w, a.rateWins)
}

func (a *ext5ettAcc) restore(r *binio.Reader) error {
	a.gains = readF64s(r)
	wins := readIntSlice(r)
	if r.Err() == nil && len(wins) != len(a.rateWins) {
		return fmt.Errorf("ext5.ett snapshot has %d rate bins, accumulator %d", len(wins), len(a.rateWins))
	}
	if r.Err() == nil {
		copy(a.rateWins, wins)
	}
	return r.Err()
}

// ext6mac's rng root is keyed by (network name, triple index) and is
// stateless across networks, so it is reconstructed at NewStreamContext
// and deliberately not serialized.
func (a *ext6macAcc) snapshot(w *binio.Writer) {
	writeF64s(w, a.hiddenPens)
	writeF64s(w, a.openPens)
}

func (a *ext6macAcc) restore(r *binio.Reader) error {
	a.hiddenPens = readF64s(r)
	a.openPens = readF64s(r)
	return r.Err()
}

// StreamContext integration.

// Flush blocks until every network already accepted by Observe has been
// applied to the accumulators, and returns the first pipeline error. It
// must be called from the driver goroutine (never concurrently with
// Observe); afterwards the accumulators are quiescent until the next
// Observe/ObserveSampleGroup.
func (s *StreamContext) Flush() error {
	if s.drained {
		return s.loadErr()
	}
	s.start.Do(func() { go s.collect() })
	s.mu.Lock()
	for s.inFlight > 0 {
		s.idle.Wait()
	}
	err := s.err
	s.mu.Unlock()
	return err
}

// Snapshot quiesces the pipeline and serializes every accumulator's
// partial state — the walk's position must be a network boundary (and,
// during a deferred sample walk, a sample-group network boundary), so a
// fresh context restored from these bytes and fed the remaining
// networks/groups finalizes byte-identically to an uninterrupted run.
// The context remains live and may continue observing.
func (s *StreamContext) Snapshot(w io.Writer) error {
	if s.materialize {
		return fmt.Errorf("experiments: Snapshot of a MaterializeSamples run (retained raw samples are not checkpointable)")
	}
	if s.drained || s.finalized {
		return fmt.Errorf("experiments: Snapshot after Drain/Finalize")
	}
	if err := s.Flush(); err != nil {
		return err
	}
	bw := binio.NewWriter(w)
	bw.U8(streamSnapVersion)
	s.mu.Lock()
	networks := s.networks
	s.mu.Unlock()
	bw.Int(networks)
	bw.Bool(s.samplesDone)
	bw.Int(len(s.accs))
	for i, acc := range s.accs {
		sn, ok := acc.(snapshotter)
		if !ok {
			return fmt.Errorf("experiments: %s: accumulator %T does not implement snapshot", s.ids[i], acc)
		}
		bw.String(s.ids[i])
		sn.snapshot(bw)
		if err := bw.Err(); err != nil {
			return fmt.Errorf("experiments: %s: snapshot: %w", s.ids[i], err)
		}
	}
	return bw.Err()
}

// Restore loads a Snapshot into this context, which must be freshly
// constructed (same registry; any worker count) and not yet observed.
// The driver then continues the walk from the first network (and sample
// group) the snapshot had not fully observed. Corrupt or mismatched
// snapshots error without partially mutating accumulator state in ways a
// later walk could silently extend — callers must discard the context on
// error.
func (s *StreamContext) Restore(r io.Reader) error {
	if s.networks != 0 || s.drained || s.finalized || s.samplesDone {
		return fmt.Errorf("experiments: Restore on a used context")
	}
	br := binio.NewReader(r)
	if v := br.U8(); br.Err() == nil && v != streamSnapVersion {
		return fmt.Errorf("experiments: snapshot version %d, want %d", v, streamSnapVersion)
	}
	networks := br.Int()
	samplesDone := br.Bool()
	n := br.Int()
	if err := br.Err(); err != nil {
		return fmt.Errorf("experiments: snapshot: %w", err)
	}
	if networks < 0 {
		return fmt.Errorf("experiments: snapshot claims %d networks", networks)
	}
	if n != len(s.accs) {
		return fmt.Errorf("experiments: snapshot has %d experiments, registry %d", n, len(s.accs))
	}
	for i, acc := range s.accs {
		id := br.String()
		if err := br.Err(); err != nil {
			return fmt.Errorf("experiments: snapshot: %w", err)
		}
		if id != s.ids[i] {
			return fmt.Errorf("experiments: snapshot experiment %q at slot %d, registry %q", id, i, s.ids[i])
		}
		sn, ok := acc.(snapshotter)
		if !ok {
			return fmt.Errorf("experiments: %s: accumulator %T does not implement snapshot", s.ids[i], acc)
		}
		if err := sn.restore(br); err != nil {
			return fmt.Errorf("experiments: %s: restore: %w", s.ids[i], err)
		}
	}
	if err := br.Err(); err != nil {
		return fmt.Errorf("experiments: snapshot: %w", err)
	}
	s.mu.Lock()
	s.networks = networks
	s.mu.Unlock()
	s.samplesDone = samplesDone
	return nil
}
