package experiments

// samplerun.go runs the §4 sample-only experiment population over a
// chunked sample-group stream with no fleet and no materialized samples:
// the population meshanalyze's -sec4 mode executes at table-sized memory.

import (
	"fmt"
	"strings"

	"meshlab/internal/conc"
	"meshlab/internal/dataset"
	"meshlab/internal/mobility"
	"meshlab/internal/snr"
)

// SampleRun executes sample-only experiments (SampleOnly) over a stream
// of per-network sample groups — typically a wire.Reader SampleGroups
// walk — never materializing the samples: peak memory is the
// accumulators' count/histogram tables plus one in-flight group. Results
// are byte-identical to running the same experiments on a Context whose
// samples concatenate the same groups.
type SampleRun struct {
	ids       []string
	accs      []accumulator
	obs       []sampleObserver
	finalized bool
}

// NewSampleRun prepares a chunked run of the given experiment IDs, which
// must all be sample-only (see SampleIDs).
func NewSampleRun(ids []string) (*SampleRun, error) {
	r := &SampleRun{}
	for _, id := range ids {
		i, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
		}
		if !registry[i].sampleOnly {
			return nil, fmt.Errorf("experiments: %s needs the full fleet; a sample run can only execute %s", id, strings.Join(SampleIDs(), ", "))
		}
		acc := registry[i].newAcc()
		so, ok := acc.(sampleObserver)
		if !ok {
			return nil, fmt.Errorf("experiments: %s is marked sample-only but does not consume sample groups", id)
		}
		r.ids = append(r.ids, id)
		r.accs = append(r.accs, acc)
		r.obs = append(r.obs, so)
	}
	return r, nil
}

// ObserveGroup feeds one network's samples to every experiment in the
// run, fanned across the process worker budget (accumulator states are
// independent, so the results are byte-identical at any budget).
func (r *SampleRun) ObserveGroup(band string, samples []snr.Sample) error {
	if r.finalized {
		return fmt.Errorf("experiments: ObserveGroup after Finalize")
	}
	return conc.ForEach(len(r.obs), func(i int) error {
		if err := r.obs[i].observeSampleGroup(band, samples); err != nil {
			return fmt.Errorf("experiments: %s: %w", r.ids[i], err)
		}
		return nil
	})
}

// Finalize renders every experiment in the order the run was built.
func (r *SampleRun) Finalize() ([]*Result, error) {
	if r.finalized {
		return nil, fmt.Errorf("experiments: Finalize called twice")
	}
	r.finalized = true
	results := make([]*Result, len(r.accs))
	err := forEachParallel(len(r.accs), 0, func(i int) error {
		res, err := r.accs[i].finalize(sampleOnlyShared{})
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", r.ids[i], err)
		}
		reg := registry[byID[r.ids[i]]]
		res.ID = reg.id
		res.Title = reg.title
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// sampleOnlyShared is the fleet-less shared state behind a SampleRun:
// sample-only experiments consume groups, not the shared sample slices,
// so the slices error loudly if anything asks.
type sampleOnlyShared struct{}

func (sampleOnlyShared) SamplesBG() ([]snr.Sample, error) {
	return nil, fmt.Errorf("experiments: a chunked sample run does not materialize samples")
}

func (sampleOnlyShared) SamplesN() ([]snr.Sample, error) {
	return nil, fmt.Errorf("experiments: a chunked sample run does not materialize samples")
}

func (sampleOnlyShared) analysis() *mobility.Analysis {
	return mobility.Analyze(nil, mobility.DefaultGap)
}

func (sampleOnlyShared) clientData() []*dataset.ClientData { return nil }
