package experiments

import (
	"fmt"
	"math"
	"sync"

	"meshlab/internal/dataset"
	"meshlab/internal/phy"
	"meshlab/internal/probe"
	"meshlab/internal/radio"
	"meshlab/internal/routing"
	"meshlab/internal/snr"
	"meshlab/internal/stats"
	"meshlab/internal/synth"
	"meshlab/internal/topology"
)

func init() {
	registerShared("abl4.off", "Ablation: per-link environment offsets drive per-link training's advantage", abl4off)
	registerShared("abl4.burst", "Ablation: interference bursts drive optimal-rate churn at fixed SNR", abl4burst)
	registerShared("abl5.sym", "Ablation: link asymmetry drives the ETX1/ETX2 improvement gap", abl5sym)
}

// ablFleets caches ablation fleets process-wide: they are pure functions
// of the variant name (fixed seed, fixed options), independent of the
// context's fleet, so regenerating them per Context would only repeat
// identical synthesis work.
var ablFleets sync.Map // string → *memo[*dataset.Fleet]

// ablationFleet generates (and caches, process-wide) a small probe-only
// b/g fleet with the given radio-parameter mutation. Ablations
// deliberately use their own fixed-seed fleets rather than the context's,
// so that the default and ablated runs differ only in the mutated physics.
func ablationFleet(name string, mutate func(*radio.Params)) (*dataset.Fleet, error) {
	return memoCell[*dataset.Fleet](&ablFleets, name).get(func() (*dataset.Fleet, error) {
		return generateAblationFleet(mutate)
	})
}

func generateAblationFleet(mutate func(*radio.Params)) (*dataset.Fleet, error) {
	opts := synth.Options{
		Seed: 9090,
		Fleet: topology.FleetConfig{
			NumNetworks: 8, NumIndoor: 6, NumOutdoor: 2, NumMixed: 0,
			NumN: 0, NumBoth: 0, MinSize: 8, MaxSize: 16,
			SizeLogMean: 2.3, SizeLogStd: 0.3,
		},
		Probe:       probe.Config{Duration: 3 * 3600, ReportInterval: 300},
		SkipClients: true,
	}
	if mutate != nil {
		opts.RadioParams = func(outdoor bool) radio.Params {
			env := radio.Indoor
			if outdoor {
				env = radio.Outdoor
			}
			p := radio.DefaultParams(env)
			mutate(&p)
			return p
		}
	}
	return synth.Generate(opts)
}

// abl4off removes the hidden per-link environment offsets and measures how
// much of per-link training's advantage over global training survives.
func abl4off(shared) (*Result, error) {
	res := &Result{Header: []string{
		"variant", "exact frac (global)", "exact frac (link)", "advantage (link−global)",
	}}
	var gaps []float64
	for _, v := range []struct {
		name   string
		mutate func(*radio.Params)
	}{
		{"default", nil},
		{"no-offsets", func(p *radio.Params) { p.DisableOffsets = true }},
	} {
		fleet, err := ablationFleet(v.name, v.mutate)
		if err != nil {
			return nil, err
		}
		samples, err := snr.Flatten(fleet.ByBand("bg"))
		if err != nil {
			return nil, err
		}
		pen := snr.Penalty(samples, len(phy.BandBG.Rates), []snr.Scope{snr.Global, snr.Link})
		gap := pen[1].ExactFrac - pen[0].ExactFrac
		gaps = append(gaps, gap)
		res.Rows = append(res.Rows, []string{
			v.name, f2(pen[0].ExactFrac), f2(pen[1].ExactFrac), f2(gap),
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"removing per-link offsets should shrink the link-over-global advantage: %.2f → %.2f",
		gaps[0], gaps[1]))
	return res, nil
}

// abl4burst removes interference bursts and measures how often an SNR's
// optimal rate churns over time on a single link.
func abl4burst(shared) (*Result, error) {
	res := &Result{Header: []string{"variant", "(link,SNR) cells", "frac cells with churn"}}
	var churns []float64
	for _, v := range []struct {
		name   string
		mutate func(*radio.Params)
	}{
		{"default", nil},
		{"no-bursts", func(p *radio.Params) { p.DisableBursts = true }},
	} {
		fleet, err := ablationFleet(v.name, v.mutate)
		if err != nil {
			return nil, err
		}
		samples, err := snr.Flatten(fleet.ByBand("bg"))
		if err != nil {
			return nil, err
		}
		// Count (link, SNR) cells whose Popt was not constant.
		type cellKey struct {
			link string
			snr  int
		}
		first := make(map[cellKey]int)
		churned := make(map[cellKey]bool)
		for i := range samples {
			s := &samples[i]
			k := cellKey{link: snr.Link.Key(s), snr: s.SNR}
			if prev, ok := first[k]; ok {
				if prev != s.Popt {
					churned[k] = true
				}
			} else {
				first[k] = s.Popt
			}
		}
		frac := 0.0
		if len(first) > 0 {
			frac = float64(len(churned)) / float64(len(first))
		}
		churns = append(churns, frac)
		res.Rows = append(res.Rows, []string{v.name, itoa(len(first)), f2(frac)})
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"bursts (plus residual channel noise) cause same-SNR optimal-rate churn: %.2f with bursts vs %.2f without",
		churns[0], churns[1]))
	return res, nil
}

// abl5sym removes per-direction asymmetry and measures the ETX2-over-ETX1
// improvement gap.
func abl5sym(shared) (*Result, error) {
	res := &Result{Header: []string{
		"variant", "mean |log asym ratio|", "median improvement ETX1 @1M", "median improvement ETX2 @1M", "gap",
	}}
	ri := phy.BandBG.RateIndex("1M")
	var gaps, asyms []float64
	for _, v := range []struct {
		name   string
		mutate func(*radio.Params)
	}{
		{"default", nil},
		// Symmetric removes every per-direction divergence source: the
		// explicit direction offset, the per-direction environment
		// offsets, and interference bursts. Residual asymmetry is AR
		// noise plus loss-report sampling error.
		{"symmetric", func(p *radio.Params) {
			p.DisableAsymmetry = true
			p.DisableOffsets = true
			p.DisableBursts = true
		}},
	} {
		fleet, err := ablationFleet(v.name, v.mutate)
		if err != nil {
			return nil, err
		}
		// Asymmetry magnitude: mean |log(fwd/rev)| over measured pairs.
		var asymSum float64
		asymN := 0
		for _, nd := range fleet.ByBand("bg") {
			ms, err := routing.SuccessMatrices(nd)
			if err != nil {
				return nil, err
			}
			for _, ratio := range routing.AsymmetryRatios(ms[ri]) {
				asymSum += math.Abs(math.Log(ratio))
				asymN++
			}
		}
		asym := 0.0
		if asymN > 0 {
			asym = asymSum / float64(asymN)
		}
		asyms = append(asyms, asym)

		med := map[routing.Variant]float64{}
		for _, variant := range []routing.Variant{routing.ETX1, routing.ETX2} {
			var imps []float64
			for _, nd := range fleet.ByBand("bg") {
				if nd.NumAPs() < 5 {
					continue
				}
				ms, err := routing.SuccessMatrices(nd)
				if err != nil {
					return nil, err
				}
				for _, pr := range routing.Improvements(ms[ri], variant) {
					imps = append(imps, pr.Improvement)
				}
			}
			med[variant] = stats.Median(imps)
		}
		gap := med[routing.ETX2] - med[routing.ETX1]
		gaps = append(gaps, gap)
		res.Rows = append(res.Rows, []string{
			v.name, fmt.Sprintf("%.4f", asym),
			fmt.Sprintf("%.4f", med[routing.ETX1]), fmt.Sprintf("%.4f", med[routing.ETX2]),
			fmt.Sprintf("%.4f", gap),
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"disabling asymmetry collapses the measured link asymmetry (%.3f → %.3f; residual comes from independent per-direction sampling noise) and should not widen the ETX2−ETX1 gap (%.3f → %.3f, much of which ETX2's squared link costs cause regardless)",
		asyms[0], asyms[1], gaps[0], gaps[1]))
	return res, nil
}
