// Package experiments maps every table and figure of the thesis's
// evaluation to a runner that regenerates it from a synthetic fleet
// dataset. Each runner returns a Result: a titled table of rows plus
// headline notes, which cmd/meshreport renders into the EXPERIMENTS.md
// report (a generated artifact, not checked in) and the root bench
// harness exercises.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"meshlab/internal/conc"
	"meshlab/internal/dataset"
	"meshlab/internal/hidden"
	"meshlab/internal/mobility"
	"meshlab/internal/routing"
	"meshlab/internal/snr"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment identifier ("fig4.2", "tab4.1", "sec6.3").
	ID string
	// Title describes the paper artifact.
	Title string
	// Header and Rows form the regenerated table.
	Header []string
	Rows   [][]string
	// Notes carries headline scalars and shape checks in prose.
	Notes []string
}

// Format renders the result as aligned plain text. Rows may carry more
// cells than the header; the extra cells render unpadded.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// shared is the fleet-wide derived state an experiment can consume
// without walking networks: the flattened §4 samples, the client
// datasets, and the §7 mobility analysis. Both Context (materialized
// fleet) and StreamContext (single-pass walk) implement it, which is what
// lets one finalize body serve both execution modes byte-identically.
type shared interface {
	SamplesBG() ([]snr.Sample, error)
	SamplesN() ([]snr.Sample, error)
	analysis() *mobility.Analysis
	clientData() []*dataset.ClientData
}

// accumulator is the streaming decomposition of one experiment: observe
// is called once per network in fleet order (with per-network derived
// data available through the NetView), then finalize renders the Result
// from the accumulated state plus the shared fleet-wide state. The
// in-memory Context and the streaming StreamContext both execute
// experiments through this interface, so their tables agree byte for
// byte by construction.
//
// observe and finalize are never called concurrently on one accumulator,
// but an accumulator that also implements preparer must keep prepare free
// of accumulator state: prepare runs on pipeline workers across several
// in-flight networks at once.
type accumulator interface {
	observe(nv *NetView) error
	finalize(sc shared) (*Result, error)
}

// preparer is implemented by accumulators whose per-network work is
// expensive (routing solutions, triple censuses). prepare is invoked on a
// pipeline worker before the ordered observe call and should touch the
// NetView's derived data so the heavy computation happens off the
// serial path; it must not mutate the accumulator.
type preparer interface {
	prepare(nv *NetView) error
}

// sampleObserver is implemented by the §4 accumulators, which consume the
// flattened samples as per-network groups (exactly the unit the wire
// format's flat-sample section stores) instead of one materialized slice.
// A Context feeds the groups by splitting its materialized samples, a
// StreamContext feeds them straight off the walk or the file section —
// the accumulator code is identical, so the two modes agree byte for
// byte while the streaming mode's peak memory is the accumulator's
// count/histogram tables, not the 90%-of-derived-data sample set.
//
// Groups arrive in fleet order within each band; each call carries all
// samples of one network. Band interleaving differs between sources (a
// file section stores bands contiguously, a walk interleaves them) —
// accumulators must keep per-band state independent, which every §4
// table does naturally.
type sampleObserver interface {
	observeSampleGroup(band string, samples []snr.Sample) error
}

// bandFiltered is optionally implemented by sample accumulators that
// consume a single band, so a materialized Context run does not flatten
// a band the experiment would discard (streaming runs flatten per
// network regardless — some accumulator always wants each band).
type bandFiltered interface {
	sampleBand() string
}

// sampleAcc is the embeddable base of §4 accumulators: the network walk
// is skipped entirely (state accrues through observeSampleGroup).
type sampleAcc struct{}

func (sampleAcc) observe(*NetView) error { return nil }

// sharedOnly adapts an experiment that consumes no per-network data —
// §4 sample tables, §7 client mobility, ablations over their own fleets —
// to the accumulator interface. The walk skips these entirely.
type sharedOnly struct {
	run func(shared) (*Result, error)
}

func (sharedOnly) observe(*NetView) error                { return nil }
func (s sharedOnly) finalize(sc shared) (*Result, error) { return s.run(sc) }

// runner executes one experiment: a fresh accumulator per run.
type runner struct {
	id     string
	title  string
	newAcc func() accumulator
	// sampleOnly marks experiments that need nothing beyond the §4
	// samples, the population meshanalyze's sample-streaming mode can run.
	sampleOnly bool
}

var (
	registry []runner
	// byID indexes the registry for O(1) lookup in Run. It is built
	// incrementally by register, which only runs from package init.
	byID = make(map[string]int)
)

func register(id, title string, newAcc func() accumulator) {
	byID[id] = len(registry)
	registry = append(registry, runner{id: id, title: title, newAcc: newAcc})
}

// registerShared wires an experiment that only consumes shared fleet-wide
// state (no per-network walk).
func registerShared(id, title string, run func(shared) (*Result, error)) {
	register(id, title, func() accumulator { return sharedOnly{run: run} })
}

// registerSamples wires a §4 accumulator: an experiment whose only input
// is the flattened samples, consumed as per-network groups
// (sampleObserver), and therefore runnable by the chunked
// sample-streaming mode at table-sized memory.
func registerSamples(id, title string, newAcc func() accumulator) {
	register(id, title, newAcc)
	registry[len(registry)-1].sampleOnly = true
}

// SampleOnly reports whether the experiment consumes only the flattened
// §4 samples, i.e. whether it can run from a dataset file's sample
// section without any fleet (see meshanalyze's -sec4 mode).
func SampleOnly(id string) bool {
	i, ok := byID[id]
	return ok && registry[i].sampleOnly
}

// SampleIDs returns the sample-only experiment identifiers in paper order.
func SampleIDs() []string {
	var out []string
	for _, id := range IDs() {
		if SampleOnly(id) {
			out = append(out, id)
		}
	}
	return out
}

// paperOrder ranks experiment IDs in the order the thesis presents them,
// with ablations last. Registration order depends on file names, so the
// public ordering is made explicit here.
var paperOrder = []string{
	"fig3.1",
	"fig4.1", "fig4.2", "fig4.3", "fig4.4", "fig4.5", "fig4.6", "tab4.1",
	"fig5.1", "fig5.2", "fig5.3", "fig5.4", "fig5.5",
	"fig6.1", "fig6.2", "sec6.3",
	"fig7.1", "fig7.2", "fig7.3", "fig7.4", "fig7.5",
	"abl4.off", "abl4.burst", "abl5.sym", "abl6.t",
	"ext4.topk", "ext5.ett", "ext6.mac",
}

// rankOf maps each known ID to its paper-order position, replacing the
// seed's linear scan per comparison.
var rankOf = func() map[string]int {
	m := make(map[string]int, len(paperOrder))
	for i, id := range paperOrder {
		m[id] = i
	}
	return m
}()

func rank(id string) int {
	if r, ok := rankOf[id]; ok {
		return r
	}
	return len(paperOrder) // unknown IDs sort after the known set
}

// IDs returns all experiment identifiers in paper order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.id
	}
	sort.SliceStable(out, func(a, b int) bool { return rank(out[a]) < rank(out[b]) })
	return out
}

// memo is a per-key memoization cell: the first caller computes, every
// later (or concurrent) caller blocks on the sync.Once and shares the
// result. Unlike a single context-wide mutex, independent keys never
// serialize on each other.
type memo[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (m *memo[T]) get(f func() (T, error)) (T, error) {
	m.once.Do(func() { m.val, m.err = f() })
	return m.val, m.err
}

// memoCell returns the memo stored in m under key, creating it on first use.
func memoCell[T any](m *sync.Map, key any) *memo[T] {
	if v, ok := m.Load(key); ok {
		return v.(*memo[T])
	}
	v, _ := m.LoadOrStore(key, new(memo[T]))
	return v.(*memo[T])
}

// Context holds a fleet and memoized derived data shared across
// experiments, so running the full suite does not recompute the expensive
// routing solutions per figure. Memoization is sharded per key through
// sync.Once cells, so concurrent experiments block each other only when
// they need the same derived value.
type Context struct {
	Fleet *dataset.Fleet

	// workers caps the context's internal fan-out (the §6 census scan);
	// 0 means GOMAXPROCS. RunAllParallel records its pool size here so
	// one -workers knob bounds both experiment scheduling and the
	// per-network scans experiments launch.
	workers atomic.Int32

	samplesBG memo[[]snr.Sample]
	samplesN  memo[[]snr.Sample]
	mob       memo[*mobility.Analysis]
	matrices  sync.Map // *dataset.NetworkData → *memo[map[int]routing.Matrix]
	improved  sync.Map // *dataset.NetworkData → *memo[map[impKey][]routing.PairResult]
	hiddens   sync.Map // float64 threshold → *memo[map[*dataset.NetworkData]*hidden.NetworkResult]
}

// impKey identifies one (rate, ETX variant) routing comparison of a
// network.
type impKey struct {
	rate    int
	variant routing.Variant
}

// NewContext wraps a fleet for experiment runs.
func NewContext(f *dataset.Fleet) *Context {
	return &Context{Fleet: f}
}

// Run executes the experiment with the given ID: a fresh accumulator
// observes every network of the fleet in order (skipped entirely for
// shared-only experiments), then finalizes against the context's shared
// state. Derived per-network data is memoized on the context, so repeated
// or concurrent runs never recompute a routing solution or census.
func (c *Context) Run(id string) (*Result, error) {
	i, ok := byID[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	r := registry[i]
	acc := r.newAcc()
	if so, ok := acc.(sampleObserver); ok {
		// §4 accumulators consume the materialized (or primed) samples as
		// per-network groups — the same sequence a streaming walk feeds.
		if err := c.feedSampleGroups(so); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
	} else if _, pure := acc.(sharedOnly); !pure {
		for _, nd := range c.Fleet.Networks {
			if err := acc.observe(&NetView{nd: nd, d: c}); err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", id, err)
			}
		}
	}
	res, err := acc.finalize(c)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = r.id
	res.Title = r.title
	return res, nil
}

// RunAll executes every experiment in paper order.
func (c *Context) RunAll() ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		res, err := c.Run(id)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RunAllParallel executes every experiment across a bounded worker pool
// (workers ≤ 0 means GOMAXPROCS) and returns the results in the same
// paper order as RunAll. Every runner is deterministic and the context's
// memoization is keyed by what is computed — not by who computes it first —
// so the output tables are byte-identical to a serial run.
func (c *Context) RunAllParallel(workers int) ([]*Result, error) {
	ids := IDs()
	if workers <= 0 {
		workers = conc.Budget()
	}
	c.workers.Store(int32(workers))
	results := make([]*Result, len(ids))
	err := forEachParallel(len(ids), workers, func(i int) error {
		r, err := c.Run(ids[i])
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// workerBound returns the context's internal fan-out cap; without an
// explicit RunAllParallel pool size it follows the process worker budget.
func (c *Context) workerBound() int {
	if w := int(c.workers.Load()); w > 0 {
		return w
	}
	return conc.Budget()
}

// forEachParallel runs fn over 0..n-1 across a bounded worker pool
// (workers ≤ 0 means the process worker budget; ≤ 1 runs serially in
// index order) and returns the error of the lowest index that failed, so
// the reported failure does not depend on worker scheduling.
func forEachParallel(n, workers int, fn func(int) error) error {
	return conc.ForEachN(n, workers, fn)
}

// feedSampleGroups replays the context's per-band samples through a §4
// accumulator as per-network groups, skipping bands a single-band
// accumulator declares it discards (so fig4.1 never flattens the
// 802.11n samples).
func (c *Context) feedSampleGroups(so sampleObserver) error {
	only := ""
	if bf, ok := so.(bandFiltered); ok {
		only = bf.sampleBand()
	}
	for _, band := range []string{"bg", "n"} {
		if only != "" && band != only {
			continue
		}
		var samples []snr.Sample
		var err error
		if band == "bg" {
			samples, err = c.SamplesBG()
		} else {
			samples, err = c.SamplesN()
		}
		if err != nil {
			return err
		}
		if err := snr.ForEachSampleGroup(samples, func(group []snr.Sample) error {
			return so.observeSampleGroup(band, group)
		}); err != nil {
			return err
		}
	}
	return nil
}

// PrimeSamples seeds a band's flattened-sample memo with precomputed
// samples — typically a binary dataset file's flat-sample section (see
// internal/wire) — so the first §4 experiment skips snr.Flatten entirely.
// It must be called before any experiment touches the band and the
// samples must equal what snr.Flatten would produce for the fleet's
// networks of that band; a later call (or one racing a running
// experiment) is a no-op, the first computation wins. Unknown band names
// are ignored.
func (c *Context) PrimeSamples(band string, samples []snr.Sample) {
	switch band {
	case "bg":
		c.samplesBG.once.Do(func() { c.samplesBG.val = samples })
	case "n":
		c.samplesN.once.Do(func() { c.samplesN.val = samples })
	}
}

// SamplesBG returns the flattened 802.11b/g probe samples, memoized.
func (c *Context) SamplesBG() ([]snr.Sample, error) {
	return c.samplesBG.get(func() ([]snr.Sample, error) {
		return snr.Flatten(c.Fleet.ByBand("bg"))
	})
}

// SamplesN returns the flattened 802.11n probe samples, memoized.
func (c *Context) SamplesN() ([]snr.Sample, error) {
	return c.samplesN.get(func() ([]snr.Sample, error) {
		return snr.Flatten(c.Fleet.ByBand("n"))
	})
}

// Matrices returns a network's per-rate mean success matrices, memoized.
func (c *Context) Matrices(nd *dataset.NetworkData) (map[int]routing.Matrix, error) {
	return memoCell[map[int]routing.Matrix](&c.matrices, nd).get(func() (map[int]routing.Matrix, error) {
		return routing.SuccessMatrices(nd)
	})
}

// Improvements returns a network's opportunistic-routing comparison at one
// rate and variant. The first request for a network computes every
// (rate, variant) pair of that network in one pass — the §5 figures sweep
// all of them anyway — so each matrix's all-pairs solution is built
// exactly once per context, no matter how many experiments ask.
func (c *Context) Improvements(nd *dataset.NetworkData, rate int, v routing.Variant) ([]routing.PairResult, error) {
	all, err := memoCell[map[impKey][]routing.PairResult](&c.improved, nd).get(func() (map[impKey][]routing.PairResult, error) {
		ms, err := c.Matrices(nd)
		if err != nil {
			return nil, err
		}
		out := make(map[impKey][]routing.PairResult, 2*len(ms))
		for _, variant := range []routing.Variant{routing.ETX1, routing.ETX2} {
			for ri, m := range ms {
				out[impKey{rate: ri, variant: variant}] = routing.Improvements(m, variant)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return all[impKey{rate: rate, variant: v}], nil
}

// analysis runs the §7 mobility aggregation once per context.
func (c *Context) analysis() *mobility.Analysis {
	a, _ := c.mob.get(func() (*mobility.Analysis, error) {
		return mobility.Analyze(c.clientData(), mobility.DefaultGap), nil
	})
	return a
}

// clientData returns the fleet's client datasets (the shared interface).
func (c *Context) clientData() []*dataset.ClientData { return c.Fleet.Clients }

// derivedSource methods: the Context backs NetViews with its fleet-wide
// memoization, so every observer walking the fleet shares one routing
// solution and one census per network.

func (c *Context) netMatrices(nd *dataset.NetworkData) (map[int]routing.Matrix, error) {
	return c.Matrices(nd)
}

func (c *Context) netImprovements(nd *dataset.NetworkData, rate int, v routing.Variant) ([]routing.PairResult, error) {
	return c.Improvements(nd, rate, v)
}

// netHidden returns one network's §6 census at a threshold. The first
// request for a threshold scans every b/g network of the fleet across the
// context's worker bound — the censuses are per-network independent — so
// a single-figure run gets the same multicore scan the full suite does;
// every later request at that threshold is a map lookup.
func (c *Context) netHidden(nd *dataset.NetworkData, threshold float64) (*hidden.NetworkResult, error) {
	all, err := memoCell[map[*dataset.NetworkData]*hidden.NetworkResult](&c.hiddens, threshold).get(
		func() (map[*dataset.NetworkData]*hidden.NetworkResult, error) {
			nets := c.Fleet.ByBand("bg")
			out := make([]*hidden.NetworkResult, len(nets))
			err := forEachParallel(len(nets), c.workerBound(), func(i int) error {
				ms, err := c.Matrices(nets[i])
				if err != nil {
					return err
				}
				out[i], err = hidden.Census(nets[i], ms, threshold)
				return err
			})
			if err != nil {
				return nil, err
			}
			m := make(map[*dataset.NetworkData]*hidden.NetworkResult, len(nets))
			for i, n := range nets {
				m[n] = out[i]
			}
			return m, nil
		})
	if err != nil {
		return nil, err
	}
	if nr, ok := all[nd]; ok {
		return nr, nil
	}
	// Networks outside the scanned band (the figures only census b/g) are
	// analyzed directly, still through the matrix memo.
	ms, err := c.Matrices(nd)
	if err != nil {
		return nil, err
	}
	return hidden.Census(nd, ms, threshold)
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// itoa formats an int.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// sortedKeys returns sorted integer map keys.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
