// Package experiments maps every table and figure of the thesis's
// evaluation to a runner that regenerates it from a synthetic fleet
// dataset. Each runner returns a Result: a titled table of rows plus
// headline notes, which cmd/meshreport renders into EXPERIMENTS.md and the
// root bench harness exercises.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"meshlab/internal/dataset"
	"meshlab/internal/mobility"
	"meshlab/internal/routing"
	"meshlab/internal/snr"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment identifier ("fig4.2", "tab4.1", "sec6.3").
	ID string
	// Title describes the paper artifact.
	Title string
	// Header and Rows form the regenerated table.
	Header []string
	Rows   [][]string
	// Notes carries headline scalars and shape checks in prose.
	Notes []string
}

// Format renders the result as aligned plain text.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// runner executes one experiment against a context.
type runner struct {
	id    string
	title string
	run   func(*Context) (*Result, error)
}

var registry []runner

func register(id, title string, run func(*Context) (*Result, error)) {
	registry = append(registry, runner{id: id, title: title, run: run})
}

// paperOrder ranks experiment IDs in the order the thesis presents them,
// with ablations last. Registration order depends on file names, so the
// public ordering is made explicit here.
var paperOrder = []string{
	"fig3.1",
	"fig4.1", "fig4.2", "fig4.3", "fig4.4", "fig4.5", "fig4.6", "tab4.1",
	"fig5.1", "fig5.2", "fig5.3", "fig5.4", "fig5.5",
	"fig6.1", "fig6.2", "sec6.3",
	"fig7.1", "fig7.2", "fig7.3", "fig7.4", "fig7.5",
	"abl4.off", "abl4.burst", "abl5.sym", "abl6.t",
	"ext4.topk", "ext5.ett", "ext6.mac",
}

func rank(id string) int {
	for i, v := range paperOrder {
		if v == id {
			return i
		}
	}
	return len(paperOrder) // unknown IDs sort after the known set
}

// IDs returns all experiment identifiers in paper order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.id
	}
	sort.SliceStable(out, func(a, b int) bool { return rank(out[a]) < rank(out[b]) })
	return out
}

// Context holds a fleet and memoized derived data shared across
// experiments, so running the full suite does not recompute the expensive
// routing solutions per figure.
type Context struct {
	Fleet *dataset.Fleet

	mu        sync.Mutex
	samplesBG []snr.Sample
	samplesN  []snr.Sample
	matrices  map[*dataset.NetworkData]map[int]routing.Matrix
	improved  map[impKey][]routing.PairResult
	mob       *mobility.Analysis
	abl       map[string]*dataset.Fleet
}

type impKey struct {
	nd      *dataset.NetworkData
	rate    int
	variant routing.Variant
}

// NewContext wraps a fleet for experiment runs.
func NewContext(f *dataset.Fleet) *Context {
	return &Context{
		Fleet:    f,
		matrices: make(map[*dataset.NetworkData]map[int]routing.Matrix),
		improved: make(map[impKey][]routing.PairResult),
	}
}

// Run executes the experiment with the given ID.
func (c *Context) Run(id string) (*Result, error) {
	for _, r := range registry {
		if r.id == id {
			res, err := r.run(c)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", id, err)
			}
			res.ID = r.id
			res.Title = r.title
			return res, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
}

// RunAll executes every experiment in paper order.
func (c *Context) RunAll() ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		res, err := c.Run(id)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// SamplesBG returns the flattened 802.11b/g probe samples, memoized.
func (c *Context) SamplesBG() ([]snr.Sample, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.samplesBG == nil {
		s, err := snr.Flatten(c.Fleet.ByBand("bg"))
		if err != nil {
			return nil, err
		}
		c.samplesBG = s
	}
	return c.samplesBG, nil
}

// SamplesN returns the flattened 802.11n probe samples, memoized.
func (c *Context) SamplesN() ([]snr.Sample, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.samplesN == nil {
		s, err := snr.Flatten(c.Fleet.ByBand("n"))
		if err != nil {
			return nil, err
		}
		c.samplesN = s
	}
	return c.samplesN, nil
}

// Matrices returns a network's per-rate mean success matrices, memoized.
func (c *Context) Matrices(nd *dataset.NetworkData) (map[int]routing.Matrix, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.matrices[nd]; ok {
		return m, nil
	}
	m, err := routing.SuccessMatrices(nd)
	if err != nil {
		return nil, err
	}
	c.matrices[nd] = m
	return m, nil
}

// Improvements returns a network's opportunistic-routing comparison at one
// rate and variant, memoized.
func (c *Context) Improvements(nd *dataset.NetworkData, rate int, v routing.Variant) ([]routing.PairResult, error) {
	key := impKey{nd: nd, rate: rate, variant: v}
	c.mu.Lock()
	if r, ok := c.improved[key]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()
	ms, err := c.Matrices(nd)
	if err != nil {
		return nil, err
	}
	res := routing.Improvements(ms[rate], v)
	c.mu.Lock()
	c.improved[key] = res
	c.mu.Unlock()
	return res, nil
}

// routableBG returns the b/g networks with at least five APs, the
// population §5 analyzes.
func (c *Context) routableBG() []*dataset.NetworkData {
	var out []*dataset.NetworkData
	for _, nd := range c.Fleet.ByBand("bg") {
		if nd.NumAPs() >= 5 {
			out = append(out, nd)
		}
	}
	return out
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// itoa formats an int.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// sortedKeys returns sorted integer map keys.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
