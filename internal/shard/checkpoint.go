package shard

// checkpoint.go hooks the durable-checkpoint layer (internal/checkpoint)
// into the shard workers: each shard periodically snapshots its
// StreamContext at a network boundary, and a retry — or a fresh process
// started with Options.Resume — seeks straight to the last durable
// position instead of re-walking the shard from zero.

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"meshlab/internal/checkpoint"
	"meshlab/internal/experiments"
)

// ErrCheckpoint marks a failure on the checkpoint write path. It is
// never retried: a run that cannot persist its progress must stop and
// surface the storage problem rather than burn the retry budget
// re-streaming data it cannot checkpoint. (Injected kills from
// faultfs.CrashPlan surface through here, which is what makes the
// crash tests end the first process the way a real crash would.)
var ErrCheckpoint = errors.New("shard: checkpoint failure")

// ckptState is one shard's checkpoint bookkeeping, shared across that
// shard's retries.
type ckptState struct {
	opts  Options
	dir   string
	shard int
	every int

	mu sync.Mutex
	// ident is the manifest identity every save stamps and every load
	// validates. In directory mode it is only known once the shard's
	// plan is built, hence identSet.
	ident    checkpoint.Manifest
	identSet bool
	// allowLoad starts as opts.Resume (a fresh run must not pick up a
	// stale directory unless asked) and turns true after the first save,
	// so in-process retries always resume from their own checkpoints.
	allowLoad bool
	notes     []string
}

func newCkptState(opts Options, shard int) *ckptState {
	every := opts.CheckpointEvery
	if every <= 0 {
		every = 16
	}
	return &ckptState{
		opts:      opts,
		dir:       opts.CheckpointDir,
		shard:     shard,
		every:     every,
		allowLoad: opts.Resume,
	}
}

func (c *ckptState) setIdent(m checkpoint.Manifest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ident = m
	c.identSet = true
}

func (c *ckptState) note(s string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.notes = append(c.notes, s)
}

// takeNotes returns the notes accumulated so far (across retries).
func (c *ckptState) takeNotes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.notes...)
}

// load returns the newest valid checkpoint to resume from, or nil for a
// fresh start. Corrupt generations are skipped with notes (the
// checkpoint loader falls back); an identity mismatch is fatal.
func (c *ckptState) load() (*checkpoint.Loaded, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.allowLoad || !c.identSet {
		return nil, nil
	}
	loaded, notes, err := checkpoint.Load(c.dir, c.shard)
	c.notes = append(c.notes, notes...)
	if err != nil || loaded == nil {
		return nil, err
	}
	if err := loaded.Manifest.Validate(&c.ident); err != nil {
		if errors.Is(err, checkpoint.ErrMismatch) {
			return nil, err
		}
		// Structurally invalid progress: never trust it, start fresh.
		c.notes = append(c.notes, fmt.Sprintf("shard %d: checkpoint g%d invalid (%v), starting fresh",
			c.shard, loaded.Manifest.Generation, err))
		return nil, nil
	}
	return loaded, nil
}

// save writes the next checkpoint generation: identity plus current
// progress plus the accumulator snapshot. Must be called from the
// shard's driver goroutine at a network (walk phase) or sample-group
// boundary; sampleKeys are band-qualified "band/net" group keys.
func (c *ckptState) save(sc *experiments.StreamContext, out *shardOut, netsDone int, samplePhase bool, sampleKeys []string) error {
	c.mu.Lock()
	m := c.ident
	c.mu.Unlock()
	m.NetworksDone = netsDone
	m.SamplePhase = samplePhase
	m.SampleNetsDone = append([]string(nil), sampleKeys...)
	sort.Strings(m.SampleNetsDone)
	m.BG, m.N, m.ProbeSets = out.bg, out.n, out.probeSets
	if _, err := checkpoint.Save(c.dir, c.shard, &m, sc.Snapshot, c.opts.CheckpointHook); err != nil {
		return fmt.Errorf("%w: shard %d: %w", ErrCheckpoint, c.shard, err)
	}
	c.mu.Lock()
	c.allowLoad = true
	c.mu.Unlock()
	return nil
}
