// Package shard runs the streaming experiment suite across network-range
// shards with fault tolerance: each shard streams its contiguous slice of
// the fleet through its own experiments.StreamContext (re-opening the
// dataset with its own file handle), transient I/O failures are retried
// with capped exponential backoff, corrupt shards are quarantined, and
// the surviving partials merge — in shard order — into one context whose
// results are byte-identical to a whole-fleet streaming run.
//
// Two dataset shapes are supported:
//
//   - A single MLF2 file: wire.BuildPlan indexes the network records
//     once, the plan partitions them into contiguous index ranges, and
//     each shard worker seeks straight to its range (and filters the
//     shared flat-sample section down to its own networks). The framing
//     — record length prefixes and group headers — must be intact for
//     planning and filtering; corruption confined to a record body or a
//     group's rows quarantines only the shard that decodes it.
//   - A directory of MLF2 files: each file is one shard, walked whole,
//     in file-name order; client sections concatenate in the same order.
//
// Failure policy: an error that wire.IsCorrupt classifies as data
// corruption is never retried — the bytes are wrong, not unlucky — and
// quarantines the shard. Any other error is presumed transient and
// retried on a fresh file handle up to Options.MaxRetries times; a shard
// that exhausts its budget is reported as such. Without
// Options.AllowPartial any failed shard fails the run, wrapping
// ErrCorruptShard or ErrExhausted so callers can exit with distinct
// codes. With it, the run completes in degraded mode over the surviving
// shards, and the Manifest names every network observed and skipped with
// each failed shard's full error chain.
package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"meshlab/internal/checkpoint"
	"meshlab/internal/conc"
	"meshlab/internal/dataset"
	"meshlab/internal/experiments"
	"meshlab/internal/wire"
)

// ErrCorruptShard marks a run that failed (or degraded) because a shard
// hit data corruption: retrying cannot help, the input needs fixing.
var ErrCorruptShard = errors.New("shard: corrupt input")

// ErrExhausted marks a run that failed because a shard's transient-retry
// budget ran out: the input may be fine, the environment was not.
var ErrExhausted = errors.New("shard: transient retry budget exhausted")

// State classifies how one shard ended.
type State int

const (
	// OK: the shard streamed completely (possibly after retries).
	OK State = iota
	// Quarantined: the shard hit corrupt data and was excluded without
	// retrying.
	Quarantined
	// Exhausted: every attempt failed with a presumed-transient error.
	Exhausted
	// Failed: the shard stopped for a non-transient, non-corrupt reason
	// — a checkpoint-write failure (including an injected kill), a
	// checkpoint identity mismatch, or cancellation. Never dressed up as
	// an exhausted retry budget: the storage or invocation is wrong, not
	// unlucky.
	Failed
)

func (s State) String() string {
	switch s {
	case OK:
		return "ok"
	case Quarantined:
		return "quarantined"
	case Exhausted:
		return "exhausted"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// classify maps a shard attempt's final error to its report state.
func classify(err error) State {
	switch {
	case err == nil:
		return OK
	case wire.IsCorrupt(err):
		return Quarantined
	case errors.Is(err, ErrCheckpoint) || errors.Is(err, checkpoint.ErrMismatch),
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return Failed
	default:
		return Exhausted
	}
}

// Report describes one shard's outcome.
type Report struct {
	// Index is the shard's position (fleet order / file-name order).
	Index int
	// File is the dataset file the shard streamed.
	File string
	// Networks names the shard's networks in fleet order; nil when the
	// shard's plan itself failed before the names were known.
	Networks []string
	// Attempts counts how many times the shard ran (≥ 1).
	Attempts int
	State    State
	// Err is the shard's final error (nil for OK shards), with its full
	// wrap chain intact: wire.Error context, ErrCorrupt/transient cause.
	Err error
	// Checkpoint carries the shard's checkpoint activity notes: resume
	// points taken, and stale or corrupt generations skipped by checksum.
	Checkpoint []string
}

// Manifest is the coverage record of a sharded run: what was observed,
// what was lost, and why — the artifact a degraded-mode run hands the
// user in place of silent omission.
type Manifest struct {
	// Degraded reports whether any shard failed (so the results cover a
	// subset of the dataset).
	Degraded bool
	Shards   []Report
	// Observed and Skipped name the networks covered by, and missing
	// from, the merged results, each in fleet order.
	Observed []string
	Skipped  []string
}

// Format renders the manifest as an indented block, one line per shard
// plus the skipped-network roll-up — the degraded-mode report the CLIs
// print to stderr.
func (m *Manifest) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sharded run: %d shards, %d networks observed, %d skipped\n",
		len(m.Shards), len(m.Observed), len(m.Skipped))
	for i := range m.Shards {
		r := &m.Shards[i]
		nets := fmt.Sprintf("%d networks", len(r.Networks))
		if r.Networks == nil {
			nets = "networks unknown (plan failed)"
		}
		fmt.Fprintf(&b, "  shard %d [%s]: %s, %s, %d attempt(s)\n", r.Index, r.File, r.State, nets, r.Attempts)
		if r.Err != nil {
			fmt.Fprintf(&b, "    cause: %v\n", r.Err)
		}
		for _, note := range r.Checkpoint {
			fmt.Fprintf(&b, "    checkpoint: %s\n", note)
		}
	}
	if len(m.Skipped) > 0 {
		fmt.Fprintf(&b, "  skipped networks: %s\n", strings.Join(m.Skipped, ", "))
	}
	return b.String()
}

// CheckpointNotes reports whether any shard recorded checkpoint
// activity (resumes, or corrupt generations skipped) — the CLIs print
// the manifest when this is true even for non-degraded runs.
func (m *Manifest) CheckpointNotes() bool {
	for i := range m.Shards {
		if len(m.Shards[i].Checkpoint) > 0 {
			return true
		}
	}
	return false
}

// Result is a sharded run's output.
type Result struct {
	// Results holds every experiment's rendered table, in paper order —
	// byte-identical to a whole-fleet streaming run when no shard failed.
	Results []*experiments.Result
	// Meta is the dataset's stamped generation metadata (the first
	// planned shard's, in directory mode).
	Meta dataset.Meta
	// Networks counts the networks the merged results actually cover;
	// NetworksBG, NetworksN, and ProbeSets break the same coverage down
	// for report preambles.
	Networks, NetworksBG, NetworksN int
	ProbeSets                       int
	// FlatSamples reports whether the dataset carried the flat-sample
	// section (every planned shard in directory mode must agree in
	// practice; any one having it sets this).
	FlatSamples bool
	Manifest    *Manifest
}

// Options configures a sharded run.
type Options struct {
	// Shards is the shard count for single-file datasets; ≤ 0 means the
	// process worker budget, and the count is clamped to the network
	// count. Ignored in directory mode (one shard per file).
	Shards int
	// Workers bounds each shard's StreamContext pipeline and sample
	// decode pool; ≤ 0 means the process worker budget.
	Workers int
	// MaxRetries is how many times a shard re-runs after a
	// presumed-transient failure (0 = fail on the first).
	MaxRetries int
	// AllowPartial completes the run in degraded mode when shards fail,
	// instead of failing it; the Manifest records the damage. A run where
	// every shard fails still errors.
	AllowPartial bool
	// Open opens the dataset file; nil means os.Open. Tests inject
	// faults here (faultfs.Injector.WrapOpen).
	Open func(path string) (io.ReadSeekCloser, error)
	// RetryBase is the backoff unit: attempt k sleeps in
	// [base·2ᵏ, 1.5·base·2ᵏ), capped at 64·base. ≤ 0 means 5ms.
	RetryBase time.Duration
	// CheckpointDir enables durable checkpoints: each shard periodically
	// snapshots its accumulator state into this directory (in the
	// internal/checkpoint format) so a crashed or killed run can resume.
	// Empty disables checkpointing.
	CheckpointDir string
	// CheckpointEvery is how many networks a shard fully observes between
	// checkpoints; ≤ 0 means 16.
	CheckpointEvery int
	// Resume seeds each shard from the newest valid checkpoint in
	// CheckpointDir before streaming (fresh start when none exists, with
	// corrupt generations skipped by checksum). A checkpoint whose
	// manifest names a different dataset or shard layout fails the run
	// with checkpoint.ErrMismatch.
	Resume bool
	// CheckpointHook, when non-nil, observes every checkpoint write phase
	// — the crash-injection seam (see faultfs.CrashPlan.Hook). Nil in
	// production.
	CheckpointHook func(phase, path string) error
}

func (o *Options) open() func(string) (io.ReadSeekCloser, error) {
	if o.Open != nil {
		return o.Open
	}
	return func(path string) (io.ReadSeekCloser, error) { return os.Open(path) }
}

func (o *Options) retryBase() time.Duration {
	if o.RetryBase > 0 {
		return o.RetryBase
	}
	return 5 * time.Millisecond
}

// ExitCode maps a sharded-run (or any streaming) error to the CLI exit
// code. This is the single authoritative statement of the contract —
// the CLI doc headers and README mirror it:
//
//	0   success
//	1   any other failure (I/O, internal, checkpoint write)
//	2   usage errors — never reach this function; the CLIs exit 2
//	    directly, including a -resume whose checkpoints name a
//	    different dataset (checkpoint.ErrMismatch)
//	3   corrupt input: wire-level corruption or a quarantined shard
//	4   transient retry budget exhausted
//	130 interrupted: context canceled or deadline exceeded (the shell
//	    convention for SIGINT), checked first so a cancellation that
//	    surfaces wrapped in a shard error still reports as such
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return 130
	case errors.Is(err, ErrCorruptShard) || wire.IsCorrupt(err):
		return 3
	case errors.Is(err, ErrExhausted):
		return 4
	}
	return 1
}

// Run executes the full experiment suite over the dataset at path —
// a single MLF2 file, or a directory of per-shard MLF2 files — sharded
// per opts. ctx cancellation aborts between attempts and during backoff
// sleeps.
func Run(ctx context.Context, path string, opts Options) (*Result, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if info.IsDir() {
		return runDir(ctx, path, opts)
	}
	return runFile(ctx, path, opts)
}

// backoff returns attempt k's sleep: capped exponential with
// deterministic jitter from the shard's own rng, so concurrent shards
// desynchronize without making test runs timing-dependent.
func backoff(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base << uint(attempt)
	if max := base << 6; d > max || d <= 0 {
		d = max
	}
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// sleep waits d or until ctx cancels, whichever first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// shardRng seeds a shard's jitter stream from its index alone, so a
// scenario replays identically at any concurrency.
func shardRng(index int) *rand.Rand {
	return rand.New(rand.NewSource(int64(index)*0x9E3779B9 + 0x6A09E667))
}

// shardOut is one shard's successful yield: the drained context plus
// the dataset tallies a report preamble wants.
type shardOut struct {
	sc               *experiments.StreamContext
	bg, n, probeSets int
	flatSamples      bool
}

// attempt runs one shard's body up to 1+MaxRetries times on fresh file
// handles, returning the shard's yield, the attempt count, and the
// final error. Corruption short-circuits the loop; ctx cancellation
// surfaces as the context's error.
func attempt(ctx context.Context, index int, opts Options, run func() (*shardOut, error)) (*shardOut, int, error) {
	rng := shardRng(index)
	for try := 0; ; try++ {
		if err := ctx.Err(); err != nil {
			return nil, try, err
		}
		out, err := run()
		if err == nil {
			return out, try + 1, nil
		}
		// Corruption, checkpoint-write failures (including injected
		// kills), and checkpoint identity mismatches are not transient:
		// retrying re-streams data without fixing the cause.
		if wire.IsCorrupt(err) || errors.Is(err, ErrCheckpoint) || errors.Is(err, checkpoint.ErrMismatch) || try >= opts.MaxRetries {
			return nil, try + 1, err
		}
		if serr := sleep(ctx, backoff(opts.retryBase(), try, rng)); serr != nil {
			return nil, try + 1, serr
		}
	}
}

// streamRange streams networks [first, first+count) of a planned file
// into a fresh StreamContext, then the flat-sample section filtered to
// those networks, and drains the pipeline. keep holds band-qualified
// "band/name" keys of the shard's dataset entries; nil takes every
// sample group (directory mode, where the shard is the whole file).
//
// With a non-nil ck, the walk checkpoints every ck.every fully-observed
// networks (and, in the sample phase, every ck.every fully-fed sample
// networks), and first resumes from the newest valid checkpoint: the
// restored snapshot replaces the zero state, and the existing
// ResumeNetworks/ResumeSamples seek path skips straight past the work
// already covered instead of re-walking the shard from byte zero.
func streamRange(f io.ReadSeeker, plan *wire.Plan, first, count int, keep map[string]bool, opts Options, ck *ckptState) (*shardOut, error) {
	out := &shardOut{sc: experiments.NewStreamContext(opts.Workers)}
	done := false
	// The collector goroutine must be released on every exit path; a
	// failed attempt's context is abandoned, not merged.
	defer func() {
		if !done {
			out.sc.Drain()
		}
	}()
	hasSamples := plan.SamplesOffset != 0
	out.flatSamples = hasSamples
	if hasSamples {
		out.sc.DeferSamples()
	}

	// Resume bookkeeping: how far a prior run got. resumeDone holds
	// band-qualified "band/net" sample-group keys and is immutable once
	// built (the sample filter reads it from decode goroutines); groups
	// finished by *this* run accumulate separately.
	netsDone := 0
	var resumeDone map[string]bool
	if ck != nil {
		loaded, err := ck.load()
		if err != nil {
			return nil, err
		}
		if loaded != nil {
			if err := out.sc.Restore(bytes.NewReader(loaded.State)); err != nil {
				// The file passed its checksums but the state does not fit
				// this build's registry: never trust it, start fresh on a
				// clean context (Restore may have partially mutated this one).
				ck.note(fmt.Sprintf("shard %d: checkpoint g%d state unusable (%v), starting fresh",
					ck.shard, loaded.Manifest.Generation, err))
				out.sc.Drain()
				out.sc = experiments.NewStreamContext(opts.Workers)
				if hasSamples {
					out.sc.DeferSamples()
				}
			} else {
				m := &loaded.Manifest
				netsDone = m.NetworksDone
				if len(m.SampleNetsDone) > 0 {
					resumeDone = make(map[string]bool, len(m.SampleNetsDone))
					for _, key := range m.SampleNetsDone {
						resumeDone[key] = true
					}
				}
				out.bg, out.n, out.probeSets = m.BG, m.N, m.ProbeSets
				phase := "network walk"
				if m.SamplePhase {
					phase = fmt.Sprintf("sample phase, %d sample groups done", len(m.SampleNetsDone))
				}
				ck.note(fmt.Sprintf("shard %d: resumed from checkpoint g%d (%d/%d networks, %s)",
					ck.shard, m.Generation, netsDone, count, phase))
			}
		}
	}
	sc := out.sc

	if count > 0 && netsDone < count {
		if _, err := f.Seek(plan.Networks[first+netsDone].Offset, io.SeekStart); err != nil {
			return nil, err
		}
		r, err := plan.ResumeNetworks(f, first+netsDone, count-netsDone)
		if err != nil {
			return nil, err
		}
		err = r.EachNetwork(wire.Filter{}, func(nd *dataset.NetworkData) error {
			switch nd.Info.Band {
			case "bg":
				out.bg++
			case "n":
				out.n++
			}
			for _, l := range nd.Links {
				out.probeSets += len(l.Sets)
			}
			if err := sc.Observe(nd); err != nil {
				return err
			}
			netsDone++
			if ck != nil && netsDone%ck.every == 0 && netsDone < count {
				return ck.save(sc, out, netsDone, false, nil)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if hasSamples {
		if _, err := f.Seek(plan.SamplesOffset, io.SeekStart); err != nil {
			return nil, err
		}
		r, err := plan.ResumeSamples(f)
		if err != nil {
			return nil, err
		}
		var filter func(band, net string) bool
		if keep != nil || resumeDone != nil {
			filter = func(band, net string) bool {
				return (keep == nil || keep[band+"/"+net]) && !resumeDone[band+"/"+net]
			}
		}
		// Sample-phase checkpoints land on group boundaries: when a new
		// (band, network) group's first chunk arrives, the previous group
		// is fully fed and joins the done set — and the save happens before
		// observing the new group, so a resumed run's filter excludes
		// exactly the groups whose every sample reached the accumulators.
		// Keys are band-qualified ("band/net"): a network streams one group
		// per band it appears in, so a bare name would wrongly mark its
		// later bands done along with its first.
		var doneThisRun []string
		cur := ""
		pending := 0
		err = r.FilterSampleGroups(opts.Workers, filter, func(g *wire.SampleGroup) error {
			if key := g.Band + "/" + g.Net; ck != nil && key != cur {
				if cur != "" {
					doneThisRun = append(doneThisRun, cur)
					pending++
					if pending >= ck.every {
						all := make([]string, 0, len(doneThisRun)+len(resumeDone))
						all = append(all, doneThisRun...)
						for k := range resumeDone {
							all = append(all, k)
						}
						if err := ck.save(sc, out, netsDone, true, all); err != nil {
							return err
						}
						pending = 0
					}
				}
				cur = key
			}
			return sc.ObserveSampleGroup(g.Band, g.Samples)
		})
		if err != nil {
			return nil, err
		}
		sc.FinishSamples()
	}
	if err := sc.Drain(); err != nil {
		return nil, err
	}
	done = true
	return out, nil
}

// runFile shards one MLF2 file by contiguous network-index ranges.
func runFile(ctx context.Context, path string, opts Options) (*Result, error) {
	open := opts.open()
	// The plan scan is an I/O pass like any shard, with the same retry
	// policy (shard index -1 keeps its jitter stream distinct).
	var plan *wire.Plan
	rng := shardRng(-1)
	for try := 0; ; try++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f, err := open(path)
		if err == nil {
			plan, err = wire.BuildPlan(f)
			f.Close()
			if err == nil {
				break
			}
		}
		if wire.IsCorrupt(err) {
			return nil, fmt.Errorf("%w: planning %s: %w", ErrCorruptShard, path, err)
		}
		if try >= opts.MaxRetries {
			return nil, fmt.Errorf("%w: planning %s after %d attempt(s): %w", ErrExhausted, path, try+1, err)
		}
		if serr := sleep(ctx, backoff(opts.retryBase(), try, rng)); serr != nil {
			return nil, serr
		}
	}

	n := len(plan.Networks)
	k := opts.Shards
	if k <= 0 {
		k = conc.Budget()
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1 // an empty fleet still walks its (empty) sample section once
	}
	tasks := make([]Report, k)
	outs := make([]*shardOut, k)
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		first, next := s*n/k, (s+1)*n/k
		r := &tasks[s]
		r.Index = s
		r.File = path
		r.Networks = make([]string, 0, next-first)
		keep := make(map[string]bool, next-first)
		for _, pn := range plan.Networks[first:next] {
			r.Networks = append(r.Networks, pn.Name)
			// Band-qualified: a dual-band network's bg and n dataset
			// entries share a name, and a shard boundary can fall
			// between them — a bare-name key would make both shards
			// claim both of its sample groups and double-count them.
			keep[pn.Band+"/"+pn.Name] = true
		}
		var ck *ckptState
		if opts.CheckpointDir != "" {
			ck = newCkptState(opts, s)
			ck.setIdent(checkpoint.Manifest{
				Meta:         plan.Meta,
				File:         filepath.Base(path),
				PlanNetworks: n,
				Shard:        s,
				Shards:       k,
				First:        first,
				Count:        next - first,
				FlatSamples:  plan.SamplesOffset != 0,
			})
		}
		wg.Add(1)
		go func(s, first, count int, ck *ckptState) {
			defer wg.Done()
			out, tries, err := attempt(ctx, s, opts, func() (*shardOut, error) {
				f, err := open(path)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				return streamRange(f, plan, first, count, keep, opts, ck)
			})
			r.Attempts = tries
			r.Err = err
			outs[s] = out
			if ck != nil {
				r.Checkpoint = ck.takeNotes()
			}
			r.State = classify(err)
		}(s, first, next-first, ck)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return assemble(tasks, outs, plan.Meta, plan.Clients, opts)
}

// runDir treats each MLF2 file in the directory as one shard, in
// file-name order. Each attempt plans and streams the file whole on a
// fresh handle; client sections concatenate across surviving shards in
// the same order.
func runDir(ctx context.Context, dir string, opts Options) (*Result, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".bin") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("shard: no .bin shard files in %s", dir)
	}
	open := opts.open()
	tasks := make([]Report, len(files))
	outs := make([]*shardOut, len(files))
	plans := make([]*wire.Plan, len(files))
	var wg sync.WaitGroup
	for s, path := range files {
		r := &tasks[s]
		r.Index = s
		r.File = path
		var ck *ckptState
		if opts.CheckpointDir != "" {
			ck = newCkptState(opts, s)
		}
		wg.Add(1)
		go func(s int, path string, ck *ckptState) {
			defer wg.Done()
			out, tries, err := attempt(ctx, s, opts, func() (*shardOut, error) {
				f, err := open(path)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				plan, err := wire.BuildPlan(f)
				if err != nil {
					return nil, err
				}
				plans[s] = plan
				nets := make([]string, 0, len(plan.Networks))
				for _, pn := range plan.Networks {
					nets = append(nets, pn.Name)
				}
				r.Networks = nets
				if ck != nil {
					// The identity is only known once the shard's own plan
					// exists (directory mode plans inside the attempt).
					ck.setIdent(checkpoint.Manifest{
						Meta:         plan.Meta,
						File:         filepath.Base(path),
						PlanNetworks: len(plan.Networks),
						Shard:        s,
						Shards:       len(files),
						First:        0,
						Count:        len(plan.Networks),
						FlatSamples:  plan.SamplesOffset != 0,
					})
				}
				return streamRange(f, plan, 0, len(plan.Networks), nil, opts, ck)
			})
			r.Attempts = tries
			r.Err = err
			outs[s] = out
			if ck != nil {
				r.Checkpoint = ck.takeNotes()
			}
			r.State = classify(err)
		}(s, path, ck)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var meta dataset.Meta
	var clients []*dataset.ClientData
	metaSet := false
	for s := range tasks {
		if plans[s] == nil {
			continue
		}
		if !metaSet {
			meta = plans[s].Meta
			metaSet = true
		}
		if tasks[s].State == OK {
			clients = append(clients, plans[s].Clients...)
		}
	}
	return assemble(tasks, outs, meta, clients, opts)
}

// assemble applies the failure policy and folds the surviving shard
// contexts — in shard order — into the final results.
func assemble(reports []Report, outs []*shardOut, meta dataset.Meta, clients []*dataset.ClientData, opts Options) (*Result, error) {
	// A checkpoint identity mismatch is always fatal — even with
	// AllowPartial — because it means the resume would have blended two
	// datasets, not that data was lost.
	for s := range reports {
		if reports[s].Err != nil && errors.Is(reports[s].Err, checkpoint.ErrMismatch) {
			return nil, fmt.Errorf("shard %d (%s): %w", reports[s].Index, reports[s].File, reports[s].Err)
		}
	}
	m := &Manifest{Shards: reports}
	res := &Result{Meta: meta, Manifest: m}
	var primary *experiments.StreamContext
	var firstErr error
	for s := range reports {
		r := &reports[s]
		if r.State == OK {
			out := outs[s]
			m.Observed = append(m.Observed, r.Networks...)
			res.Networks += len(r.Networks)
			res.NetworksBG += out.bg
			res.NetworksN += out.n
			res.ProbeSets += out.probeSets
			res.FlatSamples = res.FlatSamples || out.flatSamples
			if primary == nil {
				primary = out.sc
			} else if err := primary.Merge(out.sc); err != nil {
				return nil, fmt.Errorf("shard: merging shard %d: %w", s, err)
			}
			continue
		}
		m.Degraded = true
		m.Skipped = append(m.Skipped, r.Networks...)
		if firstErr == nil {
			// Failed shards keep their own classification (checkpoint
			// failure, cancellation) instead of being dressed up as an
			// exhausted retry budget or corruption.
			switch r.State {
			case Quarantined:
				firstErr = fmt.Errorf("%w: shard %d (%s) after %d attempt(s): %w", ErrCorruptShard, r.Index, r.File, r.Attempts, r.Err)
			case Failed:
				firstErr = fmt.Errorf("shard %d (%s) after %d attempt(s): %w", r.Index, r.File, r.Attempts, r.Err)
			default:
				firstErr = fmt.Errorf("%w: shard %d (%s) after %d attempt(s): %w", ErrExhausted, r.Index, r.File, r.Attempts, r.Err)
			}
		}
	}
	if firstErr != nil && !opts.AllowPartial {
		return nil, firstErr
	}
	if primary == nil {
		if firstErr != nil {
			// Degraded mode needs at least one surviving shard to report on.
			return nil, fmt.Errorf("every shard failed: %w", firstErr)
		}
		return nil, fmt.Errorf("shard: no shards ran")
	}
	primary.SetClients(clients)
	results, err := primary.Finalize()
	if err != nil {
		return nil, err
	}
	res.Results = results
	return res, nil
}
