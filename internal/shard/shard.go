// Package shard runs the streaming experiment suite across network-range
// shards with fault tolerance: each shard streams its contiguous slice of
// the fleet through its own experiments.StreamContext (re-opening the
// dataset with its own file handle), transient I/O failures are retried
// with capped exponential backoff, corrupt shards are quarantined, and
// the surviving partials merge — in shard order — into one context whose
// results are byte-identical to a whole-fleet streaming run.
//
// Two dataset shapes are supported:
//
//   - A single MLF2 file: wire.BuildPlan indexes the network records
//     once, the plan partitions them into contiguous index ranges, and
//     each shard worker seeks straight to its range (and filters the
//     shared flat-sample section down to its own networks). The framing
//     — record length prefixes and group headers — must be intact for
//     planning and filtering; corruption confined to a record body or a
//     group's rows quarantines only the shard that decodes it.
//   - A directory of MLF2 files: each file is one shard, walked whole,
//     in file-name order; client sections concatenate in the same order.
//
// Failure policy: an error that wire.IsCorrupt classifies as data
// corruption is never retried — the bytes are wrong, not unlucky — and
// quarantines the shard. Any other error is presumed transient and
// retried on a fresh file handle up to Options.MaxRetries times; a shard
// that exhausts its budget is reported as such. Without
// Options.AllowPartial any failed shard fails the run, wrapping
// ErrCorruptShard or ErrExhausted so callers can exit with distinct
// codes. With it, the run completes in degraded mode over the surviving
// shards, and the Manifest names every network observed and skipped with
// each failed shard's full error chain.
package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"meshlab/internal/conc"
	"meshlab/internal/dataset"
	"meshlab/internal/experiments"
	"meshlab/internal/wire"
)

// ErrCorruptShard marks a run that failed (or degraded) because a shard
// hit data corruption: retrying cannot help, the input needs fixing.
var ErrCorruptShard = errors.New("shard: corrupt input")

// ErrExhausted marks a run that failed because a shard's transient-retry
// budget ran out: the input may be fine, the environment was not.
var ErrExhausted = errors.New("shard: transient retry budget exhausted")

// State classifies how one shard ended.
type State int

const (
	// OK: the shard streamed completely (possibly after retries).
	OK State = iota
	// Quarantined: the shard hit corrupt data and was excluded without
	// retrying.
	Quarantined
	// Exhausted: every attempt failed with a presumed-transient error.
	Exhausted
)

func (s State) String() string {
	switch s {
	case OK:
		return "ok"
	case Quarantined:
		return "quarantined"
	case Exhausted:
		return "exhausted"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Report describes one shard's outcome.
type Report struct {
	// Index is the shard's position (fleet order / file-name order).
	Index int
	// File is the dataset file the shard streamed.
	File string
	// Networks names the shard's networks in fleet order; nil when the
	// shard's plan itself failed before the names were known.
	Networks []string
	// Attempts counts how many times the shard ran (≥ 1).
	Attempts int
	State    State
	// Err is the shard's final error (nil for OK shards), with its full
	// wrap chain intact: wire.Error context, ErrCorrupt/transient cause.
	Err error
}

// Manifest is the coverage record of a sharded run: what was observed,
// what was lost, and why — the artifact a degraded-mode run hands the
// user in place of silent omission.
type Manifest struct {
	// Degraded reports whether any shard failed (so the results cover a
	// subset of the dataset).
	Degraded bool
	Shards   []Report
	// Observed and Skipped name the networks covered by, and missing
	// from, the merged results, each in fleet order.
	Observed []string
	Skipped  []string
}

// Format renders the manifest as an indented block, one line per shard
// plus the skipped-network roll-up — the degraded-mode report the CLIs
// print to stderr.
func (m *Manifest) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sharded run: %d shards, %d networks observed, %d skipped\n",
		len(m.Shards), len(m.Observed), len(m.Skipped))
	for i := range m.Shards {
		r := &m.Shards[i]
		nets := fmt.Sprintf("%d networks", len(r.Networks))
		if r.Networks == nil {
			nets = "networks unknown (plan failed)"
		}
		fmt.Fprintf(&b, "  shard %d [%s]: %s, %s, %d attempt(s)\n", r.Index, r.File, r.State, nets, r.Attempts)
		if r.Err != nil {
			fmt.Fprintf(&b, "    cause: %v\n", r.Err)
		}
	}
	if len(m.Skipped) > 0 {
		fmt.Fprintf(&b, "  skipped networks: %s\n", strings.Join(m.Skipped, ", "))
	}
	return b.String()
}

// Result is a sharded run's output.
type Result struct {
	// Results holds every experiment's rendered table, in paper order —
	// byte-identical to a whole-fleet streaming run when no shard failed.
	Results []*experiments.Result
	// Meta is the dataset's stamped generation metadata (the first
	// planned shard's, in directory mode).
	Meta dataset.Meta
	// Networks counts the networks the merged results actually cover;
	// NetworksBG, NetworksN, and ProbeSets break the same coverage down
	// for report preambles.
	Networks, NetworksBG, NetworksN int
	ProbeSets                       int
	// FlatSamples reports whether the dataset carried the flat-sample
	// section (every planned shard in directory mode must agree in
	// practice; any one having it sets this).
	FlatSamples bool
	Manifest    *Manifest
}

// Options configures a sharded run.
type Options struct {
	// Shards is the shard count for single-file datasets; ≤ 0 means the
	// process worker budget, and the count is clamped to the network
	// count. Ignored in directory mode (one shard per file).
	Shards int
	// Workers bounds each shard's StreamContext pipeline and sample
	// decode pool; ≤ 0 means the process worker budget.
	Workers int
	// MaxRetries is how many times a shard re-runs after a
	// presumed-transient failure (0 = fail on the first).
	MaxRetries int
	// AllowPartial completes the run in degraded mode when shards fail,
	// instead of failing it; the Manifest records the damage. A run where
	// every shard fails still errors.
	AllowPartial bool
	// Open opens the dataset file; nil means os.Open. Tests inject
	// faults here (faultfs.Injector.WrapOpen).
	Open func(path string) (io.ReadSeekCloser, error)
	// RetryBase is the backoff unit: attempt k sleeps in
	// [base·2ᵏ, 1.5·base·2ᵏ), capped at 64·base. ≤ 0 means 5ms.
	RetryBase time.Duration
}

func (o *Options) open() func(string) (io.ReadSeekCloser, error) {
	if o.Open != nil {
		return o.Open
	}
	return func(path string) (io.ReadSeekCloser, error) { return os.Open(path) }
}

func (o *Options) retryBase() time.Duration {
	if o.RetryBase > 0 {
		return o.RetryBase
	}
	return 5 * time.Millisecond
}

// ExitCode maps a sharded-run (or any streaming) error to the CLI
// exit-code contract: 0 success, 3 corrupt input, 4 transient
// exhaustion, 1 anything else. (2 is reserved for usage errors, which
// never reach this function.)
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrCorruptShard) || wire.IsCorrupt(err):
		return 3
	case errors.Is(err, ErrExhausted):
		return 4
	}
	return 1
}

// Run executes the full experiment suite over the dataset at path —
// a single MLF2 file, or a directory of per-shard MLF2 files — sharded
// per opts. ctx cancellation aborts between attempts and during backoff
// sleeps.
func Run(ctx context.Context, path string, opts Options) (*Result, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if info.IsDir() {
		return runDir(ctx, path, opts)
	}
	return runFile(ctx, path, opts)
}

// backoff returns attempt k's sleep: capped exponential with
// deterministic jitter from the shard's own rng, so concurrent shards
// desynchronize without making test runs timing-dependent.
func backoff(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base << uint(attempt)
	if max := base << 6; d > max || d <= 0 {
		d = max
	}
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// sleep waits d or until ctx cancels, whichever first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// shardRng seeds a shard's jitter stream from its index alone, so a
// scenario replays identically at any concurrency.
func shardRng(index int) *rand.Rand {
	return rand.New(rand.NewSource(int64(index)*0x9E3779B9 + 0x6A09E667))
}

// shardOut is one shard's successful yield: the drained context plus
// the dataset tallies a report preamble wants.
type shardOut struct {
	sc               *experiments.StreamContext
	bg, n, probeSets int
	flatSamples      bool
}

// attempt runs one shard's body up to 1+MaxRetries times on fresh file
// handles, returning the shard's yield, the attempt count, and the
// final error. Corruption short-circuits the loop; ctx cancellation
// surfaces as the context's error.
func attempt(ctx context.Context, index int, opts Options, run func() (*shardOut, error)) (*shardOut, int, error) {
	rng := shardRng(index)
	for try := 0; ; try++ {
		if err := ctx.Err(); err != nil {
			return nil, try, err
		}
		out, err := run()
		if err == nil {
			return out, try + 1, nil
		}
		if wire.IsCorrupt(err) || try >= opts.MaxRetries {
			return nil, try + 1, err
		}
		if serr := sleep(ctx, backoff(opts.retryBase(), try, rng)); serr != nil {
			return nil, try + 1, serr
		}
	}
}

// streamRange streams networks [first, first+count) of a planned file
// into a fresh StreamContext, then the flat-sample section filtered to
// those networks, and drains the pipeline. keep is nil to take every
// sample group (directory mode, where the shard is the whole file).
func streamRange(f io.ReadSeeker, plan *wire.Plan, first, count int, keep map[string]bool, opts Options) (*shardOut, error) {
	out := &shardOut{sc: experiments.NewStreamContext(opts.Workers)}
	sc := out.sc
	done := false
	// The collector goroutine must be released on every exit path; a
	// failed attempt's context is abandoned, not merged.
	defer func() {
		if !done {
			sc.Drain()
		}
	}()
	hasSamples := plan.SamplesOffset != 0
	out.flatSamples = hasSamples
	if hasSamples {
		sc.DeferSamples()
	}
	if count > 0 {
		if _, err := f.Seek(plan.Networks[first].Offset, io.SeekStart); err != nil {
			return nil, err
		}
		r, err := plan.ResumeNetworks(f, first, count)
		if err != nil {
			return nil, err
		}
		err = r.EachNetwork(wire.Filter{}, func(nd *dataset.NetworkData) error {
			switch nd.Info.Band {
			case "bg":
				out.bg++
			case "n":
				out.n++
			}
			for _, l := range nd.Links {
				out.probeSets += len(l.Sets)
			}
			return sc.Observe(nd)
		})
		if err != nil {
			return nil, err
		}
	}
	if hasSamples {
		if _, err := f.Seek(plan.SamplesOffset, io.SeekStart); err != nil {
			return nil, err
		}
		r, err := plan.ResumeSamples(f)
		if err != nil {
			return nil, err
		}
		var filter func(string) bool
		if keep != nil {
			filter = func(net string) bool { return keep[net] }
		}
		err = r.FilterSampleGroups(opts.Workers, filter, func(g *wire.SampleGroup) error {
			return sc.ObserveSampleGroup(g.Band, g.Samples)
		})
		if err != nil {
			return nil, err
		}
		sc.FinishSamples()
	}
	if err := sc.Drain(); err != nil {
		return nil, err
	}
	done = true
	return out, nil
}

// runFile shards one MLF2 file by contiguous network-index ranges.
func runFile(ctx context.Context, path string, opts Options) (*Result, error) {
	open := opts.open()
	// The plan scan is an I/O pass like any shard, with the same retry
	// policy (shard index -1 keeps its jitter stream distinct).
	var plan *wire.Plan
	rng := shardRng(-1)
	for try := 0; ; try++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f, err := open(path)
		if err == nil {
			plan, err = wire.BuildPlan(f)
			f.Close()
			if err == nil {
				break
			}
		}
		if wire.IsCorrupt(err) {
			return nil, fmt.Errorf("%w: planning %s: %w", ErrCorruptShard, path, err)
		}
		if try >= opts.MaxRetries {
			return nil, fmt.Errorf("%w: planning %s after %d attempt(s): %w", ErrExhausted, path, try+1, err)
		}
		if serr := sleep(ctx, backoff(opts.retryBase(), try, rng)); serr != nil {
			return nil, serr
		}
	}

	n := len(plan.Networks)
	k := opts.Shards
	if k <= 0 {
		k = conc.Budget()
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1 // an empty fleet still walks its (empty) sample section once
	}
	tasks := make([]Report, k)
	outs := make([]*shardOut, k)
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		first, next := s*n/k, (s+1)*n/k
		r := &tasks[s]
		r.Index = s
		r.File = path
		r.Networks = make([]string, 0, next-first)
		keep := make(map[string]bool, next-first)
		for _, pn := range plan.Networks[first:next] {
			r.Networks = append(r.Networks, pn.Name)
			keep[pn.Name] = true
		}
		wg.Add(1)
		go func(s, first, count int) {
			defer wg.Done()
			out, tries, err := attempt(ctx, s, opts, func() (*shardOut, error) {
				f, err := open(path)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				return streamRange(f, plan, first, count, keep, opts)
			})
			r.Attempts = tries
			r.Err = err
			outs[s] = out
			switch {
			case err == nil:
				r.State = OK
			case wire.IsCorrupt(err):
				r.State = Quarantined
			default:
				r.State = Exhausted
			}
		}(s, first, next-first)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return assemble(tasks, outs, plan.Meta, plan.Clients, opts)
}

// runDir treats each MLF2 file in the directory as one shard, in
// file-name order. Each attempt plans and streams the file whole on a
// fresh handle; client sections concatenate across surviving shards in
// the same order.
func runDir(ctx context.Context, dir string, opts Options) (*Result, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".bin") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("shard: no .bin shard files in %s", dir)
	}
	open := opts.open()
	tasks := make([]Report, len(files))
	outs := make([]*shardOut, len(files))
	plans := make([]*wire.Plan, len(files))
	var wg sync.WaitGroup
	for s, path := range files {
		r := &tasks[s]
		r.Index = s
		r.File = path
		wg.Add(1)
		go func(s int, path string) {
			defer wg.Done()
			out, tries, err := attempt(ctx, s, opts, func() (*shardOut, error) {
				f, err := open(path)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				plan, err := wire.BuildPlan(f)
				if err != nil {
					return nil, err
				}
				plans[s] = plan
				nets := make([]string, 0, len(plan.Networks))
				for _, pn := range plan.Networks {
					nets = append(nets, pn.Name)
				}
				r.Networks = nets
				return streamRange(f, plan, 0, len(plan.Networks), nil, opts)
			})
			r.Attempts = tries
			r.Err = err
			outs[s] = out
			switch {
			case err == nil:
				r.State = OK
			case wire.IsCorrupt(err):
				r.State = Quarantined
			default:
				r.State = Exhausted
			}
		}(s, path)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var meta dataset.Meta
	var clients []*dataset.ClientData
	metaSet := false
	for s := range tasks {
		if plans[s] == nil {
			continue
		}
		if !metaSet {
			meta = plans[s].Meta
			metaSet = true
		}
		if tasks[s].State == OK {
			clients = append(clients, plans[s].Clients...)
		}
	}
	return assemble(tasks, outs, meta, clients, opts)
}

// assemble applies the failure policy and folds the surviving shard
// contexts — in shard order — into the final results.
func assemble(reports []Report, outs []*shardOut, meta dataset.Meta, clients []*dataset.ClientData, opts Options) (*Result, error) {
	m := &Manifest{Shards: reports}
	res := &Result{Meta: meta, Manifest: m}
	var primary *experiments.StreamContext
	var firstErr error
	for s := range reports {
		r := &reports[s]
		if r.State == OK {
			out := outs[s]
			m.Observed = append(m.Observed, r.Networks...)
			res.Networks += len(r.Networks)
			res.NetworksBG += out.bg
			res.NetworksN += out.n
			res.ProbeSets += out.probeSets
			res.FlatSamples = res.FlatSamples || out.flatSamples
			if primary == nil {
				primary = out.sc
			} else if err := primary.Merge(out.sc); err != nil {
				return nil, fmt.Errorf("shard: merging shard %d: %w", s, err)
			}
			continue
		}
		m.Degraded = true
		m.Skipped = append(m.Skipped, r.Networks...)
		if firstErr == nil {
			kind := ErrExhausted
			if r.State == Quarantined {
				kind = ErrCorruptShard
			}
			firstErr = fmt.Errorf("%w: shard %d (%s) after %d attempt(s): %w", kind, r.Index, r.File, r.Attempts, r.Err)
		}
	}
	if firstErr != nil && !opts.AllowPartial {
		return nil, firstErr
	}
	if primary == nil {
		if firstErr != nil {
			// Degraded mode needs at least one surviving shard to report on.
			return nil, fmt.Errorf("every shard failed: %w", firstErr)
		}
		return nil, fmt.Errorf("shard: no shards ran")
	}
	primary.SetClients(clients)
	results, err := primary.Finalize()
	if err != nil {
		return nil, err
	}
	res.Results = results
	return res, nil
}
