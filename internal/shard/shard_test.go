package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"meshlab/internal/wire"
)

func TestBackoffCapAndDeterminism(t *testing.T) {
	const base = 5 * time.Millisecond
	cap := base << 6
	for attempt := 0; attempt < 80; attempt++ {
		d := backoff(base, attempt, shardRng(3))
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", attempt, d)
		}
		if d > cap+cap/2 {
			t.Fatalf("attempt %d: backoff %v exceeds cap+jitter %v", attempt, d, cap+cap/2)
		}
	}
	// Same shard index → same jitter stream: a scenario replays
	// identically at any concurrency.
	a, b := shardRng(7), shardRng(7)
	for i := 0; i < 10; i++ {
		if x, y := backoff(base, i, a), backoff(base, i, b); x != y {
			t.Fatalf("attempt %d: %v != %v from identical rngs", i, x, y)
		}
	}
}

// TestExitCodeMapping pins the full exit-code contract documented on
// ExitCode (0/1/3/4/130 here; 2 is usage and never reaches it).
func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, 0},
		{"other", errors.New("anything else"), 1},
		{"checkpoint-write", fmt.Errorf("shard 1: %w", ErrCheckpoint), 1},
		{"corrupt", fmt.Errorf("shard 2: %w", ErrCorruptShard), 3},
		{"exhausted", fmt.Errorf("plan: %w", ErrExhausted), 4},
		// Raw wire corruption (the -sec4 path) classifies without shard
		// wrapping.
		{"wire-corrupt", fmt.Errorf("walk: %w", wire.ErrCorrupt), 3},
		{"canceled", context.Canceled, 130},
		{"deadline", fmt.Errorf("shard: %w", context.DeadlineExceeded), 130},
		// Cancellation wins even when a shard wrapper chained another
		// classified sentinel around it mid-flight.
		{"canceled-inside-exhausted", fmt.Errorf("%w: shard 0: %w", ErrExhausted, context.Canceled), 130},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Fatalf("%s: ExitCode(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

func TestSleepHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if err := sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("clean sleep errored: %v", err)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{OK: "ok", Quarantined: "quarantined", Exhausted: "exhausted"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
