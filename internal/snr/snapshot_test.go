package snr

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// chunkCore is the shape every chunked §4 core shares; the snapshot
// oracle drives them uniformly.
type chunkCore interface {
	ObserveGroup([]Sample)
	Snapshot(w io.Writer) error
	Restore(r io.Reader) error
}

type snapCase struct {
	name  string
	fresh func() chunkCore
	fin   func(chunkCore) any
}

func snapCases() []snapCase {
	const numRates = 7
	cases := []snapCase{
		{
			name:  "penalty",
			fresh: func() chunkCore { return NewPenaltyAccum(numRates, Scopes) },
			fin:   func(c chunkCore) any { return c.(*PenaltyAccum).FinalizeDists() },
		},
		{
			name:  "tput",
			fresh: func() chunkCore { return NewTputAccum(numRates, 2) },
			fin:   func(c chunkCore) any { return c.(*TputAccum).Finalize() },
		},
		{
			name:  "rateset",
			fresh: func() chunkCore { return NewRateSetAccum() },
			fin:   func(c chunkCore) any { return c.(*RateSetAccum).Finalize() },
		},
		{
			name:  "strategy",
			fresh: func() chunkCore { return NewStrategyAccum(numRates, 20) },
			fin:   func(c chunkCore) any { return c.(*StrategyAccum).Finalize() },
		},
		{
			name:  "topk",
			fresh: func() chunkCore { return NewTopKAccum(numRates, []int{1, 2, 3}) },
			fin:   func(c chunkCore) any { return c.(*TopKAccum).Finalize() },
		},
	}
	for _, sc := range Scopes {
		sc := sc
		cases = append(cases, snapCase{
			name:  "coverage/" + sc.String(),
			fresh: func() chunkCore { return NewCoverageAccum(numRates, sc, 8) },
			fin:   func(c chunkCore) any { return c.(*CoverageAccum).Finalize() },
		})
	}
	return cases
}

// sampleGroups materializes the fixture's per-network groups so the
// oracle can split the stream at a network boundary.
func sampleGroups(t *testing.T) [][]Sample {
	t.Helper()
	var groups [][]Sample
	if err := ForEachSampleGroup(simulated(t), func(g []Sample) error {
		groups = append(groups, g)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(groups) < 3 {
		t.Fatalf("only %d groups; the snapshot oracle needs a mid-stream boundary", len(groups))
	}
	return groups
}

// TestSnapshotRestoreContinueMatchesUninterrupted is the core snapshot
// oracle: for every chunked core, (a) taking a snapshot mid-stream must
// not disturb the run that continues, and (b) restoring the snapshot
// into a fresh core and feeding the remaining groups must finalize
// identically to the uninterrupted run.
func TestSnapshotRestoreContinueMatchesUninterrupted(t *testing.T) {
	groups := sampleGroups(t)
	splits := []int{1, len(groups) / 2, len(groups) - 1}
	for _, tc := range snapCases() {
		t.Run(tc.name, func(t *testing.T) {
			full := tc.fresh()
			for _, g := range groups {
				full.ObserveGroup(g)
			}
			want := tc.fin(full)

			for _, mid := range splits {
				orig := tc.fresh()
				for _, g := range groups[:mid] {
					orig.ObserveGroup(g)
				}
				var buf bytes.Buffer
				if err := orig.Snapshot(&buf); err != nil {
					t.Fatalf("split %d: snapshot: %v", mid, err)
				}

				restored := tc.fresh()
				if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
					t.Fatalf("split %d: restore: %v", mid, err)
				}
				for _, g := range groups[mid:] {
					orig.ObserveGroup(g)
					restored.ObserveGroup(g)
				}
				if got := tc.fin(orig); !reflect.DeepEqual(got, want) {
					t.Errorf("split %d: continued-after-snapshot run diverged from uninterrupted", mid)
				}
				if got := tc.fin(restored); !reflect.DeepEqual(got, want) {
					t.Errorf("split %d: restored run diverged from uninterrupted", mid)
				}
			}
		})
	}
}

// TestRestoreRejectsCorruptSnapshots: truncations and bit flips must
// error contextually, never panic.
func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	groups := sampleGroups(t)
	for _, tc := range snapCases() {
		t.Run(tc.name, func(t *testing.T) {
			src := tc.fresh()
			for _, g := range groups[:len(groups)/2] {
				src.ObserveGroup(g)
			}
			var buf bytes.Buffer
			if err := src.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			snap := buf.Bytes()

			// Every truncation must fail (except length 0 handled below too).
			for cut := 0; cut < len(snap); cut += 1 + len(snap)/64 {
				if err := tc.fresh().Restore(bytes.NewReader(snap[:cut])); err == nil {
					t.Fatalf("truncation at %d/%d restored without error", cut, len(snap))
				}
			}
			// A version flip must fail.
			flipped := append([]byte(nil), snap...)
			flipped[0] ^= 0xFF
			if err := tc.fresh().Restore(bytes.NewReader(flipped)); err == nil {
				t.Fatal("version-flipped snapshot restored without error")
			}
		})
	}
}

// TestRestoreRejectsShapeMismatch: a snapshot taken under one
// construction must not restore into a differently shaped core.
func TestRestoreRejectsShapeMismatch(t *testing.T) {
	groups := sampleGroups(t)
	src := NewPenaltyAccum(7, Scopes)
	for _, g := range groups[:2] {
		src.ObserveGroup(g)
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := NewPenaltyAccum(5, Scopes).Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("rate-count mismatch restored without error")
	}
	if err := NewPenaltyAccum(7, []Scope{Global}).Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("scope-set mismatch restored without error")
	}
}
