package snr

import (
	"testing"
)

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		First: "first", MostRecent: "most-recent", Subsampled: "subsampled", All: "all",
	}
	for st, want := range names {
		if st.String() != want {
			t.Fatalf("%d.String() = %q", st, st.String())
		}
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Fatal("unknown strategy formatting")
	}
}

func TestReplayStrategiesOnSimulatedData(t *testing.T) {
	samples := simulated(t)
	results := ReplayStrategies(samples, 7, 35)
	if len(results) != len(Strategies) {
		t.Fatalf("got %d results", len(results))
	}
	byStrat := map[Strategy]*StrategyResult{}
	for i := range results {
		byStrat[results[i].Strategy] = &results[i]
	}

	// All strategies should perform comparably (Figure 4.6's finding) —
	// within 12 percentage points of each other overall, and all well
	// above chance (1/7).
	var accs []float64
	for _, st := range Strategies {
		a := byStrat[st].OverallAccuracy()
		if a < 0.4 {
			t.Fatalf("%s overall accuracy %v too low", st, a)
		}
		accs = append(accs, a)
	}
	min, max := accs[0], accs[0]
	for _, a := range accs {
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	if max-min > 0.12 {
		t.Fatalf("strategies should perform comparably; spread %v (accs %v)", max-min, accs)
	}

	// Cost model orderings from Table 4.1: first updates least; all
	// updates most; first and most-recent store one point per SNR while
	// all stores every probe.
	if byStrat[First].Updates >= byStrat[All].Updates {
		t.Fatal("first strategy should update far less than all")
	}
	if byStrat[Subsampled].Updates >= byStrat[All].Updates {
		t.Fatal("subsampled should update less than all")
	}
	if byStrat[First].MemEntries != byStrat[First].Updates {
		t.Fatal("first stores exactly one point per update")
	}
	if byStrat[MostRecent].MemEntries >= byStrat[All].MemEntries {
		t.Fatal("most-recent should store less than all")
	}
	if byStrat[All].MemEntries != byStrat[All].Updates {
		t.Fatal("all stores every update")
	}
}

func TestReplayPredictBeforeUpdate(t *testing.T) {
	// Two probe sets on one link at the same SNR: the first must be
	// skipped (no data yet), the second predicted from the first.
	mk := func(tm int32, popt int) Sample {
		return Sample{Net: "n", From: 0, To: 1, T: tm, SNR: 20, Popt: popt, Tput: make([]float64, 7)}
	}
	samples := []Sample{mk(300, 3), mk(600, 3), mk(900, 5)}
	results := ReplayStrategies(samples, 7, 10)
	for _, r := range results {
		if r.Skipped != 1 {
			t.Fatalf("%s: skipped %d, want 1 (first sample has no history)", r.Strategy, r.Skipped)
		}
		// Prediction at history 1 (sample 2, popt 3 after seeing 3) hits;
		// at history 2 (sample 3, popt 5 after seeing 3,3) misses.
		if r.Hits[1] != 1 || r.Total[1] != 1 {
			t.Fatalf("%s: history-1 hits=%d total=%d", r.Strategy, r.Hits[1], r.Total[1])
		}
		if r.Hits[2] != 0 || r.Total[2] != 1 {
			t.Fatalf("%s: history-2 hits=%d total=%d", r.Strategy, r.Hits[2], r.Total[2])
		}
	}
}

func TestReplayFirstVsRecentSemantics(t *testing.T) {
	// popt sequence 3, 5, ? at one SNR: after two sets, First predicts
	// 3, MostRecent predicts 5.
	mk := func(tm int32, popt int) Sample {
		return Sample{Net: "n", From: 0, To: 1, T: tm, SNR: 20, Popt: popt, Tput: make([]float64, 7)}
	}
	samples := []Sample{mk(300, 3), mk(600, 5), mk(900, 5)}
	results := ReplayStrategies(samples, 7, 10)
	byStrat := map[Strategy]*StrategyResult{}
	for i := range results {
		byStrat[results[i].Strategy] = &results[i]
	}
	// Third sample (history 2, actual 5): First predicts 3 (miss),
	// MostRecent predicts 5 (hit).
	if byStrat[First].Hits[2] != 0 {
		t.Fatal("first strategy should still predict the first value")
	}
	if byStrat[MostRecent].Hits[2] != 1 {
		t.Fatal("most-recent strategy should predict the latest value")
	}
}

func TestReplayHistoryCap(t *testing.T) {
	mk := func(tm int32, popt int) Sample {
		return Sample{Net: "n", From: 0, To: 1, T: tm, SNR: 20, Popt: popt, Tput: make([]float64, 7)}
	}
	var samples []Sample
	for i := 0; i < 30; i++ {
		samples = append(samples, mk(int32(300*(i+1)), 3))
	}
	results := ReplayStrategies(samples, 7, 5)
	r := results[0]
	total := 0
	for _, n := range r.Total {
		total += n
	}
	if total != 29 {
		t.Fatalf("total predictions %d, want 29", total)
	}
	if r.Total[5] != 25 {
		t.Fatalf("capped bucket holds %d, want 25", r.Total[5])
	}
}

func TestAccuracyAccessors(t *testing.T) {
	r := StrategyResult{Hits: []int{0, 3}, Total: []int{0, 4}}
	if r.Accuracy(1) != 0.75 {
		t.Fatalf("Accuracy(1) = %v", r.Accuracy(1))
	}
	if r.Accuracy(0) != -1 || r.Accuracy(7) != -1 {
		t.Fatal("empty buckets should report -1")
	}
	if r.OverallAccuracy() != 0.75 {
		t.Fatalf("overall = %v", r.OverallAccuracy())
	}
	empty := StrategyResult{Hits: []int{0}, Total: []int{0}}
	if empty.OverallAccuracy() != -1 {
		t.Fatal("no predictions should report -1")
	}
}

func BenchmarkReplayStrategies(b *testing.B) {
	samples := simulated(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ReplayStrategies(samples, 7, 35)
	}
}
