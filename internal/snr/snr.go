// Package snr implements the thesis's §4 bit-rate analysis: how well the
// SNR of a link predicts its optimal bit rate, as a function of how
// specifically the SNR→rate look-up table is trained (globally, per
// network, per AP, or per link), what the throughput penalty of a
// suboptimal choice is, and how cheap online table-building strategies
// compare.
package snr

import (
	"fmt"
	"sort"
	"strconv"

	"meshlab/internal/dataset"
	"meshlab/internal/phy"
)

// Sample is one probe set flattened for rate analysis: the per-rate
// throughputs and the optimal rate Popt (the rate maximizing
// bitrate × success, §4.1).
type Sample struct {
	// Net is the network name; From/To identify the directed link.
	Net      string
	From, To int
	// T is the probe set's time and SNR its integer median SNR.
	T   int32
	SNR int
	// Tput is the throughput per band rate index; rates missing from the
	// probe set hold NaN-free zero (they delivered nothing).
	Tput []float64
	// Popt is the rate index with the highest throughput, and BestTput
	// that throughput.
	Popt     int
	BestTput float64
}

// Flatten converts probe data from networks (all on the same band) into
// samples, skipping probe sets where no rate delivered anything. The band
// of the first network is used for rate resolution. For a network-at-a-time
// source (e.g. a streaming wire.Reader) use Flattener, which produces the
// same samples without requiring the whole fleet in memory.
func Flatten(nets []*dataset.NetworkData) ([]Sample, error) {
	if len(nets) == 0 {
		return nil, nil
	}
	band, err := nets[0].Band()
	if err != nil {
		return nil, err
	}
	// Size the sample list and one flat throughput backing array up front:
	// per-sample Tput allocations dominated this function's cost.
	total := 0
	for _, nd := range nets {
		for _, l := range nd.Links {
			total += len(l.Sets)
		}
	}
	nr := len(band.Rates)
	out := make([]Sample, 0, total)
	flat := make([]float64, total*nr)
	off := 0
	for _, nd := range nets {
		if nd.Info.Band != band.Name {
			return nil, fmt.Errorf("snr: mixed bands %q and %q", band.Name, nd.Info.Band)
		}
		out, off = flattenNetwork(out, flat, off, nd, band)
	}
	return out, nil
}

// flattenNetwork appends one network's flattened probe sets to out, backing
// each sample's Tput row with flat[off:]. flat must have capacity for one
// row per remaining probe set. It returns the grown slice and new offset.
func flattenNetwork(out []Sample, flat []float64, off int, nd *dataset.NetworkData, band phy.Band) ([]Sample, int) {
	nr := len(band.Rates)
	for _, l := range nd.Links {
		for _, ps := range l.Sets {
			s := Sample{
				Net: nd.Info.Name, From: l.From, To: l.To,
				T: ps.T, SNR: int(ps.SNR),
				Tput: flat[off : off+nr : off+nr],
				Popt: -1,
			}
			for _, o := range ps.Obs {
				tp := band.Rates[o.RateIdx].Throughput(float64(o.Loss))
				s.Tput[o.RateIdx] = tp
				if tp > s.BestTput {
					s.BestTput = tp
					s.Popt = int(o.RateIdx)
				}
			}
			if s.Popt < 0 || s.BestTput <= 0 {
				// Discard: re-zero the written cells so the chunk can
				// back the next probe set.
				for _, o := range ps.Obs {
					s.Tput[o.RateIdx] = 0
				}
				continue
			}
			off += nr
			out = append(out, s)
		}
	}
	return out, off
}

// Flattener is the incremental form of Flatten: networks are added one at
// a time and only the flattened samples are retained, so a streaming
// caller's peak memory is one network plus the samples — not the fleet.
// Adding the networks of a band in fleet order yields exactly the samples
// Flatten returns for that band.
type Flattener struct {
	band    phy.Band
	samples []Sample
}

// NewFlattener returns a Flattener for one band's networks.
func NewFlattener(band phy.Band) *Flattener {
	return &Flattener{band: band}
}

// Add flattens one network's probe sets. The network must be on the
// flattener's band.
func (f *Flattener) Add(nd *dataset.NetworkData) error {
	if nd.Info.Band != f.band.Name {
		return fmt.Errorf("snr: flattener for band %q got network %s on band %q",
			f.band.Name, nd.Info.Name, nd.Info.Band)
	}
	total := 0
	for _, l := range nd.Links {
		total += len(l.Sets)
	}
	if total == 0 {
		return nil
	}
	// One backing array per network: the Tput rows of a network's samples
	// stay contiguous, mirroring Flatten's layout at network granularity.
	flat := make([]float64, total*len(f.band.Rates))
	f.samples, _ = flattenNetwork(f.samples, flat, 0, nd, f.band)
	return nil
}

// Samples returns every sample added so far.
func (f *Flattener) Samples() []Sample { return f.samples }

// Scope is the specificity of a look-up table's training environment
// (§4.1's three options plus the global base case).
type Scope int

const (
	// Global trains one table over every link in every network.
	Global Scope = iota
	// Network trains one table per network.
	Network
	// AP trains one table per sending AP.
	AP
	// Link trains one table per directed link.
	Link
)

// String names the scope as the thesis figures do.
func (s Scope) String() string {
	switch s {
	case Global:
		return "global"
	case Network:
		return "network"
	case AP:
		return "ap"
	case Link:
		return "link"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// Scopes lists all four scopes in increasing specificity.
var Scopes = []Scope{Global, Network, AP, Link}

// Key returns the table-instance key a sample belongs to under the scope.
// It is called once per sample per table operation, so it avoids
// fmt.Sprintf in favor of direct string building.
func (s Scope) Key(sm *Sample) string {
	switch s {
	case Global:
		return ""
	case Network:
		return sm.Net
	case AP:
		return sm.Net + "/" + strconv.Itoa(sm.From)
	default:
		return sm.Net + "/" + strconv.Itoa(sm.From) + ">" + strconv.Itoa(sm.To)
	}
}

// instKey identifies one table instance without building a string: maps
// hash the struct directly, which keeps the per-sample Train/Lookup path
// allocation-free. Fields unused by the table's scope stay zero.
type instKey struct {
	net      string
	from, to int32
}

// instKey returns the comparable table-instance key for the scope.
func (s Scope) instKey(sm *Sample) instKey {
	switch s {
	case Global:
		return instKey{}
	case Network:
		return instKey{net: sm.Net}
	case AP:
		return instKey{net: sm.Net, from: int32(sm.From)}
	default:
		return instKey{net: sm.Net, from: int32(sm.From), to: int32(sm.To)}
	}
}

// Table is an SNR→bit-rate look-up table family: one distribution of
// observed optimal rates per (instance key, SNR).
type Table struct {
	// Scope is the training specificity.
	Scope Scope
	// NumRates is the band's rate count.
	NumRates int

	counts map[instKey]map[int][]int
}

// Train builds the look-up tables for the given scope from samples.
func Train(samples []Sample, numRates int, scope Scope) *Table {
	t := &Table{Scope: scope, NumRates: numRates, counts: make(map[instKey]map[int][]int)}
	for i := range samples {
		t.Add(&samples[i])
	}
	return t
}

// Add incorporates one sample into the table.
func (t *Table) Add(sm *Sample) {
	key := t.Scope.instKey(sm)
	bySNR, ok := t.counts[key]
	if !ok {
		bySNR = make(map[int][]int)
		t.counts[key] = bySNR
	}
	c, ok := bySNR[sm.SNR]
	if !ok {
		c = make([]int, t.NumRates)
		bySNR[sm.SNR] = c
	}
	c[sm.Popt]++
}

// Lookup predicts the optimal rate index for a sample's key and SNR: the
// most frequently optimal rate seen in training, ties broken toward the
// lower rate index for determinism. ok is false when the table has no data
// for that (key, SNR).
func (t *Table) Lookup(sm *Sample) (rateIdx int, ok bool) {
	bySNR, ok := t.counts[t.Scope.instKey(sm)]
	if !ok {
		return 0, false
	}
	c, ok := bySNR[sm.SNR]
	if !ok {
		return 0, false
	}
	best, bestN := -1, 0
	for ri, n := range c {
		if n > bestN {
			best, bestN = ri, n
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Instances returns the number of table instances (1 for Global, #networks
// for Network, …).
func (t *Table) Instances() int { return len(t.counts) }

// Entries returns the total number of (instance, SNR) cells.
func (t *Table) Entries() int {
	total := 0
	for _, bySNR := range t.counts {
		total += len(bySNR)
	}
	return total
}

// coverageNeeds returns the minimum number of distinct rates whose
// combined optimal-frequency reaches 50%, 80%, and 95% of the cell's
// observations. One ascending sort into the caller's scratch buffer
// serves all three levels; the walk runs from the largest count down.
func coverageNeeds(c []int, total int, scratch []int) (n50, n80, n95 int) {
	if total == 0 {
		return 0, 0, 0
	}
	s := scratch[:len(c)]
	copy(s, c)
	sort.Ints(s)
	need50 := 0.50 * float64(total)
	need80 := 0.80 * float64(total)
	need95 := 0.95 * float64(total)
	covered, rates := 0.0, 0
	n50, n80, n95 = -1, -1, -1
	// total is the sum of c (the caller computes it from the same cell),
	// so the descending walk always resolves every level before running
	// out of counts: covered reaches exactly float64(total) ≥ need95.
	for i := len(s) - 1; n95 < 0; i-- {
		covered += float64(s[i])
		rates++
		if n50 < 0 && covered >= need50 {
			n50 = rates
		}
		if n80 < 0 && covered >= need80 {
			n80 = rates
		}
		if n95 < 0 && covered >= need95 {
			n95 = rates
		}
	}
	return n50, n80, n95
}

// CoverageRow is one point of Figures 4.2/4.3: at a given SNR, the average
// (over table instances with data at that SNR) number of unique rates
// needed to pick the optimal rate p of the time.
type CoverageRow struct {
	SNR int
	// NeedP50, NeedP80, NeedP95 are the mean rates needed for 50%, 80%,
	// and 95% coverage.
	NeedP50, NeedP80, NeedP95 float64
	// MaxP95 is the worst instance's 95% requirement.
	MaxP95 int
	// Cells is the number of instances contributing at this SNR.
	Cells int
}

// Coverage computes the unique-rates-needed curves for a trained table.
// Cells with fewer than minObs observations are ignored (they cannot
// estimate a 95th percentile). The fold is shared with the incremental
// CoverageAccum, which produces identical rows one network group at a
// time.
func (t *Table) Coverage(minObs int) []CoverageRow {
	agg := newCoverageAgg(t.NumRates, minObs)
	for _, inst := range t.counts {
		for snrVal, c := range inst {
			agg.addCell(snrVal, c)
		}
	}
	return agg.rows()
}

// OptimalRateSets returns, per SNR, the set of rate indices that were ever
// optimal anywhere in the data (Figure 4.1). It is the batch form of
// RateSetAccum.
func OptimalRateSets(samples []Sample) map[int][]int {
	acc := NewRateSetAccum()
	acc.ObserveGroup(samples)
	return acc.Finalize()
}

// PenaltyResult is the per-scope outcome of the §4.3 analysis.
type PenaltyResult struct {
	Scope Scope
	// Diffs holds, per evaluated probe set, the throughput lost by using
	// the table's prediction instead of the optimal rate (Mbit/s ≥ 0),
	// sorted ascending — the distribution is what Figure 4.4 plots, and a
	// pre-sorted sample lets stats.NewCDF skip its own sort.
	Diffs []float64
	// ExactFrac is the fraction of probe sets where the prediction was
	// exactly optimal.
	ExactFrac float64
}

// penaltyCell identifies one (table instance, SNR) training cell under a
// scope. It composes instKey so the scope-keying rules live in exactly
// one place (Scope.instKey).
type penaltyCell struct {
	instKey
	snr int32
}

func (s Scope) penaltyCell(sm *Sample) penaltyCell {
	return penaltyCell{instKey: s.instKey(sm), snr: int32(sm.SNR)}
}

// Penalty trains a table at each scope on the full sample set and replays
// every sample through it, recording the throughput difference between the
// optimal rate and the predicted rate (Figure 4.4). Training and
// evaluation use the same data, matching the thesis's in-sample
// methodology. It is the batch form of PenaltyAccum: the samples are fed
// through the incremental core one network group at a time (scopes fan
// across the process worker budget inside the core), then the counted
// distributions are materialized into sorted Diffs slices. Results come
// back in scope argument order, so the output is deterministic.
//
// The samples must be in Flatten order — each network's samples
// contiguous, each directed link's samples contiguous within it — which
// everything that produces samples in this repository (Flatten,
// Flattener, the wire section) guarantees. Reordered input would
// fragment the incremental core's per-network resolution.
func Penalty(samples []Sample, numRates int, scopes []Scope) []PenaltyResult {
	acc := NewPenaltyAccum(numRates, scopes)
	_ = ForEachSampleGroup(samples, func(group []Sample) error {
		acc.ObserveGroup(group)
		return nil
	})
	return acc.Finalize()
}

// TputPoint is one (rate, SNR) cell of Figure 4.5.
type TputPoint struct {
	RateIdx int
	SNR     int
	Median  float64
	Q1, Q3  float64
	N       int
}

// ThroughputVsSNR aggregates per-rate throughput by SNR (Figure 4.5).
// Only cells with at least minObs observations are returned.
//
// Every sample contributes one observation to each rate's cell at its
// SNR, so cell sizes are a pure function of the per-SNR sample histogram.
// The cells live in one flat counted-layout buffer (rate-major, then SNR)
// instead of a map of append-grown slices: count, prefix-sum, fill, then
// one sort per cell.
func ThroughputVsSNR(samples []Sample, numRates, minObs int) []TputPoint {
	if len(samples) == 0 || numRates == 0 {
		return nil
	}
	minSNR, maxSNR := samples[0].SNR, samples[0].SNR
	for i := range samples {
		if s := samples[i].SNR; s < minSNR {
			minSNR = s
		} else if s > maxSNR {
			maxSNR = s
		}
	}
	width := maxSNR - minSNR + 1
	hist := make([]int, width)
	for i := range samples {
		hist[samples[i].SNR-minSNR]++
	}
	nCells := numRates * width
	offs := make([]int, nCells+1)
	pos := 0
	for ri := 0; ri < numRates; ri++ {
		for s := 0; s < width; s++ {
			offs[ri*width+s] = pos
			pos += hist[s]
		}
	}
	offs[nCells] = pos
	vals := make([]float64, pos)
	fill := make([]int, nCells)
	copy(fill, offs[:nCells])
	for i := range samples {
		s := &samples[i]
		base := s.SNR - minSNR
		for ri := 0; ri < numRates; ri++ {
			c := ri*width + base
			vals[fill[c]] = s.Tput[ri]
			fill[c]++
		}
	}
	occupied := 0
	for _, h := range hist {
		if h >= minObs && h > 0 {
			occupied++
		}
	}
	out := make([]TputPoint, 0, occupied*numRates)
	for ri := 0; ri < numRates; ri++ {
		for s := 0; s < width; s++ {
			cell := vals[offs[ri*width+s]:offs[ri*width+s+1]]
			if len(cell) == 0 || len(cell) < minObs {
				continue
			}
			sort.Float64s(cell)
			q := func(p float64) float64 {
				pos := p * float64(len(cell)-1)
				lo := int(pos)
				hi := lo
				if lo+1 < len(cell) {
					hi = lo + 1
				}
				frac := pos - float64(lo)
				return cell[lo]*(1-frac) + cell[hi]*frac
			}
			out = append(out, TputPoint{
				RateIdx: ri, SNR: minSNR + s,
				Median: q(0.5), Q1: q(0.25), Q3: q(0.75), N: len(cell),
			})
		}
	}
	return out
}

// Band re-exports the band a caller flattened against, for convenience in
// printing rate names.
func BandRates(band phy.Band) []string {
	names := make([]string, len(band.Rates))
	for i, r := range band.Rates {
		names[i] = r.Name
	}
	return names
}
