package snr

import "testing"

func TestTopKOrderingAndTies(t *testing.T) {
	mk := func(popt int) Sample {
		return Sample{Net: "n", From: 0, To: 1, SNR: 25, Popt: popt, Tput: make([]float64, 7)}
	}
	samples := []Sample{mk(3), mk(3), mk(3), mk(5), mk(5), mk(1)}
	tbl := Train(samples, 7, Link)
	rates, ok := tbl.TopK(&samples[0], 2)
	if !ok {
		t.Fatal("cell should exist")
	}
	if len(rates) != 2 || rates[0] != 3 || rates[1] != 5 {
		t.Fatalf("top-2 = %v, want [3 5]", rates)
	}
	// k larger than distinct rates: returns what exists.
	rates, _ = tbl.TopK(&samples[0], 10)
	if len(rates) != 3 {
		t.Fatalf("top-10 returned %v, want 3 distinct rates", rates)
	}
	// k < 1 clamps to 1.
	rates, _ = tbl.TopK(&samples[0], 0)
	if len(rates) != 1 || rates[0] != 3 {
		t.Fatalf("top-0 = %v, want [3]", rates)
	}
}

func TestTopKMissingCell(t *testing.T) {
	tbl := Train(nil, 7, Link)
	s := Sample{Net: "n", From: 0, To: 1, SNR: 25}
	if _, ok := tbl.TopK(&s, 2); ok {
		t.Fatal("missing cell should report !ok")
	}
}

func TestTopKTieBreaksLowIndex(t *testing.T) {
	mk := func(popt int) Sample {
		return Sample{Net: "n", From: 0, To: 1, SNR: 25, Popt: popt, Tput: make([]float64, 7)}
	}
	samples := []Sample{mk(6), mk(2)}
	tbl := Train(samples, 7, Link)
	rates, _ := tbl.TopK(&samples[0], 1)
	if rates[0] != 2 {
		t.Fatalf("tie should prefer the lower rate index, got %v", rates)
	}
}

func TestTopKCoverageMonotoneInK(t *testing.T) {
	samples := simulated(t)
	results := TopKCoverage(samples, 7, Link, []int{1, 2, 3, 7})
	prev := -1.0
	for _, r := range results {
		if r.HitFrac < prev {
			t.Fatalf("hit fraction must be non-decreasing in k: %v after %v", r.HitFrac, prev)
		}
		prev = r.HitFrac
		if r.Evaluated == 0 {
			t.Fatal("nothing evaluated")
		}
	}
	// k = numRates covers everything by construction.
	if last := results[len(results)-1]; last.HitFrac < 0.999 {
		t.Fatalf("k=numRates hit fraction %v, want 1", last.HitFrac)
	}
	// Small candidate sets should already capture most optima on
	// per-link tables (§4.5's argument).
	if results[1].HitFrac < 0.75 {
		t.Fatalf("top-2 hit fraction %v too low for per-link tables", results[1].HitFrac)
	}
}

func TestTopKProbeReduction(t *testing.T) {
	results := TopKCoverage(simulated(t), 7, Link, []int{2, 9})
	if results[0].ProbeReduction != 1-2.0/7 {
		t.Fatalf("probe reduction %v, want %v", results[0].ProbeReduction, 1-2.0/7)
	}
	if results[1].ProbeReduction != 0 {
		t.Fatalf("k beyond the rate count should save nothing, got %v", results[1].ProbeReduction)
	}
}
