package snr

// merge.go gives every chunked §4 core a Merge operation: fold another
// accumulator's partial state into this one, as if this accumulator had
// observed both inputs' chunks itself. Every core's persistent state is a
// count or histogram table, so merge is addition — exact, with no
// floating-point reassociation — and the shard-vs-whole oracle pins the
// merged result byte-identical to a single whole-input run.
//
// The shard contract mirrors the chunk contract (see the package comment
// in chunked.go), one level up: each partial observes a contiguous run of
// networks, partials are merged in input order, and no network's chunks
// split across partials. Under that contract the Network-, AP-, and
// Link-scope states are already resolved (or resolvable) per partial,
// and only Global-scope cells — which span the fleet — carry unresolved
// banked state across the merge. Merging resolves nothing Global: cells
// combine count-wise and resolve once, at the final Finalize, so the
// fleet-wide argmax sees exactly the counts a whole run would.
//
// A merged-from accumulator must not be observed or finalized afterwards;
// the merged-into accumulator remains usable.

// merge folds another histogram into this one.
func (h *diffHist) merge(o *diffHist) {
	h.nan += o.nan
	if len(o.m) == 0 {
		return
	}
	if h.m == nil {
		h.m = make(map[float64]int64, len(o.m))
	}
	for v, n := range o.m {
		h.m[v] += n
	}
}

// histogram re-expands the counted form into a value→count map (the
// inverse of newCounted, minus the NaN prefix).
func (c *counted) histogram() map[float64]int64 {
	if len(c.vals) == 0 {
		return nil
	}
	m := make(map[float64]int64, len(c.vals))
	prev := c.nan
	for i, v := range c.vals {
		m[v] = c.cum[i] - prev
		prev = c.cum[i]
	}
	return m
}

// Merge folds another distribution into this one: the result is the
// counted form of the combined multiset, identical to freezing one
// histogram fed both inputs.
func (d *Dist) Merge(o *Dist) {
	if o == nil || o.c.n == 0 {
		return
	}
	m := d.c.histogram()
	if m == nil {
		m = make(map[float64]int64, len(o.c.vals))
	}
	prev := o.c.nan
	for i, v := range o.c.vals {
		m[v] += o.c.cum[i] - prev
		prev = o.c.cum[i]
	}
	d.c = *newCounted(m, d.c.nan+o.c.nan)
}

// Merge folds another penalty partial into this one. Both accumulators
// must share numRates and the same scope sequence (construct both with
// NewPenaltyAccum over identical arguments), and each must have observed
// a shard of whole networks. Link-, Network-, and AP-scope state resolves
// within each partial; Global cells merge count-wise and stay banked
// until FinalizeDists, so the fleet-wide argmax is unchanged.
func (a *PenaltyAccum) Merge(o *PenaltyAccum) {
	a.total += o.total
	for si := range a.states {
		st, ost := &a.states[si], &o.states[si]
		switch st.scope {
		case Global:
			for snrVal, ocell := range ost.cells {
				cell := st.cells[snrVal]
				if cell == nil {
					cell = &bankedCell{
						counts: make([]int64, a.numRates),
						pend:   make([]diffHist, a.numRates),
					}
					st.cells[snrVal] = cell
				}
				for ri, n := range ocell.counts {
					cell.counts[ri] += n
				}
				for p := range ocell.pend {
					cell.pend[p].merge(&ocell.pend[p])
				}
			}
		case Network, AP:
			// Shards hold whole networks, so both sides' pending network
			// state is complete: flush it, then the remaining state is
			// pure histogram addition.
			a.finishNet(st)
			o.finishNet(ost)
			if ost.netSeen {
				st.curNet, st.netSeen = ost.curNet, true
			}
		}
		st.diffs.merge(&ost.diffs)
		st.exact += ost.exact
	}
}

// merge folds another per-SNR coverage aggregate into this one. covCell
// contributions are integer-valued, so the float sums stay exact.
func (g *coverageAgg) merge(o *coverageAgg) {
	for snrVal, oc := range o.bySNR {
		c, ok := g.bySNR[snrVal]
		if !ok {
			c = &covCell{}
			g.bySNR[snrVal] = c
		}
		c.n50 += oc.n50
		c.n80 += oc.n80
		c.n95 += oc.n95
		if oc.max95 > c.max95 {
			c.max95 = oc.max95
		}
		c.cells += oc.cells
	}
}

// Merge folds another table's cells into this one, count-wise. Both
// tables must share Scope and NumRates.
func (t *Table) Merge(o *Table) {
	for key, obySNR := range o.counts {
		bySNR, ok := t.counts[key]
		if !ok {
			bySNR = make(map[int][]int, len(obySNR))
			t.counts[key] = bySNR
		}
		for snrVal, oc := range obySNR {
			c, ok := bySNR[snrVal]
			if !ok {
				c = make([]int, t.NumRates)
				bySNR[snrVal] = c
			}
			for ri, n := range oc {
				c[ri] += n
			}
		}
	}
}

// Merge folds another coverage partial into this one. Both accumulators
// must share scope, numRates, and minObs, and each must have observed a
// shard of whole networks. Non-Global scopes resolve within each partial;
// the Global scope's fleet-lifetime table merges count-wise and folds
// once, at Finalize.
func (a *CoverageAccum) Merge(o *CoverageAccum) {
	switch a.scope {
	case Global:
		a.table.Merge(o.table)
	case Network, AP:
		a.finishNet()
		o.finishNet()
		if o.netSeen {
			a.curNet, a.netSeen = o.curNet, true
		}
	}
	a.agg.merge(o.agg)
}

// Merge folds another throughput partial into this one. Both accumulators
// must share numRates and minObs. The histogram rows are
// order-independent, so any shard split works.
func (a *TputAccum) Merge(o *TputAccum) {
	for snrVal, orow := range o.rows {
		row := a.rows[snrVal]
		if row == nil {
			row = &tputRow{cells: make([]diffHist, a.numRates)}
			a.rows[snrVal] = row
			if len(a.rows) == 1 || snrVal < a.minSNR {
				a.minSNR = snrVal
			}
			if len(a.rows) == 1 || snrVal > a.maxSNR {
				a.maxSNR = snrVal
			}
		}
		row.n += orow.n
		for ri := range orow.cells {
			row.cells[ri].merge(&orow.cells[ri])
		}
	}
}

// Merge folds another rate-set partial into this one (set union).
func (a *RateSetAccum) Merge(o *RateSetAccum) {
	for snrVal, om := range o.seen {
		m, ok := a.seen[snrVal]
		if !ok {
			m = make(map[int]bool, len(om))
			a.seen[snrVal] = m
		}
		for ri := range om {
			m[ri] = true
		}
	}
}

// Merge folds another strategy partial into this one. Every persistent
// field is an integer sum over per-link replays, so the fold commutes.
// Both accumulators must share numRates and maxX.
func (a *StrategyAccum) Merge(o *StrategyAccum) {
	for si := range a.results {
		res, ores := &a.results[si], &o.results[si]
		for x := range ores.Hits {
			res.Hits[x] += ores.Hits[x]
			res.Total[x] += ores.Total[x]
		}
		res.Updates += ores.Updates
		res.MemEntries += ores.MemEntries
		res.Skipped += ores.Skipped
	}
}

// Merge folds another top-k partial into this one. Both accumulators must
// share numRates and the same k sequence.
func (a *TopKAccum) Merge(o *TopKAccum) {
	for ki := range a.ks {
		a.hits[ki] += o.hits[ki]
		a.evaluated[ki] += o.evaluated[ki]
	}
}
