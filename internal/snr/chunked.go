package snr

// chunked.go implements the incremental (chunk-consuming) cores of the §4
// analyses. Each accumulator consumes sample chunks via ObserveGroup and
// retains only flat count/histogram tables — never the raw samples — so
// a streaming caller's peak memory is bounded by table size, not sample
// count. The batch entry points (Penalty, ReplayStrategies,
// OptimalRateSets) are thin wrappers over these cores, and the
// chunked-vs-batch oracle tests pin both forms bit-exact against the
// reference table replays.
//
// The chunk contract, shared by every accumulator here: chunks arrive in
// section order; one network's chunks are consecutive; and a directed
// link's samples never split across chunks. A whole network is always a
// valid chunk (ForEachSampleGroup, the streaming walk's per-network
// flatten), and wire.SampleGroups splits huge networks into smaller
// chunks at link boundaries so no single network's samples ever need to
// be resident at once. An accumulator may keep a reference to the most
// recently observed chunk until the next ObserveGroup or Finalize call
// (the held-first-chunk fast path below), so callers must not recycle
// chunk backing arrays.
//
// Two facts make exact chunked results cheap. First, quantization: a
// sample's per-rate throughput is rate.Throughput(loss) where loss is
// the probe window's 1/ProbesPerRate-quantized delivery fraction, so
// each rate's throughput — and every derived penalty difference — takes
// only a few dozen distinct float64 values. A value→count histogram
// therefore reproduces the full empirical distribution exactly in
// O(distinct) memory, and quantiles computed over the counted multiset
// match quantiles over the materialized sorted slice bit for bit.
// Second, scope locality: Link-scope table cells complete within every
// chunk (links never split), AP- and Network-scope cells complete at the
// network boundary, and only the Global scope's few dozen cells span the
// fleet — so each scope trains, replays, and discards its cells at the
// earliest boundary where they are final, banking quantized penalty
// histograms where replay must wait.

import (
	"math"
	"sort"

	"meshlab/internal/conc"
)

// ForEachSampleGroup invokes fn once per maximal run of consecutive
// samples sharing a network name — the per-network groups the flat-sample
// wire section stores and the chunked accumulators consume. Flatten
// output keeps each network contiguous, so feeding it through this
// splitter reproduces the streaming group sequence exactly. fn errors
// abort the walk.
func ForEachSampleGroup(samples []Sample, fn func(group []Sample) error) error {
	for i := 0; i < len(samples); {
		j := i + 1
		for j < len(samples) && samples[j].Net == samples[i].Net {
			j++
		}
		if err := fn(samples[i:j]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// counted is a sorted, counted multiset of float64s: the exact empirical
// distribution of a quantized sample in O(distinct values) memory. NaNs
// are tracked separately and sort first, mirroring sort.Float64s.
type counted struct {
	nan  int64
	vals []float64 // distinct non-NaN values, ascending
	cum  []int64   // cum[i] = #values ≤ vals[i], NaNs included as a prefix
	n    int64
}

// newCounted freezes a value→count histogram into its sorted counted form.
func newCounted(m map[float64]int64, nan int64) *counted {
	c := &counted{nan: nan, n: nan}
	if len(m) > 0 {
		c.vals = make([]float64, 0, len(m))
		for v := range m {
			c.vals = append(c.vals, v)
		}
		sort.Float64s(c.vals)
		c.cum = make([]int64, len(c.vals))
		run := nan
		for i, v := range c.vals {
			run += m[v]
			c.cum[i] = run
		}
		c.n = run
	}
	return c
}

// at returns the i-th element (0-based) of the virtual sorted slice.
func (c *counted) at(i int64) float64 {
	if i < c.nan {
		return math.NaN()
	}
	// First distinct value whose cumulative count exceeds i.
	lo, hi := 0, len(c.vals)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] > i {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return c.vals[lo]
}

// Dist is the counted empirical distribution an incremental penalty core
// produces in place of a materialized, sorted []float64: same quantiles,
// table-sized memory. See PenaltyAccum.
type Dist struct{ c counted }

// N returns the number of observations.
func (d *Dist) N() int { return int(d.c.n) }

// Quantile returns the q-quantile, bit-identical to
// stats.NewCDF(d.Materialize()).Quantile(q).
func (d *Dist) Quantile(q float64) float64 {
	n := d.c.n
	if n == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic("snr: quantile out of [0,1]")
	}
	if n == 1 {
		return d.c.at(0)
	}
	pos := q * float64(n-1)
	lo := int64(math.Floor(pos))
	hi := int64(math.Ceil(pos))
	if lo == hi {
		return d.c.at(lo)
	}
	frac := pos - float64(lo)
	return d.c.at(lo)*(1-frac) + d.c.at(hi)*frac
}

// Materialize expands the distribution into the ascending sorted slice the
// batch form returns (NaNs first, as sort.Float64s orders them).
func (d *Dist) Materialize() []float64 {
	out := make([]float64, 0, d.c.n)
	for i := int64(0); i < d.c.nan; i++ {
		out = append(out, math.NaN())
	}
	prev := d.c.nan
	for i, v := range d.c.vals {
		for k := prev; k < d.c.cum[i]; k++ {
			out = append(out, v)
		}
		prev = d.c.cum[i]
	}
	return out
}

// diffHist accumulates a value→count histogram with NaN tracking.
type diffHist struct {
	m   map[float64]int64
	nan int64
}

func (h *diffHist) add(v float64, n int64) {
	if math.IsNaN(v) {
		h.nan += n
		return
	}
	if h.m == nil {
		h.m = make(map[float64]int64)
	}
	h.m[v] += n
}

func (h *diffHist) freeze() *Dist { return &Dist{c: *newCounted(h.m, h.nan)} }

// PenaltyDist is one scope's chunked §4.3 outcome: the penalty
// distribution in counted form plus the exact-hit fraction. It carries
// the same information as PenaltyResult at table-sized memory.
type PenaltyDist struct {
	Scope Scope
	// Diffs is the counted distribution of per-probe-set throughput
	// penalties (clamped at 0, ascending); Diffs.Materialize() equals the
	// batch PenaltyResult.Diffs exactly.
	Diffs *Dist
	// ExactFrac is the fraction of probe sets predicted exactly optimally.
	ExactFrac float64
}

// bankedCell is one training cell whose replay must wait until its
// training finishes (the Global scope's fleet-lifetime SNR cells and the
// Network scope's per-network cells — both "few big cells"). Each
// sample's penalty under every candidate predicted rate is banked into a
// per-rate histogram; resolution keeps only the histogram of the rate
// the finished cell actually predicts. Quantization keeps these
// histograms small.
type bankedCell struct {
	counts []int64    // per-rate optimal-rate training counts
	pend   []diffHist // per candidate rate: histogram of clamped penalties
}

// diffCount is one (dictionary id, count) entry of a compact bank: the
// AP scope has tens of thousands of small cells per large network, where
// per-cell maps would cost more than the data, so its banks are tiny
// linear-scanned slices over a scope-lifetime value dictionary.
type diffCount struct {
	id int32
	n  int32
}

// apCellKey identifies one AP-scope training cell within the current
// network.
type apCellKey struct {
	from int32
	snr  int32
}

// penaltyScopeState is one scope's accumulator state. The four scopes
// resolve at different boundaries, matching where their cells complete:
//
//   - Link: a directed link's samples never split across chunks, so every
//     chunk trains and replays its own complete cells immediately
//     (observeLocal) — nothing persists.
//   - AP and Network: cells complete when the network's last chunk
//     passes; they bank per-candidate penalties and resolve at the
//     network boundary.
//   - Global: cells span the fleet; they bank and resolve at Finalize.
type penaltyScopeState struct {
	scope Scope
	diffs diffHist
	exact int64

	// Global and Network scopes: map-banked cells keyed by SNR.
	cells map[int]*bankedCell

	// AP scope: dictionary+slice banks.
	apCells  map[apCellKey]int32
	apCounts []int64       // [cell*nr + ri] training counts
	apBanks  [][]diffCount // [cell*nr + p]
	dict     map[float64]int32
	diffVals []float64
	nanID    int32

	// held defers the current network's first chunk: if the network turns
	// out to be unsplit (every network but the occasional huge one), its
	// cells are complete and the chunk takes the same fast train-and-
	// replay path the Link scope uses, skipping the banking machinery
	// entirely. Only a network that actually spans chunks banks.
	held    []Sample
	banking bool

	curNet  string
	netSeen bool
}

// PenaltyAccum is the incremental core of Penalty: feed sample chunks in
// section order through ObserveGroup, then Finalize. A chunk is any run
// of one network's samples that never splits a directed link — a whole
// network (ForEachSampleGroup, the walk-flatten path) or a sub-chunk of
// a huge one (wire.SampleGroups splits at link boundaries) — and one
// network's chunks must arrive consecutively. No samples are retained:
// peak memory is the (instance, SNR)-shaped count and histogram tables.
type PenaltyAccum struct {
	numRates int
	states   []penaltyScopeState
	total    int64
}

// NewPenaltyAccum prepares an incremental penalty run over the scopes.
func NewPenaltyAccum(numRates int, scopes []Scope) *PenaltyAccum {
	a := &PenaltyAccum{numRates: numRates}
	for _, sc := range scopes {
		st := penaltyScopeState{scope: sc, nanID: -1}
		switch sc {
		case Global, Network:
			st.cells = make(map[int]*bankedCell)
		case AP:
			st.apCells = make(map[apCellKey]int32)
			st.dict = make(map[float64]int32)
		}
		a.states = append(a.states, st)
	}
	return a
}

// ObserveGroup trains (and, where cells are complete, replays) one chunk
// of samples. Scopes are processed across the process worker budget;
// their states are independent, so the result is byte-identical at any
// budget.
func (a *PenaltyAccum) ObserveGroup(group []Sample) {
	if len(group) == 0 || a.numRates == 0 {
		return
	}
	a.total += int64(len(group))
	_ = conc.ForEach(len(a.states), func(si int) error {
		st := &a.states[si]
		switch st.scope {
		case Global:
			a.bankCells(st, group)
		case Network, AP:
			a.observeBoundary(st, group)
		default:
			a.observeLocal(st, group)
		}
		return nil
	})
}

// observeBoundary drives the Network/AP-scope state machine: the current
// network's first chunk is held back; an unsplit network replays it on
// the fast local path at the boundary, a split network falls back to
// banking.
func (a *PenaltyAccum) observeBoundary(st *penaltyScopeState, group []Sample) {
	if net := group[0].Net; !st.netSeen || net != st.curNet {
		a.finishNet(st)
		st.curNet, st.netSeen = net, true
		st.held = group
		return
	}
	// The network spans chunks: bank the held first chunk, then this one.
	if st.held != nil {
		a.bank(st, st.held)
		st.held = nil
		st.banking = true
	}
	a.bank(st, group)
}

// bank routes a chunk to the scope's banking form.
func (a *PenaltyAccum) bank(st *penaltyScopeState, group []Sample) {
	if st.scope == AP {
		a.bankAP(st, group)
	} else {
		a.bankCells(st, group)
	}
}

// finishNet completes the previous network: an unsplit one replays its
// held chunk locally, a split one resolves its banked cells.
func (a *PenaltyAccum) finishNet(st *penaltyScopeState) {
	if st.held != nil {
		a.observeLocal(st, st.held)
		st.held = nil
	}
	if st.banking {
		if st.scope == AP {
			a.resolveAP(st)
		} else {
			a.resolveCells(st)
		}
		st.banking = false
	}
}

// bankCells trains the state's map-banked cells (SNR-keyed: the Global
// scope fleet-wide, the Network scope within the current network) and
// banks each sample's penalty under every candidate rate.
func (a *PenaltyAccum) bankCells(st *penaltyScopeState, group []Sample) {
	nr := a.numRates
	for i := range group {
		s := &group[i]
		cell := st.cells[s.SNR]
		if cell == nil {
			cell = &bankedCell{
				counts: make([]int64, nr),
				pend:   make([]diffHist, nr),
			}
			st.cells[s.SNR] = cell
		}
		cell.counts[s.Popt]++
		for p := 0; p < nr; p++ {
			diff := s.BestTput - s.Tput[p]
			if diff < 0 {
				diff = 0
			}
			cell.pend[p].add(diff, 1)
		}
	}
}

// resolveCells replays the finished map-banked cells into the scope's
// penalty distribution and resets them.
func (a *PenaltyAccum) resolveCells(st *penaltyScopeState) {
	for _, cell := range st.cells {
		best, bestN := 0, int64(0)
		for ri, n := range cell.counts {
			if n > bestN {
				best, bestN = ri, n
			}
		}
		st.exact += cell.counts[best]
		for v, n := range cell.pend[best].m {
			st.diffs.add(v, n)
		}
		st.diffs.nan += cell.pend[best].nan
	}
	if len(st.cells) > 0 {
		st.cells = make(map[int]*bankedCell)
	}
}

// diffID interns a penalty value in the scope's dictionary.
func (st *penaltyScopeState) diffID(v float64) int32 {
	if math.IsNaN(v) {
		if st.nanID < 0 {
			st.nanID = int32(len(st.diffVals))
			st.diffVals = append(st.diffVals, v)
		}
		return st.nanID
	}
	id, ok := st.dict[v]
	if !ok {
		id = int32(len(st.diffVals))
		st.dict[v] = id
		st.diffVals = append(st.diffVals, v)
	}
	return id
}

// bankAP trains the current network's AP-scope cells and banks penalties
// into compact dictionary slices: per (cell, candidate) the realized
// penalty values are few (quantized throughputs over one AP's links at
// one SNR), so a linear-scanned slice beats a map by an order of
// magnitude in memory.
func (a *PenaltyAccum) bankAP(st *penaltyScopeState, group []Sample) {
	nr := a.numRates
	for i := range group {
		s := &group[i]
		key := apCellKey{from: int32(s.From), snr: int32(s.SNR)}
		idx, ok := st.apCells[key]
		if !ok {
			idx = int32(len(st.apCells))
			st.apCells[key] = idx
			st.apCounts = append(st.apCounts, make([]int64, nr)...)
			st.apBanks = append(st.apBanks, make([][]diffCount, nr)...)
		}
		st.apCounts[int(idx)*nr+s.Popt]++
		for p := 0; p < nr; p++ {
			diff := s.BestTput - s.Tput[p]
			if diff < 0 {
				diff = 0
			}
			id := st.diffID(diff)
			bank := &st.apBanks[int(idx)*nr+p]
			found := false
			for bi := range *bank {
				if (*bank)[bi].id == id {
					(*bank)[bi].n++
					found = true
					break
				}
			}
			if !found {
				*bank = append(*bank, diffCount{id: id, n: 1})
			}
		}
	}
}

// resolveAP replays the finished AP cells of the current network and
// resets the per-network state (the dictionary persists for the scope).
func (a *PenaltyAccum) resolveAP(st *penaltyScopeState) {
	nr := a.numRates
	for idx := 0; idx < len(st.apCells); idx++ {
		row := st.apCounts[idx*nr : (idx+1)*nr]
		best, bestN := 0, int64(0)
		for ri, n := range row {
			if n > bestN {
				best, bestN = ri, n
			}
		}
		st.exact += row[best]
		for _, dc := range st.apBanks[idx*nr+best] {
			st.diffs.add(st.diffVals[dc.id], int64(dc.n))
		}
	}
	if len(st.apCells) > 0 {
		st.apCells = make(map[apCellKey]int32)
		st.apCounts = st.apCounts[:0]
		st.apBanks = st.apBanks[:0]
	}
}

// observeLocal runs one non-global scope's train-and-replay over a single
// network's completed cells: the same dense flat-buffer pass the batch
// form used fleet-wide, shrunk to group scope, with the diffs folded into
// the histogram instead of a per-sample slice.
func (a *PenaltyAccum) observeLocal(st *penaltyScopeState, group []Sample) {
	nr := a.numRates
	cellOf := make([]int32, len(group))
	ids := make(map[penaltyCell]int32, 64)
	for i := range group {
		k := st.scope.penaltyCell(&group[i])
		id, ok := ids[k]
		if !ok {
			id = int32(len(ids))
			ids[k] = id
		}
		cellOf[i] = id
	}
	counts := make([]int64, len(ids)*nr)
	for i := range group {
		counts[int(cellOf[i])*nr+group[i].Popt]++
	}
	// Most-frequent rate per cell, ties toward the lower index (Lookup's
	// tie-break rule).
	pred := make([]int32, len(ids))
	for c := range pred {
		row := counts[c*nr : (c+1)*nr]
		best, bestN := int32(0), int64(0)
		for ri, n := range row {
			if n > bestN {
				best, bestN = int32(ri), n
			}
		}
		pred[c] = best
	}
	for i := range group {
		s := &group[i]
		p := pred[cellOf[i]]
		diff := s.BestTput - s.Tput[p]
		if diff < 0 {
			diff = 0
		}
		st.diffs.add(diff, 1)
		if int(p) == s.Popt {
			st.exact++
		}
	}
}

// FinalizeDists resolves the still-banked cells (the Global scope's
// fleet-lifetime cells and the last network's Network/AP cells) and
// returns every scope's counted outcome, in scope argument order. The
// accumulator must not be observed afterwards.
func (a *PenaltyAccum) FinalizeDists() []PenaltyDist {
	out := make([]PenaltyDist, len(a.states))
	_ = conc.ForEach(len(a.states), func(si int) error {
		st := &a.states[si]
		switch st.scope {
		case Global:
			a.resolveCells(st)
		case Network, AP:
			a.finishNet(st)
		}
		pd := PenaltyDist{Scope: st.scope, Diffs: st.diffs.freeze()}
		if a.total > 0 {
			pd.ExactFrac = float64(st.exact) / float64(a.total)
		}
		out[si] = pd
		return nil
	})
	return out
}

// Finalize materializes FinalizeDists into the batch PenaltyResult form
// (sorted Diffs slices). Streaming callers that only need quantiles
// should use FinalizeDists and skip the O(samples) expansion.
func (a *PenaltyAccum) Finalize() []PenaltyResult {
	dists := a.FinalizeDists()
	out := make([]PenaltyResult, len(dists))
	for i, pd := range dists {
		out[i] = PenaltyResult{Scope: pd.Scope, ExactFrac: pd.ExactFrac}
		if pd.Diffs.N() > 0 {
			out[i].Diffs = pd.Diffs.Materialize()
		}
	}
	return out
}

// coverageAgg folds per-(instance, SNR) cells into the per-SNR coverage
// aggregates Figure 4.2/4.3 plot. Cell contributions are integer-valued,
// so the float sums are exact and the fold is order-independent — which
// is what lets group-at-a-time folding match the batch table walk bit for
// bit.
type coverageAgg struct {
	minObs  int
	scratch []int
	bySNR   map[int]*covCell
}

type covCell struct {
	n50, n80, n95 float64
	max95, cells  int
}

func newCoverageAgg(numRates, minObs int) *coverageAgg {
	return &coverageAgg{
		minObs:  minObs,
		scratch: make([]int, numRates),
		bySNR:   make(map[int]*covCell),
	}
}

// addCell folds one training cell's rate counts.
func (g *coverageAgg) addCell(snrVal int, c []int) {
	total := 0
	for _, n := range c {
		total += n
	}
	if total < g.minObs {
		return
	}
	a, ok := g.bySNR[snrVal]
	if !ok {
		a = &covCell{}
		g.bySNR[snrVal] = a
	}
	n50, n80, n95 := coverageNeeds(c, total, g.scratch)
	a.n50 += float64(n50)
	a.n80 += float64(n80)
	a.n95 += float64(n95)
	if n95 > a.max95 {
		a.max95 = n95
	}
	a.cells++
}

// rows renders the aggregate in ascending SNR order.
func (g *coverageAgg) rows() []CoverageRow {
	snrs := make([]int, 0, len(g.bySNR))
	for s := range g.bySNR {
		snrs = append(snrs, s)
	}
	sort.Ints(snrs)
	rows := make([]CoverageRow, 0, len(snrs))
	for _, s := range snrs {
		a := g.bySNR[s]
		rows = append(rows, CoverageRow{
			SNR:     s,
			NeedP50: a.n50 / float64(a.cells),
			NeedP80: a.n80 / float64(a.cells),
			NeedP95: a.n95 / float64(a.cells),
			MaxP95:  a.max95,
			Cells:   a.cells,
		})
	}
	return rows
}

// CoverageAccum is the incremental core of Train+Coverage for one scope,
// consuming the same link-aligned chunks PenaltyAccum does. Link-scope
// cells are complete within every chunk, so they train and fold
// per-chunk with nothing persisting; Network- and AP-scope cells
// accumulate in a per-network table (at most ~10⁴ small cells even for
// a huge network) folded at the network boundary; Global keeps its
// single SNR-keyed table (a few dozen cells) until Finalize. Peak memory
// is one network's table plus the per-SNR aggregates.
type CoverageAccum struct {
	scope    Scope
	numRates int
	agg      *coverageAgg
	table    *Table // Global: fleet-lifetime; Network/AP: split current network
	held     []Sample
	curNet   string
	netSeen  bool
}

// NewCoverageAccum prepares an incremental coverage run. minObs is the
// cell floor Table.Coverage applies.
func NewCoverageAccum(numRates int, scope Scope, minObs int) *CoverageAccum {
	a := &CoverageAccum{
		scope:    scope,
		numRates: numRates,
		agg:      newCoverageAgg(numRates, minObs),
	}
	if scope != Link {
		a.table = &Table{Scope: scope, NumRates: numRates, counts: make(map[instKey]map[int][]int)}
	}
	return a
}

// foldTable folds the pending table's cells into the aggregates and
// resets it.
func (a *CoverageAccum) foldTable() {
	for _, inst := range a.table.counts {
		for snrVal, c := range inst {
			a.agg.addCell(snrVal, c)
		}
	}
	if len(a.table.counts) > 0 {
		a.table.counts = make(map[instKey]map[int][]int)
	}
}

// ObserveGroup consumes one chunk (see PenaltyAccum for the chunk
// contract).
func (a *CoverageAccum) ObserveGroup(group []Sample) {
	if len(group) == 0 {
		return
	}
	switch a.scope {
	case Link:
		a.trainFold(group)
	case Global:
		for i := range group {
			a.table.Add(&group[i])
		}
	default:
		// Network, AP: cells complete at the network boundary. The first
		// chunk is held back so an unsplit network (the common case)
		// trains and folds in one throwaway pass; a split network
		// accumulates the persistent per-network table instead. This is
		// the same held-first-chunk protocol PenaltyAccum.observeBoundary
		// drives (kept separate because the flush actions differ); the
		// sub-chunk oracles pin both against their batch forms, so a
		// contract change that misses one of them fails loudly.
		if net := group[0].Net; !a.netSeen || net != a.curNet {
			a.finishNet()
			a.curNet, a.netSeen = net, true
			a.held = group
			return
		}
		if a.held != nil {
			a.tableAdd(a.held)
			a.held = nil
		}
		a.tableAdd(group)
	}
}

// trainFold trains a throwaway table over one complete-cell chunk and
// folds it.
func (a *CoverageAccum) trainFold(group []Sample) {
	tbl := Train(group, a.numRates, a.scope)
	for _, inst := range tbl.counts {
		for snrVal, c := range inst {
			a.agg.addCell(snrVal, c)
		}
	}
}

// tableAdd accumulates a chunk into the persistent per-network table.
func (a *CoverageAccum) tableAdd(group []Sample) {
	for i := range group {
		a.table.Add(&group[i])
	}
}

// finishNet completes the previous network: a held unsplit chunk folds
// through the throwaway path, a split network folds its table.
func (a *CoverageAccum) finishNet() {
	if a.held != nil {
		a.trainFold(a.held)
		a.held = nil
	}
	a.foldTable()
}

// Finalize returns the coverage rows, identical to
// Train(allSamples, numRates, scope).Coverage(minObs).
func (a *CoverageAccum) Finalize() []CoverageRow {
	if a.table != nil {
		a.finishNet()
		a.table = nil
	}
	return a.agg.rows()
}

// TputAccum is the incremental core of ThroughputVsSNR: per (SNR, rate)
// it keeps a quantized value→count histogram of throughputs instead of
// the materialized per-cell slices, so memory is (SNR range × rates ×
// distinct losses), independent of sample count.
type TputAccum struct {
	numRates, minObs int
	minSNR, maxSNR   int
	rows             map[int]*tputRow
}

type tputRow struct {
	n     int64 // samples at this SNR (every sample hits every rate cell)
	cells []diffHist
}

// NewTputAccum prepares an incremental Figure 4.5 run.
func NewTputAccum(numRates, minObs int) *TputAccum {
	return &TputAccum{numRates: numRates, minObs: minObs, rows: make(map[int]*tputRow)}
}

// ObserveGroup consumes one network's samples (any grouping works — the
// histogram is order-independent — but groups keep the call pattern
// uniform with the other accumulators).
func (a *TputAccum) ObserveGroup(group []Sample) {
	if a.numRates == 0 {
		return
	}
	for i := range group {
		s := &group[i]
		row := a.rows[s.SNR]
		if row == nil {
			row = &tputRow{cells: make([]diffHist, a.numRates)}
			a.rows[s.SNR] = row
			if len(a.rows) == 1 || s.SNR < a.minSNR {
				a.minSNR = s.SNR
			}
			if len(a.rows) == 1 || s.SNR > a.maxSNR {
				a.maxSNR = s.SNR
			}
		}
		row.n++
		for ri := 0; ri < a.numRates; ri++ {
			row.cells[ri].add(s.Tput[ri], 1)
		}
	}
}

// Finalize returns the per-cell quartile points, identical to
// ThroughputVsSNR over the concatenated samples.
func (a *TputAccum) Finalize() []TputPoint {
	if len(a.rows) == 0 {
		return nil
	}
	var out []TputPoint
	for ri := 0; ri < a.numRates; ri++ {
		for s := a.minSNR; s <= a.maxSNR; s++ {
			row := a.rows[s]
			if row == nil || row.n < int64(a.minObs) {
				continue
			}
			c := newCounted(row.cells[ri].m, row.cells[ri].nan)
			// The batch form's interpolation: hi is lo+1 whenever a next
			// element exists, even at integral positions. Replicated
			// exactly so the emitted float64s match bit for bit.
			n := c.n
			q := func(p float64) float64 {
				pos := p * float64(n-1)
				lo := int64(pos)
				hi := lo
				if lo+1 < n {
					hi = lo + 1
				}
				frac := pos - float64(lo)
				return c.at(lo)*(1-frac) + c.at(hi)*frac
			}
			out = append(out, TputPoint{
				RateIdx: ri, SNR: s,
				Median: q(0.5), Q1: q(0.25), Q3: q(0.75), N: int(n),
			})
		}
	}
	return out
}

// RateSetAccum is the incremental core of OptimalRateSets (Figure 4.1):
// the seen-set is a few hundred booleans, so it simply accumulates.
type RateSetAccum struct {
	seen map[int]map[int]bool
}

// NewRateSetAccum prepares an incremental Figure 4.1 run.
func NewRateSetAccum() *RateSetAccum {
	return &RateSetAccum{seen: make(map[int]map[int]bool)}
}

// ObserveGroup consumes one chunk of samples (any grouping).
func (a *RateSetAccum) ObserveGroup(group []Sample) {
	for i := range group {
		s := &group[i]
		m, ok := a.seen[s.SNR]
		if !ok {
			m = make(map[int]bool)
			a.seen[s.SNR] = m
		}
		m[s.Popt] = true
	}
}

// Finalize returns the per-SNR ever-optimal rate sets, identical to
// OptimalRateSets over the concatenated samples.
func (a *RateSetAccum) Finalize() map[int][]int {
	out := make(map[int][]int, len(a.seen))
	for snrVal, m := range a.seen {
		var rates []int
		for ri := range m {
			rates = append(rates, ri)
		}
		sort.Ints(rates)
		out[snrVal] = rates
	}
	return out
}

// StrategyAccum is the incremental core of ReplayStrategies: links never
// split across chunks, so each chunk replays its own links to completion
// and only the integer hit/total/update counters persist.
type StrategyAccum struct {
	numRates, maxX int
	results        []StrategyResult
}

// NewStrategyAccum prepares an incremental Figure 4.6 / Table 4.1 run.
func NewStrategyAccum(numRates, maxX int) *StrategyAccum {
	if maxX < 2 {
		maxX = 2
	}
	a := &StrategyAccum{numRates: numRates, maxX: maxX}
	for _, st := range Strategies {
		a.results = append(a.results, StrategyResult{
			Strategy: st,
			Hits:     make([]int, maxX+1),
			Total:    make([]int, maxX+1),
		})
	}
	return a
}

// ObserveGroup replays one chunk through every strategy. The chunk
// contract (see PenaltyAccum) guarantees links never split across
// chunks, so every link's online table runs its full sequence here.
func (a *StrategyAccum) ObserveGroup(group []Sample) {
	byLink := make(map[string][]*Sample)
	var keys []string
	for i := range group {
		k := Link.Key(&group[i])
		if _, ok := byLink[k]; !ok {
			keys = append(keys, k)
		}
		byLink[k] = append(byLink[k], &group[i])
	}
	sort.Strings(keys)
	for _, k := range keys {
		seq := byLink[k]
		sort.SliceStable(seq, func(x, y int) bool { return seq[x].T < seq[y].T })
	}
	for si, st := range Strategies {
		res := &a.results[si]
		for _, k := range keys {
			replayLink(res, st, byLink[k], a.numRates, a.maxX)
		}
	}
}

// Finalize returns the per-strategy results, identical to
// ReplayStrategies over the concatenated samples: every reported field is
// an integer sum over per-link replays, so the per-group fold commutes.
func (a *StrategyAccum) Finalize() []StrategyResult { return a.results }

// TopKAccum is the incremental core of TopKCoverage at Link scope (the
// §4.5 extension): link cells are complete within every chunk (see
// PenaltyAccum's chunk contract), so each chunk trains its own table,
// evaluates its own samples, and is discarded.
type TopKAccum struct {
	numRates        int
	ks              []int
	hits, evaluated []int
}

// NewTopKAccum prepares an incremental top-k candidate-set run.
func NewTopKAccum(numRates int, ks []int) *TopKAccum {
	return &TopKAccum{
		numRates:  numRates,
		ks:        ks,
		hits:      make([]int, len(ks)),
		evaluated: make([]int, len(ks)),
	}
}

// ObserveGroup trains on and evaluates one network's samples.
func (a *TopKAccum) ObserveGroup(group []Sample) {
	if len(group) == 0 {
		return
	}
	tbl := Train(group, a.numRates, Link)
	for ki, k := range a.ks {
		for i := range group {
			s := &group[i]
			cands, ok := tbl.TopK(s, k)
			if !ok {
				continue
			}
			a.evaluated[ki]++
			for _, ri := range cands {
				if ri == s.Popt {
					a.hits[ki]++
					break
				}
			}
		}
	}
}

// Finalize returns the per-k results, identical to TopKCoverage at Link
// scope over the concatenated samples.
func (a *TopKAccum) Finalize() []TopKResult {
	out := make([]TopKResult, 0, len(a.ks))
	for ki, k := range a.ks {
		res := TopKResult{K: k, Evaluated: a.evaluated[ki]}
		if a.evaluated[ki] > 0 {
			res.HitFrac = float64(a.hits[ki]) / float64(a.evaluated[ki])
		}
		if a.numRates > 0 {
			res.ProbeReduction = 1 - float64(k)/float64(a.numRates)
			if res.ProbeReduction < 0 {
				res.ProbeReduction = 0
			}
		}
		out = append(out, res)
	}
	return out
}
