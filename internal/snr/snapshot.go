package snr

// snapshot.go gives every chunked §4 core a versioned binary
// Snapshot(w)/Restore(r) of its partial state, so a streaming run can be
// checkpointed at a network boundary and resumed byte-identically in a
// fresh process.
//
// The boundary contract: Snapshot must be called between networks — after
// the last chunk of one network and before the first chunk of the next.
// At such a boundary the Network- and AP-scope state machines are flushed
// first (finishNet), which is result-neutral: the identical flush would
// run the moment the next network's first chunk arrived, so running it
// early changes no downstream number. After the flush, only state that
// genuinely spans networks remains — the per-scope penalty histograms and
// exact counters, the Global scope's banked cells and fleet-lifetime
// coverage table, and the whole-fleet count tables — and that is what
// serializes. The AP scope's value dictionary is deliberately not
// serialized: post-flush its banks are empty, so no dictionary id is
// referenced, and a restored run simply re-interns values as they recur
// (ids differ, realized values do not). Restore resets the
// boundary-tracking fields (curNet/netSeen/held) to their pre-first-chunk
// zero state, which behaves identically going forward.
//
// Every decode-side count is validated by binio against the remaining
// input, and structural parameters (rate counts, scopes, ks) must match
// the restoring accumulator's construction — a mismatch is a contextual
// error, never a partial restore that later panics.

import (
	"fmt"
	"io"
	"sort"

	"meshlab/internal/binio"
)

// Per-core snapshot format versions. Bump on any layout change; Restore
// rejects versions it does not know.
const (
	penaltySnapV1  = 1
	coverageSnapV1 = 1
	tputSnapV1     = 1
	rateSetSnapV1  = 1
	strategySnapV1 = 1
	topkSnapV1     = 1
)

// writeHist serializes a diffHist with sorted keys, so snapshot bytes are
// deterministic for a given state.
func writeHist(w *binio.Writer, h *diffHist) {
	keys := make([]float64, 0, len(h.m))
	for v := range h.m {
		keys = append(keys, v)
	}
	sort.Float64s(keys)
	w.Int(len(keys))
	for _, v := range keys {
		w.F64(v)
		w.I64(h.m[v])
	}
	w.I64(h.nan)
}

// readHist decodes into h (which must be zero).
func readHist(r *binio.Reader, h *diffHist) {
	n := r.Count(16)
	if r.Err() != nil {
		return
	}
	if n > 0 {
		h.m = make(map[float64]int64, n)
		for i := 0; i < n; i++ {
			v := r.F64()
			c := r.I64()
			if r.Err() != nil {
				return
			}
			h.m[v] += c
		}
	}
	h.nan = r.I64()
}

// writeCells serializes SNR-keyed banked cells in ascending key order.
func writeCells(w *binio.Writer, nr int, cells map[int]*bankedCell) {
	keys := make([]int, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Int(len(keys))
	for _, k := range keys {
		cell := cells[k]
		w.Int(k)
		for _, c := range cell.counts {
			w.I64(c)
		}
		for p := range cell.pend {
			writeHist(w, &cell.pend[p])
		}
	}
}

func readCells(r *binio.Reader, nr int) map[int]*bankedCell {
	n := r.Count(8)
	if r.Err() != nil {
		return nil
	}
	cells := make(map[int]*bankedCell, n)
	for i := 0; i < n; i++ {
		k := r.Int()
		cell := &bankedCell{counts: make([]int64, nr), pend: make([]diffHist, nr)}
		for ri := 0; ri < nr; ri++ {
			cell.counts[ri] = r.I64()
		}
		for p := 0; p < nr; p++ {
			readHist(r, &cell.pend[p])
		}
		if r.Err() != nil {
			return nil
		}
		cells[k] = cell
	}
	return cells
}

// Snapshot serializes the penalty core's partial state. Must be called
// at a network boundary (see the file comment); the receiver remains
// valid and may continue observing afterwards.
func (a *PenaltyAccum) Snapshot(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.U8(penaltySnapV1)
	bw.Int(a.numRates)
	bw.I64(a.total)
	bw.Int(len(a.states))
	for si := range a.states {
		st := &a.states[si]
		if st.scope == Network || st.scope == AP {
			// Boundary flush: identical to what the next network's first
			// chunk would trigger, so result-neutral here.
			a.finishNet(st)
		}
		bw.U8(uint8(st.scope))
		writeHist(bw, &st.diffs)
		bw.I64(st.exact)
		if st.scope == Global {
			writeCells(bw, a.numRates, st.cells)
		}
	}
	return bw.Err()
}

// Restore loads a Snapshot into a freshly constructed accumulator with
// the same rate count and scopes.
func (a *PenaltyAccum) Restore(r io.Reader) error {
	br := binio.NewReader(r)
	if v := br.U8(); br.Err() == nil && v != penaltySnapV1 {
		return fmt.Errorf("snr: penalty snapshot version %d, want %d", v, penaltySnapV1)
	}
	if nr := br.Int(); br.Err() == nil && nr != a.numRates {
		return fmt.Errorf("snr: penalty snapshot has %d rates, accumulator %d", nr, a.numRates)
	}
	total := br.I64()
	ns := br.Int()
	if err := br.Err(); err != nil {
		return fmt.Errorf("snr: penalty snapshot: %w", err)
	}
	if ns != len(a.states) {
		return fmt.Errorf("snr: penalty snapshot has %d scopes, accumulator %d", ns, len(a.states))
	}
	a.total = total
	for si := range a.states {
		st := &a.states[si]
		if sc := Scope(br.U8()); br.Err() == nil && sc != st.scope {
			return fmt.Errorf("snr: penalty snapshot scope %v at slot %d, accumulator %v", sc, si, st.scope)
		}
		st.diffs = diffHist{}
		readHist(br, &st.diffs)
		st.exact = br.I64()
		if st.scope == Global {
			cells := readCells(br, a.numRates)
			if br.Err() == nil {
				st.cells = cells
			}
		}
		st.held = nil
		st.banking = false
		st.curNet, st.netSeen = "", false
		if err := br.Err(); err != nil {
			return fmt.Errorf("snr: penalty snapshot scope %v: %w", st.scope, err)
		}
	}
	return nil
}

// writeTable serializes a count table with fully sorted keys.
func writeTable(w *binio.Writer, t *Table) {
	w.Bool(t != nil)
	if t == nil {
		return
	}
	w.U8(uint8(t.Scope))
	w.Int(t.NumRates)
	keys := make([]instKey, 0, len(t.counts))
	for k := range t.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.net != b.net {
			return a.net < b.net
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	w.Int(len(keys))
	for _, k := range keys {
		w.String(k.net)
		w.I64(int64(k.from))
		w.I64(int64(k.to))
		inner := t.counts[k]
		snrs := make([]int, 0, len(inner))
		for s := range inner {
			snrs = append(snrs, s)
		}
		sort.Ints(snrs)
		w.Int(len(snrs))
		for _, s := range snrs {
			w.Int(s)
			for _, c := range inner[s] {
				w.I64(int64(c))
			}
		}
	}
}

// readTable decodes into t, replacing its counts; the stored scope and
// rate count must match t's.
func readTable(r *binio.Reader, t *Table) error {
	present := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if present != (t != nil) {
		return fmt.Errorf("snr: table presence mismatch (snapshot %v, accumulator %v)", present, t != nil)
	}
	if t == nil {
		return nil
	}
	if sc := Scope(r.U8()); r.Err() == nil && sc != t.Scope {
		return fmt.Errorf("snr: table scope %v, accumulator %v", sc, t.Scope)
	}
	if nr := r.Int(); r.Err() == nil && nr != t.NumRates {
		return fmt.Errorf("snr: table has %d rates, accumulator %d", nr, t.NumRates)
	}
	n := r.Count(8)
	if err := r.Err(); err != nil {
		return err
	}
	counts := make(map[instKey]map[int][]int, n)
	for i := 0; i < n; i++ {
		k := instKey{net: r.String(), from: int32(r.I64()), to: int32(r.I64())}
		m := r.Count(8)
		if r.Err() != nil {
			return r.Err()
		}
		inner := make(map[int][]int, m)
		for j := 0; j < m; j++ {
			s := r.Int()
			row := make([]int, t.NumRates)
			for ri := range row {
				row[ri] = int(r.I64())
			}
			if r.Err() != nil {
				return r.Err()
			}
			inner[s] = row
		}
		counts[k] = inner
	}
	t.counts = counts
	return r.Err()
}

// Snapshot serializes the coverage core's partial state at a network
// boundary.
func (a *CoverageAccum) Snapshot(w io.Writer) error {
	if a.scope == Network || a.scope == AP {
		a.finishNet()
	}
	bw := binio.NewWriter(w)
	bw.U8(coverageSnapV1)
	bw.U8(uint8(a.scope))
	bw.Int(a.numRates)
	bw.Int(a.agg.minObs)
	writeTable(bw, a.table)
	snrs := make([]int, 0, len(a.agg.bySNR))
	for s := range a.agg.bySNR {
		snrs = append(snrs, s)
	}
	sort.Ints(snrs)
	bw.Int(len(snrs))
	for _, s := range snrs {
		c := a.agg.bySNR[s]
		bw.Int(s)
		bw.F64(c.n50)
		bw.F64(c.n80)
		bw.F64(c.n95)
		bw.Int(c.max95)
		bw.Int(c.cells)
	}
	return bw.Err()
}

// Restore loads a Snapshot into a freshly constructed accumulator with
// the same scope, rate count, and cell floor.
func (a *CoverageAccum) Restore(r io.Reader) error {
	br := binio.NewReader(r)
	if v := br.U8(); br.Err() == nil && v != coverageSnapV1 {
		return fmt.Errorf("snr: coverage snapshot version %d, want %d", v, coverageSnapV1)
	}
	if sc := Scope(br.U8()); br.Err() == nil && sc != a.scope {
		return fmt.Errorf("snr: coverage snapshot scope %v, accumulator %v", sc, a.scope)
	}
	if nr := br.Int(); br.Err() == nil && nr != a.numRates {
		return fmt.Errorf("snr: coverage snapshot has %d rates, accumulator %d", nr, a.numRates)
	}
	if mo := br.Int(); br.Err() == nil && mo != a.agg.minObs {
		return fmt.Errorf("snr: coverage snapshot minObs %d, accumulator %d", mo, a.agg.minObs)
	}
	if err := readTable(br, a.table); err != nil {
		return fmt.Errorf("snr: coverage snapshot: %w", err)
	}
	n := br.Count(8)
	if err := br.Err(); err != nil {
		return fmt.Errorf("snr: coverage snapshot: %w", err)
	}
	bySNR := make(map[int]*covCell, n)
	for i := 0; i < n; i++ {
		s := br.Int()
		c := &covCell{n50: br.F64(), n80: br.F64(), n95: br.F64(), max95: br.Int(), cells: br.Int()}
		if err := br.Err(); err != nil {
			return fmt.Errorf("snr: coverage snapshot: %w", err)
		}
		bySNR[s] = c
	}
	a.agg.bySNR = bySNR
	a.held = nil
	a.curNet, a.netSeen = "", false
	return br.Err()
}

// Snapshot serializes the throughput-vs-SNR core's partial state (any
// boundary — its histogram is order-independent).
func (a *TputAccum) Snapshot(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.U8(tputSnapV1)
	bw.Int(a.numRates)
	bw.Int(a.minObs)
	snrs := make([]int, 0, len(a.rows))
	for s := range a.rows {
		snrs = append(snrs, s)
	}
	sort.Ints(snrs)
	bw.Int(len(snrs))
	for _, s := range snrs {
		row := a.rows[s]
		bw.Int(s)
		bw.I64(row.n)
		for ri := range row.cells {
			writeHist(bw, &row.cells[ri])
		}
	}
	return bw.Err()
}

// Restore loads a Snapshot into a freshly constructed accumulator.
func (a *TputAccum) Restore(r io.Reader) error {
	br := binio.NewReader(r)
	if v := br.U8(); br.Err() == nil && v != tputSnapV1 {
		return fmt.Errorf("snr: tput snapshot version %d, want %d", v, tputSnapV1)
	}
	if nr := br.Int(); br.Err() == nil && nr != a.numRates {
		return fmt.Errorf("snr: tput snapshot has %d rates, accumulator %d", nr, a.numRates)
	}
	if mo := br.Int(); br.Err() == nil && mo != a.minObs {
		return fmt.Errorf("snr: tput snapshot minObs %d, accumulator %d", mo, a.minObs)
	}
	n := br.Count(8)
	if err := br.Err(); err != nil {
		return fmt.Errorf("snr: tput snapshot: %w", err)
	}
	rows := make(map[int]*tputRow, n)
	minSNR, maxSNR := 0, 0
	for i := 0; i < n; i++ {
		s := br.Int()
		row := &tputRow{n: br.I64(), cells: make([]diffHist, a.numRates)}
		for ri := 0; ri < a.numRates; ri++ {
			readHist(br, &row.cells[ri])
		}
		if err := br.Err(); err != nil {
			return fmt.Errorf("snr: tput snapshot: %w", err)
		}
		rows[s] = row
		if i == 0 || s < minSNR {
			minSNR = s
		}
		if i == 0 || s > maxSNR {
			maxSNR = s
		}
	}
	a.rows = rows
	a.minSNR, a.maxSNR = minSNR, maxSNR
	return br.Err()
}

// Snapshot serializes the optimal-rate-set core's partial state.
func (a *RateSetAccum) Snapshot(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.U8(rateSetSnapV1)
	snrs := make([]int, 0, len(a.seen))
	for s := range a.seen {
		snrs = append(snrs, s)
	}
	sort.Ints(snrs)
	bw.Int(len(snrs))
	for _, s := range snrs {
		bw.Int(s)
		rates := make([]int, 0, len(a.seen[s]))
		for ri := range a.seen[s] {
			rates = append(rates, ri)
		}
		sort.Ints(rates)
		bw.Int(len(rates))
		for _, ri := range rates {
			bw.Int(ri)
		}
	}
	return bw.Err()
}

// Restore loads a Snapshot into a freshly constructed accumulator.
func (a *RateSetAccum) Restore(r io.Reader) error {
	br := binio.NewReader(r)
	if v := br.U8(); br.Err() == nil && v != rateSetSnapV1 {
		return fmt.Errorf("snr: rate-set snapshot version %d, want %d", v, rateSetSnapV1)
	}
	n := br.Count(8)
	if err := br.Err(); err != nil {
		return fmt.Errorf("snr: rate-set snapshot: %w", err)
	}
	seen := make(map[int]map[int]bool, n)
	for i := 0; i < n; i++ {
		s := br.Int()
		m := br.Count(8)
		if err := br.Err(); err != nil {
			return fmt.Errorf("snr: rate-set snapshot: %w", err)
		}
		rates := make(map[int]bool, m)
		for j := 0; j < m; j++ {
			rates[br.Int()] = true
		}
		if err := br.Err(); err != nil {
			return fmt.Errorf("snr: rate-set snapshot: %w", err)
		}
		seen[s] = rates
	}
	a.seen = seen
	return br.Err()
}

// writeIntSlice serializes a fixed-shape int slice.
func writeIntSlice(w *binio.Writer, vs []int) {
	w.Int(len(vs))
	for _, v := range vs {
		w.I64(int64(v))
	}
}

// readIntSliceInto decodes into dst, whose length must match the stored
// one.
func readIntSliceInto(r *binio.Reader, dst []int, what string) error {
	n := r.Count(8)
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(dst) {
		return fmt.Errorf("snr: %s has %d entries, accumulator %d", what, n, len(dst))
	}
	for i := range dst {
		dst[i] = int(r.I64())
	}
	return r.Err()
}

// Snapshot serializes the strategy-replay core's partial state.
func (a *StrategyAccum) Snapshot(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.U8(strategySnapV1)
	bw.Int(a.numRates)
	bw.Int(a.maxX)
	bw.Int(len(a.results))
	for i := range a.results {
		res := &a.results[i]
		writeIntSlice(bw, res.Hits)
		writeIntSlice(bw, res.Total)
		bw.Int(res.Updates)
		bw.Int(res.MemEntries)
		bw.Int(res.Skipped)
	}
	return bw.Err()
}

// Restore loads a Snapshot into a freshly constructed accumulator with
// the same rate count and history cap.
func (a *StrategyAccum) Restore(r io.Reader) error {
	br := binio.NewReader(r)
	if v := br.U8(); br.Err() == nil && v != strategySnapV1 {
		return fmt.Errorf("snr: strategy snapshot version %d, want %d", v, strategySnapV1)
	}
	if nr := br.Int(); br.Err() == nil && nr != a.numRates {
		return fmt.Errorf("snr: strategy snapshot has %d rates, accumulator %d", nr, a.numRates)
	}
	if mx := br.Int(); br.Err() == nil && mx != a.maxX {
		return fmt.Errorf("snr: strategy snapshot maxX %d, accumulator %d", mx, a.maxX)
	}
	if n := br.Int(); br.Err() == nil && n != len(a.results) {
		return fmt.Errorf("snr: strategy snapshot has %d strategies, accumulator %d", n, len(a.results))
	}
	if err := br.Err(); err != nil {
		return fmt.Errorf("snr: strategy snapshot: %w", err)
	}
	for i := range a.results {
		res := &a.results[i]
		if err := readIntSliceInto(br, res.Hits, "strategy snapshot hits"); err != nil {
			return err
		}
		if err := readIntSliceInto(br, res.Total, "strategy snapshot totals"); err != nil {
			return err
		}
		res.Updates = br.Int()
		res.MemEntries = br.Int()
		res.Skipped = br.Int()
	}
	return br.Err()
}

// Snapshot serializes the top-k core's partial state.
func (a *TopKAccum) Snapshot(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.U8(topkSnapV1)
	bw.Int(a.numRates)
	writeIntSlice(bw, a.ks)
	writeIntSlice(bw, a.hits)
	writeIntSlice(bw, a.evaluated)
	return bw.Err()
}

// Restore loads a Snapshot into a freshly constructed accumulator with
// the same rate count and k set.
func (a *TopKAccum) Restore(r io.Reader) error {
	br := binio.NewReader(r)
	if v := br.U8(); br.Err() == nil && v != topkSnapV1 {
		return fmt.Errorf("snr: top-k snapshot version %d, want %d", v, topkSnapV1)
	}
	if nr := br.Int(); br.Err() == nil && nr != a.numRates {
		return fmt.Errorf("snr: top-k snapshot has %d rates, accumulator %d", nr, a.numRates)
	}
	ks := make([]int, len(a.ks))
	if err := readIntSliceInto(br, ks, "top-k snapshot ks"); err != nil {
		return err
	}
	for i, k := range ks {
		if k != a.ks[i] {
			return fmt.Errorf("snr: top-k snapshot ks %v, accumulator %v", ks, a.ks)
		}
	}
	if err := readIntSliceInto(br, a.hits, "top-k snapshot hits"); err != nil {
		return err
	}
	if err := readIntSliceInto(br, a.evaluated, "top-k snapshot evaluated"); err != nil {
		return err
	}
	return br.Err()
}
