package snr

import (
	"math"
	"reflect"
	"testing"
)

// splitShards partitions samples into k contiguous shards aligned on
// network boundaries — the shard contract merge.go documents. Shards may
// be empty when k exceeds the network count.
func splitShards(t testing.TB, samples []Sample, k int) [][]Sample {
	t.Helper()
	var bounds []int // group start indices
	for i := 0; i < len(samples); {
		bounds = append(bounds, i)
		j := i + 1
		for j < len(samples) && samples[j].Net == samples[i].Net {
			j++
		}
		i = j
	}
	groups := len(bounds)
	if groups < 2 {
		t.Fatalf("only %d sample groups; shard oracles need a multi-network fixture", groups)
	}
	bounds = append(bounds, len(samples))
	shards := make([][]Sample, k)
	for s := 0; s < k; s++ {
		lo, hi := s*groups/k, (s+1)*groups/k
		shards[s] = samples[bounds[lo]:bounds[hi]]
	}
	return shards
}

// mergeShards feeds each shard into its own accumulator via feed, then
// folds them all into the first with merge — the shard runner's
// gather step.
func mergeShards[T any](shards [][]Sample, mk func() T, feed func(T, []Sample), merge func(dst, src T)) T {
	dst := mk()
	for _, shard := range shards {
		acc := mk()
		_ = ForEachSampleGroup(shard, func(g []Sample) error {
			feed(acc, g)
			return nil
		})
		merge(dst, acc)
	}
	return dst
}

func TestDistMerge(t *testing.T) {
	var a, b, both diffHist
	add := func(h *diffHist, v float64, n int64) { h.add(v, n) }
	for _, e := range []struct {
		v float64
		n int64
	}{{1.5, 3}, {math.NaN(), 2}, {2.25, 1}} {
		add(&a, e.v, e.n)
		add(&both, e.v, e.n)
	}
	for _, e := range []struct {
		v float64
		n int64
	}{{1.5, 1}, {4.0, 5}, {math.NaN(), 1}} {
		add(&b, e.v, e.n)
		add(&both, e.v, e.n)
	}
	da, db, want := a.freeze(), b.freeze(), both.freeze()
	da.Merge(db)
	if !reflect.DeepEqual(da.Materialize(), want.Materialize()) &&
		!materializeEqualNaN(da.Materialize(), want.Materialize()) {
		t.Fatalf("merged dist %v != combined %v", da.Materialize(), want.Materialize())
	}

	// Empty-partial identity, both directions.
	var empty diffHist
	de := empty.freeze()
	de.Merge(want)
	if !materializeEqualNaN(de.Materialize(), want.Materialize()) {
		t.Fatal("empty.Merge(x) != x")
	}
	w2 := both.freeze()
	w2.Merge(empty.freeze())
	if !materializeEqualNaN(w2.Materialize(), want.Materialize()) {
		t.Fatal("x.Merge(empty) != x")
	}
}

// materializeEqualNaN compares materialized distributions treating NaN as
// equal to NaN (reflect.DeepEqual already does, but keep the oracle
// explicit about element order).
func materializeEqualNaN(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

// TestPenaltyAccumMerge is the shard-vs-whole oracle for the penalty
// core: per-shard accumulators merged in shard order must reproduce the
// whole-input run bit for bit, for every scope, at several shard counts,
// with shards fed both whole-network groups and link-aligned sub-chunks
// (the latter exercises merging while Network/AP banking state is live).
func TestPenaltyAccumMerge(t *testing.T) {
	samples := simulated(t)
	whole := NewPenaltyAccum(7, Scopes)
	feedGroups(t, samples, whole.ObserveGroup)
	want := whole.Finalize()

	for _, k := range []int{1, 2, 3, 9} {
		shards := splitShards(t, samples, k)
		merged := mergeShards(shards,
			func() *PenaltyAccum { return NewPenaltyAccum(7, Scopes) },
			func(a *PenaltyAccum, g []Sample) { a.ObserveGroup(g) },
			func(dst, src *PenaltyAccum) { dst.Merge(src) })
		if got := merged.Finalize(); !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: merged penalty diverges from whole run", k)
		}
	}

	// Sub-chunked shards: a shard's networks arrive as many link-aligned
	// chunks, so merge sees held/banked state flushed by finishNet.
	shards := splitShards(t, samples, 3)
	dst := NewPenaltyAccum(7, Scopes)
	for _, shard := range shards {
		acc := NewPenaltyAccum(7, Scopes)
		if len(shard) > 0 {
			feedLinkChunks(t, shard, 16, acc.ObserveGroup)
		}
		dst.Merge(acc)
	}
	if got := dst.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("sub-chunked sharded penalty diverges from whole run")
	}

	// Empty-partial identity.
	lone := NewPenaltyAccum(7, Scopes)
	feedGroups(t, samples, lone.ObserveGroup)
	lone.Merge(NewPenaltyAccum(7, Scopes))
	if got := lone.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("x.Merge(empty) changed the penalty result")
	}
}

func TestCoverageAccumMerge(t *testing.T) {
	samples := simulated(t)
	for _, sc := range Scopes {
		for _, minObs := range []int{1, 8} {
			want := Train(samples, 7, sc).Coverage(minObs)
			for _, k := range []int{1, 2, 4} {
				merged := mergeShards(splitShards(t, samples, k),
					func() *CoverageAccum { return NewCoverageAccum(7, sc, minObs) },
					func(a *CoverageAccum, g []Sample) { a.ObserveGroup(g) },
					func(dst, src *CoverageAccum) { dst.Merge(src) })
				if got := merged.Finalize(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%v/minObs=%d/k=%d: merged coverage diverges", sc, minObs, k)
				}
			}
			// Empty-partial identity.
			lone := NewCoverageAccum(7, sc, minObs)
			feedGroups(t, samples, lone.ObserveGroup)
			lone.Merge(NewCoverageAccum(7, sc, minObs))
			if got := lone.Finalize(); !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: x.Merge(empty) changed the coverage result", sc)
			}
		}
	}
}

func TestTputAccumMerge(t *testing.T) {
	samples := simulated(t)
	want := ThroughputVsSNR(samples, 7, 25)
	for _, k := range []int{1, 3} {
		merged := mergeShards(splitShards(t, samples, k),
			func() *TputAccum { return NewTputAccum(7, 25) },
			func(a *TputAccum, g []Sample) { a.ObserveGroup(g) },
			func(dst, src *TputAccum) { dst.Merge(src) })
		if got := merged.Finalize(); !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: merged throughput-vs-SNR diverges", k)
		}
	}
	lone := NewTputAccum(7, 25)
	feedGroups(t, samples, lone.ObserveGroup)
	lone.Merge(NewTputAccum(7, 25))
	if got := lone.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("x.Merge(empty) changed the tput result")
	}
}

func TestRateSetAccumMerge(t *testing.T) {
	samples := simulated(t)
	want := OptimalRateSets(samples)
	merged := mergeShards(splitShards(t, samples, 3),
		func() *RateSetAccum { return NewRateSetAccum() },
		func(a *RateSetAccum, g []Sample) { a.ObserveGroup(g) },
		func(dst, src *RateSetAccum) { dst.Merge(src) })
	if got := merged.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("merged rate sets diverge from batch")
	}
	lone := NewRateSetAccum()
	feedGroups(t, samples, lone.ObserveGroup)
	lone.Merge(NewRateSetAccum())
	if got := lone.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("x.Merge(empty) changed the rate sets")
	}
}

func TestStrategyAccumMerge(t *testing.T) {
	samples := simulated(t)
	want := ReplayStrategies(samples, 7, 35)
	merged := mergeShards(splitShards(t, samples, 3),
		func() *StrategyAccum { return NewStrategyAccum(7, 35) },
		func(a *StrategyAccum, g []Sample) { a.ObserveGroup(g) },
		func(dst, src *StrategyAccum) { dst.Merge(src) })
	if got := merged.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("merged strategy replay diverges from batch")
	}
	lone := NewStrategyAccum(7, 35)
	feedGroups(t, samples, lone.ObserveGroup)
	lone.Merge(NewStrategyAccum(7, 35))
	if got := lone.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("x.Merge(empty) changed the strategy result")
	}
}

func TestTopKAccumMerge(t *testing.T) {
	samples := simulated(t)
	ks := []int{1, 2, 3}
	want := TopKCoverage(samples, 7, Link, ks)
	merged := mergeShards(splitShards(t, samples, 4),
		func() *TopKAccum { return NewTopKAccum(7, ks) },
		func(a *TopKAccum, g []Sample) { a.ObserveGroup(g) },
		func(dst, src *TopKAccum) { dst.Merge(src) })
	if got := merged.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("merged top-k coverage diverges from batch")
	}
	lone := NewTopKAccum(7, ks)
	feedGroups(t, samples, lone.ObserveGroup)
	lone.Merge(NewTopKAccum(7, ks))
	if got := lone.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("x.Merge(empty) changed the top-k result")
	}
}

func TestTableMerge(t *testing.T) {
	samples := simulated(t)
	for _, sc := range Scopes {
		want := Train(samples, 7, sc)
		shards := splitShards(t, samples, 3)
		merged := &Table{Scope: sc, NumRates: 7, counts: make(map[instKey]map[int][]int)}
		for _, shard := range shards {
			merged.Merge(Train(shard, 7, sc))
		}
		if !reflect.DeepEqual(merged.counts, want.counts) {
			t.Fatalf("%v: merged table diverges from whole-train", sc)
		}
	}
}
