package snr

import (
	"math"
	"sort"
	"sync"
	"testing"

	"meshlab/internal/dataset"
	"meshlab/internal/mesh"
	"meshlab/internal/phy"
	"meshlab/internal/probe"
	"meshlab/internal/rng"
	"meshlab/internal/stats"
	"meshlab/internal/topology"
)

// simData generates a small multi-network b/g probe dataset once per test
// binary; several tests share it.
var simOnce sync.Once
var simSamples []Sample

func simulated(t testing.TB) []Sample {
	simOnce.Do(func() {
		root := rng.New(1234)
		var nets []*dataset.NetworkData
		for i := 0; i < 6; i++ {
			topo, err := topology.Generate(root.SplitN("topo", i), topology.Config{
				Name: "net" + string(rune('A'+i)), Size: 10, Env: topology.EnvIndoor,
			})
			if err != nil {
				panic(err)
			}
			net := mesh.Build(root.SplitN("mesh", i), topo, phy.BandBG, mesh.BuildOptions{})
			nets = append(nets, probe.Collect(root.SplitN("probe", i), net, probe.Config{
				Duration: 4 * 3600, ReportInterval: 300,
			}))
		}
		ss, err := Flatten(nets)
		if err != nil {
			panic(err)
		}
		simSamples = ss
	})
	if len(simSamples) == 0 {
		t.Fatal("no simulated samples")
	}
	return simSamples
}

func TestFlattenBasic(t *testing.T) {
	nd := &dataset.NetworkData{
		Info: dataset.NetworkInfo{Name: "x", Band: "bg", APs: make([]dataset.APInfo, 2)},
		Links: []*dataset.Link{{From: 0, To: 1, Sets: []dataset.ProbeSet{
			{T: 300, SNR: 20, Obs: []dataset.Obs{
				{RateIdx: 0, Loss: 0},    // 1M: tput 1
				{RateIdx: 4, Loss: 0.5},  // 24M: tput 12
				{RateIdx: 6, Loss: 0.95}, // 48M: tput 2.4
			}},
			{T: 600, SNR: 5, Obs: []dataset.Obs{{RateIdx: 0, Loss: 1}}}, // nothing delivered
		}}},
	}
	samples, err := Flatten([]*dataset.NetworkData{nd})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1 (all-loss probe set skipped)", len(samples))
	}
	s := samples[0]
	if s.Popt != 4 || s.BestTput != 12 {
		t.Fatalf("Popt=%d BestTput=%v, want 4 and 12", s.Popt, s.BestTput)
	}
	if s.SNR != 20 || s.Net != "x" {
		t.Fatalf("sample metadata wrong: %+v", s)
	}
}

func TestFlattenMixedBandsRejected(t *testing.T) {
	a := &dataset.NetworkData{Info: dataset.NetworkInfo{Name: "a", Band: "bg"}}
	b := &dataset.NetworkData{Info: dataset.NetworkInfo{Name: "b", Band: "n"}}
	if _, err := Flatten([]*dataset.NetworkData{a, b}); err == nil {
		t.Fatal("mixed bands should error")
	}
}

func TestFlattenEmpty(t *testing.T) {
	got, err := Flatten(nil)
	if err != nil || got != nil {
		t.Fatalf("Flatten(nil) = %v, %v", got, err)
	}
}

func TestScopeKeys(t *testing.T) {
	s := &Sample{Net: "n1", From: 2, To: 5}
	if Global.Key(s) != "" {
		t.Fatal("global key should be empty")
	}
	if Network.Key(s) != "n1" {
		t.Fatal("network key wrong")
	}
	if AP.Key(s) != "n1/2" {
		t.Fatal("AP key wrong")
	}
	if Link.Key(s) != "n1/2>5" {
		t.Fatal("link key wrong")
	}
}

func TestTrainLookupMostFrequent(t *testing.T) {
	mk := func(popt int) Sample {
		return Sample{Net: "n", From: 0, To: 1, SNR: 25, Popt: popt, Tput: make([]float64, 7)}
	}
	samples := []Sample{mk(3), mk(3), mk(5)}
	tbl := Train(samples, 7, Link)
	pred, ok := tbl.Lookup(&samples[0])
	if !ok || pred != 3 {
		t.Fatalf("Lookup = %d, %v; want 3, true", pred, ok)
	}
	// Unknown SNR → not ok.
	unk := mk(0)
	unk.SNR = 60
	if _, ok := tbl.Lookup(&unk); ok {
		t.Fatal("lookup at unseen SNR should fail")
	}
	// Unknown link → not ok.
	other := mk(0)
	other.To = 9
	if _, ok := tbl.Lookup(&other); ok {
		t.Fatal("lookup for unseen link should fail")
	}
}

func TestLookupTieBreaksLow(t *testing.T) {
	mk := func(popt int) Sample {
		return Sample{Net: "n", From: 0, To: 1, SNR: 25, Popt: popt, Tput: make([]float64, 7)}
	}
	samples := []Sample{mk(5), mk(2)}
	tbl := Train(samples, 7, Link)
	pred, ok := tbl.Lookup(&samples[0])
	if !ok || pred != 2 {
		t.Fatalf("tie should break toward lower rate index, got %d", pred)
	}
}

func TestCoverageNeeds(t *testing.T) {
	c := []int{0, 67, 30, 3, 0, 0, 0}
	scratch := make([]int, len(c))
	n50, n80, n95 := coverageNeeds(c, 100, scratch)
	if n50 != 1 {
		t.Fatalf("50%% needs %d rates, want 1", n50)
	}
	if n80 != 2 {
		t.Fatalf("80%% needs %d rates, want 2", n80)
	}
	if n95 != 2 {
		t.Fatalf("95%% needs %d rates, want 2", n95)
	}
	if a, b, c := coverageNeeds([]int{0, 0}, 0, scratch); a != 0 || b != 0 || c != 0 {
		t.Fatalf("empty cell needs (%d,%d,%d), want zeros", a, b, c)
	}
	// A single dominant rate satisfies all three levels at once.
	if a, b, c := coverageNeeds([]int{0, 100, 0}, 100, scratch); a != 1 || b != 1 || c != 1 {
		t.Fatalf("dominant rate needs (%d,%d,%d), want all 1", a, b, c)
	}
	// An even split makes the levels spread: 4×25 → 2, 4, 4.
	if a, b, c := coverageNeeds([]int{25, 25, 25, 25}, 100, scratch); a != 2 || b != 4 || c != 4 {
		t.Fatalf("even split needs (%d,%d,%d), want (2,4,4)", a, b, c)
	}
}

func TestInstancesAndEntries(t *testing.T) {
	samples := simulated(t)
	g := Train(samples, 7, Global)
	n := Train(samples, 7, Network)
	l := Train(samples, 7, Link)
	if g.Instances() != 1 {
		t.Fatalf("global instances = %d", g.Instances())
	}
	if n.Instances() != 6 {
		t.Fatalf("network instances = %d, want 6", n.Instances())
	}
	if l.Instances() <= n.Instances() {
		t.Fatal("link tables should outnumber network tables")
	}
	if g.Entries() >= l.Entries() {
		t.Fatal("link tables should hold more cells than the single global table")
	}
}

func TestCoverageSpecificityOrdering(t *testing.T) {
	// The paper's central §4 finding: more specific training needs fewer
	// unique rates at 95%. Compare mean NeedP95 across matched SNRs.
	samples := simulated(t)
	// Per-(link, SNR) cells are small over a 4 h window, so use a low
	// observation floor for both scopes.
	g := Train(samples, 7, Global).Coverage(8)
	l := Train(samples, 7, Link).Coverage(8)
	gBySNR := map[int]float64{}
	for _, r := range g {
		gBySNR[r.SNR] = r.NeedP95
	}
	var gSum, lSum float64
	matched := 0
	for _, r := range l {
		gv, ok := gBySNR[r.SNR]
		if !ok {
			continue
		}
		gSum += gv
		lSum += r.NeedP95
		matched++
	}
	if matched < 5 {
		t.Fatalf("only %d matched SNRs", matched)
	}
	if lSum >= gSum {
		t.Fatalf("link-specific mean rates-needed (%v) should be below global (%v)", lSum/float64(matched), gSum/float64(matched))
	}
}

func TestCoverageRowsSorted(t *testing.T) {
	rows := Train(simulated(t), 7, Global).Coverage(10)
	for i := 1; i < len(rows); i++ {
		if rows[i].SNR <= rows[i-1].SNR {
			t.Fatal("coverage rows not sorted by SNR")
		}
	}
	for _, r := range rows {
		if r.NeedP50 > r.NeedP80 || r.NeedP80 > r.NeedP95 {
			t.Fatalf("coverage percentiles not monotone at SNR %d: %+v", r.SNR, r)
		}
	}
}

func TestOptimalRateSetsMultipleRates(t *testing.T) {
	// Figure 4.1: many SNRs see more than one optimal rate over time.
	sets := OptimalRateSets(simulated(t))
	multi := 0
	for _, rates := range sets {
		if len(rates) > 1 {
			multi++
		}
	}
	if multi < len(sets)/4 {
		t.Fatalf("only %d/%d SNRs saw multiple optimal rates; the global table should look unusable", multi, len(sets))
	}
}

func TestPenaltyOrdering(t *testing.T) {
	// Figure 4.4: link/AP training beats network/global on both exact
	// hits and mean throughput loss.
	samples := simulated(t)
	res := Penalty(samples, 7, Scopes)
	byScope := map[Scope]PenaltyResult{}
	for _, r := range res {
		byScope[r.Scope] = r
	}
	if byScope[Link].ExactFrac <= byScope[Global].ExactFrac {
		t.Fatalf("link exact fraction %v should exceed global %v",
			byScope[Link].ExactFrac, byScope[Global].ExactFrac)
	}
	if stats.Mean(byScope[Link].Diffs) >= stats.Mean(byScope[Global].Diffs) {
		t.Fatalf("link mean penalty %v should be below global %v",
			stats.Mean(byScope[Link].Diffs), stats.Mean(byScope[Global].Diffs))
	}
	// The thesis reports ~90% exact for per-link b/g training.
	if byScope[Link].ExactFrac < 0.6 {
		t.Fatalf("link-specific exact fraction %v suspiciously low", byScope[Link].ExactFrac)
	}
	for _, r := range res {
		for _, d := range r.Diffs {
			if d < 0 {
				t.Fatal("negative penalty")
			}
		}
	}
}

func TestThroughputVsSNRShape(t *testing.T) {
	// Figure 4.5: per-rate median throughput rises with SNR and levels
	// off near the nominal rate.
	pts := ThroughputVsSNR(simulated(t), 7, 30)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// For 24M (index 4): low-SNR cells should have much lower median
	// than high-SNR cells.
	var lo, hi []float64
	for _, p := range pts {
		if p.RateIdx != 4 {
			continue
		}
		if p.SNR <= 12 {
			lo = append(lo, p.Median)
		}
		if p.SNR >= 28 {
			hi = append(hi, p.Median)
		}
		if p.Q1 > p.Median || p.Median > p.Q3 {
			t.Fatalf("quartiles out of order at %+v", p)
		}
	}
	if len(lo) == 0 || len(hi) == 0 {
		t.Skip("simulated data lacks low/high SNR cells for 24M")
	}
	if stats.Mean(hi) <= stats.Mean(lo) {
		t.Fatalf("24M median tput should rise with SNR: lo %v hi %v", stats.Mean(lo), stats.Mean(hi))
	}
	if m := stats.Mean(hi); m > 24 {
		t.Fatalf("median tput %v exceeds nominal 24", m)
	}
}

func TestScopeString(t *testing.T) {
	names := map[Scope]string{Global: "global", Network: "network", AP: "ap", Link: "link"}
	for sc, want := range names {
		if sc.String() != want {
			t.Fatalf("%d.String() = %s", sc, sc.String())
		}
	}
	if Scope(9).String() != "Scope(9)" {
		t.Fatal("unknown scope formatting")
	}
}

func TestBandRates(t *testing.T) {
	names := BandRates(phy.BandBG)
	if len(names) != 7 || names[0] != "1M" || names[6] != "48M" {
		t.Fatalf("BandRates = %v", names)
	}
}

// TestPenaltyMatchesTableReplay pins the flat-buffer Penalty rewrite to
// the reference algorithm: train a Table per scope and replay every
// sample through Lookup. Diffs must match as sorted multisets (Penalty
// returns them sorted) and ExactFrac exactly.
func TestPenaltyMatchesTableReplay(t *testing.T) {
	samples := simulated(t)
	const numRates = 7
	got := Penalty(samples, numRates, Scopes)
	for si, sc := range Scopes {
		tbl := Train(samples, numRates, sc)
		var want []float64
		exact := 0
		for i := range samples {
			s := &samples[i]
			pred, ok := tbl.Lookup(s)
			if !ok {
				continue
			}
			diff := s.BestTput - s.Tput[pred]
			if diff < 0 {
				diff = 0
			}
			want = append(want, diff)
			if pred == s.Popt {
				exact++
			}
		}
		sort.Float64s(want)
		g := got[si]
		if g.Scope != sc {
			t.Fatalf("result %d has scope %v, want %v", si, g.Scope, sc)
		}
		if len(g.Diffs) != len(want) {
			t.Fatalf("%v: %d diffs, reference replay has %d", sc, len(g.Diffs), len(want))
		}
		if !sort.Float64sAreSorted(g.Diffs) {
			t.Fatalf("%v: Diffs not sorted", sc)
		}
		for i := range want {
			if g.Diffs[i] != want[i] {
				t.Fatalf("%v: diff[%d] = %v, reference %v", sc, i, g.Diffs[i], want[i])
			}
		}
		if wantFrac := float64(exact) / float64(len(want)); g.ExactFrac != wantFrac {
			t.Fatalf("%v: ExactFrac %v, reference %v", sc, g.ExactFrac, wantFrac)
		}
	}
}

func TestPenaltyNaNFree(t *testing.T) {
	res := Penalty(simulated(t), 7, []Scope{Network})
	for _, d := range res[0].Diffs {
		if math.IsNaN(d) {
			t.Fatal("NaN penalty")
		}
	}
}

func BenchmarkTrainLink(b *testing.B) {
	samples := simulated(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Train(samples, 7, Link)
	}
}

func BenchmarkPenaltyAllScopes(b *testing.B) {
	samples := simulated(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Penalty(samples, 7, Scopes)
	}
}
