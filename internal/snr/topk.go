package snr

// This file implements the thesis's §4.5 augmented-table analysis: instead
// of trusting the single most-frequent optimal rate per (link, SNR), keep
// the top-k rates and let a probing algorithm (e.g. SampleRate) explore
// only those. The quantity of interest is how often the true optimum falls
// inside the candidate set — if it almost always does, probing overhead
// drops by the ratio of the candidate set to the full rate set, which is
// the thesis's main hope for 802.11n and its "several dozen" rates.

import "sort"

// TopK returns the k most frequently optimal rate indices for the
// sample's (scope key, SNR) cell, most frequent first. ok is false when
// the cell has no data. Ties break toward the lower rate index.
func (t *Table) TopK(sm *Sample, k int) (rates []int, ok bool) {
	if k < 1 {
		k = 1
	}
	bySNR, ok := t.counts[t.Scope.instKey(sm)]
	if !ok {
		return nil, false
	}
	c, ok := bySNR[sm.SNR]
	if !ok {
		return nil, false
	}
	type rc struct{ ri, n int }
	var nonzero []rc
	for ri, n := range c {
		if n > 0 {
			nonzero = append(nonzero, rc{ri, n})
		}
	}
	if len(nonzero) == 0 {
		return nil, false
	}
	sort.Slice(nonzero, func(a, b int) bool {
		if nonzero[a].n != nonzero[b].n {
			return nonzero[a].n > nonzero[b].n
		}
		return nonzero[a].ri < nonzero[b].ri
	})
	if len(nonzero) > k {
		nonzero = nonzero[:k]
	}
	rates = make([]int, len(nonzero))
	for i, v := range nonzero {
		rates[i] = v.ri
	}
	return rates, true
}

// TopKResult summarizes the candidate-set analysis at one k.
type TopKResult struct {
	K int
	// HitFrac is the fraction of probe sets whose true optimal rate is
	// inside the top-K candidate set of their cell.
	HitFrac float64
	// Evaluated counts the probe sets with table data.
	Evaluated int
	// ProbeReduction is 1 − K/numRates: how much probing a
	// candidate-restricted prober saves versus probing every rate.
	ProbeReduction float64
}

// TopKCoverage trains a table at the given scope and evaluates, for each
// k, how often the optimum lies in the top-k candidate set (in-sample, as
// §4 does throughout).
func TopKCoverage(samples []Sample, numRates int, scope Scope, ks []int) []TopKResult {
	tbl := Train(samples, numRates, scope)
	out := make([]TopKResult, 0, len(ks))
	for _, k := range ks {
		hits, evaluated := 0, 0
		for i := range samples {
			s := &samples[i]
			cands, ok := tbl.TopK(s, k)
			if !ok {
				continue
			}
			evaluated++
			for _, ri := range cands {
				if ri == s.Popt {
					hits++
					break
				}
			}
		}
		res := TopKResult{K: k, Evaluated: evaluated}
		if evaluated > 0 {
			res.HitFrac = float64(hits) / float64(evaluated)
		}
		if numRates > 0 {
			res.ProbeReduction = 1 - float64(k)/float64(numRates)
			if res.ProbeReduction < 0 {
				res.ProbeReduction = 0
			}
		}
		out = append(out, res)
	}
	return out
}
