package snr

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"meshlab/internal/conc"
	"meshlab/internal/stats"
)

// feedGroups pushes samples through fn one per-network group at a time.
func feedGroups(t testing.TB, samples []Sample, fn func(group []Sample)) {
	t.Helper()
	groups := 0
	if err := ForEachSampleGroup(samples, func(g []Sample) error {
		groups++
		fn(g)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if groups < 2 {
		t.Fatalf("only %d sample groups; the chunked oracles need a multi-network fixture", groups)
	}
}

func TestForEachSampleGroupSplitsRuns(t *testing.T) {
	mk := func(net string) Sample { return Sample{Net: net} }
	samples := []Sample{mk("a"), mk("a"), mk("b"), mk("c"), mk("c"), mk("c")}
	var got [][2]interface{}
	if err := ForEachSampleGroup(samples, func(g []Sample) error {
		got = append(got, [2]interface{}{g[0].Net, len(g)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := [][2]interface{}{{"a", 2}, {"b", 1}, {"c", 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
	if err := ForEachSampleGroup(nil, func([]Sample) error { panic("no groups expected") }); err != nil {
		t.Fatal(err)
	}
}

// TestPenaltyAccumMatchesBatchReplay is the chunked-vs-batch oracle for
// the penalty core: group-at-a-time accumulation must reproduce the
// reference train-everything-replay-everything algorithm bit for bit —
// materialized Diffs, counted quantiles, and exact-hit fractions.
func TestPenaltyAccumMatchesBatchReplay(t *testing.T) {
	samples := simulated(t)
	const numRates = 7

	// Reference: full-table train + replay per scope (the same reference
	// TestPenaltyMatchesTableReplay pins the batch wrapper against).
	acc := NewPenaltyAccum(numRates, Scopes)
	feedGroups(t, samples, acc.ObserveGroup)
	dists := acc.FinalizeDists()

	for si, sc := range Scopes {
		tbl := Train(samples, numRates, sc)
		var want []float64
		exact := 0
		for i := range samples {
			s := &samples[i]
			pred, ok := tbl.Lookup(s)
			if !ok {
				t.Fatalf("%v: in-sample replay found an unpopulated cell", sc)
			}
			diff := s.BestTput - s.Tput[pred]
			if diff < 0 {
				diff = 0
			}
			want = append(want, diff)
			if pred == s.Popt {
				exact++
			}
		}
		sort.Float64s(want)

		d := dists[si]
		if d.Scope != sc {
			t.Fatalf("dist %d has scope %v, want %v", si, d.Scope, sc)
		}
		if d.Diffs.N() != len(want) {
			t.Fatalf("%v: chunked N = %d, reference %d", sc, d.Diffs.N(), len(want))
		}
		got := d.Diffs.Materialize()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: materialized diff[%d] = %v, reference %v", sc, i, got[i], want[i])
			}
		}
		if wantFrac := float64(exact) / float64(len(want)); d.ExactFrac != wantFrac {
			t.Fatalf("%v: ExactFrac %v, reference %v", sc, d.ExactFrac, wantFrac)
		}
		// Counted quantiles must equal CDF quantiles over the materialized
		// slice (what fig4.4 prints).
		cdf := stats.NewCDF(want)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.999, 1} {
			if g, w := d.Diffs.Quantile(q), cdf.Quantile(q); g != w {
				t.Fatalf("%v: Quantile(%v) = %v, CDF says %v", sc, q, g, w)
			}
		}
	}
}

// TestPenaltyAccumBudgetOracle: the accumulator fans scopes across the
// process worker budget; a single-threaded budget must produce identical
// results (the -workers 1 guarantee).
func TestPenaltyAccumBudgetOracle(t *testing.T) {
	samples := simulated(t)
	defer conc.SetBudget(0)

	run := func() []PenaltyResult {
		return Penalty(samples, 7, Scopes)
	}
	conc.SetBudget(1)
	serial := run()
	conc.SetBudget(8)
	parallel := run()
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("Penalty diverges between budget 1 and budget 8")
	}
}

func TestDistEdgeCases(t *testing.T) {
	var empty diffHist
	d := empty.freeze()
	if d.N() != 0 || !math.IsNaN(d.Quantile(0.5)) || len(d.Materialize()) != 0 {
		t.Fatalf("empty dist misbehaves: N=%d", d.N())
	}

	var one diffHist
	one.add(3.5, 1)
	d = one.freeze()
	if d.N() != 1 || d.Quantile(0) != 3.5 || d.Quantile(1) != 3.5 {
		t.Fatal("single-element dist wrong")
	}

	var h diffHist
	h.add(math.NaN(), 2)
	h.add(1.0, 1)
	h.add(2.0, 3)
	d = h.freeze()
	got := d.Materialize()
	if len(got) != 6 || !math.IsNaN(got[0]) || !math.IsNaN(got[1]) || got[2] != 1 || got[5] != 2 {
		t.Fatalf("NaN-first materialization wrong: %v", got)
	}
	// The counted quantile and the sorted-slice quantile agree even with
	// NaNs present (sort.Float64s also sorts NaNs first).
	cdf := stats.NewCDF(got)
	for _, q := range []float64{0.4, 0.6, 1} {
		g, w := d.Quantile(q), cdf.Quantile(q)
		if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
			t.Fatalf("Quantile(%v) = %v, CDF %v", q, g, w)
		}
	}
}

// TestCoverageAccumMatchesBatch: per-scope chunked coverage equals the
// batch Train+Coverage rows exactly.
func TestCoverageAccumMatchesBatch(t *testing.T) {
	samples := simulated(t)
	for _, sc := range Scopes {
		for _, minObs := range []int{1, 8} {
			want := Train(samples, 7, sc).Coverage(minObs)
			acc := NewCoverageAccum(7, sc, minObs)
			feedGroups(t, samples, acc.ObserveGroup)
			got := acc.Finalize()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v/minObs=%d: chunked coverage diverges\n got %v\nwant %v", sc, minObs, got, want)
			}
		}
	}
}

// TestTputAccumMatchesBatch: the histogram-counted Figure 4.5 core equals
// the batch counted-layout kernel bit for bit, including the interpolated
// quartiles.
func TestTputAccumMatchesBatch(t *testing.T) {
	samples := simulated(t)
	for _, minObs := range []int{1, 25} {
		want := ThroughputVsSNR(samples, 7, minObs)
		acc := NewTputAccum(7, minObs)
		feedGroups(t, samples, acc.ObserveGroup)
		got := acc.Finalize()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("minObs=%d: chunked throughput-vs-SNR diverges (%d vs %d points)", minObs, len(got), len(want))
		}
	}
	if pts := NewTputAccum(7, 1).Finalize(); pts != nil {
		t.Fatal("empty accumulator should finalize to nil")
	}
}

// TestStrategyAccumMatchesBatch: per-group strategy replay equals the
// global replay (links never span networks; the counters are sums).
func TestStrategyAccumMatchesBatch(t *testing.T) {
	samples := simulated(t)
	want := ReplayStrategies(samples, 7, 35)
	acc := NewStrategyAccum(7, 35)
	feedGroups(t, samples, acc.ObserveGroup)
	if got := acc.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("chunked strategy replay diverges from batch")
	}
}

// TestRateSetAccumMatchesBatch: chunked Figure 4.1 equals the batch sets.
func TestRateSetAccumMatchesBatch(t *testing.T) {
	samples := simulated(t)
	want := OptimalRateSets(samples)
	acc := NewRateSetAccum()
	feedGroups(t, samples, acc.ObserveGroup)
	if got := acc.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("chunked rate sets diverge from batch")
	}
}

// TestTopKAccumMatchesBatch: the chunked §4.5 candidate-set evaluation
// equals TopKCoverage at Link scope (link cells are network-local).
func TestTopKAccumMatchesBatch(t *testing.T) {
	samples := simulated(t)
	ks := []int{1, 2, 3}
	want := TopKCoverage(samples, 7, Link, ks)
	acc := NewTopKAccum(7, ks)
	feedGroups(t, samples, acc.ObserveGroup)
	if got := acc.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("chunked top-k coverage diverges from batch")
	}
}

func BenchmarkPenaltyChunked(b *testing.B) {
	samples := simulated(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := NewPenaltyAccum(7, Scopes)
		_ = ForEachSampleGroup(samples, func(g []Sample) error {
			acc.ObserveGroup(g)
			return nil
		})
		_ = acc.FinalizeDists()
	}
}

// feedLinkChunks pushes samples through fn as small link-aligned chunks:
// the wire layer's huge-group delivery shape (a network split into many
// chunks, links never split). maxRows is a soft bound — a chunk extends
// past it to the next link boundary.
func feedLinkChunks(t testing.TB, samples []Sample, maxRows int, fn func(group []Sample)) {
	t.Helper()
	chunks, multiNet := 0, false
	netChunks := map[string]int{}
	if err := ForEachSampleGroup(samples, func(g []Sample) error {
		start := 0
		for i := 1; i <= len(g); i++ {
			if i == len(g) {
				fn(g[start:i])
				chunks++
				netChunks[g[0].Net]++
				break
			}
			boundary := g[i].From != g[i-1].From || g[i].To != g[i-1].To
			if i-start >= maxRows && boundary {
				fn(g[start:i])
				chunks++
				netChunks[g[0].Net]++
				start = i
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, n := range netChunks {
		if n > 1 {
			multiNet = true
		}
	}
	if !multiNet {
		t.Fatalf("no network split into multiple chunks (%d chunks total); the sub-chunk oracle is vacuous", chunks)
	}
}

// TestPenaltyAccumSubChunkOracle: feeding a network as many link-aligned
// sub-chunks must reproduce the whole-network feed exactly — the
// Network- and AP-scope banking resolves at network boundaries, the
// Link scope within each chunk.
func TestPenaltyAccumSubChunkOracle(t *testing.T) {
	samples := simulated(t)
	whole := NewPenaltyAccum(7, Scopes)
	feedGroups(t, samples, whole.ObserveGroup)
	want := whole.Finalize()

	chunked := NewPenaltyAccum(7, Scopes)
	feedLinkChunks(t, samples, 16, chunked.ObserveGroup)
	got := chunked.Finalize()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sub-chunked penalty diverges from whole-network feeding")
	}
}

// TestCoverageAccumSubChunkOracle: same property for every coverage scope.
func TestCoverageAccumSubChunkOracle(t *testing.T) {
	samples := simulated(t)
	for _, sc := range Scopes {
		want := Train(samples, 7, sc).Coverage(8)
		acc := NewCoverageAccum(7, sc, 8)
		feedLinkChunks(t, samples, 16, acc.ObserveGroup)
		if got := acc.Finalize(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: sub-chunked coverage diverges from batch", sc)
		}
	}
}

// TestStrategyAccumSubChunkOracle: links complete within chunks, so the
// online replays are unaffected by the chunking.
func TestStrategyAccumSubChunkOracle(t *testing.T) {
	samples := simulated(t)
	want := ReplayStrategies(samples, 7, 35)
	acc := NewStrategyAccum(7, 35)
	feedLinkChunks(t, samples, 16, acc.ObserveGroup)
	if got := acc.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("sub-chunked strategy replay diverges from batch")
	}
}

// TestTopKAccumSubChunkOracle: link cells complete within chunks, so the
// candidate-set evaluation is unaffected by the chunking.
func TestTopKAccumSubChunkOracle(t *testing.T) {
	samples := simulated(t)
	want := TopKCoverage(samples, 7, Link, []int{1, 2, 3})
	acc := NewTopKAccum(7, []int{1, 2, 3})
	feedLinkChunks(t, samples, 16, acc.ObserveGroup)
	if got := acc.Finalize(); !reflect.DeepEqual(got, want) {
		t.Fatal("sub-chunked top-k coverage diverges from batch")
	}
}
