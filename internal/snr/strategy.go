package snr

import "fmt"

// Strategy is an online table-building policy (§4.5, Figure 4.6,
// Table 4.1): how a node keeps its per-link SNR→rate table up to date.
type Strategy int

const (
	// First keeps only the first optimal rate observed at each SNR.
	First Strategy = iota
	// MostRecent keeps only the most recent optimal rate per SNR.
	MostRecent
	// Subsampled keeps counts updated from every third probe set.
	Subsampled
	// All keeps counts over every probe set.
	All
)

// String names the strategy as Table 4.1 does.
func (s Strategy) String() string {
	switch s {
	case First:
		return "first"
	case MostRecent:
		return "most-recent"
	case Subsampled:
		return "subsampled"
	case All:
		return "all"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all online strategies.
var Strategies = []Strategy{First, MostRecent, Subsampled, All}

// StrategyResult aggregates a strategy's replay outcome.
type StrategyResult struct {
	Strategy Strategy
	// Hits[x] and Total[x] count correct and total predictions made when
	// a link had already seen x probe sets (x ∈ [1, len-1]; index 0 is
	// unused because no prediction is attempted with no history).
	Hits, Total []int
	// Updates is the number of table writes performed.
	Updates int
	// MemEntries is the number of data points retained at the end.
	MemEntries int
	// Skipped counts predictions skipped for lack of data at the SNR.
	Skipped int
}

// Accuracy returns the hit fraction at history length x, or -1 when no
// prediction was made there.
func (r *StrategyResult) Accuracy(x int) float64 {
	if x < 0 || x >= len(r.Total) || r.Total[x] == 0 {
		return -1
	}
	return float64(r.Hits[x]) / float64(r.Total[x])
}

// OverallAccuracy returns the hit fraction over all predictions.
func (r *StrategyResult) OverallAccuracy() float64 {
	h, t := 0, 0
	for i := range r.Total {
		h += r.Hits[i]
		t += r.Total[i]
	}
	if t == 0 {
		return -1
	}
	return float64(h) / float64(t)
}

// linkState is one link's online table under one strategy.
type linkState struct {
	firstVal  map[int]int   // SNR → first Popt
	recentVal map[int]int   // SNR → last Popt
	counts    map[int][]int // SNR → Popt counts
	seen      int           // probe sets seen on this link
	updates   int
	stored    int
}

// ReplayStrategies replays every link's probe sets in time order through
// each strategy, predicting before updating (Figure 4.6). maxX caps the
// history-length axis; longer histories accumulate into the last bucket.
// It is the batch form of StrategyAccum: links never span networks and
// every reported field is an integer sum over per-link replays, so the
// per-network-group fold produces identical results. Like Penalty, it
// requires the samples in Flatten order (networks contiguous, links
// contiguous within them) — a link split across non-adjacent runs would
// restart its online table mid-sequence.
func ReplayStrategies(samples []Sample, numRates, maxX int) []StrategyResult {
	acc := NewStrategyAccum(numRates, maxX)
	_ = ForEachSampleGroup(samples, func(group []Sample) error {
		acc.ObserveGroup(group)
		return nil
	})
	return acc.Finalize()
}

// replayLink replays one link's time-ordered probe sets through one
// strategy, folding the hit/total/update counters into res.
func replayLink(res *StrategyResult, st Strategy, seq []*Sample, numRates, maxX int) {
	ls := &linkState{
		firstVal:  make(map[int]int),
		recentVal: make(map[int]int),
		counts:    make(map[int][]int),
	}
	for _, sm := range seq {
		// Predict from current state.
		pred, ok := ls.predict(st, sm.SNR)
		if ok {
			x := ls.seen
			if x > maxX {
				x = maxX
			}
			res.Total[x]++
			if pred == sm.Popt {
				res.Hits[x]++
			}
		} else {
			res.Skipped++
		}
		ls.update(st, sm.SNR, sm.Popt, numRates)
		ls.seen++
	}
	res.Updates += ls.updates
	res.MemEntries += ls.stored
}

func (ls *linkState) predict(st Strategy, snr int) (int, bool) {
	switch st {
	case First:
		v, ok := ls.firstVal[snr]
		return v, ok
	case MostRecent:
		v, ok := ls.recentVal[snr]
		return v, ok
	default:
		c, ok := ls.counts[snr]
		if !ok {
			return 0, false
		}
		best, bestN := -1, 0
		for ri, n := range c {
			if n > bestN {
				best, bestN = ri, n
			}
		}
		if best < 0 {
			return 0, false
		}
		return best, true
	}
}

func (ls *linkState) update(st Strategy, snr, popt, numRates int) {
	switch st {
	case First:
		if _, ok := ls.firstVal[snr]; !ok {
			ls.firstVal[snr] = popt
			ls.updates++
			ls.stored++
		}
	case MostRecent:
		if _, ok := ls.recentVal[snr]; !ok {
			ls.stored++
		}
		ls.recentVal[snr] = popt
		ls.updates++
	case Subsampled:
		// Every third probe set, plus always the first sighting of an
		// SNR so predictions become possible at all.
		_, seenSNR := ls.counts[snr]
		if ls.seen%3 != 0 && seenSNR {
			return
		}
		ls.bump(snr, popt, numRates)
	case All:
		ls.bump(snr, popt, numRates)
	}
}

func (ls *linkState) bump(snr, popt, numRates int) {
	c, ok := ls.counts[snr]
	if !ok {
		c = make([]int, numRates)
		ls.counts[snr] = c
	}
	c[popt]++
	ls.updates++
	ls.stored++
}
