// Package adapt implements the bit-rate adaptation protocols the thesis
// analyzes and envisions, and a replay harness to compare them on a live
// channel:
//
//   - Fixed: always transmit at one rate (baseline).
//   - SampleRate: probe-based adaptation in the style of Bicket's
//     SampleRate — keep an EWMA of per-rate throughput, transmit at the
//     best known rate, and periodically spend a transmission probing a
//     different rate.
//   - SNRTable: the thesis's per-link look-up table (§4.1) — remember the
//     best rate observed at each SNR and select by current SNR.
//   - Hybrid: the §4.5 "envisioned" protocol — an SNR-keyed table that
//     tracks the top-k rates per SNR and restricts SampleRate-style
//     probing to those candidates, cutting probe overhead the way the
//     thesis argues an 802.11n adapter must.
//
// Protocols only learn from transmissions they actually make (including
// their own probes); they never see the oracle's per-rate ground truth.
package adapt

import (
	"fmt"
	"math"
	"sort"

	"meshlab/internal/phy"
	"meshlab/internal/radio"
	"meshlab/internal/rng"
)

// Adapter is a bit-rate adaptation policy. Select returns the rate index
// to transmit at given the current reported SNR (integer dB); Observe
// feeds back the measured packet success rate of the transmission window
// that used rate ri at SNR snr.
type Adapter interface {
	Name() string
	Select(snr int) int
	Observe(snr int, ri int, success float64)
}

// Fixed always transmits at one rate.
type Fixed struct {
	// Rate is the rate index used for every transmission.
	Rate int
	band phy.Band
}

// NewFixed returns a fixed-rate adapter.
func NewFixed(band phy.Band, rate int) *Fixed { return &Fixed{Rate: rate, band: band} }

// Name implements Adapter.
func (f *Fixed) Name() string { return "fixed-" + f.band.Rates[f.Rate].Name }

// Select implements Adapter.
func (f *Fixed) Select(int) int { return f.Rate }

// Observe implements Adapter.
func (f *Fixed) Observe(int, int, float64) {}

// SampleRate keeps an EWMA of per-rate throughput and transmits at the
// best rate, probing another rate every ProbeEvery windows.
type SampleRate struct {
	band  phy.Band
	ewma  []float64 // estimated throughput per rate
	known []bool
	since int // windows since last probe
	// ProbeEvery is the probing period in windows (default 10).
	ProbeEvery int
	// Alpha is the EWMA weight of new observations (default 0.3).
	Alpha float64
	rng   *rng.Stream
	// probing remembers that the last Select was a probe.
	lastWasProbe bool
}

// NewSampleRate returns a SampleRate-style adapter.
func NewSampleRate(band phy.Band, r *rng.Stream) *SampleRate {
	return &SampleRate{
		band:       band,
		ewma:       make([]float64, len(band.Rates)),
		known:      make([]bool, len(band.Rates)),
		ProbeEvery: 10,
		Alpha:      0.3,
		rng:        r,
	}
}

// Name implements Adapter.
func (s *SampleRate) Name() string { return "samplerate" }

// Select implements Adapter.
func (s *SampleRate) Select(int) int {
	s.since++
	if s.since >= s.ProbeEvery {
		s.since = 0
		s.lastWasProbe = true
		return s.probeCandidate()
	}
	s.lastWasProbe = false
	return s.best()
}

func (s *SampleRate) best() int {
	best, bestV := 0, math.Inf(-1)
	for ri, v := range s.ewma {
		if !s.known[ri] {
			continue
		}
		if v > bestV {
			best, bestV = ri, v
		}
	}
	if math.IsInf(bestV, -1) {
		return 0 // nothing known yet: start at the lowest rate
	}
	return best
}

// probeCandidate picks an unknown or random non-best rate to try.
func (s *SampleRate) probeCandidate() int {
	for ri, k := range s.known {
		if !k {
			return ri
		}
	}
	return s.rng.Intn(len(s.band.Rates))
}

// Observe implements Adapter.
func (s *SampleRate) Observe(_ int, ri int, success float64) {
	tput := s.band.Rates[ri].Mbps * success
	if !s.known[ri] {
		s.ewma[ri] = tput
		s.known[ri] = true
		return
	}
	s.ewma[ri] = (1-s.Alpha)*s.ewma[ri] + s.Alpha*tput
}

// SNRTable is the thesis's per-link SNR→rate table, built online: for
// each SNR it remembers the throughput observed per rate and selects the
// best known rate for the current SNR, exploring when the SNR is unknown.
type SNRTable struct {
	band phy.Band
	// perSNR[snr][ri] is the best observed throughput, NaN if untried.
	perSNR map[int][]float64
	rng    *rng.Stream
}

// NewSNRTable returns an online per-link SNR table adapter.
func NewSNRTable(band phy.Band, r *rng.Stream) *SNRTable {
	return &SNRTable{band: band, perSNR: make(map[int][]float64), rng: r}
}

// Name implements Adapter.
func (t *SNRTable) Name() string { return "snr-table" }

func (t *SNRTable) row(snr int) []float64 {
	row, ok := t.perSNR[snr]
	if !ok {
		row = make([]float64, len(t.band.Rates))
		for i := range row {
			row[i] = math.NaN()
		}
		t.perSNR[snr] = row
	}
	return row
}

// Select implements Adapter: the best known rate at this SNR; if no rate
// has been tried at this SNR yet, try an untried one (exploration).
func (t *SNRTable) Select(snr int) int {
	row := t.row(snr)
	best, bestV := -1, math.Inf(-1)
	var untried []int
	for ri, v := range row {
		if math.IsNaN(v) {
			untried = append(untried, ri)
			continue
		}
		if v > bestV {
			best, bestV = ri, v
		}
	}
	// Explore untried rates occasionally, and always when nothing is
	// known for this SNR.
	if len(untried) > 0 && (best < 0 || t.rng.Bool(0.15)) {
		return untried[t.rng.Intn(len(untried))]
	}
	return best
}

// Observe implements Adapter.
func (t *SNRTable) Observe(snr int, ri int, success float64) {
	row := t.row(snr)
	tput := t.band.Rates[ri].Mbps * success
	if math.IsNaN(row[ri]) || tput > row[ri] {
		row[ri] = tput
		return
	}
	// Exponential forgetting so stale optima fade.
	row[ri] = 0.8*row[ri] + 0.2*tput
}

// Hybrid is the §4.5 protocol: an SNR table that keeps the top-K rates
// per SNR and runs SampleRate-style probing restricted to them.
type Hybrid struct {
	*SNRTable
	// K is the candidate-set size per SNR (thesis suggests 2-3).
	K     int
	since int
}

// NewHybrid returns the thesis's envisioned table+probing protocol.
func NewHybrid(band phy.Band, r *rng.Stream, k int) *Hybrid {
	if k < 1 {
		k = 2
	}
	return &Hybrid{SNRTable: NewSNRTable(band, r), K: k}
}

// Name implements Adapter.
func (h *Hybrid) Name() string { return fmt.Sprintf("hybrid-k%d", h.K) }

// Select implements Adapter: transmit at the best of the SNR's top-K
// known rates, probing within the candidate set periodically.
func (h *Hybrid) Select(snr int) int {
	row := h.row(snr)
	type cand struct {
		ri int
		v  float64
	}
	var known []cand
	var untried []int
	for ri, v := range row {
		if math.IsNaN(v) {
			untried = append(untried, ri)
		} else {
			known = append(known, cand{ri, v})
		}
	}
	if len(known) == 0 {
		return untried[h.rng.Intn(len(untried))]
	}
	sort.Slice(known, func(a, b int) bool { return known[a].v > known[b].v })
	top := known
	if len(top) > h.K {
		top = top[:h.K]
	}
	h.since++
	if h.since >= 8 {
		h.since = 0
		// Probe: mostly within the candidate set, occasionally an
		// untried rate so new candidates can enter.
		if len(untried) > 0 && h.rng.Bool(0.3) {
			return untried[h.rng.Intn(len(untried))]
		}
		return top[h.rng.Intn(len(top))].ri
	}
	return top[0].ri
}

// Trace is the outcome of replaying one adapter over a channel.
type Trace struct {
	Name string
	// MeanTput is the realized mean throughput in Mbit/s.
	MeanTput float64
	// OracleFrac is MeanTput divided by the oracle's mean throughput.
	OracleFrac float64
	// Selections counts windows per rate index.
	Selections []int
}

// Replay runs the adapters over a channel for the given number of windows
// (one Select/Observe per window, windowSecs apart), alongside an oracle
// that always picks the instantaneous best rate. All adapters see the
// identical channel evolution.
func Replay(r *rng.Stream, ch *radio.Channel, band phy.Band, adapters []Adapter, windows int, windowSecs float64) []Trace {
	sums := make([]float64, len(adapters))
	sels := make([][]int, len(adapters))
	for i := range sels {
		sels[i] = make([]int, len(band.Rates))
	}
	var oracleSum float64

	for w := 0; w < windows; w++ {
		ch.Advance(windowSecs)
		snr := int(math.Round(ch.ReportedSNR()))
		// Ground truth per rate for this window.
		tput := make([]float64, len(band.Rates))
		best := 0.0
		for ri, rate := range band.Rates {
			p := ch.SuccessProb(rate)
			tput[ri] = rate.Mbps * p
			if tput[ri] > best {
				best = tput[ri]
			}
		}
		oracleSum += best
		for i, a := range adapters {
			ri := a.Select(snr)
			sums[i] += tput[ri]
			sels[i][ri]++
			// Feedback: measured success of the window's ~20 frames.
			success := tput[ri] / band.Rates[ri].Mbps
			noisy := success + r.NormFloat64()*math.Sqrt(success*(1-success)/20)
			if noisy < 0 {
				noisy = 0
			}
			if noisy > 1 {
				noisy = 1
			}
			a.Observe(snr, ri, noisy)
		}
	}

	out := make([]Trace, len(adapters))
	oracleMean := oracleSum / float64(windows)
	for i, a := range adapters {
		mean := sums[i] / float64(windows)
		frac := 0.0
		if oracleMean > 0 {
			frac = mean / oracleMean
		}
		out[i] = Trace{Name: a.Name(), MeanTput: mean, OracleFrac: frac, Selections: sels[i]}
	}
	return out
}
