package adapt

import (
	"math"
	"testing"

	"meshlab/internal/phy"
	"meshlab/internal/radio"
	"meshlab/internal/rng"
)

func testChannel(seed uint64, dist float64) *radio.Channel {
	p := radio.DefaultParams(radio.Indoor)
	return radio.NewPair(rng.New(seed), dist, p).Fwd
}

func runReplay(t testing.TB, seed uint64, dist float64, windows int) []Trace {
	if t != nil {
		t.Helper()
	}
	r := rng.New(seed)
	ch := testChannel(seed, dist)
	adapters := []Adapter{
		NewFixed(phy.BandBG, phy.BandBG.RateIndex("1M")),
		NewFixed(phy.BandBG, phy.BandBG.RateIndex("48M")),
		NewSampleRate(phy.BandBG, r.Split("sr")),
		NewSNRTable(phy.BandBG, r.Split("tbl")),
		NewHybrid(phy.BandBG, r.Split("hy"), 2),
	}
	return Replay(r.Split("replay"), ch, phy.BandBG, adapters, windows, 300)
}

func traceByName(traces []Trace, name string) *Trace {
	for i := range traces {
		if traces[i].Name == name {
			return &traces[i]
		}
	}
	return nil
}

func TestFixedNames(t *testing.T) {
	f := NewFixed(phy.BandBG, 0)
	if f.Name() != "fixed-1M" {
		t.Fatalf("name %q", f.Name())
	}
	if f.Select(30) != 0 {
		t.Fatal("fixed adapter moved")
	}
	f.Observe(30, 0, 0.5) // must be a no-op, not a panic
}

func TestReplayBasics(t *testing.T) {
	traces := runReplay(t, 1, 30, 500)
	if len(traces) != 5 {
		t.Fatalf("got %d traces", len(traces))
	}
	for _, tr := range traces {
		if tr.MeanTput < 0 {
			t.Fatalf("%s: negative throughput", tr.Name)
		}
		if tr.OracleFrac < 0 || tr.OracleFrac > 1+1e-9 {
			t.Fatalf("%s: oracle fraction %v out of range", tr.Name, tr.OracleFrac)
		}
		total := 0
		for _, n := range tr.Selections {
			total += n
		}
		if total != 500 {
			t.Fatalf("%s: %d selections for 500 windows", tr.Name, total)
		}
	}
}

func TestAdaptiveBeatsWorstFixed(t *testing.T) {
	// On a mid-range link, adaptive policies must beat at least one of
	// the fixed extremes (1M leaves throughput on the table; 48M loses
	// everything when the SNR dips).
	traces := runReplay(t, 2, 40, 2000)
	low := traceByName(traces, "fixed-1M")
	tbl := traceByName(traces, "snr-table")
	hy := traceByName(traces, "hybrid-k2")
	if tbl.MeanTput <= low.MeanTput {
		t.Fatalf("snr-table (%v) should beat fixed-1M (%v)", tbl.MeanTput, low.MeanTput)
	}
	if hy.MeanTput <= low.MeanTput {
		t.Fatalf("hybrid (%v) should beat fixed-1M (%v)", hy.MeanTput, low.MeanTput)
	}
}

func TestAdaptiveNearOracleOnStrongLink(t *testing.T) {
	// On a very strong link the best rate is constant, so the table and
	// hybrid should converge close to the oracle.
	traces := runReplay(t, 3, 10, 2000)
	for _, name := range []string{"snr-table", "hybrid-k2", "samplerate"} {
		tr := traceByName(traces, name)
		if tr.OracleFrac < 0.85 {
			t.Fatalf("%s: only %.0f%% of oracle on an easy link", name, tr.OracleFrac*100)
		}
	}
}

func TestHybridProbesFewerRatesThanSampleRate(t *testing.T) {
	// The point of §4.5: restricting probing to the SNR table's top-k
	// cuts the number of distinct suboptimal rates tried after
	// convergence. Compare how many windows each spent on rates other
	// than its modal rate.
	traces := runReplay(t, 4, 25, 3000)
	offModal := func(tr *Trace) int {
		mode, total := 0, 0
		for _, n := range tr.Selections {
			total += n
			if n > mode {
				mode = n
			}
		}
		return total - mode
	}
	sr := offModal(traceByName(traces, "samplerate"))
	hy := offModal(traceByName(traces, "hybrid-k2"))
	if hy > sr*2 {
		t.Fatalf("hybrid spent %d off-modal windows vs samplerate %d; candidate restriction is not working", hy, sr)
	}
}

func TestSNRTableLearnsPerSNR(t *testing.T) {
	r := rng.New(5)
	tbl := NewSNRTable(phy.BandBG, r)
	// Teach it: at SNR 30 the best rate is 24M (index 4).
	for i := 0; i < 50; i++ {
		tbl.Observe(30, 4, 0.95)
		tbl.Observe(30, 6, 0.05)
	}
	hits := 0
	for i := 0; i < 100; i++ {
		if tbl.Select(30) == 4 {
			hits++
		}
	}
	// Exploration may occasionally pick untried rates, but the learned
	// rate must dominate.
	if hits < 60 {
		t.Fatalf("learned rate selected only %d/100 times", hits)
	}
}

func TestSNRTableExploresUnknownSNR(t *testing.T) {
	tbl := NewSNRTable(phy.BandBG, rng.New(6))
	ri := tbl.Select(25)
	if ri < 0 || ri >= len(phy.BandBG.Rates) {
		t.Fatalf("selection %d out of range", ri)
	}
}

func TestSampleRateConvergence(t *testing.T) {
	r := rng.New(7)
	sr := NewSampleRate(phy.BandBG, r)
	// Feed ground truth where 12M (index 3) wins.
	success := []float64{0.99, 0.9, 0.8, 0.95, 0.05, 0.01, 0.0}
	for i := 0; i < 200; i++ {
		ri := sr.Select(20)
		sr.Observe(20, ri, success[ri])
	}
	// After convergence, the non-probe selection must be 12M.
	counts := make([]int, 7)
	for i := 0; i < 100; i++ {
		counts[sr.Select(20)]++
	}
	best := 0
	for ri, n := range counts {
		if n > counts[best] {
			best = ri
		}
	}
	if best != 3 {
		t.Fatalf("samplerate converged to rate %d (%s), want 3 (12M); counts %v",
			best, phy.BandBG.Rates[best].Name, counts)
	}
}

func TestHybridKDefault(t *testing.T) {
	h := NewHybrid(phy.BandBG, rng.New(8), 0)
	if h.K != 2 {
		t.Fatalf("default K = %d", h.K)
	}
	if h.Name() != "hybrid-k2" {
		t.Fatalf("name %q", h.Name())
	}
}

func TestReplayDeterminism(t *testing.T) {
	a := runReplay(t, 9, 30, 300)
	b := runReplay(t, 9, 30, 300)
	for i := range a {
		if math.Abs(a[i].MeanTput-b[i].MeanTput) > 1e-12 {
			t.Fatalf("%s differs across identical seeds", a[i].Name)
		}
	}
}

func BenchmarkReplayAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runReplay(b, uint64(i), 30, 500)
	}
}
