package e2e

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"meshlab"
	"meshlab/internal/atomicio"
	"meshlab/internal/scenario"
)

// tinySpec parses a minimal valid scenario for harness-mechanics tests
// (no dataset is synthesized unless a test asks for one).
func tinySpec(t *testing.T) *scenario.Spec {
	t.Helper()
	raw, err := json.Marshal(map[string]any{
		"version": 1,
		"name":    "e2e-tiny",
		"seed":    9,
		"fleet": map[string]any{
			"networks": 2,
			"env_mix":  map[string]any{"indoor": 1, "outdoor": 1},
			"band_mix": map[string]any{"bg": 2},
			"size":     map[string]any{"min": 3, "max": 5, "log_mean": 1.1, "log_std": 0.3},
		},
		"probe":   map[string]any{"duration_s": 900, "interval_s": 300},
		"clients": map[string]any{"skip": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := scenario.Parse(raw, "e2e-tiny.json")
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// fakeVariant builds a Variant around an arbitrary run function —
// the white-box hook that lets these tests drive the polling machinery
// without paying for a real suite run.
func fakeVariant(name string, fn func(h *Harness, sp *scenario.Spec, dataset string) ([]*meshlab.Result, error)) Variant {
	return Variant{Name: name, run: fn}
}

// fakeResults is a deterministic one-result set for report rendering.
func fakeResults() []*meshlab.Result {
	return []*meshlab.Result{{
		ID: "fig0.0", Title: "harness probe",
		Header: []string{"k", "v"},
		Rows:   [][]string{{"answer", "42"}},
	}}
}

// TestWaitConvergedSuccess: a variant that finishes publishes its
// artifact atomically and WaitConverged returns exactly those bytes.
func TestWaitConvergedSuccess(t *testing.T) {
	h := New(t.TempDir())
	h.PollInterval = time.Millisecond
	sp := tinySpec(t)
	v := fakeVariant("ok", func(h *Harness, sp *scenario.Spec, dataset string) ([]*meshlab.Result, error) {
		return fakeResults(), nil
	})
	r := h.Start(sp, "unused.bin", v)
	data, err := h.WaitConverged(r)
	if err != nil {
		t.Fatalf("WaitConverged: %v", err)
	}
	want := Report(sp, fakeResults())
	if string(data) != want {
		t.Errorf("artifact diverges from Report rendering:\ngot:\n%s\nwant:\n%s", data, want)
	}
	if r.Err() != nil {
		t.Errorf("Err() = %v after a clean run", r.Err())
	}
	if r.Artifact != filepath.Join(h.Dir, "e2e-tiny.ok.report") {
		t.Errorf("artifact path %q", r.Artifact)
	}
}

// TestWaitConvergedRunError: a failing variant surfaces its error from
// WaitConverged (wrapped with the scenario/variant identity) instead of
// polling until timeout.
func TestWaitConvergedRunError(t *testing.T) {
	h := New(t.TempDir())
	h.PollInterval = time.Millisecond
	boom := errors.New("suite exploded")
	r := h.Start(tinySpec(t), "unused.bin", fakeVariant("bad",
		func(h *Harness, sp *scenario.Spec, dataset string) ([]*meshlab.Result, error) {
			return nil, boom
		}))
	start := time.Now()
	_, err := h.WaitConverged(r)
	if !errors.Is(err, boom) {
		t.Fatalf("WaitConverged = %v, want the run error", err)
	}
	for _, part := range []string{"e2e-tiny", "bad"} {
		if !strings.Contains(err.Error(), part) {
			t.Errorf("error %q does not name %q", err, part)
		}
	}
	if time.Since(start) > 5*time.Second {
		t.Error("run error took the timeout path instead of failing fast")
	}
}

// TestWaitConvergedTimeout: a variant that never converges (blocked
// forever, no artifact) trips the harness timeout with a contextual
// error rather than hanging.
func TestWaitConvergedTimeout(t *testing.T) {
	h := New(t.TempDir())
	h.PollInterval = time.Millisecond
	h.Timeout = 50 * time.Millisecond
	release := make(chan struct{})
	defer close(release)
	r := h.Start(tinySpec(t), "unused.bin", fakeVariant("stuck",
		func(h *Harness, sp *scenario.Spec, dataset string) ([]*meshlab.Result, error) {
			<-release // never converges within the test's timeout
			return fakeResults(), nil
		}))
	_, err := h.WaitConverged(r)
	if err == nil {
		t.Fatal("WaitConverged returned without an artifact or a timeout")
	}
	for _, part := range []string{"no converged artifact", "e2e-tiny", "stuck"} {
		if !strings.Contains(err.Error(), part) {
			t.Errorf("timeout error %q does not mention %q", err, part)
		}
	}
}

// TestConvergenceIsArtifactExistence: the harness's convergence signal
// is the artifact file itself, not the run goroutine finishing — a
// variant that publishes its artifact out-of-band and then blocks still
// converges.
func TestConvergenceIsArtifactExistence(t *testing.T) {
	h := New(t.TempDir())
	h.PollInterval = time.Millisecond
	sp := tinySpec(t)
	published := Report(sp, fakeResults())
	release := make(chan struct{})
	defer close(release)
	r := h.Start(sp, "unused.bin", fakeVariant("sideways",
		func(h *Harness, sp *scenario.Spec, dataset string) ([]*meshlab.Result, error) {
			artifact := filepath.Join(h.Dir, sp.Name+".sideways.report")
			if err := atomicio.WriteBytes(artifact, 0o644, []byte(published)); err != nil {
				return nil, err
			}
			<-release // the goroutine itself never finishes in time
			return fakeResults(), nil
		}))
	data, err := h.WaitConverged(r)
	if err != nil {
		t.Fatalf("WaitConverged: %v", err)
	}
	if string(data) != published {
		t.Error("converged artifact is not the published bytes")
	}
}

// TestAtomicPublishNoTornReads hammers the artifact path with
// concurrent readers while a run publishes: every read that succeeds
// must see the complete report — the atomic temp+rename publish means
// there is no window where a partial file is visible.
func TestAtomicPublishNoTornReads(t *testing.T) {
	h := New(t.TempDir())
	h.PollInterval = time.Millisecond
	sp := tinySpec(t)
	// A large report makes a torn write (partial content visible under
	// a non-atomic publish) overwhelmingly likely to be caught.
	results := fakeResults()
	for i := 0; i < 2000; i++ {
		results[0].Rows = append(results[0].Rows, []string{fmt.Sprintf("row-%04d", i), "x"})
	}
	want := Report(sp, results)

	r := h.Start(sp, "unused.bin", fakeVariant("atomic",
		func(h *Harness, sp *scenario.Spec, dataset string) ([]*meshlab.Result, error) {
			return results, nil
		}))

	var wg sync.WaitGroup
	torn := make(chan string, 8)
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				data, err := os.ReadFile(r.Artifact)
				if err == nil && string(data) != want {
					select {
					case torn <- fmt.Sprintf("read %d bytes, want %d", len(data), len(want)):
					default:
					}
					return
				}
			}
		}()
	}
	if _, err := h.WaitConverged(r); err != nil {
		t.Fatalf("WaitConverged: %v", err)
	}
	close(stop)
	wg.Wait()
	close(torn)
	for msg := range torn {
		t.Errorf("torn read: a reader saw a partial artifact (%s)", msg)
	}
}

// TestSynthesizeReusesDataset: the first Synthesize writes the dataset
// file; the second returns the same path without rewriting (the
// compilation is deterministic, so a present file is the right file).
func TestSynthesizeReusesDataset(t *testing.T) {
	h := New(t.TempDir())
	sp := tinySpec(t)
	path, err := h.Synthesize(sp)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if path != h.DatasetPath(sp) {
		t.Errorf("Synthesize path %q, want %q", path, h.DatasetPath(sp))
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := h.Synthesize(sp)
	if err != nil || again != path {
		t.Fatalf("second Synthesize: %q, %v", again, err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Error("second Synthesize rewrote the dataset file")
	}
	f, err := meshlab.LoadFleet(path)
	if err != nil {
		t.Fatalf("synthesized dataset unreadable: %v", err)
	}
	if len(f.Networks) != 2 || f.Meta.Seed != 9 {
		t.Errorf("synthesized dataset wrong: %d networks, seed %d", len(f.Networks), f.Meta.Seed)
	}
}

// TestSynthesizeConcurrentAtomic: concurrent Synthesize calls for one
// spec race stat-then-generate, but the atomic save (temp + fsync +
// rename) means no caller can ever observe a partial dataset — every
// returned path loads as a complete fleet even mid-race. Callers
// wanting to share one synthesis serialize per path, as meshd does;
// this pins the safety floor underneath that.
func TestSynthesizeConcurrentAtomic(t *testing.T) {
	h := New(t.TempDir())
	sp := tinySpec(t)
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path, err := h.Synthesize(sp)
			if err != nil {
				errs[i] = err
				return
			}
			f, err := meshlab.LoadFleet(path)
			if err != nil {
				errs[i] = fmt.Errorf("synthesized dataset unreadable mid-race: %w", err)
				return
			}
			if len(f.Networks) != 2 || f.Meta.Seed != 9 {
				errs[i] = fmt.Errorf("partial dataset observed: %d networks, seed %d", len(f.Networks), f.Meta.Seed)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
