// Package e2e is the polling end-to-end harness for declarative
// scenarios: declare a spec, synthesize its dataset once, launch the
// full streamed experiment suite in the background in one or more run
// variants (plain streamed, sharded, kill-and-resume from checkpoints),
// and poll for the converged report artifact. Convergence is the
// artifact's existence — reports are written atomically (temp + fsync +
// rename), so a readable artifact is always a complete one. Every
// variant renders the same deterministic Report, so a single golden per
// scenario pins all of them byte for byte.
package e2e

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"meshlab"
	"meshlab/internal/atomicio"
	"meshlab/internal/faultfs"
	"meshlab/internal/scenario"
)

// Harness drives scenario runs inside one artifact directory.
type Harness struct {
	// Dir holds datasets, checkpoints, and report artifacts.
	Dir string
	// PollInterval is how often WaitConverged re-reads the artifact
	// (≤ 0: 20ms).
	PollInterval time.Duration
	// Timeout bounds one WaitConverged call (≤ 0: 4 minutes).
	Timeout time.Duration
	// Workers bounds synthesis and streaming parallelism (≤ 0: the
	// process budget).
	Workers int
}

// New returns a Harness rooted at dir with default pacing.
func New(dir string) *Harness { return &Harness{Dir: dir} }

func (h *Harness) pollInterval() time.Duration {
	if h.PollInterval > 0 {
		return h.PollInterval
	}
	return 20 * time.Millisecond
}

func (h *Harness) timeout() time.Duration {
	if h.Timeout > 0 {
		return h.Timeout
	}
	return 4 * time.Minute
}

// DatasetPath is where Synthesize puts (or finds) a scenario's dataset.
func (h *Harness) DatasetPath(sp *scenario.Spec) string {
	return filepath.Join(h.Dir, sp.Name+".bin")
}

// Synthesize materializes the scenario's dataset file, reusing an
// existing one (the compilation is deterministic and the save is atomic
// — temp + fsync + rename — so a present file is the right, complete
// file even against concurrent synthesizers or a mid-write kill; the
// streamed variant still cross-checks it when the scenario is
// cache-validatable). Concurrent Synthesize calls for one path are
// safe but may each pay the generation; callers wanting to share one
// synthesis serialize per path, as meshd does.
func (h *Harness) Synthesize(sp *scenario.Spec) (string, error) {
	path := h.DatasetPath(sp)
	if _, err := os.Stat(path); err == nil {
		return path, nil
	}
	opts := sp.Options()
	opts.Workers = h.Workers
	f, err := meshlab.GenerateFleet(opts)
	if err != nil {
		return "", fmt.Errorf("e2e %s: synthesize: %w", sp.Name, err)
	}
	if err := meshlab.SaveFleetWithSamples(path, f); err != nil {
		return "", fmt.Errorf("e2e %s: save: %w", sp.Name, err)
	}
	return path, nil
}

// Variant is one way of running the suite over a scenario's dataset.
type Variant struct {
	// Name labels the variant's artifact (`<scenario>.<name>.report`).
	Name string
	run  func(h *Harness, sp *scenario.Spec, dataset string) ([]*meshlab.Result, error)
}

// Streamed runs the suite in one streaming pass. When the scenario is
// cache-validatable, the walk doubles as cache validation against the
// compiled options.
func Streamed() Variant {
	return Variant{Name: "streamed", run: func(h *Harness, sp *scenario.Spec, dataset string) ([]*meshlab.Result, error) {
		so := meshlab.StreamOptions{Workers: h.Workers}
		opts := sp.Options()
		opts.Workers = h.Workers
		if opts.CacheValidatable() {
			so.Validate = &opts
		}
		results, _, err := meshlab.StreamFleet(dataset, so)
		return results, err
	}}
}

// Sharded runs the suite as n parallel shards and requires full
// coverage (a degraded manifest is an error here — scenario goldens pin
// complete runs).
func Sharded(n int) Variant {
	return Variant{Name: fmt.Sprintf("sharded%d", n), run: func(h *Harness, sp *scenario.Spec, dataset string) ([]*meshlab.Result, error) {
		res, err := meshlab.ShardedStream(context.Background(), dataset, meshlab.ShardOptions{
			Shards:  n,
			Workers: h.Workers,
		})
		if err != nil {
			return nil, err
		}
		if res.Manifest != nil && len(res.Manifest.Skipped) > 0 {
			return nil, fmt.Errorf("e2e %s: sharded run skipped %d networks", sp.Name, len(res.Manifest.Skipped))
		}
		return res.Results, nil
	}}
}

// CheckpointResume runs the suite sharded with checkpointing, injects a
// kill at the named snapshot phase (see faultfs.CrashPlan) partway
// through, verifies the kill fired, then resumes from the surviving
// checkpoints. The returned results come from the resumed run.
func CheckpointResume(shards int, phase string) Variant {
	return Variant{Name: "resume-" + phase, run: func(h *Harness, sp *scenario.Spec, dataset string) ([]*meshlab.Result, error) {
		ckDir := filepath.Join(h.Dir, sp.Name+".ck."+phase)
		base := meshlab.ShardOptions{
			Shards:          shards,
			Workers:         h.Workers,
			CheckpointDir:   ckDir,
			CheckpointEvery: 2,
			RetryBase:       time.Millisecond,
		}
		plan := &faultfs.CrashPlan{KillAt: phase, Skip: 1, Torn: 3}
		killed := base
		killed.CheckpointHook = plan.Hook
		if _, err := meshlab.ShardedStream(context.Background(), dataset, killed); !errors.Is(err, faultfs.ErrKilled) {
			return nil, fmt.Errorf("e2e %s: injected kill at %s did not surface (err: %v)", sp.Name, phase, err)
		}
		if !plan.Fired() {
			return nil, fmt.Errorf("e2e %s: crash plan for %s never fired", sp.Name, phase)
		}
		resumed := base
		resumed.Resume = true
		res, err := meshlab.ShardedStream(context.Background(), dataset, resumed)
		if err != nil {
			return nil, err
		}
		if res.Manifest != nil && len(res.Manifest.Skipped) > 0 {
			return nil, fmt.Errorf("e2e %s: resumed run skipped %d networks", sp.Name, len(res.Manifest.Skipped))
		}
		return res.Results, nil
	}}
}

// Run is one in-flight variant execution.
type Run struct {
	// Scenario and Variant identify the run; Artifact is the report
	// path whose existence signals convergence.
	Scenario, Variant, Artifact string

	done chan struct{}
	err  error
}

// Err reports the run's failure, if any; valid after WaitConverged (or
// after done closes).
func (r *Run) Err() error { return r.err }

// Start launches a variant in the background. The goroutine runs the
// suite, renders the deterministic Report, and publishes it atomically
// at r.Artifact — existence of the artifact is convergence.
func (h *Harness) Start(sp *scenario.Spec, dataset string, v Variant) *Run {
	r := &Run{
		Scenario: sp.Name,
		Variant:  v.Name,
		Artifact: filepath.Join(h.Dir, sp.Name+"."+v.Name+".report"),
		done:     make(chan struct{}),
	}
	go func() {
		defer close(r.done)
		results, err := v.run(h, sp, dataset)
		if err != nil {
			r.err = fmt.Errorf("e2e %s/%s: %w", sp.Name, v.Name, err)
			return
		}
		if err := atomicio.WriteBytes(r.Artifact, 0o644, []byte(Report(sp, results))); err != nil {
			r.err = fmt.Errorf("e2e %s/%s: publish: %w", sp.Name, v.Name, err)
		}
	}()
	return r
}

// WaitConverged polls for the run's artifact until it appears, the run
// fails, or the harness timeout elapses. It returns the artifact bytes.
func (h *Harness) WaitConverged(r *Run) ([]byte, error) {
	deadline := time.Now().Add(h.timeout())
	ticker := time.NewTicker(h.pollInterval())
	defer ticker.Stop()
	for {
		// The atomic rename makes a readable artifact a complete one.
		if data, err := os.ReadFile(r.Artifact); err == nil {
			return data, nil
		}
		select {
		case <-r.done:
			if r.err != nil {
				return nil, r.err
			}
			// Done without error: the artifact must exist now.
			data, err := os.ReadFile(r.Artifact)
			if err != nil {
				return nil, fmt.Errorf("e2e %s/%s: finished without artifact: %w", r.Scenario, r.Variant, err)
			}
			return data, nil
		case <-ticker.C:
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("e2e %s/%s: no converged artifact at %s after %v", r.Scenario, r.Variant, r.Artifact, h.timeout())
		}
	}
}

// Report renders the deterministic scenario report: a header binding the
// report to the spec (name, schema version, spec sha256 — the staleness
// key scripts/check_goldens.sh greps for), the compiled run identity,
// the declared dataset counts, and every experiment result. It depends
// only on the spec and the results, never on how the run was executed,
// so streamed, sharded, and checkpoint-resumed runs of one scenario
// render byte-identical reports.
func Report(sp *scenario.Spec, results []*meshlab.Result) string {
	opts := sp.Options()
	meta := opts.Meta()
	total, bg, n := sp.Datasets()
	var b strings.Builder
	fmt.Fprintf(&b, "== scenario: %s ==\n", sp.Name)
	fmt.Fprintf(&b, "spec: version %d sha256 %s\n", sp.Version, sp.SHA256)
	fmt.Fprintf(&b, "run: seed %d, probe %ds @ %ds", meta.Seed, meta.ProbeDuration, meta.ProbeInterval)
	if opts.SkipClients {
		b.WriteString(", no clients")
	} else {
		fmt.Fprintf(&b, ", clients %ds", meta.ClientDuration)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "datasets: %d (bg %d, n %d) across %d networks\n", total, bg, n, sp.Fleet.Networks)
	for _, res := range results {
		b.WriteString("\n")
		b.WriteString(res.Format())
	}
	return b.String()
}
