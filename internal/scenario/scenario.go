// Package scenario makes fleet configurations data instead of Go code: a
// versioned, schema-validated scenario spec (plain JSON — a strict subset
// of YAML 1.2, no dependencies) declares a fleet's topology family,
// density, band mix, client-churn mixture, interference regime, probe
// cadence, and seed, and compiles deterministically into synth.Options.
// The checked-in catalog under scenarios/ registers the named built-ins
// (Reference, Quick, and the extended families) that the CLIs accept via
// -scenario; user files work the same way by path. Every malformed field
// is a contextual *scenario.Error naming the field and the source file —
// never a panic. See docs/SCENARIOS.md for the schema.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"meshlab/internal/clients"
	"meshlab/internal/probe"
	"meshlab/internal/radio"
	"meshlab/internal/synth"
	"meshlab/internal/topology"
)

// Version is the scenario spec schema version this package reads.
const Version = 1

// Error describes one problem with a scenario spec: the source it was
// read from, the offending field (dotted path), and what is wrong.
type Error struct {
	// Source names where the spec came from (a file path or a built-in
	// name).
	Source string
	// Field is the dotted path of the offending field, e.g.
	// "fleet.env_mix" ("(document)" for document-level problems).
	Field string
	// Msg says what is wrong with it.
	Msg string
}

// Error renders "scenario SOURCE: FIELD: MSG".
func (e *Error) Error() string {
	return fmt.Sprintf("scenario %s: %s: %s", e.Source, e.Field, e.Msg)
}

// errf builds a field-level *Error.
func errf(source, field, format string, args ...any) error {
	return &Error{Source: source, Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Spec is one parsed scenario. Obtain it with Parse, LoadFile, Builtin,
// or Resolve — a Spec those return has been validated, so Options never
// fails on it.
type Spec struct {
	// Version is the schema version; only Version (1) is accepted.
	Version int `json:"version"`
	// Name identifies the scenario (lowercase letters, digits, dashes).
	// Built-in specs are registered under it, and golden reports are
	// keyed by it.
	Name string `json:"name"`
	// Description is free-form prose for catalog listings.
	Description string `json:"description,omitempty"`
	// Seed is the root RNG seed; required so a scenario alone pins its
	// dataset bytes.
	Seed *uint64 `json:"seed"`
	// Fleet declares the network population.
	Fleet FleetSpec `json:"fleet"`
	// Probe declares the probe collection window.
	Probe ProbeSpec `json:"probe"`
	// Clients optionally tunes (or skips) client simulation; omitted
	// means the calibrated default mixture over the full 11-hour
	// snapshot.
	Clients *ClientsSpec `json:"clients,omitempty"`
	// Interference optionally scales the interference-burst regime on
	// top of the calibrated radio defaults. Setting it makes the
	// compiled options bypass dataset caches (the wire format cannot
	// record radio overrides).
	Interference *InterferenceSpec `json:"interference,omitempty"`

	// Source names where the spec was parsed from; SHA256 is the hex
	// sha256 of the raw spec bytes — the identity golden reports embed
	// and scripts/check_goldens.sh verifies.
	Source string `json:"-"`
	SHA256 string `json:"-"`
}

// FleetSpec declares the network population: how many networks, their
// environment and band mixes, the size distribution, and the density.
type FleetSpec struct {
	// Networks is the total network count.
	Networks int `json:"networks"`
	// EnvMix partitions Networks by deployment environment.
	EnvMix EnvMix `json:"env_mix"`
	// BandMix partitions Networks by deployed radio bands.
	BandMix BandMix `json:"band_mix"`
	// Size parameterizes the lognormal network-size distribution.
	Size SizeSpec `json:"size"`
	// SpacingScale multiplies the environment-default AP spacing
	// (omitted: 1). Below 1 is denser, above 1 sparser; must be > 0
	// when present.
	SpacingScale *float64 `json:"spacing_scale,omitempty"`
}

// EnvMix counts networks per environment class; the counts must sum to
// fleet.networks.
type EnvMix struct {
	Indoor  int `json:"indoor"`
	Outdoor int `json:"outdoor"`
	Mixed   int `json:"mixed"`
}

// BandMix counts networks per deployed band set — "bg" only, "n" only,
// or "both" radios; the counts must sum to fleet.networks. Any other
// band key is an unknown-field error.
type BandMix struct {
	BG   int `json:"bg"`
	N    int `json:"n"`
	Both int `json:"both"`
}

// SizeSpec parameterizes network sizes: size = min + round(exp(N(
// log_mean, log_std))) − 1, clamped to [min, max]; pin_largest forces
// the largest draw to max.
type SizeSpec struct {
	Min        int     `json:"min"`
	Max        int     `json:"max"`
	LogMean    float64 `json:"log_mean"`
	LogStd     float64 `json:"log_std"`
	PinLargest bool    `json:"pin_largest,omitempty"`
}

// ProbeSpec declares the probe collection window in whole seconds (the
// dataset metadata stores whole seconds, so fractional values would not
// be cache-validatable).
type ProbeSpec struct {
	DurationS float64 `json:"duration_s"`
	IntervalS float64 `json:"interval_s"`
}

// ClientsSpec tunes client simulation. Non-default per_ap or mix values
// compile to options that bypass dataset caches (the wire format cannot
// record them).
type ClientsSpec struct {
	// Skip disables client simulation entirely (probe-only datasets).
	Skip bool `json:"skip,omitempty"`
	// DurationS is the snapshot length in whole seconds (omitted: the
	// thesis's 39600 s).
	DurationS float64 `json:"duration_s,omitempty"`
	// PerAP scales the population (omitted: 1 client per AP).
	PerAP float64 `json:"per_ap,omitempty"`
	// Mix sets the behavioral mixture; omitted keeps the calibrated
	// resident-dominated default.
	Mix *MixSpec `json:"mix,omitempty"`
}

// MixSpec is the client behavioral mixture; the fractions must be
// non-negative and sum to something positive (they are renormalized).
type MixSpec struct {
	Resident float64 `json:"resident"`
	Visitor  float64 `json:"visitor"`
	Walker   float64 `json:"walker"`
}

// InterferenceSpec scales the calibrated interference-burst regime. All
// scales must be > 0 when present; omitted means unscaled.
type InterferenceSpec struct {
	// BurstRateScale multiplies the mean burst arrival rate.
	BurstRateScale *float64 `json:"burst_rate_scale,omitempty"`
	// BurstProneScale multiplies the fraction of burst-prone links
	// (clamped to 1).
	BurstProneScale *float64 `json:"burst_prone_scale,omitempty"`
	// BurstPenaltyScale multiplies the burst SNR penalty bounds.
	BurstPenaltyScale *float64 `json:"burst_penalty_scale,omitempty"`
	// DisableBursts removes bursts entirely (the abl4.burst regime).
	DisableBursts bool `json:"disable_bursts,omitempty"`
}

// Parse decodes and validates a scenario spec. Unknown fields anywhere
// in the document, trailing data, and every semantic violation are
// contextual errors naming source; a valid spec comes back with its
// SHA256 stamped.
func Parse(raw []byte, source string) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	sp := &Spec{}
	if err := dec.Decode(sp); err != nil {
		return nil, errf(source, "(document)", "%v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, errf(source, "(document)", "trailing data after the spec object")
	}
	sp.Source = source
	sum := sha256.Sum256(raw)
	sp.SHA256 = hex.EncodeToString(sum[:])
	if err := sp.validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// LoadFile reads and parses a scenario spec file.
func LoadFile(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(raw, path)
}

// nameOK reports whether a scenario name is a lowercase slug.
func nameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '-' && i > 0:
		default:
			return false
		}
	}
	return true
}

// wholeSeconds reports whether d is a positive whole-second duration the
// int32 dataset metadata can record exactly.
func wholeSeconds(d float64) bool {
	return d > 0 && d == math.Trunc(d) && d <= math.MaxInt32
}

// validate checks every semantic rule; the first violation is returned
// as a field-level *Error.
func (s *Spec) validate() error {
	src := s.Source
	if s.Version != Version {
		return errf(src, "version", "unsupported spec version %d (this build reads version %d)", s.Version, Version)
	}
	if !nameOK(s.Name) {
		return errf(src, "name", "%q is not a scenario name (lowercase letters, digits, and interior dashes)", s.Name)
	}
	if s.Seed == nil {
		return errf(src, "seed", "required: a scenario alone must pin its dataset bytes")
	}
	f := &s.Fleet
	if f.Networks < 1 {
		return errf(src, "fleet.networks", "must be at least 1 (got %d)", f.Networks)
	}
	for _, c := range []struct {
		field string
		n     int
	}{
		{"fleet.env_mix.indoor", f.EnvMix.Indoor},
		{"fleet.env_mix.outdoor", f.EnvMix.Outdoor},
		{"fleet.env_mix.mixed", f.EnvMix.Mixed},
		{"fleet.band_mix.bg", f.BandMix.BG},
		{"fleet.band_mix.n", f.BandMix.N},
		{"fleet.band_mix.both", f.BandMix.Both},
	} {
		if c.n < 0 {
			return errf(src, c.field, "must not be negative (got %d)", c.n)
		}
	}
	if sum := f.EnvMix.Indoor + f.EnvMix.Outdoor + f.EnvMix.Mixed; sum != f.Networks {
		return errf(src, "fleet.env_mix", "indoor+outdoor+mixed = %d, but fleet.networks = %d", sum, f.Networks)
	}
	if sum := f.BandMix.BG + f.BandMix.N + f.BandMix.Both; sum != f.Networks {
		return errf(src, "fleet.band_mix", "bg+n+both = %d, but fleet.networks = %d", sum, f.Networks)
	}
	if f.Size.Min < 1 {
		return errf(src, "fleet.size.min", "must be at least 1 (got %d)", f.Size.Min)
	}
	if f.Size.Max < f.Size.Min {
		return errf(src, "fleet.size.max", "must be ≥ min %d (got %d)", f.Size.Min, f.Size.Max)
	}
	if f.Size.LogStd < 0 {
		return errf(src, "fleet.size.log_std", "must not be negative (got %g)", f.Size.LogStd)
	}
	if f.SpacingScale != nil && !(*f.SpacingScale > 0) {
		return errf(src, "fleet.spacing_scale", "must be > 0 when present (got %g): zero density places every AP on top of its neighbors", *f.SpacingScale)
	}
	if !wholeSeconds(s.Probe.DurationS) {
		return errf(src, "probe.duration_s", "must be a positive whole number of seconds (got %g): the dataset metadata records whole int32 seconds", s.Probe.DurationS)
	}
	if !wholeSeconds(s.Probe.IntervalS) {
		return errf(src, "probe.interval_s", "must be a positive whole number of seconds (got %g)", s.Probe.IntervalS)
	}
	if s.Probe.IntervalS > s.Probe.DurationS {
		return errf(src, "probe.interval_s", "report interval %g s exceeds the %g s probe window: no probe set would ever be reported", s.Probe.IntervalS, s.Probe.DurationS)
	}
	if c := s.Clients; c != nil {
		if c.DurationS != 0 && !wholeSeconds(c.DurationS) {
			return errf(src, "clients.duration_s", "must be a positive whole number of seconds when present (got %g)", c.DurationS)
		}
		if c.PerAP < 0 {
			return errf(src, "clients.per_ap", "must not be negative (got %g)", c.PerAP)
		}
		if m := c.Mix; m != nil {
			if m.Resident < 0 || m.Visitor < 0 || m.Walker < 0 {
				return errf(src, "clients.mix", "fractions must not be negative (got %g/%g/%g)", m.Resident, m.Visitor, m.Walker)
			}
			if m.Resident+m.Visitor+m.Walker <= 0 {
				return errf(src, "clients.mix", "fractions sum to zero: no client would have a behavior")
			}
		}
		if c.Skip && (c.DurationS != 0 || c.PerAP != 0 || c.Mix != nil) {
			return errf(src, "clients.skip", "true contradicts the other clients fields: drop them or the skip")
		}
	}
	if iv := s.Interference; iv != nil {
		for _, c := range []struct {
			field string
			v     *float64
		}{
			{"interference.burst_rate_scale", iv.BurstRateScale},
			{"interference.burst_prone_scale", iv.BurstProneScale},
			{"interference.burst_penalty_scale", iv.BurstPenaltyScale},
		} {
			if c.v != nil && !(*c.v > 0) {
				return errf(src, c.field, "must be > 0 when present (got %g); use disable_bursts to remove bursts", *c.v)
			}
		}
		if iv.DisableBursts && (iv.BurstRateScale != nil || iv.BurstProneScale != nil || iv.BurstPenaltyScale != nil) {
			return errf(src, "interference.disable_bursts", "true contradicts the burst scales: drop them or the disable")
		}
	}
	return nil
}

// Options compiles the spec into synth.Options. The compilation is a
// pure function of the spec — equal specs compile to equal options, and
// equal options generate byte-identical fleets — and the reference and
// quick built-ins compile to exactly the hard-coded synth.Reference and
// synth.Quick configurations (pinned by test). Options.Workers is left 0
// for the caller (a runtime knob, not scenario identity).
func (s *Spec) Options() synth.Options {
	f := s.Fleet
	o := synth.Options{
		Seed: *s.Seed,
		Fleet: topology.FleetConfig{
			NumNetworks:  f.Networks,
			NumIndoor:    f.EnvMix.Indoor,
			NumOutdoor:   f.EnvMix.Outdoor,
			NumMixed:     f.EnvMix.Mixed,
			NumN:         f.BandMix.N + f.BandMix.Both,
			NumBoth:      f.BandMix.Both,
			MinSize:      f.Size.Min,
			MaxSize:      f.Size.Max,
			SizeLogMean:  f.Size.LogMean,
			SizeLogStd:   f.Size.LogStd,
			ForceMaxSize: f.Size.PinLargest,
		},
		Probe: probe.Config{Duration: s.Probe.DurationS, ReportInterval: s.Probe.IntervalS},
	}
	if f.SpacingScale != nil {
		o.Fleet.SpacingScale = *f.SpacingScale
	}
	if c := s.Clients; c != nil {
		o.SkipClients = c.Skip
		o.Clients = clients.Config{Duration: c.DurationS, ClientsPerAP: c.PerAP}
		if c.Mix != nil {
			o.Clients.ResidentFrac = c.Mix.Resident
			o.Clients.VisitorFrac = c.Mix.Visitor
			o.Clients.WalkerFrac = c.Mix.Walker
		}
	}
	if iv := s.Interference; iv != nil {
		// Capture by value so the closure is a pure function of the spec.
		ivv := *iv
		o.RadioParams = func(outdoor bool) radio.Params {
			env := radio.Indoor
			if outdoor {
				env = radio.Outdoor
			}
			p := radio.DefaultParams(env)
			if ivv.DisableBursts {
				p.DisableBursts = true
			}
			if ivv.BurstRateScale != nil {
				p.BurstMeanRate *= *ivv.BurstRateScale
			}
			if ivv.BurstProneScale != nil {
				p.BurstProneFrac = math.Min(1, p.BurstProneFrac**ivv.BurstProneScale)
			}
			if ivv.BurstPenaltyScale != nil {
				p.BurstPenaltyLo *= *ivv.BurstPenaltyScale
				p.BurstPenaltyHi *= *ivv.BurstPenaltyScale
			}
			return p
		}
	}
	return o
}

// Datasets returns how many per-band network datasets the compiled fleet
// holds in total and per band: a "both" network contributes one dataset
// to each band.
func (s *Spec) Datasets() (total, bg, n int) {
	bg = s.Fleet.BandMix.BG + s.Fleet.BandMix.Both
	n = s.Fleet.BandMix.N + s.Fleet.BandMix.Both
	return bg + n, bg, n
}
