// registry.go resolves scenario names against the embedded built-in
// catalog (the checked-in scenarios/*.json files) and file paths against
// the filesystem.

package scenario

import (
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"

	"meshlab/scenarios"
)

// catalog is the lazily parsed built-in registry, keyed by spec name.
var catalog struct {
	once  sync.Once
	specs map[string]*Spec
	err   error
}

// loadCatalog parses every embedded spec once. A built-in that fails to
// parse, or whose file name disagrees with its declared name, poisons
// the whole catalog — the checked-in files are part of the build, so
// that is a build defect, surfaced as an error (never a panic).
func loadCatalog() (map[string]*Spec, error) {
	catalog.once.Do(func() {
		specs := make(map[string]*Spec)
		entries, err := fs.Glob(scenarios.FS, "*.json")
		if err != nil {
			catalog.err = fmt.Errorf("scenario: built-in catalog: %w", err)
			return
		}
		for _, name := range entries {
			raw, err := fs.ReadFile(scenarios.FS, name)
			if err != nil {
				catalog.err = fmt.Errorf("scenario: built-in catalog: %w", err)
				return
			}
			sp, err := Parse(raw, "builtin:"+name)
			if err != nil {
				catalog.err = fmt.Errorf("built-in catalog is broken: %w", err)
				return
			}
			if want := strings.TrimSuffix(name, ".json"); sp.Name != want {
				catalog.err = fmt.Errorf("scenario: built-in %s declares name %q; the file name is the registry key and they must agree", name, sp.Name)
				return
			}
			specs[sp.Name] = sp
		}
		catalog.specs = specs
	})
	return catalog.specs, catalog.err
}

// Names lists the built-in scenario names, sorted.
func Names() []string {
	specs, err := loadCatalog()
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Builtin returns the named built-in scenario.
func Builtin(name string) (*Spec, error) {
	specs, err := loadCatalog()
	if err != nil {
		return nil, err
	}
	sp, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("scenario: no built-in named %q (have: %s); pass a path to use a spec file", name, strings.Join(Names(), ", "))
	}
	return sp, nil
}

// Resolve turns a CLI -scenario argument into a spec: an argument that
// looks like a path (contains a separator or ends in .json) loads a
// file, anything else names a built-in.
func Resolve(arg string) (*Spec, error) {
	if strings.ContainsRune(arg, '/') || strings.HasSuffix(arg, ".json") {
		return LoadFile(arg)
	}
	return Builtin(arg)
}
