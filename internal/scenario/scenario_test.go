package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"meshlab/internal/radio"
	"meshlab/internal/synth"
	"meshlab/internal/topology"
	"meshlab/internal/wire"
)

// baseDoc returns a minimal valid spec as a mutable document, so each
// malformed-field case below edits exactly one thing.
func baseDoc() map[string]any {
	return map[string]any{
		"version": 1,
		"name":    "unit",
		"seed":    9,
		"fleet": map[string]any{
			"networks": 4,
			"env_mix":  map[string]any{"indoor": 2, "outdoor": 1, "mixed": 1},
			"band_mix": map[string]any{"bg": 3, "n": 1},
			"size":     map[string]any{"min": 3, "max": 8, "log_mean": 1.2, "log_std": 0.4},
		},
		"probe": map[string]any{"duration_s": 1800, "interval_s": 300},
	}
}

func parseDoc(t *testing.T, doc map[string]any, source string) (*Spec, error) {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return Parse(raw, source)
}

// TestScenarioSpecValidationErrors: every malformed field yields a
// contextual error naming the field and the source file — never a panic
// and never a silent acceptance.
func TestScenarioSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		edit func(doc map[string]any)
		want string // substring the error must contain (beyond the source)
	}{
		{"unknown top-level key", func(d map[string]any) { d["topology"] = "ring" }, `unknown field "topology"`},
		{"unknown fleet key", func(d map[string]any) { d["fleet"].(map[string]any)["density"] = 3 }, `unknown field "density"`},
		{"bad band", func(d map[string]any) {
			d["fleet"].(map[string]any)["band_mix"] = map[string]any{"bg": 3, "ac": 1}
		}, `unknown field "ac"`},
		{"bad env", func(d map[string]any) {
			d["fleet"].(map[string]any)["env_mix"] = map[string]any{"indoor": 3, "underwater": 1}
		}, `unknown field "underwater"`},
		{"wrong version", func(d map[string]any) { d["version"] = 2 }, "version"},
		{"bad name", func(d map[string]any) { d["name"] = "Dense Urban!" }, "name"},
		{"missing seed", func(d map[string]any) { delete(d, "seed") }, "seed"},
		{"zero networks", func(d map[string]any) {
			f := d["fleet"].(map[string]any)
			f["networks"] = 0
			f["env_mix"] = map[string]any{}
			f["band_mix"] = map[string]any{}
		}, "fleet.networks"},
		{"negative env count", func(d map[string]any) {
			d["fleet"].(map[string]any)["env_mix"] = map[string]any{"indoor": 5, "outdoor": -1}
		}, "fleet.env_mix.outdoor"},
		{"env mix sum", func(d map[string]any) {
			d["fleet"].(map[string]any)["env_mix"] = map[string]any{"indoor": 2, "outdoor": 1}
		}, "fleet.env_mix"},
		{"band mix sum", func(d map[string]any) {
			d["fleet"].(map[string]any)["band_mix"] = map[string]any{"bg": 1, "n": 1}
		}, "fleet.band_mix"},
		{"zero min size", func(d map[string]any) {
			d["fleet"].(map[string]any)["size"].(map[string]any)["min"] = 0
		}, "fleet.size.min"},
		{"max below min", func(d map[string]any) {
			d["fleet"].(map[string]any)["size"].(map[string]any)["max"] = 1
		}, "fleet.size.max"},
		{"negative log std", func(d map[string]any) {
			d["fleet"].(map[string]any)["size"].(map[string]any)["log_std"] = -0.1
		}, "fleet.size.log_std"},
		{"zero density", func(d map[string]any) {
			d["fleet"].(map[string]any)["spacing_scale"] = 0
		}, "fleet.spacing_scale"},
		{"negative duration", func(d map[string]any) {
			d["probe"].(map[string]any)["duration_s"] = -3600
		}, "probe.duration_s"},
		{"fractional duration", func(d map[string]any) {
			d["probe"].(map[string]any)["duration_s"] = 1800.5
		}, "probe.duration_s"},
		{"interval beyond window", func(d map[string]any) {
			d["probe"].(map[string]any)["interval_s"] = 7200
		}, "probe.interval_s"},
		{"negative client duration", func(d map[string]any) {
			d["clients"] = map[string]any{"duration_s": -1}
		}, "clients.duration_s"},
		{"negative per_ap", func(d map[string]any) {
			d["clients"] = map[string]any{"per_ap": -0.5}
		}, "clients.per_ap"},
		{"all-zero mix", func(d map[string]any) {
			d["clients"] = map[string]any{"mix": map[string]any{"resident": 0, "visitor": 0, "walker": 0}}
		}, "clients.mix"},
		{"skip contradiction", func(d map[string]any) {
			d["clients"] = map[string]any{"skip": true, "per_ap": 2}
		}, "clients.skip"},
		{"zero burst scale", func(d map[string]any) {
			d["interference"] = map[string]any{"burst_rate_scale": 0}
		}, "interference.burst_rate_scale"},
		{"disable contradiction", func(d map[string]any) {
			d["interference"] = map[string]any{"disable_bursts": true, "burst_prone_scale": 2}
		}, "interference.disable_bursts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := baseDoc()
			tc.edit(doc)
			const source = "bad/scenario.json"
			_, err := parseDoc(t, doc, source)
			if err == nil {
				t.Fatalf("malformed spec accepted")
			}
			if !strings.Contains(err.Error(), source) {
				t.Fatalf("error does not name the source file: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error does not name the field (want %q): %v", tc.want, err)
			}
		})
	}
}

// TestScenarioTrailingData: a second document after the spec is an
// error, not silently ignored.
func TestScenarioTrailingData(t *testing.T) {
	raw, err := json.Marshal(baseDoc())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(append(raw, []byte(" {}")...), "two.json"); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing data accepted: %v", err)
	}
}

// TestScenarioValidSpecParses: the base document is valid, gets its hash
// stamped, and compiles.
func TestScenarioValidSpecParses(t *testing.T) {
	sp, err := parseDoc(t, baseDoc(), "ok.json")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Source != "ok.json" || len(sp.SHA256) != 64 {
		t.Fatalf("source/hash not stamped: %q %q", sp.Source, sp.SHA256)
	}
	o := sp.Options()
	if o.Seed != 9 || o.Fleet.NumNetworks != 4 || o.Probe.Duration != 1800 {
		t.Fatalf("compiled options wrong: %+v", o)
	}
	if !o.CacheValidatable() {
		t.Fatal("a plain spec should compile to cache-validatable options")
	}
}

// TestScenarioRegistry: the built-in catalog holds the documented
// scenarios under their file names, and Resolve distinguishes names from
// paths.
func TestScenarioRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"reference", "quick", "dense-urban", "sparse-rural", "high-churn", "mixed-band-steering"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in %q missing from catalog %v", want, names)
		}
	}
	if _, err := Builtin("galactic"); err == nil || !strings.Contains(err.Error(), "quick") {
		t.Fatalf("unknown builtin should list the catalog: %v", err)
	}
	sp, err := Resolve("dense-urban")
	if err != nil || sp.Name != "dense-urban" {
		t.Fatalf("resolve builtin: %v", err)
	}
	if sp.Description == "" {
		t.Fatal("built-in scenarios must carry a description for catalog listings")
	}
}

// TestScenarioResolveFile: a path argument loads the file (the checked-in
// catalog files double as the fixture: they must parse from disk too).
func TestScenarioResolveFile(t *testing.T) {
	sp, err := Resolve("../../scenarios/sparse-rural.json")
	if err != nil {
		t.Fatal(err)
	}
	builtin, err := Builtin("sparse-rural")
	if err != nil {
		t.Fatal(err)
	}
	if sp.SHA256 != builtin.SHA256 {
		t.Fatalf("disk and embedded copies of sparse-rural diverge: %s vs %s", sp.SHA256, builtin.SHA256)
	}
}

// optionsIgnoringRadio strips the uncomparable RadioParams closure,
// reporting whether it was set.
func optionsIgnoringRadio(o synth.Options) (synth.Options, bool) {
	had := o.RadioParams != nil
	o.RadioParams = nil
	return o, had
}

// TestScenarioCompileDeterministic: parsing the same bytes twice and
// compiling yields identical options, including the radio override's
// effective parameters.
func TestScenarioCompileDeterministic(t *testing.T) {
	for _, name := range Names() {
		sp1, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		// A genuinely fresh parse of the same bytes.
		sp2, err := Resolve("../../scenarios/" + name + ".json")
		if err != nil {
			t.Fatal(err)
		}
		o1, hadRadio1 := optionsIgnoringRadio(sp1.Options())
		o2, hadRadio2 := optionsIgnoringRadio(sp2.Options())
		if !reflect.DeepEqual(o1, o2) || hadRadio1 != hadRadio2 {
			t.Fatalf("%s compiled differently across parses:\n%+v\nvs\n%+v", name, o1, o2)
		}
		if hadRadio1 {
			for _, outdoor := range []bool{false, true} {
				p1 := sp1.Options().RadioParams(outdoor)
				p2 := sp2.Options().RadioParams(outdoor)
				if p1 != p2 {
					t.Fatalf("%s radio override differs (outdoor=%v):\n%+v\nvs\n%+v", name, outdoor, p1, p2)
				}
				if p1 == radio.DefaultParams(radioEnv(outdoor)) {
					t.Fatalf("%s declares interference but compiles to default radio params (outdoor=%v)", name, outdoor)
				}
			}
		}
	}
}

func radioEnv(outdoor bool) radio.Environment {
	if outdoor {
		return radio.Outdoor
	}
	return radio.Indoor
}

// TestScenarioBuiltinParity: the quick and reference built-ins compile
// to exactly the hard-coded configurations — field for field — so the
// catalog is a faithful data form of today's presets.
func TestScenarioBuiltinParity(t *testing.T) {
	for _, tc := range []struct {
		name string
		want synth.Options
	}{
		{"quick", synth.Quick(42)},
		{"reference", synth.Reference(42)},
	} {
		sp, err := Builtin(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		got := sp.Options()
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%s compiles to\n%+v\nwant the hard-coded\n%+v", tc.name, got, tc.want)
		}
	}
}

// TestScenarioQuickFleetByteIdentical: beyond option equality, the quick
// built-in's *generated fleet* is wire-byte-identical to synth.Quick's —
// the strongest round-trip pin, at a scale small enough to pay for.
func TestScenarioQuickFleetByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("generates two quick fleets")
	}
	sp, err := Builtin("quick")
	if err != nil {
		t.Fatal(err)
	}
	encode := func(o synth.Options) []byte {
		f, err := synth.Generate(o)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := wire.Write(&b, f); err != nil {
			t.Fatal(err)
		}
		return []byte(b.String())
	}
	got := encode(sp.Options())
	want := encode(synth.Quick(42))
	if string(got) != string(want) {
		t.Fatal("quick scenario generates different fleet bytes than synth.Quick(42)")
	}
}

// TestScenarioReferenceTopologyIdentical: the reference built-in's
// layout-only fleet topology matches the hard-coded preset's — pinning
// the 110-network configuration without paying for probe simulation.
func TestScenarioReferenceTopologyIdentical(t *testing.T) {
	sp, err := Builtin("reference")
	if err != nil {
		t.Fatal(err)
	}
	m, err := synth.NewTopologyMatcher(synth.Reference(42))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := synth.NewTopologyMatcher(sp.Options())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatal("reference scenario derives a different fleet topology than synth.Reference(42)")
	}
}

// TestScenarioSpacingScaleChangesLayout: the density knob must actually
// move AP placements (and nothing else about the population shape).
func TestScenarioSpacingScaleChangesLayout(t *testing.T) {
	doc := baseDoc()
	sp1, err := parseDoc(t, doc, "a.json")
	if err != nil {
		t.Fatal(err)
	}
	doc["fleet"].(map[string]any)["spacing_scale"] = 0.5
	sp2, err := parseDoc(t, doc, "b.json")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := synth.NewTopologyMatcher(sp1.Options())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := synth.NewTopologyMatcher(sp2.Options())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(m1, m2) {
		t.Fatal("spacing_scale 0.5 left the fleet layout unchanged")
	}
}

// TestScenarioDatasets: the per-band dataset arithmetic that reports
// declare.
func TestScenarioDatasets(t *testing.T) {
	sp, err := Builtin("mixed-band-steering")
	if err != nil {
		t.Fatal(err)
	}
	total, bg, n := sp.Datasets()
	if bg != 8 || n != 8 || total != 16 {
		t.Fatalf("mixed-band-steering datasets = %d (bg %d, n %d), want 16 (bg 8, n 8)", total, bg, n)
	}
}

// TestScenarioCatalogIsCacheFriendlyWhereDocumented: scenarios without
// interference or client tuning must compile to cache-validatable
// options; the ones with overrides must honestly report they bypass.
func TestScenarioCatalogIsCacheFriendlyWhereDocumented(t *testing.T) {
	wantBypass := map[string]bool{
		"dense-urban":  true, // interference override
		"sparse-rural": true, // interference override
		"high-churn":   true, // client mixture tuning
	}
	for _, name := range Names() {
		sp, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := !sp.Options().CacheValidatable(); got != wantBypass[name] {
			t.Fatalf("%s: cache bypass = %v, want %v", name, got, wantBypass[name])
		}
	}
}

var _ = topology.FleetConfig{} // keep the import for doc-comment references
