package topology

import (
	"math"
	"testing"

	"meshlab/internal/rng"
	"meshlab/internal/stats"
)

func TestGenerateBasic(t *testing.T) {
	n, err := Generate(rng.New(1), Config{Name: "x", Size: 10, Env: EnvIndoor})
	if err != nil {
		t.Fatal(err)
	}
	if n.Size() != 10 {
		t.Fatalf("size %d", n.Size())
	}
	if !n.HasBand("bg") {
		t.Fatal("default band should be bg")
	}
	names := map[string]bool{}
	for i, ap := range n.APs {
		if ap.ID != i {
			t.Fatalf("AP %d has ID %d", i, ap.ID)
		}
		if names[ap.Name] {
			t.Fatalf("duplicate AP name %s", ap.Name)
		}
		names[ap.Name] = true
		if ap.Outdoor {
			t.Fatal("indoor network has outdoor AP")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(rng.New(1), Config{Size: 0}); err == nil {
		t.Fatal("size 0 should error")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, _ := Generate(rng.New(7), Config{Name: "x", Size: 25, Env: EnvOutdoor})
	b, _ := Generate(rng.New(7), Config{Name: "x", Size: 25, Env: EnvOutdoor})
	for i := range a.APs {
		if a.APs[i] != b.APs[i] {
			t.Fatalf("AP %d differs between identical seeds", i)
		}
	}
}

func TestPlacementDensity(t *testing.T) {
	// Nearest-neighbor distances should cluster near the configured
	// spacing: not wildly smaller (min separation) nor larger (area
	// scales with sqrt size).
	n, _ := Generate(rng.New(3), Config{Name: "d", Size: 50, Env: EnvIndoor})
	var nn []float64
	for i, a := range n.APs {
		best := math.Inf(1)
		for j, b := range n.APs {
			if i == j {
				continue
			}
			if d := Dist(a, b); d < best {
				best = d
			}
		}
		nn = append(nn, best)
	}
	med := stats.Median(nn)
	if med < n.Spacing*0.3 || med > n.Spacing*1.5 {
		t.Fatalf("median nearest neighbor %v m, spacing %v m", med, n.Spacing)
	}
}

func TestOutdoorSparserThanIndoor(t *testing.T) {
	in, _ := Generate(rng.New(4), Config{Name: "i", Size: 20, Env: EnvIndoor})
	out, _ := Generate(rng.New(4), Config{Name: "o", Size: 20, Env: EnvOutdoor})
	if out.Spacing <= in.Spacing {
		t.Fatal("outdoor spacing should exceed indoor")
	}
	for _, ap := range out.APs {
		if !ap.Outdoor {
			t.Fatal("outdoor network has indoor AP")
		}
	}
}

func TestMixedHasBothKinds(t *testing.T) {
	n, _ := Generate(rng.New(5), Config{Name: "m", Size: 40, Env: EnvMixed})
	indoor, outdoor := 0, 0
	for _, ap := range n.APs {
		if ap.Outdoor {
			outdoor++
		} else {
			indoor++
		}
	}
	if indoor == 0 || outdoor == 0 {
		t.Fatalf("mixed network should have both kinds: %d indoor, %d outdoor", indoor, outdoor)
	}
}

func TestDist(t *testing.T) {
	a := AP{X: 0, Y: 0}
	b := AP{X: 3, Y: 4}
	if Dist(a, b) != 5 {
		t.Fatalf("Dist = %v", Dist(a, b))
	}
}

func TestFleetMarginals(t *testing.T) {
	fleet, err := GenerateFleet(rng.New(42), DefaultFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Networks) != 110 {
		t.Fatalf("fleet has %d networks", len(fleet.Networks))
	}
	// Environment partition: 72 indoor, 17 outdoor, 21 mixed.
	if got := len(fleet.ByEnv(EnvIndoor)); got != 72 {
		t.Fatalf("%d indoor networks, want 72", got)
	}
	if got := len(fleet.ByEnv(EnvOutdoor)); got != 17 {
		t.Fatalf("%d outdoor networks, want 17", got)
	}
	if got := len(fleet.ByEnv(EnvMixed)); got != 21 {
		t.Fatalf("%d mixed networks, want 21", got)
	}
	// Bands: 77 bg, 31 n, 2 both.
	bg, n := len(fleet.ByBand("bg")), len(fleet.ByBand("n"))
	if n != 31 {
		t.Fatalf("%d n networks, want 31", n)
	}
	if bg != 81 { // 79 bg-only + 2 both
		t.Fatalf("%d bg networks, want 81", bg)
	}
	both := 0
	for _, net := range fleet.Networks {
		if net.HasBand("bg") && net.HasBand("n") {
			both++
		}
	}
	if both != 2 {
		t.Fatalf("%d dual-band networks, want 2", both)
	}
	// Sizes: min 3, max 203, median ≈ 7, mean ≈ 13, total APs ≈ 1407.
	var sizes []float64
	for _, net := range fleet.Networks {
		sizes = append(sizes, float64(net.Size()))
	}
	s, _ := stats.Summarize(sizes)
	if s.Min < 3 {
		t.Fatalf("min size %v < 3", s.Min)
	}
	if s.Max != 203 {
		t.Fatalf("max size %v, want 203 (ForceMaxSize)", s.Max)
	}
	if s.Median < 5 || s.Median > 9 {
		t.Fatalf("median size %v, want ≈7", s.Median)
	}
	if s.Mean < 9 || s.Mean > 17 {
		t.Fatalf("mean size %v, want ≈13", s.Mean)
	}
	if total := fleet.TotalAPs(); total < 1000 || total > 1900 {
		t.Fatalf("total APs %d, want ≈1407", total)
	}
}

func TestFleetDeterminism(t *testing.T) {
	a, _ := GenerateFleet(rng.New(9), DefaultFleetConfig())
	b, _ := GenerateFleet(rng.New(9), DefaultFleetConfig())
	for i := range a.Networks {
		if a.Networks[i].Size() != b.Networks[i].Size() ||
			a.Networks[i].Env != b.Networks[i].Env {
			t.Fatalf("network %d differs across identical seeds", i)
		}
	}
}

func TestFleetSeedsDiffer(t *testing.T) {
	a, _ := GenerateFleet(rng.New(1), DefaultFleetConfig())
	b, _ := GenerateFleet(rng.New(2), DefaultFleetConfig())
	same := 0
	for i := range a.Networks {
		if a.Networks[i].Size() == b.Networks[i].Size() {
			same++
		}
	}
	if same == len(a.Networks) {
		t.Fatal("different seeds produced identical size sequences")
	}
}

func TestFleetConfigValidation(t *testing.T) {
	bad := DefaultFleetConfig()
	bad.NumIndoor = 100 // breaks the partition
	if _, err := GenerateFleet(rng.New(1), bad); err == nil {
		t.Fatal("inconsistent env partition should error")
	}
	bad = DefaultFleetConfig()
	bad.NumBoth = bad.NumN + 1
	if _, err := GenerateFleet(rng.New(1), bad); err == nil {
		t.Fatal("NumBoth > NumN should error")
	}
	bad = DefaultFleetConfig()
	bad.NumNetworks = 0
	bad.NumIndoor, bad.NumOutdoor, bad.NumMixed = 0, 0, 0
	if _, err := GenerateFleet(rng.New(1), bad); err == nil {
		t.Fatal("zero networks should error")
	}
	bad = DefaultFleetConfig()
	bad.MinSize, bad.MaxSize = 10, 5
	if _, err := GenerateFleet(rng.New(1), bad); err == nil {
		t.Fatal("inverted size bounds should error")
	}
}

func TestSmallFleet(t *testing.T) {
	cfg := FleetConfig{
		NumNetworks: 6, NumIndoor: 4, NumOutdoor: 1, NumMixed: 1,
		NumN: 2, NumBoth: 1, MinSize: 3, MaxSize: 20,
		SizeLogMean: 1.6, SizeLogStd: 0.5,
	}
	fleet, err := GenerateFleet(rng.New(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Networks) != 6 {
		t.Fatalf("got %d networks", len(fleet.Networks))
	}
	for _, n := range fleet.Networks {
		if n.Size() < 3 || n.Size() > 20 {
			t.Fatalf("network size %d outside bounds", n.Size())
		}
	}
}

func TestEnvClassString(t *testing.T) {
	if EnvIndoor.String() != "indoor" || EnvOutdoor.String() != "outdoor" || EnvMixed.String() != "mixed" {
		t.Fatal("EnvClass strings wrong")
	}
	if EnvClass(9).String() != "EnvClass(9)" {
		t.Fatal("unknown EnvClass formatting wrong")
	}
}

func BenchmarkGenerateFleet(b *testing.B) {
	cfg := DefaultFleetConfig()
	for i := 0; i < b.N; i++ {
		_, _ = GenerateFleet(rng.New(uint64(i)), cfg)
	}
}
