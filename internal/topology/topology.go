// Package topology synthesizes mesh network layouts: AP placements for a
// single network and whole fleets of networks whose size, band, and
// environment marginals match the thesis dataset (§3): 110 networks with
// 3–203 APs (median 7, mean 13, ~1407 APs total), 77 using 802.11b/g and 31
// using 802.11n with two using both, and 72 indoor / 17 outdoor / 21 mixed
// deployments.
package topology

import (
	"fmt"
	"math"

	"meshlab/internal/rng"
)

// EnvClass classifies a network's deployment environment. The thesis
// ignores mixed networks when splitting results by environment, and so do
// our per-environment analyses.
type EnvClass int

const (
	// EnvIndoor is an all-indoor network.
	EnvIndoor EnvClass = iota
	// EnvOutdoor is an all-outdoor network.
	EnvOutdoor
	// EnvMixed uses both indoor and outdoor nodes.
	EnvMixed
)

// String returns "indoor", "outdoor", or "mixed".
func (e EnvClass) String() string {
	switch e {
	case EnvIndoor:
		return "indoor"
	case EnvOutdoor:
		return "outdoor"
	case EnvMixed:
		return "mixed"
	default:
		return fmt.Sprintf("EnvClass(%d)", int(e))
	}
}

// AP is one access point: a stationary mesh node.
type AP struct {
	// ID is the AP's index within its network.
	ID int
	// Name is a stable identifier, unique within the network.
	Name string
	// X, Y are planar coordinates in meters.
	X, Y float64
	// Outdoor marks outdoor nodes inside mixed networks. In pure
	// indoor/outdoor networks it matches the network's class.
	Outdoor bool
}

// Dist returns the Euclidean distance in meters between two APs.
func Dist(a, b AP) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Hypot(dx, dy)
}

// Network is a mesh network layout.
type Network struct {
	// Name is the network's identifier, unique within a fleet.
	Name string
	// Env classifies the deployment environment.
	Env EnvClass
	// Bands lists the radio bands deployed ("bg", "n", or both).
	Bands []string
	// APs are the network's access points.
	APs []AP
	// Spacing is the typical nearest-neighbor distance in meters used
	// during placement.
	Spacing float64
}

// Size returns the number of APs.
func (n *Network) Size() int { return len(n.APs) }

// HasBand reports whether the network deploys the named band.
func (n *Network) HasBand(band string) bool {
	for _, b := range n.Bands {
		if b == band {
			return true
		}
	}
	return false
}

// Config controls generation of a single network.
type Config struct {
	Name  string
	Size  int
	Env   EnvClass
	Bands []string
	// Spacing overrides the environment's default nearest-neighbor
	// spacing in meters (0 means use the default: 30 m indoor, 90 m
	// outdoor, 55 m mixed).
	Spacing float64
}

// effDim maps AP count to the layout's side length in units of spacing.
// Small networks grow like sqrt(n) (constant density); beyond 40 APs the
// area grows sub-linearly, reflecting how large real deployments (apartment
// complexes, dense urban meshes) concentrate APs rather than spreading them
// over proportionally more ground. Without this, a 203-AP network would
// span many low-rate hops, whereas the thesis observes that even with a
// 203-AP network in the fleet, 30-40% of 1 Mbit/s paths are one hop.
func effDim(n int) float64 {
	root := math.Sqrt(float64(n))
	const knee = 40
	kneeRoot := math.Sqrt(knee)
	if n <= knee {
		return root
	}
	return kneeRoot * math.Pow(float64(n)/knee, 0.15)
}

func defaultSpacing(env EnvClass) float64 {
	switch env {
	case EnvOutdoor:
		return 90
	case EnvMixed:
		return 55
	default:
		return 30
	}
}

// Generate places a network's APs. Placement draws points uniformly in a
// square whose side scales with sqrt(Size) so density stays roughly
// constant, rejecting points closer than 0.45× the target spacing to a
// previously placed AP (Poisson-disk style, with a bounded number of
// retries so generation always terminates).
func Generate(r *rng.Stream, cfg Config) (*Network, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("topology: network size %d < 1", cfg.Size)
	}
	if len(cfg.Bands) == 0 {
		cfg.Bands = []string{"bg"}
	}
	spacing := cfg.Spacing
	if spacing <= 0 {
		spacing = defaultSpacing(cfg.Env)
	}
	side := spacing * effDim(cfg.Size) * 1.05
	minSep := spacing * 0.45

	n := &Network{Name: cfg.Name, Env: cfg.Env, Bands: cfg.Bands, Spacing: spacing}
	pr := r.Split("placement")
	for i := 0; i < cfg.Size; i++ {
		var x, y float64
		placed := false
		for attempt := 0; attempt < 60; attempt++ {
			x, y = pr.Float64()*side, pr.Float64()*side
			ok := true
			for _, ap := range n.APs {
				if math.Hypot(ap.X-x, ap.Y-y) < minSep {
					ok = false
					break
				}
			}
			if ok {
				placed = true
				break
			}
		}
		_ = placed // after 60 attempts we accept the last candidate
		ap := AP{ID: i, Name: fmt.Sprintf("%s-ap%03d", cfg.Name, i), X: x, Y: y}
		switch cfg.Env {
		case EnvOutdoor:
			ap.Outdoor = true
		case EnvMixed:
			ap.Outdoor = pr.Bool(0.5)
		}
		n.APs = append(n.APs, ap)
	}
	return n, nil
}

// FleetConfig controls fleet synthesis. The zero value is not useful;
// start from DefaultFleetConfig.
type FleetConfig struct {
	// NumNetworks is the number of networks (thesis: 110).
	NumNetworks int
	// NumIndoor, NumOutdoor, NumMixed partition NumNetworks by
	// environment (thesis: 72 / 17 / 21).
	NumIndoor, NumOutdoor, NumMixed int
	// NumN is how many networks run 802.11n (thesis: 31); NumBoth of
	// them also run 802.11b/g (thesis: 2). All remaining networks run
	// 802.11b/g only.
	NumN, NumBoth int
	// MinSize and MaxSize bound network sizes (thesis: 3 and 203).
	MinSize, MaxSize int
	// SizeLogMean and SizeLogStd parameterize the lognormal size
	// distribution: size = MinSize + round(exp(N(SizeLogMean,
	// SizeLogStd))) − 1, clamped.
	SizeLogMean, SizeLogStd float64
	// ForceMaxSize, when true, pins the largest network to MaxSize so
	// the fleet always contains the thesis's 203-AP network.
	ForceMaxSize bool
	// SpacingScale multiplies every network's environment-default
	// nearest-neighbor spacing (0 or 1 leaves it unscaled). It is the
	// scenario catalog's density knob: values below 1 pack APs tighter
	// (dense urban deployments), values above 1 spread them out (sparse
	// rural ones). Negative values are rejected.
	SpacingScale float64
}

// DefaultFleetConfig returns the thesis-shaped fleet configuration.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		NumNetworks:  110,
		NumIndoor:    72,
		NumOutdoor:   17,
		NumMixed:     21,
		NumN:         31,
		NumBoth:      2,
		MinSize:      3,
		MaxSize:      203,
		SizeLogMean:  1.62, // exp(1.62) ≈ 5.1 → median size ≈ 7
		SizeLogStd:   0.95,
		ForceMaxSize: true,
	}
}

// Fleet is a collection of generated networks.
type Fleet struct {
	Networks []*Network
}

// TotalAPs returns the number of APs across all networks.
func (f *Fleet) TotalAPs() int {
	total := 0
	for _, n := range f.Networks {
		total += n.Size()
	}
	return total
}

// ByBand returns the networks deploying the named band.
func (f *Fleet) ByBand(band string) []*Network {
	var out []*Network
	for _, n := range f.Networks {
		if n.HasBand(band) {
			out = append(out, n)
		}
	}
	return out
}

// ByEnv returns the networks in the given environment class.
func (f *Fleet) ByEnv(env EnvClass) []*Network {
	var out []*Network
	for _, n := range f.Networks {
		if n.Env == env {
			out = append(out, n)
		}
	}
	return out
}

// GenerateFleet synthesizes a fleet per cfg. Environment classes, bands,
// and sizes are assigned by independent shuffles so the joint distribution
// is unbiased; all draws come from r, so equal seeds give equal fleets.
func GenerateFleet(r *rng.Stream, cfg FleetConfig) (*Fleet, error) {
	if cfg.NumNetworks <= 0 {
		return nil, fmt.Errorf("topology: NumNetworks %d <= 0", cfg.NumNetworks)
	}
	if cfg.NumIndoor+cfg.NumOutdoor+cfg.NumMixed != cfg.NumNetworks {
		return nil, fmt.Errorf("topology: environment counts %d+%d+%d != %d",
			cfg.NumIndoor, cfg.NumOutdoor, cfg.NumMixed, cfg.NumNetworks)
	}
	if cfg.NumN > cfg.NumNetworks || cfg.NumBoth > cfg.NumN {
		return nil, fmt.Errorf("topology: band counts inconsistent")
	}
	if cfg.MinSize < 1 || cfg.MaxSize < cfg.MinSize {
		return nil, fmt.Errorf("topology: bad size bounds [%d, %d]", cfg.MinSize, cfg.MaxSize)
	}
	if cfg.SpacingScale < 0 {
		return nil, fmt.Errorf("topology: SpacingScale %g < 0", cfg.SpacingScale)
	}

	// Assign environments.
	envs := make([]EnvClass, 0, cfg.NumNetworks)
	for i := 0; i < cfg.NumIndoor; i++ {
		envs = append(envs, EnvIndoor)
	}
	for i := 0; i < cfg.NumOutdoor; i++ {
		envs = append(envs, EnvOutdoor)
	}
	for i := 0; i < cfg.NumMixed; i++ {
		envs = append(envs, EnvMixed)
	}
	er := r.Split("envs")
	perm := er.Perm(len(envs))
	shuffledEnvs := make([]EnvClass, len(envs))
	for i, p := range perm {
		shuffledEnvs[i] = envs[p]
	}

	// Assign bands: NumN networks run "n"; NumBoth of those also run
	// "bg"; the rest run "bg" only.
	bands := make([][]string, cfg.NumNetworks)
	br := r.Split("bands")
	nIdx := br.Perm(cfg.NumNetworks)[:cfg.NumN]
	isN := make(map[int]bool, cfg.NumN)
	for _, i := range nIdx {
		isN[i] = true
	}
	bothLeft := cfg.NumBoth
	for i := 0; i < cfg.NumNetworks; i++ {
		switch {
		case isN[i] && bothLeft > 0:
			bands[i] = []string{"bg", "n"}
			bothLeft--
		case isN[i]:
			bands[i] = []string{"n"}
		default:
			bands[i] = []string{"bg"}
		}
	}

	// Draw sizes.
	sr := r.Split("sizes")
	sizes := make([]int, cfg.NumNetworks)
	largest, largestAt := 0, 0
	for i := range sizes {
		s := cfg.MinSize + int(math.Round(math.Exp(cfg.SizeLogMean+cfg.SizeLogStd*sr.NormFloat64()))) - 1
		if s < cfg.MinSize {
			s = cfg.MinSize
		}
		if s > cfg.MaxSize {
			s = cfg.MaxSize
		}
		sizes[i] = s
		if s > largest {
			largest, largestAt = s, i
		}
	}
	if cfg.ForceMaxSize {
		sizes[largestAt] = cfg.MaxSize
	}

	fleet := &Fleet{}
	for i := 0; i < cfg.NumNetworks; i++ {
		// SpacingScale 0 or exactly 1 keeps Spacing at 0 so Generate's
		// default path runs and historic fleets stay byte-identical.
		spacing := 0.0
		if cfg.SpacingScale > 0 && cfg.SpacingScale != 1 {
			spacing = defaultSpacing(shuffledEnvs[i]) * cfg.SpacingScale
		}
		net, err := Generate(r.SplitN("network", i), Config{
			Name:    fmt.Sprintf("net%03d", i),
			Size:    sizes[i],
			Env:     shuffledEnvs[i],
			Bands:   bands[i],
			Spacing: spacing,
		})
		if err != nil {
			return nil, err
		}
		fleet.Networks = append(fleet.Networks, net)
	}
	return fleet, nil
}
