// Package binio implements the little-endian primitive codec shared by
// the accumulator snapshot and checkpoint-file serializers: sticky-error
// writer/reader pairs over fixed-width primitives and length-prefixed
// strings, with every decode-side element count validated against the
// bytes the input can still yield — so corrupt or hostile lengths error
// out contextually instead of panicking or allocating unboundedly.
package binio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// defaultCap bounds a decoded element count when the input's remaining
// size is unknown (a plain io.Reader with no Len). Checkpoint decoding
// always works over in-memory sections, so this only guards direct
// callers.
const defaultCap = 1 << 27

// Writer encodes primitives with a sticky first error: callers write a
// whole structure and check Err once at the end.
type Writer struct {
	w   io.Writer
	err error
	buf [8]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Check folds an external error (a nested serializer's return) into the
// sticky state.
func (w *Writer) Check(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// Write implements io.Writer so nested serializers can wrap a Writer in
// their own layer without flattening the error handling.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	w.err = err
	return n, err
}

func (w *Writer) write(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes an int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 by bit pattern (NaN payloads round-trip).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes one byte, 0 or 1.
func (w *Writer) Bool(v bool) {
	b := uint8(0)
	if v {
		b = 1
	}
	w.U8(b)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Int(len(s))
	w.write([]byte(s))
}

// Reader decodes what Writer encodes, with the same sticky-error
// contract. A short read surfaces as io.ErrUnexpectedEOF.
type Reader struct {
	r   io.Reader
	err error
	buf [8]byte
	// remaining is how many bytes the source can still yield, or -1 when
	// unknown; Count validates decoded lengths against it.
	remaining int64
}

// NewReader wraps r. When r measures its own remaining length (a
// *bytes.Reader, *bytes.Buffer, another *Reader — anything with
// Len() int), decoded element counts are validated against it, so a
// corrupt length can never allocate more than the input's own size.
func NewReader(r io.Reader) *Reader {
	br := &Reader{r: r, remaining: -1}
	if l, ok := r.(interface{ Len() int }); ok {
		if n := l.Len(); n >= 0 {
			br.remaining = int64(n)
		}
	}
	return br
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the bytes the source can still yield, or -1 when unknown —
// so a nested NewReader over this one inherits the limit.
func (r *Reader) Len() int {
	if r.remaining < 0 {
		return -1
	}
	return int(r.remaining)
}

// Read implements io.Reader (for nesting); read errors other than a
// clean EOF become sticky.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n, err := r.r.Read(p)
	if r.remaining >= 0 {
		r.remaining -= int64(n)
	}
	if err != nil && err != io.EOF {
		r.err = err
	}
	return n, err
}

// read fills and returns r.buf[:n], or nil after an error.
func (r *Reader) read(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining >= 0 && int64(n) > r.remaining {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := r.buf[:n]
	if _, err := io.ReadFull(r.r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = err
		return nil
	}
	if r.remaining >= 0 {
		r.remaining -= int64(n)
	}
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.read(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.read(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.read(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 into an int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte; any nonzero value is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Count decodes an element count written by Int and validates it:
// non-negative, and n × elemSize (the encoded size of one element, ≥ 1)
// must fit in the input that remains. A corrupt count therefore errors
// here instead of sizing an allocation.
func (r *Reader) Count(elemSize int) int {
	n := r.I64()
	if r.err != nil {
		return 0
	}
	if n < 0 {
		r.err = fmt.Errorf("binio: negative count %d", n)
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	limit := int64(defaultCap) * int64(elemSize)
	if r.remaining >= 0 {
		limit = r.remaining
	}
	if n > limit/int64(elemSize) {
		r.err = fmt.Errorf("binio: count %d × %dB exceeds remaining input (%d bytes)", n, elemSize, limit)
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = err
		return ""
	}
	if r.remaining >= 0 {
		r.remaining -= int64(n)
	}
	return string(b)
}
