package binio

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(7)
	w.U32(0xDEADBEEF)
	w.U64(1 << 60)
	w.I64(-42)
	w.Int(123456)
	w.F64(3.25)
	w.F64(math.NaN())
	w.Bool(true)
	w.Bool(false)
	w.String("hello")
	w.String("")
	if err := w.Err(); err != nil {
		t.Fatalf("write: %v", err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 123456 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != 3.25 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsNaN(got) {
		t.Errorf("F64 NaN = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool round-trip broken")
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("read: %v", err)
	}
}

func TestTruncatedInputErrorsNotPanics(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(99)
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		r.U64()
		if !errors.Is(r.Err(), io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: err = %v, want unexpected EOF", cut, r.Err())
		}
	}
}

func TestCountRejectsHostileLengths(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(1 << 40) // claims 2^40 elements in a 8-byte input
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Fatalf("Count = %d, err = %v; want 0 and error", n, r.Err())
	}

	buf.Reset()
	w = NewWriter(&buf)
	w.I64(-1)
	r = NewReader(bytes.NewReader(buf.Bytes()))
	if n := r.Count(1); n != 0 || r.Err() == nil {
		t.Fatalf("negative Count = %d, err = %v; want 0 and error", n, r.Err())
	}
}

func TestStringRejectsLyingLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int(1 << 30) // length prefix far beyond the input
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if s := r.String(); s != "" || r.Err() == nil {
		t.Fatalf("String = %q, err = %v; want error", s, r.Err())
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	r.U8()
	first := r.Err()
	if first == nil {
		t.Fatal("expected error on empty input")
	}
	r.U64()
	_ = r.String()
	if r.Err() != first {
		t.Fatalf("error not sticky: %v vs %v", r.Err(), first)
	}
}

func TestNestedReaderInheritsLimit(t *testing.T) {
	// An inner reader built over an outer one must still see a byte
	// budget, so hostile counts fail even two layers deep.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(1 << 40)
	outer := NewReader(bytes.NewReader(buf.Bytes()))
	inner := NewReader(outer)
	if inner.Len() != outer.Len() || inner.Len() < 0 {
		t.Fatalf("inner Len = %d, outer = %d", inner.Len(), outer.Len())
	}
	if n := inner.Count(8); n != 0 || inner.Err() == nil {
		t.Fatalf("nested Count = %d, err = %v; want error", n, inner.Err())
	}
}

func TestUnknownLengthSourceStillCapped(t *testing.T) {
	// strings.Reader has Len; wrap in a bare io.Reader to hide it.
	src := io.MultiReader(strings.NewReader(string(encodeI64(1 << 40))))
	r := NewReader(src)
	if r.Len() != -1 {
		t.Fatalf("Len = %d, want -1 for unknown source", r.Len())
	}
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Fatalf("Count = %d, err = %v; want default-cap error", n, r.Err())
	}
}

func encodeI64(v int64) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(v)
	return buf.Bytes()
}
