package meshd

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestMeshdConcurrentQueriesWhileWarming is the acceptance-criteria
// race test: ≥64 concurrent queries against a warm dataset while a
// second cold dataset registers and warms. Every query must complete
// (a warm never blocks the query path), the answers must all be the
// snapshot's exact bytes, and the pool's high-water mark must stay
// within the process worker budget.
func TestMeshdConcurrentQueriesWhileWarming(t *testing.T) {
	dir := t.TempDir()
	spec := writeTinySpec(t, dir)
	// A deliberately small budget so the 64 queries and the warm
	// genuinely contend for slots.
	s := New(Config{Dir: dir, Workers: 8})
	defer s.Shutdown(context.Background())
	if _, err := s.RegisterScenario("hot", spec); err != nil {
		t.Fatal(err)
	}
	snap := waitReady(t, s, "hot")
	wantReport, wantSec4 := snap.Report(), snap.Sec4()

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const queries = 64
	var wg sync.WaitGroup
	errs := make(chan error, queries)
	start := make(chan struct{})
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			path, want := "/v1/datasets/hot/report", wantReport
			if i%2 == 1 {
				path, want = "/v1/datasets/hot/sec4", wantSec4
			}
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("query %d: status %d", i, resp.StatusCode)
				return
			}
			if string(body) != want {
				errs <- fmt.Errorf("query %d: response diverged from the snapshot bytes", i)
			}
		}(i)
	}

	// Fire the queries and, mid-flight, register the cold dataset so
	// its warm streams while the queries drain.
	close(start)
	if _, err := s.RegisterScenario("cold", spec); err != nil {
		t.Fatalf("cold registration during query load: %v", err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("concurrent queries blocked: the warm starved the query path")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The cold dataset's warm must complete too — queries didn't starve
	// it either.
	waitReady(t, s, "cold")

	capacity, high := s.PoolStats()
	if high > capacity {
		t.Fatalf("worker budget exceeded: high-water mark %d > capacity %d", high, capacity)
	}
	if high == 0 {
		t.Fatal("pool high-water mark is 0: queries and warms never took slots")
	}
}

// TestMeshdConcurrentSameScenarioWarms: the API allows one scenario to
// register under two names at once (e.g. -register campus=quick,quick),
// so both warms target the same dataset file. The per-path synthesis
// lock plus the atomic save must make them share one synthesis: both
// reach ready, off one complete file, serving identical bytes.
func TestMeshdConcurrentSameScenarioWarms(t *testing.T) {
	dir := t.TempDir()
	spec := writeTinySpec(t, dir)
	s := New(Config{Dir: dir})
	defer s.Shutdown(context.Background())
	if _, err := s.RegisterScenario("campus", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterScenario("quick-alias", spec); err != nil {
		t.Fatal(err)
	}
	sa, sb := waitReady(t, s, "campus"), waitReady(t, s, "quick-alias")
	if sa.DatasetPath != sb.DatasetPath {
		t.Fatalf("warms diverged on dataset path: %q vs %q", sa.DatasetPath, sb.DatasetPath)
	}
	if sa.Sec4() != sb.Sec4() {
		t.Fatal("one scenario under two names served different §4 bytes")
	}
	// Reports differ only in the run-specific wall-time preamble line.
	if stripRunLines(sa.Report()) != stripRunLines(sb.Report()) {
		t.Fatal("one scenario under two names served different reports")
	}
}
