// faults_test.go is the service-level fault-injection suite: faultfs
// plans drive warms through transient EIO, stalls, torn files, and
// persistent corruption, and the assertions pin the retry taxonomy —
// transients converge to ready with byte-identical responses, corrupt
// data fails fast with the wire.ErrCorrupt chain intact, and retry
// evidence (attempt, nextRetry, the degraded healthz) is visible while
// a warm is down.

package meshd

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"meshlab/internal/faultfs"
	"meshlab/internal/scenario"
	"meshlab/internal/scenario/e2e"
	"meshlab/internal/wire"
)

// synthTiny synthesizes the tiny scenario's dataset file and returns
// its directory and path — the raw .bin the fault plans wrap.
func synthTiny(t *testing.T) (dir, path string) {
	t.Helper()
	dir = t.TempDir()
	sp, err := scenario.Resolve(writeTinySpec(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	path, err = e2e.New(dir).Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	return dir, path
}

// waitFailed polls until the dataset's warm has failed for good.
func waitFailed(t *testing.T, s *Server, name string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, err := s.Status(name)
		if err != nil {
			t.Fatalf("Status(%s): %v", name, err)
		}
		if st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("dataset %s never failed (state %s)", name, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func passThrough(p string) (io.ReadSeekCloser, error) { return os.Open(p) }

// firstBandCodeOffset locates the band-code byte of the file's first
// network record — v2 framing: u32 record length, u16 name length, the
// name, then the band code. XORing it makes decode validation fail
// deterministically ("unknown band code"), the persistent-corruption
// target that can never look like an I/O error.
func firstBandCodeOffset(t *testing.T, path string) int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := wire.BuildPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Networks) == 0 {
		t.Fatal("fixture has no network records")
	}
	rec := plan.Networks[0]
	return rec.Offset + 4 + 2 + int64(len(rec.Name))
}

// TestMeshdWarmRetriesTransient: two injected EIOs during warming must
// cost two retries and nothing else — the dataset converges to ready
// and serves bytes identical to a fault-free warm of the same file.
func TestMeshdWarmRetriesTransient(t *testing.T) {
	dir, path := synthTiny(t)
	// Offset 16 sits in the header every attempt reads first, so the
	// fault fires once per attempt until it burns out.
	inj := faultfs.New(faultfs.Fault{Kind: faultfs.Transient, Offset: 16, Count: 2})
	s := New(Config{Dir: dir, RetryBase: 2 * time.Millisecond, Open: inj.WrapOpen(passThrough)})
	defer s.Shutdown(context.Background())
	if err := s.RegisterPath("flaky", path); err != nil {
		t.Fatal(err)
	}
	snap := waitReady(t, s, "flaky")
	if got := inj.Fired(0); got != 2 {
		t.Fatalf("injected transient fired %d times, want 2", got)
	}
	st, err := s.Status("flaky")
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempt != 3 {
		t.Fatalf("ready after attempt %d, want 3 (two transients, then success)", st.Attempt)
	}
	if st.Retrying || st.Error != "" || st.NextRetry != "" {
		t.Fatalf("ready status still carries retry evidence: %+v", st)
	}

	// Byte identity against a fault-free warm of the same file (report
	// compared up to the run-specific wall-time lines).
	clean := New(Config{Dir: dir})
	defer clean.Shutdown(context.Background())
	if err := clean.RegisterPath("clean", path); err != nil {
		t.Fatal(err)
	}
	ref := waitReady(t, clean, "clean")
	if snap.Sec4() != ref.Sec4() {
		t.Fatal("§4 bytes diverge after transient retries")
	}
	if stripRunLines(snap.Report()) != stripRunLines(ref.Report()) {
		t.Fatal("report bytes diverge after transient retries")
	}
	for _, id := range ref.ids {
		want, _ := ref.Experiment(id)
		got, err := snap.Experiment(id)
		if err != nil || got != want {
			t.Fatalf("experiment %s diverges after transient retries (err %v)", id, err)
		}
	}
}

// TestMeshdRetryEvidenceVisible: while a warm sits in its backoff sleep
// the status must expose attempt, the transient cause, and nextRetry,
// and /healthz must degrade to a warning — then all of it clears once
// the retry succeeds.
func TestMeshdRetryEvidenceVisible(t *testing.T) {
	dir, path := synthTiny(t)
	inj := faultfs.New(faultfs.Fault{Kind: faultfs.Transient, Offset: 16, Count: 1})
	// A one-second base keeps the retry window wide open for the poll.
	s := New(Config{Dir: dir, RetryBase: time.Second, Open: inj.WrapOpen(passThrough)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.RegisterPath("flaky", path); err != nil {
		t.Fatal(err)
	}

	var st Status
	deadline := time.Now().Add(time.Minute)
	for {
		var err error
		st, err = s.Status("flaky")
		if err != nil {
			t.Fatal(err)
		}
		if st.Retrying {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("warm never entered the retry state")
		}
		time.Sleep(time.Millisecond)
	}
	if st.State != StateWarming || st.Attempt < 1 {
		t.Fatalf("retrying status: %+v", st)
	}
	if !strings.Contains(st.Error, "transient") {
		t.Fatalf("retrying status lost the transient cause: %q", st.Error)
	}
	next, err := time.Parse(time.RFC3339Nano, st.NextRetry)
	if err != nil {
		t.Fatalf("nextRetry %q: %v", st.NextRetry, err)
	}
	if next.Before(time.Now().Add(-time.Second)) {
		t.Fatalf("nextRetry %v is not a future retry time", next)
	}
	if body := getBody(t, ts.URL+"/healthz"); !strings.Contains(body, "warn") {
		t.Fatalf("healthz not degraded while retrying: %q", body)
	}

	waitReady(t, s, "flaky")
	if body := getBody(t, ts.URL+"/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz still degraded after recovery: %q", body)
	}
	st, _ = s.Status("flaky")
	if st.Retrying || st.Error != "" || st.NextRetry != "" {
		t.Fatalf("retry evidence survived recovery: %+v", st)
	}
}

// TestMeshdWarmCorruptFailsFast: persistent corruption (the first
// network record's band code XORed on every read, a deterministic
// decode-validation failure) must fail on the first attempt — never
// retried — with the wire.ErrCorrupt chain reachable from Snapshot's
// error and the status document.
func TestMeshdWarmCorruptFailsFast(t *testing.T) {
	dir, path := synthTiny(t)
	inj := faultfs.New(faultfs.Fault{Kind: faultfs.Corrupt, Offset: firstBandCodeOffset(t, path), XOR: 0xFF})
	s := New(Config{Dir: dir, RetryBase: time.Millisecond, Open: inj.WrapOpen(passThrough)})
	defer s.Shutdown(context.Background())
	if err := s.RegisterPath("bad", path); err != nil {
		t.Fatal(err)
	}
	st := waitFailed(t, s, "bad")
	if st.Attempt != 1 {
		t.Fatalf("corruption was retried: %d attempts", st.Attempt)
	}
	if st.Retrying || st.NextRetry != "" {
		t.Fatalf("failed status still promises a retry: %+v", st)
	}
	_, err := s.Snapshot("bad")
	if !errors.Is(err, ErrWarmFailed) || !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("Snapshot error lost the corrupt chain: %v", err)
	}
}

// TestMeshdWarmTornFileFailsCorrupt: a truncated dataset is corrupt
// data (io.ErrUnexpectedEOF), not a transient — it must fail fast.
func TestMeshdWarmTornFileFailsCorrupt(t *testing.T) {
	dir, path := synthTiny(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.bin")
	if err := os.WriteFile(torn, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Dir: dir, RetryBase: time.Millisecond})
	defer s.Shutdown(context.Background())
	if err := s.RegisterPath("torn", torn); err != nil {
		t.Fatal(err)
	}
	st := waitFailed(t, s, "torn")
	if st.Attempt != 1 {
		t.Fatalf("torn file was retried: %d attempts", st.Attempt)
	}
	_, err = s.Snapshot("torn")
	if !wire.IsCorrupt(err) {
		t.Fatalf("torn-file failure not classified corrupt: %v", err)
	}
}

// TestMeshdWarmStallConverges: injected latency is not a failure — the
// warm rides it out and converges on the first attempt.
func TestMeshdWarmStallConverges(t *testing.T) {
	dir, path := synthTiny(t)
	inj := faultfs.New(faultfs.Fault{Kind: faultfs.Stall, Offset: 16, Delay: 50 * time.Millisecond, Count: 1})
	s := New(Config{Dir: dir, Open: inj.WrapOpen(passThrough)})
	defer s.Shutdown(context.Background())
	if err := s.RegisterPath("slow", path); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "slow")
	if got := inj.Fired(0); got != 1 {
		t.Fatalf("stall fired %d times, want 1", got)
	}
	if st, _ := s.Status("slow"); st.Attempt != 1 {
		t.Fatalf("stalled warm took %d attempts, want 1", st.Attempt)
	}
}

// TestMeshdWarmExhaustsRetries: a fault outliving the retry budget
// fails the dataset with the transient root cause still in the chain.
func TestMeshdWarmExhaustsRetries(t *testing.T) {
	dir, path := synthTiny(t)
	inj := faultfs.New(faultfs.Fault{Kind: faultfs.Transient, Offset: 16, Count: 1 << 20})
	s := New(Config{Dir: dir, WarmRetries: 2, RetryBase: time.Millisecond, Open: inj.WrapOpen(passThrough)})
	defer s.Shutdown(context.Background())
	if err := s.RegisterPath("doomed", path); err != nil {
		t.Fatal(err)
	}
	st := waitFailed(t, s, "doomed")
	if st.Attempt != 3 {
		t.Fatalf("exhaustion after attempt %d, want 3 (initial + 2 retries)", st.Attempt)
	}
	_, err := s.Snapshot("doomed")
	if !errors.Is(err, faultfs.ErrTransient) {
		t.Fatalf("exhaustion lost the transient root cause: %v", err)
	}
}

// getBody GETs a URL and returns its body.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
