// Package meshd is the long-running analysis service: it registers
// datasets (binary fleet files by path, or declarative scenarios by
// name), warms each one's derived state through the bounded streaming
// pipeline (finalized accumulators, chunked §4 tables, memoized
// censuses), and serves report, section, and figure queries over HTTP
// with list-style filtering — the serving layer the ROADMAP's "meshd"
// item describes, modeled on flightctl's API server and field-selector
// list parameters.
//
// Heavy-traffic shape:
//
//   - Concurrent read queries share immutable finalized state through
//     copy-on-write snapshots: a warm publishes one atomic pointer
//     swap, readers never take the registry lock on the data path, and
//     a re-registration builds its replacement snapshot off to the
//     side while the old one keeps serving.
//   - Cold datasets stream in via meshlab.StreamFleet in background
//     goroutines, so warming never blocks serving warm datasets;
//     registration returns 202 plus a pollable status document (the
//     e2e harness's polling discipline, over HTTP).
//   - One conc.Pool divides the process worker budget between warms
//     (heavy holders, capped below capacity) and queries (light
//     holders with a reserved floor), so one expensive request can
//     never starve the rest and total workers never exceed the budget.
//   - Graceful shutdown stops accepting registrations, unblocks queued
//     warms, and drains in-flight work.
//
// Responses reuse the CLIs' exact byte paths: an experiment query
// returns what `meshanalyze -exp ID` prints, the §4 section returns
// what `meshanalyze -sec4` prints, and the report is cmd/meshreport's
// markdown (shared internal/report renderer) — so the whole golden and
// scenario oracle net pins the server's output too. See docs/MESHD.md
// for the HTTP API.
package meshd

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"meshlab"
	"meshlab/internal/conc"
	"meshlab/internal/report"
	"meshlab/internal/scenario"
	"meshlab/internal/scenario/e2e"
)

// State is a registered dataset's lifecycle phase.
type State string

const (
	// StateWarming: registered, derived state still streaming in; no
	// snapshot is served yet.
	StateWarming State = "warming"
	// StateReady: a finalized snapshot is being served.
	StateReady State = "ready"
	// StateFailed: the warm failed; Status.Error says why. A
	// re-registration retries.
	StateFailed State = "failed"
)

// Errors the HTTP layer maps to status codes; see httpError.
var (
	// ErrNotFound: no dataset (or experiment) under that name.
	ErrNotFound = errors.New("meshd: not found")
	// ErrNotReady: the dataset is still warming; poll its status.
	ErrNotReady = errors.New("meshd: dataset not ready")
	// ErrWarmFailed: the dataset's warm failed; the status carries the
	// cause.
	ErrWarmFailed = errors.New("meshd: warm failed")
	// ErrClosed: the server is shutting down.
	ErrClosed = errors.New("meshd: server is shutting down")
	// ErrBadRequest: an invalid registration or query.
	ErrBadRequest = errors.New("meshd: bad request")
)

// Config tunes a Server.
type Config struct {
	// Dir is where scenario registrations synthesize their dataset
	// files (reused across registrations — the compilation is
	// deterministic, so a present file is the right file). Required
	// when scenarios are registered.
	Dir string
	// Workers caps the server's total worker slots — warms plus
	// queries (≤ 0: the process budget, conc.Budget()).
	Workers int
	// Reserved worker slots a warm may never hold, so queries keep
	// moving while cold datasets stream in (≤ 0: a quarter of the
	// capacity, at least 1).
	Reserved int
}

// Server is the concurrent analysis service. Create with New, serve
// via Handler, stop with Shutdown.
type Server struct {
	cfg    Config
	pool   *conc.Pool
	warms  sync.WaitGroup
	base   context.Context
	cancel context.CancelFunc

	mu       sync.RWMutex
	closed   bool
	datasets map[string]*dsEntry

	// synthMu guards synthLocks, the per-dataset-path mutexes that
	// serialize scenario synthesis: two concurrent warms of the same
	// scenario (registered under different names) share one synthesis —
	// the second enters Synthesize after the first's atomic rename has
	// published the file and reuses it.
	synthMu    sync.Mutex
	synthLocks map[string]*sync.Mutex
}

// dsEntry is one registered dataset: mutable status under mu, plus the
// immutable published snapshot behind an atomic pointer so the query
// path never takes a lock that a warm holds.
type dsEntry struct {
	name   string
	source string

	mu      sync.Mutex
	state   State
	warmErr error
	gen     int  // bumped per (re)registration; a stale warm may not publish
	warming bool // a warm goroutine is in flight (initial or refresh)

	snap atomic.Pointer[Snapshot]
}

// Snapshot is a dataset's finalized derived state: everything a query
// can ask for, fully materialized and immutable. Queries resolve
// against whichever snapshot pointer they load; a refresh publishes a
// new snapshot without touching the old one (copy-on-write).
type Snapshot struct {
	// Summary is the streaming walk's dataset summary.
	Summary meshlab.StreamSummary
	// Results holds every experiment result in paper order.
	Results []*meshlab.Result
	// Networks indexes the walked network datasets for filtered list
	// queries, in file order.
	Networks []NetworkEntry
	// DatasetPath is the binary file the snapshot was streamed from.
	DatasetPath string
	// WarmDuration is how long the streaming suite took.
	WarmDuration time.Duration

	report string            // cmd/meshreport markdown, rendered once
	byID   map[string]string // experiment ID → meshanalyze -exp bytes
	ids    []string          // experiment IDs in paper order
	sec4   string            // meshanalyze -sec4 bytes
}

// NetworkEntry is one network dataset in a snapshot's queryable index.
type NetworkEntry struct {
	Name      string `json:"name"`
	Band      string `json:"band"`
	Env       string `json:"env"`
	APs       int    `json:"aps"`
	Links     int    `json:"links"`
	ProbeSets int    `json:"probeSets"`
}

// Status is the pollable registration document.
type Status struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	State  State  `json:"state"`
	// Refreshing reports a re-registration warming a replacement
	// snapshot while the current one keeps serving.
	Refreshing bool `json:"refreshing,omitempty"`
	// Error carries the warm failure when State is failed.
	Error string `json:"error,omitempty"`
	// Dataset facts, meaningful once State is ready. Always serialized
	// (no omitempty): a ready dataset with a legitimate zero value —
	// seed 0, an empty fleet — must be distinguishable from "fact not
	// yet available", and State already says which one a client holds.
	Networks   int    `json:"networks"`
	ProbeSets  int    `json:"probeSets"`
	Seed       uint64 `json:"seed"`
	WarmMillis int64  `json:"warmMillis"`
}

// New returns a Server ready to register datasets.
func New(cfg Config) *Server {
	base, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		pool:       conc.NewPool(cfg.Workers, cfg.Reserved),
		base:       base,
		cancel:     cancel,
		datasets:   make(map[string]*dsEntry),
		synthLocks: make(map[string]*sync.Mutex),
	}
}

// synthLock returns the mutex serializing synthesis of the dataset file
// at path. Locks are never removed: the map is bounded by the set of
// distinct scenario paths ever registered.
func (s *Server) synthLock(path string) *sync.Mutex {
	s.synthMu.Lock()
	defer s.synthMu.Unlock()
	m := s.synthLocks[path]
	if m == nil {
		m = &sync.Mutex{}
		s.synthLocks[path] = m
	}
	return m
}

// PoolStats exposes the worker pool's capacity and in-flight high-water
// mark: the budget-enforcement witness the concurrency tests assert.
func (s *Server) PoolStats() (capacity, high int) {
	return s.pool.Capacity(), s.pool.High()
}

// validName matches the scenario-name discipline: lowercase letters,
// digits, dashes, dots (so a name can mirror a file stem).
func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, r := range name {
		ok := r == '-' || r == '.' || (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z')
		if !ok {
			return false
		}
	}
	return strings.Trim(name, ".-") != "" // no all-punctuation names
}

// RegisterPath registers (or refreshes) name backed by a binary fleet
// file and starts warming it in the background. Returns immediately;
// poll Status until ready.
func (s *Server) RegisterPath(name, path string) error {
	if path == "" {
		return fmt.Errorf("%w: empty dataset path", ErrBadRequest)
	}
	return s.register(name, "path:"+path)
}

// RegisterScenario registers (or refreshes) a declarative scenario — a
// built-in name or a spec-file path — synthesizing its dataset into
// Config.Dir if it is not already there, then warming it. name may be
// empty to use the scenario's own name.
func (s *Server) RegisterScenario(name, scen string) (string, error) {
	sp, err := scenario.Resolve(scen)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if name == "" {
		name = sp.Name
	}
	if s.cfg.Dir == "" {
		return "", fmt.Errorf("%w: this server has no dataset directory for scenario synthesis", ErrBadRequest)
	}
	return name, s.register(name, "scenario:"+scen)
}

// register installs (or refreshes) the entry and launches the warm
// goroutine. A registration racing an in-flight warm of the same name
// is rejected rather than queued — callers poll to ready first.
func (s *Server) register(name, source string) error {
	if !validName(name) {
		return fmt.Errorf("%w: invalid dataset name %q (lowercase letters, digits, dashes, dots)", ErrBadRequest, name)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	d := s.datasets[name]
	if d == nil {
		d = &dsEntry{name: name, state: StateWarming}
		s.datasets[name] = d
	}
	d.mu.Lock()
	if d.warming {
		d.mu.Unlock()
		s.mu.Unlock()
		return fmt.Errorf("%w: dataset %q is already warming; poll its status", ErrBadRequest, name)
	}
	d.source = source
	d.warming = true
	d.warmErr = nil
	d.gen++
	if d.snap.Load() == nil {
		d.state = StateWarming
	}
	gen := d.gen
	d.mu.Unlock()
	s.warms.Add(1)
	s.mu.Unlock()
	go s.warm(d, source, gen)
	return nil
}

// warm builds the dataset's snapshot under a heavy pool share and
// publishes it with one pointer swap. A warm superseded by a newer
// registration generation publishes nothing.
func (s *Server) warm(d *dsEntry, source string, gen int) {
	defer s.warms.Done()
	snap, err := s.buildSnapshot(source)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gen != gen {
		return // superseded; the newer warm owns the status
	}
	d.warming = false
	if err != nil {
		d.warmErr = err
		if d.snap.Load() == nil {
			d.state = StateFailed
		}
		return
	}
	d.snap.Store(snap)
	d.state = StateReady
}

// buildSnapshot resolves the source to a binary dataset file, streams
// the full suite over it, and materializes every query answer once —
// the report markdown, the per-experiment texts, the §4 section, and
// the network index — so the query path is pure immutable reads.
func (s *Server) buildSnapshot(source string) (*Snapshot, error) {
	grant, err := s.pool.Heavy(s.base, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	defer s.pool.ReleaseHeavy(grant)

	path := source
	so := meshlab.StreamOptions{Workers: grant}
	if scen, ok := strings.CutPrefix(source, "scenario:"); ok {
		sp, err := scenario.Resolve(scen)
		if err != nil {
			return nil, err
		}
		// The e2e harness owns the synthesize-once discipline (its atomic
		// save makes a present file a complete file); the per-path lock
		// makes concurrent warms of one scenario share a single
		// synthesis instead of racing to generate the same bytes. The
		// streamed walk below still validates the file when the scenario
		// is cache-validatable.
		h := e2e.New(s.cfg.Dir)
		h.Workers = grant
		lock := s.synthLock(h.DatasetPath(sp))
		lock.Lock()
		path, err = h.Synthesize(sp)
		lock.Unlock()
		if err != nil {
			return nil, err
		}
		opts := sp.Options()
		if opts.CacheValidatable() {
			so.Validate = &opts
		}
	} else {
		path = strings.TrimPrefix(source, "path:")
	}

	snap := &Snapshot{DatasetPath: path}
	so.OnNetwork = func(info meshlab.NetworkInfo, links, probeSets int) {
		snap.Networks = append(snap.Networks, NetworkEntry{
			Name: info.Name, Band: info.Band, Env: info.Env,
			APs: len(info.APs), Links: links, ProbeSets: probeSets,
		})
	}
	start := time.Now()
	results, sum, err := meshlab.StreamFleet(path, so)
	if err != nil {
		return nil, err
	}
	snap.WarmDuration = time.Since(start)
	snap.Summary = *sum
	snap.Results = results

	// Pre-render every response on the CLIs' exact byte paths, so
	// serving is a map lookup and the golden/oracle net transfers.
	snap.byID = make(map[string]string, len(results))
	snap.ids = make([]string, 0, len(results))
	for _, r := range results {
		snap.ids = append(snap.ids, r.ID)
		snap.byID[r.ID] = r.Format() + "\n" // what `meshanalyze -exp ID` prints
	}
	var sec4 strings.Builder
	for _, id := range meshlab.SampleExperimentIDs() {
		if txt, ok := snap.byID[id]; ok {
			sec4.WriteString(txt) // what `meshanalyze -sec4` prints
		}
	}
	snap.sec4 = sec4.String()
	label := fmt.Sprintf("%s (meshd; warmed via streaming suite)", path)
	snap.report = report.Markdown(report.Preamble{Label: label, Sum: sum, ExpDuration: snap.WarmDuration}, results)
	return snap, nil
}

// lookup returns the entry for name.
func (s *Server) lookup(name string) (*dsEntry, error) {
	s.mu.RLock()
	d := s.datasets[name]
	s.mu.RUnlock()
	if d == nil {
		return nil, fmt.Errorf("%w: dataset %q", ErrNotFound, name)
	}
	return d, nil
}

// Status returns the pollable status document for name.
func (s *Server) Status(name string) (Status, error) {
	d, err := s.lookup(name)
	if err != nil {
		return Status{}, err
	}
	d.mu.Lock()
	st := Status{Name: d.name, Source: d.source, State: d.state, Refreshing: d.warming && d.state == StateReady}
	if d.warmErr != nil {
		st.Error = d.warmErr.Error()
	}
	d.mu.Unlock()
	if snap := d.snap.Load(); snap != nil && st.State == StateReady {
		st.Networks = snap.Summary.Networks
		st.ProbeSets = snap.Summary.ProbeSets
		st.Seed = snap.Summary.Meta.Seed
		st.WarmMillis = snap.WarmDuration.Milliseconds()
	}
	return st, nil
}

// Statuses lists every registered dataset's status, sorted by name.
func (s *Server) Statuses() []Status {
	s.mu.RLock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]Status, 0, len(names))
	for _, n := range names {
		if st, err := s.Status(n); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// Snapshot returns name's current published snapshot: the immutable
// state every query of that dataset reads. ErrNotReady while the first
// warm is in flight, ErrWarmFailed (wrapping the cause) after a failed
// first warm.
func (s *Server) Snapshot(name string) (*Snapshot, error) {
	d, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	if snap := d.snap.Load(); snap != nil {
		return snap, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.warmErr != nil {
		return nil, fmt.Errorf("%w: %w", ErrWarmFailed, d.warmErr)
	}
	return nil, fmt.Errorf("%w: %q is warming", ErrNotReady, name)
}

// Report returns the dataset's full markdown report — byte-identical to
// cmd/meshreport's output up to the dataset-label and wall-time
// preamble lines.
func (snap *Snapshot) Report() string { return snap.report }

// Experiment returns one experiment's rendered table: exactly what
// `meshanalyze -exp id` prints.
func (snap *Snapshot) Experiment(id string) (string, error) {
	txt, ok := snap.byID[id]
	if !ok {
		return "", fmt.Errorf("%w: experiment %q", ErrNotFound, id)
	}
	return txt, nil
}

// Sec4 returns the §4 sample-only section: exactly what
// `meshanalyze -sec4` prints for this dataset.
func (snap *Snapshot) Sec4() string { return snap.sec4 }

// Shutdown stops the server: no new registrations, queued warms are
// unblocked with ErrClosed, and in-flight warms are drained (bounded by
// ctx — an unfinished drain returns ctx.Err()). Draining in-flight HTTP
// queries is the HTTP server's job (http.Server.Shutdown); cmd/meshd
// sequences the two.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.warms.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
