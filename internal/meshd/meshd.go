// Package meshd is the long-running analysis service: it registers
// datasets (binary fleet files by path, or declarative scenarios by
// name), warms each one's derived state through the bounded streaming
// pipeline (finalized accumulators, chunked §4 tables, memoized
// censuses), and serves report, section, and figure queries over HTTP
// with list-style filtering — the serving layer the ROADMAP's "meshd"
// item describes, modeled on flightctl's API server and field-selector
// list parameters.
//
// Heavy-traffic shape:
//
//   - Concurrent read queries share immutable finalized state through
//     copy-on-write snapshots: a warm publishes one atomic pointer
//     swap, readers never take the registry lock on the data path, and
//     a re-registration builds its replacement snapshot off to the
//     side while the old one keeps serving.
//   - Cold datasets stream in via meshlab.StreamFleet in background
//     goroutines, so warming never blocks serving warm datasets;
//     registration returns 202 plus a pollable status document (the
//     e2e harness's polling discipline, over HTTP).
//   - One conc.Pool divides the process worker budget between warms
//     (heavy holders, capped below capacity) and queries (light
//     holders with a reserved floor), so one expensive request can
//     never starve the rest and total workers never exceed the budget.
//   - Graceful shutdown stops accepting registrations, unblocks queued
//     warms, and drains in-flight work; an exceeded drain budget
//     hard-cancels in-flight warms (their streams abort at the next
//     read) instead of waiting forever.
//
// Long-lived-serving hardening (see docs/MESHD.md):
//
//   - Warm failures are classified with the shard taxonomy: corrupt
//     data (wire.IsCorrupt) fails fast with the evidence intact, while
//     presumed-transient I/O retries on a fresh handle with capped
//     exponential backoff + jitter (retry.go). Retries are
//     generation-numbered, so a retry superseded by a re-registration
//     or DELETE never publishes.
//   - Data queries carry a deadline (Config.QueryTimeout) through pool
//     acquisition: a saturated pool answers 503 + Retry-After derived
//     from observed latency, never an open-ended wait.
//   - Datasets have a lifecycle (lifecycle.go): TTL and LRU eviction
//     bound how many snapshots a long-lived process retains, and
//     DELETE cancels an in-flight warm. Eviction racing a query is
//     safe by the copy-on-write contract — an in-flight query finishes
//     on the snapshot generation it resolved.
//
// Responses reuse the CLIs' exact byte paths: an experiment query
// returns what `meshanalyze -exp ID` prints, the §4 section returns
// what `meshanalyze -sec4` prints, and the report is cmd/meshreport's
// markdown (shared internal/report renderer) — so the whole golden and
// scenario oracle net pins the server's output too. See docs/MESHD.md
// for the HTTP API.
package meshd

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"meshlab"
	"meshlab/internal/conc"
	"meshlab/internal/report"
	"meshlab/internal/scenario"
	"meshlab/internal/scenario/e2e"
)

// State is a registered dataset's lifecycle phase.
type State string

const (
	// StateWarming: registered, derived state still streaming in; no
	// snapshot is served yet.
	StateWarming State = "warming"
	// StateReady: a finalized snapshot is being served.
	StateReady State = "ready"
	// StateFailed: the warm failed; Status.Error says why. A
	// re-registration retries.
	StateFailed State = "failed"
)

// Errors the HTTP layer maps to status codes; see httpError.
var (
	// ErrNotFound: no dataset (or experiment) under that name.
	ErrNotFound = errors.New("meshd: not found")
	// ErrNotReady: the dataset is still warming; poll its status.
	ErrNotReady = errors.New("meshd: dataset not ready")
	// ErrWarmFailed: the dataset's warm failed; the status carries the
	// cause.
	ErrWarmFailed = errors.New("meshd: warm failed")
	// ErrClosed: the server is shutting down.
	ErrClosed = errors.New("meshd: server is shutting down")
	// ErrBadRequest: an invalid registration or query.
	ErrBadRequest = errors.New("meshd: bad request")
	// ErrOverloaded: the query's deadline expired before a worker slot
	// freed up. The HTTP layer maps it to 503 with a Retry-After derived
	// from observed query latency.
	ErrOverloaded = errors.New("meshd: overloaded: no worker slot within the query deadline")
)

// Config tunes a Server.
type Config struct {
	// Dir is where scenario registrations synthesize their dataset
	// files (reused across registrations — the compilation is
	// deterministic, so a present file is the right file). Required
	// when scenarios are registered.
	Dir string
	// Workers caps the server's total worker slots — warms plus
	// queries (≤ 0: the process budget, conc.Budget()).
	Workers int
	// Reserved worker slots a warm may never hold, so queries keep
	// moving while cold datasets stream in (≤ 0: a quarter of the
	// capacity, at least 1).
	Reserved int
	// QueryTimeout bounds one data query end to end — the wait for a
	// worker slot plus rendering. Exceeding it answers 503 with a
	// derived Retry-After instead of waiting open-endedly on a
	// saturated pool. ≤ 0 disables the deadline.
	QueryTimeout time.Duration
	// WarmRetries is how many times a transiently-failed warm re-runs
	// on a fresh handle before the dataset is marked failed (< 0:
	// never retry; 0: the default, 3). Corrupt or otherwise permanent
	// failures never retry regardless.
	WarmRetries int
	// RetryBase is the warm-retry backoff unit: retry k sleeps in
	// [base·2ᵏ, 1.5·base·2ᵏ), capped at 64·base. ≤ 0 means 250ms.
	RetryBase time.Duration
	// MaxDatasets caps the registered-dataset count: a registration
	// pushing past it evicts the least-recently-queried ready datasets
	// first (warming datasets are never evicted). ≤ 0 means unlimited.
	MaxDatasets int
	// DatasetTTL evicts a ready dataset whose snapshot has gone
	// unqueried for this long, releasing its memory. ≤ 0 disables TTL
	// eviction.
	DatasetTTL time.Duration
	// Open opens dataset files for warming; nil means os.Open. The
	// service-level fault-injection suite hooks faultfs here.
	Open func(path string) (io.ReadSeekCloser, error)
}

// Server is the concurrent analysis service. Create with New, serve
// via Handler, stop with Shutdown.
type Server struct {
	cfg    Config
	pool   *conc.Pool
	warms  sync.WaitGroup
	base   context.Context
	cancel context.CancelFunc
	// closing is closed when Shutdown begins: queued warms abort their
	// pool waits and retrying warms abort their backoff sleeps, while
	// in-flight warm attempts keep draining until the budget expires
	// (then s.cancel hard-cancels their streams).
	closing chan struct{}

	// lastWarmMillis / lastQueryMillis are the observed-latency
	// witnesses behind derived Retry-After headers: the most recent
	// successful warm duration anywhere on the server, and an EWMA of
	// data-query latency.
	lastWarmMillis  atomic.Int64
	lastQueryMillis atomic.Int64

	mu       sync.RWMutex
	closed   bool
	datasets map[string]*dsEntry

	// synthMu guards synthLocks, the per-dataset-path mutexes that
	// serialize scenario synthesis: two concurrent warms of the same
	// scenario (registered under different names) share one synthesis —
	// the second enters Synthesize after the first's atomic rename has
	// published the file and reuses it.
	synthMu    sync.Mutex
	synthLocks map[string]*sync.Mutex
}

// dsEntry is one registered dataset: mutable status under mu, plus the
// immutable published snapshot behind an atomic pointer so the query
// path never takes a lock that a warm holds.
type dsEntry struct {
	name   string
	source string

	mu      sync.Mutex
	state   State
	warmErr error
	gen     int  // bumped per (re)registration; a stale warm may not publish
	warming bool // a warm goroutine is in flight (initial or refresh)
	// cancel aborts the in-flight warm's context (DELETE, or shutdown's
	// drain budget expiring). Nil when no warm is in flight.
	cancel context.CancelFunc
	// attempt is the in-flight (or final) warm attempt number, 1-based;
	// nextRetry is when the next attempt starts while the warm sits in
	// a backoff sleep (zero while an attempt is actively running).
	attempt   int
	nextRetry time.Time
	// lastWarmMillis is the duration of this dataset's most recent
	// successful warm — the basis of its ErrNotReady Retry-After.
	lastWarmMillis int64

	// lastUsed is the unix-nano timestamp of the last snapshot
	// resolution (the query path), driving TTL and LRU eviction.
	lastUsed atomic.Int64

	snap atomic.Pointer[Snapshot]
}

// Snapshot is a dataset's finalized derived state: everything a query
// can ask for, fully materialized and immutable. Queries resolve
// against whichever snapshot pointer they load; a refresh publishes a
// new snapshot without touching the old one (copy-on-write).
type Snapshot struct {
	// Summary is the streaming walk's dataset summary.
	Summary meshlab.StreamSummary
	// Results holds every experiment result in paper order.
	Results []*meshlab.Result
	// Networks indexes the walked network datasets for filtered list
	// queries, in file order.
	Networks []NetworkEntry
	// DatasetPath is the binary file the snapshot was streamed from.
	DatasetPath string
	// WarmDuration is how long the streaming suite took.
	WarmDuration time.Duration

	report string            // cmd/meshreport markdown, rendered once
	byID   map[string]string // experiment ID → meshanalyze -exp bytes
	ids    []string          // experiment IDs in paper order
	sec4   string            // meshanalyze -sec4 bytes
	etag   string            // cache validator: source identity + warm generation
}

// NetworkEntry is one network dataset in a snapshot's queryable index.
type NetworkEntry struct {
	Name      string `json:"name"`
	Band      string `json:"band"`
	Env       string `json:"env"`
	APs       int    `json:"aps"`
	Links     int    `json:"links"`
	ProbeSets int    `json:"probeSets"`
}

// Status is the pollable registration document.
type Status struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	State  State  `json:"state"`
	// Refreshing reports a re-registration warming a replacement
	// snapshot while the current one keeps serving.
	Refreshing bool `json:"refreshing,omitempty"`
	// Error carries the warm failure when State is failed, or the most
	// recent attempt's transient failure while the warm is retrying.
	Error string `json:"error,omitempty"`
	// Attempt is the warm attempt number (1-based) once a warm has
	// started; Retrying reports an in-flight warm that has already
	// failed at least once and will retry; NextRetry (RFC 3339, UTC) is
	// when the next attempt starts while the warm sleeps in backoff.
	Attempt   int    `json:"attempt,omitempty"`
	Retrying  bool   `json:"retrying,omitempty"`
	NextRetry string `json:"nextRetry,omitempty"`
	// Dataset facts, meaningful once State is ready. Always serialized
	// (no omitempty): a ready dataset with a legitimate zero value —
	// seed 0, an empty fleet — must be distinguishable from "fact not
	// yet available", and State already says which one a client holds.
	Networks   int    `json:"networks"`
	ProbeSets  int    `json:"probeSets"`
	Seed       uint64 `json:"seed"`
	WarmMillis int64  `json:"warmMillis"`
}

// New returns a Server ready to register datasets. A positive
// Config.DatasetTTL starts the eviction janitor (stopped by Shutdown).
func New(cfg Config) *Server {
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		pool:       conc.NewPool(cfg.Workers, cfg.Reserved),
		base:       base,
		cancel:     cancel,
		closing:    make(chan struct{}),
		datasets:   make(map[string]*dsEntry),
		synthLocks: make(map[string]*sync.Mutex),
	}
	if cfg.DatasetTTL > 0 {
		go s.janitor()
	}
	return s
}

// synthLock returns the mutex serializing synthesis of the dataset file
// at path. Locks are never removed: the map is bounded by the set of
// distinct scenario paths ever registered.
func (s *Server) synthLock(path string) *sync.Mutex {
	s.synthMu.Lock()
	defer s.synthMu.Unlock()
	m := s.synthLocks[path]
	if m == nil {
		m = &sync.Mutex{}
		s.synthLocks[path] = m
	}
	return m
}

// PoolStats exposes the worker pool's capacity and in-flight high-water
// mark: the budget-enforcement witness the concurrency tests assert.
func (s *Server) PoolStats() (capacity, high int) {
	return s.pool.Capacity(), s.pool.High()
}

// validName matches the scenario-name discipline: lowercase letters,
// digits, dashes, dots (so a name can mirror a file stem).
func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, r := range name {
		ok := r == '-' || r == '.' || (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z')
		if !ok {
			return false
		}
	}
	return strings.Trim(name, ".-") != "" // no all-punctuation names
}

// RegisterPath registers (or refreshes) name backed by a binary fleet
// file and starts warming it in the background. Returns immediately;
// poll Status until ready.
func (s *Server) RegisterPath(name, path string) error {
	if path == "" {
		return fmt.Errorf("%w: empty dataset path", ErrBadRequest)
	}
	return s.register(name, "path:"+path)
}

// RegisterScenario registers (or refreshes) a declarative scenario — a
// built-in name or a spec-file path — synthesizing its dataset into
// Config.Dir if it is not already there, then warming it. name may be
// empty to use the scenario's own name.
func (s *Server) RegisterScenario(name, scen string) (string, error) {
	sp, err := scenario.Resolve(scen)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if name == "" {
		name = sp.Name
	}
	if s.cfg.Dir == "" {
		return "", fmt.Errorf("%w: this server has no dataset directory for scenario synthesis", ErrBadRequest)
	}
	return name, s.register(name, "scenario:"+scen)
}

// register installs (or refreshes) the entry and launches the warm
// goroutine. A registration racing an in-flight warm of the same name
// is rejected rather than queued — callers poll to ready first.
func (s *Server) register(name, source string) error {
	if !validName(name) {
		return fmt.Errorf("%w: invalid dataset name %q (lowercase letters, digits, dashes, dots)", ErrBadRequest, name)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	d := s.datasets[name]
	if d == nil {
		d = &dsEntry{name: name, state: StateWarming}
		s.datasets[name] = d
	}
	d.mu.Lock()
	if d.warming {
		d.mu.Unlock()
		s.mu.Unlock()
		return fmt.Errorf("%w: dataset %q is already warming; poll its status", ErrBadRequest, name)
	}
	d.source = source
	d.warming = true
	d.warmErr = nil
	d.attempt = 0
	d.nextRetry = time.Time{}
	d.gen++
	if d.snap.Load() == nil {
		d.state = StateWarming
	}
	gen := d.gen
	ctx, cancel := context.WithCancel(s.base)
	d.cancel = cancel
	d.lastUsed.Store(time.Now().UnixNano())
	d.mu.Unlock()
	s.warms.Add(1)
	s.mu.Unlock()
	s.enforceMaxDatasets(d)
	go s.warm(ctx, cancel, d, source, gen)
	return nil
}

// buildSnapshot resolves the source to a binary dataset file, streams
// the full suite over it, and materializes every query answer once —
// the report markdown, the per-experiment texts, the §4 section, and
// the network index — so the query path is pure immutable reads. ctx is
// the warm's context: it cancels the pool wait, and every read of the
// dataset file, so DELETE and an expired shutdown drain abort the
// stream instead of waiting it out.
func (s *Server) buildSnapshot(ctx context.Context, source string, gen int) (*Snapshot, error) {
	// The pool wait additionally aborts when shutdown begins: a queued
	// warm should unblock immediately, while already-streaming warms
	// keep draining under the shutdown budget.
	acqCtx, stopAcq := s.closingAware(ctx)
	grant, err := s.pool.Heavy(acqCtx, 0)
	stopAcq()
	if err != nil {
		if ctx.Err() == nil && s.isClosing() {
			return nil, fmt.Errorf("%w: %v", ErrClosed, err)
		}
		return nil, err
	}
	defer s.pool.ReleaseHeavy(grant)

	path := source
	ident := source
	so := meshlab.StreamOptions{Workers: grant, Open: s.warmOpen(ctx)}
	if scen, ok := strings.CutPrefix(source, "scenario:"); ok {
		sp, err := scenario.Resolve(scen)
		if err != nil {
			return nil, err
		}
		ident = "spec:" + sp.SHA256
		// The e2e harness owns the synthesize-once discipline (its atomic
		// save makes a present file a complete file); the per-path lock
		// makes concurrent warms of one scenario share a single
		// synthesis instead of racing to generate the same bytes. The
		// streamed walk below still validates the file when the scenario
		// is cache-validatable.
		h := e2e.New(s.cfg.Dir)
		h.Workers = grant
		lock := s.synthLock(h.DatasetPath(sp))
		lock.Lock()
		path, err = h.Synthesize(sp)
		lock.Unlock()
		if err != nil {
			return nil, err
		}
		opts := sp.Options()
		if opts.CacheValidatable() {
			so.Validate = &opts
		}
	} else {
		path = strings.TrimPrefix(source, "path:")
	}

	snap := &Snapshot{DatasetPath: path}
	so.OnNetwork = func(info meshlab.NetworkInfo, links, probeSets int) {
		snap.Networks = append(snap.Networks, NetworkEntry{
			Name: info.Name, Band: info.Band, Env: info.Env,
			APs: len(info.APs), Links: links, ProbeSets: probeSets,
		})
	}
	start := time.Now()
	results, sum, err := meshlab.StreamFleet(path, so)
	if err != nil {
		return nil, err
	}
	snap.WarmDuration = time.Since(start)
	snap.Summary = *sum
	snap.Results = results

	// Pre-render every response on the CLIs' exact byte paths, so
	// serving is a map lookup and the golden/oracle net transfers.
	snap.byID = make(map[string]string, len(results))
	snap.ids = make([]string, 0, len(results))
	for _, r := range results {
		snap.ids = append(snap.ids, r.ID)
		snap.byID[r.ID] = r.Format() + "\n" // what `meshanalyze -exp ID` prints
	}
	var sec4 strings.Builder
	for _, id := range meshlab.SampleExperimentIDs() {
		if txt, ok := snap.byID[id]; ok {
			sec4.WriteString(txt) // what `meshanalyze -sec4` prints
		}
	}
	snap.sec4 = sec4.String()
	label := fmt.Sprintf("%s (meshd; warmed via streaming suite)", path)
	snap.report = report.Markdown(report.Preamble{Label: label, Sum: sum, ExpDuration: snap.WarmDuration}, results)
	snap.etag = etagFor(ident, gen)
	return snap, nil
}

// etagFor derives a snapshot's entity tag from its source identity —
// the scenario spec's sha256, or the registered dataset path — plus the
// registration generation that built it, so a refresh of the same name
// invalidates cached responses while a byte-identical re-serve stays a
// 304. The tag is strong: snapshots are immutable, and every response
// byte is pre-rendered at warm time.
func etagFor(ident string, gen int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#g%d", ident, gen)))
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// ETag returns the snapshot's entity tag: the cache validator served
// (and honored via If-None-Match) on the report, §4, and experiment
// endpoints.
func (snap *Snapshot) ETag() string { return snap.etag }

// lookup returns the entry for name.
func (s *Server) lookup(name string) (*dsEntry, error) {
	s.mu.RLock()
	d := s.datasets[name]
	s.mu.RUnlock()
	if d == nil {
		return nil, fmt.Errorf("%w: dataset %q", ErrNotFound, name)
	}
	return d, nil
}

// Status returns the pollable status document for name.
func (s *Server) Status(name string) (Status, error) {
	d, err := s.lookup(name)
	if err != nil {
		return Status{}, err
	}
	d.mu.Lock()
	st := Status{
		Name: d.name, Source: d.source, State: d.state,
		Refreshing: d.warming && d.state == StateReady,
		Attempt:    d.attempt,
		Retrying:   d.warming && d.warmErr != nil,
	}
	if d.warmErr != nil {
		st.Error = d.warmErr.Error()
	}
	if d.warming && !d.nextRetry.IsZero() {
		st.NextRetry = d.nextRetry.UTC().Format(time.RFC3339Nano)
	}
	d.mu.Unlock()
	if snap := d.snap.Load(); snap != nil && st.State == StateReady {
		st.Networks = snap.Summary.Networks
		st.ProbeSets = snap.Summary.ProbeSets
		st.Seed = snap.Summary.Meta.Seed
		st.WarmMillis = snap.WarmDuration.Milliseconds()
	}
	return st, nil
}

// Statuses lists every registered dataset's status, sorted by name.
func (s *Server) Statuses() []Status {
	s.mu.RLock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]Status, 0, len(names))
	for _, n := range names {
		if st, err := s.Status(n); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// Snapshot returns name's current published snapshot: the immutable
// state every query of that dataset reads. ErrNotReady while the first
// warm is in flight, ErrWarmFailed (wrapping the cause) after a failed
// first warm.
func (s *Server) Snapshot(name string) (*Snapshot, error) {
	d, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	d.lastUsed.Store(time.Now().UnixNano())
	if snap := d.snap.Load(); snap != nil {
		return snap, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// warmErr only means failed once the warm goroutine has given up; a
	// retrying warm keeps its latest transient error visible in Status
	// while the dataset stays not-ready.
	if d.warmErr != nil && !d.warming {
		return nil, fmt.Errorf("%w: %w", ErrWarmFailed, d.warmErr)
	}
	return nil, fmt.Errorf("%w: %q is warming", ErrNotReady, name)
}

// Report returns the dataset's full markdown report — byte-identical to
// cmd/meshreport's output up to the dataset-label and wall-time
// preamble lines.
func (snap *Snapshot) Report() string { return snap.report }

// Experiment returns one experiment's rendered table: exactly what
// `meshanalyze -exp id` prints.
func (snap *Snapshot) Experiment(id string) (string, error) {
	txt, ok := snap.byID[id]
	if !ok {
		return "", fmt.Errorf("%w: experiment %q", ErrNotFound, id)
	}
	return txt, nil
}

// Sec4 returns the §4 sample-only section: exactly what
// `meshanalyze -sec4` prints for this dataset.
func (snap *Snapshot) Sec4() string { return snap.sec4 }

// Shutdown stops the server: no new registrations, queued warms are
// unblocked, retrying warms abort their backoff sleeps, and in-flight
// warm attempts are drained — bounded by ctx. When the drain budget
// expires, in-flight warms are hard-canceled (their dataset streams
// abort at the next read) and Shutdown returns ctx.Err(). Draining
// in-flight HTTP queries is the HTTP server's job
// (http.Server.Shutdown); cmd/meshd sequences the two.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.closing)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.warms.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		return nil
	case <-ctx.Done():
		// Drain budget exceeded: cancel every warm's context so their
		// streams abort, and report the unfinished drain.
		s.cancel()
		return ctx.Err()
	}
}

// isClosing reports whether Shutdown has begun.
func (s *Server) isClosing() bool {
	select {
	case <-s.closing:
		return true
	default:
		return false
	}
}

// closingAware derives a context that additionally cancels when
// Shutdown begins — the pool-wait context for queued warms, which must
// unblock immediately at shutdown while in-flight streams keep
// draining. The returned stop releases the watcher goroutine.
func (s *Server) closingAware(ctx context.Context) (context.Context, context.CancelFunc) {
	c, cancel := context.WithCancel(ctx)
	go func() {
		select {
		case <-s.closing:
			cancel()
		case <-c.Done():
		}
	}()
	return c, cancel
}
