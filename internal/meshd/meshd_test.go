package meshd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"meshlab"
	"meshlab/internal/report"
)

// tinySpecJSON is a 4-network scenario small enough to synthesize and
// stream in well under a second, with a short client snapshot so the
// client-path experiments stay exercised.
const tinySpecJSON = `{
  "version": 1,
  "name": "meshd-tiny",
  "seed": 11,
  "fleet": {
    "networks": 4,
    "env_mix": {"indoor": 2, "outdoor": 1, "mixed": 1},
    "band_mix": {"bg": 3, "n": 1},
    "size": {"min": 3, "max": 8, "log_mean": 1.2, "log_std": 0.4}
  },
  "probe": {"duration_s": 1800, "interval_s": 300},
  "clients": {"duration_s": 600}
}`

// writeTinySpec drops the tiny spec into dir and returns its path.
func writeTinySpec(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "meshd-tiny.json")
	if err := os.WriteFile(path, []byte(tinySpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// waitReady polls the status until the dataset is ready (the HTTP
// clients' polling discipline, inlined).
func waitReady(t *testing.T, s *Server, name string) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		snap, err := s.Snapshot(name)
		if err == nil {
			return snap
		}
		if !errors.Is(err, ErrNotReady) {
			t.Fatalf("Snapshot(%s): %v", name, err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("dataset %s never became ready", name)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// newWarmServer builds a server, registers the tiny scenario under
// name, and waits for it to warm.
func newWarmServer(t *testing.T, name string) (*Server, *Snapshot) {
	t.Helper()
	dir := t.TempDir()
	spec := writeTinySpec(t, dir)
	s := New(Config{Dir: dir})
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	got, err := s.RegisterScenario(name, spec)
	if err != nil {
		t.Fatalf("RegisterScenario: %v", err)
	}
	if name == "" {
		name = "meshd-tiny"
	}
	if got != name {
		t.Fatalf("RegisterScenario returned name %q, want %q", got, name)
	}
	return s, waitReady(t, s, name)
}

// TestMeshdOracleByteIdentity is the oracle: every byte the server
// serves must equal the CLIs' output for the same dataset —
// Experiment(id) is `meshanalyze -exp id`, Sec4 is `meshanalyze -sec4`,
// and Report is `meshreport` up to the run-specific preamble lines.
func TestMeshdOracleByteIdentity(t *testing.T) {
	s, snap := newWarmServer(t, "")
	defer s.Shutdown(context.Background())

	// Independent reference run over the same dataset file.
	results, sum, err := meshlab.StreamFleet(snap.DatasetPath, meshlab.StreamOptions{})
	if err != nil {
		t.Fatalf("reference StreamFleet: %v", err)
	}
	if len(results) == 0 || len(results) != len(snap.Results) {
		t.Fatalf("got %d results, reference has %d", len(snap.Results), len(results))
	}
	for _, r := range results {
		want := r.Format() + "\n" // the `meshanalyze -exp` byte path
		got, err := snap.Experiment(r.ID)
		if err != nil {
			t.Fatalf("Experiment(%s): %v", r.ID, err)
		}
		if got != want {
			t.Errorf("Experiment(%s) diverges from meshanalyze output:\ngot:\n%s\nwant:\n%s", r.ID, got, want)
		}
	}
	if _, err := snap.Experiment("no-such"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Experiment(no-such) = %v, want ErrNotFound", err)
	}

	// §4 section: what `meshanalyze -sec4` prints.
	sample, err := meshlab.StreamSampleExperiments(snap.DatasetPath, meshlab.SampleExperimentIDs(), 0)
	if err != nil {
		t.Fatalf("reference StreamSampleExperiments: %v", err)
	}
	var sec4 strings.Builder
	for _, r := range sample {
		sec4.WriteString(r.Format() + "\n")
	}
	if snap.Sec4() != sec4.String() {
		t.Errorf("Sec4 diverges from meshanalyze -sec4 output:\ngot:\n%s\nwant:\n%s", snap.Sec4(), sec4.String())
	}

	// Report: cmd/meshreport's markdown up to the dataset-label and
	// wall-time preamble lines (the same lines guardrail.yml strips).
	want := report.Markdown(report.Preamble{Label: "ref", Sum: sum, ExpDuration: time.Second}, results)
	if got, want := stripRunLines(snap.Report()), stripRunLines(want); got != want {
		t.Errorf("Report diverges from meshreport output (modulo run lines):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// stripRunLines removes the two run-specific preamble lines, mirroring
// the guardrail workflow's grep -v filters.
func stripRunLines(md string) string {
	var out []string
	for _, line := range strings.Split(md, "\n") {
		if strings.Contains(line, "dataset:") || strings.Contains(line, "wall time") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestMeshdRegistrationRules pins the registration contract: name
// validation, source validation, the no-concurrent-warm rule, and
// rejection after shutdown.
func TestMeshdRegistrationRules(t *testing.T) {
	dir := t.TempDir()
	spec := writeTinySpec(t, dir)
	s := New(Config{Dir: dir})

	if err := s.RegisterPath("Bad Name", "x.bin"); !errors.Is(err, ErrBadRequest) {
		t.Errorf("invalid name: got %v, want ErrBadRequest", err)
	}
	if err := s.RegisterPath("ok", ""); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty path: got %v, want ErrBadRequest", err)
	}
	if _, err := s.RegisterScenario("ok", "no-such-builtin"); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown scenario: got %v, want ErrBadRequest", err)
	}
	noDir := New(Config{})
	if _, err := noDir.RegisterScenario("", spec); !errors.Is(err, ErrBadRequest) {
		t.Errorf("scenario without Dir: got %v, want ErrBadRequest", err)
	}
	noDir.Shutdown(context.Background())

	// A dataset whose warm is in flight rejects re-registration.
	if _, err := s.RegisterScenario("tiny", spec); err != nil {
		t.Fatalf("RegisterScenario: %v", err)
	}
	if err := s.RegisterPath("tiny", "other.bin"); err == nil || !errors.Is(err, ErrBadRequest) {
		t.Errorf("re-register while warming: got %v, want ErrBadRequest", err)
	}
	waitReady(t, s, "tiny")

	// A failed warm surfaces as StateFailed + ErrWarmFailed, and a
	// re-registration retries it.
	if err := s.RegisterPath("broken", filepath.Join(dir, "missing.bin")); err != nil {
		t.Fatalf("RegisterPath: %v", err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := s.Status("broken")
		if err != nil {
			t.Fatalf("Status(broken): %v", err)
		}
		if st.State == StateFailed {
			if st.Error == "" {
				t.Error("failed status carries no error text")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("broken dataset never reached failed state")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Snapshot("broken"); !errors.Is(err, ErrWarmFailed) {
		t.Errorf("Snapshot(broken): got %v, want ErrWarmFailed", err)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := s.RegisterPath("late", "x.bin"); !errors.Is(err, ErrClosed) {
		t.Errorf("register after shutdown: got %v, want ErrClosed", err)
	}
}

// TestMeshdHTTPSurface drives the whole API over a real listener:
// registration returns 202 + Location, polling converges, every data
// endpoint serves, selectors filter, and the error taxonomy maps to
// the right status codes.
func TestMeshdHTTPSurface(t *testing.T) {
	dir := t.TempDir()
	spec := writeTinySpec(t, dir)
	s := New(Config{Dir: dir})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}

	// Register by scenario spec path; expect 202 + a pollable Location.
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name":"tiny","scenario":%q}`, spec)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("register: status %d, want 202", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if loc != "/v1/datasets/tiny" {
		t.Fatalf("register Location = %q", loc)
	}

	// A data query against a warming dataset is 503 with Retry-After —
	// unless the warm already finished; both are legal here.
	if code, _ := get("/v1/datasets/tiny/report"); code != http.StatusServiceUnavailable && code != http.StatusOK {
		t.Errorf("warming report query: status %d, want 503 or 200", code)
	}

	// Poll the Location to ready.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, body := get(loc)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", loc, code, body)
		}
		var st Status
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("poll: bad status doc: %v", err)
		}
		if st.State == StateReady {
			if st.Networks != 4 || st.Seed != 11 {
				t.Fatalf("ready status = %+v, want 4 networks, seed 11", st)
			}
			break
		}
		if st.State == StateFailed {
			t.Fatalf("warm failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("dataset never became ready over HTTP")
		}
		time.Sleep(5 * time.Millisecond)
	}

	snap, err := s.Snapshot("tiny")
	if err != nil {
		t.Fatal(err)
	}

	// The data endpoints serve the snapshot's exact bytes.
	if code, body := get("/v1/datasets/tiny/report"); code != http.StatusOK || body != snap.Report() {
		t.Errorf("report endpoint: status %d, bytes match: %t", code, body == snap.Report())
	}
	if code, body := get("/v1/datasets/tiny/sec4"); code != http.StatusOK || body != snap.Sec4() {
		t.Errorf("sec4 endpoint: status %d, bytes match: %t", code, body == snap.Sec4())
	}
	expID := snap.Results[0].ID
	wantExp, _ := snap.Experiment(expID)
	if code, body := get("/v1/datasets/tiny/experiments/" + expID); code != http.StatusOK || body != wantExp {
		t.Errorf("experiment endpoint: status %d, bytes match: %t", code, body == wantExp)
	}

	// List + selector filtering.
	var exps []experimentEntry
	if code, body := get("/v1/datasets/tiny/experiments?selector=section=4"); code != http.StatusOK {
		t.Errorf("experiment list: status %d", code)
	} else if err := json.Unmarshal([]byte(body), &exps); err != nil {
		t.Errorf("experiment list: %v", err)
	} else {
		if len(exps) == 0 {
			t.Error("section=4 selector matched nothing")
		}
		for _, e := range exps {
			if e.Section != "4" {
				t.Errorf("section=4 selector let through %q", e.ID)
			}
		}
	}
	// Boolean selector values accept every strconv.ParseBool spelling
	// ("1" means true) and reject anything else loudly, matching the
	// fail-loudly rule for field names.
	if code, body := get("/v1/datasets/tiny/experiments?selector=sampleOnly=1"); code != http.StatusOK {
		t.Errorf("sampleOnly=1: status %d", code)
	} else {
		exps = nil
		if err := json.Unmarshal([]byte(body), &exps); err != nil {
			t.Errorf("sampleOnly=1 list: %v", err)
		}
		if len(exps) == 0 {
			t.Error("sampleOnly=1 selector matched nothing")
		}
		for _, e := range exps {
			if !e.SampleOnly {
				t.Errorf("sampleOnly=1 selector let through %q", e.ID)
			}
		}
	}
	if code, _ := get("/v1/datasets/tiny/experiments?selector=sampleOnly=yes"); code != http.StatusBadRequest {
		t.Errorf("sampleOnly=yes: status %d, want 400", code)
	}

	var nets []NetworkEntry
	if code, body := get("/v1/datasets/tiny/networks?selector=band=bg"); code != http.StatusOK {
		t.Errorf("network list: status %d", code)
	} else if err := json.Unmarshal([]byte(body), &nets); err != nil {
		t.Errorf("network list: %v", err)
	} else {
		if len(nets) == 0 {
			t.Error("band=bg selector matched nothing")
		}
		for _, n := range nets {
			if n.Band != "bg" {
				t.Errorf("band=bg selector let through %q (band %s)", n.Name, n.Band)
			}
		}
	}
	if code, body := get("/v1/datasets/tiny/networks?minAPs=0&maxAPs=1000"); code != http.StatusOK {
		t.Errorf("network range query: status %d", code)
	} else {
		nets = nil
		if err := json.Unmarshal([]byte(body), &nets); err != nil || len(nets) != 4 {
			t.Errorf("full-range network list: err %v, %d entries, want 4", err, len(nets))
		}
	}

	// The dataset list resource, filterable by state.
	var sts []Status
	if code, body := get("/v1/datasets?selector=state=ready"); code != http.StatusOK {
		t.Errorf("dataset list: status %d", code)
	} else if err := json.Unmarshal([]byte(body), &sts); err != nil || len(sts) != 1 || sts[0].Name != "tiny" {
		t.Errorf("dataset list = %v (err %v), want [tiny]", sts, err)
	}

	// Error taxonomy over HTTP.
	if code, _ := get("/v1/datasets/ghost/report"); code != http.StatusNotFound {
		t.Errorf("unknown dataset: status %d, want 404", code)
	}
	if code, _ := get("/v1/datasets/tiny/experiments/no-such"); code != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d, want 404", code)
	}
	if code, body := get("/v1/datasets/tiny/networks?selector=bandwidth=9"); code != http.StatusBadRequest {
		t.Errorf("unknown selector field: status %d (%s), want 400", code, body)
	}
	if code, _ := get("/v1/datasets/tiny/experiments?selector=garbage"); code != http.StatusBadRequest {
		t.Errorf("malformed selector term: status %d, want 400", code)
	}
	resp, err = http.Post(ts.URL+"/v1/datasets", "application/json",
		strings.NewReader(`{"name":"x","path":"a.bin","scenario":"quick"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("path+scenario registration: status %d, want 400", resp.StatusCode)
	}
}

// TestMeshdRefreshKeepsServing pins the copy-on-write contract: while a
// re-registration warms a replacement snapshot, the old snapshot keeps
// serving, and the refresh publishes a new pointer without mutating the
// old one.
func TestMeshdRefreshKeepsServing(t *testing.T) {
	s, snap := newWarmServer(t, "tiny")
	defer s.Shutdown(context.Background())
	oldReport := snap.Report()

	// Re-register the same source; the dataset stays ready throughout.
	dir := s.cfg.Dir
	if err := s.RegisterPath("tiny", filepath.Join(dir, "meshd-tiny.bin")); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	for {
		st, err := s.Status("tiny")
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateReady {
			t.Fatalf("dataset left ready state during refresh: %v", st.State)
		}
		cur, err := s.Snapshot("tiny")
		if err != nil {
			t.Fatalf("Snapshot during refresh: %v", err)
		}
		if cur.Report() == "" {
			t.Fatal("empty report during refresh")
		}
		if !st.Refreshing {
			if snap.Report() != oldReport {
				t.Error("refresh mutated the old snapshot")
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStatusJSONKeepsZeroFacts: the dataset-fact fields carry no
// omitempty, so a ready dataset with legitimate zeros (seed 0, an
// empty fleet) serializes them explicitly instead of becoming
// indistinguishable from "fact not yet available".
func TestStatusJSONKeepsZeroFacts(t *testing.T) {
	b, err := json.Marshal(Status{Name: "z", Source: "path:z.bin", State: StateReady})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"networks":0`, `"probeSets":0`, `"seed":0`, `"warmMillis":0`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("ready status JSON omits %s: %s", key, b)
		}
	}
}
