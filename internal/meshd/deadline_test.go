// deadline_test.go pins the per-query deadline and the cache/Retry-After
// surface: a saturated pool answers 503 within the budget with a derived
// Retry-After and leaks no pool slot, not-ready 503s advise retrying
// after the observed warm time, and the pre-rendered text endpoints
// revalidate with strong ETags.

package meshd

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestMeshdQueryDeadline503NoLeak saturates every worker slot, issues a
// query under a short deadline, and demands: 503 within the budget, a
// numeric Retry-After, zero leaked slots afterwards (InFlight returns
// to 0), and a working pool on the very next query.
func TestMeshdQueryDeadline503NoLeak(t *testing.T) {
	dir := t.TempDir()
	spec := writeTinySpec(t, dir)
	s := New(Config{Dir: dir, Workers: 4, QueryTimeout: 75 * time.Millisecond})
	defer s.Shutdown(context.Background())
	if _, err := s.RegisterScenario("tiny", spec); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "tiny")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Hold every slot so the query's pool wait can only time out.
	capacity := s.pool.Capacity()
	for i := 0; i < capacity; i++ {
		if err := s.pool.Light(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/datasets/tiny/report")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated pool answered %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Fatalf("503 body does not say overloaded: %s", body)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("503 took %v, far beyond the 75ms deadline", took)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("overload Retry-After %q, want an integer ≥ 1", resp.Header.Get("Retry-After"))
	}

	// No slot may leak on the timed-out wait.
	for i := 0; i < capacity; i++ {
		s.pool.ReleaseLight()
	}
	if n := s.pool.InFlight(); n != 0 {
		t.Fatalf("%d pool slots leaked after the timeout", n)
	}
	if capHW, high := s.PoolStats(); high > capHW {
		t.Fatalf("high-water %d exceeded capacity %d", high, capHW)
	}
	resp, err = http.Get(ts.URL + "/v1/datasets/tiny/report")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pool unusable after timeout: %d", resp.StatusCode)
	}
	if n := s.pool.InFlight(); n != 0 {
		t.Fatalf("%d pool slots leaked after a served query", n)
	}
}

// TestCeilSeconds pins the Retry-After arithmetic: whole seconds,
// rounded up, floor 1.
func TestCeilSeconds(t *testing.T) {
	cases := map[int64]string{0: "1", 1: "1", 999: "1", 1000: "1", 1001: "2", 2500: "3", 60000: "60"}
	for ms, want := range cases {
		if got := ceilSeconds(ms); got != want {
			t.Errorf("ceilSeconds(%d) = %s, want %s", ms, got, want)
		}
	}
}

// TestMeshdRetryAfterDerivation: a not-ready 503 advises retrying after
// the dataset's own measured warm time when it has one, falling back to
// the most recent warm anywhere on the server — never the bare "1"
// unless there is no evidence at all.
func TestMeshdRetryAfterDerivation(t *testing.T) {
	dir, path := synthTiny(t)
	started := make(chan struct{})
	release := make(chan struct{})
	s := New(Config{Dir: dir, Open: gatedOpen(started, release)})
	defer s.Shutdown(context.Background())
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.RegisterPath("stuck", path); err != nil {
		t.Fatal(err)
	}
	<-started // warming forever: every data query is a not-ready 503

	get := func() *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/datasets/stuck/report")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("warming dataset answered %d", resp.StatusCode)
		}
		return resp
	}

	// No warm has ever finished: the floor.
	if ra := get().Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("no-evidence Retry-After = %q, want 1", ra)
	}
	// Server-wide evidence: some other dataset warmed in 2.5s.
	s.lastWarmMillis.Store(2500)
	if ra := get().Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("server-evidence Retry-After = %q, want 3", ra)
	}
	// The dataset's own history wins over the server-wide figure.
	d, err := s.lookup("stuck")
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	d.lastWarmMillis = 7100
	d.mu.Unlock()
	if ra := get().Header.Get("Retry-After"); ra != "8" {
		t.Fatalf("dataset-evidence Retry-After = %q, want 8", ra)
	}
}

// TestMeshdETagRevalidation: report, §4, and experiment responses carry
// the snapshot's strong ETag; If-None-Match answers 304 with no body;
// a refresh (new generation) changes the tag.
func TestMeshdETagRevalidation(t *testing.T) {
	dir := t.TempDir()
	spec := writeTinySpec(t, dir)
	s := New(Config{Dir: dir})
	defer s.Shutdown(context.Background())
	if _, err := s.RegisterScenario("tiny", spec); err != nil {
		t.Fatal(err)
	}
	snap := waitReady(t, s, "tiny")
	etag := snap.ETag()
	if len(etag) < 4 || !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("malformed ETag %q", etag)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(ep, inm string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/datasets/tiny"+ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	for _, ep := range []string{"/report", "/sec4", "/experiments/" + snap.ids[0]} {
		resp := get(ep, "")
		if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != etag {
			t.Fatalf("%s: status %d etag %q, want 200 %q", ep, resp.StatusCode, resp.Header.Get("ETag"), etag)
		}
		io.Copy(io.Discard, resp.Body)
		for _, inm := range []string{etag, "*", "W/" + etag, `"zzz", ` + etag} {
			resp := get(ep, inm)
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
				t.Fatalf("%s If-None-Match %q: status %d body %q, want empty 304", ep, inm, resp.StatusCode, body)
			}
		}
		if resp := get(ep, `"bogus"`); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s with a stale tag: %d, want 200", ep, resp.StatusCode)
		}
	}

	// The selector-driven list endpoints are not ETagged.
	if resp := get("/experiments", ""); resp.Header.Get("ETag") != "" {
		t.Fatal("list endpoint grew an ETag")
	}

	// A refresh publishes a new generation: the tag must change and the
	// old tag must stop matching.
	if _, err := s.RegisterScenario("tiny", spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		cur, err := s.Snapshot("tiny")
		if err == nil && cur.ETag() != etag {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("refresh never published a new ETag")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resp := get("/report", etag); resp.StatusCode != http.StatusOK {
		t.Fatalf("old tag after refresh: %d, want 200", resp.StatusCode)
	}
}

// TestEtagMatch pins the If-None-Match comparison.
func TestEtagMatch(t *testing.T) {
	const tag = `"abc"`
	for header, want := range map[string]bool{
		tag: true, "*": true, "W/" + tag: true,
		`"x", ` + tag: true, `"x","y"`: false, `"ab"`: false, "": false,
	} {
		if got := etagMatch(header, tag); got != want {
			t.Errorf("etagMatch(%q) = %t, want %t", header, got, want)
		}
	}
}
