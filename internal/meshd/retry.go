// retry.go is the warm-retry policy: the failure-classification
// taxonomy the batch pipeline already trusts (wire.IsCorrupt for data
// corruption, everything-else-is-presumed-transient from
// internal/shard), pointed at the serving layer. A transiently-failed
// warm re-runs on a fresh file handle with capped exponential backoff
// plus deterministic jitter; corrupt datasets fail fast with the
// evidence intact; a warm superseded by a newer registration generation
// (or removed by DELETE) never publishes and never retries. Status
// surfaces the attempt number and next-retry time, and /healthz
// degrades to a warning while any dataset is retrying.

package meshd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"time"

	"meshlab"
	"meshlab/internal/wire"
)

// permanentWarmError reports whether a warm failure can never be fixed
// by retrying: corrupt bytes, a dataset that fails cache validation
// against its scenario, a non-streamable or missing file, a bad
// registration, or a canceled context. Everything else — EIO from flaky
// storage, a mid-read disconnect — is presumed transient, exactly the
// shard runner's policy.
func permanentWarmError(err error) bool {
	return wire.IsCorrupt(err) ||
		errors.Is(err, meshlab.ErrCacheMismatch) ||
		errors.Is(err, meshlab.ErrNotStreamable) ||
		errors.Is(err, fs.ErrNotExist) ||
		errors.Is(err, ErrBadRequest) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// warmRetries resolves Config.WarmRetries: < 0 never retries, 0 takes
// the default of 3.
func (s *Server) warmRetries() int {
	if s.cfg.WarmRetries < 0 {
		return 0
	}
	if s.cfg.WarmRetries == 0 {
		return 3
	}
	return s.cfg.WarmRetries
}

func (s *Server) retryBase() time.Duration {
	if s.cfg.RetryBase > 0 {
		return s.cfg.RetryBase
	}
	return 250 * time.Millisecond
}

// warmBackoff returns retry k's sleep: capped exponential with jitter
// from the warm's own rng — the shard workers' schedule, reused so
// concurrent retrying warms desynchronize deterministically.
func warmBackoff(base time.Duration, k int, rng *rand.Rand) time.Duration {
	d := base << uint(k)
	if max := base << 6; d > max || d <= 0 {
		d = max
	}
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// warm drives one registration generation to ready or failed: build the
// snapshot, publish on success, retry transient failures with backoff,
// fail fast on permanent ones. Every state transition is generation-
// checked, so a warm superseded by a re-registration (or detached by
// DELETE) publishes nothing.
func (s *Server) warm(ctx context.Context, cancel context.CancelFunc, d *dsEntry, source string, gen int) {
	defer s.warms.Done()
	defer cancel()
	rng := rand.New(rand.NewSource(int64(gen)*0x9E3779B9 + int64(len(d.name))))
	retries := s.warmRetries()
	for attempt := 1; ; attempt++ {
		if !d.beginAttempt(gen, attempt) {
			return // superseded
		}
		start := time.Now()
		snap, err := s.buildSnapshot(ctx, source, gen)
		if err == nil {
			took := time.Since(start)
			s.lastWarmMillis.Store(max64(took.Milliseconds(), 1))
			d.publish(gen, snap, took)
			return
		}
		if ctx.Err() != nil {
			// DELETE or the shutdown drain budget canceled this warm; the
			// context error, not the read error it surfaced as, is the cause.
			d.fail(gen, fmt.Errorf("warm canceled: %w", err))
			return
		}
		if permanentWarmError(err) || attempt > retries {
			d.fail(gen, err)
			return
		}
		wait := warmBackoff(s.retryBase(), attempt-1, rng)
		if !d.scheduleRetry(gen, attempt, err, time.Now().Add(wait)) {
			return // superseded
		}
		if aborted := s.retrySleep(ctx, wait); aborted != nil {
			// Shutdown began (or the warm was canceled) during the backoff:
			// stop retrying cleanly instead of holding the drain hostage.
			d.fail(gen, fmt.Errorf("warm retry abandoned (%v): %w", aborted, err))
			return
		}
	}
}

// retrySleep waits out a backoff, aborting early when the warm's
// context cancels or the server starts shutting down.
func (s *Server) retrySleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-s.closing:
		return ErrClosed
	case <-t.C:
		return nil
	}
}

// beginAttempt records that attempt n is running (clearing any pending
// next-retry time); false means the generation was superseded and the
// warm goroutine must exit.
func (d *dsEntry) beginAttempt(gen, n int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gen != gen {
		return false
	}
	d.attempt = n
	d.nextRetry = time.Time{}
	return true
}

// scheduleRetry records attempt n's transient failure and the time the
// next attempt starts, keeping the evidence visible in Status while the
// warm sleeps.
func (d *dsEntry) scheduleRetry(gen, n int, err error, at time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gen != gen {
		return false
	}
	d.warmErr = err
	d.nextRetry = at
	return true
}

// publish installs the finished snapshot with one pointer swap.
func (d *dsEntry) publish(gen int, snap *Snapshot, took time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gen != gen {
		return
	}
	d.warming = false
	d.warmErr = nil
	d.nextRetry = time.Time{}
	d.cancel = nil
	d.lastWarmMillis = max64(took.Milliseconds(), 1)
	d.snap.Store(snap)
	d.state = StateReady
}

// fail ends the warm: the dataset keeps serving its old snapshot if it
// has one (a failed refresh), otherwise it becomes failed with the full
// error chain intact for Status and Snapshot callers.
func (d *dsEntry) fail(gen int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gen != gen {
		return
	}
	d.warming = false
	d.warmErr = err
	d.nextRetry = time.Time{}
	d.cancel = nil
	if d.snap.Load() == nil {
		d.state = StateFailed
	}
}

// retrying counts datasets whose in-flight warm has failed at least
// once — the /healthz degraded-warning condition.
func (s *Server) retrying() int {
	s.mu.RLock()
	entries := make([]*dsEntry, 0, len(s.datasets))
	for _, d := range s.datasets {
		entries = append(entries, d)
	}
	s.mu.RUnlock()
	n := 0
	for _, d := range entries {
		d.mu.Lock()
		if d.warming && d.warmErr != nil {
			n++
		}
		d.mu.Unlock()
	}
	return n
}

// warmOpen wraps the configured open hook (os.Open by default) so every
// handle a warm reads is canceled by the warm's context between reads —
// what lets DELETE and an expired shutdown drain abort a stream that
// would otherwise run for minutes. Each retry attempt calls it afresh,
// so retries always run on fresh handles.
func (s *Server) warmOpen(ctx context.Context) func(string) (io.ReadSeekCloser, error) {
	open := s.cfg.Open
	if open == nil {
		open = func(p string) (io.ReadSeekCloser, error) { return os.Open(p) }
	}
	return func(p string) (io.ReadSeekCloser, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f, err := open(p)
		if err != nil {
			return nil, err
		}
		return &cancelReader{ctx: ctx, inner: f}, nil
	}
}

// cancelReader fails every Read/Seek once its context cancels, so a
// streaming walk observes cancellation at I/O granularity without the
// wire layer knowing about contexts.
type cancelReader struct {
	ctx   context.Context
	inner io.ReadSeekCloser
}

func (r *cancelReader) Read(p []byte) (int, error) {
	if err := r.ctx.Err(); err != nil {
		return 0, err
	}
	return r.inner.Read(p)
}

func (r *cancelReader) Seek(offset int64, whence int) (int64, error) {
	if err := r.ctx.Err(); err != nil {
		return 0, err
	}
	return r.inner.Seek(offset, whence)
}

func (r *cancelReader) Close() error { return r.inner.Close() }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
