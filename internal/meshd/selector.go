// selector.go implements list-style field filtering for the HTTP list
// resources: a ?selector=field=value,field=value query parameter in the
// style of Kubernetes field selectors. Unknown fields are a 400, not a
// silent empty result, so typos fail loudly.

package meshd

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// selector is a parsed field filter: exact-match requirements keyed by
// field name. An empty selector matches everything.
type selector map[string]string

// parseSelector reads the request's selector parameter (plus any bare
// query parameters with the same field names, so ?band=n works as
// shorthand) and validates every field against the allowed set.
func parseSelector(r *http.Request, allowed ...string) (selector, error) {
	ok := make(map[string]bool, len(allowed))
	for _, f := range allowed {
		ok[f] = true
	}
	sel := selector{}
	add := func(field, value string) error {
		if !ok[field] {
			return fmt.Errorf("%w: unknown selector field %q (allowed: %s)",
				ErrBadRequest, field, strings.Join(allowed, ", "))
		}
		sel[field] = value
		return nil
	}
	q := r.URL.Query()
	for _, raw := range q["selector"] {
		for _, term := range strings.Split(raw, ",") {
			term = strings.TrimSpace(term)
			if term == "" {
				continue
			}
			field, value, found := strings.Cut(term, "=")
			if !found {
				return nil, fmt.Errorf("%w: selector term %q is not field=value", ErrBadRequest, term)
			}
			if err := add(strings.TrimSpace(field), strings.TrimSpace(value)); err != nil {
				return nil, err
			}
		}
	}
	for _, f := range allowed {
		if v := q.Get(f); v != "" {
			sel[f] = v
		}
	}
	return sel, nil
}

// matches reports whether every selector requirement present in fields
// is satisfied. Requirements on fields absent from the map (the numeric
// range fields handled separately) are ignored.
func (s selector) matches(fields map[string]string) bool {
	for field, want := range s {
		got, present := fields[field]
		if present && got != want {
			return false
		}
	}
	return true
}

// normBool canonicalizes a boolean selector value in place so matching
// against fmt.Sprintf("%t", ...) fields works for every spelling
// strconv.ParseBool accepts (1/t/TRUE/…). An unparseable value is a
// 400, not a silently-empty result — the same fail-loudly rule the
// field-name validation applies.
func (s selector) normBool(field string) error {
	v, ok := s[field]
	if !ok {
		return nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return fmt.Errorf("%w: selector field %s wants a boolean, got %q", ErrBadRequest, field, v)
	}
	s[field] = strconv.FormatBool(b)
	return nil
}

// intRange reads a min/max field pair as a closed integer window,
// defaulting to (0, MaxInt) when unset.
func (s selector) intRange(minField, maxField string) (int, int, error) {
	lo, hi := 0, int(^uint(0)>>1)
	if v, ok := s[minField]; ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: %s: %v", ErrBadRequest, minField, err)
		}
		lo = n
	}
	if v, ok := s[maxField]; ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: %s: %v", ErrBadRequest, maxField, err)
		}
		hi = n
	}
	return lo, hi, nil
}
