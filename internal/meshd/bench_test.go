package meshd

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// BenchmarkMeshdConcurrentQueries measures query latency at 1, 8, and
// 64 in-flight report queries against a warm dataset, reporting p50 and
// p99 alongside the usual ns/op (the PERF.md serving numbers).
func BenchmarkMeshdConcurrentQueries(b *testing.B) {
	dir := b.TempDir()
	specPath := filepath.Join(dir, "meshd-tiny.json")
	if err := os.WriteFile(specPath, []byte(tinySpecJSON), 0o644); err != nil {
		b.Fatal(err)
	}
	s := New(Config{Dir: dir})
	defer s.Shutdown(context.Background())
	if _, err := s.RegisterScenario("bench", specPath); err != nil {
		b.Fatal(err)
	}
	for {
		if _, err := s.Snapshot("bench"); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/datasets/bench/report"

	for _, inflight := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("inflight=%d", inflight), func(b *testing.B) {
			var mu sync.Mutex
			lat := make([]time.Duration, 0, b.N)
			var wg sync.WaitGroup
			work := make(chan struct{})
			for g := 0; g < inflight; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range work {
						t0 := time.Now()
						resp, err := http.Get(url)
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						d := time.Since(t0)
						mu.Lock()
						lat = append(lat, d)
						mu.Unlock()
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work <- struct{}{}
			}
			close(work)
			wg.Wait()
			b.StopTimer()
			if len(lat) == 0 {
				return
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
		})
	}
}
