// http.go maps the Server onto its HTTP API (documented in
// docs/MESHD.md). Every data read takes one light pool slot — the
// per-query worker budget — and resolves against an immutable
// snapshot, so handlers never contend with warms beyond that slot.

package meshd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"meshlab"
)

// registration is the POST /v1/datasets body: a dataset file by path,
// or a declarative scenario by built-in name or spec-file path.
type registration struct {
	Name     string `json:"name,omitempty"`
	Path     string `json:"path,omitempty"`
	Scenario string `json:"scenario,omitempty"`
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleRegister)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleStatus)
	mux.HandleFunc("GET /v1/datasets/{name}/report", s.dataHandler(func(snap *Snapshot, r *http.Request) (any, error) {
		return text(snap.Report()), nil
	}))
	mux.HandleFunc("GET /v1/datasets/{name}/sec4", s.dataHandler(func(snap *Snapshot, r *http.Request) (any, error) {
		return text(snap.Sec4()), nil
	}))
	mux.HandleFunc("GET /v1/datasets/{name}/experiments", s.dataHandler(listExperiments))
	mux.HandleFunc("GET /v1/datasets/{name}/experiments/{id}", s.dataHandler(func(snap *Snapshot, r *http.Request) (any, error) {
		txt, err := snap.Experiment(r.PathValue("id"))
		if err != nil {
			return nil, err
		}
		return text(txt), nil
	}))
	mux.HandleFunc("GET /v1/datasets/{name}/networks", s.dataHandler(listNetworks))
	return mux
}

// text marks a handler result as preformatted plain text (the CLI byte
// paths) rather than a JSON document.
type text string

// httpError maps the package's error taxonomy onto status codes:
// 404 unknown name, 503+Retry-After still warming, 500 failed warm or
// internal fault, 400 bad request, 503 shutting down.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrNotReady):
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// dataHandler wraps a snapshot read: resolve the dataset, take one
// light worker slot for the query's duration, run fn against the
// immutable snapshot, and render text or JSON.
func (s *Server) dataHandler(fn func(snap *Snapshot, r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap, err := s.Snapshot(r.PathValue("name"))
		if err != nil {
			httpError(w, err)
			return
		}
		// The per-query budget: one worker slot per in-flight query, so
		// 64 concurrent queries fan across the pool instead of all
		// running at once, and a streaming warm can never consume the
		// slots queries are waiting on (the pool's reserved floor).
		if err := s.pool.Light(r.Context()); err != nil {
			httpError(w, fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		defer s.pool.ReleaseLight()
		v, err := fn(snap, r)
		if err != nil {
			httpError(w, err)
			return
		}
		if t, ok := v.(text); ok {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, string(t))
			return
		}
		writeJSON(w, http.StatusOK, v)
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var reg registration
	if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
		httpError(w, fmt.Errorf("%w: body: %v", ErrBadRequest, err))
		return
	}
	var name string
	var err error
	switch {
	case reg.Path != "" && reg.Scenario != "":
		err = fmt.Errorf("%w: path and scenario are mutually exclusive", ErrBadRequest)
	case reg.Path != "":
		name = reg.Name
		err = s.RegisterPath(name, reg.Path)
	case reg.Scenario != "":
		name, err = s.RegisterScenario(reg.Name, reg.Scenario)
	default:
		err = fmt.Errorf("%w: a registration needs a path or a scenario", ErrBadRequest)
	}
	if err != nil {
		httpError(w, err)
		return
	}
	// 202 + a pollable status document: warming happens in the
	// background, clients poll the Location until state is ready.
	w.Header().Set("Location", "/v1/datasets/"+name)
	st, _ := s.Status(name)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("name"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	sel, err := parseSelector(r, "state", "source")
	if err != nil {
		httpError(w, err)
		return
	}
	out := []Status{}
	for _, st := range s.Statuses() {
		if sel.matches(map[string]string{"state": string(st.State), "source": st.Source}) {
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// experimentEntry is one row of the experiment list resource.
type experimentEntry struct {
	ID         string `json:"id"`
	Section    string `json:"section"`
	SampleOnly bool   `json:"sampleOnly"`
	Title      string `json:"title"`
}

// experimentSection derives the paper chapter from the artifact ID
// ("fig4.2" → "4", "abl5.sym" → "5", "sec6.3" → "6").
func experimentSection(id string) string {
	for i := 0; i < len(id); i++ {
		if id[i] >= '0' && id[i] <= '9' {
			return id[i : i+1]
		}
	}
	return ""
}

// listExperiments serves the filterable experiment list: section (the
// paper chapter) and sampleOnly (runs from §4 samples alone) are the
// selector fields.
func listExperiments(snap *Snapshot, r *http.Request) (any, error) {
	sel, err := parseSelector(r, "section", "sampleOnly")
	if err != nil {
		return nil, err
	}
	if err := sel.normBool("sampleOnly"); err != nil {
		return nil, err
	}
	sampleOnly := make(map[string]bool)
	for _, id := range sampleIDs() {
		sampleOnly[id] = true
	}
	out := []experimentEntry{}
	for _, res := range snap.Results {
		e := experimentEntry{
			ID:         res.ID,
			Section:    experimentSection(res.ID),
			SampleOnly: sampleOnly[res.ID],
			Title:      res.Title,
		}
		if sel.matches(map[string]string{
			"section":    e.Section,
			"sampleOnly": fmt.Sprintf("%t", e.SampleOnly),
		}) {
			out = append(out, e)
		}
	}
	return out, nil
}

// listNetworks serves the filterable network index: band, env, and the
// minAPs/maxAPs size window are the selector fields.
func listNetworks(snap *Snapshot, r *http.Request) (any, error) {
	sel, err := parseSelector(r, "band", "env", "minAPs", "maxAPs")
	if err != nil {
		return nil, err
	}
	minAPs, maxAPs, err := sel.intRange("minAPs", "maxAPs")
	if err != nil {
		return nil, err
	}
	out := []NetworkEntry{}
	for _, n := range snap.Networks {
		if n.APs < minAPs || n.APs > maxAPs {
			continue
		}
		if sel.matches(map[string]string{"band": n.Band, "env": n.Env}) {
			out = append(out, n)
		}
	}
	return out, nil
}

// sampleIDs lists the §4 sample-path artifacts (the meshanalyze -sample
// set), used to tag the experiment list's sampleOnly field.
func sampleIDs() []string { return meshlab.SampleExperimentIDs() }
