// http.go maps the Server onto its HTTP API (documented in
// docs/MESHD.md). Every data read takes one light pool slot — the
// per-query worker budget — under the query deadline, and resolves
// against an immutable snapshot, so handlers never contend with warms
// beyond that slot. Retry-After values are derived from observed
// latency (the dataset's last warm for 503-not-ready, a query-latency
// EWMA for 503-overloaded), and the pre-rendered text endpoints carry
// strong ETags so pollers revalidate with 304s instead of re-downloading
// reports.

package meshd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"meshlab"
)

// registration is the POST /v1/datasets body: a dataset file by path,
// or a declarative scenario by built-in name or spec-file path.
type registration struct {
	Name     string `json:"name,omitempty"`
	Path     string `json:"path,omitempty"`
	Scenario string `json:"scenario,omitempty"`
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleRegister)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDelete)
	mux.HandleFunc("GET /v1/datasets/{name}/report", s.dataHandler(cacheable, func(snap *Snapshot, r *http.Request) (any, error) {
		return text(snap.Report()), nil
	}))
	mux.HandleFunc("GET /v1/datasets/{name}/sec4", s.dataHandler(cacheable, func(snap *Snapshot, r *http.Request) (any, error) {
		return text(snap.Sec4()), nil
	}))
	mux.HandleFunc("GET /v1/datasets/{name}/experiments", s.dataHandler(uncached, listExperiments))
	mux.HandleFunc("GET /v1/datasets/{name}/experiments/{id}", s.dataHandler(cacheable, func(snap *Snapshot, r *http.Request) (any, error) {
		txt, err := snap.Experiment(r.PathValue("id"))
		if err != nil {
			return nil, err
		}
		return text(txt), nil
	}))
	mux.HandleFunc("GET /v1/datasets/{name}/networks", s.dataHandler(uncached, listNetworks))
	return mux
}

// handleHealthz is the liveness probe. It stays 200 while any dataset
// retries a warm — the process is serving — but the body degrades from
// "ok" to a warning so probes and humans see the flapping storage.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if n := s.retrying(); n > 0 {
		fmt.Fprintf(w, "warn: %d dataset(s) retrying a warm\n", n)
		return
	}
	fmt.Fprintln(w, "ok")
}

// text marks a handler result as preformatted plain text (the CLI byte
// paths) rather than a JSON document.
type text string

// cacheable/uncached tag dataHandler endpoints whose whole response is
// pre-rendered at warm time (report, §4, one experiment): those carry
// the snapshot's ETag and honor If-None-Match with 304. The filtered
// list endpoints vary by selector and stay unvalidated.
const (
	cacheable = true
	uncached  = false
)

// httpError maps the package's error taxonomy onto status codes:
// 404 unknown name, 503+Retry-After still warming, 503+Retry-After
// overloaded (query deadline expired waiting for a worker slot), 500
// failed warm or internal fault, 400 bad request, 503 shutting down.
// A Retry-After the handler already derived from observed latency is
// kept; the bare "1" is only the no-evidence fallback.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrNotReady), errors.Is(err, ErrOverloaded):
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// ceilSeconds renders observed millis as a Retry-After value: whole
// seconds, rounded up, floor 1 (the header is integer seconds and
// "retry immediately" is never the advice a 503 wants to give).
func ceilSeconds(ms int64) string {
	sec := (ms + 999) / 1000
	if sec < 1 {
		sec = 1
	}
	return strconv.FormatInt(sec, 10)
}

// retryAfterWarm derives the 503-not-ready Retry-After from evidence:
// the dataset's own last successful warm, else the most recent warm
// anywhere on the server (a cold dataset has no history of its own),
// else 1s.
func (s *Server) retryAfterWarm(name string) string {
	var ms int64
	if d, err := s.lookup(name); err == nil {
		d.mu.Lock()
		ms = d.lastWarmMillis
		d.mu.Unlock()
	}
	if ms <= 0 {
		ms = s.lastWarmMillis.Load()
	}
	return ceilSeconds(ms)
}

// retryAfterQuery derives the 503-overloaded Retry-After from the
// query-latency EWMA: a saturated pool frees a slot roughly one query
// duration from now.
func (s *Server) retryAfterQuery() string {
	return ceilSeconds(s.lastQueryMillis.Load())
}

// observeQuery folds one data query's duration into the latency EWMA
// (weight 1/4) that backs overload Retry-After derivation.
func (s *Server) observeQuery(d time.Duration) {
	ms := max64(d.Milliseconds(), 1)
	old := s.lastQueryMillis.Load()
	if old > 0 {
		ms = (3*old + ms) / 4
	}
	s.lastQueryMillis.Store(ms)
}

// etagMatch implements If-None-Match: "*" matches anything with a
// current representation, otherwise any listed tag equal to the
// snapshot's (weak-comparison — a W/ prefix is ignored — which is safe
// here because the tags are strong and the endpoints are GETs).
func etagMatch(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		if c == "*" || strings.TrimPrefix(c, "W/") == strings.TrimPrefix(etag, "W/") {
			return true
		}
	}
	return false
}

// dataHandler wraps a snapshot read: resolve the dataset, revalidate
// the client's cache when the endpoint is cacheable, take one light
// worker slot under the query deadline, run fn against the immutable
// snapshot, and render text or JSON.
func (s *Server) dataHandler(withETag bool, fn func(snap *Snapshot, r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		snap, err := s.Snapshot(name)
		if err != nil {
			if errors.Is(err, ErrNotReady) {
				w.Header().Set("Retry-After", s.retryAfterWarm(name))
			}
			httpError(w, err)
			return
		}
		if withETag {
			// The whole response was rendered at warm time, so the
			// snapshot's tag validates it exactly — and a match answers 304
			// before spending a worker slot.
			w.Header().Set("ETag", snap.ETag())
			if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, snap.ETag()) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		// The per-query budget: one worker slot per in-flight query, so
		// 64 concurrent queries fan across the pool instead of all
		// running at once, and a streaming warm can never consume the
		// slots queries are waiting on (the pool's reserved floor). The
		// wait is bounded by Config.QueryTimeout: a saturated pool
		// answers 503 within the budget instead of queueing open-endedly.
		ctx := r.Context()
		if s.cfg.QueryTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
			defer cancel()
		}
		if err := s.pool.Light(ctx); err != nil {
			if ctx.Err() != nil && r.Context().Err() == nil {
				// Our deadline expired (the client is still here): overload.
				w.Header().Set("Retry-After", s.retryAfterQuery())
				httpError(w, fmt.Errorf("%w: %v", ErrOverloaded, err))
				return
			}
			httpError(w, fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		defer s.pool.ReleaseLight()
		start := time.Now()
		v, err := fn(snap, r.WithContext(ctx))
		s.observeQuery(time.Since(start))
		if err != nil {
			httpError(w, err)
			return
		}
		if t, ok := v.(text); ok {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, string(t))
			return
		}
		writeJSON(w, http.StatusOK, v)
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var reg registration
	if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
		httpError(w, fmt.Errorf("%w: body: %v", ErrBadRequest, err))
		return
	}
	var name string
	var err error
	switch {
	case reg.Path != "" && reg.Scenario != "":
		err = fmt.Errorf("%w: path and scenario are mutually exclusive", ErrBadRequest)
	case reg.Path != "":
		name = reg.Name
		err = s.RegisterPath(name, reg.Path)
	case reg.Scenario != "":
		name, err = s.RegisterScenario(reg.Name, reg.Scenario)
	default:
		err = fmt.Errorf("%w: a registration needs a path or a scenario", ErrBadRequest)
	}
	if err != nil {
		httpError(w, err)
		return
	}
	// 202 + a pollable status document: warming happens in the
	// background, clients poll the Location until state is ready.
	w.Header().Set("Location", "/v1/datasets/"+name)
	st, _ := s.Status(name)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("name"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleDelete removes a dataset (canceling its in-flight warm).
// In-flight queries holding the snapshot finish on it — the
// copy-on-write contract — so 204 only promises the registry no longer
// knows the name.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Delete(r.PathValue("name")); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	sel, err := parseSelector(r, "state", "source")
	if err != nil {
		httpError(w, err)
		return
	}
	out := []Status{}
	for _, st := range s.Statuses() {
		if sel.matches(map[string]string{"state": string(st.State), "source": st.Source}) {
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// experimentEntry is one row of the experiment list resource.
type experimentEntry struct {
	ID         string `json:"id"`
	Section    string `json:"section"`
	SampleOnly bool   `json:"sampleOnly"`
	Title      string `json:"title"`
}

// experimentSection derives the paper chapter from the artifact ID
// ("fig4.2" → "4", "abl5.sym" → "5", "sec6.3" → "6").
func experimentSection(id string) string {
	for i := 0; i < len(id); i++ {
		if id[i] >= '0' && id[i] <= '9' {
			return id[i : i+1]
		}
	}
	return ""
}

// listExperiments serves the filterable experiment list: section (the
// paper chapter) and sampleOnly (runs from §4 samples alone) are the
// selector fields.
func listExperiments(snap *Snapshot, r *http.Request) (any, error) {
	sel, err := parseSelector(r, "section", "sampleOnly")
	if err != nil {
		return nil, err
	}
	if err := sel.normBool("sampleOnly"); err != nil {
		return nil, err
	}
	sampleOnly := make(map[string]bool)
	for _, id := range sampleIDs() {
		sampleOnly[id] = true
	}
	out := []experimentEntry{}
	for _, res := range snap.Results {
		e := experimentEntry{
			ID:         res.ID,
			Section:    experimentSection(res.ID),
			SampleOnly: sampleOnly[res.ID],
			Title:      res.Title,
		}
		if sel.matches(map[string]string{
			"section":    e.Section,
			"sampleOnly": fmt.Sprintf("%t", e.SampleOnly),
		}) {
			out = append(out, e)
		}
	}
	return out, nil
}

// listNetworks serves the filterable network index: band, env, and the
// minAPs/maxAPs size window are the selector fields.
func listNetworks(snap *Snapshot, r *http.Request) (any, error) {
	sel, err := parseSelector(r, "band", "env", "minAPs", "maxAPs")
	if err != nil {
		return nil, err
	}
	minAPs, maxAPs, err := sel.intRange("minAPs", "maxAPs")
	if err != nil {
		return nil, err
	}
	out := []NetworkEntry{}
	for _, n := range snap.Networks {
		if n.APs < minAPs || n.APs > maxAPs {
			continue
		}
		if sel.matches(map[string]string{"band": n.Band, "env": n.Env}) {
			out = append(out, n)
		}
	}
	return out, nil
}

// sampleIDs lists the §4 sample-path artifacts (the meshanalyze -sample
// set), used to tag the experiment list's sampleOnly field.
func sampleIDs() []string { return meshlab.SampleExperimentIDs() }
