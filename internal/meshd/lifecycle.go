// lifecycle.go bounds what a long-lived server retains: DELETE removes
// a dataset (canceling its in-flight warm), Config.MaxDatasets evicts
// the least-recently-queried ready datasets when registrations push
// past the cap, and Config.DatasetTTL evicts ready datasets whose
// snapshots have gone unqueried. Eviction and deletion race queries
// safely by the copy-on-write contract: a query resolves one immutable
// *Snapshot pointer up front and finishes on it regardless of what the
// registry does afterwards — releasing a snapshot only drops the
// registry's reference, never the bytes an in-flight response is
// reading.

package meshd

import (
	"fmt"
	"sort"
	"time"
)

// Delete removes the dataset and cancels its in-flight warm, if any.
// Queries already holding the dataset's snapshot finish normally;
// subsequent lookups are ErrNotFound. Deleting during a warm is legal —
// the canceled warm aborts at its next read and publishes nothing.
func (s *Server) Delete(name string) error {
	s.mu.Lock()
	d := s.datasets[name]
	if d == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: dataset %q", ErrNotFound, name)
	}
	delete(s.datasets, name)
	s.mu.Unlock()
	d.mu.Lock()
	// Bump the generation so a warm goroutine mid-transition (between
	// its context check and its publish) can never install state into
	// the detached entry, then cancel the warm's context to abort its
	// stream or backoff sleep promptly.
	d.gen++
	cancel := d.cancel
	d.cancel = nil
	d.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// evictable reports whether the dataset may be evicted right now (a
// published snapshot and no warm in flight — evicting a warming dataset
// would turn registration into a race), plus its last-use time.
func (d *dsEntry) evictable() (bool, int64) {
	d.mu.Lock()
	warming := d.warming
	d.mu.Unlock()
	return !warming && d.snap.Load() != nil, d.lastUsed.Load()
}

// enforceMaxDatasets applies the MaxDatasets cap after a registration:
// while over the cap, the least-recently-queried evictable dataset is
// released. keep (the just-registered entry) is never evicted, so a
// registration cannot evict itself. Warming datasets don't count as
// evictable; a burst of concurrent cold registrations may therefore
// briefly exceed the cap, bounded by the in-flight warm count.
func (s *Server) enforceMaxDatasets(keep *dsEntry) {
	if s.cfg.MaxDatasets <= 0 {
		return
	}
	for {
		s.mu.Lock()
		over := len(s.datasets) - s.cfg.MaxDatasets
		var victim *dsEntry
		var victimUsed int64
		if over > 0 {
			for _, d := range s.datasets {
				if d == keep {
					continue
				}
				ok, used := d.evictable()
				if ok && (victim == nil || used < victimUsed) {
					victim = d
					victimUsed = used
				}
			}
		}
		s.mu.Unlock()
		if over <= 0 || victim == nil {
			return
		}
		s.Delete(victim.name)
	}
}

// janitor periodically evicts ready datasets idle past DatasetTTL,
// until shutdown. The sweep interval tracks the TTL so eviction lag is
// a fraction of the TTL itself.
func (s *Server) janitor() {
	interval := s.cfg.DatasetTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.closing:
			return
		case <-s.base.Done():
			return
		case <-t.C:
			s.evictIdle(time.Now())
		}
	}
}

// evictIdle releases every evictable dataset whose last query is older
// than DatasetTTL. Exposed to tests through the janitor's clock; the
// eviction itself is Delete, so the copy-on-write guarantees apply.
func (s *Server) evictIdle(now time.Time) int {
	ttl := s.cfg.DatasetTTL
	if ttl <= 0 {
		return 0
	}
	cutoff := now.Add(-ttl).UnixNano()
	s.mu.RLock()
	var idle []string
	for name, d := range s.datasets {
		if ok, used := d.evictable(); ok && used < cutoff {
			idle = append(idle, name)
		}
	}
	s.mu.RUnlock()
	sort.Strings(idle)
	evicted := 0
	for _, name := range idle {
		if s.Delete(name) == nil {
			evicted++
		}
	}
	return evicted
}
