// lifecycle_test.go pins the dataset lifecycle: DELETE (including
// canceling an in-flight warm), LRU eviction under MaxDatasets, TTL
// eviction by the janitor, the copy-on-write guarantee that eviction
// never breaks an in-flight query, and the shutdown drain budget
// hard-canceling a warm stream.

package meshd

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// gateReader forwards to a real file but blocks every Read until
// release closes, signalling start on the first Read — the hook that
// parks a warm mid-stream so tests can race it deterministically.
type gateReader struct {
	f       io.ReadSeekCloser
	start   func()
	release <-chan struct{}
}

func (g *gateReader) Read(p []byte) (int, error) {
	g.start()
	<-g.release
	return g.f.Read(p)
}
func (g *gateReader) Seek(off int64, whence int) (int64, error) { return g.f.Seek(off, whence) }
func (g *gateReader) Close() error                              { return g.f.Close() }

// gatedOpen builds an Open hook whose readers block on release and
// close started on the first Read of the first reader.
func gatedOpen(started chan struct{}, release <-chan struct{}) func(string) (io.ReadSeekCloser, error) {
	var once sync.Once
	return func(p string) (io.ReadSeekCloser, error) {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		return &gateReader{
			f:       f,
			start:   func() { once.Do(func() { close(started) }) },
			release: release,
		}, nil
	}
}

// TestMeshdDeleteCancelsInFlightWarm: deleting a dataset mid-warm must
// cancel the warm's stream (it exits without publishing), leave the
// name unknown, and let a fresh registration under the same name warm
// normally.
func TestMeshdDeleteCancelsInFlightWarm(t *testing.T) {
	dir, path := synthTiny(t)
	started := make(chan struct{})
	release := make(chan struct{})
	s := New(Config{Dir: dir, Open: gatedOpen(started, release)})
	defer s.Shutdown(context.Background())
	if err := s.RegisterPath("stuck", path); err != nil {
		t.Fatal(err)
	}
	<-started // the warm is mid-Read
	if err := s.Delete("stuck"); err != nil {
		t.Fatalf("Delete during warm: %v", err)
	}
	close(release) // unblock the read; the canceled context stops the stream
	if _, err := s.Snapshot("stuck"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted dataset still resolves: %v", err)
	}
	if err := s.Delete("stuck"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete: %v, want ErrNotFound", err)
	}
	// The detached warm exits: a bounded Shutdown drains cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("canceled warm never exited: %v", err)
	}
}

// TestMeshdDeleteThenReregister: after deleting a warming dataset the
// name is free — a fresh registration warms to ready.
func TestMeshdDeleteThenReregister(t *testing.T) {
	dir, path := synthTiny(t)
	started := make(chan struct{})
	release := make(chan struct{})
	s := New(Config{Dir: dir, Open: gatedOpen(started, release)})
	defer s.Shutdown(context.Background())
	if err := s.RegisterPath("ds", path); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Delete("ds"); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := s.RegisterPath("ds", path); err != nil {
		t.Fatalf("re-register after delete: %v", err)
	}
	waitReady(t, s, "ds")
}

// TestMeshdDeleteHTTP pins the endpoint: 204 on delete, 404 after.
func TestMeshdDeleteHTTP(t *testing.T) {
	s, _ := newWarmServer(t, "tiny")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	del := func() int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/tiny", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(); code != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", code)
	}
	resp, err := http.Get(ts.URL + "/v1/datasets/tiny")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status after delete = %d, want 404", resp.StatusCode)
	}
	if code := del(); code != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", code)
	}
}

// TestMeshdLRUEviction: a registration pushing past MaxDatasets evicts
// the least-recently-queried ready dataset, never the fresher one.
func TestMeshdLRUEviction(t *testing.T) {
	dir, path := synthTiny(t)
	s := New(Config{Dir: dir, MaxDatasets: 2})
	defer s.Shutdown(context.Background())
	for _, name := range []string{"aa", "bb"} {
		if err := s.RegisterPath(name, path); err != nil {
			t.Fatal(err)
		}
		waitReady(t, s, name)
	}
	time.Sleep(2 * time.Millisecond) // separate the last-used stamps
	if _, err := s.Snapshot("aa"); err != nil {
		t.Fatal(err) // touch aa: bb is now the LRU
	}
	if err := s.RegisterPath("cc", path); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Status("bb"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU dataset bb not evicted: %v", err)
	}
	if _, err := s.Status("aa"); err != nil {
		t.Fatalf("recently-used aa evicted: %v", err)
	}
	waitReady(t, s, "cc")
}

// TestMeshdTTLEviction: the janitor evicts a ready dataset whose
// snapshot goes unqueried past DatasetTTL.
func TestMeshdTTLEviction(t *testing.T) {
	dir, path := synthTiny(t)
	s := New(Config{Dir: dir, DatasetTTL: 50 * time.Millisecond})
	defer s.Shutdown(context.Background())
	if err := s.RegisterPath("idle", path); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "idle")
	// Poll through Status — unlike Snapshot it does not refresh the
	// last-used stamp, so the dataset genuinely idles.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := s.Status("idle"); errors.Is(err, ErrNotFound) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("idle dataset never evicted by TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMeshdEvictIdleSkipsWarming: eviction never touches a dataset
// whose warm is in flight, no matter how stale its last-used stamp.
func TestMeshdEvictIdleSkipsWarming(t *testing.T) {
	dir, path := synthTiny(t)
	started := make(chan struct{})
	release := make(chan struct{})
	s := New(Config{Dir: dir, DatasetTTL: time.Hour, Open: gatedOpen(started, release)})
	defer s.Shutdown(context.Background())
	if err := s.RegisterPath("warming", path); err != nil {
		t.Fatal(err)
	}
	<-started
	if n := s.evictIdle(time.Now().Add(2 * time.Hour)); n != 0 {
		t.Fatalf("evicted %d datasets while one was warming, want 0", n)
	}
	close(release)
	waitReady(t, s, "warming")
	if n := s.evictIdle(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("evicted %d ready-and-idle datasets, want 1", n)
	}
	if _, err := s.Status("warming"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dataset survived eviction: %v", err)
	}
}

// TestMeshdEvictionMidQueryCOW: a snapshot resolved before DELETE keeps
// serving every byte after it — the copy-on-write contract.
func TestMeshdEvictionMidQueryCOW(t *testing.T) {
	s, snap := newWarmServer(t, "tiny")
	report, sec4 := snap.Report(), snap.Sec4()
	if report == "" || sec4 == "" {
		t.Fatal("empty pre-delete responses")
	}
	if err := s.Delete("tiny"); err != nil {
		t.Fatal(err)
	}
	if snap.Report() != report || snap.Sec4() != sec4 {
		t.Fatal("snapshot bytes changed after delete")
	}
	for _, id := range snap.ids {
		if _, err := snap.Experiment(id); err != nil {
			t.Fatalf("experiment %s broken after delete: %v", id, err)
		}
	}
	if _, err := s.Snapshot("tiny"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("registry still resolves the deleted name: %v", err)
	}
}

// TestMeshdDeleteVsQueryRace hammers GET /report while another
// goroutine loops DELETE + re-register: every response must be a
// complete 200 (bytes matching the dataset, up to run lines), a 404, or
// a 503 — never a torn body or a 500. Run under -race in CI.
func TestMeshdDeleteVsQueryRace(t *testing.T) {
	dir, path := synthTiny(t)
	s := New(Config{Dir: dir})
	defer s.Shutdown(context.Background())
	if err := s.RegisterPath("tiny", path); err != nil {
		t.Fatal(err)
	}
	want := stripRunLines(waitReady(t, s, "tiny").Report())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			s.Delete("tiny")
			if err := s.RegisterPath("tiny", path); err != nil {
				t.Errorf("re-register %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/datasets/tiny/report")
				if err != nil {
					t.Errorf("GET: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("read body: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if stripRunLines(string(body)) != want {
						t.Error("200 served torn or foreign report bytes")
						return
					}
				case http.StatusNotFound, http.StatusServiceUnavailable:
					// deleted, or mid-warm — both legal mid-race
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitReady(t, s, "tiny")
}

// TestMeshdShutdownDrainBudgetCancelsWarm: when the drain budget
// expires mid-warm, Shutdown returns the context error promptly and the
// hard-cancel reaches the warm's stream — it fails as canceled instead
// of streaming on.
func TestMeshdShutdownDrainBudgetCancelsWarm(t *testing.T) {
	dir, path := synthTiny(t)
	// Trickle reads keep the warm alive far longer than the drain
	// budget without ever blocking it outright.
	open := func(p string) (io.ReadSeekCloser, error) {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		return &trickleReader{f: f}, nil
	}
	s := New(Config{Dir: dir, Open: open})
	if err := s.RegisterPath("slow", path); err != nil {
		t.Fatal(err)
	}
	// Wait for the warm to be mid-stream.
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := s.Status("slow")
		if err != nil {
			t.Fatal(err)
		}
		if st.Attempt >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("warm never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("Shutdown took %v despite a 20ms budget", took)
	}
	// The hard-cancel reaches the stream: the warm fails as canceled.
	deadline = time.Now().Add(30 * time.Second)
	for {
		st, err := s.Status("slow")
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateFailed {
			if !strings.Contains(st.Error, "canceled") {
				t.Fatalf("canceled warm's error: %q", st.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm never observed the hard-cancel (state %s)", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// trickleReader serves at most 256 bytes per Read with a 2ms pause —
// a stream slow enough to outlive any test drain budget, yet cancelable
// between reads.
type trickleReader struct{ f io.ReadSeekCloser }

func (r *trickleReader) Read(p []byte) (int, error) {
	time.Sleep(2 * time.Millisecond)
	if len(p) > 256 {
		p = p[:256]
	}
	return r.f.Read(p)
}
func (r *trickleReader) Seek(off int64, whence int) (int64, error) { return r.f.Seek(off, whence) }
func (r *trickleReader) Close() error                              { return r.f.Close() }

// TestMeshdDeleteUnknown pins the error shape.
func TestMeshdDeleteUnknown(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	err := s.Delete("ghost")
	if !errors.Is(err, ErrNotFound) || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("Delete(ghost) = %v", err)
	}
}
