package synth

import (
	"bytes"
	"testing"

	"meshlab/internal/radio"
	"meshlab/internal/wire"
)

func TestGenerateQuick(t *testing.T) {
	f, err := Generate(Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// 12 networks, one of which is dual-band → 13 network datasets.
	if len(f.Networks) != 13 {
		t.Fatalf("got %d network datasets, want 13", len(f.Networks))
	}
	if len(f.Clients) != 12 {
		t.Fatalf("got %d client datasets, want 12", len(f.Clients))
	}
	if f.NumProbeSets() == 0 {
		t.Fatal("no probe sets generated")
	}
	if got := len(f.ByBand("n")); got != 3 {
		t.Fatalf("%d 802.11n datasets, want 3", got)
	}
	if f.Meta.Seed != 1 || f.Meta.ProbeInterval != 300 {
		t.Fatalf("meta wrong: %+v", f.Meta)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(Quick(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Quick(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumProbeSets() != b.NumProbeSets() {
		t.Fatalf("probe set counts differ: %d vs %d", a.NumProbeSets(), b.NumProbeSets())
	}
	if len(a.Networks) != len(b.Networks) {
		t.Fatal("network counts differ")
	}
	for i := range a.Networks {
		if len(a.Networks[i].Links) != len(b.Networks[i].Links) {
			t.Fatalf("network %d link counts differ", i)
		}
	}
	for i := range a.Clients {
		if len(a.Clients[i].Clients) != len(b.Clients[i].Clients) {
			t.Fatalf("network %d client counts differ", i)
		}
	}
}

// TestGenerateParallelMatchesSerial pins the parallel fan-out to the
// serial path at the byte level: the wire encodings must be identical, so
// no table or figure can depend on the worker count.
func TestGenerateParallelMatchesSerial(t *testing.T) {
	encode := func(workers int) []byte {
		opts := Quick(11)
		opts.Workers = workers
		f, err := Generate(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := wire.Write(&buf, f); err != nil {
			t.Fatalf("workers=%d: encode: %v", workers, err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	for _, workers := range []int{4, 0} {
		if got := encode(workers); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d produced a different fleet than the serial path (%d vs %d bytes)",
				workers, len(got), len(serial))
		}
	}
}

func TestOptionsMetaMatchesGenerated(t *testing.T) {
	opts := Quick(6)
	f, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta != opts.Meta() {
		t.Fatalf("Options.Meta %+v differs from generated meta %+v", opts.Meta(), f.Meta)
	}
	// Zero-valued sub-configs must resolve to the same defaults Generate
	// applies.
	ref := Reference(6)
	if m := ref.Meta(); m.ProbeDuration != 86400 || m.ProbeInterval != 1200 || m.ClientDuration != 39600 {
		t.Fatalf("reference meta defaults wrong: %+v", m)
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(Quick(1))
	b, _ := Generate(Quick(2))
	if a.NumProbeSets() == b.NumProbeSets() && len(a.Networks[0].Links) == len(b.Networks[0].Links) {
		// Extremely unlikely to match on both counts with different
		// fleets; treat as suspicious.
		t.Log("warning: seeds 1 and 2 produced identical summary counts")
	}
}

func TestSkipClients(t *testing.T) {
	opts := Quick(3)
	opts.SkipClients = true
	f, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clients) != 0 {
		t.Fatal("SkipClients should omit client data")
	}
}

func TestRadioParamsOverride(t *testing.T) {
	opts := Quick(4)
	calls := 0
	opts.RadioParams = func(outdoor bool) radio.Params {
		calls++
		p := radio.DefaultParams(radio.Indoor)
		p.DisableOffsets = true
		return p
	}
	if _, err := Generate(opts); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("RadioParams override never used")
	}
}

func TestGenerateBadFleetConfig(t *testing.T) {
	opts := Quick(5)
	opts.Fleet.NumIndoor = 99
	if _, err := Generate(opts); err == nil {
		t.Fatal("inconsistent fleet config should error")
	}
}

func TestReferenceShape(t *testing.T) {
	opts := Reference(9)
	if opts.Fleet.NumNetworks != 110 {
		t.Fatalf("reference fleet has %d networks", opts.Fleet.NumNetworks)
	}
	if opts.Probe.Duration != 86400 {
		t.Fatalf("reference probe duration %v", opts.Probe.Duration)
	}
}

func TestCacheValidatable(t *testing.T) {
	if !Quick(1).CacheValidatable() || !Reference(1).CacheValidatable() {
		t.Fatal("presets must be cache-validatable")
	}
	o := Quick(1)
	o.Probe.ProbesPerRate = 40
	if o.CacheValidatable() {
		t.Fatal("non-default ProbesPerRate is not recorded in a cache and must not validate")
	}
	o = Quick(1)
	o.Clients.WalkerFrac = 0.5
	if o.CacheValidatable() {
		t.Fatal("non-default client mixture must not validate")
	}
	// Fractional durations collide with their int32-truncated Meta.
	o = Quick(1)
	o.Probe.ReportInterval = 300.9
	if o.CacheValidatable() {
		t.Fatal("fractional cadence must not validate against whole-second Meta")
	}
	o = Quick(1)
	o.RadioParams = func(bool) radio.Params { return radio.DefaultParams(radio.Indoor) }
	if o.CacheValidatable() {
		t.Fatal("RadioParams override must not validate")
	}
}

func TestCacheValidatableRejectsOutOfRangeDurations(t *testing.T) {
	o := Quick(1)
	o.Probe.Duration = 3e9 // beyond int32 seconds: Meta would truncate
	if o.CacheValidatable() {
		t.Fatal("durations beyond int32 must not validate against a cache")
	}
}
