package synth

import (
	"testing"
)

// TestTopologyMatcherAgreesWithBatch pins the incremental matcher to the
// batch MatchesTopology it implements, across the match/mismatch cases a
// streaming cache loader hits.
func TestTopologyMatcherAgreesWithBatch(t *testing.T) {
	opts := Quick(23)
	opts.SkipClients = true
	f, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}

	// The generated fleet matches itself, both incrementally and in batch.
	m, err := NewTopologyMatcher(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range f.Networks {
		if !m.Match(nd.Info) {
			t.Fatalf("network %d (%s/%s) should match its own layout", i, nd.Info.Name, nd.Info.Band)
		}
	}
	if !m.Done() {
		t.Fatal("all networks matched but Done is false")
	}
	if !MatchesTopology(f, opts) {
		t.Fatal("batch MatchesTopology disagrees with the incremental matcher")
	}
	// Extra networks past the expected population are rejected.
	if m.Match(f.Networks[0].Info) {
		t.Fatal("a network past the expected population should not match")
	}

	// A different seed's layout diverges at the first network, so a
	// streaming loader can abort immediately.
	other := Quick(24)
	m2, err := NewTopologyMatcher(other)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Match(f.Networks[0].Info) {
		t.Fatal("seed-23 layout should not match seed-24 expectations")
	}

	// A truncated fleet matches every network but is not Done.
	m3, err := NewTopologyMatcher(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range f.Networks[:len(f.Networks)-1] {
		if !m3.Match(nd.Info) {
			t.Fatal("prefix should match")
		}
	}
	if m3.Done() {
		t.Fatal("a truncated fleet must not report Done")
	}
}
