// Package synth orchestrates end-to-end generation of a synthetic Meraki
// fleet dataset: topology synthesis, channel construction, probe
// collection, and client simulation, all from one root seed. It is the
// substitution for the thesis's unavailable production data (§3); see the
// meshlab package docs for the substitution rationale.
package synth

import (
	"fmt"

	"meshlab/internal/clients"
	"meshlab/internal/dataset"
	"meshlab/internal/mesh"
	"meshlab/internal/phy"
	"meshlab/internal/probe"
	"meshlab/internal/radio"
	"meshlab/internal/rng"
	"meshlab/internal/topology"
)

// Options configures dataset synthesis. Zero-valued sub-configs take their
// packages' thesis defaults.
type Options struct {
	// Seed is the root seed; everything derives from it.
	Seed uint64
	// Fleet shapes the network population.
	Fleet topology.FleetConfig
	// Probe controls the probe collection run.
	Probe probe.Config
	// Clients controls client simulation.
	Clients clients.Config
	// RadioParams optionally overrides the per-link radio parameters
	// (used by the ablation experiments); nil means environment
	// defaults.
	RadioParams func(outdoor bool) radio.Params
	// SkipClients disables client simulation (probe-only datasets).
	SkipClients bool
}

// Reference returns the full thesis-scale configuration: the 110-network
// fleet, a 24-hour probe snapshot reported every 20 minutes (the thesis
// reports every 5; a 20-minute cadence keeps the dataset in memory without
// changing any distributional result, since probe sets are exchangeable
// within a link), and an 11-hour client snapshot.
func Reference(seed uint64) Options {
	return Options{
		Seed:  seed,
		Fleet: topology.DefaultFleetConfig(),
		Probe: probe.Config{Duration: 86400, ReportInterval: 1200},
	}
}

// Quick returns a small configuration for tests and examples: 12 networks,
// a 4-hour probe snapshot at the real 5-minute cadence, full-length client
// snapshot.
func Quick(seed uint64) Options {
	return Options{
		Seed: seed,
		Fleet: topology.FleetConfig{
			NumNetworks: 12, NumIndoor: 7, NumOutdoor: 3, NumMixed: 2,
			NumN: 3, NumBoth: 1, MinSize: 5, MaxSize: 24,
			SizeLogMean: 1.9, SizeLogStd: 0.5,
		},
		Probe: probe.Config{Duration: 4 * 3600, ReportInterval: 300},
	}
}

// Generate builds the full synthetic dataset for opts.
func Generate(opts Options) (*dataset.Fleet, error) {
	root := rng.New(opts.Seed)
	fleetTopo, err := topology.GenerateFleet(root.Split("topology"), opts.Fleet)
	if err != nil {
		return nil, fmt.Errorf("synth: fleet topology: %w", err)
	}

	probeCfg := opts.Probe
	clientCfg := opts.Clients

	out := &dataset.Fleet{
		Meta: dataset.Meta{
			Seed:           opts.Seed,
			ProbeDuration:  int32(withDefault(probeCfg.Duration, 86400)),
			ProbeInterval:  int32(withDefault(probeCfg.ReportInterval, 300)),
			ClientDuration: int32(withDefault(clientCfg.Duration, 39600)),
		},
	}

	for i, topo := range fleetTopo.Networks {
		for _, bandName := range topo.Bands {
			band, err := phy.BandByName(bandName)
			if err != nil {
				return nil, fmt.Errorf("synth: network %s: %w", topo.Name, err)
			}
			key := fmt.Sprintf("net%d/%s", i, bandName)
			net := mesh.Build(root.Split("mesh/"+key), topo, band, mesh.BuildOptions{
				ParamsFor: opts.RadioParams,
			})
			nd := probe.Collect(root.Split("probe/"+key), net, probeCfg)
			out.Networks = append(out.Networks, nd)
		}
		if !opts.SkipClients {
			cd := clients.Simulate(root.SplitN("clients", i), topo, clientCfg)
			out.Clients = append(out.Clients, cd)
		}
	}
	return out, nil
}

func withDefault(v, def float64) float64 {
	if v <= 0 {
		return def
	}
	return v
}
