// Package synth orchestrates end-to-end generation of a synthetic Meraki
// fleet dataset: topology synthesis, channel construction, probe
// collection, and client simulation, all from one root seed. It is the
// substitution for the thesis's unavailable production data (§3); see the
// meshlab package docs for the substitution rationale.
package synth

import (
	"fmt"
	"math"

	"meshlab/internal/clients"
	"meshlab/internal/conc"
	"meshlab/internal/dataset"
	"meshlab/internal/mesh"
	"meshlab/internal/phy"
	"meshlab/internal/probe"
	"meshlab/internal/radio"
	"meshlab/internal/rng"
	"meshlab/internal/topology"
)

// Options configures dataset synthesis. Zero-valued sub-configs take their
// packages' thesis defaults.
type Options struct {
	// Seed is the root seed; everything derives from it.
	Seed uint64
	// Fleet shapes the network population.
	Fleet topology.FleetConfig
	// Probe controls the probe collection run.
	Probe probe.Config
	// Clients controls client simulation.
	Clients clients.Config
	// RadioParams optionally overrides the per-link radio parameters
	// (used by the ablation experiments); nil means environment
	// defaults.
	RadioParams func(outdoor bool) radio.Params
	// SkipClients disables client simulation (probe-only datasets).
	SkipClients bool
	// Workers bounds the synthesis worker pool: networks fan out across
	// it because every network draws from its own seed-derived rng split.
	// 0 means GOMAXPROCS, 1 forces the serial path. The output is
	// byte-identical at any value.
	Workers int
}

// Reference returns the full thesis-scale configuration: the 110-network
// fleet, a 24-hour probe snapshot reported every 20 minutes (the thesis
// reports every 5; a 20-minute cadence keeps the dataset in memory without
// changing any distributional result, since probe sets are exchangeable
// within a link), and an 11-hour client snapshot.
func Reference(seed uint64) Options {
	return Options{
		Seed:  seed,
		Fleet: topology.DefaultFleetConfig(),
		Probe: probe.Config{Duration: 86400, ReportInterval: 1200},
	}
}

// Quick returns a small configuration for tests and examples: 12 networks,
// a 4-hour probe snapshot at the real 5-minute cadence, full-length client
// snapshot.
func Quick(seed uint64) Options {
	return Options{
		Seed: seed,
		Fleet: topology.FleetConfig{
			NumNetworks: 12, NumIndoor: 7, NumOutdoor: 3, NumMixed: 2,
			NumN: 3, NumBoth: 1, MinSize: 5, MaxSize: 24,
			SizeLogMean: 1.9, SizeLogStd: 0.5,
		},
		Probe: probe.Config{Duration: 4 * 3600, ReportInterval: 300},
	}
}

// Meta returns the dataset metadata Generate stamps on a fleet built from
// these options, with package defaults applied (via the sub-configs' own
// Normalized, so the default constants live in one place). Cache layers
// compare it against a stored fleet's Meta to decide whether the file can
// stand in for a fresh synthesis run.
func (o Options) Meta() dataset.Meta {
	p := o.Probe.Normalized()
	c := o.Clients.Normalized()
	return dataset.Meta{
		Seed:           o.Seed,
		ProbeDuration:  int32(p.Duration),
		ProbeInterval:  int32(p.ReportInterval),
		ClientDuration: int32(c.Duration),
	}
}

// CacheValidatable reports whether a stored dataset can be fully checked
// against o. A cache file records the seed, durations, cadence, client
// presence, and (via MatchesTopology) the fleet topology — but not the
// probe aggregation depth, the client-mixture tuning, or a RadioParams
// override, so options setting any of those beyond their defaults must
// bypass dataset caches rather than risk a false hit.
func (o Options) CacheValidatable() bool {
	if o.RadioParams != nil {
		return false
	}
	// Keeping only the fields the cache records and re-applying defaults
	// must reproduce the effective config; otherwise an unrecorded field
	// was set.
	if o.Probe.Normalized() != (probe.Config{Duration: o.Probe.Duration, ReportInterval: o.Probe.ReportInterval}).Normalized() {
		return false
	}
	if o.Clients.Normalized() != (clients.Config{Duration: o.Clients.Duration}).Normalized() {
		return false
	}
	// Meta stores durations as whole int32 seconds, so fractional or
	// out-of-range values would collide with other durations stamping
	// the same truncated Meta (e.g. a 300.9 s cadence stamps the same
	// Meta as the default 300 s) and validate a cache they did not
	// produce.
	p := o.Probe.Normalized()
	c := o.Clients.Normalized()
	for _, d := range []float64{p.Duration, p.ReportInterval, c.Duration} {
		if d != math.Trunc(d) || d < 0 || d > math.MaxInt32 {
			return false
		}
	}
	return true
}

// MatchesTopology reports whether f's network population is exactly what
// Generate would produce for opts: the same network datasets in fleet
// order, each matching on name, band, environment, spacing, and AP
// layout. Topology synthesis is layout-only and cheap, so combining this
// with a Meta comparison validates a cached dataset against the full
// fleet configuration — not just the seed and durations — without paying
// for probe or client simulation.
func MatchesTopology(f *dataset.Fleet, opts Options) bool {
	m, err := NewTopologyMatcher(opts)
	if err != nil {
		return false
	}
	for _, nd := range f.Networks {
		if !m.Match(nd.Info) {
			return false
		}
	}
	return m.Done()
}

// TopologyMatcher is the incremental form of MatchesTopology: the
// expected layout is derived once, then stored networks are checked one
// at a time in fleet order. Streaming cache loaders (see
// meshlab.LoadOrGenerateFleet) use it to reject a mismatched dataset at
// the first divergent network instead of decoding the whole file first.
type TopologyMatcher struct {
	expect []expectedNet
	idx    int
}

// expectedNet is one (network topology, band) dataset Generate would emit.
type expectedNet struct {
	topo *topology.Network
	band string
}

// NewTopologyMatcher derives the layout-only fleet topology for opts.
func NewTopologyMatcher(opts Options) (*TopologyMatcher, error) {
	root := rng.New(opts.Seed)
	fleetTopo, err := topology.GenerateFleet(root.Split("topology"), opts.Fleet)
	if err != nil {
		return nil, fmt.Errorf("synth: fleet topology: %w", err)
	}
	m := &TopologyMatcher{}
	for _, topo := range fleetTopo.Networks {
		for _, bandName := range topo.Bands {
			m.expect = append(m.expect, expectedNet{topo: topo, band: bandName})
		}
	}
	return m, nil
}

// Match checks the next stored network against the expectation and
// advances on success. A network past the expected population (or out of
// order) reports false and does not advance.
func (m *TopologyMatcher) Match(info dataset.NetworkInfo) bool {
	if m.idx >= len(m.expect) {
		return false
	}
	e := m.expect[m.idx]
	topo := e.topo
	if info.Name != topo.Name || info.Band != e.band ||
		info.Env != topo.Env.String() || info.Spacing != topo.Spacing ||
		len(info.APs) != len(topo.APs) {
		return false
	}
	for a, ap := range topo.APs {
		got := info.APs[a]
		if got.Name != ap.Name || got.X != ap.X || got.Y != ap.Y || got.Outdoor != ap.Outdoor {
			return false
		}
	}
	m.idx++
	return true
}

// Done reports whether every expected network dataset has been matched.
func (m *TopologyMatcher) Done() bool { return m.idx == len(m.expect) }

// netResult is one network's synthesized data: the per-band probe
// datasets in band order plus the client log (nil when skipped).
type netResult struct {
	nets    []*dataset.NetworkData
	clients *dataset.ClientData
	err     error
}

// Generate builds the full synthetic dataset for opts. Every network
// derives from an independent rng split of the root seed, so networks are
// synthesized across a worker pool (Options.Workers) and assembled in
// fleet order: the result is byte-identical at any worker count.
func Generate(opts Options) (*dataset.Fleet, error) {
	root := rng.New(opts.Seed)
	fleetTopo, err := topology.GenerateFleet(root.Split("topology"), opts.Fleet)
	if err != nil {
		return nil, fmt.Errorf("synth: fleet topology: %w", err)
	}

	n := len(fleetTopo.Networks)
	results := make([]netResult, n)
	// conc.ForEachN reports the error of the lowest-index network that
	// failed and skips later work once anything fails, so the surfaced
	// error does not depend on worker scheduling. Workers ≤ 0 follows the
	// process worker budget.
	if err := conc.ForEachN(n, opts.Workers, func(i int) error {
		results[i] = buildNetwork(root, i, fleetTopo.Networks[i], opts)
		return results[i].err
	}); err != nil {
		return nil, err
	}
	out := &dataset.Fleet{Meta: opts.Meta()}
	for i := range results {
		out.Networks = append(out.Networks, results[i].nets...)
		if results[i].clients != nil {
			out.Clients = append(out.Clients, results[i].clients)
		}
	}
	return out, nil
}

// buildNetwork synthesizes one network's probe and client data. It only
// reads root's immutable split identity, so concurrent calls are safe.
func buildNetwork(root *rng.Stream, i int, topo *topology.Network, opts Options) netResult {
	var res netResult
	for _, bandName := range topo.Bands {
		band, err := phy.BandByName(bandName)
		if err != nil {
			res.err = fmt.Errorf("synth: network %s: %w", topo.Name, err)
			return res
		}
		key := fmt.Sprintf("net%d/%s", i, bandName)
		net := mesh.Build(root.Split("mesh/"+key), topo, band, mesh.BuildOptions{
			ParamsFor: opts.RadioParams,
		})
		nd := probe.Collect(root.Split("probe/"+key), net, opts.Probe)
		res.nets = append(res.nets, nd)
	}
	if !opts.SkipClients {
		res.clients = clients.Simulate(root.SplitN("clients", i), topo, opts.Clients)
	}
	return res
}
