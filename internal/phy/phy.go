// Package phy models the 802.11 physical layer as the thesis needs it: the
// set of transmit bit rates for 802.11b/g and 802.11n (20 MHz), their
// modulation families, and an SNR→packet-success model per rate.
//
// The reception model is a logistic curve per rate: success probability
// rises from ~0 to ~1 around a modulation-specific SNR midpoint. Two
// modeling choices matter for reproducing the paper:
//
//   - DSSS rates (1 and 11 Mbit/s in 802.11b) have lower midpoints and
//     shallower slopes than OFDM rates of comparable speed — DSSS is known
//     to have better reception at low SNR, which is the paper's explanation
//     for 11 Mbit/s showing fewer hidden triples than 6 Mbit/s (§6.1).
//   - Midpoints increase with the bit rate within a modulation family, so
//     range shrinks as rate grows (§6.2).
//
// Throughput follows the thesis definition: bit rate × packet success rate
// (§3.1.2).
package phy

import (
	"fmt"
	"math"
)

// Modulation is the modulation/coding family of a bit rate. The thesis
// distinguishes DSSS (1, 11 Mbit/s) from OFDM (everything else) because
// their low-SNR reception properties differ.
type Modulation int

const (
	// DSSS is direct-sequence spread spectrum (802.11b rates).
	DSSS Modulation = iota
	// OFDM is orthogonal frequency-division multiplexing (802.11a/g/n
	// rates).
	OFDM
)

// String returns the conventional name of the modulation family.
func (m Modulation) String() string {
	switch m {
	case DSSS:
		return "DSSS"
	case OFDM:
		return "OFDM"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// Rate is one transmit bit rate configuration.
type Rate struct {
	// Name uniquely identifies the rate within its band (e.g. "11M",
	// "mcs9"). Names are the keys used in datasets.
	Name string
	// Mbps is the nominal PHY bit rate in Mbit/s. In 802.11n two MCS
	// indices can share an Mbps value (different stream counts), so Mbps
	// alone is not a key.
	Mbps float64
	// Mod is the modulation family.
	Mod Modulation
	// Streams is the number of spatial streams (1 for 802.11b/g).
	Streams int
	// MidSNR is the SNR (dB) at which packet success probability is 50%.
	MidSNR float64
	// Slope is the logistic slope parameter in dB; smaller is steeper.
	Slope float64
}

// SuccessProb returns the probability that a packet sent at rate r is
// received when the channel SNR is snr dB. The result is clamped to
// [0, 1] and is monotone non-decreasing in snr.
func (r Rate) SuccessProb(snr float64) float64 {
	p := 1 / (1 + math.Exp(-(snr-r.MidSNR)/r.Slope))
	// A real radio never achieves a perfect link; cap so even strong
	// links see occasional loss, matching the probe data's behaviour.
	const cap = 0.995
	if p > cap {
		return cap
	}
	return p
}

// Throughput returns the thesis's throughput metric for this rate given a
// loss rate in [0, 1]: bit rate × packet success rate, in Mbit/s.
func (r Rate) Throughput(loss float64) float64 {
	if loss < 0 {
		loss = 0
	}
	if loss > 1 {
		loss = 1
	}
	return r.Mbps * (1 - loss)
}

// Band is a set of bit rates probed together, i.e. "the rates of an
// 802.11b/g network" or "the rates of an 802.11n network".
type Band struct {
	// Name is "bg" or "n".
	Name string
	// Rates is ordered by increasing (Mbps, Streams). Index in this slice
	// is the rate's ID within the band.
	Rates []Rate
}

// BandBG is the 802.11b/g probed rate set. It matches the set the thesis
// evaluates (Figures 4.1–6.2): DSSS 1 and 11 Mbit/s plus OFDM 6, 12, 24,
// 36, and 48 Mbit/s. 54 Mbit/s is omitted because the production networks
// did not probe it frequently enough to evaluate (§4.1).
var BandBG = Band{
	Name: "bg",
	Rates: []Rate{
		{Name: "1M", Mbps: 1, Mod: DSSS, Streams: 1, MidSNR: 3.0, Slope: 3.0},
		{Name: "6M", Mbps: 6, Mod: OFDM, Streams: 1, MidSNR: 8.0, Slope: 1.6},
		{Name: "11M", Mbps: 11, Mod: DSSS, Streams: 1, MidSNR: 7.0, Slope: 3.0},
		{Name: "12M", Mbps: 12, Mod: OFDM, Streams: 1, MidSNR: 11.0, Slope: 1.6},
		{Name: "24M", Mbps: 24, Mod: OFDM, Streams: 1, MidSNR: 17.0, Slope: 1.8},
		{Name: "36M", Mbps: 36, Mod: OFDM, Streams: 1, MidSNR: 21.0, Slope: 1.8},
		{Name: "48M", Mbps: 48, Mod: OFDM, Streams: 1, MidSNR: 25.0, Slope: 2.0},
	},
}

// BandN is the 802.11n 20 MHz rate set, MCS 0–15 (one and two spatial
// streams). The thesis's 802.11n traffic used the 20 MHz channel (§3).
var BandN = Band{
	Name: "n",
	Rates: []Rate{
		{Name: "mcs0", Mbps: 6.5, Mod: OFDM, Streams: 1, MidSNR: 6.0, Slope: 1.6},
		{Name: "mcs1", Mbps: 13, Mod: OFDM, Streams: 1, MidSNR: 9.0, Slope: 1.6},
		{Name: "mcs2", Mbps: 19.5, Mod: OFDM, Streams: 1, MidSNR: 12.0, Slope: 1.6},
		{Name: "mcs3", Mbps: 26, Mod: OFDM, Streams: 1, MidSNR: 15.0, Slope: 1.8},
		{Name: "mcs4", Mbps: 39, Mod: OFDM, Streams: 1, MidSNR: 19.0, Slope: 1.8},
		{Name: "mcs5", Mbps: 52, Mod: OFDM, Streams: 1, MidSNR: 23.0, Slope: 1.8},
		{Name: "mcs6", Mbps: 58.5, Mod: OFDM, Streams: 1, MidSNR: 25.5, Slope: 2.0},
		{Name: "mcs7", Mbps: 65, Mod: OFDM, Streams: 1, MidSNR: 27.5, Slope: 2.0},
		{Name: "mcs8", Mbps: 13, Mod: OFDM, Streams: 2, MidSNR: 10.0, Slope: 1.8},
		{Name: "mcs9", Mbps: 26, Mod: OFDM, Streams: 2, MidSNR: 13.0, Slope: 1.8},
		{Name: "mcs10", Mbps: 39, Mod: OFDM, Streams: 2, MidSNR: 16.0, Slope: 1.8},
		{Name: "mcs11", Mbps: 52, Mod: OFDM, Streams: 2, MidSNR: 19.5, Slope: 2.0},
		{Name: "mcs12", Mbps: 78, Mod: OFDM, Streams: 2, MidSNR: 23.5, Slope: 2.0},
		{Name: "mcs13", Mbps: 104, Mod: OFDM, Streams: 2, MidSNR: 27.5, Slope: 2.2},
		{Name: "mcs14", Mbps: 117, Mod: OFDM, Streams: 2, MidSNR: 29.5, Slope: 2.2},
		{Name: "mcs15", Mbps: 130, Mod: OFDM, Streams: 2, MidSNR: 31.5, Slope: 2.2},
	},
}

// BandByName returns the band with the given name ("bg" or "n").
func BandByName(name string) (Band, error) {
	switch name {
	case BandBG.Name:
		return BandBG, nil
	case BandN.Name:
		return BandN, nil
	}
	return Band{}, fmt.Errorf("phy: unknown band %q", name)
}

// RateByName returns the rate with the given name and whether it exists.
func (b Band) RateByName(name string) (Rate, bool) {
	for _, r := range b.Rates {
		if r.Name == name {
			return r, true
		}
	}
	return Rate{}, false
}

// RateIndex returns the index of the named rate in b.Rates, or -1.
func (b Band) RateIndex(name string) int {
	for i, r := range b.Rates {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// LowestRate returns the band's lowest bit rate (the rate preambles and
// link-layer ACKs use).
func (b Band) LowestRate() Rate {
	low := b.Rates[0]
	for _, r := range b.Rates[1:] {
		if r.Mbps < low.Mbps {
			low = r
		}
	}
	return low
}

// MaxMbps returns the band's highest nominal bit rate.
func (b Band) MaxMbps() float64 {
	var max float64
	for _, r := range b.Rates {
		if r.Mbps > max {
			max = r.Mbps
		}
	}
	return max
}
