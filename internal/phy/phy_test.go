package phy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSuccessProbMonotoneInSNR(t *testing.T) {
	for _, band := range []Band{BandBG, BandN} {
		for _, r := range band.Rates {
			prev := -1.0
			for snr := -10.0; snr <= 60; snr += 0.5 {
				p := r.SuccessProb(snr)
				if p < prev {
					t.Fatalf("%s/%s: success not monotone at %v dB", band.Name, r.Name, snr)
				}
				if p < 0 || p > 1 {
					t.Fatalf("%s/%s: success %v out of [0,1]", band.Name, r.Name, p)
				}
				prev = p
			}
		}
	}
}

func TestSuccessProbMonotoneProperty(t *testing.T) {
	r := BandBG.Rates[4] // 24M
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 80)
		b = math.Mod(math.Abs(b), 80)
		if a > b {
			a, b = b, a
		}
		return r.SuccessProb(a) <= r.SuccessProb(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessCapped(t *testing.T) {
	for _, r := range BandBG.Rates {
		if p := r.SuccessProb(100); p > 0.995 {
			t.Fatalf("%s success %v exceeds cap", r.Name, p)
		}
	}
}

func TestMidpointIsHalf(t *testing.T) {
	for _, r := range BandBG.Rates {
		if p := r.SuccessProb(r.MidSNR); math.Abs(p-0.5) > 1e-9 {
			t.Fatalf("%s: success at midpoint = %v, want 0.5", r.Name, p)
		}
	}
}

func TestDSSSBeatsOFDMAtLowSNR(t *testing.T) {
	// The 6-vs-11 Mbit/s inversion: at low SNR the DSSS 11 Mbit/s rate
	// must be received at least as well as OFDM 6 Mbit/s (§6.1).
	r6, _ := BandBG.RateByName("6M")
	r11, _ := BandBG.RateByName("11M")
	for snr := 0.0; snr <= 7; snr++ {
		if r11.SuccessProb(snr) < r6.SuccessProb(snr) {
			t.Fatalf("at %v dB: P(11M)=%v < P(6M)=%v", snr, r11.SuccessProb(snr), r6.SuccessProb(snr))
		}
	}
}

func TestOFDMMidpointsIncreaseWithRate(t *testing.T) {
	var prevMid, prevMbps float64
	for _, r := range BandBG.Rates {
		if r.Mod != OFDM {
			continue
		}
		if r.Mbps > prevMbps && r.MidSNR <= prevMid && prevMbps != 0 {
			t.Fatalf("OFDM midpoints not increasing at %s", r.Name)
		}
		prevMid, prevMbps = r.MidSNR, r.Mbps
	}
}

func TestThroughputDefinition(t *testing.T) {
	r, _ := BandBG.RateByName("24M")
	if got := r.Throughput(0.25); math.Abs(got-18) > 1e-12 {
		t.Fatalf("Throughput(0.25) = %v, want 18", got)
	}
	if got := r.Throughput(0); got != 24 {
		t.Fatalf("Throughput(0) = %v", got)
	}
	if got := r.Throughput(1); got != 0 {
		t.Fatalf("Throughput(1) = %v", got)
	}
	// Out-of-range losses clamp.
	if got := r.Throughput(-0.5); got != 24 {
		t.Fatalf("Throughput(-0.5) = %v", got)
	}
	if got := r.Throughput(1.5); got != 0 {
		t.Fatalf("Throughput(1.5) = %v", got)
	}
}

func TestBandBGComposition(t *testing.T) {
	if len(BandBG.Rates) != 7 {
		t.Fatalf("BG band has %d rates, want 7", len(BandBG.Rates))
	}
	wantMbps := []float64{1, 6, 11, 12, 24, 36, 48}
	for i, w := range wantMbps {
		if BandBG.Rates[i].Mbps != w {
			t.Fatalf("BG rate %d = %v Mbps, want %v", i, BandBG.Rates[i].Mbps, w)
		}
	}
	dsss := 0
	for _, r := range BandBG.Rates {
		if r.Mod == DSSS {
			dsss++
		}
	}
	if dsss != 2 {
		t.Fatalf("BG band has %d DSSS rates, want 2 (1M and 11M)", dsss)
	}
}

func TestBandNComposition(t *testing.T) {
	if len(BandN.Rates) != 16 {
		t.Fatalf("N band has %d rates, want 16 (MCS 0-15)", len(BandN.Rates))
	}
	names := map[string]bool{}
	for _, r := range BandN.Rates {
		if names[r.Name] {
			t.Fatalf("duplicate rate name %s", r.Name)
		}
		names[r.Name] = true
		if r.Mod != OFDM {
			t.Fatalf("802.11n rate %s is not OFDM", r.Name)
		}
	}
	// Two-stream MCS of the same nominal Mbps needs a bit more SNR than
	// a single-stream MCS with the same modulation order would, and Mbps
	// values legitimately repeat across stream counts.
	m8, _ := BandN.RateByName("mcs8")
	m1, _ := BandN.RateByName("mcs1")
	if m8.Mbps != m1.Mbps {
		t.Fatalf("mcs1 and mcs8 should share 13 Mbps")
	}
	if m8.MidSNR <= m1.MidSNR {
		t.Fatalf("two-stream MCS should need more SNR")
	}
}

func TestNHasMoreRatesThanBG(t *testing.T) {
	// §4's contrast depends on 802.11n having significantly more rates.
	if len(BandN.Rates) <= len(BandBG.Rates) {
		t.Fatal("802.11n must have more rates than 802.11b/g")
	}
}

func TestBandByName(t *testing.T) {
	b, err := BandByName("bg")
	if err != nil || b.Name != "bg" {
		t.Fatalf("BandByName(bg) = %v, %v", b.Name, err)
	}
	b, err = BandByName("n")
	if err != nil || b.Name != "n" {
		t.Fatalf("BandByName(n) = %v, %v", b.Name, err)
	}
	if _, err := BandByName("ac"); err == nil {
		t.Fatal("unknown band should error")
	}
}

func TestRateLookups(t *testing.T) {
	r, ok := BandBG.RateByName("36M")
	if !ok || r.Mbps != 36 {
		t.Fatalf("RateByName(36M) = %+v, %v", r, ok)
	}
	if _, ok := BandBG.RateByName("99M"); ok {
		t.Fatal("nonexistent rate found")
	}
	if i := BandBG.RateIndex("1M"); i != 0 {
		t.Fatalf("RateIndex(1M) = %d", i)
	}
	if i := BandBG.RateIndex("nope"); i != -1 {
		t.Fatalf("RateIndex(nope) = %d", i)
	}
}

func TestLowestRateAndMax(t *testing.T) {
	if r := BandBG.LowestRate(); r.Name != "1M" {
		t.Fatalf("BG lowest = %s", r.Name)
	}
	if r := BandN.LowestRate(); r.Name != "mcs0" {
		t.Fatalf("N lowest = %s", r.Name)
	}
	if m := BandBG.MaxMbps(); m != 48 {
		t.Fatalf("BG max = %v", m)
	}
	if m := BandN.MaxMbps(); m != 130 {
		t.Fatalf("N max = %v", m)
	}
}

func TestModulationString(t *testing.T) {
	if DSSS.String() != "DSSS" || OFDM.String() != "OFDM" {
		t.Fatal("modulation names wrong")
	}
	if Modulation(9).String() != "Modulation(9)" {
		t.Fatal("unknown modulation formatting wrong")
	}
}

func BenchmarkSuccessProb(b *testing.B) {
	r := BandBG.Rates[4]
	for i := 0; i < b.N; i++ {
		_ = r.SuccessProb(float64(i % 40))
	}
}
