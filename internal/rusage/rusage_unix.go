//go:build linux || darwin

package rusage

import (
	"runtime"
	"syscall"
)

func maxRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	// Linux reports ru_maxrss in kilobytes, Darwin in bytes.
	if runtime.GOOS == "darwin" {
		return int64(ru.Maxrss)
	}
	return int64(ru.Maxrss) * 1024
}
