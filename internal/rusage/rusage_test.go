package rusage

import (
	"runtime"
	"testing"
)

func TestMaxRSSBytes(t *testing.T) {
	got := MaxRSSBytes()
	switch runtime.GOOS {
	case "linux", "darwin":
		// A running Go test binary is comfortably past 1 MB and (on any
		// machine this repo targets) under 1 TB.
		if got < 1<<20 || got > 1<<40 {
			t.Fatalf("implausible max RSS %d bytes", got)
		}
	default:
		if got != 0 {
			t.Fatalf("unsupported platform should report 0, got %d", got)
		}
	}
}
