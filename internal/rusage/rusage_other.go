//go:build !linux && !darwin

package rusage

func maxRSSBytes() int64 { return 0 }
