// Package rusage exposes the process's getrusage(2) peak memory so CLIs
// (and the CI guardrail) can record the max RSS of a run without
// depending on an external /usr/bin/time binary.
package rusage

// MaxRSSBytes returns the process's peak resident set size in bytes via
// getrusage(RUSAGE_SELF), or 0 on platforms without the call.
func MaxRSSBytes() int64 { return maxRSSBytes() }
