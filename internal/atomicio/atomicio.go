// Package atomicio writes whole files atomically and durably: content
// goes to a temporary file in the destination directory, is fsynced, and
// replaces the destination with a single rename — so a reader (or a
// crash) only ever observes the old bytes or the complete new bytes,
// never a torn write. The dataset cache rewrite, the checkpoint writer,
// and the golden-file -update path all share this protocol.
package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// Hook observes the write protocol's phases, in order: "post-temp-write"
// (payload written, before fsync; path is the temp file),
// "pre-rename" (synced, closed, chmodded; path is the temp file),
// "mid-rename" (immediately before the rename; path is the temp file, so
// a crash-injection hook can corrupt the bytes the rename will publish),
// and "renamed" (after the rename; path is the final file). A non-nil
// return aborts the protocol at that phase — except after "renamed",
// where the new file already exists and is kept. Checkpoint writing adds
// its own "mid-snapshot" phase between payload sections.
type Hook func(phase, path string) error

// rename is swappable so tests can simulate a cross-device (EXDEV)
// failure without mounting anything.
var rename = os.Rename

// WriteFile atomically replaces path with whatever write produces. The
// callback receives the temp file; its error aborts the write and
// removes the temp.
func WriteFile(path string, mode os.FileMode, write func(*os.File) error) error {
	return WriteFileHook(path, mode, nil, write)
}

// WriteBytes is WriteFile for in-memory content.
func WriteBytes(path string, mode os.FileMode, data []byte) error {
	return WriteFile(path, mode, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// WriteFileHook is WriteFile with a phase hook for crash-injection
// tests; a nil hook is a no-op.
func WriteFileHook(path string, mode os.FileMode, hook Hook, write func(*os.File) error) error {
	call := func(phase, p string) error {
		if hook == nil {
			return nil
		}
		return hook(phase, p)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	cleanup := true
	defer func() {
		if cleanup {
			tmp.Close()
			os.Remove(tmpPath)
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := call("post-temp-write", tmpPath); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmpPath, mode); err != nil {
		return err
	}
	if err := call("pre-rename", tmpPath); err != nil {
		return err
	}
	if err := call("mid-rename", tmpPath); err != nil {
		return err
	}
	if err := rename(tmpPath, path); err != nil {
		if !errors.Is(err, syscall.EXDEV) {
			return err
		}
		// Cross-device destination (the temp necessarily shares the
		// destination directory, but an overlay/bind mount inside it can
		// still split devices): degrade to a direct rewrite of the
		// destination. Durability is kept (fsync before returning);
		// atomicity is not — a crash mid-copy leaves a torn destination,
		// which checkpoint readers detect by CRC.
		if err := copyInto(tmpPath, path, mode); err != nil {
			return err
		}
	}
	cleanup = false
	os.Remove(tmpPath) // no-op after a successful rename
	syncDir(dir)
	return call("renamed", path)
}

// copyInto rewrites dst in place from the temp file's content.
func copyInto(tmpPath, dst string, mode os.FileMode) error {
	src, err := os.Open(tmpPath)
	if err != nil {
		return err
	}
	defer src.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, mode)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, src); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// syncDir persists the rename itself (the directory entry), best-effort:
// some filesystems reject directory fsync, and the file content is
// already durable either way.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
