package atomicio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := WriteBytes(path, 0o644, []byte("new content")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new content" {
		t.Fatalf("content = %q", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644", info.Mode().Perm())
	}
	assertNoTemps(t, dir)
}

func TestWriteErrorKeepsOldContentAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, 0o644, func(f *os.File) error {
		f.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("destination changed to %q on failed write", got)
	}
	assertNoTemps(t, dir)
}

func TestHookPhasesInOrder(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	var phases []string
	hook := func(phase, p string) error {
		phases = append(phases, phase)
		switch phase {
		case "renamed":
			if p != path {
				t.Errorf("renamed path = %q, want %q", p, path)
			}
		default:
			if p == path || !strings.Contains(filepath.Base(p), ".tmp-") {
				t.Errorf("%s path = %q, want a temp file", phase, p)
			}
		}
		return nil
	}
	if err := WriteFileHook(path, 0o644, hook, func(f *os.File) error {
		_, err := f.Write([]byte("x"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"post-temp-write", "pre-rename", "mid-rename", "renamed"}
	if strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
}

func TestHookAbortBeforeRenameKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	killed := errors.New("killed")
	err := WriteFileHook(path, 0o644, func(phase, _ string) error {
		if phase == "pre-rename" {
			return killed
		}
		return nil
	}, func(f *os.File) error {
		_, err := f.Write([]byte("new"))
		return err
	})
	if !errors.Is(err, killed) {
		t.Fatalf("err = %v, want killed", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("destination = %q, want old", got)
	}
	assertNoTemps(t, dir)
}

func TestEXDEVFallsBackToDirectCopy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	orig := rename
	calls := 0
	rename = func(old, new string) error {
		calls++
		return &os.LinkError{Op: "rename", Old: old, New: new, Err: syscall.EXDEV}
	}
	defer func() { rename = orig }()
	if err := WriteBytes(path, 0o644, []byte("crossed the device")); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("rename called %d times, want 1", calls)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "crossed the device" {
		t.Fatalf("content = %q", got)
	}
	assertNoTemps(t, dir)
}

func TestNonEXDEVRenameErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	orig := rename
	rename = func(old, new string) error {
		return &os.LinkError{Op: "rename", Old: old, New: new, Err: syscall.EACCES}
	}
	defer func() { rename = orig }()
	err := WriteBytes(path, 0o644, []byte("x"))
	if !errors.Is(err, syscall.EACCES) {
		t.Fatalf("err = %v, want EACCES", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("destination exists after failed rename")
	}
	assertNoTemps(t, dir)
}

func assertNoTemps(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
