// Package report renders the markdown experiment report — the
// EXPERIMENTS.md artifact — from a run's results and dataset summary.
// It is the single byte path shared by cmd/meshreport (which writes the
// report to a file) and internal/meshd (which serves it over HTTP), so
// a served report is identical to the CLI's up to the two run-specific
// preamble lines (the dataset label and the wall time), and every
// experiment section is byte-identical outright.
package report

import (
	"fmt"
	"strings"
	"time"

	"meshlab"
)

// paperClaims records what the thesis reports for each artifact, so the
// report can juxtapose paper and measured values.
var paperClaims = map[string][]string{
	"fig3.1": {
		"SNR std within a probe set is < 5 dB ~97.5% of the time",
		"per-network SNR spreads are far larger: each network holds links with diverse SNRs",
	},
	"fig4.1": {
		"most SNR values see several different optimal bit rates over time",
		"a clear winner exists only at very high SNR (above ~80 dB in the paper's units, always 48 Mbit/s)",
	},
	"fig4.2": {
		"rates needed to reach each coverage percentile shrink as table scope tightens: global ≥ network ≥ AP ≥ link",
		"per-link tables pick one rate that is ≥95% optimal for most SNRs in 802.11b/g",
		"network-specific tables can still need >2 rates for 95% coverage",
	},
	"fig4.3": {
		"802.11n needs more rates than b/g at every scope and percentile",
		"even per-link tables miss 95% single-rate coverage for some SNRs in n",
	},
	"fig4.4": {
		"link- and AP-specific training clearly beat network-specific and global",
		"network-specific ≈ global for b/g (individual networks are internally as diverse as the fleet)",
		"link-specific training is exactly optimal ~90% of the time in b/g, ~75% in n",
	},
	"fig4.5": {
		"median throughput rises with SNR, then levels off (b/g: ~30 dB); quartile spread largest on the steep segment",
	},
	"fig4.6": {
		"all four online strategies perform comparably, at 80-90% accuracy",
		"even keeping only the first probe per SNR is viable",
	},
	"tab4.1": {
		"first: low update rate, small memory; most-recent: high rate, small memory",
		"subsampled: moderate/moderate; all: high rate, large memory",
	},
	"fig5.1": {
		"ETX1: mean improvement 0.09-0.11, median 0.05-0.08; 13-20% of pairs see no improvement",
		"ETX2: much larger gains (mean 0.39-9.25, median 0.30-0.86)",
	},
	"fig5.2": {
		"link asymmetry exists but is moderate; does not change significantly with bit rate",
	},
	"fig5.3": {
		"at the five lowest rates, 30-40% of paths are one hop and ≥80% under three hops",
		"at the two highest rates, ~40% of paths exceed three hops",
	},
	"fig5.4": {
		"median improvement increases with path length",
		"maximum improvement decreases with path length (the biggest proportional wins are short paths)",
	},
	"fig5.5": {
		"mean improvement is roughly flat in network size; variability similar across sizes",
	},
	"fig6.1": {
		"hidden-triple fraction rises with bit rate, except 11 Mbit/s (DSSS) which sits below 6 Mbit/s",
		"median ≈15% at 1 Mbit/s with a 10% hearing threshold",
	},
	"fig6.2": {
		"mean range falls steadily as the rate rises, but the variance is large:",
		"some node pairs hear each other at a higher rate but not a lower one",
	},
	"sec6.3": {
		"indoor networks show more hidden triples (median ≈15% at 1M) than outdoor (≈5%)",
		"outdoor networks have larger size-normalized range",
	},
	"abl4.off": {
		"removing hidden per-link environment offsets collapses per-link training's advantage over global training",
	},
	"abl4.burst": {
		"removing interference bursts reduces how often a (link, SNR) cell's optimal rate churns over time",
	},
	"abl5.sym": {
		"removing all per-direction divergence collapses measured link asymmetry; the residual ETX2−ETX1 gap is due to squared link costs",
	},
	"abl6.t": {
		"results do not change significantly as the hearing threshold varies",
	},
	"ext4.topk": {
		"a per-link table's top 2-3 rates almost always contain the optimum, so probing restricted to them keeps coverage while slashing overhead (§4.5's proposal)",
	},
	"ext5.ett": {
		"expected-transmission-time routing with per-link rate choice beats every fixed-rate ETX scheme (the other metric §1 names)",
	},
	"ext6.mac": {
		"hidden triples suffer far larger contention losses than triples whose leaves carrier-sense each other (§6's motivating cost)",
	},
	"fig7.1": {
		"the majority of clients associate with exactly one AP; a heavy tail visits >50 (one >105)",
	},
	"fig7.2": {
		"~23% of clients connect for under two hours; ~60% stay the full 11 hours",
	},
	"fig7.3": {
		"indoor prevalence mean/median ≈0.07/0.02; outdoor ≈0.15/0.08",
	},
	"fig7.4": {
		"indoor persistence mean/median ≈19.4s/6.25s; outdoor ≈38.6s/25s",
	},
	"fig7.5": {
		"high-prevalence/high-persistence and low/low quadrants dominate; slow roamers (low prevalence, high persistence) nearly absent",
	},
}

// Preamble carries the run-specific facts the report's header states:
// where the dataset came from (Label), what it held (Sum), and how long
// the experiments took. Everything else in the report is a pure
// function of the results.
type Preamble struct {
	// Label is the dataset provenance line ("fleet.bin (streamed)",
	// "cache hit, synthesis skipped", ...).
	Label string
	// Sum summarizes the walked dataset.
	Sum *meshlab.StreamSummary
	// ExpDuration is the experiment wall time.
	ExpDuration time.Duration
}

// Markdown renders the full paper-vs-measured markdown report.
func Markdown(p Preamble, results []*meshlab.Result) string {
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	b.WriteString("Reproduction of every evaluation table and figure in *Measurement and\n")
	b.WriteString("Analysis of Real-World 802.11 Mesh Networks* (LaCurts, 2010), regenerated\n")
	b.WriteString("from the synthetic fleet substrate (see the meshlab package docs for the\n")
	b.WriteString("substitution rationale). Absolute values differ from the thesis — the substrate is a\n")
	b.WriteString("calibrated simulator, not 1407 production radios — but each artifact's\n")
	b.WriteString("*shape* (orderings, crossovers, rough factors) is the reproduction target\n")
	b.WriteString("and is noted per experiment.\n\n")
	fmt.Fprintf(&b, "- dataset: %s\n", p.Label)
	fmt.Fprintf(&b, "- seed: %d; probe duration %ds at %ds cadence; client snapshot %ds\n",
		p.Sum.Meta.Seed, p.Sum.Meta.ProbeDuration, p.Sum.Meta.ProbeInterval, p.Sum.Meta.ClientDuration)
	fmt.Fprintf(&b, "- networks: %d datasets (%d b/g, %d n); probe sets: %d\n",
		p.Sum.Networks, p.Sum.NetworksBG, p.Sum.NetworksN, p.Sum.ProbeSets)
	fmt.Fprintf(&b, "- experiment wall time: %v\n\n", p.ExpDuration.Round(time.Millisecond))
	b.WriteString("Regenerate with: `go run ./cmd/meshreport -seed <seed> -scale <scale> -out EXPERIMENTS.md`\n\n")

	for _, res := range results {
		fmt.Fprintf(&b, "## %s — %s\n\n", res.ID, res.Title)
		if claims := paperClaims[res.ID]; len(claims) > 0 {
			label := "Paper reports:"
			if strings.HasPrefix(res.ID, "abl") || strings.HasPrefix(res.ID, "ext") {
				label = "Expected (reproduction-defined artifact):"
			}
			b.WriteString(label + "\n")
			for _, cl := range claims {
				fmt.Fprintf(&b, "- %s\n", cl)
			}
			b.WriteString("\n")
		}
		b.WriteString("Measured:\n\n")
		writeMarkdownTable(&b, res.Header, res.Rows)
		for _, n := range res.Notes {
			fmt.Fprintf(&b, "> %s\n", n)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func writeMarkdownTable(b *strings.Builder, header []string, rows [][]string) {
	if len(header) == 0 {
		return
	}
	fmt.Fprintf(b, "| %s |\n", strings.Join(header, " | "))
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range rows {
		cells := make([]string, len(header))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		fmt.Fprintf(b, "| %s |\n", strings.Join(cells, " | "))
	}
	b.WriteString("\n")
}
