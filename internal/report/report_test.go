package report

import (
	"strings"
	"testing"
	"time"

	"meshlab"
)

// TestPaperClaimsCoverCoreArtifacts keeps the claim table in sync with
// the thesis's core figures (moved here from cmd/meshreport alongside
// the renderer).
func TestPaperClaimsCoverCoreArtifacts(t *testing.T) {
	for _, id := range []string{
		"fig3.1", "fig4.1", "fig4.2", "fig4.3", "fig4.4", "fig4.5", "fig4.6", "tab4.1",
		"fig5.1", "fig5.2", "fig5.3", "fig5.4", "fig5.5",
		"fig6.1", "fig6.2", "sec6.3",
		"fig7.1", "fig7.2", "fig7.3", "fig7.4", "fig7.5",
	} {
		if len(paperClaims[id]) == 0 {
			t.Errorf("no paper claims recorded for %s", id)
		}
	}
}

// TestMarkdownShape pins the structure the CLI and meshd both serve:
// the preamble lines, one "## id — title" section per result, the
// claims block, and a padded markdown table with short rows filled.
func TestMarkdownShape(t *testing.T) {
	sum := &meshlab.StreamSummary{
		Meta:     meshlab.Meta{Seed: 7, ProbeDuration: 900, ProbeInterval: 300, ClientDuration: 100},
		Networks: 3, NetworksBG: 2, NetworksN: 1, ProbeSets: 42,
	}
	results := []*meshlab.Result{
		{ID: "fig5.1", Title: "opportunistic gains", Header: []string{"a", "b"},
			Rows: [][]string{{"1", "2"}, {"3"}}, Notes: []string{"shape holds"}},
		{ID: "x.custom", Title: "no claims"},
	}
	md := Markdown(Preamble{Label: "unit.bin (streamed)", Sum: sum, ExpDuration: 1500 * time.Millisecond}, results)
	for _, want := range []string{
		"# EXPERIMENTS — paper vs. measured",
		"- dataset: unit.bin (streamed)\n",
		"- seed: 7; probe duration 900s at 300s cadence; client snapshot 100s\n",
		"- networks: 3 datasets (2 b/g, 1 n); probe sets: 42\n",
		"- experiment wall time: 1.5s\n",
		"## fig5.1 — opportunistic gains",
		"Paper reports:",
		"| a | b |\n| --- | --- |\n| 1 | 2 |\n| 3 |  |\n",
		"> shape holds\n",
		"## x.custom — no claims",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("rendered report missing %q:\n%s", want, md)
		}
	}
}
