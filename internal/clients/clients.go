// Package clients simulates the client population whose aggregate
// association logs back the thesis's mobility analysis (§7). The Meraki
// client data is unavailable, so a mixture model regenerates its reported
// structure:
//
//   - Residents are stationary clients connected for the whole snapshot.
//     Most stay on one home AP; a per-client "flappy" trait makes some
//     oscillate between the home AP and its nearest neighbors in short
//     bursts, the way real drivers chase marginal signal differences. This
//     produces the very small persistence medians the thesis reports
//     (seconds, not minutes) while prevalence at the home AP stays high.
//   - Visitors arrive during the snapshot and stay for an
//     exponentially-distributed fraction of it, mostly on one AP.
//   - Walkers move through the network by random waypoints, associating
//     with the nearest AP as they go; in large networks they visit dozens
//     of APs over 11 hours (the thesis saw clients with >50, one >105).
//
// Indoor networks are denser, so indoor parameters flap more and dwell
// shorter than outdoor ones — the mechanism behind Figures 7.3 and 7.4's
// indoor/outdoor separation.
package clients

import (
	"math"
	"sort"

	"meshlab/internal/dataset"
	"meshlab/internal/rng"
	"meshlab/internal/topology"
)

// Config controls a client simulation. Zero fields take defaults matching
// the thesis's snapshot.
type Config struct {
	// Duration is the snapshot length in seconds (default 39600: 11 h).
	Duration float64
	// ClientsPerAP scales the population (default 1.0 ≈ one client per
	// AP on average).
	ClientsPerAP float64
	// ResidentFrac, VisitorFrac, WalkerFrac set the mixture (defaults
	// 0.52 / 0.40 / 0.08; they are renormalized if they do not sum
	// to 1).
	ResidentFrac, VisitorFrac, WalkerFrac float64
}

// Normalized returns the config with the package defaults applied, so
// two configs can be compared for effective equality.
func (c Config) Normalized() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 39600
	}
	if c.ClientsPerAP <= 0 {
		c.ClientsPerAP = 1.0
	}
	if c.ResidentFrac == 0 && c.VisitorFrac == 0 && c.WalkerFrac == 0 {
		c.ResidentFrac, c.VisitorFrac, c.WalkerFrac = 0.52, 0.40, 0.08
	}
	return c
}

// behavior holds the environment-dependent dwell/flap parameters.
type behavior struct {
	stableMean  float64 // mean stable dwell at the home AP, seconds
	flapDwell   float64 // mean dwell during a flap episode, seconds
	flappyFrac  float64 // fraction of clients with the flappy trait
	visitorMean float64 // mean visitor stay, seconds
}

func behaviorFor(env topology.EnvClass) behavior {
	if env == topology.EnvOutdoor {
		return behavior{stableMean: 2700, flapDwell: 28, flappyFrac: 0.25, visitorMean: 6300}
	}
	// Indoor and mixed networks behave like dense indoor deployments.
	return behavior{stableMean: 1200, flapDwell: 7, flappyFrac: 0.38, visitorMean: 5400}
}

// Simulate produces the aggregate client data for one network.
func Simulate(r *rng.Stream, topo *topology.Network, cfg Config) *dataset.ClientData {
	cfg = cfg.withDefaults()
	beh := behaviorFor(topo.Env)
	d := int32(cfg.Duration)

	num := int(math.Round(float64(topo.Size()) * cfg.ClientsPerAP * (0.6 + r.Float64()*0.8)))
	if num < 2 {
		num = 2
	}

	cd := &dataset.ClientData{
		Network:  topo.Name,
		Env:      topo.Env.String(),
		Duration: d,
		NumAPs:   topo.Size(),
	}
	weights := []float64{cfg.ResidentFrac, cfg.VisitorFrac, cfg.WalkerFrac}
	for id := 0; id < num; id++ {
		cr := r.SplitN("client", id)
		var assocs []dataset.Assoc
		switch cr.Choice(weights) {
		case 0:
			assocs = resident(cr, topo, beh, 0, d)
		case 1:
			start := int32(cr.Float64() * cfg.Duration * 0.9)
			stay := int32(cr.ExpFloat64() * beh.visitorMean)
			if stay < 300 {
				stay = 300
			}
			end := start + stay
			if end > d {
				end = d
			}
			assocs = resident(cr, topo, beh, start, end)
		default:
			assocs = walker(cr, topo, 0, d)
		}
		if len(assocs) == 0 {
			continue
		}
		cd.Clients = append(cd.Clients, dataset.ClientLog{ID: id, Assocs: assocs})
	}
	return cd
}

// nearestAPs returns AP indices sorted by distance from (x, y).
func nearestAPs(topo *topology.Network, x, y float64) []int {
	idx := make([]int, topo.Size())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da := math.Hypot(topo.APs[idx[a]].X-x, topo.APs[idx[a]].Y-y)
		db := math.Hypot(topo.APs[idx[b]].X-x, topo.APs[idx[b]].Y-y)
		if da != db {
			return da < db
		}
		return idx[a] < idx[b]
	})
	return idx
}

// nearestAP returns the index of the AP closest to (x, y) by linear scan;
// walkers call it every movement step, so it must not sort.
func nearestAP(topo *topology.Network, x, y float64) int {
	best, bestD := 0, math.Inf(1)
	for i, ap := range topo.APs {
		if d := math.Hypot(ap.X-x, ap.Y-y); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// resident emits a stationary client's associations over [start, end):
// long dwells at a home AP, interleaved (for flappy clients) with bursts
// of rapid switching among the home AP and its nearest neighbors.
func resident(r *rng.Stream, topo *topology.Network, beh behavior, start, end int32) []dataset.Assoc {
	if end-start < 1 {
		return nil
	}
	home := r.Intn(topo.Size())
	near := nearestAPs(topo, topo.APs[home].X, topo.APs[home].Y)
	// near[0] is home itself; candidates are the closest two others.
	var nbrs []int
	for _, i := range near[1:] {
		nbrs = append(nbrs, i)
		if len(nbrs) == 2 {
			break
		}
	}
	flappy := r.Bool(beh.flappyFrac) && len(nbrs) > 0

	var seq []segment
	t := float64(start)
	endF := float64(end)
	for t < endF {
		dwell := r.ExpFloat64() * beh.stableMean
		if dwell < 30 {
			dwell = 30
		}
		seq = append(seq, segment{ap: home, dur: dwell})
		t += dwell
		if !flappy || t >= endF {
			continue
		}
		// Flap episode: a handful of rapid switches.
		k := 2 + r.Intn(8)
		for i := 0; i < k && t < endF; i++ {
			ap := nbrs[r.Intn(len(nbrs))]
			if i%2 == 1 {
				ap = home
			}
			fd := r.ExpFloat64() * beh.flapDwell
			if fd < 1 {
				fd = 1
			}
			seq = append(seq, segment{ap: ap, dur: fd})
			t += fd
		}
	}
	return quantize(seq, start, end)
}

// walker emits a mobile client's associations: random-waypoint movement at
// walking speed, associating with the nearest AP (with a small hysteresis
// so ties do not cause degenerate flapping).
func walker(r *rng.Stream, topo *topology.Network, start, end int32) []dataset.Assoc {
	// Bounding box of the network.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, ap := range topo.APs {
		minX, maxX = math.Min(minX, ap.X), math.Max(maxX, ap.X)
		minY, maxY = math.Min(minY, ap.Y), math.Max(maxY, ap.Y)
	}
	x := minX + r.Float64()*(maxX-minX)
	y := minY + r.Float64()*(maxY-minY)
	wx := minX + r.Float64()*(maxX-minX)
	wy := minY + r.Float64()*(maxY-minY)
	speed := 0.5 + r.Float64() // m/s

	const step = 10.0 // seconds per movement step
	cur := nearestAP(topo, x, y)
	var seq []segment
	dwell := 0.0
	for t := float64(start); t < float64(end); t += step {
		// Move toward the waypoint; pick a new one when reached.
		dx, dy := wx-x, wy-y
		dist := math.Hypot(dx, dy)
		stepLen := speed * step
		if dist <= stepLen {
			x, y = wx, wy
			wx = minX + r.Float64()*(maxX-minX)
			wy = minY + r.Float64()*(maxY-minY)
			// Pause at the waypoint for a while, as people do.
			pause := r.ExpFloat64() * 300
			dwell += pause
			t += pause
		} else {
			x += dx / dist * stepLen
			y += dy / dist * stepLen
		}
		next := nearestAP(topo, x, y)
		dwell += step
		if next != cur {
			// Hysteresis: switch only if meaningfully closer.
			dc := math.Hypot(topo.APs[cur].X-x, topo.APs[cur].Y-y)
			dn := math.Hypot(topo.APs[next].X-x, topo.APs[next].Y-y)
			if dn < dc-5 {
				seq = append(seq, segment{ap: cur, dur: dwell})
				cur = next
				dwell = 0
			}
		}
	}
	if dwell > 0 {
		seq = append(seq, segment{ap: cur, dur: dwell})
	}
	return quantize(seq, start, end)
}

// segment is an (AP, float-duration) step before quantization.
type segment struct {
	ap  int
	dur float64
}

// quantize converts a segment sequence into ordered, non-overlapping,
// merged integer-second association intervals within [start, end).
func quantize(seq []segment, start, end int32) []dataset.Assoc {
	var out []dataset.Assoc
	t := float64(start)
	for _, s := range seq {
		if t >= float64(end) {
			break
		}
		a := int32(math.Round(t))
		t += s.dur
		b := int32(math.Round(t))
		if b > end {
			b = end
		}
		if b <= a {
			continue
		}
		if n := len(out); n > 0 && out[n-1].AP == int32(s.ap) && out[n-1].End == a {
			out[n-1].End = b // merge adjacent same-AP intervals
			continue
		}
		if n := len(out); n > 0 && a < out[n-1].End {
			a = out[n-1].End
			if b <= a {
				continue
			}
		}
		out = append(out, dataset.Assoc{AP: int32(s.ap), Start: a, End: b})
	}
	return out
}

// SimulateFleet runs Simulate over every network of a topology fleet.
func SimulateFleet(r *rng.Stream, fleet *topology.Fleet, cfg Config) []*dataset.ClientData {
	var out []*dataset.ClientData
	for i, topo := range fleet.Networks {
		out = append(out, Simulate(r.SplitN("net", i), topo, cfg))
	}
	return out
}
