package clients

import (
	"testing"

	"meshlab/internal/dataset"
	"meshlab/internal/rng"
	"meshlab/internal/stats"
	"meshlab/internal/topology"
)

func simNet(t testing.TB, seed uint64, size int, env topology.EnvClass, cfg Config) *dataset.ClientData {
	if t != nil {
		t.Helper()
	}
	topo, err := topology.Generate(rng.New(seed), topology.Config{
		Name: "c", Size: size, Env: env,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Simulate(rng.New(seed).Split("clients"), topo, cfg)
}

func TestSimulateInvariants(t *testing.T) {
	cd := simNet(t, 1, 12, topology.EnvIndoor, Config{})
	if len(cd.Clients) < 2 {
		t.Fatalf("only %d clients", len(cd.Clients))
	}
	f := &dataset.Fleet{Clients: []*dataset.ClientData{cd}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if cd.Duration != 39600 {
		t.Fatalf("default duration %d", cd.Duration)
	}
}

func TestSimulateDeterminism(t *testing.T) {
	a := simNet(t, 2, 10, topology.EnvIndoor, Config{})
	b := simNet(t, 2, 10, topology.EnvIndoor, Config{})
	if len(a.Clients) != len(b.Clients) {
		t.Fatalf("client counts differ")
	}
	for i := range a.Clients {
		if len(a.Clients[i].Assocs) != len(b.Clients[i].Assocs) {
			t.Fatalf("client %d assoc counts differ", i)
		}
		for j := range a.Clients[i].Assocs {
			if a.Clients[i].Assocs[j] != b.Clients[i].Assocs[j] {
				t.Fatalf("client %d assoc %d differs", i, j)
			}
		}
	}
}

func apsVisited(cl dataset.ClientLog) int {
	seen := map[int32]bool{}
	for _, a := range cl.Assocs {
		seen[a.AP] = true
	}
	return len(seen)
}

func TestMajorityVisitOneAP(t *testing.T) {
	// Figure 7.1: the majority of clients associate with only one AP.
	one, more := 0, 0
	for seed := uint64(0); seed < 8; seed++ {
		cd := simNet(t, seed, 10, topology.EnvIndoor, Config{})
		for _, cl := range cd.Clients {
			if apsVisited(cl) == 1 {
				one++
			} else {
				more++
			}
		}
	}
	if one <= more {
		t.Fatalf("one-AP clients %d should outnumber multi-AP clients %d", one, more)
	}
	if more == 0 {
		t.Fatal("some clients must visit multiple APs")
	}
}

func TestWalkersVisitManyAPsInLargeNetworks(t *testing.T) {
	topo, _ := topology.Generate(rng.New(7), topology.Config{
		Name: "big", Size: 150, Env: topology.EnvIndoor,
	})
	cfg := Config{ResidentFrac: 0, VisitorFrac: 0, WalkerFrac: 1}
	cd := Simulate(rng.New(7).Split("clients"), topo, cfg)
	max := 0
	for _, cl := range cd.Clients {
		if v := apsVisited(cl); v > max {
			max = v
		}
	}
	// The thesis saw clients visiting >50 APs in an 11-hour window.
	if max < 30 {
		t.Fatalf("busiest walker visited only %d APs in a 150-AP network", max)
	}
}

func connectionLength(cl dataset.ClientLog) float64 {
	if len(cl.Assocs) == 0 {
		return 0
	}
	return float64(cl.Assocs[len(cl.Assocs)-1].End - cl.Assocs[0].Start)
}

func TestConnectionLengthMix(t *testing.T) {
	// Figure 7.2: ~60% of clients stay connected the whole 11 hours and
	// a sizable minority stays under ~2 hours.
	var full, short, total int
	for seed := uint64(0); seed < 10; seed++ {
		cd := simNet(t, seed, 12, topology.EnvIndoor, Config{})
		for _, cl := range cd.Clients {
			total++
			l := connectionLength(cl)
			if l >= float64(cd.Duration)*0.95 {
				full++
			}
			if l < 7200 {
				short++
			}
		}
	}
	fullFrac := float64(full) / float64(total)
	shortFrac := float64(short) / float64(total)
	if fullFrac < 0.4 || fullFrac > 0.8 {
		t.Fatalf("full-duration fraction %v, want ≈0.6", fullFrac)
	}
	if shortFrac < 0.1 || shortFrac > 0.45 {
		t.Fatalf("short-connection fraction %v, want ≈0.23", shortFrac)
	}
}

func switchDwells(cd *dataset.ClientData) []float64 {
	var out []float64
	for _, cl := range cd.Clients {
		for _, a := range cl.Assocs {
			out = append(out, a.Duration())
		}
	}
	return out
}

func TestIndoorSwitchesFasterThanOutdoor(t *testing.T) {
	// Figures 7.3/7.4: indoor clients flap more and dwell shorter.
	var in, out []float64
	for seed := uint64(0); seed < 6; seed++ {
		in = append(in, switchDwells(simNet(t, seed, 12, topology.EnvIndoor, Config{}))...)
		out = append(out, switchDwells(simNet(t, seed+100, 12, topology.EnvOutdoor, Config{}))...)
	}
	mi, mo := stats.Median(in), stats.Median(out)
	if mi >= mo {
		t.Fatalf("indoor median dwell %v s should be below outdoor %v s", mi, mo)
	}
}

func TestVisitorsBoundedByDuration(t *testing.T) {
	cfg := Config{ResidentFrac: 0, VisitorFrac: 1, WalkerFrac: 0}
	cd := simNet(t, 11, 8, topology.EnvIndoor, cfg)
	for _, cl := range cd.Clients {
		if cl.Assocs[len(cl.Assocs)-1].End > cd.Duration {
			t.Fatal("association extends past the snapshot")
		}
	}
}

func TestQuantizeMergesAdjacent(t *testing.T) {
	seq := []segment{{ap: 1, dur: 10}, {ap: 1, dur: 5}, {ap: 2, dur: 3}}
	out := quantize(seq, 0, 100)
	if len(out) != 2 {
		t.Fatalf("got %d intervals, want 2 (adjacent same-AP merged): %+v", len(out), out)
	}
	if out[0].AP != 1 || out[0].Start != 0 || out[0].End != 15 {
		t.Fatalf("merged interval wrong: %+v", out[0])
	}
}

func TestQuantizeClampsToEnd(t *testing.T) {
	out := quantize([]segment{{ap: 0, dur: 1000}}, 0, 50)
	if len(out) != 1 || out[0].End != 50 {
		t.Fatalf("clamping wrong: %+v", out)
	}
}

func TestQuantizeDropsZeroLength(t *testing.T) {
	out := quantize([]segment{{ap: 0, dur: 0.2}, {ap: 1, dur: 60}}, 0, 100)
	for _, a := range out {
		if a.End <= a.Start {
			t.Fatalf("zero-length interval survived: %+v", a)
		}
	}
}

func TestSimulateFleet(t *testing.T) {
	fleet, _ := topology.GenerateFleet(rng.New(3), topology.FleetConfig{
		NumNetworks: 4, NumIndoor: 2, NumOutdoor: 1, NumMixed: 1,
		NumN: 1, NumBoth: 0, MinSize: 3, MaxSize: 10,
		SizeLogMean: 1.5, SizeLogStd: 0.4,
	})
	cds := SimulateFleet(rng.New(3).Split("clients"), fleet, Config{})
	if len(cds) != 4 {
		t.Fatalf("got %d client datasets", len(cds))
	}
	for i, cd := range cds {
		if cd.Network != fleet.Networks[i].Name {
			t.Fatal("network names misaligned")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Duration != 39600 || c.ClientsPerAP != 1.0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.ResidentFrac+c.VisitorFrac+c.WalkerFrac != 1.0 {
		t.Fatalf("mixture does not sum to 1: %+v", c)
	}
}

func BenchmarkSimulate50(b *testing.B) {
	topo, _ := topology.Generate(rng.New(1), topology.Config{
		Name: "b", Size: 50, Env: topology.EnvIndoor,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Simulate(rng.New(uint64(i)), topo, Config{})
	}
}
