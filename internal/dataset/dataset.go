// Package dataset defines the schema of the synthetic Meraki-style
// measurement data (§3 of the thesis) and its persistence format.
//
// Two kinds of data exist, mirroring the thesis:
//
//   - Probe data: for each directed AP→AP link, a time series of probe
//     sets. A probe set aggregates ~20 broadcast probes per bit rate over an
//     800-second sliding window and carries, per rate, the mean loss rate,
//     plus the median reported SNR of the window (§3.1).
//   - Aggregate client data: per-client association history over an 11-hour
//     window, at effectively 5-minute reporting granularity (§3.2).
//
// The on-disk format is JSON lines: a meta record, then one record per
// network, per directed link, and per network's client log. JSON keeps the
// format inspectable; the records use short field names and compact value
// types because fleets contain millions of probe sets.
package dataset

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"meshlab/internal/phy"
)

// Obs is one (bit rate, loss rate) observation within a probe set. The rate
// is an index into the band's rate list to keep the record small.
type Obs struct {
	// RateIdx indexes phy.Band.Rates of the network's band.
	RateIdx uint8 `json:"r"`
	// Loss is the mean fraction of probes lost at this rate in the
	// window, quantized by the probe count (1/20 steps by default).
	Loss float32 `json:"l"`
}

// ProbeSet is the aggregate of one reporting window on one directed link.
type ProbeSet struct {
	// T is seconds since collection start.
	T int32 `json:"t"`
	// SNR is the median reported SNR of the window in integer dB, as an
	// Atheros/MadWiFi radio would log it.
	SNR int16 `json:"s"`
	// SNRStd is the standard deviation of the reported SNR values within
	// the window (Figure 3.1's quantity).
	SNRStd float32 `json:"d"`
	// Obs holds one entry per probed bit rate.
	Obs []Obs `json:"o"`
}

// Link is the probe-set time series of one directed AP→AP link.
type Link struct {
	// From and To are AP indices within the network.
	From int `json:"f"`
	To   int `json:"to"`
	// Sets is ordered by increasing T.
	Sets []ProbeSet `json:"sets"`
}

// APInfo describes one access point.
type APInfo struct {
	Name    string  `json:"name"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Outdoor bool    `json:"outdoor,omitempty"`
}

// NetworkInfo is a network's identity and layout.
type NetworkInfo struct {
	// Name identifies the network within the fleet.
	Name string `json:"name"`
	// Band is "bg" or "n". A dual-radio network appears once per band.
	Band string `json:"band"`
	// Env is "indoor", "outdoor", or "mixed".
	Env string `json:"env"`
	// Spacing is the layout's nearest-neighbor scale in meters.
	Spacing float64 `json:"spacing"`
	// APs lists the access points; indices are the AP IDs used in Link.
	APs []APInfo `json:"aps"`
}

// NetworkData is all probe data collected from one network on one band.
type NetworkData struct {
	Info  NetworkInfo
	Links []*Link
}

// NumAPs returns the AP count.
func (nd *NetworkData) NumAPs() int { return len(nd.Info.APs) }

// Band resolves the network's phy.Band.
func (nd *NetworkData) Band() (phy.Band, error) { return phy.BandByName(nd.Info.Band) }

// Assoc is one client↔AP association interval, in seconds since the client
// snapshot start. End is exclusive.
type Assoc struct {
	AP    int32 `json:"ap"`
	Start int32 `json:"s"`
	End   int32 `json:"e"`
}

// Duration returns the association's length in seconds.
func (a Assoc) Duration() float64 { return float64(a.End - a.Start) }

// ClientLog is one client's association history in one network.
type ClientLog struct {
	// ID is unique within the network's client data.
	ID int `json:"id"`
	// Assocs is ordered by Start and non-overlapping.
	Assocs []Assoc `json:"a"`
}

// ClientData is the aggregate client snapshot of one network.
type ClientData struct {
	// Network names the network the clients were observed in.
	Network string `json:"network"`
	// Env is the network's environment class.
	Env string `json:"env"`
	// Duration is the snapshot length in seconds (thesis: 11 h).
	Duration int32 `json:"duration"`
	// NumAPs is the network size, for cross-checks.
	NumAPs int `json:"numAPs"`
	// Clients holds each observed client's history.
	Clients []ClientLog `json:"clients"`
}

// Meta describes how a fleet dataset was generated.
type Meta struct {
	// Seed is the root RNG seed the fleet derives from.
	Seed uint64 `json:"seed"`
	// ProbeDuration and ProbeInterval are the probe collection length
	// and reporting interval in seconds.
	ProbeDuration int32 `json:"probeDuration"`
	ProbeInterval int32 `json:"probeInterval"`
	// ClientDuration is the client snapshot length in seconds.
	ClientDuration int32 `json:"clientDuration"`
}

// Fleet is a full synthetic dataset: probe data and client data for every
// network.
type Fleet struct {
	Meta     Meta
	Networks []*NetworkData
	Clients  []*ClientData
}

// ByBand returns the networks collected on the named band.
func (f *Fleet) ByBand(band string) []*NetworkData {
	var out []*NetworkData
	for _, n := range f.Networks {
		if n.Info.Band == band {
			out = append(out, n)
		}
	}
	return out
}

// NumProbeSets returns the total probe sets across all links and networks.
func (f *Fleet) NumProbeSets() int {
	total := 0
	for _, n := range f.Networks {
		for _, l := range n.Links {
			total += len(l.Sets)
		}
	}
	return total
}

// EachProbeSet calls fn for every probe set of every network on the given
// band ("" means all bands).
func (f *Fleet) EachProbeSet(band string, fn func(n *NetworkData, l *Link, ps *ProbeSet)) {
	for _, n := range f.Networks {
		if band != "" && n.Info.Band != band {
			continue
		}
		for _, l := range n.Links {
			for i := range l.Sets {
				fn(n, l, &l.Sets[i])
			}
		}
	}
}

// record is the JSON-lines envelope.
type record struct {
	Kind string `json:"kind"`

	Meta    *Meta        `json:"meta,omitempty"`
	Info    *NetworkInfo `json:"info,omitempty"`
	Net     string       `json:"net,omitempty"`
	Band    string       `json:"band,omitempty"`
	Link    *Link        `json:"link,omitempty"`
	Clients *ClientData  `json:"clients,omitempty"`
}

// Write serializes the fleet as JSON lines.
func Write(w io.Writer, f *Fleet) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(record{Kind: "meta", Meta: &f.Meta}); err != nil {
		return fmt.Errorf("dataset: write meta: %w", err)
	}
	for _, n := range f.Networks {
		info := n.Info
		if err := enc.Encode(record{Kind: "network", Info: &info}); err != nil {
			return fmt.Errorf("dataset: write network %s: %w", n.Info.Name, err)
		}
		for _, l := range n.Links {
			if err := enc.Encode(record{Kind: "link", Net: n.Info.Name, Band: n.Info.Band, Link: l}); err != nil {
				return fmt.Errorf("dataset: write link %s %d->%d: %w", n.Info.Name, l.From, l.To, err)
			}
		}
	}
	for _, c := range f.Clients {
		if err := enc.Encode(record{Kind: "clients", Clients: c}); err != nil {
			return fmt.Errorf("dataset: write clients %s: %w", c.Network, err)
		}
	}
	return bw.Flush()
}

// Read parses a fleet from the JSON-lines format produced by Write.
func Read(r io.Reader) (*Fleet, error) {
	f := &Fleet{}
	nets := make(map[string]*NetworkData) // keyed by name+band
	key := func(name, band string) string { return name + "/" + band }
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	sawMeta := false
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		switch rec.Kind {
		case "meta":
			if rec.Meta == nil {
				return nil, fmt.Errorf("dataset: line %d: meta record without meta", line)
			}
			f.Meta = *rec.Meta
			sawMeta = true
		case "network":
			if rec.Info == nil {
				return nil, fmt.Errorf("dataset: line %d: network record without info", line)
			}
			nd := &NetworkData{Info: *rec.Info}
			nets[key(nd.Info.Name, nd.Info.Band)] = nd
			f.Networks = append(f.Networks, nd)
		case "link":
			nd, ok := nets[key(rec.Net, rec.Band)]
			if !ok {
				return nil, fmt.Errorf("dataset: line %d: link for unknown network %s/%s", line, rec.Net, rec.Band)
			}
			if rec.Link == nil {
				return nil, fmt.Errorf("dataset: line %d: link record without link", line)
			}
			nd.Links = append(nd.Links, rec.Link)
		case "clients":
			if rec.Clients == nil {
				return nil, fmt.Errorf("dataset: line %d: clients record without clients", line)
			}
			f.Clients = append(f.Clients, rec.Clients)
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown record kind %q", line, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	if !sawMeta {
		return nil, errors.New("dataset: missing meta record")
	}
	return f, nil
}

// Validate checks structural invariants: known bands, in-range AP and rate
// indices, ordered probe sets, loss rates in [0,1], and ordered,
// non-overlapping association intervals.
func (f *Fleet) Validate() error {
	for _, n := range f.Networks {
		band, err := n.Band()
		if err != nil {
			return fmt.Errorf("network %s: %w", n.Info.Name, err)
		}
		for _, l := range n.Links {
			if l.From < 0 || l.From >= n.NumAPs() || l.To < 0 || l.To >= n.NumAPs() || l.From == l.To {
				return fmt.Errorf("network %s: bad link %d->%d", n.Info.Name, l.From, l.To)
			}
			prevT := int32(-1)
			for _, ps := range l.Sets {
				if ps.T <= prevT {
					return fmt.Errorf("network %s link %d->%d: probe sets not strictly ordered", n.Info.Name, l.From, l.To)
				}
				prevT = ps.T
				for _, o := range ps.Obs {
					if int(o.RateIdx) >= len(band.Rates) {
						return fmt.Errorf("network %s: rate index %d out of range", n.Info.Name, o.RateIdx)
					}
					if o.Loss < 0 || o.Loss > 1 {
						return fmt.Errorf("network %s: loss %v out of range", n.Info.Name, o.Loss)
					}
				}
			}
		}
	}
	for _, c := range f.Clients {
		for _, cl := range c.Clients {
			prevEnd := int32(0)
			for _, a := range cl.Assocs {
				if a.Start < prevEnd || a.End <= a.Start {
					return fmt.Errorf("clients %s #%d: bad association [%d,%d)", c.Network, cl.ID, a.Start, a.End)
				}
				if a.End > c.Duration {
					return fmt.Errorf("clients %s #%d: association past snapshot end", c.Network, cl.ID)
				}
				if int(a.AP) < 0 || int(a.AP) >= c.NumAPs {
					return fmt.Errorf("clients %s #%d: AP %d out of range", c.Network, cl.ID, a.AP)
				}
				prevEnd = a.End
			}
		}
	}
	return nil
}
