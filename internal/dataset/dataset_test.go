package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleFleet() *Fleet {
	return &Fleet{
		Meta: Meta{Seed: 42, ProbeDuration: 86400, ProbeInterval: 300, ClientDuration: 39600},
		Networks: []*NetworkData{
			{
				Info: NetworkInfo{
					Name: "net000", Band: "bg", Env: "indoor", Spacing: 30,
					APs: []APInfo{{Name: "a", X: 0, Y: 0}, {Name: "b", X: 30, Y: 0}, {Name: "c", X: 0, Y: 30}},
				},
				Links: []*Link{
					{From: 0, To: 1, Sets: []ProbeSet{
						{T: 300, SNR: 25, SNRStd: 1.5, Obs: []Obs{{RateIdx: 0, Loss: 0}, {RateIdx: 4, Loss: 0.25}}},
						{T: 600, SNR: 26, SNRStd: 1.2, Obs: []Obs{{RateIdx: 0, Loss: 0.05}}},
					}},
					{From: 1, To: 0, Sets: []ProbeSet{
						{T: 300, SNR: 24, SNRStd: 2.0, Obs: []Obs{{RateIdx: 0, Loss: 0.1}}},
					}},
				},
			},
			{
				Info: NetworkInfo{
					Name: "net001", Band: "n", Env: "outdoor", Spacing: 90,
					APs: []APInfo{{Name: "x", Outdoor: true}, {Name: "y", X: 90, Outdoor: true}},
				},
				Links: []*Link{
					{From: 0, To: 1, Sets: []ProbeSet{
						{T: 300, SNR: 18, SNRStd: 0.9, Obs: []Obs{{RateIdx: 15, Loss: 0.8}}},
					}},
				},
			},
		},
		Clients: []*ClientData{
			{
				Network: "net000", Env: "indoor", Duration: 39600, NumAPs: 3,
				Clients: []ClientLog{
					{ID: 0, Assocs: []Assoc{{AP: 0, Start: 0, End: 39600}}},
					{ID: 1, Assocs: []Assoc{{AP: 1, Start: 100, End: 500}, {AP: 2, Start: 500, End: 900}}},
				},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFleet()
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Meta, got.Meta) {
		t.Fatalf("meta mismatch: %+v vs %+v", f.Meta, got.Meta)
	}
	if len(got.Networks) != 2 || len(got.Clients) != 1 {
		t.Fatalf("counts: %d networks, %d clients", len(got.Networks), len(got.Clients))
	}
	if !reflect.DeepEqual(f.Networks[0].Info, got.Networks[0].Info) {
		t.Fatal("network info mismatch")
	}
	if !reflect.DeepEqual(f.Networks[0].Links[0].Sets, got.Networks[0].Links[0].Sets) {
		t.Fatal("probe sets mismatch")
	}
	if !reflect.DeepEqual(f.Clients[0].Clients, got.Clients[0].Clients) {
		t.Fatal("clients mismatch")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no meta":      `{"kind":"network","info":{"name":"n","band":"bg"}}`,
		"bad json":     "{nope",
		"unknown kind": `{"kind":"wat"}`,
		"orphan link":  `{"kind":"meta","meta":{}}` + "\n" + `{"kind":"link","net":"x","band":"bg","link":{"f":0,"to":1}}`,
		"meta nil":     `{"kind":"meta"}`,
		"network nil":  `{"kind":"meta","meta":{}}` + "\n" + `{"kind":"network"}`,
		"link nil":     `{"kind":"meta","meta":{}}` + "\n" + `{"kind":"network","info":{"name":"x","band":"bg"}}` + "\n" + `{"kind":"link","net":"x","band":"bg"}`,
		"clients nil":  `{"kind":"meta","meta":{}}` + "\n" + `{"kind":"clients"}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	in := `{"kind":"meta","meta":{"seed":1}}` + "\n\n"
	f, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta.Seed != 1 {
		t.Fatal("meta not parsed")
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleFleet().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatches(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Fleet)
	}{
		{"bad band", func(f *Fleet) { f.Networks[0].Info.Band = "ac" }},
		{"self link", func(f *Fleet) { f.Networks[0].Links[0].To = 0 }},
		{"ap out of range", func(f *Fleet) { f.Networks[0].Links[0].To = 99 }},
		{"unordered sets", func(f *Fleet) { f.Networks[0].Links[0].Sets[1].T = 300 }},
		{"rate out of range", func(f *Fleet) { f.Networks[0].Links[0].Sets[0].Obs[0].RateIdx = 200 }},
		{"loss out of range", func(f *Fleet) { f.Networks[0].Links[0].Sets[0].Obs[0].Loss = 1.5 }},
		{"overlapping assoc", func(f *Fleet) { f.Clients[0].Clients[1].Assocs[1].Start = 400 }},
		{"empty assoc", func(f *Fleet) { f.Clients[0].Clients[0].Assocs[0].End = 0 }},
		{"assoc past end", func(f *Fleet) { f.Clients[0].Clients[0].Assocs[0].End = 99999 }},
		{"assoc bad AP", func(f *Fleet) { f.Clients[0].Clients[0].Assocs[0].AP = 7 }},
	}
	for _, m := range mutations {
		f := sampleFleet()
		m.mut(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: Validate did not catch the corruption", m.name)
		}
	}
}

func TestByBand(t *testing.T) {
	f := sampleFleet()
	if got := f.ByBand("bg"); len(got) != 1 || got[0].Info.Name != "net000" {
		t.Fatalf("ByBand(bg) = %v", got)
	}
	if got := f.ByBand("n"); len(got) != 1 {
		t.Fatalf("ByBand(n) returned %d", len(got))
	}
	if got := f.ByBand("ac"); got != nil {
		t.Fatalf("ByBand(ac) should be nil")
	}
}

func TestNumProbeSets(t *testing.T) {
	if got := sampleFleet().NumProbeSets(); got != 4 {
		t.Fatalf("NumProbeSets = %d, want 4", got)
	}
}

func TestEachProbeSet(t *testing.T) {
	f := sampleFleet()
	all, bg := 0, 0
	f.EachProbeSet("", func(n *NetworkData, l *Link, ps *ProbeSet) { all++ })
	f.EachProbeSet("bg", func(n *NetworkData, l *Link, ps *ProbeSet) {
		bg++
		if n.Info.Band != "bg" {
			t.Fatal("band filter leaked")
		}
	})
	if all != 4 || bg != 3 {
		t.Fatalf("all=%d bg=%d", all, bg)
	}
}

func TestAssocDuration(t *testing.T) {
	a := Assoc{AP: 0, Start: 100, End: 400}
	if a.Duration() != 300 {
		t.Fatalf("Duration = %v", a.Duration())
	}
}

func TestBandResolution(t *testing.T) {
	f := sampleFleet()
	b, err := f.Networks[0].Band()
	if err != nil || b.Name != "bg" {
		t.Fatalf("Band() = %v, %v", b.Name, err)
	}
	if f.Networks[0].NumAPs() != 3 {
		t.Fatalf("NumAPs = %d", f.Networks[0].NumAPs())
	}
}

func BenchmarkWriteRead(b *testing.B) {
	f := sampleFleet()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, f); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
