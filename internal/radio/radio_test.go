package radio

import (
	"math"
	"testing"

	"meshlab/internal/phy"
	"meshlab/internal/rng"
	"meshlab/internal/stats"
)

func TestMeanSNRDecreasesWithDistance(t *testing.T) {
	p := DefaultParams(Indoor)
	prev := math.Inf(1)
	for d := 1.0; d <= 200; d *= 2 {
		s := p.MeanSNR(d)
		if s >= prev {
			t.Fatalf("SNR not decreasing at %v m", d)
		}
		prev = s
	}
}

func TestMeanSNRClampsBelowOneMeter(t *testing.T) {
	p := DefaultParams(Indoor)
	if p.MeanSNR(0.01) != p.MeanSNR(1) {
		t.Fatal("distances below 1 m should clamp to the reference")
	}
}

func TestIndoorHarsherThanOutdoor(t *testing.T) {
	in, out := DefaultParams(Indoor), DefaultParams(Outdoor)
	if in.PathLossExp <= out.PathLossExp {
		t.Fatal("indoor path loss exponent should exceed outdoor")
	}
	if in.MeanSNR(50) >= out.MeanSNR(50) {
		t.Fatal("indoor SNR at 50 m should be below outdoor")
	}
}

func TestPairDeterminism(t *testing.T) {
	mk := func() *Pair { return NewPair(rng.New(99), 30, DefaultParams(Indoor)) }
	a, b := mk(), mk()
	if a.Fwd.MeanSNR() != b.Fwd.MeanSNR() || a.Rev.MeanSNR() != b.Rev.MeanSNR() {
		t.Fatal("pairs from identical seeds differ")
	}
	for i := 0; i < 50; i++ {
		a.Fwd.Advance(40)
		b.Fwd.Advance(40)
		if a.Fwd.EffectiveSNR() != b.Fwd.EffectiveSNR() {
			t.Fatalf("channel dynamics diverged at step %d", i)
		}
	}
}

func TestDirectionsShareShadowingButDiffer(t *testing.T) {
	r := rng.New(5)
	p := DefaultParams(Indoor)
	var diffs []float64
	for i := 0; i < 300; i++ {
		pr := NewPair(r.SplitN("pair", i), 40, p)
		diffs = append(diffs, pr.Fwd.MeanSNR()-pr.Rev.MeanSNR())
	}
	s, _ := stats.Summarize(diffs)
	// Directions differ by ~sqrt(2)*AsymStd, not by the (much larger)
	// shadowing std — i.e. shadowing is shared.
	want := p.AsymStd * math.Sqrt2
	if s.Std < want*0.7 || s.Std > want*1.3 {
		t.Fatalf("direction difference std %v, want ≈ %v", s.Std, want)
	}
	if math.Abs(s.Mean) > 0.5 {
		t.Fatalf("direction difference mean %v should be ~0", s.Mean)
	}
}

func TestAsymmetryAblation(t *testing.T) {
	r := rng.New(6)
	p := DefaultParams(Indoor)
	p.DisableAsymmetry = true
	for i := 0; i < 50; i++ {
		pr := NewPair(r.SplitN("pair", i), 40, p)
		if pr.Fwd.MeanSNR() != pr.Rev.MeanSNR() {
			t.Fatal("DisableAsymmetry should make directions identical in mean")
		}
	}
}

func TestOffsetAblation(t *testing.T) {
	r := rng.New(7)
	p := DefaultParams(Indoor)
	p.DisableOffsets = true
	for i := 0; i < 50; i++ {
		pr := NewPair(r.SplitN("pair", i), 40, p)
		if pr.Fwd.MeanEffectiveSNR() != pr.Fwd.MeanSNR() {
			t.Fatal("DisableOffsets should equate effective and reported means")
		}
	}
}

func TestOffsetsSeparateEffectiveFromReported(t *testing.T) {
	r := rng.New(8)
	p := DefaultParams(Indoor)
	var gaps []float64
	for i := 0; i < 500; i++ {
		pr := NewPair(r.SplitN("pair", i), 40, p)
		gaps = append(gaps, pr.Fwd.MeanEffectiveSNR()-pr.Fwd.MeanSNR())
	}
	s, _ := stats.Summarize(gaps)
	if s.Std < p.OffsetStd*0.8 || s.Std > p.OffsetStd*1.2 {
		t.Fatalf("offset std %v, want ≈ %v", s.Std, p.OffsetStd)
	}
}

func TestARStationaryStd(t *testing.T) {
	p := DefaultParams(Indoor)
	p.DisableBursts = true
	pr := NewPair(rng.New(10), 30, p)
	c := pr.Fwd
	var xs []float64
	for i := 0; i < 5000; i++ {
		c.Advance(40)
		xs = append(xs, c.EffectiveSNR())
	}
	s, _ := stats.Summarize(xs)
	if s.Std < p.ARSigma*0.8 || s.Std > p.ARSigma*1.3 {
		t.Fatalf("stationary effective-SNR std %v, want ≈ %v", s.Std, p.ARSigma)
	}
}

func TestReportedSNRShortTermStdSmall(t *testing.T) {
	// Figure 3.1: stddev of SNR within a probe set (~20 reports over
	// 800 s) is < 5 dB ~97.5% of the time.
	r := rng.New(11)
	p := DefaultParams(Indoor)
	under5 := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		pr := NewPair(r.SplitN("pair", i), 30, p)
		var snrs []float64
		for k := 0; k < 20; k++ {
			pr.Fwd.Advance(40)
			snrs = append(snrs, pr.Fwd.ReportedSNR())
		}
		if stats.Std(snrs) < 5 {
			under5++
		}
	}
	if frac := float64(under5) / trials; frac < 0.93 {
		t.Fatalf("only %v of probe sets have SNR std < 5 dB; want ≳0.95", frac)
	}
}

func TestBurstsReduceEffectiveNotReported(t *testing.T) {
	p := DefaultParams(Indoor)
	p.BurstProneFrac = 1
	p.BurstMeanRate = 1.0 / 100 // frequent, so the test sees some
	pr := NewPair(rng.New(12), 30, p)
	c := pr.Fwd
	sawBurst := false
	for i := 0; i < 2000 && !sawBurst; i++ {
		c.Advance(40)
		if c.InBurst() {
			sawBurst = true
			gap := c.EffectiveSNR() - (c.base + c.ar + c.offset)
			if gap >= 0 {
				t.Fatalf("burst should lower effective SNR, gap=%v", gap)
			}
			if gap < -p.BurstPenaltyHi {
				t.Fatalf("burst penalty %v exceeds configured max", -gap)
			}
		}
	}
	if !sawBurst {
		t.Fatal("no burst observed in 2000 steps on an always-prone link")
	}
}

func TestBurstAblation(t *testing.T) {
	p := DefaultParams(Indoor)
	p.DisableBursts = true
	pr := NewPair(rng.New(13), 30, p)
	for i := 0; i < 3000; i++ {
		pr.Fwd.Advance(40)
		if pr.Fwd.InBurst() {
			t.Fatal("burst occurred despite DisableBursts")
		}
	}
}

func TestFadedSuccessBounds(t *testing.T) {
	rate, _ := phy.BandBG.RateByName("24M")
	for eff := -10.0; eff < 50; eff += 1 {
		p := FadedSuccess(rate, eff, 1.6)
		if p < 0 || p > 1 {
			t.Fatalf("FadedSuccess out of range: %v at %v dB", p, eff)
		}
	}
}

func TestFadedSuccessMatchesNoFading(t *testing.T) {
	rate, _ := phy.BandBG.RateByName("12M")
	if FadedSuccess(rate, 20, 0) != rate.SuccessProb(20) {
		t.Fatal("zero fading should reduce to the raw curve")
	}
}

func TestFadedSuccessSmoothsCurve(t *testing.T) {
	// Fading averages the logistic, so at the midpoint it stays ~0.5 but
	// above the midpoint it is lower than the raw curve (concavity).
	rate, _ := phy.BandBG.RateByName("24M")
	at := rate.MidSNR + 3
	if FadedSuccess(rate, at, 3) >= rate.SuccessProb(at) {
		t.Fatal("fading should reduce success above the midpoint")
	}
	mid := FadedSuccess(rate, rate.MidSNR, 3)
	if math.Abs(mid-0.5) > 0.05 {
		t.Fatalf("faded success at midpoint = %v, want ≈0.5", mid)
	}
}

func TestSampleProbesStatistics(t *testing.T) {
	p := DefaultParams(Indoor)
	p.DisableBursts = true
	p.DisableOffsets = true
	pr := NewPair(rng.New(21), 10, p) // very close, high SNR
	rate, _ := phy.BandBG.RateByName("1M")
	got := pr.Fwd.SampleProbes(rate, 1000)
	if got < 950 {
		t.Fatalf("high-SNR 1M probes: %d/1000 received", got)
	}
	rate48, _ := phy.BandBG.RateByName("48M")
	far := NewPair(rng.New(22), 300, p)
	if far.Fwd.SampleProbes(rate48, 1000) > 50 {
		t.Fatal("far 48M probes should almost all be lost")
	}
}

func TestSuccessProbConsistentWithSample(t *testing.T) {
	p := DefaultParams(Indoor)
	pr := NewPair(rng.New(23), 35, p)
	rate, _ := phy.BandBG.RateByName("12M")
	analytic := pr.Fwd.SuccessProb(rate)
	n := 20000
	got := float64(pr.Fwd.SampleProbes(rate, n)) / float64(n)
	if math.Abs(got-analytic) > 0.02 {
		t.Fatalf("sampled %v vs analytic %v", got, analytic)
	}
}

func TestEnvironmentString(t *testing.T) {
	if Indoor.String() != "indoor" || Outdoor.String() != "outdoor" {
		t.Fatal("environment names wrong")
	}
}

func TestAdvanceZeroIsNoop(t *testing.T) {
	pr := NewPair(rng.New(31), 30, DefaultParams(Indoor))
	before := pr.Fwd.EffectiveSNR()
	pr.Fwd.Advance(0)
	pr.Fwd.Advance(-5)
	if pr.Fwd.EffectiveSNR() != before {
		t.Fatal("non-positive dt should not change state")
	}
}

func BenchmarkAdvance(b *testing.B) {
	pr := NewPair(rng.New(1), 30, DefaultParams(Indoor))
	for i := 0; i < b.N; i++ {
		pr.Fwd.Advance(40)
	}
}

func BenchmarkSampleProbes(b *testing.B) {
	pr := NewPair(rng.New(1), 30, DefaultParams(Indoor))
	rate, _ := phy.BandBG.RateByName("24M")
	for i := 0; i < b.N; i++ {
		_ = pr.Fwd.SampleProbes(rate, 20)
	}
}
