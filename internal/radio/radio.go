// Package radio models radio propagation and per-link channel dynamics for
// the synthetic mesh measurement substrate.
//
// The Meraki dataset the thesis analyzes is unavailable, so meshlab
// regenerates its statistical structure from a physical model. Each directed
// AP→AP link gets a Channel whose *reported* SNR (what an Atheros/MadWiFi
// radio would log on packet reception, §3.1.1) and *effective* SNR (what
// actually governs packet delivery) are deliberately distinct:
//
//   - Reported SNR = mean link SNR (path loss + shadowing + asymmetry)
//     plus a slowly varying AR(1) deviation and per-report measurement
//     noise. Its short-term standard deviation is a few dB, matching
//     Figure 3.1.
//   - Effective SNR = reported SNR + a persistent per-link environment
//     offset (multipath/steady interference that the SNR does not capture)
//     − any active interference-burst penalty.
//
// The gap between the two is what makes a per-link SNR→bit-rate table
// valuable and a network-wide one mediocre (§4), exactly as SGRA observed:
// "the SNR can overestimate channel quality in the presence of
// interference". Per-direction offsets create link asymmetry (§5.2.1), and
// lognormal shadowing plus the per-link offsets create the high variance of
// range across rates (§6.2).
package radio

import (
	"math"

	"meshlab/internal/phy"
	"meshlab/internal/rng"
)

// Environment classifies a network's deployment setting. Indoor networks
// are denser with harsher propagation; outdoor networks are sparser.
type Environment int

const (
	// Indoor is an in-building deployment.
	Indoor Environment = iota
	// Outdoor is an open-air deployment.
	Outdoor
)

// String returns "indoor" or "outdoor".
func (e Environment) String() string {
	if e == Outdoor {
		return "outdoor"
	}
	return "indoor"
}

// Params configures propagation and channel dynamics. The zero value is not
// useful; obtain defaults from DefaultParams and override fields as needed.
type Params struct {
	// RefSNR is the SNR in dB at the reference distance of 1 m
	// (transmit power − reference path loss − noise floor).
	RefSNR float64
	// PathLossExp is the log-distance path loss exponent.
	PathLossExp float64
	// ClutterLossPerM is additional attenuation in dB per meter beyond
	// ClutterRefDist, modeling the walls and obstacles that accumulate
	// between distant nodes. It steepens far-field falloff without
	// touching nearby links, which is what bounds the 1 Mbit/s hearing
	// range in real deployments (and therefore the §6 hidden-triple
	// census).
	ClutterLossPerM float64
	// ClutterRefDist is the distance in meters beyond which clutter
	// loss accrues.
	ClutterRefDist float64
	// ShadowStd is the lognormal shadowing standard deviation in dB,
	// drawn once per node pair (symmetric).
	ShadowStd float64
	// AsymStd is the standard deviation in dB of the per-direction
	// offset; it produces forward/reverse delivery asymmetry.
	AsymStd float64
	// OffsetStd is the standard deviation in dB of the persistent
	// per-link environment offset separating effective from reported SNR.
	OffsetStd float64
	// ARSigma is the stationary standard deviation in dB of the slow
	// AR(1) SNR deviation shared by reported and effective SNR.
	ARSigma float64
	// ARTau is the correlation time in seconds of the AR(1) process.
	ARTau float64
	// MeasNoise is the per-report SNR measurement noise std in dB.
	MeasNoise float64
	// FadeStd is the per-packet fast-fading std in dB applied to the
	// effective SNR when deciding individual probe receptions.
	FadeStd float64
	// BurstMeanRate is the mean arrival rate (events/second) of
	// interference bursts on a burst-prone link.
	BurstMeanRate float64
	// BurstProneFrac is the fraction of links that are burst-prone.
	BurstProneFrac float64
	// BurstMeanDur is the mean burst duration in seconds.
	BurstMeanDur float64
	// BurstPenaltyLo/Hi bound the uniform burst SNR penalty in dB.
	BurstPenaltyLo, BurstPenaltyHi float64

	// DisableOffsets removes the persistent per-link environment offsets
	// (ablation: per-link training should lose its advantage).
	DisableOffsets bool
	// DisableAsymmetry removes per-direction offsets (ablation: ETX1 and
	// ETX2 improvements should converge).
	DisableAsymmetry bool
	// DisableBursts removes interference bursts (ablation: the optimal
	// rate for a given SNR becomes far more stable over time).
	DisableBursts bool
}

// DefaultParams returns the calibrated parameter set for an environment.
func DefaultParams(env Environment) Params {
	p := Params{
		RefSNR:         75,
		ShadowStd:      6.5,
		AsymStd:        1.6,
		OffsetStd:      2.8,
		ARSigma:        1.8,
		ARTau:          300,
		MeasNoise:      0.8,
		FadeStd:        1.6,
		BurstMeanRate:  1.0 / 1800, // one burst per 30 min on prone links
		BurstProneFrac: 0.35,
		BurstMeanDur:   420,
		BurstPenaltyLo: 3,
		BurstPenaltyHi: 10,
	}
	switch env {
	case Indoor:
		p.PathLossExp = 3.3
		p.ShadowStd = 7.0
		p.BurstProneFrac = 0.45 // more interferers indoors
		p.ClutterLossPerM = 0.22
		p.ClutterRefDist = 15
	case Outdoor:
		p.PathLossExp = 2.9
		p.ShadowStd = 5.5
		p.BurstProneFrac = 0.2
		p.ClutterLossPerM = 0.02
		p.ClutterRefDist = 50
	}
	return p
}

// MeanSNR returns the deterministic mean SNR in dB at distance d meters
// (before shadowing), per the log-distance model.
func (p Params) MeanSNR(d float64) float64 {
	if d < 1 {
		d = 1
	}
	snr := p.RefSNR - 10*p.PathLossExp*math.Log10(d)
	if d > p.ClutterRefDist {
		snr -= p.ClutterLossPerM * (d - p.ClutterRefDist)
	}
	return snr
}

// Channel is the dynamic state of one *directed* link. Create pairs of
// channels with NewPair so that forward and reverse share shadowing.
type Channel struct {
	params Params
	// base is the long-term mean reported SNR (path loss + shadowing +
	// direction offset).
	base float64
	// offset is effective−reported: the hidden environment term.
	offset float64
	// ar is the current AR(1) deviation.
	ar float64
	// burstLeft is the remaining duration of an active burst (seconds).
	burstLeft float64
	// burstPenalty is the active burst's SNR penalty in dB.
	burstPenalty float64
	// burstRate is this link's Poisson burst arrival rate (0 if not
	// prone).
	burstRate float64
	rng       *rng.Stream
}

// Pair holds the two directed channels between a pair of APs.
type Pair struct {
	Fwd *Channel
	Rev *Channel
	// Distance is the AP separation in meters.
	Distance float64
}

// NewPair creates the forward and reverse channels for two APs separated by
// d meters. The two directions share path loss and shadowing but have
// independent direction offsets, environment offsets, and dynamics, which
// is what produces asymmetric delivery.
func NewPair(r *rng.Stream, d float64, p Params) *Pair {
	shadow := r.NormFloat64() * p.ShadowStd
	mean := p.MeanSNR(d) + shadow
	mk := func(dir string) *Channel {
		cr := r.Split(dir)
		c := &Channel{params: p, rng: cr}
		c.base = mean
		if !p.DisableAsymmetry {
			c.base += cr.NormFloat64() * p.AsymStd
		}
		if !p.DisableOffsets {
			c.offset = cr.NormFloat64() * p.OffsetStd
		}
		if !p.DisableBursts && cr.Bool(p.BurstProneFrac) {
			// Prone links differ in how bursty they are.
			c.burstRate = p.BurstMeanRate * (0.5 + cr.ExpFloat64())
		}
		// Start the AR process in its stationary distribution.
		c.ar = cr.NormFloat64() * p.ARSigma
		return c
	}
	return &Pair{Fwd: mk("fwd"), Rev: mk("rev"), Distance: d}
}

// Advance moves the channel state forward by dt seconds: the AR(1)
// deviation decays toward zero with fresh innovation, active bursts burn
// down, and new bursts may arrive.
func (c *Channel) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	rho := math.Exp(-dt / c.params.ARTau)
	c.ar = rho*c.ar + math.Sqrt(1-rho*rho)*c.params.ARSigma*c.rng.NormFloat64()

	if c.burstLeft > 0 {
		c.burstLeft -= dt
		if c.burstLeft <= 0 {
			c.burstLeft = 0
			c.burstPenalty = 0
		}
	}
	if c.burstLeft == 0 && c.burstRate > 0 {
		// Probability of at least one arrival in dt.
		if c.rng.Bool(1 - math.Exp(-c.burstRate*dt)) {
			c.burstLeft = c.params.BurstMeanDur * (0.3 + c.rng.ExpFloat64())
			c.burstPenalty = c.rng.Range(c.params.BurstPenaltyLo, c.params.BurstPenaltyHi)
		}
	}
}

// ReportedSNR returns the SNR a received packet would be logged with right
// now: the slowly varying link SNR plus measurement noise. Successive calls
// model successive packet receptions.
func (c *Channel) ReportedSNR() float64 {
	return c.base + c.ar + c.rng.NormFloat64()*c.params.MeasNoise
}

// EffectiveSNR returns the SNR that governs delivery right now, including
// the hidden environment offset and any active interference burst.
func (c *Channel) EffectiveSNR() float64 {
	return c.base + c.ar + c.offset - c.burstPenalty
}

// MeanSNR returns the long-term mean reported SNR of the channel.
func (c *Channel) MeanSNR() float64 { return c.base }

// MeanEffectiveSNR returns the long-term mean effective SNR (no burst).
func (c *Channel) MeanEffectiveSNR() float64 { return c.base + c.offset }

// SuccessProb returns the instantaneous probability that a single packet at
// the given rate is delivered, integrating per-packet fast fading
// numerically (5-point Gauss-Hermite on the fading distribution).
func (c *Channel) SuccessProb(rate phy.Rate) float64 {
	return FadedSuccess(rate, c.EffectiveSNR(), c.params.FadeStd)
}

// gauss-Hermite abscissae/weights for n=5, for ∫ f(x) e^{-x²} dx.
var ghX = [5]float64{-2.0201828704560856, -0.9585724646138185, 0, 0.9585724646138185, 2.0201828704560856}
var ghW = [5]float64{0.019953242059045913, 0.39361932315224116, 0.9453087204829419, 0.39361932315224116, 0.019953242059045913}

// FadedSuccess returns the packet success probability at the given rate for
// a channel whose effective SNR is eff dB with Gaussian fast fading of
// fadeStd dB, averaging the PHY curve over the fading distribution.
func FadedSuccess(rate phy.Rate, eff, fadeStd float64) float64 {
	if fadeStd <= 0 {
		return rate.SuccessProb(eff)
	}
	var sum float64
	for i := range ghX {
		sum += ghW[i] * rate.SuccessProb(eff+math.Sqrt2*fadeStd*ghX[i])
	}
	return sum / math.SqrtPi
}

// SampleProbes simulates sending n probes at the given rate and returns how
// many were received, sampling per-probe fast fading.
func (c *Channel) SampleProbes(rate phy.Rate, n int) int {
	eff := c.EffectiveSNR()
	received := 0
	for i := 0; i < n; i++ {
		p := rate.SuccessProb(eff + c.rng.NormFloat64()*c.params.FadeStd)
		if c.rng.Bool(p) {
			received++
		}
	}
	return received
}

// InBurst reports whether an interference burst is currently active.
func (c *Channel) InBurst() bool { return c.burstLeft > 0 }

// SlowDeviation returns the current AR(1) deviation in dB. The probe
// scheduler uses it to estimate within-window SNR variability.
func (c *Channel) SlowDeviation() float64 { return c.ar }

// Params returns the channel's radio parameters.
func (c *Channel) Params() Params { return c.params }
