package routing

import (
	"math"

	"meshlab/internal/phy"
)

// This file implements the expected-transmission-time (ETT) metric of
// Bicket et al.'s Roofnet work, which the thesis names alongside ETX as
// the other standard mesh path metric (§1, question 2). Where ETX counts
// transmissions at one rate, ETT charges each link the *airtime* of its
// best rate: ETT(link) = min over rates r of ETX_r(link) × time(r), with
// time(r) = overhead + bits/rate. Routing over ETT therefore picks both a
// path and a per-link transmit rate.

// DefaultPacketBits is the payload size ETT airtime uses: a 1500-byte
// frame.
const DefaultPacketBits = 1500 * 8

// DefaultOverhead is the fixed per-transmission airtime in seconds
// (preamble, contention, ACK at the base rate), a typical 802.11b/g value.
const DefaultOverhead = 300e-6

// ETTLink holds one directed link's ETT solution.
type ETTLink struct {
	// Seconds is the expected airtime to get one packet across, +Inf if
	// no rate delivers.
	Seconds float64
	// RateIdx is the airtime-minimizing rate, -1 if unusable.
	RateIdx int
}

// ETTLinkCosts computes each directed link's best-rate ETT from per-rate
// success matrices (as produced by SuccessMatrices). The ETX flavor used
// per rate is ETX1 (perfect ACK), matching how Roofnet measured forward
// delivery per rate; pktBits and overhead default when non-positive.
func ETTLinkCosts(ms map[int]Matrix, band phy.Band, pktBits, overhead float64) [][]ETTLink {
	if pktBits <= 0 {
		pktBits = DefaultPacketBits
	}
	if overhead <= 0 {
		overhead = DefaultOverhead
	}
	var n int
	for _, m := range ms {
		n = m.Size()
		break
	}
	out := make([][]ETTLink, n)
	for i := range out {
		out[i] = make([]ETTLink, n)
		for j := range out[i] {
			out[i][j] = ETTLink{Seconds: math.Inf(1), RateIdx: -1}
			if i == j {
				continue
			}
			for ri, rate := range band.Rates {
				p := ms[ri].At(i, j)
				if p <= 0 {
					continue
				}
				t := (overhead + pktBits/(rate.Mbps*1e6)) / p
				if t < out[i][j].Seconds {
					out[i][j] = ETTLink{Seconds: t, RateIdx: ri}
				}
			}
		}
	}
	return out
}

// AllPairsCost runs the same deterministic heap Dijkstra as AllPairs over
// an arbitrary non-negative cost matrix (cost[i][j] = +Inf for unusable
// links). The returned Paths has Variant ETX1 as a placeholder; only Dist,
// Hops, and Next are meaningful.
func AllPairsCost(cost [][]float64) *Paths {
	n := len(cost)
	p := newPaths(ETX1, n)
	count := func(i int) int {
		c := 0
		for j, v := range cost[i] {
			if j != i && !math.IsInf(v, 1) {
				c++
			}
		}
		return c
	}
	fill := func(i int, arcs []arc) []arc {
		for j, v := range cost[i] {
			if j != i && !math.IsInf(v, 1) {
				arcs = append(arcs, arc{to: int32(j), cost: v})
			}
		}
		return arcs
	}
	sv := newSolver(n, count, fill)
	for s := 0; s < n; s++ {
		sv.run(s, p.Dist[s], p.Hops[s], p.Next[s])
	}
	return p
}

// ETTResult compares single-rate ETX routing against multi-rate ETT
// routing for one network.
type ETTResult struct {
	// BestFixedRate is the rate index whose fixed-rate ETX routing
	// minimizes mean path airtime.
	BestFixedRate int
	// MeanFixedSeconds is that fixed-rate scheme's mean path airtime
	// over reachable pairs.
	MeanFixedSeconds float64
	// MeanETTSeconds is multi-rate ETT routing's mean path airtime over
	// the same pairs.
	MeanETTSeconds float64
	// Gain is MeanFixedSeconds/MeanETTSeconds − 1 (≥ 0: ETT can always
	// mimic the fixed-rate scheme).
	Gain float64
	// Pairs is the number of pairs reachable under both schemes.
	Pairs int
}

// CompareETT evaluates fixed-rate ETX routing at every rate and multi-rate
// ETT routing on the same per-rate matrices, comparing mean expected path
// airtime over pairs reachable under ETT.
func CompareETT(ms map[int]Matrix, band phy.Band, pktBits, overhead float64) ETTResult {
	if pktBits <= 0 {
		pktBits = DefaultPacketBits
	}
	if overhead <= 0 {
		overhead = DefaultOverhead
	}
	links := ETTLinkCosts(ms, band, pktBits, overhead)
	n := len(links)
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = links[i][j].Seconds
		}
	}
	ett := AllPairsCost(cost)

	res := ETTResult{BestFixedRate: -1}
	var ettSum float64
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d || math.IsInf(ett.Dist[s][d], 1) {
				continue
			}
			ettSum += ett.Dist[s][d]
			res.Pairs++
		}
	}
	if res.Pairs == 0 {
		return res
	}
	res.MeanETTSeconds = ettSum / float64(res.Pairs)

	res.MeanFixedSeconds = math.Inf(1)
	for ri, rate := range band.Rates {
		airtime := overhead + pktBits/(rate.Mbps*1e6)
		etx := AllPairs(ms[ri], ETX1)
		var sum float64
		covered := 0
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d || math.IsInf(ett.Dist[s][d], 1) {
					continue
				}
				if math.IsInf(etx.Dist[s][d], 1) {
					// Unreachable at this fixed rate: charge the
					// base-rate fallback so rates are comparable.
					sum += ett.Dist[s][d] * 10
					continue
				}
				sum += etx.Dist[s][d] * airtime
				covered++
			}
		}
		mean := sum / float64(res.Pairs)
		if mean < res.MeanFixedSeconds {
			res.MeanFixedSeconds = mean
			res.BestFixedRate = ri
		}
		_ = covered
	}
	if res.MeanETTSeconds > 0 {
		res.Gain = res.MeanFixedSeconds/res.MeanETTSeconds - 1
		if res.Gain < 0 {
			res.Gain = 0
		}
	}
	return res
}
