package routing

import (
	"math"
	"testing"

	"meshlab/internal/phy"
)

// twoRateMatrices builds a 3-node line where the A→B link is strong at
// both rates but B→C only works at the low rate, so ETT must mix rates.
func twoRateMatrices() map[int]Matrix {
	ms := make(map[int]Matrix)
	for ri := 0; ri < len(phy.BandBG.Rates); ri++ {
		ms[ri] = NewMatrix(3)
	}
	lo := phy.BandBG.RateIndex("1M")
	hi := phy.BandBG.RateIndex("48M")
	// A↔B: perfect at both rates.
	for _, ri := range []int{lo, hi} {
		ms[ri].Set(0, 1, 0.95)
		ms[ri].Set(1, 0, 0.95)
	}
	// B↔C: only at 1M.
	ms[lo].Set(1, 2, 0.9)
	ms[lo].Set(2, 1, 0.9)
	return ms
}

func TestETTLinkCostsPicksFastestUsableRate(t *testing.T) {
	ms := twoRateMatrices()
	links := ETTLinkCosts(ms, phy.BandBG, 0, 0)
	hi := phy.BandBG.RateIndex("48M")
	lo := phy.BandBG.RateIndex("1M")
	if links[0][1].RateIdx != hi {
		t.Fatalf("A→B should use 48M, got rate %d", links[0][1].RateIdx)
	}
	if links[1][2].RateIdx != lo {
		t.Fatalf("B→C should use 1M, got rate %d", links[1][2].RateIdx)
	}
	if !math.IsInf(links[0][2].Seconds, 1) || links[0][2].RateIdx != -1 {
		t.Fatal("A→C has no delivery and must be unusable")
	}
	if links[0][0].RateIdx != -1 {
		t.Fatal("self link must be unusable")
	}
	// Airtime sanity: 48M at 0.95 ≈ (300µs + 12000/48e6)/0.95 ≈ 579µs.
	want := (DefaultOverhead + DefaultPacketBits/(48e6)) / 0.95
	if math.Abs(links[0][1].Seconds-want) > 1e-9 {
		t.Fatalf("A→B airtime %v, want %v", links[0][1].Seconds, want)
	}
}

func TestETTBeatsSlowRateOnFastLink(t *testing.T) {
	// For a clean strong link, ETT at 48M is far below 1M airtime.
	ms := twoRateMatrices()
	links := ETTLinkCosts(ms, phy.BandBG, 0, 0)
	oneM := (DefaultOverhead + DefaultPacketBits/1e6) / 0.95
	if links[0][1].Seconds >= oneM {
		t.Fatal("ETT should exploit the high rate on the strong link")
	}
}

func TestAllPairsCostMatchesAllPairs(t *testing.T) {
	// AllPairsCost over explicit ETX1 costs must agree with AllPairs.
	m := lineMatrix()
	n := m.Size()
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i == j {
				cost[i][j] = math.Inf(1)
				continue
			}
			cost[i][j] = ETX1.LinkCost(m, i, j)
		}
	}
	a := AllPairs(m, ETX1)
	b := AllPairsCost(cost)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if math.Abs(a.Dist[s][d]-b.Dist[s][d]) > 1e-12 {
				t.Fatalf("dist mismatch at %d→%d: %v vs %v", s, d, a.Dist[s][d], b.Dist[s][d])
			}
			if a.Hops[s][d] != b.Hops[s][d] || a.Next[s][d] != b.Next[s][d] {
				t.Fatalf("structure mismatch at %d→%d", s, d)
			}
		}
	}
}

func TestCompareETTGainNonNegative(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		base := randomMatrix(seed, 10, 0.05)
		// Derive per-rate matrices by attenuating success with rate
		// midpoint, crudely mimicking the PHY.
		ms := make(map[int]Matrix)
		for ri, rate := range phy.BandBG.Rates {
			m := NewMatrix(10)
			factor := 1.0 - rate.MidSNR/40
			if factor < 0.05 {
				factor = 0.05
			}
			for i := 0; i < 10; i++ {
				for j := 0; j < 10; j++ {
					v := base.At(i, j) * factor
					if v < 0.03 {
						v = 0
					}
					m.Set(i, j, v)
				}
			}
			ms[ri] = m
		}
		res := CompareETT(ms, phy.BandBG, 0, 0)
		if res.Pairs == 0 {
			continue
		}
		if res.Gain < 0 {
			t.Fatalf("seed %d: negative ETT gain %v", seed, res.Gain)
		}
		if res.MeanETTSeconds <= 0 {
			t.Fatalf("seed %d: non-positive ETT airtime", seed)
		}
		if res.BestFixedRate < 0 {
			t.Fatalf("seed %d: no fixed rate selected", seed)
		}
	}
}

func TestCompareETTMixedRateWins(t *testing.T) {
	// The two-rate line forces ETT to mix rates; any fixed rate is
	// strictly worse (1M wastes the strong link, 48M cannot reach C).
	res := CompareETT(twoRateMatrices(), phy.BandBG, 0, 0)
	if res.Pairs == 0 {
		t.Fatal("no pairs")
	}
	if res.Gain <= 0 {
		t.Fatalf("mixed-rate ETT should strictly beat any fixed rate, gain %v", res.Gain)
	}
}

func TestCompareETTEmpty(t *testing.T) {
	ms := make(map[int]Matrix)
	for ri := range phy.BandBG.Rates {
		ms[ri] = NewMatrix(3)
	}
	res := CompareETT(ms, phy.BandBG, 0, 0)
	if res.Pairs != 0 {
		t.Fatal("no-delivery network should have no pairs")
	}
}

func BenchmarkCompareETT20(b *testing.B) {
	base := randomMatrix(3, 20, 0.05)
	ms := make(map[int]Matrix)
	for ri := range phy.BandBG.Rates {
		ms[ri] = base
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CompareETT(ms, phy.BandBG, 0, 0)
	}
}
