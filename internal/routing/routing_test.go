package routing

import (
	"math"
	"sort"
	"testing"

	"meshlab/internal/dataset"
	"meshlab/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// lineMatrix builds the thesis's worked example (§5.2.2): A→B→C with 0.9
// links and a 0.3 direct A→C path, symmetric.
func lineMatrix() Matrix {
	m := NewMatrix(3)
	m.Set(0, 1, 0.9)
	m.Set(1, 0, 0.9)
	m.Set(1, 2, 0.9)
	m.Set(2, 1, 0.9)
	m.Set(0, 2, 0.3)
	m.Set(2, 0, 0.3)
	return m
}

func TestLinkCost(t *testing.T) {
	m := lineMatrix()
	if got := ETX1.LinkCost(m, 0, 1); !almostEq(got, 1/0.9, 1e-12) {
		t.Fatalf("ETX1 cost = %v", got)
	}
	if got := ETX2.LinkCost(m, 0, 1); !almostEq(got, 1/(0.9*0.9), 1e-12) {
		t.Fatalf("ETX2 cost = %v", got)
	}
	m.Set(0, 1, 0)
	if !math.IsInf(ETX1.LinkCost(m, 0, 1), 1) {
		t.Fatal("zero forward probability should cost +Inf")
	}
	m.Set(0, 1, 0.9)
	m.Set(1, 0, 0)
	if !math.IsInf(ETX2.LinkCost(m, 0, 1), 1) {
		t.Fatal("ETX2 with dead reverse should cost +Inf")
	}
	if !math.IsInf(ETX1.LinkCost(m, 0, 1), 1) == false {
		t.Fatal("ETX1 ignores the reverse direction")
	}
}

func TestAllPairsLine(t *testing.T) {
	p := AllPairs(lineMatrix(), ETX1)
	// A→C: via B costs 2/0.9 ≈ 2.22, direct costs 1/0.3 ≈ 3.33.
	if !almostEq(p.Dist[0][2], 2/0.9, 1e-9) {
		t.Fatalf("dist A→C = %v, want %v", p.Dist[0][2], 2/0.9)
	}
	if p.Hops[0][2] != 2 {
		t.Fatalf("hops A→C = %d, want 2", p.Hops[0][2])
	}
	if p.Next[0][2] != 1 {
		t.Fatalf("next hop A→C = %d, want B", p.Next[0][2])
	}
	if p.Dist[0][0] != 0 || p.Hops[0][0] != 0 {
		t.Fatal("self distance must be zero")
	}
}

func TestAllPairsUnreachable(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 0.9) // node 2 isolated
	p := AllPairs(m, ETX1)
	if !math.IsInf(p.Dist[0][2], 1) || p.Hops[0][2] != -1 {
		t.Fatal("isolated node should be unreachable")
	}
	if math.IsInf(p.Dist[0][1], 1) {
		t.Fatal("direct link should be reachable")
	}
	// Directed: 1 cannot reach 0.
	if !math.IsInf(p.Dist[1][0], 1) {
		t.Fatal("reverse of a one-way link should be unreachable")
	}
}

func TestExORWorkedExample(t *testing.T) {
	// §5.2.2: ETX path A→B→C needs ≈2.22 transmissions; with a 0.3
	// chance the broadcast reaches C directly, ExOR needs
	// (1 + 0.63·(1/0.9)) / (1 − 0.7·0.1) ≈ 1.828.
	m := lineMatrix()
	etx := AllPairs(m, ETX1)
	exor := ExORToDest(m, etx, 2)
	if !almostEq(exor[2], 0, 1e-12) {
		t.Fatal("ExOR to self must be 0")
	}
	if !almostEq(exor[1], 1/0.9, 1e-9) {
		t.Fatalf("ExOR B→C = %v, want %v", exor[1], 1/0.9)
	}
	want := (1 + 0.63*(1/0.9)) / (1 - 0.07)
	if !almostEq(exor[0], want, 1e-9) {
		t.Fatalf("ExOR A→C = %v, want %v", exor[0], want)
	}
	if exor[0] >= etx.Dist[0][2] {
		t.Fatal("opportunistic routing should beat ETX on the example")
	}
}

func TestExORNoCloserNodeDegeneratesToETX(t *testing.T) {
	// Two nodes: the source has no forwarder closer than itself.
	m := NewMatrix(2)
	m.Set(0, 1, 0.5)
	m.Set(1, 0, 0.5)
	etx := AllPairs(m, ETX1)
	exor := ExORToDest(m, etx, 1)
	if !almostEq(exor[0], 2, 1e-12) {
		t.Fatalf("ExOR with only the destination = %v, want ETX 2", exor[0])
	}
}

func randomMatrix(seed uint64, n int, asym float64) Matrix {
	r := rng.New(seed)
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(0.3) {
				continue // some pairs out of range
			}
			base := r.Float64()
			m.Set(i, j, clamp01(base+asym*r.NormFloat64()))
			m.Set(j, i, clamp01(base+asym*r.NormFloat64()))
		}
	}
	return m
}

func clamp01(x float64) float64 {
	if x < 0.02 {
		return 0
	}
	if x > 0.98 {
		return 0.98
	}
	return x
}

func TestExORNeverWorseThanETXProperty(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		m := randomMatrix(seed, 12, 0.1)
		for _, v := range []Variant{ETX1, ETX2} {
			for _, pr := range Improvements(m, v) {
				if pr.ExOR > pr.ETX+1e-9 {
					t.Fatalf("seed %d %s: ExOR %v > ETX %v for %d→%d",
						seed, v, pr.ExOR, pr.ETX, pr.S, pr.D)
				}
				if pr.Improvement < 0 {
					t.Fatalf("negative improvement %v", pr.Improvement)
				}
				if pr.ExOR < 1 && pr.S != pr.D {
					t.Fatalf("ExOR cost %v below one transmission", pr.ExOR)
				}
			}
		}
	}
}

func TestETXAtLeastHops(t *testing.T) {
	// ETX of a path can never be below its hop count (§2.3).
	for seed := uint64(0); seed < 10; seed++ {
		m := randomMatrix(seed, 10, 0.05)
		p := AllPairs(m, ETX1)
		for s := 0; s < 10; s++ {
			for d := 0; d < 10; d++ {
				if s == d || math.IsInf(p.Dist[s][d], 1) {
					continue
				}
				if p.Dist[s][d] < float64(p.Hops[s][d])-1e-9 {
					t.Fatalf("ETX %v below hop count %d", p.Dist[s][d], p.Hops[s][d])
				}
			}
		}
	}
}

func TestETX2ImprovementExceedsETX1OnAsymmetricLinks(t *testing.T) {
	// §5.2.1: asymmetry is why ETX2 sees much larger opportunistic
	// gains. Aggregate median improvement must be larger under ETX2.
	var imp1, imp2 []float64
	for seed := uint64(0); seed < 10; seed++ {
		m := randomMatrix(seed, 14, 0.15)
		for _, pr := range Improvements(m, ETX1) {
			imp1 = append(imp1, pr.Improvement)
		}
		for _, pr := range Improvements(m, ETX2) {
			imp2 = append(imp2, pr.Improvement)
		}
	}
	if len(imp1) == 0 || len(imp2) == 0 {
		t.Fatal("no pairs")
	}
	if mean(imp2) <= mean(imp1) {
		t.Fatalf("ETX2 mean improvement %v should exceed ETX1 %v", mean(imp2), mean(imp1))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestSymmetricMatrixConvergesVariants(t *testing.T) {
	// With perfectly symmetric links, ETX2 = ETX1 measured over the
	// squared costs; improvements should be close (ablation check).
	m := randomMatrix(3, 12, 0)
	i1 := Improvements(m, ETX1)
	i2 := Improvements(m, ETX2)
	var v1, v2 []float64
	for _, p := range i1 {
		v1 = append(v1, p.Improvement)
	}
	for _, p := range i2 {
		v2 = append(v2, p.Improvement)
	}
	// ETX2 still differs (squared link costs change path choice), but
	// without asymmetry the gap must be modest.
	if mean(v2)-mean(v1) > 0.5 {
		t.Fatalf("symmetric links should not produce a large ETX1/ETX2 gap: %v vs %v", mean(v1), mean(v2))
	}
}

func TestOneHopPairsOftenNoImprovement(t *testing.T) {
	// §5.2.2: short paths are why most pairs see little gain.
	m := randomMatrix(7, 12, 0.05)
	res := Improvements(m, ETX1)
	noImp, oneHop := 0, 0
	for _, pr := range res {
		if pr.Hops == 1 {
			oneHop++
		}
		if pr.Improvement < 1e-9 {
			noImp++
		}
	}
	if oneHop == 0 {
		t.Fatal("expected some one-hop pairs")
	}
	if noImp == 0 {
		t.Fatal("expected some pairs with zero improvement")
	}
}

func TestAsymmetryRatios(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 0.8)
	m.Set(1, 0, 0.4)
	m.Set(0, 2, 0.5) // one-way: excluded
	got := AsymmetryRatios(m)
	if len(got) != 1 || !almostEq(got[0], 2, 1e-12) {
		t.Fatalf("AsymmetryRatios = %v, want [2]", got)
	}
}

func TestSuccessMatrices(t *testing.T) {
	nd := &dataset.NetworkData{
		Info: dataset.NetworkInfo{Name: "x", Band: "bg", APs: make([]dataset.APInfo, 3)},
		Links: []*dataset.Link{
			{From: 0, To: 1, Sets: []dataset.ProbeSet{
				{T: 300, SNR: 20, Obs: []dataset.Obs{{RateIdx: 0, Loss: 0.2}}},
				{T: 600, SNR: 20, Obs: []dataset.Obs{{RateIdx: 0, Loss: 0.4}}},
			}},
		},
	}
	ms, err := SuccessMatrices(nd)
	if err != nil {
		t.Fatal(err)
	}
	if got := ms[0].At(0, 1); !almostEq(got, 0.7, 1e-6) {
		t.Fatalf("mean success = %v, want 0.7", got)
	}
	if ms[0].At(1, 0) != 0 {
		t.Fatal("unmeasured direction should be 0")
	}
	if len(ms) != 7 {
		t.Fatalf("expected 7 rate matrices, got %d", len(ms))
	}
}

func TestSuccessMatricesBadLink(t *testing.T) {
	nd := &dataset.NetworkData{
		Info:  dataset.NetworkInfo{Name: "x", Band: "bg", APs: make([]dataset.APInfo, 2)},
		Links: []*dataset.Link{{From: 0, To: 5}},
	}
	if _, err := SuccessMatrices(nd); err == nil {
		t.Fatal("out-of-range link should error")
	}
}

func TestVariantString(t *testing.T) {
	if ETX1.String() != "etx1" || ETX2.String() != "etx2" {
		t.Fatal("variant names wrong")
	}
}

func TestImprovementDefinition(t *testing.T) {
	// §5.1: ExOR 1.2 vs ETX 1.5 is an improvement of 0.25.
	pr := PairResult{ETX: 1.5, ExOR: 1.2}
	imp := pr.ETX/pr.ExOR - 1
	if !almostEq(imp, 0.25, 1e-12) {
		t.Fatalf("improvement = %v, want 0.25", imp)
	}
}

func BenchmarkAllPairs50(b *testing.B) {
	m := randomMatrix(1, 50, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AllPairs(m, ETX1)
	}
}

func BenchmarkImprovements30(b *testing.B) {
	m := randomMatrix(1, 30, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Improvements(m, ETX1)
	}
}

func TestMatrixFlatAPI(t *testing.T) {
	m := NewMatrix(3)
	m.Set(1, 2, 0.5)
	if m.At(1, 2) != 0.5 || m.At(2, 1) != 0 {
		t.Fatal("At/Set mismatch")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 0.5 {
		t.Fatalf("Row = %v", row)
	}
	row[0] = 0.25 // rows alias the backing store
	if m.At(1, 0) != 0.25 {
		t.Fatal("Row should alias the matrix")
	}
	if m.Size() != 3 {
		t.Fatalf("Size = %d", m.Size())
	}
}

func TestExORMatchesBruteForceCandidates(t *testing.T) {
	// Cross-check the prefix-based candidate walk against an explicit
	// per-source candidate enumeration on random topologies.
	for seed := uint64(0); seed < 8; seed++ {
		m := randomMatrix(seed, 10, 0.1)
		etx := AllPairs(m, ETX1)
		for d := 0; d < 10; d++ {
			got := ExORToDest(m, etx, d)
			want := bruteExOR(m, etx, d)
			for s := range got {
				if math.IsInf(got[s], 1) != math.IsInf(want[s], 1) {
					t.Fatalf("seed %d d=%d s=%d: reachability mismatch", seed, d, s)
				}
				if !math.IsInf(got[s], 1) && !almostEq(got[s], want[s], 1e-12) {
					t.Fatalf("seed %d d=%d s=%d: %v vs brute %v", seed, d, s, got[s], want[s])
				}
			}
		}
	}
}

// bruteExOR is the seed implementation's literal recursion: per-source
// candidate collection and sort, kept as an oracle.
func bruteExOR(m Matrix, etx *Paths, d int) []float64 {
	n := m.Size()
	exor := make([]float64, n)
	for i := range exor {
		exor[i] = math.Inf(1)
	}
	exor[d] = 0
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if i != d && !math.IsInf(etx.Dist[i][d], 1) {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if etx.Dist[order[a]][d] != etx.Dist[order[b]][d] {
			return etx.Dist[order[a]][d] < etx.Dist[order[b]][d]
		}
		return order[a] < order[b]
	})
	for _, s := range order {
		ds := etx.Dist[s][d]
		type cand struct {
			node int
			p    float64
			dist float64
		}
		var cands []cand
		for _, c := range append([]int{d}, order...) {
			if c == s || etx.Dist[c][d] >= ds || m.At(s, c) <= 0 {
				continue
			}
			cands = append(cands, cand{node: c, p: m.At(s, c), dist: etx.Dist[c][d]})
		}
		if len(cands) == 0 {
			exor[s] = ds
			continue
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].dist != cands[b].dist {
				return cands[a].dist < cands[b].dist
			}
			return cands[a].node < cands[b].node
		})
		num, noneCloser := 1.0, 1.0
		for _, c := range cands {
			num += c.p * noneCloser * exor[c.node]
			noneCloser *= 1 - c.p
		}
		if noneCloser >= 1 {
			exor[s] = ds
			continue
		}
		e := num / (1 - noneCloser)
		if e > ds {
			e = ds
		}
		exor[s] = e
	}
	return exor
}

func BenchmarkExORToDest50(b *testing.B) {
	m := randomMatrix(1, 50, 0.1)
	etx := AllPairs(m, ETX1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExORToDest(m, etx, 0)
	}
}
