// Package routing implements the thesis's §5 analysis: traditional
// shortest-path routing under the ETX metric versus an idealized
// opportunistic routing protocol (ExOR/MORE without coordination
// overhead), compared by the expected number of transmissions needed to
// move one packet between each AP pair.
//
// Two ETX variants are analyzed, as in §5.1:
//
//   - ETX1 assumes a perfect ACK channel: link cost 1/P(s→d).
//   - ETX2 charges the reverse direction too: 1/(P(s→d)·P(d→s)), the
//     metric of the original ETX paper.
//
// The idealized opportunistic cost ("ExOR cost") follows §5.1's recursion:
// the source broadcasts; among the neighbors closer to the destination
// (under the ETX metric), the one closest to the destination that received
// the packet forwards it. With r(n) the probability that n received the
// packet and no node closer than n did, and r(s) the probability that no
// closer node received it at all:
//
//	ExOR(s→d) = (1 + Σ_{n∈C} r(n)·ExOR(n→d)) / (1 − r(s))
package routing

import (
	"fmt"
	"math"
	"sort"

	"meshlab/internal/dataset"
)

// Matrix is a dense directed packet-success-probability matrix: m[i][j] is
// the probability a packet from i is received by j.
type Matrix [][]float64

// NewMatrix allocates an n×n zero matrix.
func NewMatrix(n int) Matrix {
	m := make(Matrix, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// Size returns the node count.
func (m Matrix) Size() int { return len(m) }

// SuccessMatrices derives one success matrix per rate index from a
// network's probe data: success = 1 − mean loss over the link's probe
// sets. Directed links with no probe sets stay at 0.
func SuccessMatrices(nd *dataset.NetworkData) (map[int]Matrix, error) {
	band, err := nd.Band()
	if err != nil {
		return nil, err
	}
	n := nd.NumAPs()
	out := make(map[int]Matrix, len(band.Rates))
	for ri := range band.Rates {
		out[ri] = NewMatrix(n)
	}
	for _, l := range nd.Links {
		if l.From < 0 || l.From >= n || l.To < 0 || l.To >= n {
			return nil, fmt.Errorf("routing: link %d->%d out of range", l.From, l.To)
		}
		sum := make([]float64, len(band.Rates))
		cnt := make([]int, len(band.Rates))
		for _, ps := range l.Sets {
			for _, o := range ps.Obs {
				sum[o.RateIdx] += 1 - float64(o.Loss)
				cnt[o.RateIdx]++
			}
		}
		for ri := range band.Rates {
			if cnt[ri] > 0 {
				out[ri][l.From][l.To] = sum[ri] / float64(cnt[ri])
			}
		}
	}
	return out, nil
}

// Variant selects the ETX flavor.
type Variant int

const (
	// ETX1 assumes a perfect ACK channel (forward probability only).
	ETX1 Variant = iota
	// ETX2 includes the reverse delivery probability, as in the
	// original ETX paper.
	ETX2
)

// String returns "etx1" or "etx2".
func (v Variant) String() string {
	if v == ETX2 {
		return "etx2"
	}
	return "etx1"
}

// LinkCost returns the expected transmissions for the directed link i→j
// under the variant, or +Inf for an unusable link.
func (v Variant) LinkCost(m Matrix, i, j int) float64 {
	pf := m[i][j]
	if pf <= 0 {
		return math.Inf(1)
	}
	if v == ETX1 {
		return 1 / pf
	}
	pr := m[j][i]
	if pr <= 0 {
		return math.Inf(1)
	}
	return 1 / (pf * pr)
}

// Paths holds the all-pairs shortest-path solution under an ETX variant.
type Paths struct {
	Variant Variant
	// Dist[s][d] is the ETX path cost (expected transmissions), +Inf if
	// unreachable.
	Dist [][]float64
	// Hops[s][d] is the hop count of the chosen shortest path, 0 for
	// s == d and -1 if unreachable.
	Hops [][]int
	// Next[s][d] is the first hop on the chosen path, -1 if none.
	Next [][]int
}

// AllPairs runs Dijkstra from every source over the variant's link costs.
// Ties in path cost resolve toward fewer hops, then lower node index, so
// results are deterministic.
func AllPairs(m Matrix, v Variant) *Paths {
	n := m.Size()
	p := &Paths{
		Variant: v,
		Dist:    make([][]float64, n),
		Hops:    make([][]int, n),
		Next:    make([][]int, n),
	}
	// Precompute link costs once.
	cost := make([][]float64, n)
	for i := 0; i < n; i++ {
		cost[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				cost[i][j] = math.Inf(1)
				continue
			}
			cost[i][j] = v.LinkCost(m, i, j)
		}
	}
	for s := 0; s < n; s++ {
		dist := make([]float64, n)
		hops := make([]int, n)
		next := make([]int, n)
		done := make([]bool, n)
		for i := range dist {
			dist[i] = math.Inf(1)
			hops[i] = -1
			next[i] = -1
		}
		dist[s], hops[s] = 0, 0
		for {
			// Dense Dijkstra: pick the cheapest unfinished node.
			u, best := -1, math.Inf(1)
			for i := 0; i < n; i++ {
				if !done[i] && dist[i] < best {
					u, best = i, dist[i]
				}
			}
			if u < 0 {
				break
			}
			done[u] = true
			for w := 0; w < n; w++ {
				c := cost[u][w]
				if done[w] || math.IsInf(c, 1) {
					continue
				}
				nd := dist[u] + c
				nh := hops[u] + 1
				if nd < dist[w] || (nd == dist[w] && nh < hops[w]) {
					dist[w] = nd
					hops[w] = nh
					if u == s {
						next[w] = w
					} else {
						next[w] = next[u]
					}
				}
			}
		}
		p.Dist[s] = dist
		p.Hops[s] = hops
		p.Next[s] = next
	}
	return p
}

// ExORToDest computes the idealized opportunistic cost from every node to
// destination d, using forward delivery probabilities for receptions and
// the supplied ETX solution to define "closer to d". Unreachable nodes get
// +Inf. The recursion is well-founded because nodes are processed in
// increasing ETX distance to d, and every candidate forwarder of s is
// strictly closer than s.
func ExORToDest(m Matrix, etx *Paths, d int) []float64 {
	n := m.Size()
	exor := make([]float64, n)
	for i := range exor {
		exor[i] = math.Inf(1)
	}
	exor[d] = 0

	// Nodes ordered by increasing ETX distance to d.
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if i != d && !math.IsInf(etx.Dist[i][d], 1) {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if etx.Dist[order[a]][d] != etx.Dist[order[b]][d] {
			return etx.Dist[order[a]][d] < etx.Dist[order[b]][d]
		}
		return order[a] < order[b]
	})

	for _, s := range order {
		ds := etx.Dist[s][d]
		// Candidate forwarders: strictly closer to d, reachable by s's
		// broadcast, ordered closest-first (the closest recipient
		// forwards).
		type cand struct {
			node int
			p    float64
			dist float64
		}
		var cands []cand
		for _, c := range append([]int{d}, order...) {
			if c == s {
				continue
			}
			if etx.Dist[c][d] >= ds {
				continue
			}
			if m[s][c] <= 0 {
				continue
			}
			cands = append(cands, cand{node: c, p: m[s][c], dist: etx.Dist[c][d]})
		}
		if len(cands) == 0 {
			// No node closer to d: ExOR degenerates to ETX (§5.1).
			exor[s] = ds
			continue
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].dist != cands[b].dist {
				return cands[a].dist < cands[b].dist
			}
			return cands[a].node < cands[b].node
		})
		num := 1.0
		noneCloser := 1.0
		for _, c := range cands {
			r := c.p * noneCloser // c received, nobody closer did
			num += r * exor[c.node]
			noneCloser *= 1 - c.p
		}
		if noneCloser >= 1 {
			exor[s] = ds
			continue
		}
		e := num / (1 - noneCloser)
		// The idealized opportunistic cost can exceed the pure ETX path
		// cost only through the degenerate candidate orderings of very
		// lossy topologies; opportunistic routing can always fall back
		// to the shortest path, so cap at the ETX cost.
		if e > ds {
			e = ds
		}
		exor[s] = e
	}
	return exor
}

// PairResult is one (source, destination) comparison.
type PairResult struct {
	S, D int
	// ETX is the shortest-path expected transmissions, ExOR the
	// idealized opportunistic expected transmissions.
	ETX, ExOR float64
	// Hops is the shortest path's hop count.
	Hops int
	// Improvement is ETX/ExOR − 1: an improvement of x means traditional
	// routing needs x·100% more transmissions (§5.1's definition).
	Improvement float64
}

// Improvements compares opportunistic routing against the ETX variant for
// every ordered reachable pair of the matrix.
func Improvements(m Matrix, v Variant) []PairResult {
	n := m.Size()
	etx := AllPairs(m, v)
	var out []PairResult
	for d := 0; d < n; d++ {
		exor := ExORToDest(m, etx, d)
		for s := 0; s < n; s++ {
			if s == d || math.IsInf(etx.Dist[s][d], 1) || math.IsInf(exor[s], 1) {
				continue
			}
			imp := 0.0
			if exor[s] > 0 {
				imp = etx.Dist[s][d]/exor[s] - 1
			}
			if imp < 0 {
				imp = 0
			}
			out = append(out, PairResult{
				S: s, D: d,
				ETX: etx.Dist[s][d], ExOR: exor[s],
				Hops:        etx.Hops[s][d],
				Improvement: imp,
			})
		}
	}
	return out
}

// AsymmetryRatios returns, for every unordered pair with delivery in both
// directions, the ratio P(a→b)/P(b→a) with a < b (Figure 5.2).
func AsymmetryRatios(m Matrix) []float64 {
	var out []float64
	n := m.Size()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if m[a][b] > 0 && m[b][a] > 0 {
				out = append(out, m[a][b]/m[b][a])
			}
		}
	}
	return out
}
