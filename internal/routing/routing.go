// Package routing implements the thesis's §5 analysis: traditional
// shortest-path routing under the ETX metric versus an idealized
// opportunistic routing protocol (ExOR/MORE without coordination
// overhead), compared by the expected number of transmissions needed to
// move one packet between each AP pair.
//
// Two ETX variants are analyzed, as in §5.1:
//
//   - ETX1 assumes a perfect ACK channel: link cost 1/P(s→d).
//   - ETX2 charges the reverse direction too: 1/(P(s→d)·P(d→s)), the
//     metric of the original ETX paper.
//
// The idealized opportunistic cost ("ExOR cost") follows §5.1's recursion:
// the source broadcasts; among the neighbors closer to the destination
// (under the ETX metric), the one closest to the destination that received
// the packet forwards it. With r(n) the probability that n received the
// packet and no node closer than n did, and r(s) the probability that no
// closer node received it at all:
//
//	ExOR(s→d) = (1 + Σ_{n∈C} r(n)·ExOR(n→d)) / (1 − r(s))
package routing

import (
	"fmt"
	"math"
	"sort"

	"meshlab/internal/dataset"
)

// Matrix is a dense directed packet-success-probability matrix backed by a
// flat row-major array: At(i, j) is the probability a packet from i is
// received by j. The zero Matrix is empty; copies share the backing store.
type Matrix struct {
	n    int
	data []float64
}

// NewMatrix allocates an n×n zero matrix.
func NewMatrix(n int) Matrix {
	return Matrix{n: n, data: make([]float64, n*n)}
}

// Size returns the node count.
func (m Matrix) Size() int { return m.n }

// At returns the delivery probability for the directed link i→j.
func (m Matrix) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set stores the delivery probability for the directed link i→j.
func (m Matrix) Set(i, j int, v float64) { m.data[i*m.n+j] = v }

// Row returns row i (the delivery probabilities from sender i) as a slice
// aliasing the matrix's backing store.
func (m Matrix) Row(i int) []float64 { return m.data[i*m.n : (i+1)*m.n : (i+1)*m.n] }

// SuccessMatrices derives one success matrix per rate index from a
// network's probe data: success = 1 − mean loss over the link's probe
// sets. Directed links with no probe sets stay at 0.
func SuccessMatrices(nd *dataset.NetworkData) (map[int]Matrix, error) {
	band, err := nd.Band()
	if err != nil {
		return nil, err
	}
	n := nd.NumAPs()
	nr := len(band.Rates)
	out := make(map[int]Matrix, nr)
	for ri := range band.Rates {
		out[ri] = NewMatrix(n)
	}
	sum := make([]float64, nr)
	cnt := make([]int, nr)
	for _, l := range nd.Links {
		if l.From < 0 || l.From >= n || l.To < 0 || l.To >= n {
			return nil, fmt.Errorf("routing: link %d->%d out of range", l.From, l.To)
		}
		for ri := 0; ri < nr; ri++ {
			sum[ri], cnt[ri] = 0, 0
		}
		for _, ps := range l.Sets {
			for _, o := range ps.Obs {
				sum[o.RateIdx] += 1 - float64(o.Loss)
				cnt[o.RateIdx]++
			}
		}
		for ri := range band.Rates {
			if cnt[ri] > 0 {
				out[ri].Set(l.From, l.To, sum[ri]/float64(cnt[ri]))
			}
		}
	}
	return out, nil
}

// Variant selects the ETX flavor.
type Variant int

const (
	// ETX1 assumes a perfect ACK channel (forward probability only).
	ETX1 Variant = iota
	// ETX2 includes the reverse delivery probability, as in the
	// original ETX paper.
	ETX2
)

// String returns "etx1" or "etx2".
func (v Variant) String() string {
	if v == ETX2 {
		return "etx2"
	}
	return "etx1"
}

// LinkCost returns the expected transmissions for the directed link i→j
// under the variant, or +Inf for an unusable link.
func (v Variant) LinkCost(m Matrix, i, j int) float64 {
	pf := m.At(i, j)
	if pf <= 0 {
		return math.Inf(1)
	}
	if v == ETX1 {
		return 1 / pf
	}
	pr := m.At(j, i)
	if pr <= 0 {
		return math.Inf(1)
	}
	return 1 / (pf * pr)
}

// Paths holds the all-pairs shortest-path solution under an ETX variant.
type Paths struct {
	Variant Variant
	// Dist[s][d] is the ETX path cost (expected transmissions), +Inf if
	// unreachable.
	Dist [][]float64
	// Hops[s][d] is the hop count of the chosen shortest path, 0 for
	// s == d and -1 if unreachable.
	Hops [][]int
	// Next[s][d] is the first hop on the chosen path, -1 if none.
	Next [][]int
}

// newPaths allocates a Paths whose rows alias two flat backing arrays, so
// the whole solution costs O(1) allocations instead of O(n) per field.
func newPaths(v Variant, n int) *Paths {
	p := &Paths{
		Variant: v,
		Dist:    make([][]float64, n),
		Hops:    make([][]int, n),
		Next:    make([][]int, n),
	}
	dist := make([]float64, n*n)
	ints := make([]int, 2*n*n)
	for i := 0; i < n; i++ {
		p.Dist[i] = dist[i*n : (i+1)*n : (i+1)*n]
		p.Hops[i] = ints[i*n : (i+1)*n : (i+1)*n]
		p.Next[i] = ints[n*n+i*n : n*n+(i+1)*n : n*n+(i+1)*n]
	}
	return p
}

// arc is one usable directed link in a solver's adjacency list.
type arc struct {
	to   int32
	cost float64
}

// heapNode is one binary-heap entry: ordering is lexicographic on
// (dist, hops, node) so extraction order — and with it every tie — is
// deterministic.
type heapNode struct {
	dist float64
	hops int32
	node int32
}

func heapLess(a, b heapNode) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	return a.node < b.node
}

// solver runs heap-based Dijkstra over a precomputed adjacency list,
// reusing its scratch buffers across sources so an all-pairs sweep does
// not allocate per source. Probe matrices are sparse (most AP pairs are
// out of range), so skipping zero-probability links at adjacency-build
// time is the main win over the dense O(n³) scan.
type solver struct {
	n    int
	adj  [][]arc
	heap []heapNode
	done []bool
}

// newSolver builds a solver from per-node arc counts and a fill callback;
// the arcs for all nodes live in one flat slice.
func newSolver(n int, arcCount func(i int) int, fill func(i int, arcs []arc) []arc) *solver {
	sv := &solver{n: n, adj: make([][]arc, n), done: make([]bool, n)}
	total := 0
	for i := 0; i < n; i++ {
		total += arcCount(i)
	}
	flat := make([]arc, 0, total)
	for i := 0; i < n; i++ {
		start := len(flat)
		flat = fill(i, flat)
		sv.adj[i] = flat[start:len(flat):len(flat)]
	}
	return sv
}

// newMatrixSolver precomputes the variant's link costs (via LinkCost, the
// single source of the ETX semantics) as an adjacency list, keeping only
// usable links.
func newMatrixSolver(m Matrix, v Variant) *solver {
	n := m.Size()
	count := func(i int) int {
		c := 0
		for j := 0; j < n; j++ {
			if j != i && !math.IsInf(v.LinkCost(m, i, j), 1) {
				c++
			}
		}
		return c
	}
	fill := func(i int, arcs []arc) []arc {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			cost := v.LinkCost(m, i, j)
			if math.IsInf(cost, 1) {
				continue
			}
			arcs = append(arcs, arc{to: int32(j), cost: cost})
		}
		return arcs
	}
	return newSolver(n, count, fill)
}

// run solves single-source shortest paths from src, writing the solution
// into the caller's dist/hops/next rows. Ties in path cost resolve toward
// fewer hops; remaining ties keep the first relaxation found under the
// deterministic (dist, hops, node) extraction order.
func (sv *solver) run(src int, dist []float64, hops, next []int) {
	for i := range dist {
		dist[i] = math.Inf(1)
		hops[i] = -1
		next[i] = -1
		sv.done[i] = false
	}
	dist[src], hops[src] = 0, 0
	h := sv.heap[:0]
	h = heapPush(h, heapNode{dist: 0, hops: 0, node: int32(src)})
	for len(h) > 0 {
		top := h[0]
		h = heapPop(h)
		u := int(top.node)
		if sv.done[u] {
			continue // stale duplicate from lazy deletion
		}
		sv.done[u] = true
		du, hu := dist[u], hops[u]
		for _, a := range sv.adj[u] {
			w := int(a.to)
			if sv.done[w] {
				continue
			}
			nd := du + a.cost
			nh := hu + 1
			if nd < dist[w] || (nd == dist[w] && nh < hops[w]) {
				dist[w] = nd
				hops[w] = nh
				if u == src {
					next[w] = w
				} else {
					next[w] = next[u]
				}
				h = heapPush(h, heapNode{dist: nd, hops: int32(nh), node: int32(w)})
			}
		}
	}
	sv.heap = h[:0] // retain capacity for the next source
}

func heapPush(h []heapNode, x heapNode) []heapNode {
	h = append(h, x)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func heapPop(h []heapNode) []heapNode {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && heapLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < len(h) && heapLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return h
}

// AllPairs runs Dijkstra from every source over the variant's link costs.
// Ties in path cost resolve toward fewer hops, so results are
// deterministic.
func AllPairs(m Matrix, v Variant) *Paths {
	n := m.Size()
	p := newPaths(v, n)
	sv := newMatrixSolver(m, v)
	for s := 0; s < n; s++ {
		sv.run(s, p.Dist[s], p.Hops[s], p.Next[s])
	}
	return p
}

// ExORToDest computes the idealized opportunistic cost from every node to
// destination d, using forward delivery probabilities for receptions and
// the supplied ETX solution to define "closer to d". Unreachable nodes get
// +Inf. The recursion is well-founded because nodes are processed in
// increasing ETX distance to d, and every candidate forwarder of s is
// strictly closer than s.
func ExORToDest(m Matrix, etx *Paths, d int) []float64 {
	exor := make([]float64, m.Size())
	exorToDest(m, etx, d, exor, make([]int, 0, m.Size()))
	return exor
}

// exorToDest fills exor using order (capacity ≥ n) as scratch. The single
// sort by (distance-to-d, index) already yields every source's candidate
// set as a strictly-closer prefix, so no per-source candidate slice or
// re-sort is needed: s's candidates are exactly the nodes before the first
// entry at distance ≥ dist(s), in forwarding priority order.
func exorToDest(m Matrix, etx *Paths, d int, exor []float64, order []int) {
	n := m.Size()
	for i := range exor {
		exor[i] = math.Inf(1)
	}
	exor[d] = 0

	// All reachable nodes — d first (distance 0) — ordered by increasing
	// ETX distance to d, then index.
	order = order[:0]
	order = append(order, d)
	for i := 0; i < n; i++ {
		if i != d && !math.IsInf(etx.Dist[i][d], 1) {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := etx.Dist[order[a]][d], etx.Dist[order[b]][d]
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})

	for oi := 1; oi < len(order); oi++ {
		s := order[oi]
		ds := etx.Dist[s][d]
		row := m.Row(s)
		num := 1.0
		noneCloser := 1.0
		for _, c := range order[:oi] {
			if etx.Dist[c][d] >= ds {
				break // sorted: no later entry is strictly closer
			}
			p := row[c]
			if p <= 0 {
				continue
			}
			r := p * noneCloser // c received, nobody closer did
			num += r * exor[c]
			noneCloser *= 1 - p
		}
		if noneCloser >= 1 {
			// No node closer to d: ExOR degenerates to ETX (§5.1).
			exor[s] = ds
			continue
		}
		e := num / (1 - noneCloser)
		// The idealized opportunistic cost can exceed the pure ETX path
		// cost only through the degenerate candidate orderings of very
		// lossy topologies; opportunistic routing can always fall back
		// to the shortest path, so cap at the ETX cost.
		if e > ds {
			e = ds
		}
		exor[s] = e
	}
}

// PairResult is one (source, destination) comparison.
type PairResult struct {
	S, D int
	// ETX is the shortest-path expected transmissions, ExOR the
	// idealized opportunistic expected transmissions.
	ETX, ExOR float64
	// Hops is the shortest path's hop count.
	Hops int
	// Improvement is ETX/ExOR − 1: an improvement of x means traditional
	// routing needs x·100% more transmissions (§5.1's definition).
	Improvement float64
}

// Improvements compares opportunistic routing against the ETX variant for
// every ordered reachable pair of the matrix. The ETX solution is computed
// once and the per-destination ExOR recursions share one scratch buffer.
func Improvements(m Matrix, v Variant) []PairResult {
	n := m.Size()
	etx := AllPairs(m, v)
	exor := make([]float64, n)
	order := make([]int, 0, n)
	var out []PairResult
	for d := 0; d < n; d++ {
		exorToDest(m, etx, d, exor, order)
		for s := 0; s < n; s++ {
			if s == d || math.IsInf(etx.Dist[s][d], 1) || math.IsInf(exor[s], 1) {
				continue
			}
			imp := 0.0
			if exor[s] > 0 {
				imp = etx.Dist[s][d]/exor[s] - 1
			}
			if imp < 0 {
				imp = 0
			}
			out = append(out, PairResult{
				S: s, D: d,
				ETX: etx.Dist[s][d], ExOR: exor[s],
				Hops:        etx.Hops[s][d],
				Improvement: imp,
			})
		}
	}
	return out
}

// AsymmetryRatios returns, for every unordered pair with delivery in both
// directions, the ratio P(a→b)/P(b→a) with a < b (Figure 5.2).
func AsymmetryRatios(m Matrix) []float64 {
	var out []float64
	n := m.Size()
	for a := 0; a < n; a++ {
		row := m.Row(a)
		for b := a + 1; b < n; b++ {
			if row[b] > 0 && m.At(b, a) > 0 {
				out = append(out, row[b]/m.At(b, a))
			}
		}
	}
	return out
}
