// Package stats provides the descriptive statistics used throughout the
// meshlab analyses: summaries, quantiles, empirical CDFs, histograms, and
// binned aggregation. Every figure in the reproduction is ultimately a CDF,
// a quantile series, or a binned summary produced by this package.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that are undefined on empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the moments and extremes of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	s.Median = Quantile(xs, 0.5)
	return s, nil
}

// Mean returns the arithmetic mean of xs, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs, or NaN for an empty
// sample.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
// It does not modify xs. It returns NaN for an empty sample and panics if q
// is outside [0, 1]. Already-sorted input (common for CDF-shaped data,
// e.g. snr.PenaltyResult.Diffs or a pre-sorted bin) is read in place —
// no copy, no re-sort.
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	if sort.Float64sAreSorted(xs) {
		return quantileSorted(xs, q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quartiles returns the lower quartile, median, and upper quartile of xs.
// Sorted input is read in place without a copy.
func Quartiles(xs []float64) (q1, med, q3 float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	sorted := xs
	if !sort.Float64sAreSorted(xs) {
		sorted = make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
	}
	return quantileSorted(sorted, 0.25), quantileSorted(sorted, 0.5), quantileSorted(sorted, 0.75)
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied; input that
// is already sorted (snr.PenaltyResult.Diffs, routing improvement tables
// after their single sort) skips the O(n log n) re-sort.
func NewCDF(xs []float64) *CDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	if !sort.Float64sAreSorted(sorted) {
		sort.Float64s(sorted)
	}
	return &CDF{sorted: sorted}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of values <= x, so search for the first value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the underlying sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	return quantileSorted(c.sorted, q)
}

// Point is a single (X, Y) sample of a curve, typically a CDF evaluated at X
// or a series keyed by X.
type Point struct {
	X float64
	Y float64
}

// Points samples the CDF at n evenly spaced values spanning [min, max] and
// returns (x, P(X<=x)) pairs. For n < 2 or an empty sample it returns nil.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{X: x, Y: c.At(x)}
	}
	return pts
}

// Values returns the sorted underlying sample. The caller must not modify
// the returned slice.
func (c *CDF) Values() []float64 { return c.sorted }

// Histogram counts samples into integer-keyed buckets; it is used for
// figures like 7.1 (number of APs visited).
type Histogram struct {
	Counts map[int]int
	Total  int
}

// NewHistogram builds a Histogram over integer observations.
func NewHistogram(xs []int) *Histogram {
	h := &Histogram{Counts: make(map[int]int)}
	for _, x := range xs {
		h.Counts[x]++
		h.Total++
	}
	return h
}

// Sorted returns the (value, count) pairs in increasing value order.
func (h *Histogram) Sorted() []Point {
	keys := make([]int, 0, len(h.Counts))
	for k := range h.Counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	pts := make([]Point, len(keys))
	for i, k := range keys {
		pts[i] = Point{X: float64(k), Y: float64(h.Counts[k])}
	}
	return pts
}

// Binned aggregates (x, y) observations into fixed-width x bins; it backs
// figures like 4.5 (throughput vs SNR) and 5.4 (improvement vs path length).
type Binned struct {
	Width float64
	bins  map[int][]float64
}

// NewBinned creates a Binned aggregator with the given bin width. A width
// of 1 with integer x values gives exact per-value grouping.
func NewBinned(width float64) *Binned {
	if width <= 0 {
		panic("stats: non-positive bin width")
	}
	return &Binned{Width: width, bins: make(map[int][]float64)}
}

// Add records observation y at coordinate x.
func (b *Binned) Add(x, y float64) {
	b.bins[int(math.Floor(x/b.Width))] = append(b.bins[int(math.Floor(x/b.Width))], y)
}

// BinRow is the aggregate of one bin.
type BinRow struct {
	X      float64 // bin center
	N      int
	Mean   float64
	Std    float64
	Median float64
	Q1, Q3 float64
	Max    float64
	Min    float64
}

// Rows returns per-bin aggregates in increasing x order.
func (b *Binned) Rows() []BinRow {
	keys := make([]int, 0, len(b.bins))
	for k := range b.bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	rows := make([]BinRow, 0, len(keys))
	for _, k := range keys {
		ys := b.bins[k]
		// One in-place sort per bin; Summarize's median and Quartiles
		// then both take the sorted-input fast path instead of each
		// copy-and-sorting the bin again.
		sort.Float64s(ys)
		s, err := Summarize(ys)
		if err != nil {
			continue
		}
		q1, med, q3 := Quartiles(ys)
		rows = append(rows, BinRow{
			X:      (float64(k) + 0.5) * b.Width,
			N:      s.N,
			Mean:   s.Mean,
			Std:    s.Std,
			Median: med,
			Q1:     q1,
			Q3:     q3,
			Min:    s.Min,
			Max:    s.Max,
		})
	}
	return rows
}

// Pearson returns the Pearson correlation coefficient of the paired samples
// xs and ys. It returns NaN if the lengths differ, the sample is empty, or
// either side has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of the paired samples.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (1-based) to xs, averaging ties. Sorted
// input keeps the identity permutation — only the sort is skipped, the
// tie-averaging walk is shared.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	if !sort.Float64sAreSorted(xs) {
		sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	}
	r := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		// average rank for the tie group [i, j)
		avg := (float64(i) + float64(j-1)) / 2.0
		for k := i; k < j; k++ {
			r[idx[k]] = avg + 1
		}
		i = j
	}
	return r
}

// MostFrequent returns the most frequently occurring value among xs along
// with its count, breaking ties toward the smaller value so results are
// deterministic. It returns (0, 0) for an empty sample.
func MostFrequent(xs []float64) (value float64, count int) {
	if len(xs) == 0 {
		return 0, 0
	}
	counts := make(map[float64]int, len(xs))
	for _, x := range xs {
		counts[x]++
	}
	first := true
	for v, c := range counts {
		if first || c > count || (c == count && v < value) {
			value, count = v, c
			first = false
		}
	}
	return value, count
}

// FractionAtMost returns the fraction of xs that are <= limit.
func FractionAtMost(xs []float64, limit float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x <= limit {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
