package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"meshlab/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 || !almostEq(s.Std, 2, 1e-12) {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max wrong: %+v", s)
	}
	if !almostEq(s.Median, 4.5, 1e-12) {
		t.Fatalf("median %v, want 4.5", s.Median)
	}
}

func TestMeanStdEmptyNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Std(nil)) {
		t.Fatal("Mean/Std of empty sample should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); !almostEq(got, 3, 1e-12) {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for q>1")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestQuantileSingleton(t *testing.T) {
	for _, q := range []float64{0, 0.5, 1} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Fatalf("Quantile(singleton, %v) = %v", q, got)
		}
	}
}

func TestQuartiles(t *testing.T) {
	q1, med, q3 := Quartiles([]float64{1, 2, 3, 4, 5})
	if q1 != 2 || med != 3 || q3 != 4 {
		t.Fatalf("quartiles = %v,%v,%v", q1, med, q3)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almostEq(got, cse.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64() * 10
	}
	c := NewCDF(xs)
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 50), math.Mod(b, 50)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantileRoundTrip(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	c := NewCDF(xs)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9} {
		x := c.Quantile(q)
		if p := c.At(x); p < q-0.01 {
			t.Fatalf("At(Quantile(%v)) = %v < %v", q, p, q)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 0 || pts[4].X != 4 {
		t.Fatalf("endpoints wrong: %+v", pts)
	}
	if pts[4].Y != 1 {
		t.Fatalf("final CDF value %v != 1", pts[4].Y)
	}
	if NewCDF(nil).Points(10) != nil {
		t.Fatal("Points on empty CDF should be nil")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int{1, 1, 2, 5, 5, 5})
	if h.Total != 6 {
		t.Fatalf("total %d", h.Total)
	}
	pts := h.Sorted()
	want := []Point{{1, 2}, {2, 1}, {5, 3}}
	if len(pts) != len(want) {
		t.Fatalf("got %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("got %v, want %v", pts, want)
		}
	}
}

func TestBinned(t *testing.T) {
	b := NewBinned(10)
	b.Add(3, 1)
	b.Add(7, 3)
	b.Add(15, 10)
	rows := b.Rows()
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].X != 5 || rows[0].N != 2 || rows[0].Mean != 2 {
		t.Fatalf("bin 0 wrong: %+v", rows[0])
	}
	if rows[1].X != 15 || rows[1].N != 1 || rows[1].Mean != 10 {
		t.Fatalf("bin 1 wrong: %+v", rows[1])
	}
}

func TestBinnedNegativeX(t *testing.T) {
	b := NewBinned(1)
	b.Add(-0.5, 1)
	b.Add(0.5, 2)
	rows := b.Rows()
	if len(rows) != 2 || rows[0].X != -0.5 {
		t.Fatalf("negative bin handling wrong: %+v", rows)
	}
}

func TestBinnedPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for width 0")
		}
	}()
	NewBinned(0)
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEq(r, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{3})) {
		t.Fatal("length mismatch should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{1, 2})) {
		t.Fatal("zero variance should be NaN")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 10, 100, 1000, 10000} // monotone but nonlinear
	if r := Spearman(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Fatalf("Spearman of monotone data = %v, want 1", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	// With ties, ranks are averaged; correlation of identical slices is 1.
	xs := []float64{1, 2, 2, 3}
	if r := Spearman(xs, xs); !almostEq(r, 1, 1e-12) {
		t.Fatalf("Spearman(x,x) = %v", r)
	}
}

func TestMostFrequent(t *testing.T) {
	v, c := MostFrequent([]float64{1, 2, 2, 3, 3})
	if v != 2 || c != 2 {
		t.Fatalf("tie should break toward smaller value, got (%v,%d)", v, c)
	}
	v, c = MostFrequent([]float64{5, 5, 1})
	if v != 5 || c != 2 {
		t.Fatalf("got (%v,%d)", v, c)
	}
	if v, c := MostFrequent(nil); v != 0 || c != 0 {
		t.Fatalf("empty should be (0,0), got (%v,%d)", v, c)
	}
}

func TestFractionAtMost(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if f := FractionAtMost(xs, 2); f != 0.5 {
		t.Fatalf("got %v", f)
	}
	if !math.IsNaN(FractionAtMost(nil, 1)) {
		t.Fatal("empty should be NaN")
	}
}

func TestQuantilePropertyWithinBounds(t *testing.T) {
	r := rng.New(9)
	f := func(n uint8, q float64) bool {
		q = math.Abs(math.Mod(q, 1))
		m := int(n)%50 + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Float64()
		}
		v := Quantile(xs, q)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v >= sorted[0] && v <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNewCDF(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewCDF(xs)
	}
}

// TestSortedFastPathsAgree pins the sorted-input fast paths of Quantile,
// Quartiles, ranks, and NewCDF to the copy-and-sort path: shuffled and
// pre-sorted views of the same sample must agree exactly.
func TestSortedFastPathsAgree(t *testing.T) {
	r := rng.New(99)
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = math.Round(r.Float64()*50) / 5 // plenty of ties
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if a, b := Quantile(xs, q), Quantile(sorted, q); a != b {
			t.Fatalf("Quantile(%v): shuffled %v vs sorted %v", q, a, b)
		}
	}
	a1, a2, a3 := Quartiles(xs)
	b1, b2, b3 := Quartiles(sorted)
	if a1 != b1 || a2 != b2 || a3 != b3 {
		t.Fatalf("Quartiles disagree: (%v,%v,%v) vs (%v,%v,%v)", a1, a2, a3, b1, b2, b3)
	}
	if got, want := NewCDF(sorted).At(2.0), NewCDF(xs).At(2.0); got != want {
		t.Fatalf("NewCDF fast path: %v vs %v", got, want)
	}
	// ranks: the sorted fast path must produce the same rank multiset, so
	// Spearman over a monotone transform stays exactly 1.
	ys := append([]float64(nil), sorted...)
	for i := range ys {
		ys[i] = ys[i] * 3
	}
	if got := Spearman(sorted, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman on sorted input = %v, want 1", got)
	}
}

func TestQuartilesDoNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	Quartiles(xs)
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatalf("Quartiles mutated its input: %v", xs)
	}
}
