// Package mesh assembles a live mesh network from a topology layout and the
// radio channel model: one radio.Pair per AP pair that is close enough to
// possibly communicate, addressable as directed channels. It is the
// substrate the probe scheduler (internal/probe) and the analyses'
// ground-truth matrices run against.
package mesh

import (
	"meshlab/internal/phy"
	"meshlab/internal/radio"
	"meshlab/internal/rng"
	"meshlab/internal/topology"
)

// BuildOptions configures network assembly.
type BuildOptions struct {
	// ParamsFor supplies the radio parameters used for a link given
	// whether the link is outdoor (both endpoints outdoor). Nil means
	// radio.DefaultParams for the corresponding environment.
	ParamsFor func(outdoor bool) radio.Params
	// PruneBelowSNR drops AP pairs whose best-direction mean reported
	// SNR is below this many dB; such pairs would never deliver a probe
	// and would only waste memory and time. Zero means the default of
	// −10 dB. Use a very negative value (e.g. −1000) to keep all pairs.
	PruneBelowSNR float64
}

// LinkPair is one retained AP pair with its two directed channels.
type LinkPair struct {
	// I, J are AP indices with I < J.
	I, J int
	// Pair holds the forward (I→J) and reverse (J→I) channels.
	Pair *radio.Pair
}

// Net is a mesh network with live channel state.
type Net struct {
	// Topo is the generated layout.
	Topo *topology.Network
	// Band is the probed rate set.
	Band phy.Band
	// Pairs lists the retained AP pairs in deterministic (I, J) order.
	Pairs []LinkPair

	pairIdx map[[2]int]int
}

// Build creates the channel state for a network. All randomness derives
// from r, so equal seeds give identical networks.
func Build(r *rng.Stream, topo *topology.Network, band phy.Band, opts BuildOptions) *Net {
	paramsFor := opts.ParamsFor
	if paramsFor == nil {
		paramsFor = func(outdoor bool) radio.Params {
			if outdoor {
				return radio.DefaultParams(radio.Outdoor)
			}
			return radio.DefaultParams(radio.Indoor)
		}
	}
	prune := opts.PruneBelowSNR
	if prune == 0 {
		prune = -10
	}

	n := &Net{Topo: topo, Band: band, pairIdx: make(map[[2]int]int)}
	aps := topo.APs
	k := 0
	for i := 0; i < len(aps); i++ {
		for j := i + 1; j < len(aps); j++ {
			d := topology.Dist(aps[i], aps[j])
			outdoor := aps[i].Outdoor && aps[j].Outdoor
			p := paramsFor(outdoor)
			// Cheap pre-check before drawing shadowing: even with a
			// +4σ shadowing draw the pair would be hopeless.
			if p.MeanSNR(d)+4*p.ShadowStd < prune {
				k++
				continue
			}
			pair := radio.NewPair(r.SplitN("pair", k), d, p)
			k++
			if pair.Fwd.MeanSNR() < prune && pair.Rev.MeanSNR() < prune {
				continue
			}
			n.pairIdx[[2]int{i, j}] = len(n.Pairs)
			n.Pairs = append(n.Pairs, LinkPair{I: i, J: j, Pair: pair})
		}
	}
	return n
}

// Size returns the number of APs in the network.
func (n *Net) Size() int { return len(n.Topo.APs) }

// Channel returns the directed channel from→to, or nil if the pair was
// pruned, from == to, or an index is out of range.
func (n *Net) Channel(from, to int) *radio.Channel {
	if from == to || from < 0 || to < 0 || from >= n.Size() || to >= n.Size() {
		return nil
	}
	i, j := from, to
	if i > j {
		i, j = j, i
	}
	idx, ok := n.pairIdx[[2]int{i, j}]
	if !ok {
		return nil
	}
	if from < to {
		return n.Pairs[idx].Pair.Fwd
	}
	return n.Pairs[idx].Pair.Rev
}

// Advance moves every channel's state forward by dt seconds.
func (n *Net) Advance(dt float64) {
	for _, lp := range n.Pairs {
		lp.Pair.Fwd.Advance(dt)
		lp.Pair.Rev.Advance(dt)
	}
}

// SuccessMatrix returns the instantaneous analytic packet success
// probability from each AP to each other AP at the given rate. Pruned
// pairs and the diagonal are 0.
func (n *Net) SuccessMatrix(rate phy.Rate) [][]float64 {
	m := make([][]float64, n.Size())
	for i := range m {
		m[i] = make([]float64, n.Size())
	}
	for _, lp := range n.Pairs {
		m[lp.I][lp.J] = lp.Pair.Fwd.SuccessProb(rate)
		m[lp.J][lp.I] = lp.Pair.Rev.SuccessProb(rate)
	}
	return m
}

// MeanSNR returns the long-term mean reported SNR from→to, or −inf-like
// −1000 if the pair was pruned.
func (n *Net) MeanSNR(from, to int) float64 {
	c := n.Channel(from, to)
	if c == nil {
		return -1000
	}
	return c.MeanSNR()
}
