package mesh

import (
	"testing"

	"meshlab/internal/phy"
	"meshlab/internal/radio"
	"meshlab/internal/rng"
	"meshlab/internal/topology"
)

func testNet(t testing.TB, seed uint64, size int) *Net {
	if t != nil {
		t.Helper()
	}
	topo, err := topology.Generate(rng.New(seed), topology.Config{
		Name: "t", Size: size, Env: topology.EnvIndoor,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Build(rng.New(seed).Split("mesh"), topo, phy.BandBG, BuildOptions{})
}

func TestBuildBasic(t *testing.T) {
	n := testNet(t, 1, 12)
	if n.Size() != 12 {
		t.Fatalf("size %d", n.Size())
	}
	if len(n.Pairs) == 0 {
		t.Fatal("no pairs retained")
	}
	for _, lp := range n.Pairs {
		if lp.I >= lp.J {
			t.Fatalf("pair not normalized: (%d,%d)", lp.I, lp.J)
		}
	}
}

func TestChannelDirections(t *testing.T) {
	n := testNet(t, 2, 8)
	lp := n.Pairs[0]
	fwd := n.Channel(lp.I, lp.J)
	rev := n.Channel(lp.J, lp.I)
	if fwd == nil || rev == nil {
		t.Fatal("retained pair must have both channels")
	}
	if fwd == rev {
		t.Fatal("forward and reverse must be distinct channels")
	}
	if fwd != lp.Pair.Fwd || rev != lp.Pair.Rev {
		t.Fatal("channel orientation mismatch")
	}
}

func TestChannelInvalid(t *testing.T) {
	n := testNet(t, 3, 6)
	if n.Channel(0, 0) != nil {
		t.Fatal("self channel should be nil")
	}
	if n.Channel(-1, 2) != nil || n.Channel(0, 99) != nil {
		t.Fatal("out-of-range channel should be nil")
	}
}

func TestBuildDeterminism(t *testing.T) {
	a := testNet(t, 5, 15)
	b := testNet(t, 5, 15)
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i].Pair.Fwd.MeanSNR() != b.Pairs[i].Pair.Fwd.MeanSNR() {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestPruning(t *testing.T) {
	// A sparse topology with a huge spread should prune distant pairs.
	topo, _ := topology.Generate(rng.New(9), topology.Config{
		Name: "far", Size: 30, Env: topology.EnvIndoor, Spacing: 200,
	})
	n := Build(rng.New(9), topo, phy.BandBG, BuildOptions{})
	max := 30 * 29 / 2
	if len(n.Pairs) >= max {
		t.Fatalf("no pairs pruned in a 200 m-spacing network (%d of %d)", len(n.Pairs), max)
	}
	// Keeping all pairs must retain every one.
	all := Build(rng.New(9), topo, phy.BandBG, BuildOptions{PruneBelowSNR: -1000})
	if len(all.Pairs) != max {
		t.Fatalf("PruneBelowSNR=-1000 kept %d of %d pairs", len(all.Pairs), max)
	}
}

func TestSuccessMatrixShape(t *testing.T) {
	n := testNet(t, 11, 10)
	rate, _ := phy.BandBG.RateByName("1M")
	m := n.SuccessMatrix(rate)
	if len(m) != 10 {
		t.Fatalf("matrix dim %d", len(m))
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Fatal("diagonal must be zero")
		}
		for j := range m[i] {
			if m[i][j] < 0 || m[i][j] > 1 {
				t.Fatalf("success %v out of range", m[i][j])
			}
		}
	}
}

func TestSuccessMatrixRateOrdering(t *testing.T) {
	// At any link, 48M success should not exceed 1M success (midpoints
	// rise with rate) — checked on the mean over links.
	n := testNet(t, 13, 12)
	r1, _ := phy.BandBG.RateByName("1M")
	r48, _ := phy.BandBG.RateByName("48M")
	m1 := n.SuccessMatrix(r1)
	m48 := n.SuccessMatrix(r48)
	var s1, s48 float64
	for i := range m1 {
		for j := range m1[i] {
			s1 += m1[i][j]
			s48 += m48[i][j]
		}
	}
	if s48 >= s1 {
		t.Fatalf("aggregate 48M success %v >= 1M success %v", s48, s1)
	}
}

func TestAdvanceChangesState(t *testing.T) {
	n := testNet(t, 17, 8)
	c := n.Pairs[0].Pair.Fwd
	before := c.EffectiveSNR()
	n.Advance(300)
	if c.EffectiveSNR() == before {
		t.Fatal("Advance did not alter channel state")
	}
}

func TestMeanSNRAccessor(t *testing.T) {
	n := testNet(t, 19, 8)
	lp := n.Pairs[0]
	if n.MeanSNR(lp.I, lp.J) != lp.Pair.Fwd.MeanSNR() {
		t.Fatal("MeanSNR mismatch")
	}
	if n.MeanSNR(0, 0) != -1000 {
		t.Fatal("self MeanSNR should be -1000")
	}
}

func TestCustomParams(t *testing.T) {
	topo, _ := topology.Generate(rng.New(23), topology.Config{
		Name: "c", Size: 6, Env: topology.EnvIndoor,
	})
	calls := 0
	n := Build(rng.New(23), topo, phy.BandBG, BuildOptions{
		ParamsFor: func(outdoor bool) radio.Params {
			calls++
			p := radio.DefaultParams(radio.Indoor)
			p.DisableOffsets = true
			return p
		},
	})
	if calls == 0 {
		t.Fatal("ParamsFor never called")
	}
	for _, lp := range n.Pairs {
		if lp.Pair.Fwd.MeanEffectiveSNR() != lp.Pair.Fwd.MeanSNR() {
			t.Fatal("custom params not applied")
		}
	}
}

func TestOutdoorLinksUseOutdoorParams(t *testing.T) {
	topo, _ := topology.Generate(rng.New(29), topology.Config{
		Name: "m", Size: 20, Env: topology.EnvMixed,
	})
	sawOutdoor, sawIndoor := false, false
	Build(rng.New(29), topo, phy.BandBG, BuildOptions{
		ParamsFor: func(outdoor bool) radio.Params {
			if outdoor {
				sawOutdoor = true
				return radio.DefaultParams(radio.Outdoor)
			}
			sawIndoor = true
			return radio.DefaultParams(radio.Indoor)
		},
	})
	if !sawOutdoor || !sawIndoor {
		t.Fatalf("mixed network link classes: outdoor=%v indoor=%v", sawOutdoor, sawIndoor)
	}
}

func BenchmarkBuild50(b *testing.B) {
	topo, _ := topology.Generate(rng.New(1), topology.Config{
		Name: "b", Size: 50, Env: topology.EnvIndoor,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(rng.New(uint64(i)), topo, phy.BandBG, BuildOptions{})
	}
}

func BenchmarkAdvanceNet50(b *testing.B) {
	n := testNet(b, 1, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Advance(300)
	}
}
