// Package mac simulates the MAC-level consequence of the topologies §6
// counts: two saturated senders A and B sharing a receiver C under slotted
// CSMA/CA with imperfect carrier sense. When A and B can hear each other,
// carrier sense serializes them; when they cannot (a hidden triple), their
// transmissions overlap at C and collide. The thesis motivates its census
// with exactly this cost — "interference from hidden terminals can affect
// even an ideal rate adaptation protocol" — but cannot measure it from
// probe data; this simulator closes that loop for the reproduction's
// extension experiment (ext6.mac).
package mac

import (
	"meshlab/internal/rng"
)

// TripleParams configures one A,B→C contention simulation.
type TripleParams struct {
	// SenseAB is the probability per backoff slot that one sender
	// detects the other's ongoing transmission (symmetric). 1 models
	// perfect carrier sense, 0 a fully hidden pair. Real pairs sit in
	// between: use their mutual delivery probability at the base rate.
	SenseAB float64
	// PacketSlots is a data transmission's duration in slots (default
	// 10).
	PacketSlots int
	// MaxBackoff is the contention-window upper bound in slots (default
	// 16): after each transmission a sender draws a fresh backoff
	// uniformly from [1, MaxBackoff].
	MaxBackoff int
}

func (p TripleParams) withDefaults() TripleParams {
	if p.PacketSlots <= 0 {
		p.PacketSlots = 10
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 16
	}
	if p.SenseAB < 0 {
		p.SenseAB = 0
	}
	if p.SenseAB > 1 {
		p.SenseAB = 1
	}
	return p
}

// TripleResult summarizes a contention simulation.
type TripleResult struct {
	// Delivered and Collided count completed transmissions by outcome;
	// a transmission collides when any of its slots overlapped the
	// other sender's transmission.
	Delivered, Collided int
	// Slots is the simulated duration.
	Slots int
	// CollisionFrac is Collided / (Delivered + Collided).
	CollisionFrac float64
	// Utilization is the fraction of slots carrying a transmission that
	// was ultimately delivered.
	Utilization float64
}

// sender is one contender's MAC state.
type sender struct {
	backoff   int
	txLeft    int
	collided  bool
	delivered int
	lost      int
	usefulTx  int // slots spent on transmissions that were delivered
	txSlots   int // slots of the current transmission so far
}

// SimulateTriple runs the slotted contention model for the given number of
// slots and returns aggregate outcomes for both senders combined.
func SimulateTriple(r *rng.Stream, p TripleParams, slots int) TripleResult {
	p = p.withDefaults()
	a := &sender{backoff: 1 + r.Intn(p.MaxBackoff)}
	b := &sender{backoff: 1 + r.Intn(p.MaxBackoff)}

	for t := 0; t < slots; t++ {
		// Phase 1: idle senders observe the channel as it was at the
		// start of the slot, then count down or start transmitting.
		aStarts := tick(r, p, a, b.txLeft > 0)
		bStarts := tick(r, p, b, a.txLeft > 0)
		if aStarts {
			a.txLeft = p.PacketSlots
			a.txSlots = 0
			a.collided = false
		}
		if bStarts {
			b.txLeft = p.PacketSlots
			b.txSlots = 0
			b.collided = false
		}
		// Phase 2: active transmissions occupy this slot; overlap marks
		// both as collided.
		if a.txLeft > 0 && b.txLeft > 0 {
			a.collided = true
			b.collided = true
		}
		advance(r, p, a)
		advance(r, p, b)
	}
	res := TripleResult{Slots: slots}
	for _, s := range []*sender{a, b} {
		res.Delivered += s.delivered
		res.Collided += s.lost
		res.Utilization += float64(s.usefulTx)
	}
	if total := res.Delivered + res.Collided; total > 0 {
		res.CollisionFrac = float64(res.Collided) / float64(total)
	}
	res.Utilization /= float64(slots)
	return res
}

// tick advances an idle sender's backoff, returning true when it begins
// transmitting this slot. otherBusy reports whether the peer was
// transmitting at the slot boundary.
func tick(r *rng.Stream, p TripleParams, s *sender, otherBusy bool) bool {
	if s.txLeft > 0 {
		return false
	}
	if otherBusy && r.Bool(p.SenseAB) {
		return false // sensed busy: freeze the backoff
	}
	s.backoff--
	return s.backoff <= 0
}

// advance burns one slot of an active transmission and settles it on
// completion.
func advance(r *rng.Stream, p TripleParams, s *sender) {
	if s.txLeft == 0 {
		return
	}
	s.txLeft--
	s.txSlots++
	if s.txLeft > 0 {
		return
	}
	if s.collided {
		s.lost++
	} else {
		s.delivered++
		s.usefulTx += s.txSlots
	}
	s.backoff = 1 + r.Intn(p.MaxBackoff)
}

// HiddenPenalty runs the simulation at the given mutual sense probability
// and at perfect carrier sense, returning the relative throughput loss
// the imperfect pair suffers: 1 − utilization(sense)/utilization(1).
func HiddenPenalty(r *rng.Stream, sense float64, slots int) float64 {
	base := SimulateTriple(r.Split("perfect"), TripleParams{SenseAB: 1}, slots)
	got := SimulateTriple(r.Split("actual"), TripleParams{SenseAB: sense}, slots)
	if base.Utilization <= 0 {
		return 0
	}
	pen := 1 - got.Utilization/base.Utilization
	if pen < 0 {
		pen = 0
	}
	return pen
}
