package mac

import (
	"testing"

	"meshlab/internal/rng"
)

func TestPerfectSenseRarelyCollides(t *testing.T) {
	res := SimulateTriple(rng.New(1), TripleParams{SenseAB: 1}, 200000)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered under perfect carrier sense")
	}
	// Perfect sense still collides on same-slot starts: with CW=16 the
	// per-round collision probability is ~1/16, and each collision event
	// destroys two transmissions while a success is one, so the
	// transmission-level fraction sits near 2·(1/16)/(1+1/16) ≈ 0.12.
	if res.CollisionFrac > 0.2 {
		t.Fatalf("collision fraction %v under perfect sense; same-slot starts alone should stay under ~0.2", res.CollisionFrac)
	}
	if res.Utilization < 0.5 {
		t.Fatalf("utilization %v too low for two saturated serialized senders", res.Utilization)
	}
}

func TestHiddenPairCollidesHeavily(t *testing.T) {
	res := SimulateTriple(rng.New(2), TripleParams{SenseAB: 0}, 200000)
	if res.CollisionFrac < 0.3 {
		t.Fatalf("collision fraction %v for fully hidden senders; expected heavy collisions", res.CollisionFrac)
	}
	perfect := SimulateTriple(rng.New(3), TripleParams{SenseAB: 1}, 200000)
	if res.Utilization >= perfect.Utilization {
		t.Fatalf("hidden utilization %v should be below perfect %v", res.Utilization, perfect.Utilization)
	}
}

func TestCollisionMonotoneInSense(t *testing.T) {
	prev := 2.0
	for _, sense := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res := SimulateTriple(rng.New(4), TripleParams{SenseAB: sense}, 150000)
		if res.CollisionFrac > prev+0.03 {
			t.Fatalf("collision fraction not (approximately) decreasing in sense: %v at sense %v after %v",
				res.CollisionFrac, sense, prev)
		}
		prev = res.CollisionFrac
	}
}

func TestAccounting(t *testing.T) {
	res := SimulateTriple(rng.New(5), TripleParams{SenseAB: 0.5}, 50000)
	if res.Slots != 50000 {
		t.Fatalf("slots %d", res.Slots)
	}
	if res.Utilization < 0 || res.Utilization > 1 {
		t.Fatalf("utilization %v out of range", res.Utilization)
	}
	if res.CollisionFrac < 0 || res.CollisionFrac > 1 {
		t.Fatalf("collision fraction %v out of range", res.CollisionFrac)
	}
	if res.Delivered+res.Collided == 0 {
		t.Fatal("no transmissions completed")
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := TripleParams{SenseAB: -3}.withDefaults()
	if p.PacketSlots != 10 || p.MaxBackoff != 16 || p.SenseAB != 0 {
		t.Fatalf("defaults wrong: %+v", p)
	}
	p = TripleParams{SenseAB: 7}.withDefaults()
	if p.SenseAB != 1 {
		t.Fatalf("sense not clamped: %v", p.SenseAB)
	}
}

func TestDeterminism(t *testing.T) {
	a := SimulateTriple(rng.New(6), TripleParams{SenseAB: 0.3}, 20000)
	b := SimulateTriple(rng.New(6), TripleParams{SenseAB: 0.3}, 20000)
	if a != b {
		t.Fatal("simulation not deterministic under equal seeds")
	}
}

func TestHiddenPenalty(t *testing.T) {
	full := HiddenPenalty(rng.New(7), 0, 150000)
	none := HiddenPenalty(rng.New(7), 1, 150000)
	if full < 0.2 {
		t.Fatalf("fully hidden penalty %v too small", full)
	}
	if none > 0.05 {
		t.Fatalf("perfect-sense penalty %v should be ~0", none)
	}
	mid := HiddenPenalty(rng.New(7), 0.5, 150000)
	if mid <= none || mid >= full {
		t.Fatalf("penalty at sense 0.5 (%v) should sit between %v and %v", mid, none, full)
	}
}

func BenchmarkSimulateTriple(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = SimulateTriple(r, TripleParams{SenseAB: 0.3}, 10000)
	}
}
