// Command meshgen generates a synthetic Meraki-style mesh measurement
// dataset (probe data + client associations) and writes it to disk.
//
// Usage:
//
//	meshgen -seed 42 -scale quick -out fleet.jsonl
//	meshgen -seed 42 -scale reference -interval 1200 -out fleet.bin
//	meshgen -seed 42 -scale reference -dataset cache.bin -out fleet.jsonl
//	meshgen -scenario dense-urban -out dense.bin
//	meshgen -scenario specs/my-campus.json -out campus.bin
//
// -scenario replaces the -scale/-probe-hours/-interval knobs with a
// declarative spec: a built-in name (see -list-scenarios) or a path to a
// scenario JSON file (schema: docs/SCENARIOS.md). The spec pins the
// seed; an explicit -seed overrides it.
//
// A ".bin" output suffix selects the compact binary format (spec:
// docs/FORMAT.md); anything else writes JSON lines. -flat-samples
// additionally appends the pre-flattened §4 sample section to a .bin
// output so analysis warm starts skip re-flattening (dataset caches get
// it automatically). Synthesis fans out across -workers cores (0 = all);
// the dataset is byte-identical at any worker count. With -dataset, the
// synthesized fleet is cached at the given path in the binary format and
// later runs with a matching seed/config load it instead of
// re-synthesizing. A cache file that claims the binary format but whose
// header cannot be decoded is corrupt input — reported with exit 3
// rather than silently clobbered by a fresh synthesis.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 corrupt
// input, 4 transient-retry budget exhausted, 130 interrupted — the same
// contract meshanalyze and meshreport document.
package main

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"meshlab"
	"meshlab/internal/conc"
	"meshlab/internal/rusage"
	"meshlab/internal/scenario"
	"meshlab/internal/wire"
)

// usageError marks an error as the caller's invocation being wrong (bad
// flag, bad combination), mapping it to exit code 2 instead of the
// runtime-failure codes.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// exitCode implements the documented contract: 2 for usage errors, then
// the streaming classification — 3 corrupt input, 4 transient
// exhaustion, 130 interrupted, 1 anything else. The authoritative table
// lives on shard.ExitCode.
func exitCode(err error) int {
	var u usageError
	if errors.As(err, &u) || errors.Is(err, flag.ErrHelp) {
		return 2
	}
	return meshlab.ShardExitCode(err)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
		os.Exit(exitCode(err))
	}
}

// probeCache classifies an existing -dataset file that claims the
// binary format but whose header cannot be decoded: that is corrupt
// input the user pointed us at, not a cache miss to overwrite. A
// missing file, a JSON-lines file, or a too-short file stays on the
// plain miss/regenerate path.
func probeCache(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return nil // missing or unreadable: the regular cache-miss path
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(len(wire.Magic))
	if err != nil || (!bytes.Equal(head, wire.Magic[:]) && !bytes.Equal(head, wire.Magic2[:])) {
		return nil
	}
	if _, err := wire.NewReader(br); err != nil {
		return fmt.Errorf("dataset cache %s: %w", path, err)
	}
	return nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("meshgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		seed       = fs.Uint64("seed", 42, "root RNG seed; equal seeds give identical datasets")
		scale      = fs.String("scale", "quick", "dataset scale: quick (12 networks, 4h) or reference (110 networks, 24h)")
		out        = fs.String("out", "fleet.jsonl", "output path (JSON lines; use a .bin suffix for the compact binary format)")
		probeHours = fs.Float64("probe-hours", 0, "override probe snapshot length in hours")
		interval   = fs.Float64("interval", 0, "override probe report interval in seconds")
		noClients  = fs.Bool("no-clients", false, "skip client simulation")
		workers    = fs.Int("workers", 0, "synthesis worker pool size (0: all cores, 1: serial)")
		cache      = fs.String("dataset", "", "dataset cache path: loaded when it matches the seed/config, (re)written otherwise")
		flatSamp   = fs.Bool("flat-samples", false, "append the pre-flattened §4 sample section to a .bin -out file (larger file, O(read) warm analysis)")
		scen       = fs.String("scenario", "", "declarative scenario: a built-in name or a spec-file path (overrides -scale; see -list-scenarios)")
		listScen   = fs.Bool("list-scenarios", false, "list the built-in scenarios and exit")
		rss        = fs.Bool("rusage", false, "print the process max RSS (getrusage) after the run — what the CI guardrail records")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if *listScen {
		return listScenarios(stdout)
	}
	// The flag doubles as the process-wide worker budget, so probe-link
	// fan-out inside each network obeys it too.
	conc.SetBudget(*workers)
	if *rss {
		defer func() {
			fmt.Fprintf(stdout, "max RSS (getrusage): %d MB\n", rusage.MaxRSSBytes()>>20)
		}()
	}
	if *flatSamp && !strings.HasSuffix(*out, ".bin") {
		return usagef("-flat-samples requires a .bin -out path (the JSON-lines format has no sample section)")
	}

	var opts meshlab.Options
	if *scen != "" {
		// The spec owns the fleet and probe knobs; mixing them with the
		// imperative flags would make the scenario name a lie.
		var conflict []string
		seedSet := false
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scale", "probe-hours", "interval":
				conflict = append(conflict, "-"+f.Name)
			case "seed":
				seedSet = true
			}
		})
		if len(conflict) > 0 {
			return usagef("-scenario conflicts with %s: the spec declares the fleet and probe window", strings.Join(conflict, ", "))
		}
		sp, err := scenario.Resolve(*scen)
		if err != nil {
			return err
		}
		opts = sp.Options()
		if seedSet {
			opts.Seed = *seed
		}
		fmt.Fprintf(stdout, "scenario %s (spec sha256 %s)\n", sp.Name, sp.SHA256)
	} else {
		switch *scale {
		case "quick":
			opts = meshlab.QuickOptions(*seed)
		case "reference":
			opts = meshlab.ReferenceOptions(*seed)
		default:
			return usagef("unknown scale %q (quick|reference)", *scale)
		}
		if *probeHours > 0 {
			opts.Probe.Duration = *probeHours * 3600
		}
		if *interval > 0 {
			opts.Probe.ReportInterval = *interval
		}
	}
	opts.SkipClients = opts.SkipClients || *noClients
	opts.Workers = *workers

	start := time.Now()
	var fleet *meshlab.Fleet
	var err error
	cached := false
	if *cache != "" {
		if !opts.CacheValidatable() {
			// The loader neither reads nor rewrites the file on this
			// path, so there is nothing to protect: skip the corruption
			// probe too.
			fmt.Fprintf(stdout, "note: -dataset bypassed: these options cannot be validated against a cache file\n")
		} else if err := probeCache(*cache); err != nil {
			// Surface a corrupt cache file (exit 3) before the cache
			// loader would silently treat it as a miss and overwrite it.
			return err
		}
		fleet, cached, err = meshlab.LoadOrGenerateFleet(*cache, opts)
	} else {
		fleet, err = meshlab.GenerateFleet(opts)
	}
	if err != nil {
		return err
	}
	genDur := time.Since(start)

	if err := fleet.Validate(); err != nil {
		return fmt.Errorf("generated fleet failed validation: %w", err)
	}
	save := meshlab.SaveFleet
	if *flatSamp {
		save = meshlab.SaveFleetWithSamples
	}
	if err := save(*out, fleet); err != nil {
		return err
	}

	links := 0
	for _, n := range fleet.Networks {
		links += len(n.Links)
	}
	clients := 0
	for _, c := range fleet.Clients {
		clients += len(c.Clients)
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	fmt.Fprintf(stdout, "  seed             %d\n", fleet.Meta.Seed)
	fmt.Fprintf(stdout, "  network datasets %d (bg: %d, n: %d)\n",
		len(fleet.Networks), len(fleet.ByBand("bg")), len(fleet.ByBand("n")))
	fmt.Fprintf(stdout, "  directed links   %d\n", links)
	fmt.Fprintf(stdout, "  probe sets       %d\n", fleet.NumProbeSets())
	fmt.Fprintf(stdout, "  clients          %d\n", clients)
	if cached {
		fmt.Fprintf(stdout, "  loaded from cache %s in %v\n", *cache, genDur.Round(time.Millisecond))
	} else {
		fmt.Fprintf(stdout, "  generated in     %v\n", genDur.Round(time.Millisecond))
	}
	return nil
}

// listScenarios prints the built-in catalog, one scenario per entry.
func listScenarios(stdout io.Writer) error {
	for _, name := range scenario.Names() {
		sp, err := scenario.Builtin(name)
		if err != nil {
			return err
		}
		total, bg, n := sp.Datasets()
		fmt.Fprintf(stdout, "%s\n  %d networks, %d datasets (bg %d, n %d), probe %gs @ %gs, seed %d\n  %s\n",
			name, sp.Fleet.Networks, total, bg, n, sp.Probe.DurationS, sp.Probe.IntervalS, *sp.Seed, sp.Description)
	}
	return nil
}
