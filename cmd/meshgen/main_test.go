package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meshlab"
)

func TestRunQuickJSONL(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.jsonl")
	var buf strings.Builder
	if err := run([]string{"-seed", "3", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "probe sets") {
		t.Fatalf("summary missing: %q", buf.String())
	}
	fleet, err := meshlab.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Meta.Seed != 3 || fleet.NumProbeSets() == 0 {
		t.Fatal("written dataset wrong")
	}
}

func TestRunBinaryOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.bin")
	if err := run([]string{"-seed", "4", "-out", out, "-no-clients"}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	fleet, err := meshlab.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Clients) != 0 {
		t.Fatal("-no-clients ignored")
	}
	// Binary magic at the head (the current format version).
	b, _ := os.ReadFile(out)
	if string(b[:4]) != "MLF2" {
		t.Fatalf(".bin output is not binary: %q", b[:4])
	}
}

// TestRunFlatSamples: -flat-samples appends the §4 sample section to a
// .bin output and is rejected for JSONL paths.
func TestRunFlatSamples(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.bin")
	if err := run([]string{"-seed", "4", "-out", out, "-flat-samples"}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	_, samples, err := meshlab.LoadFleetSamples(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("-flat-samples output carries no sample section")
	}
	if err := run([]string{"-out", "f.jsonl", "-flat-samples"}, &strings.Builder{}); err == nil {
		t.Fatal("-flat-samples with a JSONL output should error")
	}
}

func TestRunOverrides(t *testing.T) {
	out := filepath.Join(t.TempDir(), "f.jsonl")
	if err := run([]string{"-seed", "5", "-out", out, "-probe-hours", "1", "-interval", "600"}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	fleet, err := meshlab.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Meta.ProbeDuration != 3600 || fleet.Meta.ProbeInterval != 600 {
		t.Fatalf("overrides not applied: %+v", fleet.Meta)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}, &strings.Builder{}); err == nil {
		t.Fatal("bad scale should error")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown flag should error")
	}
}

// TestRunDatasetCache checks meshgen's -dataset flag: the second run
// loads the cache instead of re-synthesizing and still writes -out.
func TestRunDatasetCache(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache.bin")
	out := filepath.Join(dir, "fleet.jsonl")
	if err := run([]string{"-seed", "3", "-dataset", cache, "-out", out}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("cache not written: %v", err)
	}
	var warm strings.Builder
	out2 := filepath.Join(dir, "fleet2.jsonl")
	if err := run([]string{"-seed", "3", "-dataset", cache, "-out", out2}, &warm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "loaded from cache") {
		t.Fatalf("warm run did not report a cache load: %q", warm.String())
	}
	a, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "\"seed\":3") || !bytes.Equal(a, b) {
		t.Fatal("cached run wrote a different dataset")
	}
	// A different seed against the same cache must regenerate.
	var cold strings.Builder
	if err := run([]string{"-seed", "4", "-dataset", cache, "-out", out2}, &cold); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cold.String(), "loaded from cache") {
		t.Fatal("seed mismatch should not load the cache")
	}
	f, err := meshlab.LoadFleet(cache)
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta.Seed != 4 {
		t.Fatalf("cache holds seed %d after regeneration, want 4", f.Meta.Seed)
	}
}

// TestRunWorkersIdentical pins the CLI's -workers flag to byte-identical
// output.
func TestRunWorkersIdentical(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.bin")
	b := filepath.Join(dir, "b.bin")
	if err := run([]string{"-seed", "3", "-workers", "1", "-out", a}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "3", "-workers", "4", "-out", b}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("-workers changed the generated dataset bytes")
	}
}

// TestRunScenarioMatchesScale: `-scenario quick` writes byte-identical
// output to the hard-coded `-scale quick -seed 42` path — the catalog is
// a faithful data form of the preset.
func TestRunScenarioMatchesScale(t *testing.T) {
	dir := t.TempDir()
	byScale := filepath.Join(dir, "scale.bin")
	byScenario := filepath.Join(dir, "scenario.bin")
	if err := run([]string{"-scale", "quick", "-seed", "42", "-out", byScale}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-scenario", "quick", "-out", byScenario}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "scenario quick (spec sha256 ") {
		t.Fatalf("summary does not name the scenario and spec hash: %q", buf.String())
	}
	a, _ := os.ReadFile(byScale)
	b, _ := os.ReadFile(byScenario)
	if !bytes.Equal(a, b) {
		t.Fatal("-scenario quick and -scale quick -seed 42 wrote different datasets")
	}
}

// TestRunScenarioSeedOverride: an explicit -seed wins over the spec's.
func TestRunScenarioSeedOverride(t *testing.T) {
	out := filepath.Join(t.TempDir(), "f.bin")
	if err := run([]string{"-scenario", "quick", "-seed", "7", "-out", out}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	fleet, err := meshlab.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Meta.Seed != 7 {
		t.Fatalf("seed override ignored: %d", fleet.Meta.Seed)
	}
}

// TestRunScenarioConflictsAndErrors: the spec owns the scale knobs, and
// unknown names fail with the catalog listed.
func TestRunScenarioConflictsAndErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "quick", "-scale", "quick"},
		{"-scenario", "quick", "-probe-hours", "1"},
		{"-scenario", "quick", "-interval", "600"},
	} {
		err := run(args, &strings.Builder{})
		if err == nil || !strings.Contains(err.Error(), "-scenario conflicts") {
			t.Fatalf("%v: want a conflict error, got %v", args, err)
		}
	}
	err := run([]string{"-scenario", "galactic"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "no built-in named") {
		t.Fatalf("unknown scenario: %v", err)
	}
}

// TestRunScenarioFromFile: a path argument loads a user spec file.
func TestRunScenarioFromFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(spec, []byte(`{
		"version": 1, "name": "tiny", "seed": 6,
		"fleet": {
			"networks": 2,
			"env_mix": {"indoor": 2},
			"band_mix": {"bg": 2},
			"size": {"min": 3, "max": 6, "log_mean": 1.2, "log_std": 0.3}
		},
		"probe": {"duration_s": 900, "interval_s": 300}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "tiny.bin")
	if err := run([]string{"-scenario", spec, "-out", out}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	fleet, err := meshlab.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Meta.Seed != 6 || len(fleet.Networks) != 2 {
		t.Fatalf("spec-file dataset wrong: seed %d, %d networks", fleet.Meta.Seed, len(fleet.Networks))
	}
}

// TestRunListScenarios: -list-scenarios prints every built-in and exits
// without generating anything.
func TestRunListScenarios(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list-scenarios"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"quick", "reference", "dense-urban", "sparse-rural", "high-churn", "mixed-band-steering"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("-list-scenarios missing %q:\n%s", name, buf.String())
		}
	}
}

// TestExitCodeClassification pins the regression the sibling CLIs
// already enforce: main must route errors through the exit-code
// contract instead of exiting 1 for everything — usage errors are 2,
// corrupt input is 3, plain runtime failures stay 1.
func TestExitCodeClassification(t *testing.T) {
	if got := exitCode(usagef("bad invocation")); got != 2 {
		t.Errorf("usage error: exit %d, want 2", got)
	}
	if got := exitCode(flag.ErrHelp); got != 2 {
		t.Errorf("flag.ErrHelp: exit %d, want 2", got)
	}
	if got := exitCode(errors.New("runtime")); got != 1 {
		t.Errorf("runtime error: exit %d, want 1", got)
	}

	// run() classifies its own failures: a bad flag parses to usage...
	err := run([]string{"-no-such-flag"}, &strings.Builder{})
	if err == nil || exitCode(err) != 2 {
		t.Errorf("bad flag: err %v, exit %d, want 2", err, exitCode(err))
	}
	err = run([]string{"-scale", "galactic"}, &strings.Builder{})
	if err == nil || exitCode(err) != 2 {
		t.Errorf("bad scale: err %v, exit %d, want 2", err, exitCode(err))
	}
	err = run([]string{"-flat-samples", "-out", "fleet.jsonl"}, &strings.Builder{})
	if err == nil || exitCode(err) != 2 {
		t.Errorf("-flat-samples on jsonl: err %v, exit %d, want 2", err, exitCode(err))
	}
	err = run([]string{"-scenario", "quick", "-scale", "reference"}, &strings.Builder{})
	if err == nil || exitCode(err) != 2 {
		t.Errorf("scenario conflict: err %v, exit %d, want 2", err, exitCode(err))
	}
}

// TestCorruptDatasetCacheExits3 pins the corrupt-input path: a -dataset
// file that claims the binary format but cannot be decoded must be
// reported with exit code 3 — and left intact — rather than silently
// clobbered by a fresh synthesis.
func TestCorruptDatasetCacheExits3(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache.bin")
	garbage := append([]byte("MLF2"), bytes.Repeat([]byte{0xFF}, 64)...)
	if err := os.WriteFile(cache, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "fleet.bin")
	err := run([]string{"-seed", "4", "-out", out, "-dataset", cache, "-no-clients"}, &strings.Builder{})
	if err == nil {
		t.Fatal("corrupt cache: run succeeded, want a corrupt-input error")
	}
	if got := exitCode(err); got != 3 {
		t.Fatalf("corrupt cache: err %v, exit %d, want 3", err, got)
	}
	// The corrupt file is evidence; it must not have been overwritten.
	b, readErr := os.ReadFile(cache)
	if readErr != nil || !bytes.Equal(b, garbage) {
		t.Fatal("corrupt cache file was modified")
	}
	if _, statErr := os.Stat(out); statErr == nil {
		t.Fatal("output written despite corrupt cache")
	}
}

// TestRusageFlag: -rusage prints the max-RSS line after the run (CLI
// parity with meshanalyze and meshreport; the CI guardrail greps it).
func TestRusageFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.jsonl")
	var buf strings.Builder
	if err := run([]string{"-seed", "3", "-out", out, "-rusage"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "max RSS (getrusage):") {
		t.Fatalf("-rusage output missing the RSS line:\n%s", buf.String())
	}
}

// TestCorruptCacheIgnoredWhenBypassed: options the cache file cannot
// record bypass -dataset entirely — the file is neither read nor
// rewritten — so a corrupt file there must not fail the run (the
// corruption probe only guards files the loader would consult).
func TestCorruptCacheIgnoredWhenBypassed(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache.bin")
	garbage := append([]byte("MLF2"), bytes.Repeat([]byte{0xFF}, 64)...)
	if err := os.WriteFile(cache, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "fleet.jsonl")
	var buf strings.Builder
	// A fractional report interval cannot be recorded in the dataset
	// metadata, so these options are not cache-validatable.
	if err := run([]string{"-seed", "4", "-interval", "300.5", "-out", out, "-dataset", cache, "-no-clients"}, &buf); err != nil {
		t.Fatalf("bypassed run failed on a corrupt cache it would never touch: %v", err)
	}
	if !strings.Contains(buf.String(), "-dataset bypassed") {
		t.Fatalf("run was not bypassed:\n%s", buf.String())
	}
	// Bypassed means untouched: the file's bytes are preserved.
	b, err := os.ReadFile(cache)
	if err != nil || !bytes.Equal(b, garbage) {
		t.Fatal("bypassed run modified the cache file")
	}
}
