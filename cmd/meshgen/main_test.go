package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meshlab"
)

func TestRunQuickJSONL(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.jsonl")
	var buf strings.Builder
	if err := run([]string{"-seed", "3", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "probe sets") {
		t.Fatalf("summary missing: %q", buf.String())
	}
	fleet, err := meshlab.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Meta.Seed != 3 || fleet.NumProbeSets() == 0 {
		t.Fatal("written dataset wrong")
	}
}

func TestRunBinaryOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.bin")
	if err := run([]string{"-seed", "4", "-out", out, "-no-clients"}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	fleet, err := meshlab.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Clients) != 0 {
		t.Fatal("-no-clients ignored")
	}
	// Binary magic at the head.
	b, _ := os.ReadFile(out)
	if string(b[:4]) != "MLF1" {
		t.Fatalf(".bin output is not binary: %q", b[:4])
	}
}

func TestRunOverrides(t *testing.T) {
	out := filepath.Join(t.TempDir(), "f.jsonl")
	if err := run([]string{"-seed", "5", "-out", out, "-probe-hours", "1", "-interval", "600"}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	fleet, err := meshlab.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Meta.ProbeDuration != 3600 || fleet.Meta.ProbeInterval != 600 {
		t.Fatalf("overrides not applied: %+v", fleet.Meta)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}, &strings.Builder{}); err == nil {
		t.Fatal("bad scale should error")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown flag should error")
	}
}
